package totem_test

import (
	"bytes"
	"errors"
	"testing"
	"time"

	totem "github.com/totem-rrp/totem"
)

func bulkTestPayload(n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(i*37 + i>>10)
	}
	return p
}

// collectBulk drains a node's deliveries until a Bulk delivery from sender
// arrives or the deadline passes.
func collectBulk(t *testing.T, n *totem.Node, sender totem.NodeID, budget time.Duration) totem.Delivery {
	t.Helper()
	deadline := time.After(budget)
	for {
		select {
		case d, ok := <-n.Deliveries():
			if !ok {
				t.Fatalf("node %v: deliveries closed before bulk transfer arrived", n.ID())
			}
			if d.Bulk && d.Sender == sender {
				return d
			}
		case <-deadline:
			t.Fatalf("node %v: no bulk delivery within %v", n.ID(), budget)
		}
	}
}

// TestSendBulkDeliversEverywhere streams a multi-chunk transfer through a
// three-node MemHub ring: the handle completes, progress reaches the
// total, and every member (sender included) receives the payload
// byte-exact as a single Bulk delivery.
func TestSendBulkDeliversEverywhere(t *testing.T) {
	_, nodes := startRing(t, 3, 2, totem.Active)
	payload := bulkTestPayload(300 << 10) // ~37 chunks at the default 8 KiB

	xfer, err := nodes[0].SendBulk(payload)
	if err != nil {
		t.Fatalf("SendBulk: %v", err)
	}
	select {
	case <-xfer.Done():
	case <-time.After(20 * time.Second):
		acked, total := xfer.Progress()
		t.Fatalf("transfer did not complete: %d/%d bytes acked", acked, total)
	}
	if err := xfer.Err(); err != nil {
		t.Fatalf("transfer failed: %v", err)
	}
	if acked, total := xfer.Progress(); acked != total || total != int64(len(payload)) {
		t.Fatalf("progress %d/%d, want %d/%d", acked, total, len(payload), len(payload))
	}

	for _, n := range nodes {
		d := collectBulk(t, n, 1, 15*time.Second)
		if !bytes.Equal(d.Payload, payload) {
			t.Fatalf("node %v: bulk payload mismatch (%d bytes, want %d)", n.ID(), len(d.Payload), len(payload))
		}
	}
}

// TestSendBulkDoesNotStarveInteractiveSends runs interactive Sends
// concurrently with a saturating transfer and requires every one of them
// to be delivered — the lane-yield mechanism must keep the interactive
// lane live under bulk load.
func TestSendBulkDoesNotStarveInteractiveSends(t *testing.T) {
	_, nodes := startRing(t, 3, 2, totem.Active)
	payload := bulkTestPayload(256 << 10)

	xfer, err := nodes[0].SendBulk(payload)
	if err != nil {
		t.Fatalf("SendBulk: %v", err)
	}

	const interactive = 50
	go func() {
		for i := 0; i < interactive; i++ {
			msg := []byte{byte(i)}
			for nodes[1].Send(msg) != nil {
				time.Sleep(time.Millisecond)
			}
			time.Sleep(500 * time.Microsecond)
		}
	}()

	seen := make(map[byte]bool)
	gotBulk := false
	deadline := time.After(30 * time.Second)
	for len(seen) < interactive || !gotBulk {
		select {
		case d := <-nodes[2].Deliveries():
			if d.Bulk {
				gotBulk = true
			} else if d.Sender == 2 && len(d.Payload) == 1 {
				seen[d.Payload[0]] = true
			}
		case <-deadline:
			t.Fatalf("starved: %d/%d interactive messages, bulk=%v", len(seen), interactive, gotBulk)
		}
	}
	select {
	case <-xfer.Done():
		if err := xfer.Err(); err != nil {
			t.Fatalf("transfer failed: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("transfer did not complete")
	}
}

// TestSendBulkValidation covers the early rejections: empty payloads,
// payloads over the receiver-side cap, CrossOrder nodes, and closed nodes.
func TestSendBulkValidation(t *testing.T) {
	hub := totem.NewMemHub(1)
	tr, err := hub.Join(1)
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	node, err := totem.NewNode(totem.Config{
		ID: 1, Networks: 1, Replication: totem.NoReplication,
		Tune: func(o *totem.Options) { o.SRP.MaxBulkTransfer = 1 << 20 },
	}, tr)
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}

	if _, err := node.SendBulk(nil); !errors.Is(err, totem.ErrConfig) {
		t.Fatalf("empty payload: err=%v, want ErrConfig", err)
	}
	if _, err := node.SendBulk(make([]byte, 1<<20+1)); !errors.Is(err, totem.ErrConfig) {
		t.Fatalf("oversized payload: err=%v, want ErrConfig", err)
	}
	node.Close()
	if _, err := node.SendBulk([]byte("x")); !errors.Is(err, totem.ErrClosed) {
		t.Fatalf("closed node: err=%v, want ErrClosed", err)
	}

	hub2 := totem.NewMemHub(1)
	tr2, err := hub2.Join(2)
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	xnode, err := totem.NewNode(totem.Config{
		ID: 2, Networks: 1, Replication: totem.NoReplication,
		Shards: 2, CrossOrder: true,
	}, tr2)
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	defer xnode.Close()
	if _, err := xnode.SendBulk([]byte("x")); !errors.Is(err, totem.ErrConfig) {
		t.Fatalf("CrossOrder node: err=%v, want ErrConfig", err)
	}
}

// TestSendBulkCancelAndClose checks that Cancel resolves the handle with
// ErrBulkCancelled and that Close fails still-running transfers with
// ErrClosed instead of leaking their goroutines.
func TestSendBulkCancelAndClose(t *testing.T) {
	_, nodes := startRing(t, 2, 1, totem.NoReplication)

	xfer, err := nodes[0].SendBulk(bulkTestPayload(4 << 20))
	if err != nil {
		t.Fatalf("SendBulk: %v", err)
	}
	xfer.Cancel()
	select {
	case <-xfer.Done():
		if !errors.Is(xfer.Err(), totem.ErrBulkCancelled) {
			t.Fatalf("cancelled transfer: err=%v, want ErrBulkCancelled", xfer.Err())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("Cancel did not resolve the handle")
	}

	xfer2, err := nodes[0].SendBulk(bulkTestPayload(4 << 20))
	if err != nil {
		t.Fatalf("SendBulk: %v", err)
	}
	nodes[0].Close()
	select {
	case <-xfer2.Done():
		if !errors.Is(xfer2.Err(), totem.ErrClosed) {
			t.Fatalf("transfer on closed node: err=%v, want ErrClosed", xfer2.Err())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("Close did not resolve the in-flight transfer")
	}
}

// TestSendBulkSingleton covers the degenerate one-node ring: the transfer
// self-acks chunk by chunk and the sender delivers its own payload.
func TestSendBulkSingleton(t *testing.T) {
	_, nodes := startRing(t, 1, 1, totem.NoReplication)
	payload := bulkTestPayload(100 << 10)
	xfer, err := nodes[0].SendBulk(payload)
	if err != nil {
		t.Fatalf("SendBulk: %v", err)
	}
	select {
	case <-xfer.Done():
	case <-time.After(15 * time.Second):
		acked, total := xfer.Progress()
		t.Fatalf("singleton transfer stuck at %d/%d", acked, total)
	}
	if err := xfer.Err(); err != nil {
		t.Fatalf("transfer failed: %v", err)
	}
	d := collectBulk(t, nodes[0], 1, 10*time.Second)
	if !bytes.Equal(d.Payload, payload) {
		t.Fatalf("payload mismatch")
	}
}
