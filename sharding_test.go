package totem_test

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	totem "github.com/totem-rrp/totem"
)

// startShardedRing boots n nodes with M shards each on a fresh MemHub and
// waits until every shard of every node is operational with full
// membership.
func startShardedRing(t *testing.T, n, networks, shards int, crossOrder bool) []*totem.Node {
	t.Helper()
	hub := totem.NewMemHub(networks)
	nodes := make([]*totem.Node, 0, n)
	for i := 1; i <= n; i++ {
		tr, err := hub.Join(totem.NodeID(i))
		if err != nil {
			t.Fatalf("Join: %v", err)
		}
		node, err := totem.NewNode(totem.Config{
			ID:          totem.NodeID(i),
			Networks:    networks,
			Replication: totem.Passive,
			Shards:      shards,
			CrossOrder:  crossOrder,
			Tune: func(o *totem.Options) {
				o.MarkerInterval = 5 * time.Millisecond
			},
		}, tr)
		if err != nil {
			t.Fatalf("NewNode: %v", err)
		}
		nodes = append(nodes, node)
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.Close()
		}
	})
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		ok := true
		for _, node := range nodes {
			if !node.Operational() {
				ok = false
				break
			}
			for s := 0; s < node.Shards(); s++ {
				if _, members := node.RingOf(s); len(members) != n {
					ok = false
					break
				}
			}
		}
		if ok {
			return nodes
		}
		time.Sleep(20 * time.Millisecond)
	}
	for _, node := range nodes {
		for s := 0; s < node.Shards(); s++ {
			r, m := node.RingOf(s)
			t.Logf("node %v shard %d: op=%v ring=%v members=%v", node.ID(), s, node.OperationalOf(s), r, m)
		}
	}
	t.Fatal("sharded rings did not form")
	return nil
}

// delivRecord captures the fields that must agree across nodes.
type delivRecord struct {
	Shard   int
	Sender  totem.NodeID
	Payload string
}

// collect drains node deliveries until total records arrive or the budget
// expires.
func collect(t *testing.T, node *totem.Node, total int, budget time.Duration) []delivRecord {
	t.Helper()
	var out []delivRecord
	timeout := time.After(budget)
	for len(out) < total {
		select {
		case d := <-node.Deliveries():
			out = append(out, delivRecord{Shard: d.Shard, Sender: d.Sender, Payload: string(d.Payload)})
		case <-timeout:
			t.Fatalf("node %v delivered %d/%d before timeout", node.ID(), len(out), total)
		}
	}
	return out
}

// TestShardedRingRoutesKeysAndOrdersPerShard: M independent rings form,
// SendKeyed routes deterministically, and each shard's subsequence is
// identical on every node.
func TestShardedRingRoutesKeysAndOrdersPerShard(t *testing.T) {
	const (
		numNodes = 3
		shards   = 4
		perNode  = 40
	)
	nodes := startShardedRing(t, numNodes, 2, shards, false)

	for i := 0; i < perNode; i++ {
		for _, n := range nodes {
			key := []byte(fmt.Sprintf("key-%d", i))
			if err := n.SendKeyed(key, []byte(fmt.Sprintf("%v/%d", n.ID(), i))); err != nil {
				t.Fatalf("SendKeyed: %v", err)
			}
		}
	}
	total := perNode * numNodes
	seqs := make([][]delivRecord, numNodes)
	var wg sync.WaitGroup
	for i, n := range nodes {
		wg.Add(1)
		go func(i int, n *totem.Node) {
			defer wg.Done()
			seqs[i] = collect(t, n, total, 20*time.Second)
		}(i, n)
	}
	wg.Wait()

	// Each key's messages landed on the shard ShardOf names, on every node.
	want := nodes[0]
	for _, seq := range seqs {
		for _, r := range seq {
			var idx int
			if _, err := fmt.Sscanf(r.Payload[strings.IndexByte(r.Payload, '/')+1:], "%d", &idx); err != nil {
				t.Fatalf("unparseable payload %q: %v", r.Payload, err)
			}
			key := []byte(fmt.Sprintf("key-%d", idx))
			if r.Shard != want.ShardOf(key) {
				t.Fatalf("payload %q delivered on shard %d, ShardOf says %d", r.Payload, r.Shard, want.ShardOf(key))
			}
		}
	}
	// Per-shard subsequences are identical across nodes (cross-shard
	// interleaving is free without CrossOrder).
	perShard := func(seq []delivRecord, s int) []delivRecord {
		var out []delivRecord
		for _, r := range seq {
			if r.Shard == s {
				out = append(out, r)
			}
		}
		return out
	}
	for s := 0; s < shards; s++ {
		ref := perShard(seqs[0], s)
		if len(ref) == 0 {
			t.Fatalf("shard %d received nothing — key spread broken", s)
		}
		for i := 1; i < numNodes; i++ {
			if !reflect.DeepEqual(perShard(seqs[i], s), ref) {
				t.Fatalf("shard %d order differs between node %v and node %v", s, nodes[i].ID(), nodes[0].ID())
			}
		}
	}
}

// TestCrossOrderIdenticalMergedSequence is the differential acceptance
// test: with CrossOrder on, the entire merged cross-shard sequence is
// identical on every node.
func TestCrossOrderIdenticalMergedSequence(t *testing.T) {
	const (
		numNodes = 3
		shards   = 3
		perNode  = 30
	)
	nodes := startShardedRing(t, numNodes, 2, shards, true)

	var sendWG sync.WaitGroup
	for _, n := range nodes {
		sendWG.Add(1)
		go func(n *totem.Node) {
			defer sendWG.Done()
			for i := 0; i < perNode; i++ {
				key := []byte(fmt.Sprintf("k%d", i))
				for {
					err := n.SendKeyed(key, []byte(fmt.Sprintf("%v/%d", n.ID(), i)))
					if err == nil {
						break
					}
					if errors.Is(err, totem.ErrBackpressure) {
						time.Sleep(time.Millisecond)
						continue
					}
					t.Errorf("SendKeyed: %v", err)
					return
				}
			}
		}(n)
	}
	sendWG.Wait()

	total := perNode * numNodes
	seqs := make([][]delivRecord, numNodes)
	var wg sync.WaitGroup
	for i, n := range nodes {
		wg.Add(1)
		go func(i int, n *totem.Node) {
			defer wg.Done()
			seqs[i] = collect(t, n, total, 30*time.Second)
		}(i, n)
	}
	wg.Wait()
	for i := 1; i < numNodes; i++ {
		if !reflect.DeepEqual(seqs[i], seqs[0]) {
			for j := range seqs[0] {
				if seqs[i][j] != seqs[0][j] {
					t.Fatalf("merged order diverges at %d: node %v saw %+v, node %v saw %+v",
						j, nodes[i].ID(), seqs[i][j], nodes[0].ID(), seqs[0][j])
				}
			}
			t.Fatal("merged sequences differ")
		}
	}
}

// TestShardKnobValidation covers the Config shard knobs.
func TestShardKnobValidation(t *testing.T) {
	hub := totem.NewMemHub(1)
	tr, _ := hub.Join(9)

	for _, bad := range []int{-1, totem.MaxShards + 1} {
		if _, err := totem.NewNode(totem.Config{ID: 9, Networks: 1, Shards: bad}, tr); !errors.Is(err, totem.ErrConfig) {
			t.Fatalf("Shards=%d: err=%v, want ErrConfig", bad, err)
		}
	}

	// Shards 0 and 1 both mean the classic single ring.
	n, err := totem.NewNode(totem.Config{ID: 9, Networks: 1}, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if n.Shards() != 1 {
		t.Fatalf("default Shards() = %d, want 1", n.Shards())
	}
	if got := n.ShardOf([]byte("anything")); got != 0 {
		t.Fatalf("single-ring ShardOf = %d", got)
	}
	// SendKeyed degrades to Send on one shard.
	if err := n.SendKeyed([]byte("k"), []byte("v")); err != nil {
		t.Fatalf("single-ring SendKeyed: %v", err)
	}

	// A broken user ShardFunc surfaces as ErrConfig at send time.
	hub2 := totem.NewMemHub(1)
	tr2, _ := hub2.Join(3)
	bad, err := totem.NewNode(totem.Config{
		ID: 3, Networks: 1, Shards: 2,
		ShardFunc: func(key []byte, shards int) int { return shards + 1 },
	}, tr2)
	if err != nil {
		t.Fatal(err)
	}
	defer bad.Close()
	if err := bad.SendKeyed([]byte("k"), []byte("v")); !errors.Is(err, totem.ErrConfig) {
		t.Fatalf("out-of-range ShardFunc: err=%v, want ErrConfig", err)
	}
}

// recordingTransport captures every frame a node puts on the wire.
type recordingTransport struct {
	totem.Transport
	mu     sync.Mutex
	frames [][]byte
}

func (r *recordingTransport) Send(network int, dest totem.NodeID, data []byte) error {
	r.mu.Lock()
	r.frames = append(r.frames, append([]byte(nil), data...))
	r.mu.Unlock()
	return r.Transport.Send(network, dest, data)
}

func (r *recordingTransport) sent() [][]byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([][]byte, len(r.frames))
	copy(out, r.frames)
	return out
}

// TestSingleShardStaysEnvelopeFree: the M=1 path must put exactly the
// pre-sharding bytes on the wire — no shard envelope, ever — and a
// Shards=1 node's first wire frame must be byte-identical to a Shards=0
// node's.
func TestSingleShardStaysEnvelopeFree(t *testing.T) {
	boot := func(shards int) [][]byte {
		hub := totem.NewMemHub(1)
		tr, err := hub.Join(5)
		if err != nil {
			t.Fatal(err)
		}
		rec := &recordingTransport{Transport: tr}
		n, err := totem.NewNode(totem.Config{ID: 5, Networks: 1, Shards: shards}, rec)
		if err != nil {
			t.Fatal(err)
		}
		defer n.Close()
		deadline := time.Now().Add(10 * time.Second)
		for !n.Operational() && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		if err := n.Send([]byte("solo")); err != nil {
			t.Fatal(err)
		}
		select {
		case d := <-n.Deliveries():
			if string(d.Payload) != "solo" || d.Shard != 0 {
				t.Fatalf("unexpected delivery %+v", d)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("no delivery")
		}
		return rec.sent()
	}

	zero := boot(0)
	one := boot(1)
	for _, frames := range [][][]byte{zero, one} {
		for _, f := range frames {
			if len(f) >= 2 && f[0] == 'T' && f[1] == 'S' {
				t.Fatalf("single-ring node emitted a shard envelope: % x", f[:8])
			}
		}
	}
	if len(zero) == 0 || len(one) == 0 {
		t.Fatal("no frames recorded")
	}
	if !bytes.Equal(zero[0], one[0]) {
		t.Fatalf("first frame differs between Shards=0 and Shards=1:\n% x\n% x", zero[0], one[0])
	}
}

// TestCloseIdempotentAcrossShardCounts: double Close is a no-op for both
// the single-ring and the sharded node.
func TestCloseIdempotentAcrossShardCounts(t *testing.T) {
	for _, shards := range []int{1, 4} {
		hub := totem.NewMemHub(2)
		tr, _ := hub.Join(1)
		n, err := totem.NewNode(totem.Config{ID: 1, Networks: 2, Replication: totem.Active, Shards: shards}, tr)
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Close(); err != nil {
			t.Fatalf("first Close: %v", err)
		}
		if err := n.Close(); err != nil {
			t.Fatalf("second Close: %v", err)
		}
		if err := n.Send([]byte("x")); !errors.Is(err, totem.ErrClosed) {
			t.Fatalf("Send after Close: %v", err)
		}
		if err := n.SendKeyed([]byte("k"), []byte("x")); !errors.Is(err, totem.ErrClosed) {
			t.Fatalf("SendKeyed after Close: %v", err)
		}
	}
}

// TestCloseWithBlockedDeliveriesReader: a goroutine blocked on
// Deliveries() observes channel close rather than hanging forever.
func TestCloseWithBlockedDeliveriesReader(t *testing.T) {
	for _, shards := range []int{1, 3} {
		hub := totem.NewMemHub(1)
		tr, _ := hub.Join(1)
		n, err := totem.NewNode(totem.Config{ID: 1, Networks: 1, Shards: shards}, tr)
		if err != nil {
			t.Fatal(err)
		}
		unblocked := make(chan struct{})
		go func() {
			for range n.Deliveries() {
			}
			close(unblocked)
		}()
		time.Sleep(50 * time.Millisecond) // let the reader park
		if err := n.Close(); err != nil {
			t.Fatal(err)
		}
		select {
		case <-unblocked:
		case <-time.After(10 * time.Second):
			t.Fatalf("shards=%d: blocked Deliveries reader never unblocked after Close", shards)
		}
	}
}

// TestCloseWithInFlightDeliveries: closing while messages are still being
// ordered and fanned in must not deadlock or panic, and the merged
// channels must still close.
func TestCloseWithInFlightDeliveries(t *testing.T) {
	nodes := startShardedRing(t, 2, 2, 3, false)
	for i := 0; i < 50; i++ {
		key := []byte(fmt.Sprintf("k%d", i))
		_ = nodes[0].SendKeyed(key, []byte("inflight"))
	}
	done := make(chan struct{})
	go func() {
		for range nodes[0].Deliveries() {
		}
		for range nodes[0].Faults() {
		}
		for range nodes[0].ConfigChanges() {
		}
		for range nodes[0].FaultsCleared() {
		}
		close(done)
	}()
	time.Sleep(20 * time.Millisecond) // let some deliveries get in flight
	if err := nodes[0].Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("event channels never closed after Close with in-flight deliveries")
	}
}

// TestBlockedDeliveriesReaderShedsNothing pins the fan-in backpressure
// contract documented on fanIn: a consumer that stops draining
// Deliveries blocks the forwarders — nothing is shed and nothing is
// reordered, while the ring itself keeps turning behind the runtimes'
// unbounded queues. We push far more messages than every channel buffer
// on the path holds while one node's reader is parked, then resume it
// and require every message exactly once, in the same per-shard order a
// never-blocked node saw.
func TestBlockedDeliveriesReaderShedsNothing(t *testing.T) {
	const total = 3000 // > mergedDepth + per-shard buffers combined
	nodes := startShardedRing(t, 2, 2, 2, false)
	sender, blocked := nodes[0], nodes[1]

	// The sender's own reader drains freely and records the reference
	// per-shard order.
	refCh := make(chan map[int][]string, 1)
	go func() {
		ref := make(map[int][]string)
		seen := 0
		for d := range sender.Deliveries() {
			ref[d.Shard] = append(ref[d.Shard], string(d.Payload))
			if seen++; seen == total {
				break
			}
		}
		refCh <- ref
	}()

	// The blocked node's reader does not run yet: its fan-in forwarders
	// must park on the merged channel without shedding. Send everything
	// while it is parked.
	for i := 0; i < total; i++ {
		key := []byte(fmt.Sprintf("key-%d", i%17))
		for {
			err := sender.SendKeyed(key, []byte(fmt.Sprintf("m%d", i)))
			if err == nil {
				break
			}
			if !errors.Is(err, totem.ErrBackpressure) {
				t.Fatalf("send %d: %v", i, err)
			}
			// The sender outran the ring's ordering rate, not the blocked
			// reader: flow control pushes back on the send queue. Yield
			// and retry — the blocked consumer must never be what clears.
			time.Sleep(time.Millisecond)
		}
	}

	// All messages ordered (the free-running node saw every one) while
	// the other reader was still parked.
	var ref map[int][]string
	select {
	case ref = <-refCh:
	case <-time.After(60 * time.Second):
		t.Fatal("free-running node never received the full stream")
	}

	// Now resume the blocked reader: every message must arrive, exactly
	// once, in the reference per-shard order.
	got := make(map[int][]string)
	seen := 0
	deadline := time.After(60 * time.Second)
	for seen < total {
		select {
		case d, ok := <-blocked.Deliveries():
			if !ok {
				t.Fatalf("Deliveries closed after %d/%d messages", seen, total)
			}
			got[d.Shard] = append(got[d.Shard], string(d.Payload))
			seen++
		case <-deadline:
			t.Fatalf("blocked reader resumed but only %d/%d messages arrived — something was shed", seen, total)
		}
	}
	if !reflect.DeepEqual(ref, got) {
		t.Fatal("resumed reader saw a different per-shard sequence than the never-blocked node")
	}
}
