// Package totem is a Go implementation of the Totem Redundant Ring
// Protocol (Koch, Moser, Melliar-Smith — ICDCS 2002): reliable,
// totally-ordered group communication over N redundant local-area
// networks, with partial or total network failures kept transparent to
// the application.
//
// A Node joins a logical token-passing ring (the Totem Single Ring
// Protocol) and exchanges messages with the other members. The redundant
// ring layer (RRP) sends traffic over multiple networks according to a
// replication style:
//
//   - Active: every packet on every network; loss on up to N-1 networks
//     is masked with no retransmission delay.
//   - Passive: each packet on one network, round-robin; the aggregate
//     throughput of all networks becomes available.
//   - ActivePassive: K of N copies — a configurable middle ground.
//
// When a network fails, the built-in monitors raise a FaultReport while
// the ring keeps running on the surviving networks — no membership change
// occurs (paper §3). A recovery monitor then watches the faulted network
// and readmits it automatically once it demonstrates sustained clean
// reception, with exponential flap damping for unstable links; the
// readmission is announced on FaultsCleared (set DisableAutoReadmit to
// keep the paper's manual-only model). Node joins, crashes and
// partition merges are handled
// by the membership protocol and surfaced as ConfigChange events with
// extended-virtual-synchrony semantics.
//
// Minimal use:
//
//	hub := totem.NewMemHub(2) // or totem.NewUDPTransport(...)
//	tr, _ := hub.Join(1)
//	node, _ := totem.NewNode(totem.Config{
//		ID:          1,
//		Networks:    2,
//		Replication: totem.Passive,
//	}, tr)
//	defer node.Close()
//	node.Send([]byte("hello"))
//	for d := range node.Deliveries() {
//		fmt.Printf("%s said %q\n", d.Sender, d.Payload)
//	}
package totem

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/totem-rrp/totem/internal/core"
	"github.com/totem-rrp/totem/internal/metrics"
	"github.com/totem-rrp/totem/internal/proto"
	"github.com/totem-rrp/totem/internal/shard"
	"github.com/totem-rrp/totem/internal/srp"
	"github.com/totem-rrp/totem/internal/stack"
	"github.com/totem-rrp/totem/internal/trace"
	"github.com/totem-rrp/totem/internal/transport"
	"github.com/totem-rrp/totem/internal/wire"
)

// Re-exported primitive types. These are aliases: values flow between the
// public API and the protocol engine without conversion.
type (
	// NodeID identifies a ring member (non-zero).
	NodeID = proto.NodeID
	// RingID identifies a membership configuration.
	RingID = proto.RingID
	// Delivery is one totally-ordered message.
	Delivery = proto.Delivery
	// FaultReport is a network-fault alarm from the RRP monitors.
	FaultReport = proto.FaultReport
	// ClearReport announces the automatic readmission of a healed network.
	ClearReport = proto.ClearReport
	// ConfigChange is a membership change (transitional or regular).
	ConfigChange = proto.ConfigChange
	// ReplicationStyle selects how traffic maps onto the networks.
	ReplicationStyle = proto.ReplicationStyle
)

// Replication styles (paper §4).
const (
	// NoReplication runs the ring on a single network (the paper's
	// baseline).
	NoReplication = proto.ReplicationNone
	// Active sends every message and token on all networks (paper §5).
	Active = proto.ReplicationActive
	// Passive alternates messages and tokens across the networks
	// round-robin (paper §6).
	Passive = proto.ReplicationPassive
	// ActivePassive sends K of N copies (paper §7); requires N >= 3.
	ActivePassive = proto.ReplicationActivePassive
)

// Delivery guarantees.
const (
	// Agreed delivers a message once all predecessors in the total order
	// have been received (default).
	Agreed = srp.DeliverAgreed
	// Safe additionally waits until every ring member is known to hold
	// the message.
	Safe = srp.DeliverSafe
)

// Transport moves packets over the N redundant networks. Use NewMemHub
// for in-process rings or NewUDPTransport for real deployments; custom
// implementations (e.g. the discrete-event simulator) satisfy the same
// interface.
type Transport = transport.Transport

// MemHub is an in-process transport hub (see NewMemHub).
type MemHub = transport.MemHub

// NewMemHub creates an in-process hub with n redundant networks. Each
// node calls Join to obtain its Transport.
func NewMemHub(n int) *MemHub { return transport.NewMemHub(n) }

// UDPConfig configures a UDP transport (one socket per network).
type UDPConfig = transport.UDPConfig

// NewUDPTransport opens UDP sockets on each redundant network.
func NewUDPTransport(cfg UDPConfig) (Transport, error) { return transport.NewUDP(cfg) }

// Config parameterises a Node. Zero fields take defaults; ID, Networks
// and Replication are required.
type Config struct {
	// ID is this node's unique, non-zero identifier. The smallest ID in a
	// membership acts as ring representative.
	ID NodeID
	// Networks is N, the number of redundant networks the transport
	// provides.
	Networks int
	// Replication selects the replication style.
	Replication ReplicationStyle
	// K is the copy count for ActivePassive (default 2).
	K int
	// Delivery selects Agreed (default) or Safe delivery.
	Delivery srp.DeliveryMode

	// DisableAutoReadmit turns off the automatic readmission of healed
	// networks, restoring the paper's manual-only model: a faulty network
	// then stays excluded until ReadmitNetwork is called. By default the
	// recovery monitor places faulted networks on probation and readmits
	// them once they demonstrate sustained clean reception, announcing
	// each readmission on FaultsCleared.
	DisableAutoReadmit bool

	// Shards is M, the number of independent rings the node runs over the
	// same N redundant networks. 0 and 1 both mean the classic single
	// ring, whose behaviour (and wire format) is exactly that of a node
	// built before sharding existed. With M > 1 every shard is a full
	// SRP+RRP instance with its own token, membership and monitors;
	// SendKeyed routes each key to one shard, and Deliveries merges all
	// shards (tagging Delivery.Shard). Aggregate throughput scales with M
	// because the M token rotations proceed concurrently.
	Shards int
	// ShardFunc maps SendKeyed keys to shards; nil selects the default
	// FNV-1a hash. It must be pure and identical on every node, or two
	// nodes would order the same key's messages on different rings.
	ShardFunc ShardFunc
	// CrossOrder, with Shards > 1, merges the per-shard streams into one
	// deterministic global total order: every node's Deliveries channel
	// then yields the exact same cross-shard sequence, at the cost of a
	// Lamport-stamp envelope on every payload and a hold-back until every
	// shard's merge cut advances (idle shards emit periodic markers, see
	// Options.MarkerInterval). Ignored when Shards <= 1.
	CrossOrder bool

	// Tune, if non-nil, may adjust the low-level protocol parameters
	// (timeouts, window sizes, monitor thresholds) before validation. With
	// Shards > 1 the tuned parameters apply to every shard.
	Tune func(*Options)
}

// ShardFunc maps a key to a shard in [0, shards). It must be pure and
// identical across all nodes of a ring.
type ShardFunc = func(key []byte, shards int) int

// DefaultShardFunc is the FNV-1a key hash used when Config.ShardFunc is
// nil.
func DefaultShardFunc(key []byte, shards int) int { return shard.Hash(key, shards) }

// MaxShards is the largest permitted Config.Shards (the wire envelope
// carries the shard index in one byte).
const MaxShards = wire.MaxShards

// Options exposes the low-level protocol knobs to Config.Tune.
type Options struct {
	// SRP holds the single-ring protocol parameters (timeouts, flow
	// control window, queue bounds).
	SRP srp.Config
	// RRP holds the redundant-ring parameters (token timers, monitor
	// thresholds, decay interval).
	RRP core.Config

	// Tracer, if non-nil, receives every protocol event (packets, timers,
	// deliveries, faults, membership, machine probes). It must be safe for
	// concurrent reads if the caller inspects it while the node runs;
	// trace.NewRing and trace.NewCounter both are. When nil and
	// TraceCapacity > 0, the node creates an internal ring of that
	// capacity, exposed via Node.Trace.
	Tracer trace.Tracer
	// TraceCapacity sizes the internal trace ring created when Tracer is
	// nil. Zero disables tracing entirely (probe emission then costs a
	// single predicted branch per site).
	TraceCapacity int

	// DeliveryTap, if non-nil, observes every delivery synchronously on
	// the protocol goroutine, before it is queued on Node.Deliveries. It
	// must not block: a slow tap stalls the token ring. The conformance
	// harness uses it to feed the torture invariant checker in exact
	// protocol order; Deliveries still receives every message. With
	// Shards > 1 the tap fires concurrently from M protocol goroutines
	// (Delivery.Shard identifies the ring) in per-shard protocol order,
	// not in the merged CrossOrder sequence; CrossOrder envelopes are
	// stripped and markers skipped before the tap sees a delivery.
	DeliveryTap func(Delivery)

	// MarkerInterval is the period at which a CrossOrder node emits
	// cut-advancement markers on every shard so idle shards do not stall
	// the merge (default 25ms). Only meaningful with Config.CrossOrder
	// and Shards > 1.
	MarkerInterval time.Duration

	// Bulk tunes the sender side of Node.SendBulk (chunk size, window,
	// retry budget, submit workers). Receiver-side limits are in SRP
	// (MaxBulkTransfer, MaxBulkPartials) and the lane's ring pacing in
	// SRP.BulkMaxPerVisit / SRP.BulkYieldPerVisit.
	Bulk BulkOptions
}

// Errors returned by the public API.
var (
	// ErrBackpressure reports a full send queue; retry after deliveries
	// drain.
	ErrBackpressure = errors.New("totem: send queue full")
	// ErrClosed reports use after Close.
	ErrClosed = errors.New("totem: node closed")
	// ErrConfig reports an invalid configuration.
	ErrConfig = errors.New("totem: invalid configuration")
)

// Node is one member of the redundant ring — or, with Config.Shards > 1,
// one member of M independent rings sharing the same networks. All
// methods are safe for concurrent use.
type Node struct {
	id         NodeID
	shards     int
	shardFn    ShardFunc
	crossOrder bool

	rts  []*transport.Runtime // one per shard; index 0 always exists
	mets []*metrics.Registry  // per-shard registries, parallel to rts
	mux  *transport.ShardMux  // nil on the single-ring path
	ring *trace.Ring          // non-nil only when TraceCapacity created it

	// Merged event streams, nil on the single-ring path (the accessors
	// then hand out shard 0's runtime channels directly, so the M=1 node
	// is the pre-sharding node, not an emulation of it).
	deliveries chan Delivery
	faults     chan FaultReport
	cleared    chan ClearReport
	configs    chan ConfigChange

	clock        *shard.Clock  // CrossOrder Lamport clock
	mergePending atomic.Int64  // CrossOrder hold-back depth gauge
	markerStop   chan struct{} // stops the CrossOrder marker ticker

	// Bulk-lane sender state (see bulk.go). Transfers run on shard 0.
	bulkOpts   BulkOptions
	bulkMax    int // receiver-side MaxBulkTransfer, for early rejection
	bulkNextID atomic.Uint64
	bulkMu     sync.Mutex
	bulkXfers  map[uint64]*BulkTransfer
	bulkClosed chan struct{} // closed when the bulk dispatcher exits

	mu     sync.Mutex
	closed bool
}

// mergedDepth buffers the fan-in channels; the per-shard runtimes queue
// without bound behind them, so the ring never stalls on a slow consumer
// either way.
const mergedDepth = 1024

// NewNode builds and starts a node on the given transport. The node
// immediately begins forming or joining its ring (each of its rings, with
// Shards > 1); membership progress is reported on ConfigChanges.
func NewNode(cfg Config, tr Transport) (*Node, error) {
	if tr == nil {
		return nil, fmt.Errorf("%w: nil transport", ErrConfig)
	}
	if cfg.Networks == 0 {
		cfg.Networks = tr.Networks()
	}
	if cfg.Networks != tr.Networks() {
		return nil, fmt.Errorf("%w: Networks=%d but transport has %d", ErrConfig, cfg.Networks, tr.Networks())
	}
	if cfg.Replication == 0 {
		cfg.Replication = NoReplication
	}
	if cfg.Shards < 0 || cfg.Shards > MaxShards {
		return nil, fmt.Errorf("%w: Shards=%d out of range [0,%d]", ErrConfig, cfg.Shards, MaxShards)
	}
	shards := cfg.Shards
	if shards == 0 {
		shards = 1
	}
	opts := Options{
		SRP: srp.DefaultConfig(cfg.ID),
		RRP: core.DefaultConfig(cfg.Networks, cfg.Replication),
	}
	// Real-time deployments get the idle token hold by default so an idle
	// ring does not spin the CPU; Tune may override it.
	opts.SRP.IdleTokenHold = 2 * time.Millisecond
	if cfg.K != 0 {
		opts.RRP.K = cfg.K
	}
	if cfg.Delivery != 0 {
		opts.SRP.Delivery = cfg.Delivery
	}
	if cfg.DisableAutoReadmit {
		opts.RRP.AutoReadmit = false
	}
	if cfg.Tune != nil {
		cfg.Tune(&opts)
		opts.SRP.ID = cfg.ID // the identity is not tunable
	}
	n := &Node{
		id:         cfg.ID,
		shards:     shards,
		shardFn:    cfg.ShardFunc,
		crossOrder: cfg.CrossOrder && shards > 1,
		bulkOpts:   opts.Bulk.withDefaults(),
		bulkMax:    opts.SRP.MaxBulkTransfer,
		bulkClosed: make(chan struct{}),
	}
	if n.bulkMax == 0 {
		n.bulkMax = srp.DefaultMaxBulkTransfer
	}
	if n.shardFn == nil {
		n.shardFn = DefaultShardFunc
	}

	// Each shard drives its own protocol stack through its own transport
	// view: the raw transport for a single ring, a mux port per shard
	// otherwise.
	ports := []Transport{tr}
	if shards > 1 {
		mux, err := transport.NewShardMux(tr, shards)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrConfig, err)
		}
		n.mux = mux
		ports = ports[:0]
		for i := 0; i < shards; i++ {
			ports = append(ports, mux.Port(i))
		}
	}
	tracer := opts.Tracer
	if tracer == nil && opts.TraceCapacity > 0 {
		n.ring = trace.NewRing(opts.TraceCapacity)
		tracer = n.ring
	}
	for i, port := range ports {
		st, err := stack.New(stack.Config{SRP: opts.SRP, RRP: opts.RRP})
		if err != nil {
			if n.mux != nil {
				n.mux.Close()
			}
			for _, rt := range n.rts {
				rt.Close()
			}
			return nil, fmt.Errorf("%w: %v", ErrConfig, err)
		}
		rt := transport.NewRuntime(st, port)
		// The tracer observes shard 0 only: trace rings are written from
		// one protocol goroutine, and shard 0 is the ring that exists at
		// every shard count.
		if tracer != nil && i == 0 {
			rt.SetTracer(tracer)
		}
		if tap := opts.DeliveryTap; tap != nil {
			rt.SetDeliveryTap(n.wrapTap(tap, i))
		}
		n.rts = append(n.rts, rt)
		n.mets = append(n.mets, st.Metrics())
	}
	if shards > 1 {
		n.startFanIn(opts)
	}
	for _, rt := range n.rts {
		rt.Start()
	}
	go n.bulkDispatch()
	return n, nil
}

// wrapTap adapts a user DeliveryTap to shard i: it tags the shard and, in
// CrossOrder mode, strips the Lamport envelope and swallows markers.
func (n *Node) wrapTap(tap func(Delivery), i int) func(Delivery) {
	return func(d Delivery) {
		d.Shard = i
		if n.crossOrder {
			kind, _, body, err := shard.Unwrap(d.Payload)
			if err != nil || kind == shard.KindMarker {
				return
			}
			d.Payload = body
		}
		tap(d)
	}
}

// startFanIn wires the merged event streams of a multi-shard node: plain
// per-shard forwarders for faults, clears and configs, and either plain
// forwarders (tagging Delivery.Shard) or the deterministic CrossOrder
// merge for deliveries.
func (n *Node) startFanIn(opts Options) {
	n.deliveries = make(chan Delivery, mergedDepth)
	n.faults = make(chan FaultReport, mergedDepth)
	n.cleared = make(chan ClearReport, mergedDepth)
	n.configs = make(chan ConfigChange, mergedDepth)

	srcF := make([]<-chan FaultReport, n.shards)
	srcC := make([]<-chan ClearReport, n.shards)
	srcG := make([]<-chan ConfigChange, n.shards)
	for i, rt := range n.rts {
		srcF[i] = rt.Faults()
		srcC[i] = rt.Cleared()
		srcG[i] = rt.Configs()
	}
	fanIn(srcF, n.faults, func(f *FaultReport, i int) { f.Shard = i })
	fanIn(srcC, n.cleared, func(c *ClearReport, i int) { c.Shard = i })
	fanIn(srcG, n.configs, func(c *ConfigChange, i int) { c.Shard = i })

	if !n.crossOrder {
		srcD := make([]<-chan Delivery, n.shards)
		for i, rt := range n.rts {
			srcD[i] = rt.Deliveries()
		}
		fanIn(srcD, n.deliveries, func(d *Delivery, i int) { d.Shard = i })
		return
	}

	n.clock = &shard.Clock{}
	n.mets[0].RegisterFunc("shard.merge_pending", n.mergePending.Load)

	// Feeders collapse the M per-shard streams into one channel the merge
	// goroutine consumes; the runtimes' unbounded queues sit behind these
	// sends, so the rings never block on the merge.
	in := make(chan Delivery, mergedDepth)
	var wg sync.WaitGroup
	for i, rt := range n.rts {
		wg.Add(1)
		go func(i int, src <-chan Delivery) {
			defer wg.Done()
			for d := range src {
				d.Shard = i
				in <- d
			}
		}(i, rt.Deliveries())
	}
	go func() { wg.Wait(); close(in) }()
	go n.mergeLoop(in)

	// The marker ticker keeps idle shards' merge cuts advancing. Every
	// node ticks: markers are 9-byte messages and redundant markers are
	// harmless, while depending on one designated node would stall the
	// merge when that node crashes.
	interval := opts.MarkerInterval
	if interval <= 0 {
		interval = 25 * time.Millisecond
	}
	n.markerStop = make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-n.markerStop:
				return
			case <-t.C:
				for _, rt := range n.rts {
					rt.Submit(shard.WrapMarker(n.clock.Tick()))
				}
			}
		}
	}()
}

// mergeLoop runs the deterministic cross-shard merge: it folds each
// shard's (totally ordered) delivery stream into the Lamport merge and
// releases the global sequence on the merged channel. Because the merge
// order is a pure function of the per-shard streams, every node's loop
// emits the identical sequence.
func (n *Node) mergeLoop(in <-chan Delivery) {
	defer close(n.deliveries)
	m := shard.NewMerge(n.shards)
	for d := range in {
		kind, ts, body, err := shard.Unwrap(d.Payload)
		if err != nil {
			// Not a CrossOrder envelope: a peer running plain sharding is
			// misconfigured; dropping beats corrupting the global order.
			continue
		}
		n.clock.Observe(ts)
		if kind == shard.KindMarker {
			m.Push(d.Shard, shard.Item{TS: ts, Marker: true})
		} else {
			d.Payload = body
			m.Push(d.Shard, shard.Item{TS: ts, Payload: d})
		}
		for {
			it, _, ok := m.Pop()
			if !ok {
				break
			}
			n.deliveries <- it.Payload.(Delivery)
		}
		n.mergePending.Store(int64(m.Pending()))
	}
}

// fanIn forwards every source channel into out, tagging each value with
// its source index, and closes out once all sources close.
//
// Backpressure contract (pinned by TestBlockedDeliveriesReaderShedsNothing):
// when a consumer stops draining out, the forwarders block on the send —
// nothing is ever shed. The runtimes' unbounded delivery queues sit
// behind the source channels, so a stalled consumer buffers deliveries
// in memory without ever stalling the ring itself; every queued message
// is delivered, in order, once the consumer resumes.
func fanIn[T any](srcs []<-chan T, out chan<- T, tag func(*T, int)) {
	var wg sync.WaitGroup
	for i, src := range srcs {
		wg.Add(1)
		go func(i int, src <-chan T) {
			defer wg.Done()
			for v := range src {
				tag(&v, i)
				out <- v
			}
		}(i, src)
	}
	go func() { wg.Wait(); close(out) }()
}

// ID returns this node's identifier.
func (n *Node) ID() NodeID { return n.id }

// Shards returns M, the number of independent rings this node runs
// (1 for a classic single-ring node).
func (n *Node) Shards() int { return n.shards }

// CrossOrdered reports whether the node merges its shards' streams into
// one total order (Config.CrossOrder). State-machine replication over
// Deliveries requires it whenever Shards > 1 — without the merge, only
// per-shard subsequences agree across nodes.
func (n *Node) CrossOrdered() bool { return n.crossOrder }

// ShardOf returns the shard SendKeyed would route key to.
func (n *Node) ShardOf(key []byte) int {
	s := n.shardFn(key, n.shards)
	if s < 0 || s >= n.shards {
		return 0
	}
	return s
}

// submit queues payload on shard s, applying the CrossOrder envelope when
// the merge is on.
func (n *Node) submit(s int, payload []byte) error {
	n.mu.Lock()
	closed := n.closed
	n.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if n.crossOrder {
		payload = shard.WrapApp(n.clock.Tick(), payload)
	}
	if !n.rts[s].Submit(payload) {
		return ErrBackpressure
	}
	return nil
}

// Send queues payload for totally-ordered broadcast to the ring — shard 0
// on a multi-shard node (use SendKeyed to spread load). The payload is
// owned by the node afterwards. It returns ErrBackpressure when the send
// queue is full and ErrClosed after Close.
func (n *Node) Send(payload []byte) error { return n.submit(0, payload) }

// SendKeyed queues payload on the shard ShardFunc assigns to key. All
// messages sharing a key are totally ordered with respect to each other
// on every node; messages on different shards are mutually unordered
// unless CrossOrder is enabled. On a single-ring node SendKeyed is Send.
func (n *Node) SendKeyed(key, payload []byte) error {
	s := n.shardFn(key, n.shards)
	if s < 0 || s >= n.shards {
		return fmt.Errorf("%w: ShardFunc returned %d for %d shards", ErrConfig, s, n.shards)
	}
	return n.submit(s, payload)
}

// Deliveries returns the totally-ordered message stream. On a single
// ring, every node in a configuration observes the same sequence. With
// Shards > 1 the channel merges all shards (Delivery.Shard identifies
// each message's ring): per-shard subsequences are identical on every
// node, and with CrossOrder the entire merged sequence is. The channel
// closes on Close.
func (n *Node) Deliveries() <-chan Delivery {
	if n.deliveries != nil {
		return n.deliveries
	}
	return n.rts[0].Deliveries()
}

// Faults returns the network fault-report stream (paper §3: the alarm an
// administrator reacts to while the system keeps running). With
// Shards > 1 each shard's monitors report independently (FaultReport.Shard);
// a physical network fault typically surfaces once per shard.
func (n *Node) Faults() <-chan FaultReport {
	if n.faults != nil {
		return n.faults
	}
	return n.rts[0].Faults()
}

// FaultsCleared returns the stream of automatic readmissions: one
// ClearReport per network the recovery monitor returned to service after
// it served out its probation. Empty when DisableAutoReadmit is set. The
// channel closes on Close.
func (n *Node) FaultsCleared() <-chan ClearReport {
	if n.cleared != nil {
		return n.cleared
	}
	return n.rts[0].Cleared()
}

// ConfigChanges returns the membership change stream. Per extended
// virtual synchrony, each regular configuration is preceded by a
// transitional configuration scoping the messages delivered across the
// membership change. With Shards > 1 every shard's membership evolves
// independently (ConfigChange.Shard). The channel closes on Close.
func (n *Node) ConfigChanges() <-chan ConfigChange {
	if n.configs != nil {
		return n.configs
	}
	return n.rts[0].Configs()
}

// Ring returns the current configuration's identifier and members (shard
// 0's on a multi-shard node; see RingOf). It reports the zero RingID
// until the first configuration installs.
func (n *Node) Ring() (RingID, []NodeID) { return n.RingOf(0) }

// RingOf returns shard s's configuration identifier and members. It
// panics if s is out of [0, Shards()), like a slice index.
func (n *Node) RingOf(s int) (RingID, []NodeID) {
	var (
		ring    RingID
		members []NodeID
	)
	n.rts[s].Inspect(func(st *stack.Node) {
		ring = st.SRP().Ring()
		members = st.SRP().Members()
	})
	return ring, members
}

// Operational reports whether the node has installed a configuration and
// is exchanging traffic (as opposed to forming one) — on every shard,
// with Shards > 1.
func (n *Node) Operational() bool {
	for s := range n.rts {
		if !n.OperationalOf(s) {
			return false
		}
	}
	return true
}

// OperationalOf reports whether shard s has installed a configuration.
// It panics if s is out of [0, Shards()), like a slice index.
func (n *Node) OperationalOf(s int) bool {
	op := false
	n.rts[s].Inspect(func(st *stack.Node) {
		op = st.SRP().State() == srp.StateOperational
	})
	return op
}

// StateName returns the human-readable name of the node's current
// protocol state ("operational", "gather", ...), for diagnostics (shard
// 0's state on a multi-shard node).
func (n *Node) StateName() string {
	s := "closed"
	n.rts[0].Inspect(func(st *stack.Node) {
		s = st.SRP().State().String()
	})
	return s
}

// MaxEpoch returns the highest ring epoch this node has observed, across
// all shards. A node restarting into an existing ring should carry it
// forward (via Options.SRP.InitialEpoch) so its new ring identifiers keep
// advancing.
func (n *Node) MaxEpoch() uint32 {
	var e uint32
	for _, rt := range n.rts {
		rt.Inspect(func(st *stack.Node) {
			if m := st.SRP().MaxEpoch(); m > e {
				e = m
			}
		})
	}
	return e
}

// Backlog returns the number of queued, not-yet-ordered application
// messages, summed across shards (drains to zero on an idle healthy
// ring).
func (n *Node) Backlog() int {
	b := 0
	for _, rt := range n.rts {
		rt.Inspect(func(st *stack.Node) {
			b += st.Backlog()
		})
	}
	return b
}

// NetworkFaults returns the per-network faulty flags of the RRP layer
// (shard 0's monitors on a multi-shard node; shards monitor the same
// physical networks independently).
func (n *Node) NetworkFaults() []bool {
	var f []bool
	n.rts[0].Inspect(func(st *stack.Node) {
		f = st.Replicator().Faulty()
	})
	return f
}

// ReadmitNetwork clears the faulty verdict on a repaired network — the
// administrator's action after reacting to the alarm (paper §3). The
// network immediately rejoins the replication pattern with fresh monitor
// state, on every shard. It is a no-op if the network was not marked
// faulty. With automatic readmission enabled (the default) calling it is
// optional: the recovery monitor readmits healed networks on its own
// after probation.
func (n *Node) ReadmitNetwork(network int) {
	for _, rt := range n.rts {
		rt.Inspect(func(st *stack.Node) {
			st.Replicator().Readmit(network)
		})
	}
}

// Corrupt scrambles one slice of this node's protocol state in place and
// reports whether the damage applied — the arbitrary-initial-state
// recovery probe used by the conformance harness (DESIGN.md §12). sub is
// one of "monitors", "held-token", "ring-seq", "aru"; seed fixes the
// scramble for replay. The protocol is expected to re-converge on its own;
// this is a fault-injection hook, not an administrative API.
func (n *Node) Corrupt(sub string, seed int64) bool {
	return n.rts[0].Mutate(func(now proto.Time, st *stack.Node) []proto.Action {
		return st.Corrupt(now, sub, seed)
	})
}

// Stats is a point-in-time snapshot of the node's protocol counters.
type Stats struct {
	// SRP counters (ordering layer).
	SRP srp.Stats
	// RRP counters (replication layer), including per-network traffic.
	RRP core.Stats
}

// Stats returns a snapshot of the protocol counters (shard 0's on a
// multi-shard node; see StatsOf).
func (n *Node) Stats() Stats { return n.StatsOf(0) }

// StatsOf returns a snapshot of shard s's protocol counters. It panics
// if s is out of [0, Shards()), like a slice index.
func (n *Node) StatsOf(s int) Stats {
	var out Stats
	n.rts[s].Inspect(func(st *stack.Node) {
		out.SRP = st.SRP().Stats()
		out.RRP = st.Replicator().Stats()
	})
	return out
}

// Metrics returns the node's metric registry: every layer's named
// counters and gauges ("srp.*", "rrp.*", "udp.*", "runtime.*") in one
// snapshot-able source of truth. Safe for concurrent reads while the node
// runs. On a multi-shard node this is shard 0's registry, which also
// carries the shared wire and mux counters ("shardmux.*") and the
// CrossOrder hold-back gauge ("shard.merge_pending"); see MetricsOf.
func (n *Node) Metrics() *metrics.Registry { return n.mets[0] }

// MetricsOf returns shard s's metric registry — each shard's protocol
// layers count into their own namespace object. It panics if s is out of
// [0, Shards()), like a slice index.
func (n *Node) MetricsOf(s int) *metrics.Registry { return n.mets[s] }

// Trace returns the internal event ring created by Options.TraceCapacity,
// or nil when tracing is disabled or an external Tracer was supplied.
// On a multi-shard node the ring traces shard 0.
func (n *Node) Trace() *trace.Ring { return n.ring }

// Close shuts the node down: every shard's protocol loop stops and the
// event channels close once their buffered events are consumed or
// dropped. The transport is not closed (the caller owns it). Idempotent.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	n.mu.Unlock()
	if n.markerStop != nil {
		close(n.markerStop)
	}
	for _, rt := range n.rts {
		rt.Close()
	}
	if n.mux != nil {
		n.mux.Close()
	}
	return nil
}
