// Package totem is a Go implementation of the Totem Redundant Ring
// Protocol (Koch, Moser, Melliar-Smith — ICDCS 2002): reliable,
// totally-ordered group communication over N redundant local-area
// networks, with partial or total network failures kept transparent to
// the application.
//
// A Node joins a logical token-passing ring (the Totem Single Ring
// Protocol) and exchanges messages with the other members. The redundant
// ring layer (RRP) sends traffic over multiple networks according to a
// replication style:
//
//   - Active: every packet on every network; loss on up to N-1 networks
//     is masked with no retransmission delay.
//   - Passive: each packet on one network, round-robin; the aggregate
//     throughput of all networks becomes available.
//   - ActivePassive: K of N copies — a configurable middle ground.
//
// When a network fails, the built-in monitors raise a FaultReport while
// the ring keeps running on the surviving networks — no membership change
// occurs (paper §3). A recovery monitor then watches the faulted network
// and readmits it automatically once it demonstrates sustained clean
// reception, with exponential flap damping for unstable links; the
// readmission is announced on FaultsCleared (set DisableAutoReadmit to
// keep the paper's manual-only model). Node joins, crashes and
// partition merges are handled
// by the membership protocol and surfaced as ConfigChange events with
// extended-virtual-synchrony semantics.
//
// Minimal use:
//
//	hub := totem.NewMemHub(2) // or totem.NewUDPTransport(...)
//	tr, _ := hub.Join(1)
//	node, _ := totem.NewNode(totem.Config{
//		ID:          1,
//		Networks:    2,
//		Replication: totem.Passive,
//	}, tr)
//	defer node.Close()
//	node.Send([]byte("hello"))
//	for d := range node.Deliveries() {
//		fmt.Printf("%s said %q\n", d.Sender, d.Payload)
//	}
package totem

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/totem-rrp/totem/internal/core"
	"github.com/totem-rrp/totem/internal/metrics"
	"github.com/totem-rrp/totem/internal/proto"
	"github.com/totem-rrp/totem/internal/srp"
	"github.com/totem-rrp/totem/internal/stack"
	"github.com/totem-rrp/totem/internal/trace"
	"github.com/totem-rrp/totem/internal/transport"
)

// Re-exported primitive types. These are aliases: values flow between the
// public API and the protocol engine without conversion.
type (
	// NodeID identifies a ring member (non-zero).
	NodeID = proto.NodeID
	// RingID identifies a membership configuration.
	RingID = proto.RingID
	// Delivery is one totally-ordered message.
	Delivery = proto.Delivery
	// FaultReport is a network-fault alarm from the RRP monitors.
	FaultReport = proto.FaultReport
	// ClearReport announces the automatic readmission of a healed network.
	ClearReport = proto.ClearReport
	// ConfigChange is a membership change (transitional or regular).
	ConfigChange = proto.ConfigChange
	// ReplicationStyle selects how traffic maps onto the networks.
	ReplicationStyle = proto.ReplicationStyle
)

// Replication styles (paper §4).
const (
	// NoReplication runs the ring on a single network (the paper's
	// baseline).
	NoReplication = proto.ReplicationNone
	// Active sends every message and token on all networks (paper §5).
	Active = proto.ReplicationActive
	// Passive alternates messages and tokens across the networks
	// round-robin (paper §6).
	Passive = proto.ReplicationPassive
	// ActivePassive sends K of N copies (paper §7); requires N >= 3.
	ActivePassive = proto.ReplicationActivePassive
)

// Delivery guarantees.
const (
	// Agreed delivers a message once all predecessors in the total order
	// have been received (default).
	Agreed = srp.DeliverAgreed
	// Safe additionally waits until every ring member is known to hold
	// the message.
	Safe = srp.DeliverSafe
)

// Transport moves packets over the N redundant networks. Use NewMemHub
// for in-process rings or NewUDPTransport for real deployments; custom
// implementations (e.g. the discrete-event simulator) satisfy the same
// interface.
type Transport = transport.Transport

// MemHub is an in-process transport hub (see NewMemHub).
type MemHub = transport.MemHub

// NewMemHub creates an in-process hub with n redundant networks. Each
// node calls Join to obtain its Transport.
func NewMemHub(n int) *MemHub { return transport.NewMemHub(n) }

// UDPConfig configures a UDP transport (one socket per network).
type UDPConfig = transport.UDPConfig

// NewUDPTransport opens UDP sockets on each redundant network.
func NewUDPTransport(cfg UDPConfig) (Transport, error) { return transport.NewUDP(cfg) }

// Config parameterises a Node. Zero fields take defaults; ID, Networks
// and Replication are required.
type Config struct {
	// ID is this node's unique, non-zero identifier. The smallest ID in a
	// membership acts as ring representative.
	ID NodeID
	// Networks is N, the number of redundant networks the transport
	// provides.
	Networks int
	// Replication selects the replication style.
	Replication ReplicationStyle
	// K is the copy count for ActivePassive (default 2).
	K int
	// Delivery selects Agreed (default) or Safe delivery.
	Delivery srp.DeliveryMode

	// DisableAutoReadmit turns off the automatic readmission of healed
	// networks, restoring the paper's manual-only model: a faulty network
	// then stays excluded until ReadmitNetwork is called. By default the
	// recovery monitor places faulted networks on probation and readmits
	// them once they demonstrate sustained clean reception, announcing
	// each readmission on FaultsCleared.
	DisableAutoReadmit bool

	// Tune, if non-nil, may adjust the low-level protocol parameters
	// (timeouts, window sizes, monitor thresholds) before validation.
	Tune func(*Options)
}

// Options exposes the low-level protocol knobs to Config.Tune.
type Options struct {
	// SRP holds the single-ring protocol parameters (timeouts, flow
	// control window, queue bounds).
	SRP srp.Config
	// RRP holds the redundant-ring parameters (token timers, monitor
	// thresholds, decay interval).
	RRP core.Config

	// Tracer, if non-nil, receives every protocol event (packets, timers,
	// deliveries, faults, membership, machine probes). It must be safe for
	// concurrent reads if the caller inspects it while the node runs;
	// trace.NewRing and trace.NewCounter both are. When nil and
	// TraceCapacity > 0, the node creates an internal ring of that
	// capacity, exposed via Node.Trace.
	Tracer trace.Tracer
	// TraceCapacity sizes the internal trace ring created when Tracer is
	// nil. Zero disables tracing entirely (probe emission then costs a
	// single predicted branch per site).
	TraceCapacity int

	// DeliveryTap, if non-nil, observes every delivery synchronously on
	// the protocol goroutine, before it is queued on Node.Deliveries. It
	// must not block: a slow tap stalls the token ring. The conformance
	// harness uses it to feed the torture invariant checker in exact
	// protocol order; Deliveries still receives every message.
	DeliveryTap func(Delivery)
}

// Errors returned by the public API.
var (
	// ErrBackpressure reports a full send queue; retry after deliveries
	// drain.
	ErrBackpressure = errors.New("totem: send queue full")
	// ErrClosed reports use after Close.
	ErrClosed = errors.New("totem: node closed")
	// ErrConfig reports an invalid configuration.
	ErrConfig = errors.New("totem: invalid configuration")
)

// Node is one member of the redundant ring. All methods are safe for
// concurrent use.
type Node struct {
	id   NodeID
	rt   *transport.Runtime
	met  *metrics.Registry
	ring *trace.Ring // non-nil only when TraceCapacity created it

	mu     sync.Mutex
	closed bool
}

// NewNode builds and starts a node on the given transport. The node
// immediately begins forming or joining a ring; membership progress is
// reported on ConfigChanges.
func NewNode(cfg Config, tr Transport) (*Node, error) {
	if tr == nil {
		return nil, fmt.Errorf("%w: nil transport", ErrConfig)
	}
	if cfg.Networks == 0 {
		cfg.Networks = tr.Networks()
	}
	if cfg.Networks != tr.Networks() {
		return nil, fmt.Errorf("%w: Networks=%d but transport has %d", ErrConfig, cfg.Networks, tr.Networks())
	}
	if cfg.Replication == 0 {
		cfg.Replication = NoReplication
	}
	opts := Options{
		SRP: srp.DefaultConfig(cfg.ID),
		RRP: core.DefaultConfig(cfg.Networks, cfg.Replication),
	}
	// Real-time deployments get the idle token hold by default so an idle
	// ring does not spin the CPU; Tune may override it.
	opts.SRP.IdleTokenHold = 2 * time.Millisecond
	if cfg.K != 0 {
		opts.RRP.K = cfg.K
	}
	if cfg.Delivery != 0 {
		opts.SRP.Delivery = cfg.Delivery
	}
	if cfg.DisableAutoReadmit {
		opts.RRP.AutoReadmit = false
	}
	if cfg.Tune != nil {
		cfg.Tune(&opts)
		opts.SRP.ID = cfg.ID // the identity is not tunable
	}
	st, err := stack.New(stack.Config{SRP: opts.SRP, RRP: opts.RRP})
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	n := &Node{id: cfg.ID, rt: transport.NewRuntime(st, tr), met: st.Metrics()}
	tracer := opts.Tracer
	if tracer == nil && opts.TraceCapacity > 0 {
		n.ring = trace.NewRing(opts.TraceCapacity)
		tracer = n.ring
	}
	if tracer != nil {
		n.rt.SetTracer(tracer)
	}
	if opts.DeliveryTap != nil {
		n.rt.SetDeliveryTap(opts.DeliveryTap)
	}
	n.rt.Start()
	return n, nil
}

// ID returns this node's identifier.
func (n *Node) ID() NodeID { return n.id }

// Send queues payload for totally-ordered broadcast to the ring. The
// payload is owned by the node afterwards. It returns ErrBackpressure
// when the send queue is full and ErrClosed after Close.
func (n *Node) Send(payload []byte) error {
	n.mu.Lock()
	closed := n.closed
	n.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if !n.rt.Submit(payload) {
		return ErrBackpressure
	}
	return nil
}

// Deliveries returns the totally-ordered message stream. Every node in a
// configuration observes the same sequence. The channel closes on Close.
func (n *Node) Deliveries() <-chan Delivery { return n.rt.Deliveries() }

// Faults returns the network fault-report stream (paper §3: the alarm an
// administrator reacts to while the system keeps running).
func (n *Node) Faults() <-chan FaultReport { return n.rt.Faults() }

// FaultsCleared returns the stream of automatic readmissions: one
// ClearReport per network the recovery monitor returned to service after
// it served out its probation. Empty when DisableAutoReadmit is set. The
// channel closes on Close.
func (n *Node) FaultsCleared() <-chan ClearReport { return n.rt.Cleared() }

// ConfigChanges returns the membership change stream. Per extended
// virtual synchrony, each regular configuration is preceded by a
// transitional configuration scoping the messages delivered across the
// membership change. The channel closes on Close.
func (n *Node) ConfigChanges() <-chan ConfigChange { return n.rt.Configs() }

// Ring returns the current configuration's identifier and members. It
// reports the zero RingID until the first configuration installs.
func (n *Node) Ring() (RingID, []NodeID) {
	var (
		ring    RingID
		members []NodeID
	)
	n.rt.Inspect(func(st *stack.Node) {
		ring = st.SRP().Ring()
		members = st.SRP().Members()
	})
	return ring, members
}

// Operational reports whether the node has installed a configuration and
// is exchanging traffic (as opposed to forming one).
func (n *Node) Operational() bool {
	op := false
	n.rt.Inspect(func(st *stack.Node) {
		op = st.SRP().State() == srp.StateOperational
	})
	return op
}

// StateName returns the human-readable name of the node's current
// protocol state ("operational", "gather", ...), for diagnostics.
func (n *Node) StateName() string {
	s := "closed"
	n.rt.Inspect(func(st *stack.Node) {
		s = st.SRP().State().String()
	})
	return s
}

// MaxEpoch returns the highest ring epoch this node has observed. A node
// restarting into an existing ring should carry it forward (via
// Options.SRP.InitialEpoch) so its new ring identifiers keep advancing.
func (n *Node) MaxEpoch() uint32 {
	var e uint32
	n.rt.Inspect(func(st *stack.Node) {
		e = st.SRP().MaxEpoch()
	})
	return e
}

// Backlog returns the number of queued, not-yet-ordered application
// messages (drains to zero on an idle healthy ring).
func (n *Node) Backlog() int {
	b := 0
	n.rt.Inspect(func(st *stack.Node) {
		b = st.Backlog()
	})
	return b
}

// NetworkFaults returns the per-network faulty flags of the RRP layer.
func (n *Node) NetworkFaults() []bool {
	var f []bool
	n.rt.Inspect(func(st *stack.Node) {
		f = st.Replicator().Faulty()
	})
	return f
}

// ReadmitNetwork clears the faulty verdict on a repaired network — the
// administrator's action after reacting to the alarm (paper §3). The
// network immediately rejoins the replication pattern with fresh monitor
// state. It is a no-op if the network was not marked faulty. With
// automatic readmission enabled (the default) calling it is optional: the
// recovery monitor readmits healed networks on its own after probation.
func (n *Node) ReadmitNetwork(network int) {
	n.rt.Inspect(func(st *stack.Node) {
		st.Replicator().Readmit(network)
	})
}

// Corrupt scrambles one slice of this node's protocol state in place and
// reports whether the damage applied — the arbitrary-initial-state
// recovery probe used by the conformance harness (DESIGN.md §12). sub is
// one of "monitors", "held-token", "ring-seq", "aru"; seed fixes the
// scramble for replay. The protocol is expected to re-converge on its own;
// this is a fault-injection hook, not an administrative API.
func (n *Node) Corrupt(sub string, seed int64) bool {
	return n.rt.Mutate(func(now proto.Time, st *stack.Node) []proto.Action {
		return st.Corrupt(now, sub, seed)
	})
}

// Stats is a point-in-time snapshot of the node's protocol counters.
type Stats struct {
	// SRP counters (ordering layer).
	SRP srp.Stats
	// RRP counters (replication layer), including per-network traffic.
	RRP core.Stats
}

// Stats returns a snapshot of the protocol counters.
func (n *Node) Stats() Stats {
	var s Stats
	n.rt.Inspect(func(st *stack.Node) {
		s.SRP = st.SRP().Stats()
		s.RRP = st.Replicator().Stats()
	})
	return s
}

// Metrics returns the node's metric registry: every layer's named
// counters and gauges ("srp.*", "rrp.*", "udp.*", "runtime.*") in one
// snapshot-able source of truth. Safe for concurrent reads while the node
// runs.
func (n *Node) Metrics() *metrics.Registry { return n.met }

// Trace returns the internal event ring created by Options.TraceCapacity,
// or nil when tracing is disabled or an external Tracer was supplied.
func (n *Node) Trace() *trace.Ring { return n.ring }

// Close shuts the node down. The transport is not closed (the caller owns
// it).
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	n.mu.Unlock()
	n.rt.Close()
	return nil
}
