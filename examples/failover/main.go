// Failover: the paper's headline behaviour (§1, §3) plus this
// implementation's self-healing extension. Three nodes run on two
// redundant networks with active replication; mid-stream, network 1 dies
// completely. The message stream continues without interruption or
// membership change, the RRP monitors raise the operator alarm — and
// once the network is physically repaired, the recovery monitor readmits
// it automatically, no operator command required.
//
//	go run ./examples/failover
package main

import (
	"fmt"
	"os"
	"time"

	totem "github.com/totem-rrp/totem"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	const (
		members  = 3
		networks = 2
	)
	hub := totem.NewMemHub(networks)
	nodes := make([]*totem.Node, 0, members)
	for i := 1; i <= members; i++ {
		tr, err := hub.Join(totem.NodeID(i))
		if err != nil {
			return err
		}
		node, err := totem.NewNode(totem.Config{
			ID:          totem.NodeID(i),
			Networks:    networks,
			Replication: totem.Active,
			// Shorten the recovery monitor's observation window so the
			// demo's probation (3 clean windows) lasts well under a second.
			Tune: func(o *totem.Options) {
				o.RRP.DecayInterval = 200 * time.Millisecond
			},
		}, tr)
		if err != nil {
			return err
		}
		defer node.Close()
		nodes = append(nodes, node)
	}
	for !ready(nodes, members) {
		time.Sleep(20 * time.Millisecond)
	}
	ringBefore, ids := nodes[0].Ring()
	fmt.Printf("ring %v formed with members %v on %d redundant networks\n", ringBefore, ids, networks)

	// A steady publisher on node 1; a consumer on node 3.
	stop := make(chan struct{})
	go func() {
		seq := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			payload := fmt.Sprintf("tick %d", seq)
			if err := nodes[0].Send([]byte(payload)); err == nil {
				seq++
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
	defer close(stop)

	consume := func(n int) int {
		count := 0
		deadline := time.After(10 * time.Second)
		for count < n {
			select {
			case <-nodes[2].Deliveries():
				count++
			case <-deadline:
				return count
			}
		}
		return count
	}

	if got := consume(100); got < 100 {
		return fmt.Errorf("only %d messages before the fault", got)
	}
	fmt.Println("100 messages delivered; killing network 1 ...")
	hub.KillNetwork(1)

	// The stream continues across the fault.
	if got := consume(300); got < 300 {
		return fmt.Errorf("stream interrupted by network death: only %d messages after", got)
	}
	fmt.Println("300 more messages delivered across the network failure")

	// The operator alarm fires ...
	select {
	case f := <-nodes[2].Faults():
		fmt.Printf("operator alarm: %v\n", f)
	case <-time.After(15 * time.Second):
		return fmt.Errorf("no fault report raised")
	}

	// ... and the failure was transparent: same ring, same members.
	ringAfter, idsAfter := nodes[0].Ring()
	if ringAfter != ringBefore {
		return fmt.Errorf("membership changed: %v -> %v", ringBefore, ringAfter)
	}
	fmt.Printf("membership unchanged (%v, members %v): the fault was transparent\n", ringAfter, idsAfter)
	fmt.Printf("per-network fault flags at node 3: %v\n", nodes[2].NetworkFaults())

	// The administrator repairs the network — and that is all. The
	// recovery monitor observes the healed network during probation and
	// readmits it automatically (use DisableAutoReadmit + ReadmitNetwork
	// for the paper's manual model).
	fmt.Println("repairing network 1; waiting for automatic readmission ...")
	hub.ReviveNetwork(1)
	select {
	case cr := <-nodes[2].FaultsCleared():
		fmt.Printf("self-healed: %v\n", cr)
	case <-time.After(30 * time.Second):
		return fmt.Errorf("healed network was never auto-readmitted")
	}
	if got := consume(100); got < 100 {
		return fmt.Errorf("stream faltered after readmission: %d", got)
	}
	fmt.Printf("redundancy restored without operator action; flags now: %v\n", nodes[2].NetworkFaults())
	return nil
}

func ready(nodes []*totem.Node, want int) bool {
	for _, n := range nodes {
		if _, members := n.Ring(); len(members) != want || !n.Operational() {
			return false
		}
	}
	return true
}
