// Imagepipeline: distributed real-time image analysis, one of the paper's
// motivating applications (§1: "real-time radar image analysis"). A radar
// node broadcasts fixed-size frames; three analysis workers share the
// load by deterministic partitioning over the total order — worker w
// processes every frame whose delivery index i satisfies i % workers == w.
// No work queue or coordinator is needed: the identical total order at
// every worker IS the schedule, and it stays intact while one of the two
// networks is lossy.
//
//	go run ./examples/imagepipeline
package main

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"time"

	totem "github.com/totem-rrp/totem"
)

const (
	frameBytes = 4096 // a small radar sweep tile (fragmented on the wire)
	frames     = 120
	workers    = 3
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	hub := totem.NewMemHub(2)

	// Node 1 is the radar (producer); nodes 2..4 are analysis workers.
	ids := []totem.NodeID{1, 2, 3, 4}
	nodes := make(map[totem.NodeID]*totem.Node, len(ids))
	for _, id := range ids {
		tr, err := hub.Join(id)
		if err != nil {
			return err
		}
		// Active replication: a frame lost on one network arrives on the
		// other with no retransmission delay — the paper's recommendation
		// for latency-sensitive real-time loads (§4).
		node, err := totem.NewNode(totem.Config{
			ID:          id,
			Networks:    2,
			Replication: totem.Active,
		}, tr)
		if err != nil {
			return err
		}
		defer node.Close()
		nodes[id] = node
	}
	for !ready(nodes, len(ids)) {
		time.Sleep(20 * time.Millisecond)
	}
	fmt.Printf("pipeline up: 1 radar, %d workers, 2 redundant networks (one lossy)\n", workers)

	// Worker goroutines: each applies the same partitioning rule to the
	// same total order, so every frame is analysed by exactly one worker.
	type analysis struct {
		worker  int
		frameID uint32
		crc     uint32
	}
	results := make(chan analysis, frames)
	for w := 0; w < workers; w++ {
		node := nodes[totem.NodeID(w+2)]
		go func() {
			index := 0
			for d := range node.Deliveries() {
				mine := index%workers == w
				index++
				if !mine {
					continue
				}
				frameID := binary.BigEndian.Uint32(d.Payload)
				results <- analysis{worker: w, frameID: frameID, crc: crc32.ChecksumIEEE(d.Payload)}
			}
		}()
	}

	// The radar streams frames while network 0 drops 2% of its packets.
	go func() {
		frame := make([]byte, frameBytes)
		for i := 0; i < frames; i++ {
			binary.BigEndian.PutUint32(frame, uint32(i))
			for nodes[1].Send(append([]byte(nil), frame...)) != nil {
				time.Sleep(time.Millisecond)
			}
		}
	}()

	// Collect: every frame analysed exactly once, spread across workers.
	seen := make(map[uint32]int, frames)
	perWorker := make([]int, workers)
	deadline := time.After(60 * time.Second)
	for len(seen) < frames {
		select {
		case a := <-results:
			if prev, dup := seen[a.frameID]; dup {
				return fmt.Errorf("frame %d analysed twice (workers %d and %d)", a.frameID, prev, a.worker)
			}
			seen[a.frameID] = a.worker
			perWorker[a.worker]++
		case <-deadline:
			return fmt.Errorf("pipeline stalled at %d/%d frames", len(seen), frames)
		}
	}
	fmt.Printf("%d frames analysed exactly once; load split %v across workers\n", frames, perWorker)
	return nil
}

func ready(nodes map[totem.NodeID]*totem.Node, want int) bool {
	for _, n := range nodes {
		if _, members := n.Ring(); len(members) != want || !n.Operational() {
			return false
		}
	}
	return true
}
