// Ledger: replicated state machine for a toy bank, the classic use of
// totally-ordered group communication in the paper's motivating domain
// ("back-end servers for financial applications", §1).
//
// Four replicas receive a stream of concurrent transfer requests from
// different nodes. Because every replica applies the transfers in the
// identical total order — including overdraft rejections, which depend on
// that order — all replicas end with identical balances, with no locks,
// leader or extra coordination.
//
//	go run ./examples/ledger
package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"time"

	totem "github.com/totem-rrp/totem"
)

// transfer is the replicated command.
type transfer struct {
	From   string `json:"from"`
	To     string `json:"to"`
	Amount int    `json:"amount"`
}

// ledger is the deterministic state machine.
type ledger struct {
	balances map[string]int
	applied  int
	rejected int
}

func newLedger() *ledger {
	return &ledger{balances: map[string]int{"alice": 1000, "bob": 1000, "carol": 1000}}
}

// apply executes one command; rejecting an overdraft is part of the
// deterministic state transition.
func (l *ledger) apply(t transfer) {
	if l.balances[t.From] < t.Amount {
		l.rejected++
		return
	}
	l.balances[t.From] -= t.Amount
	l.balances[t.To] += t.Amount
	l.applied++
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	const (
		replicas  = 4
		networks  = 2
		transfers = 200
	)
	hub := totem.NewMemHub(networks)
	nodes := make([]*totem.Node, 0, replicas)
	ledgers := make([]*ledger, replicas)
	for i := 1; i <= replicas; i++ {
		tr, err := hub.Join(totem.NodeID(i))
		if err != nil {
			return err
		}
		// Safe delivery: a transfer is applied only once every replica is
		// known to hold it — the right guarantee for money movements.
		node, err := totem.NewNode(totem.Config{
			ID:          totem.NodeID(i),
			Networks:    networks,
			Replication: totem.Active,
			Delivery:    totem.Safe,
		}, tr)
		if err != nil {
			return err
		}
		defer node.Close()
		nodes = append(nodes, node)
		ledgers[i-1] = newLedger()
	}
	for !operational(nodes, replicas) {
		time.Sleep(20 * time.Millisecond)
	}

	// Concurrent clients: every replica submits transfers between random
	// accounts. The ring serialises them.
	rng := rand.New(rand.NewSource(7))
	accounts := []string{"alice", "bob", "carol"}
	for i := 0; i < transfers; i++ {
		t := transfer{
			From:   accounts[rng.Intn(len(accounts))],
			To:     accounts[rng.Intn(len(accounts))],
			Amount: 1 + rng.Intn(500),
		}
		payload, err := json.Marshal(t)
		if err != nil {
			return err
		}
		submitter := nodes[rng.Intn(len(nodes))]
		for submitter.Send(payload) != nil {
			time.Sleep(time.Millisecond)
		}
	}

	// Apply the totally-ordered stream at every replica.
	for i, n := range nodes {
		for ledgers[i].applied+ledgers[i].rejected < transfers {
			select {
			case d := <-n.Deliveries():
				var t transfer
				if err := json.Unmarshal(d.Payload, &t); err != nil {
					return fmt.Errorf("replica %d: corrupt command: %w", i+1, err)
				}
				ledgers[i].apply(t)
			case <-time.After(30 * time.Second):
				return fmt.Errorf("replica %d stalled at %d commands", i+1, ledgers[i].applied+ledgers[i].rejected)
			}
		}
	}

	// All replicas must agree exactly.
	for i := 1; i < replicas; i++ {
		if !reflect.DeepEqual(ledgers[0].balances, ledgers[i].balances) {
			return fmt.Errorf("replica divergence!\n  replica 1: %v\n  replica %d: %v",
				ledgers[0].balances, i+1, ledgers[i].balances)
		}
		if ledgers[0].rejected != ledgers[i].rejected {
			return fmt.Errorf("replicas disagree on rejected overdrafts: %d vs %d",
				ledgers[0].rejected, ledgers[i].rejected)
		}
	}
	total := 0
	for _, v := range ledgers[0].balances {
		total += v
	}
	fmt.Printf("processed %d transfers (%d applied, %d overdrafts rejected)\n",
		transfers, ledgers[0].applied, ledgers[0].rejected)
	fmt.Printf("all %d replicas agree: %v (conserved total %d)\n",
		replicas, ledgers[0].balances, total)
	return nil
}

func operational(nodes []*totem.Node, want int) bool {
	for _, n := range nodes {
		if _, members := n.Ring(); len(members) != want || !n.Operational() {
			return false
		}
	}
	return true
}
