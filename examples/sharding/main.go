// Sharding: one Node runs four independent rings over the same two
// redundant networks. Keys route to shards (FNV-1a by default), each
// shard delivers its own total order, and faulting or saturating one
// shard never stalls the others. A second cluster turns on CrossOrder
// and shows every node deriving the identical merged cross-shard
// sequence with no extra agreement round.
//
//	go run ./examples/sharding
package main

import (
	"fmt"
	"log"
	"os"
	"reflect"
	"time"

	totem "github.com/totem-rrp/totem"
)

const (
	members  = 3
	networks = 2
	shards   = 4
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	nodes, err := boot(false)
	if err != nil {
		return err
	}
	defer closeAll(nodes)

	// Keyed sends: each key lands on one ring and stays ordered there.
	// dave/bob/alice/carol hash to shards 0/1/2/3 — one ring each.
	keys := []string{"account:dave", "account:bob", "account:alice", "account:carol"}
	for _, key := range keys {
		log.Printf("key %-14q -> shard %d", key, nodes[0].ShardOf([]byte(key)))
	}
	for round := 0; round < 3; round++ {
		for _, key := range keys {
			msg := fmt.Sprintf("%s update %d", key, round)
			if err := nodes[0].SendKeyed([]byte(key), []byte(msg)); err != nil {
				return err
			}
		}
	}

	// Every node drains the same 12 messages; group them by shard to
	// show the per-ring orders.
	perShard := make([][]string, shards)
	for i := 0; i < len(keys)*3; i++ {
		d := <-nodes[1].Deliveries()
		perShard[d.Shard] = append(perShard[d.Shard], string(d.Payload))
	}
	for s, msgs := range perShard {
		fmt.Printf("shard %d delivered in order:\n", s)
		for _, m := range msgs {
			fmt.Printf("  %s\n", m)
		}
	}

	// Per-shard introspection rides along.
	for s := 0; s < nodes[0].Shards(); s++ {
		ring, ids := nodes[0].RingOf(s)
		fmt.Printf("shard %d: ring %v members %v delivered %d\n",
			s, ring, ids, nodes[0].StatsOf(s).SRP.MsgsDelivered)
	}

	closeAll(nodes)

	// Part two: the same cluster with the deterministic cross-shard
	// merge — one global total order on top of the sharded throughput.
	nodes, err = boot(true)
	if err != nil {
		return err
	}
	defer closeAll(nodes)

	for round := 0; round < 3; round++ {
		for _, key := range keys {
			msg := fmt.Sprintf("%s merged %d", key, round)
			if err := nodes[round%members].SendKeyed([]byte(key), []byte(msg)); err != nil {
				return err
			}
		}
	}
	merged := make([][]string, members)
	for i, n := range nodes {
		for len(merged[i]) < len(keys)*3 {
			d := <-n.Deliveries()
			merged[i] = append(merged[i], string(d.Payload))
		}
	}
	for i := 1; i < members; i++ {
		if !reflect.DeepEqual(merged[0], merged[i]) {
			return fmt.Errorf("nodes disagree on the merged order")
		}
	}
	fmt.Println("cross-order: all nodes derived the identical merged sequence:")
	for _, m := range merged[0] {
		fmt.Printf("  %s\n", m)
	}
	return nil
}

// boot forms a members-node cluster with `shards` rings and waits until
// every shard of every node is operational with full membership.
func boot(crossOrder bool) ([]*totem.Node, error) {
	hub := totem.NewMemHub(networks)
	nodes := make([]*totem.Node, 0, members)
	for i := 1; i <= members; i++ {
		tr, err := hub.Join(totem.NodeID(i))
		if err != nil {
			return nil, err
		}
		node, err := totem.NewNode(totem.Config{
			ID:          totem.NodeID(i),
			Networks:    networks,
			Replication: totem.Passive,
			Shards:      shards,
			CrossOrder:  crossOrder,
		}, tr)
		if err != nil {
			return nil, err
		}
		nodes = append(nodes, node)
	}
	for !allJoined(nodes) {
		time.Sleep(20 * time.Millisecond)
	}
	return nodes, nil
}

func allJoined(nodes []*totem.Node) bool {
	for _, n := range nodes {
		for s := 0; s < n.Shards(); s++ {
			if _, ids := n.RingOf(s); len(ids) != members || !n.OperationalOf(s) {
				return false
			}
		}
	}
	return true
}

func closeAll(nodes []*totem.Node) {
	for _, n := range nodes {
		n.Close()
	}
}
