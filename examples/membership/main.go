// Membership: watch extended-virtual-synchrony configuration changes as
// nodes join, crash and return. Every regular configuration is preceded
// by a transitional configuration that scopes the messages delivered
// across the change, so replicated state machines always know exactly
// which peers share their history.
//
//	go run ./examples/membership
package main

import (
	"fmt"
	"os"
	"time"

	totem "github.com/totem-rrp/totem"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	hub := totem.NewMemHub(2)

	// Node 1 boots alone and watches its configuration stream.
	m1, err := newMember(hub, 1)
	if err != nil {
		return err
	}
	n1 := m1.node
	defer n1.Close()
	watch := make(chan totem.ConfigChange, 64)
	go func() {
		for c := range n1.ConfigChanges() {
			watch <- c
		}
	}()

	expect := func(label string, want int) error {
		deadline := time.After(15 * time.Second)
		for {
			select {
			case c := <-watch:
				kind := "regular     "
				if c.Transitional {
					kind = "transitional"
				}
				fmt.Printf("%-22s %s %v members=%v\n", label, kind, c.Ring, c.Members)
				if !c.Transitional && len(c.Members) == want {
					return nil
				}
			case <-deadline:
				return fmt.Errorf("%s: no %d-member configuration arrived", label, want)
			}
		}
	}

	if err := expect("boot (singleton)", 1); err != nil {
		return err
	}

	// Two more nodes join; the ring reforms around them.
	n2, err := newMember(hub, 2)
	if err != nil {
		return err
	}
	defer n2.node.Close()
	n3, err := newMember(hub, 3)
	if err != nil {
		return err
	}
	if err := expect("after joins", 3); err != nil {
		return err
	}

	// Messages in flight across a crash are scoped by the transitional
	// configuration.
	n1.Send([]byte("before the crash"))
	n3.node.Close() // node 3 crashes
	n3.tr.Close()   // and its NICs go with it
	if err := expect("after node 3 crash", 2); err != nil {
		return err
	}

	// Node 3 returns with the same identity.
	n3b, err := newMember(hub, 3)
	if err != nil {
		return err
	}
	defer n3b.node.Close()
	if err := expect("after node 3 return", 3); err != nil {
		return err
	}

	fmt.Println("membership lifecycle complete: boot → join → crash → rejoin")
	return nil
}

// member bundles a node with its transport so a simulated crash can take
// both down (and the identity can rejoin afterwards).
type member struct {
	node *totem.Node
	tr   totem.Transport
}

func newMember(hub *totem.MemHub, id totem.NodeID) (*member, error) {
	tr, err := hub.Join(id)
	if err != nil {
		return nil, err
	}
	n, err := totem.NewNode(totem.Config{
		ID:          id,
		Networks:    2,
		Replication: totem.Active,
	}, tr)
	if err != nil {
		return nil, err
	}
	return &member{node: n, tr: tr}, nil
}
