// Quickstart: three nodes form a redundant ring over two in-process
// networks with passive replication, exchange messages, and every node
// observes the identical total order.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	totem "github.com/totem-rrp/totem"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	const (
		members  = 3
		networks = 2
	)
	hub := totem.NewMemHub(networks)

	nodes := make([]*totem.Node, 0, members)
	for i := 1; i <= members; i++ {
		tr, err := hub.Join(totem.NodeID(i))
		if err != nil {
			return err
		}
		node, err := totem.NewNode(totem.Config{
			ID:          totem.NodeID(i),
			Networks:    networks,
			Replication: totem.Passive,
		}, tr)
		if err != nil {
			return err
		}
		defer node.Close()
		nodes = append(nodes, node)
	}

	// Wait for the three nodes to agree on one ring.
	for !allJoined(nodes, members) {
		time.Sleep(20 * time.Millisecond)
	}
	ring, ids := nodes[0].Ring()
	log.Printf("ring %v formed with members %v", ring, ids)

	// Every node broadcasts a greeting; the ring totally orders them.
	for _, n := range nodes {
		if err := n.Send([]byte(fmt.Sprintf("hello from %v", n.ID()))); err != nil {
			return err
		}
	}

	// Each node sees the same three messages in the same order.
	for _, n := range nodes {
		fmt.Printf("node %v delivered:\n", n.ID())
		for i := 0; i < members; i++ {
			d := <-n.Deliveries()
			fmt.Printf("  #%d seq=%-4d from %v: %s\n", i+1, d.Seq, d.Sender, d.Payload)
		}
	}
	return nil
}

func allJoined(nodes []*totem.Node, want int) bool {
	for _, n := range nodes {
		if _, members := n.Ring(); len(members) != want || !n.Operational() {
			return false
		}
	}
	return true
}
