module github.com/totem-rrp/totem

go 1.22
