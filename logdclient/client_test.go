package logdclient

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"github.com/totem-rrp/totem/internal/logd"
)

// fakeLog is a shared in-memory logd back end several fake endpoints can
// front, emulating replicas that agree on the dedup table.
type fakeLog struct {
	mu      sync.Mutex
	next    uint64
	clients map[string]logd.ClientState
}

func newFakeLog() *fakeLog { return &fakeLog{clients: make(map[string]logd.ClientState)} }

func (f *fakeLog) commit(client string, seq uint64) (uint64, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if cs, ok := f.clients[client]; ok && seq <= cs.Seq {
		return cs.Offset, seq == cs.Seq
	}
	off := f.next
	f.next++
	f.clients[client] = logd.ClientState{Seq: seq, Offset: off}
	return off, true
}

// appendHandler serves /v1/append against the shared log; behave lets a
// test interpose failures.
func endpoint(t *testing.T, f *fakeLog, behave func(w http.ResponseWriter, r *http.Request) bool) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/append", func(w http.ResponseWriter, r *http.Request) {
		if behave != nil && !behave(w, r) {
			return
		}
		client := r.URL.Query().Get("client")
		seq, _ := strconv.ParseUint(r.URL.Query().Get("seq"), 10, 64)
		off, ok := f.commit(client, seq)
		if !ok {
			w.WriteHeader(http.StatusConflict)
			json.NewEncoder(w).Encode(logd.ErrorBody{Kind: logd.ErrKindStaleSeq, Retryable: false}) //nolint:errcheck
			return
		}
		json.NewEncoder(w).Encode(logd.AppendResponse{Offset: off}) //nolint:errcheck
	})
	mux.HandleFunc("/v1/client", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		cs, ok := f.clients[r.URL.Query().Get("id")]
		f.mu.Unlock()
		json.NewEncoder(w).Encode(logd.ClientResponse{Known: ok, Seq: cs.Seq, Offset: cs.Offset}) //nolint:errcheck
	})
	hs := httptest.NewServer(mux)
	t.Cleanup(hs.Close)
	return hs
}

func newTestClient(t *testing.T, eps ...string) *Client {
	t.Helper()
	c, err := New(Options{
		Endpoints:   eps,
		ID:          "test-client",
		MaxAttempts: 6,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  5 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

// TestFailoverRetriesOnRetryableError: the first endpoint answers 503
// reforming; the client must back off, rotate, and commit through the
// second endpoint.
func TestFailoverRetriesOnRetryableError(t *testing.T) {
	f := newFakeLog()
	var refused int
	bad := endpoint(t, f, func(w http.ResponseWriter, r *http.Request) bool {
		refused++
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(logd.ErrorBody{Kind: logd.ErrKindReforming, Retryable: true}) //nolint:errcheck
		return false
	})
	good := endpoint(t, f, nil)
	c := newTestClient(t, bad.URL, good.URL)

	off, err := c.Append(context.Background(), []byte("p"))
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if off != 0 || refused == 0 {
		t.Fatalf("offset %d, refused %d: expected failover after a 503", off, refused)
	}
	if seq, lastOff := c.LastAcked(); seq != 1 || lastOff != 0 {
		t.Fatalf("LastAcked = (%d, %d), want (1, 0)", seq, lastOff)
	}
}

// TestIdempotentFailoverNoDuplicate: the first endpoint commits but the
// response is lost (504 after commit). The retry lands on the second
// endpoint, whose dedup table recognises the identity and returns the
// original offset — zero duplicate appends.
func TestIdempotentFailoverNoDuplicate(t *testing.T) {
	f := newFakeLog()
	first := true
	flaky := endpoint(t, f, func(w http.ResponseWriter, r *http.Request) bool {
		if first {
			first = false
			client := r.URL.Query().Get("client")
			seq, _ := strconv.ParseUint(r.URL.Query().Get("seq"), 10, 64)
			f.commit(client, seq) // committed...
			w.WriteHeader(http.StatusGatewayTimeout)
			json.NewEncoder(w).Encode(logd.ErrorBody{Kind: logd.ErrKindTimeout, Retryable: true}) //nolint:errcheck
			return false                                                                          // ...but the ack never reaches the client
		}
		return true
	})
	replica := endpoint(t, f, nil)
	c := newTestClient(t, flaky.URL, replica.URL)

	off, err := c.Append(context.Background(), []byte("p"))
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if off != 0 {
		t.Fatalf("retried append got offset %d, want the original 0", off)
	}
	if f.next != 1 {
		t.Fatalf("log holds %d records after a retried append, want 1", f.next)
	}
}

// TestFatalErrorDoesNotRetryOrBurnSeq: a validation refusal returns
// immediately (one request) and the unused seq is reclaimed for the next
// logical append.
func TestFatalErrorDoesNotRetryOrBurnSeq(t *testing.T) {
	f := newFakeLog()
	requests := 0
	reject := true
	ep := endpoint(t, f, func(w http.ResponseWriter, r *http.Request) bool {
		requests++
		if reject {
			w.WriteHeader(http.StatusBadRequest)
			json.NewEncoder(w).Encode(logd.ErrorBody{Kind: logd.ErrKindValidation, Retryable: false}) //nolint:errcheck
			return false
		}
		return true
	})
	c := newTestClient(t, ep.URL)

	_, err := c.Append(context.Background(), []byte("p"))
	var ae *APIError
	if !errors.As(err, &ae) || ae.Kind != logd.ErrKindValidation {
		t.Fatalf("Append: %v, want validation APIError", err)
	}
	if requests != 1 {
		t.Fatalf("%d requests for a fatal error, want exactly 1", requests)
	}
	reject = false
	if _, err := c.Append(context.Background(), []byte("p2")); err != nil {
		t.Fatalf("second Append: %v", err)
	}
	if seq, _ := c.LastAcked(); seq != 1 {
		t.Fatalf("seq after unburn = %d, want 1 (validation must not consume seqs)", seq)
	}
}

// TestExhaustionWrapsLastError: MaxAttempts retryable failures surface
// as ErrExhausted.
func TestExhaustionWrapsLastError(t *testing.T) {
	f := newFakeLog()
	ep := endpoint(t, f, func(w http.ResponseWriter, r *http.Request) bool {
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(logd.ErrorBody{Kind: logd.ErrKindOverloaded, Retryable: true}) //nolint:errcheck
		return false
	})
	c := newTestClient(t, ep.URL)
	_, err := c.Append(context.Background(), []byte("p"))
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("Append: %v, want ErrExhausted", err)
	}
}

// TestResyncAdoptsServerState: a restarted client (fresh Client, same
// identity) resumes after its previous acknowledgements.
func TestResyncAdoptsServerState(t *testing.T) {
	f := newFakeLog()
	ep := endpoint(t, f, nil)
	c1 := newTestClient(t, ep.URL)
	for i := 0; i < 3; i++ {
		if _, err := c1.Append(context.Background(), []byte("p")); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}

	c2 := newTestClient(t, ep.URL) // same ID, no memory
	if err := c2.Resync(context.Background()); err != nil {
		t.Fatalf("Resync: %v", err)
	}
	if seq, off := c2.LastAcked(); seq != 3 || off != 2 {
		t.Fatalf("resynced state (%d, %d), want (3, 2)", seq, off)
	}
	newOff, err := c2.Append(context.Background(), []byte("p4"))
	if err != nil {
		t.Fatalf("Append after resync: %v", err)
	}
	if newOff != 3 {
		t.Fatalf("append after resync at offset %d, want 3 (no clobbered seqs)", newOff)
	}
}

// TestClassifyFallback: responses without a structured body classify by
// status code.
func TestClassifyFallback(t *testing.T) {
	cases := []struct {
		status    int
		retryable bool
	}{
		{http.StatusBadRequest, false},
		{http.StatusConflict, false},
		{http.StatusRequestEntityTooLarge, false},
		{http.StatusTooEarly, true},
		{http.StatusTooManyRequests, true},
		{http.StatusServiceUnavailable, true},
		{http.StatusGatewayTimeout, true},
	}
	for _, tc := range cases {
		rec := httptest.NewRecorder()
		rec.WriteHeader(tc.status)
		ae := classify(rec.Result())
		if ae == nil || ae.Retryable != tc.retryable {
			t.Errorf("status %d: classified %+v, want retryable=%v", tc.status, ae, tc.retryable)
		}
	}
}

// TestBackoffIsBoundedFullJitter: each sleep draws from
// [0, min(MaxBackoff, Base<<attempt)] — never more.
func TestBackoffIsBoundedFullJitter(t *testing.T) {
	c := newTestClient(t, "http://unused")
	for attempt := 0; attempt < 10; attempt++ {
		start := time.Now()
		if err := c.backoff(context.Background(), attempt); err != nil {
			t.Fatalf("backoff: %v", err)
		}
		if d := time.Since(start); d > c.opt.MaxBackoff+50*time.Millisecond {
			t.Fatalf("attempt %d slept %v, cap is %v", attempt, d, c.opt.MaxBackoff)
		}
	}
	// Cancellation interrupts the sleep.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.backoff(ctx, 9); err == nil {
		t.Fatal("backoff ignored a cancelled context")
	}
}
