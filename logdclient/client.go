// Package logdclient is the client library for the totemlogd replicated
// log. It implements the repo's retry idiom end to end: exponential
// backoff with full jitter, a max-attempt cap, retryable-vs-fatal error
// classification (timeouts and ring reformation retry; validation does
// not), and idempotent failover — every logical append carries a
// (client, seq) identity assigned exactly once, so a retry through a
// different ring member either commits the record or is recognised and
// acknowledged with the offset the original commit was assigned.
//
// The contract is one Client value per client identity with at most one
// Append in flight; concurrent appends from distinct Clients (distinct
// ids) are unrestricted.
package logdclient

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sync"
	"time"

	"github.com/totem-rrp/totem/internal/logd"
)

// Options configures a Client. Endpoints and ID are required.
type Options struct {
	// Endpoints are the base URLs of the logd members ("http://h:p").
	// The client sticks to one until it fails, then rotates.
	Endpoints []string
	// ID is the client identity appends are deduplicated by. Two live
	// Client values must never share an ID.
	ID string
	// MaxAttempts caps retries per logical operation (default 8).
	MaxAttempts int
	// BaseBackoff seeds the exponential backoff (default 25ms).
	BaseBackoff time.Duration
	// MaxBackoff caps one backoff sleep (default 2s).
	MaxBackoff time.Duration
	// HTTP overrides the transport (default: 15s-timeout client).
	HTTP *http.Client
}

func (o Options) withDefaults() Options {
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 8
	}
	if o.BaseBackoff <= 0 {
		o.BaseBackoff = 25 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 2 * time.Second
	}
	if o.HTTP == nil {
		o.HTTP = &http.Client{Timeout: 15 * time.Second}
	}
	return o
}

// APIError is a structured error response from a logd server.
type APIError struct {
	Status    int
	Kind      string
	Msg       string
	Retryable bool
}

func (e *APIError) Error() string {
	return fmt.Sprintf("logd: %s (%d %s)", e.Msg, e.Status, e.Kind)
}

// ErrExhausted wraps the final error once MaxAttempts retryable failures
// accumulate.
var ErrExhausted = errors.New("logdclient: attempts exhausted")

// Client talks to a logd cluster on behalf of one client identity.
type Client struct {
	opt Options

	mu         sync.Mutex
	seq        uint64 // last seq assigned to a logical append
	lastAcked  uint64 // last seq acknowledged
	lastOffset uint64 // offset of the last acknowledged append
	ep         int    // current endpoint index
}

// New builds a Client. It performs no IO; call Resync to adopt the
// server-side state of a previously used identity.
func New(opt Options) (*Client, error) {
	if len(opt.Endpoints) == 0 {
		return nil, errors.New("logdclient: at least one endpoint required")
	}
	if opt.ID == "" || len(opt.ID) > logd.MaxClientID {
		return nil, errors.New("logdclient: client ID must be 1..256 bytes")
	}
	return &Client{opt: opt.withDefaults()}, nil
}

// LastAcked returns the last acknowledged (seq, offset) pair.
func (c *Client) LastAcked() (seq, offset uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastAcked, c.lastOffset
}

// endpoint returns the current endpoint; rotate moves past a failed one.
func (c *Client) endpoint() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.opt.Endpoints[c.ep%len(c.opt.Endpoints)]
}

func (c *Client) rotate() {
	c.mu.Lock()
	c.ep = (c.ep + 1) % len(c.opt.Endpoints)
	c.mu.Unlock()
}

// backoff sleeps the full-jitter exponential delay for attempt (0-based):
// a uniform draw from [0, min(MaxBackoff, BaseBackoff<<attempt)].
func (c *Client) backoff(ctx context.Context, attempt int) error {
	d := c.opt.BaseBackoff << attempt
	if d <= 0 || d > c.opt.MaxBackoff {
		d = c.opt.MaxBackoff
	}
	jittered := time.Duration(rand.Int63n(int64(d) + 1))
	t := time.NewTimer(jittered)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// classify maps an HTTP response to an APIError (nil for 2xx).
func classify(resp *http.Response) *APIError {
	if resp.StatusCode < 300 {
		return nil
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var eb logd.ErrorBody
	if json.Unmarshal(body, &eb) == nil && eb.Kind != "" {
		return &APIError{Status: resp.StatusCode, Kind: eb.Kind, Msg: eb.Msg, Retryable: eb.Retryable}
	}
	// No structured body: classify by status. 4xx (bar the throttling and
	// catch-up codes) is fatal, everything else retries.
	retry := true
	switch {
	case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusTooEarly:
	case resp.StatusCode >= 400 && resp.StatusCode < 500:
		retry = false
	}
	return &APIError{Status: resp.StatusCode, Kind: "http", Msg: string(bytes.TrimSpace(body)), Retryable: retry}
}

// retryable reports whether err warrants another attempt: structured
// retryable errors and transport-level failures do; validation does not.
func retryable(err error) bool {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.Retryable
	}
	return true // network error, timeout, connection refused: fail over
}

// Append commits payload to the log and returns its offset. The seq is
// assigned once; retries and endpoint failovers reuse it, so the append
// commits at most once no matter how many attempts were made.
func (c *Client) Append(ctx context.Context, payload []byte) (uint64, error) {
	c.mu.Lock()
	c.seq++
	seq := c.seq
	c.mu.Unlock()

	var lastErr error
	for attempt := 0; attempt < c.opt.MaxAttempts; attempt++ {
		if attempt > 0 {
			if err := c.backoff(ctx, attempt-1); err != nil {
				return 0, err
			}
		}
		off, err := c.tryAppend(ctx, c.endpoint(), seq, payload)
		if err == nil {
			c.mu.Lock()
			c.lastAcked, c.lastOffset = seq, off
			c.mu.Unlock()
			return off, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return 0, ctx.Err()
		}
		if !retryable(err) {
			var ae *APIError
			if errors.As(err, &ae) && (ae.Kind == logd.ErrKindValidation || ae.Kind == logd.ErrKindTooLarge) {
				// The server refused before ordering anything: the seq was
				// never committed, so the next logical append may reuse it.
				c.mu.Lock()
				if c.seq == seq {
					c.seq--
				}
				c.mu.Unlock()
			}
			return 0, err
		}
		c.rotate()
	}
	return 0, fmt.Errorf("%w: %w", ErrExhausted, lastErr)
}

func (c *Client) tryAppend(ctx context.Context, endpoint string, seq uint64, payload []byte) (uint64, error) {
	u := fmt.Sprintf("%s/v1/append?client=%s&seq=%d", endpoint, url.QueryEscape(c.opt.ID), seq)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(payload))
	if err != nil {
		return 0, err
	}
	resp, err := c.opt.HTTP.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if ae := classify(resp); ae != nil {
		return 0, ae
	}
	var ar logd.AppendResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&ar); err != nil {
		return 0, err
	}
	return ar.Offset, nil
}

// Read fetches up to max records starting at offset from, returning them
// with the serving member's tail. Reads are idempotent and retry/fail
// over like appends.
func (c *Client) Read(ctx context.Context, from uint64, max int) ([]logd.WireRecord, uint64, error) {
	return c.readPath(ctx, fmt.Sprintf("/v1/read?from=%d&max=%d", from, max))
}

// Tail long-polls for records at or past from, waiting up to wait on the
// server before returning (possibly empty on timeout).
func (c *Client) Tail(ctx context.Context, from uint64, max int, wait time.Duration) ([]logd.WireRecord, uint64, error) {
	return c.readPath(ctx, fmt.Sprintf("/v1/tail?from=%d&max=%d&wait_ms=%d", from, max, wait.Milliseconds()))
}

func (c *Client) readPath(ctx context.Context, path string) ([]logd.WireRecord, uint64, error) {
	var lastErr error
	for attempt := 0; attempt < c.opt.MaxAttempts; attempt++ {
		if attempt > 0 {
			if err := c.backoff(ctx, attempt-1); err != nil {
				return nil, 0, err
			}
		}
		recs, next, err := c.tryRead(ctx, c.endpoint()+path)
		if err == nil {
			return recs, next, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, 0, ctx.Err()
		}
		if !retryable(err) {
			return nil, 0, err
		}
		c.rotate()
	}
	return nil, 0, fmt.Errorf("%w: %w", ErrExhausted, lastErr)
}

func (c *Client) tryRead(ctx context.Context, u string) ([]logd.WireRecord, uint64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, 0, err
	}
	resp, err := c.opt.HTTP.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if ae := classify(resp); ae != nil {
		return nil, 0, ae
	}
	var rr logd.ReadResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 256<<20)).Decode(&rr); err != nil {
		return nil, 0, err
	}
	return rr.Records, rr.Next, nil
}

// Resync adopts the server-side state of this client identity: the
// highest acknowledged seq and its offset across reachable endpoints. A
// restarted client calls this before its first Append so it resumes
// after — never on top of — its previous acknowledgements.
func (c *Client) Resync(ctx context.Context) error {
	var (
		best      logd.ClientResponse
		reachable bool
		lastErr   error
	)
	for _, ep := range c.opt.Endpoints {
		u := fmt.Sprintf("%s/v1/client?id=%s", ep, url.QueryEscape(c.opt.ID))
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
		if err != nil {
			return err
		}
		resp, err := c.opt.HTTP.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		var cr logd.ClientResponse
		derr := json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&cr)
		resp.Body.Close()
		if derr != nil {
			lastErr = derr
			continue
		}
		reachable = true
		if cr.Known && cr.Seq > best.Seq {
			best = cr
		}
	}
	if !reachable {
		return fmt.Errorf("logdclient: resync: no endpoint reachable: %w", lastErr)
	}
	c.mu.Lock()
	if best.Seq > c.seq {
		c.seq = best.Seq
		c.lastAcked, c.lastOffset = best.Seq, best.Offset
	}
	c.mu.Unlock()
	return nil
}
