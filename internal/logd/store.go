package logd

import (
	"fmt"
	"os"
	"sort"
	"sync"
)

// StoreOptions tunes the durable log. Zero fields take defaults.
type StoreOptions struct {
	// SegmentBytes rotates the active segment once it exceeds this size
	// (default 4 MiB).
	SegmentBytes int
	// SnapshotEvery writes a snapshot after this many applied records
	// (default 4096; negative disables automatic snapshots).
	SnapshotEvery int
	// NoSync skips fsync on append — benchmarks only. With NoSync set,
	// "acknowledged" means "in the page cache", and a machine crash (not
	// just a process crash) can lose acked records.
	NoSync bool
}

func (o StoreOptions) withDefaults() StoreOptions {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.SnapshotEvery == 0 {
		o.SnapshotEvery = 4096
	}
	return o
}

// ClientState is the dedup entry for one client: the last applied seq
// and the offset it was assigned.
type ClientState struct {
	Seq    uint64 `json:"seq"`
	Offset uint64 `json:"offset"`
}

// RecoveryReport summarises what Open had to do to the on-disk state.
type RecoveryReport struct {
	// Recovered reports whether any prior state existed on disk.
	Recovered bool
	// SnapshotNext is the offset the loaded snapshot covered (0 if none).
	SnapshotNext uint64
	// Truncated reports whether a damaged or torn segment tail was cut
	// back to its last valid record.
	Truncated bool
	// TruncatedBytes is how many bytes the cut discarded.
	TruncatedBytes int64
	// Orphaned counts segment files quarantined because they sat beyond a
	// damaged predecessor and could no longer be trusted.
	Orphaned int
}

// Incoming is one ordered record before the store assigns its offset.
type Incoming struct {
	Kind    byte
	Client  string
	Seq     uint64
	Payload []byte
}

// Applied is the outcome of one Incoming: its offset, or Dup when the
// (client, seq) identity had already been applied (Offset then reports
// the original offset only when the identity matches the client's most
// recent record; older duplicates report 0).
type Applied struct {
	Offset uint64
	Dup    bool
}

// Store is the durable, crash-recovering log: contiguous records in
// rotating segments, a per-client dedup table, periodic snapshots, and
// the ring-epoch meta. All methods are safe for concurrent use; Apply
// and Ingest serialise internally, Read runs file IO outside the lock.
type Store struct {
	dir string
	opt StoreOptions

	mu         sync.Mutex
	next       uint64
	epoch      uint32
	boot       uint64
	clients    map[string]ClientState
	segs       []segref
	active     *os.File
	activeSize int64
	sinceSnap  int
	closed     bool
	report     RecoveryReport

	encBuf []byte // append-encoding scratch, reused across batches
}

// OpenStore opens (and if necessary recovers) the log in dir, creating
// the directory when absent.
func OpenStore(dir string, opt StoreOptions) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{
		dir:     dir,
		opt:     opt.withDefaults(),
		clients: make(map[string]ClientState),
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	// Count the boot and persist it with the epoch: sync-marker seqs are
	// derived from the boot counter and must never repeat across restarts.
	s.boot++
	if err := saveMeta(s.dir, metaState{Epoch: s.epoch, Boot: s.boot}); err != nil {
		return nil, err
	}
	return s, nil
}

// recover loads the newest valid snapshot and replays the segment suffix
// past it, truncating at the first damage.
func (s *Store) recover() error {
	if m, ok := loadMeta(s.dir); ok {
		s.report.Recovered = true
		s.epoch, s.boot = m.Epoch, m.Boot
	}
	snap, haveSnap := loadSnapshot(s.dir)
	if haveSnap {
		s.report.Recovered = true
		s.report.SnapshotNext = snap.Next
		s.next = snap.Next
		s.clients = snap.Clients
		if snap.Epoch > s.epoch {
			s.epoch = snap.Epoch
		}
	}
	segs, err := listSegments(s.dir)
	if err != nil {
		return err
	}
	if len(segs) > 0 {
		s.report.Recovered = true
	}
	expect := uint64(0)
	if len(segs) > 0 {
		expect = segs[0].base
	}
	damagedAt := -1
	for i, seg := range segs {
		if seg.base != expect {
			// A hole in the segment chain: everything from here on is
			// unreachable by contiguous replay.
			damagedAt = i
			break
		}
		next, validLen, clean, err := scanSegment(seg.path, seg.base, snap.Next, func(rec Record) {
			s.applyClientState(rec)
		})
		if err != nil {
			return err
		}
		if next > s.next {
			s.next = next
		}
		if !clean {
			fi, err := os.Stat(seg.path)
			if err == nil {
				s.report.TruncatedBytes += fi.Size() - validLen
			}
			if err := os.Truncate(seg.path, validLen); err != nil {
				return fmt.Errorf("logd: truncating damaged segment %s: %w", seg.path, err)
			}
			s.report.Truncated = true
			if next == seg.base && validLen == 0 {
				// Fully damaged file: drop it from the chain entirely.
				quarantine(seg.path)
				damagedAt = i
				break
			}
			s.segs = append(s.segs, seg)
			damagedAt = i + 1
			break
		}
		s.segs = append(s.segs, seg)
		expect = next
	}
	if damagedAt >= 0 {
		for _, seg := range segs[damagedAt:] {
			if len(s.segs) > 0 && seg.path == s.segs[len(s.segs)-1].path {
				continue
			}
			quarantine(seg.path)
			s.report.Orphaned++
		}
	}
	// The snapshot may claim records the (damaged) segments no longer
	// hold; trust the segments — they are what Read can serve — and let
	// catch-up refill from peers. Roll client state back is impossible
	// without the records, so keep the snapshot's dedup entries: worst
	// case a duplicate data record is skipped that could have been
	// re-appended, which peers' logs resolve.
	return s.openActive()
}

// applyClientState folds one replayed record into the dedup table.
func (s *Store) applyClientState(rec Record) {
	if cs, ok := s.clients[rec.Client]; !ok || rec.Seq > cs.Seq {
		s.clients[rec.Client] = ClientState{Seq: rec.Seq, Offset: rec.Offset}
	}
}

// openActive opens the tail segment for appending, or starts a fresh one
// at the current next offset.
func (s *Store) openActive() error {
	if len(s.segs) > 0 {
		tail := s.segs[len(s.segs)-1]
		f, err := os.OpenFile(tail.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		fi, err := f.Stat()
		if err != nil {
			f.Close()
			return err
		}
		s.active = f
		s.activeSize = fi.Size()
		return nil
	}
	return s.rotateLocked()
}

// rotateLocked closes the active segment and starts a new one at next.
func (s *Store) rotateLocked() error {
	if s.active != nil {
		if !s.opt.NoSync {
			if err := s.active.Sync(); err != nil {
				return err
			}
		}
		s.active.Close()
		s.active = nil
	}
	path := segName(s.dir, s.next)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	s.active = f
	s.activeSize = 0
	s.segs = append(s.segs, segref{base: s.next, path: path})
	return syncDir(s.dir)
}

// Next returns the next offset the log will assign (== its length).
func (s *Store) Next() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.next
}

// Epoch returns the persisted ring epoch.
func (s *Store) Epoch() uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// Boot returns the boot counter (incremented by every Open).
func (s *Store) Boot() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.boot
}

// Recovered reports whether Open found any prior on-disk state.
func (s *Store) Recovered() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.report.Recovered
}

// RecoveryReport returns what Open had to repair.
func (s *Store) RecoveryReport() RecoveryReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.report
}

// SetEpoch persists e when it exceeds the stored epoch. Called on every
// membership change so a restart can carry the epoch forward even when
// no snapshot fell due in between.
func (s *Store) SetEpoch(e uint32) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e <= s.epoch {
		return nil
	}
	s.epoch = e
	return saveMeta(s.dir, metaState{Epoch: s.epoch, Boot: s.boot})
}

// Client returns the dedup state for one client.
func (s *Store) Client(id string) (ClientState, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cs, ok := s.clients[id]
	return cs, ok
}

// Apply appends the ordered batch, deduplicating by (client, seq),
// assigning offsets, and fsyncing once for the whole batch before it
// returns — the group commit the append acknowledgements ride on.
func (s *Store) Apply(batch []Incoming) ([]Applied, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, os.ErrClosed
	}
	out := make([]Applied, len(batch))
	s.encBuf = s.encBuf[:0]
	appended := 0
	for i, in := range batch {
		cs, seen := s.clients[in.Client]
		if seen && in.Seq <= cs.Seq {
			out[i] = Applied{Dup: true}
			if in.Seq == cs.Seq {
				out[i].Offset = cs.Offset
			}
			continue
		}
		off := s.next + uint64(appended)
		out[i] = Applied{Offset: off}
		s.clients[in.Client] = ClientState{Seq: in.Seq, Offset: off}
		s.encBuf = AppendRecord(s.encBuf, Record{
			Offset:  off,
			Kind:    in.Kind,
			Client:  in.Client,
			Seq:     in.Seq,
			Payload: in.Payload,
		})
		appended++
	}
	if appended == 0 {
		return out, nil
	}
	if err := s.writeLocked(s.encBuf, appended); err != nil {
		return nil, err
	}
	return out, s.maybeSnapshotLocked()
}

// Ingest appends records fetched from a peer during catch-up. Offsets
// are authoritative and must continue the local log contiguously;
// records at already-held offsets are skipped (a fetch raced the apply
// loop of the serving peer).
func (s *Store) Ingest(recs []Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return os.ErrClosed
	}
	s.encBuf = s.encBuf[:0]
	appended := 0
	for _, rec := range recs {
		if rec.Offset < s.next {
			continue
		}
		if rec.Offset != s.next+uint64(appended) {
			return fmt.Errorf("logd: ingest discontiguity: offset %d, want %d", rec.Offset, s.next+uint64(appended))
		}
		s.applyClientState(rec)
		s.encBuf = AppendRecord(s.encBuf, rec)
		appended++
	}
	if appended == 0 {
		return nil
	}
	if err := s.writeLocked(s.encBuf, appended); err != nil {
		return err
	}
	return s.maybeSnapshotLocked()
}

// writeLocked commits count pre-encoded records: write, fsync, advance
// next, rotate when the active segment is full.
func (s *Store) writeLocked(buf []byte, count int) error {
	if _, err := s.active.Write(buf); err != nil {
		return err
	}
	if !s.opt.NoSync {
		if err := s.active.Sync(); err != nil {
			return err
		}
	}
	s.activeSize += int64(len(buf))
	s.next += uint64(count)
	s.sinceSnap += count
	if s.activeSize >= int64(s.opt.SegmentBytes) {
		return s.rotateLocked()
	}
	return nil
}

func (s *Store) maybeSnapshotLocked() error {
	if s.opt.SnapshotEvery < 0 || s.sinceSnap < s.opt.SnapshotEvery {
		return nil
	}
	return s.snapshotLocked()
}

func (s *Store) snapshotLocked() error {
	clients := make(map[string]ClientState, len(s.clients))
	for k, v := range s.clients {
		clients[k] = v
	}
	if err := saveSnapshot(s.dir, snapshotState{Next: s.next, Epoch: s.epoch, Clients: clients}); err != nil {
		return err
	}
	s.sinceSnap = 0
	return nil
}

// Snapshot writes a snapshot now, regardless of the automatic cadence.
func (s *Store) Snapshot() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return os.ErrClosed
	}
	return s.snapshotLocked()
}

// Read returns up to maxN records (bounded additionally by ~maxBytes of
// payload; at least one record is returned if any exists) starting at
// offset from. Reading at or past the tail returns an empty slice.
func (s *Store) Read(from uint64, maxN, maxBytes int) ([]Record, error) {
	s.mu.Lock()
	next := s.next
	segs := append([]segref(nil), s.segs...)
	s.mu.Unlock()
	if from >= next || maxN <= 0 {
		return nil, nil
	}
	// Find the segment containing from: the last base <= from.
	i := sort.Search(len(segs), func(j int) bool { return segs[j].base > from }) - 1
	if i < 0 {
		return nil, fmt.Errorf("logd: offset %d below retained log start", from)
	}
	var out []Record
	bytes := 0
	full := func() bool {
		return len(out) >= maxN || (maxBytes > 0 && bytes >= maxBytes && len(out) > 0)
	}
	for ; i < len(segs); i++ {
		_, _, _, err := scanSegment(segs[i].path, segs[i].base, from, func(rec Record) {
			if rec.Offset >= next || full() {
				return
			}
			out = append(out, rec)
			bytes += len(rec.Payload)
		})
		if err != nil {
			return nil, err
		}
		if full() {
			break
		}
	}
	return out, nil
}

// Close snapshots and closes the store. Idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.snapshotLocked()
	if s.active != nil {
		if !s.opt.NoSync {
			if serr := s.active.Sync(); err == nil {
				err = serr
			}
		}
		if cerr := s.active.Close(); err == nil {
			err = cerr
		}
		s.active = nil
	}
	return err
}

// Kill closes the store abruptly: no snapshot, no final sync — the
// kill -9 path of the crash tests. Acked records are already on disk
// (Apply synced them); everything else is whatever the OS kept.
func (s *Store) Kill() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	if s.active != nil {
		s.active.Close()
		s.active = nil
	}
}
