// Package logtest is the model-checked conformance suite for logd
// semantics. It drives real logdclient traffic at a set of HTTP
// endpoints — a single in-memory server or a live multi-node ring, the
// sim-vs-live differential pattern — records every acknowledgement, then
// verifies the acknowledged history against the log the cluster actually
// stored:
//
//   - append→offset monotonicity: a client's acked offsets strictly
//     increase in ack order;
//   - no duplicate offsets: no two acks (any clients) share an offset;
//   - read-your-writes: after the run, reading each acked offset returns
//     exactly the record that was acknowledged there;
//   - no lost appends: every acked (client, seq) is present in the log;
//   - no duplicate appends: no (client, seq) identity occupies two
//     offsets, no matter how many times retries re-submitted it;
//   - density: the log's offsets run 0,1,2,... with no gaps.
package logtest

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/totem-rrp/totem/internal/logd"
	"github.com/totem-rrp/totem/logdclient"
)

// Ack is one acknowledged append as the client observed it.
type Ack struct {
	Client  string
	Seq     uint64
	Offset  uint64
	Payload string
}

// Checker accumulates acknowledgements (from any number of goroutines)
// and verifies them against the stored log.
type Checker struct {
	mu   sync.Mutex
	acks []Ack
}

// Acked records one acknowledged append.
func (c *Checker) Acked(client string, seq, offset uint64, payload string) {
	c.mu.Lock()
	c.acks = append(c.acks, Ack{Client: client, Seq: seq, Offset: offset, Payload: payload})
	c.mu.Unlock()
}

// Acks returns a copy of the recorded acknowledgements.
func (c *Checker) Acks() []Ack {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Ack(nil), c.acks...)
}

// Verify checks every conformance property against the log served at
// endpoint. It reads the whole log [0, next) through the read API.
func (c *Checker) Verify(t *testing.T, ctx context.Context, endpoint string) {
	t.Helper()
	acks := c.Acks()

	// Offset monotonicity per client, in ack order.
	lastByClient := make(map[string]Ack)
	for _, a := range acks {
		if prev, ok := lastByClient[a.Client]; ok {
			if a.Offset <= prev.Offset {
				t.Errorf("client %s: ack offsets not monotonic: seq %d at %d after seq %d at %d",
					a.Client, a.Seq, a.Offset, prev.Seq, prev.Offset)
			}
			if a.Seq <= prev.Seq {
				t.Errorf("client %s: ack seqs not monotonic: %d after %d", a.Client, a.Seq, prev.Seq)
			}
		}
		lastByClient[a.Client] = a
	}

	// No duplicate offsets across all acks.
	byOffset := make(map[uint64]Ack, len(acks))
	for _, a := range acks {
		if dup, ok := byOffset[a.Offset]; ok {
			t.Errorf("offset %d acked twice: %s/%d and %s/%d", a.Offset, dup.Client, dup.Seq, a.Client, a.Seq)
		}
		byOffset[a.Offset] = a
	}

	// Fetch the whole log.
	log := FetchAll(t, ctx, endpoint)

	// Density: offsets run 0,1,2,...
	for i, rec := range log {
		if rec.Offset != uint64(i) {
			t.Fatalf("log not dense: position %d holds offset %d", i, rec.Offset)
		}
	}

	// No duplicate identities anywhere in the log.
	type ident struct {
		client string
		seq    uint64
	}
	seen := make(map[ident]uint64, len(log))
	for _, rec := range log {
		id := ident{rec.Client, rec.Seq}
		if prev, ok := seen[id]; ok {
			t.Errorf("duplicate append: %s/%d at offsets %d and %d", rec.Client, rec.Seq, prev, rec.Offset)
		}
		seen[id] = rec.Offset
	}

	// Read-your-writes + no lost appends: every ack is in the log at its
	// acked offset with its exact payload.
	for _, a := range acks {
		if a.Offset >= uint64(len(log)) {
			t.Errorf("acked offset %d (%s/%d) beyond stored log length %d", a.Offset, a.Client, a.Seq, len(log))
			continue
		}
		rec := log[a.Offset]
		if rec.Client != a.Client || rec.Seq != a.Seq || string(rec.Payload) != a.Payload {
			t.Errorf("offset %d: acked %s/%d %q, stored %s/%d %q",
				a.Offset, a.Client, a.Seq, a.Payload, rec.Client, rec.Seq, rec.Payload)
		}
	}
}

// FetchAll reads the complete log from endpoint.
func FetchAll(t *testing.T, ctx context.Context, endpoint string) []logd.WireRecord {
	t.Helper()
	rd, err := logdclient.New(logdclient.Options{Endpoints: []string{endpoint}, ID: "logtest-reader"})
	if err != nil {
		t.Fatalf("logtest: reader client: %v", err)
	}
	var log []logd.WireRecord
	for {
		recs, next, err := rd.Read(ctx, uint64(len(log)), 512)
		if err != nil {
			t.Fatalf("logtest: reading log at %d: %v", len(log), err)
		}
		log = append(log, recs...)
		if uint64(len(log)) >= next || len(recs) == 0 {
			return log
		}
	}
}

// RunOptions sizes a conformance run.
type RunOptions struct {
	Clients   int           // concurrent writer identities (default 4)
	Appends   int           // appends per client (default 25)
	Prefix    string        // client-id prefix (default "conform")
	Timeout   time.Duration // whole-run budget (default 60s)
	ReadCheck bool          // read-your-writes probe after each ack
}

// Run drives Clients concurrent writers against endpoints, each
// performing Appends sequential appends through its own logdclient, and
// returns the populated Checker. Call Checker.Verify afterwards (possibly
// after injecting faults or crash/restarting members in between).
func Run(t *testing.T, endpoints []string, opt RunOptions) *Checker {
	t.Helper()
	if opt.Clients <= 0 {
		opt.Clients = 4
	}
	if opt.Appends <= 0 {
		opt.Appends = 25
	}
	if opt.Prefix == "" {
		opt.Prefix = "conform"
	}
	if opt.Timeout <= 0 {
		opt.Timeout = 60 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), opt.Timeout)
	defer cancel()

	ck := &Checker{}
	var wg sync.WaitGroup
	errCh := make(chan error, opt.Clients)
	for w := 0; w < opt.Clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := fmt.Sprintf("%s-%d", opt.Prefix, w)
			// Spread writers across members: each starts at a different
			// endpoint and fails over independently.
			eps := append(append([]string(nil), endpoints[w%len(endpoints):]...), endpoints[:w%len(endpoints)]...)
			cl, err := logdclient.New(logdclient.Options{Endpoints: eps, ID: id, MaxAttempts: 12})
			if err != nil {
				errCh <- err
				return
			}
			for i := 0; i < opt.Appends; i++ {
				payload := fmt.Sprintf("%s:%d", id, i+1)
				off, err := cl.Append(ctx, []byte(payload))
				if err != nil {
					errCh <- fmt.Errorf("client %s append %d: %w", id, i+1, err)
					return
				}
				seq, _ := cl.LastAcked()
				ck.Acked(id, seq, off, payload)
				if opt.ReadCheck {
					recs, _, err := cl.Read(ctx, off, 1)
					if err != nil || len(recs) == 0 || string(recs[0].Payload) != payload {
						errCh <- fmt.Errorf("client %s: read-your-write at %d failed (err=%v)", id, off, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Errorf("logtest: %v", err)
	}
	return ck
}
