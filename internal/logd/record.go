// Package logd is a durable replicated-log service on top of the ring:
// totally ordered appends, crash-safe log segments with periodic
// snapshots, admission control, and an HTTP front door many concurrent
// clients talk to through the logdclient library (DESIGN.md §16).
//
// Every append is wrapped in a small envelope and broadcast through the
// ring; each member's apply loop consumes the totally ordered delivery
// stream and materialises the same log: offset i holds the i-th ordered
// record on every replica. Identity (client, seq) makes retries
// idempotent — a record re-submitted through a different member after a
// failover is recognised and acknowledged with its original offset
// instead of appended twice.
package logd

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Record kinds. Data records carry client payloads; sync records are the
// catch-up markers a recovering replica orders through the ring to find
// its place in the log (they occupy offsets but carry no payload).
const (
	KindData byte = 1
	KindSync byte = 2
)

// Limits on the record identity and framing. MaxClientID bounds the
// client identifier; DecodeRecord rejects anything larger, so a corrupt
// length field cannot ask for gigabytes.
const (
	MaxClientID = 256
	// maxDecodePayload bounds a single decoded record payload; the server
	// enforces its own (smaller) MaxRecordBytes at admission, this guard
	// only keeps a flipped length byte from allocating unbounded memory.
	maxDecodePayload = 128 << 20
)

// Record is one entry of the replicated log.
type Record struct {
	// Offset is the record's position in the log: dense, starting at 0,
	// identical on every replica.
	Offset uint64
	// Kind is KindData or KindSync.
	Kind byte
	// Client and Seq identify the append for idempotency. Seqs are
	// strictly increasing per client.
	Client string
	Seq    uint64
	// Payload is the application record (empty for sync markers).
	Payload []byte
}

// Errors shared by the codecs.
var (
	// ErrCorrupt reports a record that failed structural or checksum
	// validation.
	ErrCorrupt = errors.New("logd: corrupt record")
	// ErrShort reports a truncated buffer: the prefix read so far is not
	// enough to hold the record it announces.
	ErrShort = errors.New("logd: short record")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Envelope is the ring-message encoding of one append:
//
//	[0]    kind
//	[1:3]  client length (big endian)
//	[3:+]  client bytes
//	[+8]   seq (big endian)
//	rest   payload
//
// It is deliberately minimal: the ring already provides ordering,
// integrity and sender identity; the envelope only carries what the
// apply loop needs for idempotency.

// AppendEnvelope appends the encoded envelope to dst and returns the
// extended slice.
func AppendEnvelope(dst []byte, kind byte, client string, seq uint64, payload []byte) []byte {
	dst = append(dst, kind)
	var u16 [2]byte
	binary.BigEndian.PutUint16(u16[:], uint16(len(client)))
	dst = append(dst, u16[:]...)
	dst = append(dst, client...)
	var u64 [8]byte
	binary.BigEndian.PutUint64(u64[:], seq)
	dst = append(dst, u64[:]...)
	return append(dst, payload...)
}

// DecodeEnvelope parses a ring payload produced by AppendEnvelope. The
// returned payload aliases b.
func DecodeEnvelope(b []byte) (kind byte, client string, seq uint64, payload []byte, err error) {
	if len(b) < 3 {
		return 0, "", 0, nil, ErrShort
	}
	kind = b[0]
	if kind != KindData && kind != KindSync {
		return 0, "", 0, nil, fmt.Errorf("%w: envelope kind %d", ErrCorrupt, kind)
	}
	cl := int(binary.BigEndian.Uint16(b[1:3]))
	if cl == 0 || cl > MaxClientID {
		return 0, "", 0, nil, fmt.Errorf("%w: client length %d", ErrCorrupt, cl)
	}
	if len(b) < 3+cl+8 {
		return 0, "", 0, nil, ErrShort
	}
	client = string(b[3 : 3+cl])
	seq = binary.BigEndian.Uint64(b[3+cl : 3+cl+8])
	payload = b[3+cl+8:]
	return kind, client, seq, payload, nil
}

// On-disk record framing (the segment format):
//
//	u32  body length
//	u32  CRC-32C of body
//	body:
//	  u64 offset
//	  u8  kind
//	  u16 client length, client bytes
//	  u64 seq
//	  u32 payload length
//	  payload
//
// The redundant payload length cross-checks the frame length, so a
// single flipped byte in either is caught even on the off chance the CRC
// collides.

const recordHeader = 8 // frame length + CRC

// AppendRecord appends rec's on-disk encoding to dst and returns the
// extended slice.
func AppendRecord(dst []byte, rec Record) []byte {
	bodyLen := 8 + 1 + 2 + len(rec.Client) + 8 + 4 + len(rec.Payload)
	start := len(dst)
	var u32 [4]byte
	binary.BigEndian.PutUint32(u32[:], uint32(bodyLen))
	dst = append(dst, u32[:]...)
	dst = append(dst, 0, 0, 0, 0) // CRC placeholder
	var u64 [8]byte
	binary.BigEndian.PutUint64(u64[:], rec.Offset)
	dst = append(dst, u64[:]...)
	dst = append(dst, rec.Kind)
	var u16 [2]byte
	binary.BigEndian.PutUint16(u16[:], uint16(len(rec.Client)))
	dst = append(dst, u16[:]...)
	dst = append(dst, rec.Client...)
	binary.BigEndian.PutUint64(u64[:], rec.Seq)
	dst = append(dst, u64[:]...)
	binary.BigEndian.PutUint32(u32[:], uint32(len(rec.Payload)))
	dst = append(dst, u32[:]...)
	dst = append(dst, rec.Payload...)
	crc := crc32.Checksum(dst[start+recordHeader:], castagnoli)
	binary.BigEndian.PutUint32(dst[start+4:start+8], crc)
	return dst
}

// DecodeRecord parses one on-disk record from the front of b and returns
// it with the number of bytes consumed. ErrShort means b is a valid but
// incomplete prefix (a truncated tail); ErrCorrupt means the bytes can
// never parse (checksum or structural damage). The returned payload is a
// copy, safe to retain.
func DecodeRecord(b []byte) (Record, int, error) {
	if len(b) < recordHeader {
		return Record{}, 0, ErrShort
	}
	bodyLen := int(binary.BigEndian.Uint32(b[:4]))
	if bodyLen < 8+1+2+8+4 || bodyLen > 8+1+2+MaxClientID+8+4+maxDecodePayload {
		return Record{}, 0, fmt.Errorf("%w: frame length %d", ErrCorrupt, bodyLen)
	}
	if len(b) < recordHeader+bodyLen {
		return Record{}, 0, ErrShort
	}
	body := b[recordHeader : recordHeader+bodyLen]
	want := binary.BigEndian.Uint32(b[4:8])
	if crc32.Checksum(body, castagnoli) != want {
		return Record{}, 0, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	var rec Record
	rec.Offset = binary.BigEndian.Uint64(body[:8])
	rec.Kind = body[8]
	if rec.Kind != KindData && rec.Kind != KindSync {
		return Record{}, 0, fmt.Errorf("%w: kind %d", ErrCorrupt, rec.Kind)
	}
	cl := int(binary.BigEndian.Uint16(body[9:11]))
	if cl == 0 || cl > MaxClientID || 11+cl+8+4 > len(body) {
		return Record{}, 0, fmt.Errorf("%w: client length %d", ErrCorrupt, cl)
	}
	rec.Client = string(body[11 : 11+cl])
	rec.Seq = binary.BigEndian.Uint64(body[11+cl : 11+cl+8])
	pl := int(binary.BigEndian.Uint32(body[11+cl+8 : 11+cl+12]))
	if 11+cl+12+pl != len(body) {
		return Record{}, 0, fmt.Errorf("%w: payload length %d in %d-byte body", ErrCorrupt, pl, len(body))
	}
	rec.Payload = append([]byte(nil), body[11+cl+12:]...)
	return rec, recordHeader + bodyLen, nil
}
