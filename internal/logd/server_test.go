package logd_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	totem "github.com/totem-rrp/totem"
	"github.com/totem-rrp/totem/internal/logd"
	"github.com/totem-rrp/totem/internal/logd/logtest"
)

// startSoloNode boots a single-member ring on an in-memory hub.
func startSoloNode(t *testing.T) *totem.Node {
	t.Helper()
	hub := totem.NewMemHub(2)
	tr, err := hub.Join(1)
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	node, err := totem.NewNode(totem.Config{ID: 1, Networks: 2, Replication: totem.Passive}, tr)
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	t.Cleanup(func() { node.Close() })
	deadline := time.Now().Add(10 * time.Second)
	for !node.Operational() {
		if time.Now().After(deadline) {
			t.Fatalf("solo ring did not form: state %s", node.StateName())
		}
		time.Sleep(5 * time.Millisecond)
	}
	return node
}

// startSoloServer boots the full single-node in-memory stack: ring node,
// durable store in a temp dir, logd server, HTTP front door.
func startSoloServer(t *testing.T, opt logd.ServerOptions) (*logd.Server, *httptest.Server) {
	t.Helper()
	node := startSoloNode(t)
	store, err := logd.OpenStore(t.TempDir(), logd.StoreOptions{})
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	t.Cleanup(func() { store.Close() })
	srv, err := logd.NewServer(node, store, opt)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(srv.Close)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	deadline := time.Now().Add(10 * time.Second)
	for !srv.Live() {
		if time.Now().After(deadline) {
			t.Fatal("server did not go live")
		}
		time.Sleep(5 * time.Millisecond)
	}
	return srv, hs
}

// TestSoloServerConformance runs the model-checked conformance table
// against the single-node in-memory server — the "sim" half of the
// sim-vs-live differential (the live half is in internal/live).
func TestSoloServerConformance(t *testing.T) {
	_, hs := startSoloServer(t, logd.ServerOptions{NodeID: "solo"})
	ck := logtest.Run(t, []string{hs.URL}, logtest.RunOptions{Clients: 4, Appends: 25, ReadCheck: true})
	ck.Verify(t, context.Background(), hs.URL)
}

func postAppend(t *testing.T, base, client string, seq uint64, payload string) (*http.Response, string) {
	t.Helper()
	u := fmt.Sprintf("%s/v1/append?client=%s&seq=%d", base, client, seq)
	resp, err := http.Post(u, "application/octet-stream", strings.NewReader(payload))
	if err != nil {
		t.Fatalf("POST append: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, string(body)
}

func TestAppendSemantics(t *testing.T) {
	_, hs := startSoloServer(t, logd.ServerOptions{NodeID: "solo", MaxRecordBytes: 1024})

	// Validation failures are fatal 4xx with retryable=false bodies.
	for name, f := range map[string]func() (*http.Response, string){
		"missing client": func() (*http.Response, string) { return postAppend(t, hs.URL, "", 1, "p") },
		"zero seq":       func() (*http.Response, string) { return postAppend(t, hs.URL, "c", 0, "p") },
		"reserved id":    func() (*http.Response, string) { return postAppend(t, hs.URL, "%00sync/x", 1, "p") },
	} {
		resp, body := f()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, body %s", name, resp.StatusCode, body)
		}
		var eb logd.ErrorBody
		if json.Unmarshal([]byte(body), &eb) != nil || eb.Retryable {
			t.Fatalf("%s: error body %s must be fatal", name, body)
		}
	}
	if resp, _ := postAppend(t, hs.URL, "c", 1, strings.Repeat("z", 2048)); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized payload: status %d", resp.StatusCode)
	}

	// A committed append, then the idempotent retry fast path.
	resp, body := postAppend(t, hs.URL, "c", 1, "payload")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("append: status %d body %s", resp.StatusCode, body)
	}
	var first logd.AppendResponse
	if err := json.Unmarshal([]byte(body), &first); err != nil {
		t.Fatalf("decoding ack: %v", err)
	}
	resp, body = postAppend(t, hs.URL, "c", 1, "payload")
	var retry logd.AppendResponse
	if resp.StatusCode != http.StatusOK || json.Unmarshal([]byte(body), &retry) != nil || retry.Offset != first.Offset {
		t.Fatalf("retry of acked seq: status %d body %s, want offset %d", resp.StatusCode, body, first.Offset)
	}

	// A seq below the acked watermark is a fatal conflict.
	if resp, _ = postAppend(t, hs.URL, "c", 2, "p2"); resp.StatusCode != http.StatusOK {
		t.Fatalf("seq 2: status %d", resp.StatusCode)
	}
	if resp, _ = postAppend(t, hs.URL, "c", 1, "stale"); resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale seq: status %d, want 409", resp.StatusCode)
	}
}

func TestTailLongPoll(t *testing.T) {
	_, hs := startSoloServer(t, logd.ServerOptions{NodeID: "solo"})

	type tailResult struct {
		rr  logd.ReadResponse
		err error
	}
	done := make(chan tailResult, 1)
	go func() {
		resp, err := http.Get(hs.URL + "/v1/tail?from=0&wait_ms=8000")
		if err != nil {
			done <- tailResult{err: err}
			return
		}
		defer resp.Body.Close()
		var rr logd.ReadResponse
		done <- tailResult{rr: rr, err: json.NewDecoder(resp.Body).Decode(&rr)}
	}()
	time.Sleep(100 * time.Millisecond) // let the tail park
	if resp, body := postAppend(t, hs.URL, "w", 1, "wake"); resp.StatusCode != http.StatusOK {
		t.Fatalf("append: %d %s", resp.StatusCode, body)
	}
	select {
	case res := <-done:
		if res.err != nil {
			t.Fatalf("tail: %v", res.err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("tail long-poll never woke")
	}
}

func TestRateLimitRefusal(t *testing.T) {
	_, hs := startSoloServer(t, logd.ServerOptions{
		NodeID:    "solo",
		Admission: logd.AdmissionOptions{RatePerSec: 0.001, Burst: 1},
	})
	if resp, body := postAppend(t, hs.URL, "c", 1, "p"); resp.StatusCode != http.StatusOK {
		t.Fatalf("first append: %d %s", resp.StatusCode, body)
	}
	resp, body := postAppend(t, hs.URL, "c", 2, "p")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second append: status %d body %s, want 429", resp.StatusCode, body)
	}
	var eb logd.ErrorBody
	if json.Unmarshal([]byte(body), &eb) != nil || !eb.Retryable || eb.Kind != logd.ErrKindRateLimited {
		t.Fatalf("429 body %s must be retryable rate-limited", body)
	}
}

func TestCatchingUpRefusal(t *testing.T) {
	node := startSoloNode(t)
	store, err := logd.OpenStore(t.TempDir(), logd.StoreOptions{})
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	t.Cleanup(func() { store.Close() })
	// A peer that never answers keeps the member in catch-up.
	srv, err := logd.NewServer(node, store, logd.ServerOptions{
		NodeID:           "blocked",
		Peers:            []string{"http://127.0.0.1:1"},
		ColdStartTimeout: time.Hour,
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(srv.Close)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)

	resp, body := postAppend(t, hs.URL, "c", 1, "p")
	if resp.StatusCode != http.StatusTooEarly {
		t.Fatalf("append while catching up: status %d body %s, want 425", resp.StatusCode, body)
	}
	resp, err2 := http.Get(hs.URL + "/v1/sync?client=x&seq=1")
	if err2 != nil || resp.StatusCode != http.StatusTooEarly {
		t.Fatalf("sync while catching up: %v status %d, want 425", err2, resp.StatusCode)
	}
	resp.Body.Close()
	// Reads still serve the durable prefix (empty here) while catching up.
	resp, err2 = http.Get(hs.URL + "/v1/read?from=0")
	if err2 != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("read while catching up: %v status %d, want 200", err2, resp.StatusCode)
	}
	resp.Body.Close()
}

func TestServerRequiresCrossOrderForShards(t *testing.T) {
	hub := totem.NewMemHub(2)
	tr, err := hub.Join(1)
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	node, err := totem.NewNode(totem.Config{ID: 1, Networks: 2, Replication: totem.Passive, Shards: 2}, tr)
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	defer node.Close()
	store, err := logd.OpenStore(t.TempDir(), logd.StoreOptions{})
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	defer store.Close()
	if _, err := logd.NewServer(node, store, logd.ServerOptions{NodeID: "x"}); err == nil {
		t.Fatal("NewServer must reject Shards > 1 without CrossOrder")
	}
}
