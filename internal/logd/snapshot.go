package logd

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Snapshots and the meta file. A snapshot (snap-<next, hex>.snap) is the
// apply state as of one log position: the next offset, the highest ring
// epoch observed, and the per-client dedup table. Recovery loads the
// newest valid snapshot and replays only the segment suffix past it, so
// startup cost is bounded by the snapshot interval, not the log length.
// The meta file persists the ring epoch and a boot counter outside the
// snapshot cadence: epochs must survive a crash that happens right after
// a membership change, before the next snapshot falls due (the
// stable-storage ring sequence of the live harness's epoch-carry
// restart).
//
// Both use the same frame as records — u32 length, u32 CRC-32C, JSON
// body — and are written to a temp file, fsynced and renamed, so a crash
// mid-write leaves the previous file intact.

const (
	snapPrefix = "snap-"
	snapSuffix = ".snap"
	metaName   = "meta"
	// snapKeep is how many snapshot generations survive a new one: the
	// newest may be torn by a crash mid-rename chain, so its predecessor
	// stays as fallback.
	snapKeep = 2
)

// snapshotState is the JSON body of a snapshot file.
type snapshotState struct {
	Next    uint64                 `json:"next"`
	Epoch   uint32                 `json:"epoch"`
	Clients map[string]ClientState `json:"clients"`
}

// metaState is the JSON body of the meta file.
type metaState struct {
	Epoch uint32 `json:"epoch"`
	Boot  uint64 `json:"boot"`
}

// writeFramed atomically replaces path with the CRC-framed body.
func writeFramed(path string, body []byte) error {
	buf := make([]byte, 8, 8+len(body))
	binary.BigEndian.PutUint32(buf[:4], uint32(len(body)))
	binary.BigEndian.PutUint32(buf[4:8], crc32.Checksum(body, castagnoli))
	buf = append(buf, body...)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	return syncDir(filepath.Dir(path))
}

// readFramed loads and validates a CRC-framed file.
func readFramed(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < 8 {
		return nil, ErrShort
	}
	n := int(binary.BigEndian.Uint32(data[:4]))
	if n < 0 || 8+n > len(data) {
		return nil, fmt.Errorf("%w: framed length %d in %d-byte file", ErrCorrupt, n, len(data))
	}
	body := data[8 : 8+n]
	if crc32.Checksum(body, castagnoli) != binary.BigEndian.Uint32(data[4:8]) {
		return nil, fmt.Errorf("%w: framed checksum mismatch", ErrCorrupt)
	}
	return body, nil
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

func snapName(dir string, next uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%016x%s", snapPrefix, next, snapSuffix))
}

// listSnapshots returns snapshot files sorted newest first.
func listSnapshots(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	type snap struct {
		next uint64
		path string
	}
	var snaps []snap
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
			continue
		}
		hex := strings.TrimSuffix(strings.TrimPrefix(name, snapPrefix), snapSuffix)
		next, err := strconv.ParseUint(hex, 16, 64)
		if err != nil {
			continue
		}
		snaps = append(snaps, snap{next, filepath.Join(dir, name)})
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].next > snaps[j].next })
	out := make([]string, len(snaps))
	for i, s := range snaps {
		out[i] = s.path
	}
	return out, nil
}

// loadSnapshot returns the newest snapshot that validates, or ok=false
// when none does. Damaged candidates are skipped, not fatal: the segments
// can always rebuild the state from scratch.
func loadSnapshot(dir string) (snapshotState, bool) {
	paths, err := listSnapshots(dir)
	if err != nil {
		return snapshotState{}, false
	}
	for _, p := range paths {
		body, err := readFramed(p)
		if err != nil {
			continue
		}
		var st snapshotState
		if json.Unmarshal(body, &st) == nil {
			if st.Clients == nil {
				st.Clients = make(map[string]ClientState)
			}
			return st, true
		}
	}
	return snapshotState{}, false
}

// saveSnapshot writes st as the newest snapshot and prunes old
// generations beyond snapKeep.
func saveSnapshot(dir string, st snapshotState) error {
	body, err := json.Marshal(st)
	if err != nil {
		return err
	}
	if err := writeFramed(snapName(dir, st.Next), body); err != nil {
		return err
	}
	paths, err := listSnapshots(dir)
	if err != nil {
		return nil //nolint:nilerr // pruning is best-effort
	}
	for _, p := range paths[min(len(paths), snapKeep):] {
		os.Remove(p) //nolint:errcheck
	}
	return nil
}

func loadMeta(dir string) (metaState, bool) {
	body, err := readFramed(filepath.Join(dir, metaName))
	if err != nil {
		return metaState{}, false
	}
	var m metaState
	if json.Unmarshal(body, &m) != nil {
		return metaState{}, false
	}
	return m, true
}

func saveMeta(dir string, m metaState) error {
	body, err := json.Marshal(m)
	if err != nil {
		return err
	}
	return writeFramed(filepath.Join(dir, metaName), body)
}
