package logd

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	totem "github.com/totem-rrp/totem"
)

// The logd server: one ring member's front door. Appends are wrapped in
// an envelope, totally ordered through the ring (SendKeyed by client id,
// or the bulk lane for large records on a single-ring node), and applied
// by a single loop that consumes the Deliveries stream, assigns offsets,
// group-commits to the Store, and releases the waiting HTTP handlers —
// so an acknowledged append is both totally ordered and fsynced.
//
// A restarted member cannot learn the offsets of records ordered while
// it was down from the ring alone, so before going live it runs the
// catch-up protocol: order a sync marker through the ring, ask live
// peers (GET /v1/sync) where the marker applied, fetch the missing
// prefix (GET /v1/read) into the store, then start applying deliveries —
// the per-client dedup table absorbs the overlap between fetched records
// and buffered deliveries. When the whole cluster restarts at once there
// are no live peers; after ColdStartTimeout with every reachable peer
// also catching up, members align to the maximum durable tail among them
// (safe because an acked record was fsynced by its origin before the
// ack) and go live together.

// SyncClientPrefix namespaces the reserved client ids sync markers use.
// The front door rejects client ids that collide with it.
const SyncClientPrefix = "\x00sync/"

// Error kinds carried in JSON error bodies. The client library keys its
// retryable-vs-fatal classification off these.
const (
	ErrKindValidation   = "validation"   // 400, fatal
	ErrKindStaleSeq     = "stale-seq"    // 409, fatal
	ErrKindTooLarge     = "too-large"    // 413, fatal
	ErrKindCatchingUp   = "catching-up"  // 425, retryable
	ErrKindRateLimited  = "rate-limited" // 429, retryable
	ErrKindReforming    = "reforming"    // 503, retryable
	ErrKindBackpressure = "backpressure" // 503, retryable
	ErrKindOverloaded   = "overloaded"   // 503, retryable
	ErrKindTimeout      = "timeout"      // 504, retryable
	ErrKindClosed       = "closed"       // 503, retryable (fail over)
)

// ErrorBody is the JSON error payload of every non-2xx response.
type ErrorBody struct {
	Kind      string `json:"kind"`
	Msg       string `json:"msg"`
	Retryable bool   `json:"retryable"`
}

// AppendResponse acknowledges one append with its assigned offset.
type AppendResponse struct {
	Offset uint64 `json:"offset"`
}

// WireRecord is the JSON form of one log record ([]byte marshals as
// base64).
type WireRecord struct {
	Offset  uint64 `json:"offset"`
	Kind    byte   `json:"kind"`
	Client  string `json:"client"`
	Seq     uint64 `json:"seq"`
	Payload []byte `json:"payload,omitempty"`
}

// ReadResponse carries a contiguous run of records and the server's
// current tail (the next offset it will assign).
type ReadResponse struct {
	Records []WireRecord `json:"records"`
	Next    uint64       `json:"next"`
}

// SyncResponse answers a sync-marker query with the marker's offset.
type SyncResponse struct {
	Offset uint64 `json:"offset"`
}

// StatusResponse is the /v1/logz body.
type StatusResponse struct {
	ID          string         `json:"id"`
	Live        bool           `json:"live"`
	Next        uint64         `json:"next"`
	Epoch       uint32         `json:"epoch"`
	Boot        uint64         `json:"boot"`
	Operational bool           `json:"operational"`
	State       string         `json:"state"`
	Inflight    int            `json:"inflight"`
	Recovery    RecoveryReport `json:"recovery"`
}

// ServerOptions configures one logd server. Node, Store and NodeID are
// required; everything else defaults.
type ServerOptions struct {
	// NodeID names this member (sync markers embed it, logz reports it).
	NodeID string
	// Peers are the base URLs ("http://host:port") of the other members'
	// logd front doors, used by catch-up. Empty means standalone.
	Peers []string
	// Admission tunes the front-door gate.
	Admission AdmissionOptions
	// AckTimeout bounds how long an append handler waits for its record
	// to be ordered and committed (default 10s).
	AckTimeout time.Duration
	// MaxRecordBytes bounds one append payload (default 1 MiB).
	MaxRecordBytes int
	// BulkThreshold routes records at least this large through the bulk
	// lane on a single-ring node (default 128 KiB; 0 default, negative
	// disables the bulk path).
	BulkThreshold int
	// ReadMax caps records per read/tail response (default 512).
	ReadMax int
	// ColdStartTimeout is how long catch-up waits for a live peer before
	// considering the all-peers-catching-up alignment (default 10s).
	ColdStartTimeout time.Duration
	// Logf receives server diagnostics (default: discarded).
	Logf func(format string, args ...any)
}

func (o ServerOptions) withDefaults() ServerOptions {
	if o.AckTimeout <= 0 {
		o.AckTimeout = 10 * time.Second
	}
	if o.MaxRecordBytes <= 0 {
		o.MaxRecordBytes = 1 << 20
	}
	if o.BulkThreshold == 0 {
		o.BulkThreshold = 128 << 10
	}
	if o.ReadMax <= 0 {
		o.ReadMax = 512
	}
	if o.ColdStartTimeout <= 0 {
		o.ColdStartTimeout = 10 * time.Second
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

type identKey struct {
	client string
	seq    uint64
}

type appendResult struct {
	offset uint64
	err    string // error kind, empty on success
}

type waiter struct {
	res  appendResult
	done chan struct{}
}

// Server is one logd member. Create with NewServer, expose Handler over
// HTTP, stop with Close (graceful) or Kill (crash simulation).
type Server struct {
	node  *totem.Node
	store *Store
	adm   *Admission
	opt   ServerOptions

	mu      sync.Mutex
	waiters map[identKey]*waiter
	applied chan struct{} // closed and replaced after every apply batch

	live     atomic.Bool
	applyErr atomic.Value // string; set when the apply loop dies on a disk error

	closed    chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	httpc *http.Client
}

// NewServer starts the apply and housekeeping loops for one member. The
// caller retains ownership of node and store: close the Server first,
// then the node, then the store (or store.Kill for a crash).
func NewServer(node *totem.Node, store *Store, opt ServerOptions) (*Server, error) {
	if node == nil || store == nil {
		return nil, errors.New("logd: NewServer requires a node and a store")
	}
	if node.Shards() > 1 && !node.CrossOrdered() {
		// Offsets are assigned by apply order of the Deliveries stream;
		// without the cross-shard merge only per-shard subsequences agree
		// across members and replicas would diverge.
		return nil, errors.New("logd: Shards > 1 requires Config.CrossOrder")
	}
	opt = opt.withDefaults()
	if opt.NodeID == "" {
		opt.NodeID = fmt.Sprintf("node-%d", node.ID())
	}
	s := &Server{
		node:    node,
		store:   store,
		adm:     NewAdmission(opt.Admission),
		opt:     opt,
		waiters: make(map[identKey]*waiter),
		applied: make(chan struct{}),
		closed:  make(chan struct{}),
		httpc:   &http.Client{Timeout: 5 * time.Second},
	}
	s.wg.Add(2)
	go s.applyLoop()
	go s.houseLoop()
	return s, nil
}

// Close stops the server's loops and fails pending waiters. It does not
// close the node or the store.
func (s *Server) Close() {
	s.closeOnce.Do(func() { close(s.closed) })
	s.wg.Wait()
	s.mu.Lock()
	for k, w := range s.waiters {
		delete(s.waiters, k)
		w.res = appendResult{err: ErrKindClosed}
		close(w.done)
	}
	s.mu.Unlock()
}

// Live reports whether catch-up has completed and appends are served.
func (s *Server) Live() bool { return s.live.Load() }

// Store returns the server's store (for harness assertions).
func (s *Server) Store() *Store { return s.store }

func (s *Server) logf(format string, args ...any) { s.opt.Logf(format, args...) }

// houseLoop drains the node's side channels (so their fan-in never backs
// up against an absent consumer) and persists the ring epoch on every
// membership change — the stable-storage half of the epoch-carry restart.
func (s *Server) houseLoop() {
	defer s.wg.Done()
	configs := s.node.ConfigChanges()
	faults := s.node.Faults()
	cleared := s.node.FaultsCleared()
	for {
		select {
		case cc, ok := <-configs:
			if !ok {
				configs = nil
				break
			}
			if err := s.store.SetEpoch(cc.Ring.Epoch); err != nil {
				s.logf("logd %s: persisting epoch %d: %v", s.opt.NodeID, cc.Ring.Epoch, err)
			}
		case _, ok := <-faults:
			if !ok {
				faults = nil
			}
		case _, ok := <-cleared:
			if !ok {
				cleared = nil
			}
		case <-s.closed:
			return
		}
		if configs == nil && faults == nil && cleared == nil {
			return
		}
	}
}

// ----- apply loop ---------------------------------------------------------

const applyBatchMax = 64

func (s *Server) applyLoop() {
	defer s.wg.Done()
	if !s.catchUp() {
		return // closed mid-catch-up
	}
	s.live.Store(true)
	s.logf("logd %s: live at offset %d", s.opt.NodeID, s.store.Next())
	deliveries := s.node.Deliveries()
	var batch []totem.Delivery
	for {
		var d totem.Delivery
		var ok bool
		select {
		case d, ok = <-deliveries:
		case <-s.closed:
			return
		}
		if !ok {
			return
		}
		batch = append(batch[:0], d)
	drain:
		for len(batch) < applyBatchMax {
			select {
			case d2, ok2 := <-deliveries:
				if !ok2 {
					break drain
				}
				batch = append(batch, d2)
			default:
				break drain
			}
		}
		if !s.applyBatch(batch) {
			return
		}
	}
}

// applyBatch decodes, commits and acknowledges one batch of ordered
// deliveries. Returns false when the store failed (disk error) — the
// server stays up but degrades to rejecting appends.
func (s *Server) applyBatch(ds []totem.Delivery) bool {
	ins := make([]Incoming, 0, len(ds))
	for _, d := range ds {
		kind, client, seq, payload, err := DecodeEnvelope(d.Payload)
		if err != nil {
			s.logf("logd %s: dropping undecodable delivery from %d: %v", s.opt.NodeID, d.Sender, err)
			continue
		}
		ins = append(ins, Incoming{Kind: kind, Client: client, Seq: seq, Payload: payload})
	}
	if len(ins) == 0 {
		return true
	}
	applied, err := s.store.Apply(ins)
	if err != nil {
		s.logf("logd %s: apply failed, degrading: %v", s.opt.NodeID, err)
		s.applyErr.Store(err.Error())
		s.live.Store(false)
		return false
	}
	s.mu.Lock()
	for i, ap := range applied {
		if ap.Dup && ap.Offset == 0 {
			continue // stale duplicate of an old seq; nothing waits on it
		}
		key := identKey{ins[i].Client, ins[i].Seq}
		if w := s.waiters[key]; w != nil {
			delete(s.waiters, key)
			w.res = appendResult{offset: ap.Offset}
			close(w.done)
		}
	}
	ch := s.applied
	s.applied = make(chan struct{})
	s.mu.Unlock()
	close(ch) // wake tail long-polls
	return true
}

// appliedWait returns the channel closed by the next apply batch.
func (s *Server) appliedWait() <-chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applied
}

// ----- catch-up -----------------------------------------------------------

// catchUp blocks until this member's store has every offset the cluster
// assigned while it was down, so the apply loop can resume at the right
// position. Returns false only when the server closed.
func (s *Server) catchUp() bool {
	if len(s.opt.Peers) == 0 {
		return true // standalone: the local tail is the log
	}
	markerClient := SyncClientPrefix + s.opt.NodeID
	markerSeq := s.store.Boot()
	env := AppendEnvelope(nil, KindSync, markerClient, markerSeq, nil)
	if !s.sendWithRetry(env) {
		return false
	}
	start := time.Now()
	lastResend := start
	for {
		select {
		case <-s.closed:
			return false
		default:
		}
		liveSeen := false
		unreachable := 0
		for _, peer := range s.opt.Peers {
			off, status, err := s.peerSync(peer, markerClient, markerSeq)
			switch {
			case err != nil:
				unreachable++
			case status == http.StatusOK:
				s.logf("logd %s: sync marker at offset %d (via %s)", s.opt.NodeID, off, peer)
				return s.fetchUpTo(off)
			case status == http.StatusTooEarly:
				// peer is catching up too
			default:
				liveSeen = true // live but marker not applied there yet
			}
		}
		if !liveSeen && time.Since(start) > s.opt.ColdStartTimeout {
			// No live peer anywhere: the whole cluster is (re)starting.
			// Align to the maximum durable tail among self and reachable
			// peers — acked records were fsynced by their origin, so the
			// max durable tail covers every acknowledgement ever issued
			// (when every member is reachable; the timeout is the
			// operator's escape hatch past a permanently dead member).
			target := s.store.Next()
			reachable := 0
			for _, peer := range s.opt.Peers {
				if st, err := s.peerStatus(peer); err == nil {
					reachable++
					if st.Next > target {
						target = st.Next
					}
				}
			}
			if reachable > 0 || time.Since(start) > 2*s.opt.ColdStartTimeout {
				s.logf("logd %s: cold-start alignment to tail %d (%d/%d peers reachable)",
					s.opt.NodeID, target, reachable, len(s.opt.Peers))
				return s.fetchUpTo(target)
			}
		}
		if time.Since(lastResend) > 2*time.Second {
			// The marker may have been lost to a membership change while
			// queued; re-ordering it is idempotent (same client+seq).
			if !s.sendWithRetry(env) {
				return false
			}
			lastResend = time.Now()
		}
		if !s.sleep(200 * time.Millisecond) {
			return false
		}
	}
}

// sendWithRetry queues env on the ring, retrying past backpressure.
func (s *Server) sendWithRetry(env []byte) bool {
	for {
		err := s.node.Send(append([]byte(nil), env...))
		if err == nil {
			return true
		}
		if errors.Is(err, totem.ErrClosed) {
			return false
		}
		if !s.sleep(50 * time.Millisecond) {
			return false
		}
	}
}

// fetchUpTo ingests [store.Next(), target) from whichever peers answer.
func (s *Server) fetchUpTo(target uint64) bool {
	for s.store.Next() < target {
		progressed := false
		for _, peer := range s.opt.Peers {
			recs, err := s.peerRead(peer, s.store.Next(), s.opt.ReadMax)
			if err != nil || len(recs) == 0 {
				continue
			}
			if err := s.store.Ingest(recs); err != nil {
				s.logf("logd %s: ingest from %s: %v", s.opt.NodeID, peer, err)
				continue
			}
			progressed = true
			break
		}
		if !progressed {
			if !s.sleep(200 * time.Millisecond) {
				return false
			}
		}
	}
	return true
}

func (s *Server) sleep(d time.Duration) bool {
	select {
	case <-time.After(d):
		return true
	case <-s.closed:
		return false
	}
}

// ----- peer HTTP ----------------------------------------------------------

func (s *Server) peerSync(peer, client string, seq uint64) (offset uint64, status int, err error) {
	u := fmt.Sprintf("%s/v1/sync?client=%s&seq=%d&wait_ms=500", peer, url.QueryEscape(client), seq)
	resp, err := s.httpc.Get(u)
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096)) //nolint:errcheck
		return 0, resp.StatusCode, nil
	}
	var sr SyncResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&sr); err != nil {
		return 0, 0, err
	}
	return sr.Offset, http.StatusOK, nil
}

func (s *Server) peerStatus(peer string) (StatusResponse, error) {
	resp, err := s.httpc.Get(peer + "/v1/logz")
	if err != nil {
		return StatusResponse{}, err
	}
	defer resp.Body.Close()
	var st StatusResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&st); err != nil {
		return StatusResponse{}, err
	}
	return st, nil
}

func (s *Server) peerRead(peer string, from uint64, maxN int) ([]Record, error) {
	u := fmt.Sprintf("%s/v1/read?from=%d&max=%d", peer, from, maxN)
	resp, err := s.httpc.Get(u)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096)) //nolint:errcheck
		return nil, fmt.Errorf("logd: peer read %s: status %d", peer, resp.StatusCode)
	}
	var rr ReadResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 256<<20)).Decode(&rr); err != nil {
		return nil, err
	}
	recs := make([]Record, len(rr.Records))
	for i, w := range rr.Records {
		recs[i] = Record{Offset: w.Offset, Kind: w.Kind, Client: w.Client, Seq: w.Seq, Payload: w.Payload}
	}
	return recs, nil
}

// ----- HTTP front door ----------------------------------------------------

// Handler returns the logd HTTP API:
//
//	POST /v1/append?client=C&seq=N   body: payload   -> {"offset":o}
//	GET  /v1/read?from=N&max=M                       -> {"records":[...],"next":t}
//	GET  /v1/tail?from=N&max=M&wait_ms=T             -> like read, long-polls
//	GET  /v1/sync?client=C&seq=N&wait_ms=T           -> {"offset":o}
//	GET  /v1/logz                                    -> status JSON
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/append", s.handleAppend)
	mux.HandleFunc("/v1/read", s.handleRead)
	mux.HandleFunc("/v1/tail", s.handleTail)
	mux.HandleFunc("/v1/sync", s.handleSync)
	mux.HandleFunc("/v1/client", s.handleClient)
	mux.HandleFunc("/v1/logz", s.handleLogz)
	return mux
}

// ClientResponse reports a client's dedup state: its last applied seq
// and that record's offset. A restarted client resumes from here.
type ClientResponse struct {
	Known  bool   `json:"known"`
	Seq    uint64 `json:"seq"`
	Offset uint64 `json:"offset"`
}

func (s *Server) handleClient(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	if id == "" {
		writeErr(w, http.StatusBadRequest, ErrKindValidation, "id required", false)
		return
	}
	cs, ok := s.store.Client(id)
	writeJSON(w, ClientResponse{Known: ok, Seq: cs.Seq, Offset: cs.Offset})
}

func writeErr(w http.ResponseWriter, status int, kind, msg string, retryable bool) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(ErrorBody{Kind: kind, Msg: msg, Retryable: retryable}) //nolint:errcheck
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v) //nolint:errcheck
}

func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, ErrKindValidation, "POST required", false)
		return
	}
	q := r.URL.Query()
	client := q.Get("client")
	if client == "" || len(client) > MaxClientID {
		writeErr(w, http.StatusBadRequest, ErrKindValidation, "client id must be 1..256 bytes", false)
		return
	}
	if strings.HasPrefix(client, "\x00") {
		writeErr(w, http.StatusBadRequest, ErrKindValidation, "client ids starting with NUL are reserved", false)
		return
	}
	seq, err := strconv.ParseUint(q.Get("seq"), 10, 64)
	if err != nil || seq == 0 {
		writeErr(w, http.StatusBadRequest, ErrKindValidation, "seq must be a positive integer", false)
		return
	}
	payload, err := io.ReadAll(io.LimitReader(r.Body, int64(s.opt.MaxRecordBytes)+1))
	if err != nil {
		writeErr(w, http.StatusBadRequest, ErrKindValidation, "reading body: "+err.Error(), false)
		return
	}
	if len(payload) > s.opt.MaxRecordBytes {
		writeErr(w, http.StatusRequestEntityTooLarge, ErrKindTooLarge,
			fmt.Sprintf("payload exceeds %d bytes", s.opt.MaxRecordBytes), false)
		return
	}
	if msg, ok := s.applyErr.Load().(string); ok {
		writeErr(w, http.StatusServiceUnavailable, ErrKindClosed, "store degraded: "+msg, true)
		return
	}
	if !s.live.Load() {
		writeErr(w, http.StatusTooEarly, ErrKindCatchingUp, "member is catching up", true)
		return
	}
	// Idempotency fast path: a retry of the client's last acknowledged
	// append returns the original offset without re-ordering anything.
	if cs, ok := s.store.Client(client); ok {
		if seq == cs.Seq {
			writeJSON(w, AppendResponse{Offset: cs.Offset})
			return
		}
		if seq < cs.Seq {
			writeErr(w, http.StatusConflict, ErrKindStaleSeq,
				fmt.Sprintf("seq %d already superseded (last acked %d)", seq, cs.Seq), false)
			return
		}
	}
	if !s.node.OperationalOf(s.node.ShardOf([]byte(client))) {
		writeErr(w, http.StatusServiceUnavailable, ErrKindReforming, "ring is reforming", true)
		return
	}
	if !s.adm.AllowClient(client) {
		writeErr(w, http.StatusTooManyRequests, ErrKindRateLimited, "client rate limit", true)
		return
	}
	if !s.adm.Acquire() {
		writeErr(w, http.StatusServiceUnavailable, ErrKindOverloaded, "append capacity", true)
		return
	}
	defer s.adm.Release()

	// Register (or join) the waiter, then (re-)order the record. Retries
	// always re-send: the envelope is idempotent and a resend heals a
	// submission lost to a membership change. An abandoned waiter entry
	// is reclaimed when its record finally applies or at Close.
	key := identKey{client, seq}
	s.mu.Lock()
	wt := s.waiters[key]
	if wt == nil {
		wt = &waiter{done: make(chan struct{})}
		s.waiters[key] = wt
	}
	s.mu.Unlock()

	env := AppendEnvelope(nil, KindData, client, seq, payload)
	if err := s.order(client, env); err != nil {
		switch {
		case errors.Is(err, totem.ErrBackpressure):
			writeErr(w, http.StatusServiceUnavailable, ErrKindBackpressure, "send queue full", true)
		case errors.Is(err, totem.ErrClosed):
			writeErr(w, http.StatusServiceUnavailable, ErrKindClosed, "ring node closed", true)
		default:
			writeErr(w, http.StatusServiceUnavailable, ErrKindOverloaded, err.Error(), true)
		}
		return
	}

	timer := time.NewTimer(s.opt.AckTimeout)
	defer timer.Stop()
	select {
	case <-wt.done:
		if wt.res.err != "" {
			writeErr(w, http.StatusServiceUnavailable, wt.res.err, "append failed: "+wt.res.err, true)
			return
		}
		writeJSON(w, AppendResponse{Offset: wt.res.offset})
	case <-timer.C:
		writeErr(w, http.StatusGatewayTimeout, ErrKindTimeout, "ordering timed out", true)
	case <-r.Context().Done():
		// client went away; the record may still commit — that's what the
		// idempotency key is for.
	case <-s.closed:
		writeErr(w, http.StatusServiceUnavailable, ErrKindClosed, "server closing", true)
	}
}

// order submits one envelope to the ring: the bulk lane for large
// records on a single-ring node, SendKeyed otherwise.
func (s *Server) order(client string, env []byte) error {
	if s.opt.BulkThreshold > 0 && len(env) >= s.opt.BulkThreshold && s.node.Shards() == 1 {
		if _, err := s.node.SendBulk(env); err == nil {
			return nil
		} else if errors.Is(err, totem.ErrClosed) {
			return err
		}
		// Bulk refused (config limits): fall through to the regular lane,
		// which fragments arbitrarily large messages.
	}
	return s.node.SendKeyed([]byte(client), env)
}

func (s *Server) handleRead(w http.ResponseWriter, r *http.Request) {
	from, maxN, _, ok := readParams(w, r, s.opt.ReadMax)
	if !ok {
		return
	}
	// Read serves from the durable store even while catching up: records
	// on disk were committed by the ordered apply loop before any crash.
	recs, err := s.store.Read(from, maxN, 8<<20)
	if err != nil {
		writeErr(w, http.StatusBadRequest, ErrKindValidation, err.Error(), false)
		return
	}
	writeJSON(w, readResponse(recs, s.store.Next()))
}

func (s *Server) handleTail(w http.ResponseWriter, r *http.Request) {
	from, maxN, wait, ok := readParams(w, r, s.opt.ReadMax)
	if !ok {
		return
	}
	if wait <= 0 {
		wait = 10 * time.Second
	}
	deadline := time.Now().Add(wait)
	for {
		recs, err := s.store.Read(from, maxN, 8<<20)
		if err != nil {
			writeErr(w, http.StatusBadRequest, ErrKindValidation, err.Error(), false)
			return
		}
		if len(recs) > 0 || !time.Now().Before(deadline) {
			writeJSON(w, readResponse(recs, s.store.Next()))
			return
		}
		applied := s.appliedWait()
		timer := time.NewTimer(time.Until(deadline))
		select {
		case <-applied:
		case <-timer.C:
		case <-r.Context().Done():
			timer.Stop()
			return
		case <-s.closed:
			timer.Stop()
			writeJSON(w, readResponse(nil, s.store.Next()))
			return
		}
		timer.Stop()
	}
}

func readParams(w http.ResponseWriter, r *http.Request, readMax int) (from uint64, maxN int, wait time.Duration, ok bool) {
	q := r.URL.Query()
	var err error
	if v := q.Get("from"); v != "" {
		if from, err = strconv.ParseUint(v, 10, 64); err != nil {
			writeErr(w, http.StatusBadRequest, ErrKindValidation, "bad from", false)
			return 0, 0, 0, false
		}
	}
	maxN = readMax
	if v := q.Get("max"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			writeErr(w, http.StatusBadRequest, ErrKindValidation, "bad max", false)
			return 0, 0, 0, false
		}
		if n < maxN {
			maxN = n
		}
	}
	if v := q.Get("wait_ms"); v != "" {
		ms, err := strconv.Atoi(v)
		if err != nil || ms < 0 {
			writeErr(w, http.StatusBadRequest, ErrKindValidation, "bad wait_ms", false)
			return 0, 0, 0, false
		}
		wait = time.Duration(ms) * time.Millisecond
	}
	return from, maxN, wait, true
}

func readResponse(recs []Record, next uint64) ReadResponse {
	out := ReadResponse{Records: make([]WireRecord, len(recs)), Next: next}
	for i, rec := range recs {
		out.Records[i] = WireRecord{Offset: rec.Offset, Kind: rec.Kind, Client: rec.Client, Seq: rec.Seq, Payload: rec.Payload}
	}
	return out
}

func (s *Server) handleSync(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	client := q.Get("client")
	seq, err := strconv.ParseUint(q.Get("seq"), 10, 64)
	if client == "" || err != nil {
		writeErr(w, http.StatusBadRequest, ErrKindValidation, "client and seq required", false)
		return
	}
	wait := 500 * time.Millisecond
	if v := q.Get("wait_ms"); v != "" {
		if ms, err := strconv.Atoi(v); err == nil && ms >= 0 {
			wait = time.Duration(ms) * time.Millisecond
		}
	}
	if cs, ok := s.store.Client(client); ok && cs.Seq >= seq {
		if cs.Seq == seq {
			writeJSON(w, SyncResponse{Offset: cs.Offset})
			return
		}
		writeErr(w, http.StatusConflict, ErrKindStaleSeq, "marker superseded", false)
		return
	}
	if !s.live.Load() {
		writeErr(w, http.StatusTooEarly, ErrKindCatchingUp, "member is catching up", true)
		return
	}
	// Live but the marker hasn't applied here yet: wait for it briefly.
	key := identKey{client, seq}
	s.mu.Lock()
	wt := s.waiters[key]
	if wt == nil {
		wt = &waiter{done: make(chan struct{})}
		s.waiters[key] = wt
	}
	s.mu.Unlock()
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case <-wt.done:
		if wt.res.err != "" {
			writeErr(w, http.StatusServiceUnavailable, wt.res.err, "sync failed", true)
			return
		}
		writeJSON(w, SyncResponse{Offset: wt.res.offset})
	case <-timer.C:
		writeErr(w, http.StatusGatewayTimeout, ErrKindTimeout, "marker not yet applied", true)
	case <-r.Context().Done():
	case <-s.closed:
		writeErr(w, http.StatusServiceUnavailable, ErrKindClosed, "server closing", true)
	}
}

func (s *Server) handleLogz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, StatusResponse{
		ID:          s.opt.NodeID,
		Live:        s.live.Load(),
		Next:        s.store.Next(),
		Epoch:       s.store.Epoch(),
		Boot:        s.store.Boot(),
		Operational: s.node.Operational(),
		State:       s.node.StateName(),
		Inflight:    s.adm.Inflight(),
		Recovery:    s.store.RecoveryReport(),
	})
}
