package logd

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func apply1(t *testing.T, s *Store, client string, seq uint64, payload string) Applied {
	t.Helper()
	out, err := s.Apply([]Incoming{{Kind: KindData, Client: client, Seq: seq, Payload: []byte(payload)}})
	if err != nil {
		t.Fatalf("Apply(%s/%d): %v", client, seq, err)
	}
	return out[0]
}

func TestStoreAppendReadRoundtrip(t *testing.T) {
	s, err := OpenStore(t.TempDir(), StoreOptions{})
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	defer s.Close()
	for i := 1; i <= 10; i++ {
		ap := apply1(t, s, "alice", uint64(i), fmt.Sprintf("payload-%d", i))
		if ap.Dup || ap.Offset != uint64(i-1) {
			t.Fatalf("append %d: got %+v", i, ap)
		}
	}
	recs, err := s.Read(3, 100, 0)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(recs) != 7 {
		t.Fatalf("Read(3): got %d records, want 7", len(recs))
	}
	for i, rec := range recs {
		want := fmt.Sprintf("payload-%d", i+4)
		if rec.Offset != uint64(i+3) || string(rec.Payload) != want {
			t.Fatalf("record %d: offset %d payload %q", i, rec.Offset, rec.Payload)
		}
	}
	if recs, _ := s.Read(10, 10, 0); len(recs) != 0 {
		t.Fatalf("read at tail returned %d records", len(recs))
	}
}

func TestStoreDedup(t *testing.T) {
	s, err := OpenStore(t.TempDir(), StoreOptions{})
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	defer s.Close()
	first := apply1(t, s, "c", 1, "one")
	retry := apply1(t, s, "c", 1, "one")
	if !retry.Dup || retry.Offset != first.Offset {
		t.Fatalf("retry of last seq: got %+v, want dup at %d", retry, first.Offset)
	}
	apply1(t, s, "c", 2, "two")
	old := apply1(t, s, "c", 1, "one")
	if !old.Dup || old.Offset != 0 {
		t.Fatalf("stale duplicate: got %+v, want dup with offset 0", old)
	}
	if s.Next() != 2 {
		t.Fatalf("Next = %d after dedup, want 2", s.Next())
	}
}

func TestStoreRecoversAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, StoreOptions{SegmentBytes: 256, SnapshotEvery: 5})
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	for i := 1; i <= 20; i++ {
		apply1(t, s, "alice", uint64(i), fmt.Sprintf("payload-%d", i))
	}
	if err := s.SetEpoch(7); err != nil {
		t.Fatalf("SetEpoch: %v", err)
	}
	boot1 := s.Boot()
	s.Kill() // no snapshot, no graceful close: everything must come off segments

	s2, err := OpenStore(dir, StoreOptions{SegmentBytes: 256, SnapshotEvery: 5})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if s2.Next() != 20 {
		t.Fatalf("recovered Next = %d, want 20", s2.Next())
	}
	if s2.Epoch() != 7 {
		t.Fatalf("recovered Epoch = %d, want 7", s2.Epoch())
	}
	if s2.Boot() != boot1+1 {
		t.Fatalf("Boot = %d, want %d", s2.Boot(), boot1+1)
	}
	if cs, ok := s2.Client("alice"); !ok || cs.Seq != 20 || cs.Offset != 19 {
		t.Fatalf("recovered client state %+v ok=%v", cs, ok)
	}
	// The log must still read back whole, across rotated segments.
	recs, err := s2.Read(0, 100, 0)
	if err != nil || len(recs) != 20 {
		t.Fatalf("Read after recovery: %d records, err %v", len(recs), err)
	}
	// And appends continue from the recovered tail.
	if ap := apply1(t, s2, "alice", 21, "payload-21"); ap.Offset != 20 {
		t.Fatalf("post-recovery append at %d, want 20", ap.Offset)
	}
}

func TestStoreIngest(t *testing.T) {
	s, err := OpenStore(t.TempDir(), StoreOptions{})
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	defer s.Close()
	apply1(t, s, "a", 1, "local")
	recs := []Record{
		{Offset: 0, Kind: KindData, Client: "a", Seq: 1, Payload: []byte("local")}, // overlap: skipped
		{Offset: 1, Kind: KindData, Client: "b", Seq: 1, Payload: []byte("fetched-1")},
		{Offset: 2, Kind: KindSync, Client: SyncClientPrefix + "n3", Seq: 2},
	}
	if err := s.Ingest(recs); err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	if s.Next() != 3 {
		t.Fatalf("Next = %d, want 3", s.Next())
	}
	if cs, ok := s.Client("b"); !ok || cs.Offset != 1 {
		t.Fatalf("ingest did not update dedup table: %+v ok=%v", cs, ok)
	}
	// A gap must be rejected, not silently written.
	if err := s.Ingest([]Record{{Offset: 5, Kind: KindData, Client: "x", Seq: 1}}); err == nil {
		t.Fatal("Ingest accepted a discontiguous offset")
	}
}

func TestStoreRecoveryTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	for i := 1; i <= 5; i++ {
		apply1(t, s, "c", uint64(i), strings.Repeat("x", 64))
	}
	s.Kill()
	// Tear the final record: a crash mid-write leaves a short tail.
	segs, _ := listSegments(dir)
	if len(segs) != 1 {
		t.Fatalf("expected 1 segment, got %d", len(segs))
	}
	fi, _ := os.Stat(segs[0].path)
	if err := os.Truncate(segs[0].path, fi.Size()-10); err != nil {
		t.Fatalf("truncate: %v", err)
	}

	s2, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatalf("reopen after torn tail: %v", err)
	}
	defer s2.Close()
	if s2.Next() != 4 {
		t.Fatalf("recovered Next = %d, want 4 (last whole record)", s2.Next())
	}
	rep := s2.RecoveryReport()
	if !rep.Truncated || rep.TruncatedBytes == 0 {
		t.Fatalf("recovery report did not flag truncation: %+v", rep)
	}
	// The store keeps working past the repair.
	if ap := apply1(t, s2, "c", 5, "again"); ap.Offset != 4 {
		t.Fatalf("append after repair at %d, want 4", ap.Offset)
	}
}

func TestStoreRecoveryFlippedByte(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, StoreOptions{SegmentBytes: 512})
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	for i := 1; i <= 30; i++ {
		apply1(t, s, "c", uint64(i), strings.Repeat("y", 64))
	}
	s.Kill()
	segs, _ := listSegments(dir)
	if len(segs) < 3 {
		t.Fatalf("want >= 3 segments, got %d", len(segs))
	}
	// Flip one byte in the middle of the second segment: recovery must
	// stop there and quarantine every later segment.
	victim := segs[1]
	data, _ := os.ReadFile(victim.path)
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(victim.path, data, 0o644); err != nil {
		t.Fatalf("corrupting: %v", err)
	}

	s2, err := OpenStore(dir, StoreOptions{SegmentBytes: 512})
	if err != nil {
		t.Fatalf("reopen after flipped byte: %v", err)
	}
	defer s2.Close()
	if s2.Next() <= victim.base || s2.Next() >= 30 {
		t.Fatalf("recovered Next = %d, want in (%d, 30): damage inside segment 2", s2.Next(), victim.base)
	}
	rep := s2.RecoveryReport()
	if !rep.Truncated {
		t.Fatalf("recovery report did not flag damage: %+v", rep)
	}
	if rep.Orphaned == 0 {
		t.Fatalf("later segments were not quarantined: %+v", rep)
	}
	orphans, _ := filepath.Glob(filepath.Join(dir, "*"+orphanedExt))
	if len(orphans) != rep.Orphaned {
		t.Fatalf("%d orphan files on disk, report says %d", len(orphans), rep.Orphaned)
	}
	// Recovered prefix reads clean and the log continues from there.
	recs, err := s2.Read(0, 100, 0)
	if err != nil || uint64(len(recs)) != s2.Next() {
		t.Fatalf("Read after repair: %d records (next %d), err %v", len(recs), s2.Next(), err)
	}
}

func TestStoreRecoveryDamagedSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, StoreOptions{SnapshotEvery: 4})
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	for i := 1; i <= 10; i++ {
		apply1(t, s, "c", uint64(i), "p")
	}
	if err := s.Close(); err != nil { // writes a final snapshot
		t.Fatalf("Close: %v", err)
	}
	snaps, _ := listSnapshots(dir)
	if len(snaps) == 0 {
		t.Fatal("no snapshots written")
	}
	// Corrupt the newest snapshot's body: load must skip to an older one
	// (or replay from scratch), never crash or lose records.
	data, _ := os.ReadFile(snaps[0])
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(snaps[0], data, 0o644); err != nil {
		t.Fatalf("corrupting snapshot: %v", err)
	}
	s2, err := OpenStore(dir, StoreOptions{SnapshotEvery: 4})
	if err != nil {
		t.Fatalf("reopen with damaged snapshot: %v", err)
	}
	defer s2.Close()
	if s2.Next() != 10 {
		t.Fatalf("recovered Next = %d, want 10", s2.Next())
	}
	if cs, ok := s2.Client("c"); !ok || cs.Seq != 10 {
		t.Fatalf("client state after snapshot fallback: %+v ok=%v", cs, ok)
	}
}

func TestStoreReadBelowRetainedStart(t *testing.T) {
	// A store recovered from a snapshot whose early segments are gone
	// must refuse reads below its retained start rather than serve junk.
	dir := t.TempDir()
	s, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	defer s.Close()
	if _, err := s.Read(0, 10, 0); err != nil {
		t.Fatalf("empty store Read: %v", err)
	}
	apply1(t, s, "c", 1, "p")
	if _, err := s.Read(0, 10, 0); err != nil {
		t.Fatalf("Read(0): %v", err)
	}
}

func TestStoreClosedErrors(t *testing.T) {
	s, err := OpenStore(t.TempDir(), StoreOptions{})
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	s.Close()
	if _, err := s.Apply([]Incoming{{Kind: KindData, Client: "c", Seq: 1}}); !errors.Is(err, os.ErrClosed) {
		t.Fatalf("Apply after Close: %v", err)
	}
	if err := s.Ingest([]Record{{Offset: 0, Kind: KindData, Client: "c", Seq: 1}}); !errors.Is(err, os.ErrClosed) {
		t.Fatalf("Ingest after Close: %v", err)
	}
}
