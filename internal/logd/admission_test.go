package logd

import (
	"testing"
	"time"
)

func TestAdmissionInflightCap(t *testing.T) {
	a := NewAdmission(AdmissionOptions{MaxInflight: 2})
	if !a.Acquire() || !a.Acquire() {
		t.Fatal("first two acquires must succeed")
	}
	if a.Acquire() {
		t.Fatal("third acquire must be refused at MaxInflight=2")
	}
	a.Release()
	if !a.Acquire() {
		t.Fatal("acquire after release must succeed")
	}
	if got := a.Inflight(); got != 2 {
		t.Fatalf("Inflight = %d, want 2", got)
	}
}

func TestAdmissionTokenBucket(t *testing.T) {
	a := NewAdmission(AdmissionOptions{RatePerSec: 10, Burst: 3})
	now := time.Unix(0, 0)
	a.now = func() time.Time { return now }

	for i := 0; i < 3; i++ {
		if !a.AllowClient("c") {
			t.Fatalf("burst token %d refused", i)
		}
	}
	if a.AllowClient("c") {
		t.Fatal("fourth request within burst must be rate-limited")
	}
	// Another client has its own bucket.
	if !a.AllowClient("other") {
		t.Fatal("distinct client must not share the exhausted bucket")
	}
	// 100ms at 10/s refills one token.
	now = now.Add(100 * time.Millisecond)
	if !a.AllowClient("c") {
		t.Fatal("refilled token refused")
	}
	if a.AllowClient("c") {
		t.Fatal("only one token should have refilled")
	}
	// Refill caps at Burst no matter how long the idle gap.
	now = now.Add(time.Hour)
	allowed := 0
	for a.AllowClient("c") {
		allowed++
	}
	if allowed != 3 {
		t.Fatalf("after a long idle: %d tokens, want Burst=3", allowed)
	}
}

func TestAdmissionOverflowBucket(t *testing.T) {
	a := NewAdmission(AdmissionOptions{RatePerSec: 1000, Burst: 2, MaxClients: 1})
	now := time.Unix(0, 0)
	a.now = func() time.Time { return now }

	if !a.AllowClient("tracked") {
		t.Fatal("first client refused")
	}
	// The table is full: every further identity shares the overflow
	// bucket instead of growing the map without bound.
	if !a.AllowClient("x1") || !a.AllowClient("x2") {
		t.Fatal("overflow clients should share the overflow burst")
	}
	if a.AllowClient("x3") {
		t.Fatal("overflow bucket exhausted but x3 admitted")
	}
}

func TestAdmissionDisabled(t *testing.T) {
	a := NewAdmission(AdmissionOptions{RatePerSec: -1})
	for i := 0; i < 10_000; i++ {
		if !a.AllowClient("c") {
			t.Fatal("negative RatePerSec must disable per-client limits")
		}
	}
}
