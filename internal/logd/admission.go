package logd

import (
	"sync"
	"time"
)

// Admission control at the front door: a global inflight cap bounds how
// many appends the server holds in memory awaiting ordering + commit,
// and a per-client token bucket bounds each client's append rate so one
// hot client cannot starve the rest. Both answer instantly — the server
// turns a refusal into 429/503 and lets the client's backoff provide the
// queueing, rather than parking goroutines.

// AdmissionOptions tunes the front door. Zero fields take defaults.
type AdmissionOptions struct {
	// MaxInflight is the global cap on appends in flight (default 1024).
	MaxInflight int
	// RatePerSec refills each client's token bucket (default 500/s;
	// negative disables per-client limiting).
	RatePerSec float64
	// Burst is each bucket's capacity (default 2*RatePerSec, min 16).
	Burst float64
	// MaxClients bounds the bucket table; once full, unknown clients are
	// rate-limited as one shared bucket (default 4096).
	MaxClients int
}

func (o AdmissionOptions) withDefaults() AdmissionOptions {
	if o.MaxInflight <= 0 {
		o.MaxInflight = 1024
	}
	if o.RatePerSec == 0 {
		o.RatePerSec = 500
	}
	if o.Burst <= 0 {
		o.Burst = max(2*o.RatePerSec, 16)
	}
	if o.MaxClients <= 0 {
		o.MaxClients = 4096
	}
	return o
}

type bucket struct {
	tokens float64
	last   time.Time
}

// Admission implements the inflight gate and the per-client buckets.
type Admission struct {
	opt AdmissionOptions

	mu       sync.Mutex
	inflight int
	buckets  map[string]*bucket
	overflow bucket // shared bucket once MaxClients distinct ids are seen

	// now is swappable for tests.
	now func() time.Time
}

// NewAdmission builds an Admission gate.
func NewAdmission(opt AdmissionOptions) *Admission {
	return &Admission{
		opt:     opt.withDefaults(),
		buckets: make(map[string]*bucket),
		now:     time.Now,
	}
}

// Acquire claims an inflight slot, reporting false when the server is at
// capacity. Pair with Release.
func (a *Admission) Acquire() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.inflight >= a.opt.MaxInflight {
		return false
	}
	a.inflight++
	return true
}

// Release returns an inflight slot.
func (a *Admission) Release() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.inflight > 0 {
		a.inflight--
	}
}

// Inflight returns the current number of held slots.
func (a *Admission) Inflight() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inflight
}

// AllowClient spends one token from client's bucket, reporting false
// (rate limited) when the bucket is empty.
func (a *Admission) AllowClient(client string) bool {
	if a.opt.RatePerSec < 0 {
		return true
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	b, ok := a.buckets[client]
	if !ok {
		if len(a.buckets) >= a.opt.MaxClients {
			b = &a.overflow
		} else {
			b = &bucket{tokens: a.opt.Burst, last: a.now()}
			a.buckets[client] = b
		}
	}
	now := a.now()
	b.tokens = min(a.opt.Burst, b.tokens+a.opt.RatePerSec*now.Sub(b.last).Seconds())
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
