package logd

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzSegmentDecode throws arbitrary bytes at the on-disk record decoder.
// Invariants: never panic, never read past the buffer, classify every
// input as a valid record / short prefix / corruption, and round-trip
// exactly (decode∘encode is the identity on the consumed prefix).
func FuzzSegmentDecode(f *testing.F) {
	seed := func(rec Record) { f.Add(AppendRecord(nil, rec)) }
	seed(Record{Offset: 0, Kind: KindData, Client: "a", Seq: 1, Payload: []byte("hello")})
	seed(Record{Offset: 1 << 40, Kind: KindSync, Client: SyncClientPrefix + "node-3", Seq: 7})
	seed(Record{Offset: 3, Kind: KindData, Client: string(bytes.Repeat([]byte("c"), MaxClientID)), Seq: 1 << 60, Payload: bytes.Repeat([]byte{0xAB}, 300)})
	two := AppendRecord(nil, Record{Offset: 5, Kind: KindData, Client: "x", Seq: 1, Payload: []byte("p1")})
	two = AppendRecord(two, Record{Offset: 6, Kind: KindData, Client: "y", Seq: 2, Payload: []byte("p2")})
	f.Add(two)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 4, 1, 2, 3, 4})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := DecodeRecord(data)
		if err != nil {
			if !errors.Is(err, ErrShort) && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("unclassified decode error: %v", err)
			}
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		if len(rec.Client) == 0 || len(rec.Client) > MaxClientID {
			t.Fatalf("decoded client length %d escaped validation", len(rec.Client))
		}
		if rec.Kind != KindData && rec.Kind != KindSync {
			t.Fatalf("decoded kind %d escaped validation", rec.Kind)
		}
		// Canonical round-trip: re-encoding the decoded record must
		// reproduce the consumed bytes exactly.
		if enc := AppendRecord(nil, rec); !bytes.Equal(enc, data[:n]) {
			t.Fatalf("round-trip mismatch:\n in  %x\n out %x", data[:n], enc)
		}
	})
}

// FuzzEnvelopeDecode does the same for the ring envelope.
func FuzzEnvelopeDecode(f *testing.F) {
	f.Add(AppendEnvelope(nil, KindData, "client-1", 42, []byte("payload")))
	f.Add(AppendEnvelope(nil, KindSync, SyncClientPrefix+"n2", 3, nil))
	f.Add([]byte{})
	f.Add([]byte{1, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		kind, client, seq, payload, err := DecodeEnvelope(data)
		if err != nil {
			if !errors.Is(err, ErrShort) && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("unclassified decode error: %v", err)
			}
			return
		}
		if enc := AppendEnvelope(nil, kind, client, seq, payload); !bytes.Equal(enc, data) {
			t.Fatalf("round-trip mismatch:\n in  %x\n out %x", data, enc)
		}
	})
}

func TestDecodeRecordTruncationIsShortNotCorrupt(t *testing.T) {
	// Every strict prefix of a valid record must classify as ErrShort —
	// that is what lets recovery treat a torn tail as repairable rather
	// than refusing to start.
	full := AppendRecord(nil, Record{Offset: 9, Kind: KindData, Client: "alice", Seq: 12, Payload: []byte("the payload")})
	for cut := 0; cut < len(full); cut++ {
		if _, _, err := DecodeRecord(full[:cut]); !errors.Is(err, ErrShort) {
			t.Fatalf("prefix of %d/%d bytes: got %v, want ErrShort", cut, len(full), err)
		}
	}
}

func TestDecodeRecordFlippedByteIsCaught(t *testing.T) {
	full := AppendRecord(nil, Record{Offset: 9, Kind: KindData, Client: "alice", Seq: 12, Payload: []byte("the payload")})
	for i := range full {
		mut := append([]byte(nil), full...)
		mut[i] ^= 0x01
		rec, _, err := DecodeRecord(mut)
		if err == nil {
			// A flip in the length prefix can only survive if the frame
			// still parses to the same bytes — impossible for a 1-bit flip
			// with the CRC over the body; a flip inside the body must be
			// caught by the CRC.
			t.Fatalf("flip at byte %d decoded silently to %+v", i, rec)
		}
	}
}
