package logd

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Log segments: each file seg-<first offset, hex>.log holds the framed
// records [base, base+k) in offset order. Segments are append-only and
// rotate at Options.SegmentBytes; recovery scans them front to back,
// stops at the first damaged or discontiguous record, truncates the
// damaged file back to its last valid boundary and quarantines anything
// after it, so a torn write or flipped byte costs the damaged suffix,
// never a crash.

const (
	segPrefix   = "seg-"
	segSuffix   = ".log"
	orphanedExt = ".orphaned"
)

type segref struct {
	base uint64
	path string
}

func segName(dir string, base uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%016x%s", segPrefix, base, segSuffix))
}

// listSegments returns the directory's segment files sorted by base
// offset. Files whose names do not parse are ignored.
func listSegments(dir string) ([]segref, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segref
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		hex := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
		base, err := strconv.ParseUint(hex, 16, 64)
		if err != nil {
			continue
		}
		segs = append(segs, segref{base: base, path: filepath.Join(dir, name)})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].base < segs[j].base })
	return segs, nil
}

// scanSegment walks one segment file, invoking fn for every valid record
// whose offset is >= from and verifying the offsets run base, base+1, ...
// It returns the next expected offset, the byte length of the valid
// prefix, and whether the file ended cleanly (false means damage or a
// discontiguity was found at validLen).
func scanSegment(path string, base, from uint64, fn func(Record)) (next uint64, validLen int64, clean bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, false, err
	}
	next = base
	pos := 0
	for pos < len(data) {
		rec, n, derr := DecodeRecord(data[pos:])
		if derr != nil {
			// ErrShort at the tail is a torn final write; ErrCorrupt is a
			// flipped byte. Either way the file is valid up to pos.
			return next, int64(pos), false, nil
		}
		if rec.Offset != next {
			// Discontiguity: the record parsed but belongs elsewhere —
			// treat as damage at this boundary.
			return next, int64(pos), false, nil
		}
		if rec.Offset >= from && fn != nil {
			fn(rec)
		}
		next++
		pos += n
	}
	return next, int64(pos), true, nil
}

// quarantine renames a no-longer-trusted file aside rather than deleting
// it, so a post-mortem can inspect what recovery dropped.
func quarantine(path string) {
	os.Rename(path, path+orphanedExt) //nolint:errcheck
}
