package torture

import (
	"fmt"
	"sync"
	"time"

	"github.com/totem-rrp/totem/internal/proto"
	"github.com/totem-rrp/totem/internal/trace"
	"github.com/totem-rrp/totem/internal/wire"
)

// Violation is the checker's verdict: which invariant broke first, where
// and when. A run has at most one violation — the checker freezes on the
// first so the trace tail ends at the failure.
type Violation struct {
	// Invariant is a stable name from the catalogue in DESIGN.md §10/§12:
	// "order", "no-dup", "final-ring", "ring-drain", "self-delivery",
	// "monitor-bound", "token-accounting", "fault-heal", "slow-vs-dead",
	// "recovery".
	Invariant string        `json:"invariant"`
	Node      proto.NodeID  `json:"node,omitempty"`
	At        time.Duration `json:"at"`
	Detail    string        `json:"detail"`
}

func (v *Violation) String() string {
	return fmt.Sprintf("[%v] %s at node %v: %s", v.At, v.Invariant, v.Node, v.Detail)
}

// Checker subscribes to every node's delivery stream and to the cluster
// trace feed and asserts the global protocol invariants online; the
// end-of-run invariants are checked by Finish against an EndState
// snapshot once the healed cluster has had time to converge. All checks
// are sound under extended virtual synchrony: nodes partitioned away may
// deliver fewer messages, so the online check is per-ring order
// consistency, never whole-stream equality across nodes.
//
// The checker is execution-backend neutral: the virtual-time runner
// feeds it single-threaded, the live harness feeds it from every node's
// runtime goroutine concurrently, so all entry points lock.
type Checker struct {
	passiveStyle bool
	monitorBound int64

	mu        sync.Mutex
	now       func() proto.Time
	recordSeq bool

	rings map[proto.RingID]*ringLog
	nodes map[proto.NodeID]*nodeState

	// slowOnly flags networks that are merely slow (and degraded by
	// nothing else): convicting one is a slow-vs-dead violation.
	slowOnly []bool
	// recoveryBudget caps token receptions between a state corruption and
	// the corrupted node re-delivering its own traffic; corrupt tracks
	// each injection.
	recoveryBudget int64
	corrupt        map[proto.NodeID]*corruptTrack

	violation *Violation
}

// corruptTrack follows one node's bounded recovery from a state
// corruption: the marker is the first submission its stack accepted after
// the injection, and recovery is proven when the node delivers it.
type corruptTrack struct {
	tokRxAt int64  // token receptions at injection time
	marker  uint64 // payload hash of the marker submission
	label   string
	hasMark bool
	done    bool
}

// ringLog is the reconstructed global delivery order of one ring. The
// first node to deliver a packet authors its chunk list; every other node
// must replay it exactly. Chunks of one packet are delivered atomically
// (one OnPacket batch), so an entry is complete as soon as its author's
// batch ends — any node that leaves a sequence number short, or extends
// an entry another node already finished, has diverged.
type ringLog struct {
	id      proto.RingID
	entries map[uint32]*seqEntry
}

type seqEntry struct {
	chunks []uint64 // payload hashes, in delivery order
	closed bool     // some node finished this packet and moved on
}

// ringPos is one node's cursor within one ring.
type ringPos struct {
	active bool
	seq    uint32
	idx    int
}

type nodeState struct {
	id      proto.NodeID
	crashes int

	delivered map[uint64]int // payload hash -> delivery count (no-dup)
	seq       []uint64       // delivery order (payload hashes), when recorded
	accepted  []acceptedMsg  // own submissions the stack accepted

	pos       map[proto.RingID]*ringPos
	completed map[proto.RingID]int // packets fully delivered and left behind

	tokRx   int64 // token receptions (trace feed)
	tokAcct int64 // tokens accounted for by the RRP layer (probes)
}

type acceptedMsg struct {
	hash  uint64
	label string
}

// NewChecker builds a checker for one run. The style selects which
// token-accounting contract applies; monitorBound is the count-monitor
// headroom ceiling (MonitorBoundFor derives it from a stack config).
func NewChecker(style proto.ReplicationStyle, monitorBound int64) *Checker {
	return &Checker{
		passiveStyle: style == proto.ReplicationPassive,
		monitorBound: monitorBound,
		now:          func() proto.Time { return 0 },
		rings:        make(map[proto.RingID]*ringLog),
		nodes:        make(map[proto.NodeID]*nodeState),
		corrupt:      make(map[proto.NodeID]*corruptTrack),
	}
}

// SetSlowOnly arms the slow-vs-dead invariant for the flagged networks
// (SlowOnlyNets derives the set from a program): a fault raised against
// one of them is a misdiagnosis — the network was slow, within the
// monitors' tolerance, never dead.
func (ch *Checker) SetSlowOnly(nets []bool) {
	ch.mu.Lock()
	ch.slowOnly = nets
	ch.mu.Unlock()
}

// SetRecoveryBudget arms the bounded-recovery invariant: after NoteCorrupt
// the corrupted node must deliver its marker submission before receiving
// budget token copies. Zero disarms the online bound (the never-recovered
// check in Finish still applies).
func (ch *Checker) SetRecoveryBudget(budget int64) {
	ch.mu.Lock()
	ch.recoveryBudget = budget
	ch.mu.Unlock()
}

// NoteCorrupt records that node id's protocol state was just scrambled;
// from here on the node is exempt from slow-vs-dead (its verdicts may be
// garbage by design) and on the hook for bounded recovery.
func (ch *Checker) NoteCorrupt(id proto.NodeID) {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	if ch.corrupt[id] == nil {
		ch.corrupt[id] = &corruptTrack{tokRxAt: ch.node(id).tokRx}
	}
}

// SetNow installs the clock used to stamp violations (virtual time for
// the simulator, run-relative wall time for the live harness).
func (ch *Checker) SetNow(now func() proto.Time) {
	ch.mu.Lock()
	ch.now = now
	ch.mu.Unlock()
}

// SetRecordDeliveries enables per-node delivery-order recording (payload
// hashes), which the sim-vs-live differential mode compares across
// backends. Off by default: torture sweeps don't pay for it.
func (ch *Checker) SetRecordDeliveries(on bool) {
	ch.mu.Lock()
	ch.recordSeq = on
	ch.mu.Unlock()
}

// DeliverySeqs returns each node's delivery order as payload hashes.
// Empty unless SetRecordDeliveries(true) was called before the run.
func (ch *Checker) DeliverySeqs() map[proto.NodeID][]uint64 {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	out := make(map[proto.NodeID][]uint64, len(ch.nodes))
	for id, ns := range ch.nodes {
		out[id] = append([]uint64(nil), ns.seq...)
	}
	return out
}

// Violation returns the first violation, or nil while all invariants hold.
func (ch *Checker) Violation() *Violation {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	return ch.violation
}

func (ch *Checker) fail(invariant string, node proto.NodeID, format string, args ...any) {
	if ch.violation != nil {
		return
	}
	ch.violation = &Violation{
		Invariant: invariant,
		Node:      node,
		At:        ch.now(),
		Detail:    fmt.Sprintf(format, args...),
	}
}

func (ch *Checker) node(id proto.NodeID) *nodeState {
	ns := ch.nodes[id]
	if ns == nil {
		ns = &nodeState{
			id:        id,
			delivered: make(map[uint64]int),
			pos:       make(map[proto.RingID]*ringPos),
			completed: make(map[proto.RingID]int),
		}
		ch.nodes[id] = ns
	}
	return ns
}

func (ch *Checker) ring(id proto.RingID) *ringLog {
	rl := ch.rings[id]
	if rl == nil {
		rl = &ringLog{id: id, entries: make(map[uint32]*seqEntry)}
		ch.rings[id] = rl
	}
	return rl
}

// hash64 is FNV-1a; payloads are hashed at delivery time so the checker
// never retains payload bytes (they alias protocol buffers).
func hash64(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

func trimPayload(b []byte) string {
	const n = 32
	if len(b) > n {
		b = b[:n]
	}
	return string(b)
}

// OnDeliver checks one delivery against the global per-ring order.
func (ch *Checker) OnDeliver(id proto.NodeID, d proto.Delivery) {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	if ch.violation != nil {
		return
	}
	ns := ch.node(id)
	h := hash64(d.Payload)
	ns.delivered[h]++
	if ch.recordSeq {
		ns.seq = append(ns.seq, h)
	}
	if ct := ch.corrupt[id]; ct != nil && !ct.done && ct.hasMark && h == ct.marker {
		ct.done = true // recovery proven: the post-corruption marker came out
	}
	if ns.delivered[h] > 1 {
		ch.fail("no-dup", id, "payload %q delivered %d times on %v seq %d",
			trimPayload(d.Payload), ns.delivered[h], d.Ring, d.Seq)
		return
	}
	rl := ch.ring(d.Ring)
	pos := ns.pos[d.Ring]
	if pos == nil {
		pos = &ringPos{}
		ns.pos[d.Ring] = pos
	}
	if !pos.active {
		pos.active, pos.seq, pos.idx = true, d.Seq, 0
	} else if d.Seq != pos.seq {
		if d.Seq < pos.seq {
			ch.fail("order", id, "%v: seq went backwards, %d after %d", d.Ring, d.Seq, pos.seq)
			return
		}
		if !ch.leaveSeq(id, ns, rl, pos) {
			return
		}
		pos.seq, pos.idx = d.Seq, 0
	}
	e := rl.entries[d.Seq]
	if e == nil {
		e = &seqEntry{}
		rl.entries[d.Seq] = e
	}
	if pos.idx < len(e.chunks) {
		if e.chunks[pos.idx] != h {
			ch.fail("order", id, "%v seq %d chunk %d: payload %q disagrees with the order other nodes delivered",
				d.Ring, d.Seq, pos.idx, trimPayload(d.Payload))
			return
		}
	} else {
		if e.closed {
			ch.fail("order", id, "%v seq %d: delivered chunk %d of a packet another node completed at %d chunks",
				d.Ring, d.Seq, pos.idx, len(e.chunks))
			return
		}
		e.chunks = append(e.chunks, h)
	}
	pos.idx++
}

// leaveSeq finalises the packet a node is moving past: it must have
// delivered every chunk the ring's log holds for that sequence number.
func (ch *Checker) leaveSeq(id proto.NodeID, ns *nodeState, rl *ringLog, pos *ringPos) bool {
	e := rl.entries[pos.seq]
	if e == nil || pos.idx != len(e.chunks) {
		have := 0
		if e != nil {
			have = len(e.chunks)
		}
		ch.fail("order", id, "%v seq %d: moved on after %d of %d chunks", rl.id, pos.seq, pos.idx, have)
		return false
	}
	e.closed = true
	ns.completed[rl.id]++
	return true
}

// Record implements trace.Tracer: the checker rides the cluster's trace
// feed for token receptions and machine probes.
func (ch *Checker) Record(e trace.Event) {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	if ch.violation != nil {
		return
	}
	switch e.Kind {
	case trace.PacketReceived:
		if wire.Kind(e.A) == wire.KindToken {
			ns := ch.node(e.Node)
			ns.tokRx++
			if ct := ch.corrupt[e.Node]; ct != nil && !ct.done && ch.recoveryBudget > 0 {
				if got := ns.tokRx - ct.tokRxAt; got > ch.recoveryBudget {
					ch.fail("recovery", e.Node,
						"corrupted node received %d token copies without re-delivering its own traffic (budget %d)",
						got, ch.recoveryBudget)
				}
			}
		}
	case trace.FaultRaised:
		// slow-vs-dead discrimination: a network that is merely slow —
		// within the token gate's tolerance, degraded by nothing else —
		// must never be convicted. Nodes with deliberately scrambled state
		// are exempt: their verdicts are garbage by design until they
		// re-converge.
		if e.Network >= 0 && e.Network < len(ch.slowOnly) &&
			ch.slowOnly[e.Network] && ch.corrupt[e.Node] == nil {
			ch.fail("slow-vs-dead", e.Node,
				"network %d convicted while merely slow (within the monitor tolerance): %s",
				e.Network, e.Detail)
		}
	case trace.Machine:
		switch e.Code {
		case proto.ProbeMonitorDecay:
			// The count monitors' "never grow unboundedly" contract
			// (paper requirement P5): the decay probe carries the largest
			// per-network counter as a witness.
			if e.B > ch.monitorBound {
				ch.fail("monitor-bound", e.Node, "count-monitor headroom %d exceeds bound %d", e.B, ch.monitorBound)
			}
		case proto.ProbeTokenGated, proto.ProbeTokenTimedOut, proto.ProbeTokenDiscarded:
			ch.node(e.Node).tokAcct++
		}
	}
}

// NoteSubmit records an application submission; accepted payloads feed
// the self-delivery check.
func (ch *Checker) NoteSubmit(id proto.NodeID, payload []byte, accepted bool) {
	if !accepted {
		return
	}
	ch.mu.Lock()
	defer ch.mu.Unlock()
	ns := ch.node(id)
	ns.accepted = append(ns.accepted, acceptedMsg{hash: hash64(payload), label: trimPayload(payload)})
	if ct := ch.corrupt[id]; ct != nil && !ct.done && !ct.hasMark {
		ct.hasMark = true
		ct.marker = hash64(payload)
		ct.label = trimPayload(payload)
	}
}

// NoteCrash records a fail-stop; crashed nodes are exempt from the
// self-delivery check and earn one token of accounting slack (a buffered
// token dies with the old incarnation).
func (ch *Checker) NoteCrash(id proto.NodeID) {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	ch.node(id).crashes++
	if ct := ch.corrupt[id]; ct != nil {
		// The crash wiped the corrupted state; recovery is moot.
		ct.done = true
	}
}

// Finish runs the end-of-run invariants against a snapshot of the healed
// cluster. The runner calls it after the tail plus a bounded convergence
// grace period — and, for the live harness, after every node has been
// stopped so the counters are quiescent — so a failure here is a genuine
// liveness or consistency bug, not impatience.
func (ch *Checker) Finish(end *EndState) {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	if ch.violation != nil {
		return
	}

	// recovery (checked first — a node that never re-converged poisons
	// every downstream check): a corrupted node must have delivered its
	// first post-corruption submission by end of run. The online budget
	// check in Record is the sharp bound; this is the backstop for runs
	// where the stuck node barely receives tokens at all.
	for id, ct := range ch.corrupt {
		if ct.done {
			continue
		}
		if !ct.hasMark {
			// So far gone that no submission was ever accepted again.
			ch.fail("recovery", id,
				"corrupted node never accepted a post-corruption submission")
			return
		}
		ch.fail("recovery", id,
			"corrupted node never delivered its first post-corruption submission %q", ct.label)
		return
	}

	live := end.live()
	if len(live) == 0 {
		return
	}

	// final-ring: every live node is operational on one common ring that
	// contains exactly the live nodes.
	finalRing := live[0].Ring
	for _, n := range live {
		if !n.Operational {
			ch.fail("final-ring", n.ID, "state %v at end of run, want operational", n.State)
			return
		}
		if n.Ring != finalRing {
			ch.fail("final-ring", n.ID, "on %v while node %v is on %v", n.Ring, live[0].ID, finalRing)
			return
		}
		if got := len(n.Members); got != len(live) {
			ch.fail("final-ring", n.ID, "ring has %d members, %d nodes are live", got, len(live))
			return
		}
	}

	// ring-drain: nothing stuck in a backlog, and every live node
	// delivered every packet of the final ring.
	for _, n := range live {
		if n.Backlog != 0 {
			ch.fail("ring-drain", n.ID, "%d messages stuck in the backlog at end of run", n.Backlog)
			return
		}
	}
	if rl := ch.rings[finalRing]; rl != nil {
		total := len(rl.entries)
		for _, n := range live {
			ns := ch.node(n.ID)
			done := ns.completed[finalRing]
			if pos := ns.pos[finalRing]; pos != nil && pos.active {
				// The node never "leaves" its last packet; count it if
				// complete.
				if e := rl.entries[pos.seq]; e != nil && pos.idx == len(e.chunks) {
					done++
				}
			}
			if done != total {
				ch.fail("ring-drain", n.ID, "delivered %d of %d packets ordered on final %v", done, total, finalRing)
				return
			}
		}
	}

	// self-delivery: every payload a never-crashed node's stack accepted
	// must have come back out of its own delivery stream (the backlog
	// survives ring reformations).
	for _, n := range live {
		ns := ch.node(n.ID)
		if ns.crashes > 0 {
			continue
		}
		for _, a := range ns.accepted {
			if ns.delivered[a.hash] == 0 {
				ch.fail("self-delivery", n.ID, "accepted submission %q never delivered at its own submitter", a.label)
				return
			}
		}
	}

	// token-accounting (passive only): every token reception is either
	// passed up (gated/timed out) or explicitly discarded; at most one may
	// be buffered, plus one lost per crash. Active styles legitimately
	// absorb redundant copies, so the 1:1 ledger only holds for passive.
	if ch.passiveStyle {
		for _, n := range live {
			ns := ch.node(n.ID)
			if leak := ns.tokRx - ns.tokAcct; leak > int64(1+ns.crashes) {
				ch.fail("token-accounting", n.ID, "%d token receptions but only %d accounted for (gated+timed-out+discarded)",
					ns.tokRx, ns.tokAcct)
				return
			}
		}
	}

	// fault-heal: the fault window is long over, so no live node may
	// still consider any network faulty.
	for _, n := range live {
		for net, faulty := range n.Faulty {
			if faulty {
				ch.fail("fault-heal", n.ID, "network %d still marked faulty at end of run", net)
				return
			}
		}
	}
}
