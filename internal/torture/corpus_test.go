package torture

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestCorpus replays every pinned repro under corpus/ and holds it to its
// recorded expectation. Two kinds of files live there:
//
//   - chaos-*.json re-introduce a known-fixed bug via chaos flags; the
//     checker must catch it with the recorded invariant (mutation tests —
//     they prove the harness can still see the bug class).
//   - fixed-*.json are minimal programs that once violated an invariant
//     before their protocol bug was fixed; they must now run clean
//     (regression pins for the fixes themselves).
func TestCorpus(t *testing.T) {
	files, err := filepath.Glob("corpus/*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("corpus/ is empty — the pinned repros are part of the test suite")
	}
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			r, err := LoadRepro(file)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Execute(r.Program, Options{Chaos: r.Chaos})
			if err != nil {
				t.Fatal(err)
			}
			switch {
			case r.Expect == "" && res.Violation != nil:
				t.Fatalf("pinned-clean program violated %v\ntrace tail:\n%s", res.Violation, tail(res, 30))
			case r.Expect != "" && res.Violation == nil:
				t.Fatalf("chaos canary ran clean; the checker no longer catches invariant %q", r.Expect)
			case r.Expect != "" && res.Violation.Invariant != r.Expect:
				t.Fatalf("chaos canary failed %q, pinned expectation is %q", res.Violation.Invariant, r.Expect)
			}
		})
	}
}

// TestCorpusReplaysAreDeterministic re-executes one pinned chaos repro
// twice and requires byte-for-byte identical trace tails — the property
// that makes a saved repro worth anything.
func TestCorpusReplaysAreDeterministic(t *testing.T) {
	const file = "corpus/chaos-held-token-leak.json"
	if _, err := os.Stat(file); err != nil {
		t.Skip("canonical chaos repro missing")
	}
	r, err := LoadRepro(file)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Execute(r.Program, Options{Chaos: r.Chaos})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Execute(r.Program, Options{Chaos: r.Chaos})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.TraceTail, b.TraceTail) {
		t.Fatal("replaying the same repro produced different traces")
	}
	if !reflect.DeepEqual(a.Violation, b.Violation) {
		t.Fatalf("violations differ across replays: %v vs %v", a.Violation, b.Violation)
	}
}
