package torture

import (
	"fmt"
	"os"
	"reflect"
	"strconv"
	"testing"

	"github.com/totem-rrp/totem/internal/core"
	"github.com/totem-rrp/totem/internal/proto"
)

var tortureStyles = []proto.ReplicationStyle{
	proto.ReplicationActive,
	proto.ReplicationPassive,
	proto.ReplicationActivePassive,
}

func TestGenerateDeterministic(t *testing.T) {
	for _, style := range tortureStyles {
		a := Generate(42, style)
		b := Generate(42, style)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%v: Generate(42) not deterministic:\n%+v\n%+v", style, a, b)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("%v: generated program invalid: %v", style, err)
		}
	}
}

func TestGeneratedProgramsValid(t *testing.T) {
	for seed := int64(1); seed <= 200; seed++ {
		p := Generate(seed, tortureStyles[seed%3])
		if err := p.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestSmokeAllStyles(t *testing.T) {
	// A handful of seeds per style; the CI batch covers hundreds more.
	for _, style := range tortureStyles {
		style := style
		t.Run(style.String(), func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				p := Generate(seed, style)
				res, err := Execute(p, Options{})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if res.Violation != nil {
					t.Fatalf("seed %d: %v\ntrace tail:\n%s", seed, res.Violation, tail(res, 40))
				}
				if res.Delivered == 0 {
					t.Fatalf("seed %d: run delivered nothing — load never reached the ring", seed)
				}
			}
		})
	}
}

func TestExecuteDeterministic(t *testing.T) {
	// Same program, same options — byte-for-byte identical trace tails.
	// This is the property every minimal repro rests on.
	p := Generate(7, proto.ReplicationPassive)
	a, err := Execute(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Execute(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Delivered != b.Delivered || a.End != b.End {
		t.Fatalf("runs diverged: delivered %d/%d, end %v/%v", a.Delivered, b.Delivered, a.End, b.End)
	}
	if !reflect.DeepEqual(a.TraceTail, b.TraceTail) {
		for i := range a.TraceTail {
			if i < len(b.TraceTail) && a.TraceTail[i] != b.TraceTail[i] {
				t.Fatalf("trace diverged at event %d:\n%s\n%s", i, a.TraceTail[i], b.TraceTail[i])
			}
		}
		t.Fatalf("trace tails differ in length: %d vs %d", len(a.TraceTail), len(b.TraceTail))
	}
}

func TestValidateRejectsBadPrograms(t *testing.T) {
	good := Generate(1, proto.ReplicationActive)
	cases := map[string]func(*Program){
		"unknown style":    func(p *Program) { p.Style = "nope" },
		"too few nodes":    func(p *Program) { p.Nodes = 1 },
		"too few networks": func(p *Program) { p.Networks = 1 },
		"zero warmup":      func(p *Program) { p.Warmup = 0 },
		"bad loss p":       func(p *Program) { p.Ops = []Op{{Kind: OpLossBurst, At: 1, Dur: 1, P: 1.5}} },
		"one-sided split":  func(p *Program) { p.Ops = []Op{{Kind: OpPartition, At: 1, Dur: 1, Part: 0}} },
		"late crash": func(p *Program) {
			p.Ops = []Op{{Kind: OpCrash, At: p.FaultWindow - 1, Dur: p.Tail, Node: 1}}
		},
		"unknown op": func(p *Program) { p.Ops = []Op{{Kind: "meteor", At: 1, Dur: 1}} },
	}
	for name, mutate := range cases {
		p := good
		p.Ops = append([]Op(nil), good.Ops...)
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, p)
		}
	}
}

// tail formats the last n trace lines of a result for failure messages.
func tail(res *Result, n int) string {
	lines := res.TraceTail
	if len(lines) > n {
		lines = lines[len(lines)-n:]
	}
	out := ""
	for _, l := range lines {
		out += l + "\n"
	}
	return out
}

// TestHuntCorpusSeeds is a tool, not a test: set TORTURE_HUNT to a seed
// count to scan for programs where the chaos-injected bugs manifest, e.g.
//
//	TORTURE_HUNT=300 go test ./internal/torture -run TestHuntCorpusSeeds -v
//
// The hits it prints are candidates for pinning under corpus/.
func TestHuntCorpusSeeds(t *testing.T) {
	nStr := os.Getenv("TORTURE_HUNT")
	if nStr == "" {
		t.Skip("set TORTURE_HUNT=<seeds> to hunt for corpus candidates")
	}
	n, err := strconv.Atoi(nStr)
	if err != nil {
		t.Fatal(err)
	}
	hunts := []struct {
		name   string
		chaos  core.ChaosFlags
		expect string
	}{
		{"held-token-leak", core.ChaosFlags{HeldTokenLeak: true}, "token-accounting"},
		{"pinned-min", core.ChaosFlags{MonitorPinnedMin: true}, "monitor-bound"},
	}
	for _, h := range hunts {
		found := 0
		for seed := int64(1); seed <= int64(n) && found < 5; seed++ {
			p := Generate(seed, proto.ReplicationPassive)
			res, err := Execute(p, Options{Chaos: h.chaos})
			if err != nil {
				t.Fatal(err)
			}
			if res.Violation != nil {
				fmt.Printf("%s: seed %d -> %v\n", h.name, seed, res.Violation)
				if res.Violation.Invariant == h.expect {
					found++
				}
			}
		}
		fmt.Printf("%s: %d matching hits in %d seeds\n", h.name, found, n)
	}
}
