package torture

// Shrink greedily minimises a violating program: it tries deleting one op
// at a time and keeps a deletion whenever the exact same invariant still
// fires, iterating to a fixpoint. Deterministic execution makes this
// sound — a candidate either reproduces the violation or it does not,
// with no flakiness in between. The returned result is the final
// (minimal) run, so its trace tail matches the shrunk program.
//
// The budget bounds the number of executions; a zero budget means a
// generous default. Shrink never returns a program that fails a different
// invariant than the original: narrowing the failure is the whole point
// of a minimal repro.
func Shrink(p Program, opt Options, budget int) (Program, *Result, error) {
	if budget <= 0 {
		budget = 64
	}
	res, err := Execute(p, opt)
	if err != nil {
		return p, nil, err
	}
	if res.Violation == nil {
		return p, res, nil
	}
	invariant := res.Violation.Invariant
	best, bestRes := p, res
	execs := 0
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(best.Ops) && execs < budget; i++ {
			cand := best
			cand.Ops = make([]Op, 0, len(best.Ops)-1)
			cand.Ops = append(cand.Ops, best.Ops[:i]...)
			cand.Ops = append(cand.Ops, best.Ops[i+1:]...)
			r, err := Execute(cand, opt)
			execs++
			if err != nil {
				return best, bestRes, err
			}
			if r.Violation != nil && r.Violation.Invariant == invariant {
				best, bestRes = cand, r
				changed = true
				i-- // the next op slid into this slot
			}
		}
	}
	return best, bestRes, nil
}
