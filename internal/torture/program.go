// Package torture is a seeded, fully deterministic adversarial test
// harness for the Totem RRP stack. A Program is a self-contained fault
// schedule: given the same Program (and the same chaos flags) Execute
// replays the exact same virtual-time run, event for event, so every
// violation the checker finds is reproducible from a few hundred bytes
// of JSON. See DESIGN.md §10 for the architecture and the invariant
// catalogue.
package torture

import (
	"fmt"
	"math/bits"
	"time"

	"github.com/totem-rrp/totem/internal/proto"
)

// OpKind names one fault-injection operation.
type OpKind string

// The fault vocabulary. Each op is applied at Warmup+At and undone at
// Warmup+At+Dur; the runner additionally heals everything unconditionally
// at the end of the fault window, so end-of-run invariants are always
// judged against a repaired system.
const (
	// OpLossBurst sets network Net's random loss probability to P.
	OpLossBurst OpKind = "loss-burst"
	// OpNetDown takes network Net completely down.
	OpNetDown OpKind = "net-down"
	// OpPartition splits network Net in two: nodes whose bit is set in
	// Part form one side, the rest the other.
	OpPartition OpKind = "partition"
	// OpTokenLoss blacks out every network briefly, dropping whatever
	// token copies are in flight.
	OpTokenLoss OpKind = "token-loss"
	// OpBlockSend stops node Node from sending on network Net (paper §3:
	// "a node is unable to send any data via a particular network").
	OpBlockSend OpKind = "block-send"
	// OpBlockRecv stops node Node from receiving on network Net.
	OpBlockRecv OpKind = "block-recv"
	// OpTimerSkew scales node Node's timer durations by P (a drifting
	// local clock).
	OpTimerSkew OpKind = "timer-skew"
	// OpCrash fail-stops node Node at At and reboots it with a fresh
	// stack at At+Dur.
	OpCrash OpKind = "crash"

	// Gray failures (DESIGN.md §12): faults that are not binary up/down.

	// OpOneWay blocks the directed link Node -> Peer on network Net: Node's
	// frames never reach Peer there, while Peer -> Node still flows.
	OpOneWay OpKind = "one-way"
	// OpCongestion makes network Net's loss correlate with its own load:
	// each frame is dropped with probability P scaled by how congested the
	// medium is at transmit time (no backlog, no loss).
	OpCongestion OpKind = "congestion"
	// OpDupStorm duplicates each frame on network Net with probability P —
	// one network babbling while the others stay clean.
	OpDupStorm OpKind = "dup-storm"
	// OpSlowNet inflates network Net's latency to Lat: the network is slow,
	// not down. Lat is validated to stay within the monitors' tolerance
	// (well under the RRP token gate timeout), so a correct monitor must
	// never convict a merely-slow network (the slow-vs-dead invariant).
	OpSlowNet OpKind = "slow-net"
	// OpClockDrift ramps node Node's timer scale from nominal to P over
	// Dur in steps (a slowly drifting clock, vs OpTimerSkew's step change).
	OpClockDrift OpKind = "clock-drift"
	// OpCorrupt scrambles part of node Node's protocol state at At (the
	// arbitrary-initial-state recovery mode, DESIGN.md §12). Sub selects
	// what is corrupted: "monitors", "held-token", "ring-seq" or "aru".
	// The bounded-recovery invariant then requires the node to re-converge
	// within a budget of token receptions. Dur is ignored (corruption is
	// instantaneous).
	OpCorrupt OpKind = "corrupt"
)

// CorruptSubs lists the valid OpCorrupt targets.
var CorruptSubs = []string{"monitors", "held-token", "ring-seq", "aru"}

// Bounds on OpSlowNet.Lat: the lower bound keeps the op observable, the
// upper bound keeps the inflated latency well inside the RRP token gate
// timeout (5ms default in both backends) so the monitors are never
// entitled to convict the slow network.
const (
	SlowNetMinLat = 100 * time.Microsecond
	SlowNetMaxLat = 2 * time.Millisecond
)

// Op is one scheduled fault. Which fields matter depends on Kind.
type Op struct {
	Kind OpKind        `json:"kind"`
	At   time.Duration `json:"at"`             // offset into the fault window
	Dur  time.Duration `json:"dur"`            // how long the fault lasts
	Net  int           `json:"net,omitempty"`  // target network
	Node proto.NodeID  `json:"node,omitempty"` // target node
	Peer proto.NodeID  `json:"peer,omitempty"` // one-way: blocked destination
	P    float64       `json:"p,omitempty"`    // loss probability / skew factor
	Part uint32        `json:"part,omitempty"` // partition bitmask (bit i-1 = node i)
	Lat  time.Duration `json:"lat,omitempty"`  // slow-net: inflated latency
	Sub  string        `json:"sub,omitempty"`  // corrupt: which state to scramble
}

// Program is one complete torture run: topology, load, and fault
// schedule. It is pure data — JSON round-trips losslessly — and together
// with the seed it determines the run byte for byte.
type Program struct {
	Seed     int64  `json:"seed"`
	Style    string `json:"style"` // "active" | "passive" | "active-passive"
	Nodes    int    `json:"nodes"`
	Networks int    `json:"networks"`
	K        int    `json:"k,omitempty"` // active-passive only

	// Phases: the ring forms during Warmup, Ops fire inside the fault
	// window, and Tail gives the healed system time to converge before
	// the end-of-run invariants are checked.
	Warmup      time.Duration `json:"warmup"`
	FaultWindow time.Duration `json:"faultWindow"`
	Tail        time.Duration `json:"tail"`

	// Load: every node submits a unique payload of PayloadLen bytes every
	// LoadInterval, from the end of warmup until a third into the tail.
	LoadInterval time.Duration `json:"loadInterval"`
	PayloadLen   int           `json:"payloadLen"`

	Ops []Op `json:"ops"`
}

// Duration is the total virtual time of the run.
func (p Program) Duration() time.Duration {
	return p.Warmup + p.FaultWindow + p.Tail
}

// LoadCutoff is when submissions stop: early enough into the tail that
// backlogs drain before the end-of-run checks. Exported so the live
// harness reproduces the exact submission schedule.
func (p Program) LoadCutoff() time.Duration {
	return p.Warmup + p.FaultWindow + p.Tail/3
}

// StyleByName maps a Program.Style string to the proto constant.
func StyleByName(name string) (proto.ReplicationStyle, error) {
	switch name {
	case "active":
		return proto.ReplicationActive, nil
	case "passive":
		return proto.ReplicationPassive, nil
	case "active-passive":
		return proto.ReplicationActivePassive, nil
	}
	return 0, fmt.Errorf("torture: unknown style %q", name)
}

// Validate rejects programs the runner cannot execute faithfully.
func (p Program) Validate() error {
	if _, err := StyleByName(p.Style); err != nil {
		return err
	}
	if p.Nodes < 2 || p.Nodes > 16 {
		return fmt.Errorf("torture: Nodes = %d, want 2..16", p.Nodes)
	}
	if p.Networks < 2 || p.Networks > 8 {
		return fmt.Errorf("torture: Networks = %d, want 2..8", p.Networks)
	}
	if p.Style == "active-passive" && (p.K < 2 || p.K >= p.Networks) {
		return fmt.Errorf("torture: active-passive K = %d, want 1 < K < Networks (%d)", p.K, p.Networks)
	}
	if p.Warmup <= 0 || p.FaultWindow <= 0 || p.Tail <= 0 {
		return fmt.Errorf("torture: all phases must be positive, have %v/%v/%v",
			p.Warmup, p.FaultWindow, p.Tail)
	}
	if p.LoadInterval <= 0 || p.PayloadLen < 16 {
		return fmt.Errorf("torture: bad load (interval %v, payload %d)",
			p.LoadInterval, p.PayloadLen)
	}
	corrupted := proto.NodeID(0)
	for i, op := range p.Ops {
		if err := p.validateOp(op); err != nil {
			return fmt.Errorf("torture: op %d: %w", i, err)
		}
		if op.Kind == OpCorrupt {
			if corrupted != 0 {
				return fmt.Errorf("torture: op %d: at most one corrupt op per program", i)
			}
			corrupted = op.Node
		}
	}
	if corrupted != 0 {
		// A crash of the corrupted node would wipe the very state the
		// bounded-recovery invariant is trying to observe.
		for i, op := range p.Ops {
			if op.Kind == OpCrash && op.Node == corrupted {
				return fmt.Errorf("torture: op %d: crash targets corrupted node %v", i, corrupted)
			}
		}
	}
	return nil
}

func (p Program) validateOp(op Op) error {
	if op.At < 0 || op.At >= p.FaultWindow {
		return fmt.Errorf("%s At %v outside the fault window %v", op.Kind, op.At, p.FaultWindow)
	}
	if op.Dur <= 0 {
		return fmt.Errorf("%s Dur %v not positive", op.Kind, op.Dur)
	}
	needNet := false
	needNode := false
	switch op.Kind {
	case OpLossBurst:
		needNet = true
		if op.P <= 0 || op.P > 1 {
			return fmt.Errorf("loss-burst P %v outside (0,1]", op.P)
		}
	case OpNetDown:
		needNet = true
	case OpPartition:
		needNet = true
		n := op.Part & (1<<uint(p.Nodes) - 1)
		if n == 0 || bits.OnesCount32(n) == p.Nodes {
			return fmt.Errorf("partition mask %#x leaves one side empty", op.Part)
		}
	case OpTokenLoss:
		// whole-cluster blackout; no target
	case OpBlockSend, OpBlockRecv:
		needNet, needNode = true, true
	case OpTimerSkew:
		needNode = true
		if op.P < 0.5 || op.P > 2 {
			return fmt.Errorf("timer-skew factor %v outside [0.5,2]", op.P)
		}
	case OpCrash:
		needNode = true
		if op.At+op.Dur > p.FaultWindow+p.Tail/2 {
			return fmt.Errorf("crash restart at %v would land too close to the end checks", op.At+op.Dur)
		}
	case OpOneWay:
		needNet, needNode = true, true
		if op.Peer < 1 || int(op.Peer) > p.Nodes {
			return fmt.Errorf("one-way peer %v outside 1..%d", op.Peer, p.Nodes)
		}
		if op.Peer == op.Node {
			return fmt.Errorf("one-way peer equals node %v", op.Node)
		}
	case OpCongestion:
		needNet = true
		if op.P <= 0 || op.P > 1 {
			return fmt.Errorf("congestion P %v outside (0,1]", op.P)
		}
	case OpDupStorm:
		needNet = true
		if op.P <= 0 || op.P > 1 {
			return fmt.Errorf("dup-storm P %v outside (0,1]", op.P)
		}
	case OpSlowNet:
		needNet = true
		if op.Lat < SlowNetMinLat || op.Lat > SlowNetMaxLat {
			return fmt.Errorf("slow-net Lat %v outside [%v,%v]", op.Lat, SlowNetMinLat, SlowNetMaxLat)
		}
	case OpClockDrift:
		needNode = true
		if op.P < 0.5 || op.P > 2 {
			return fmt.Errorf("clock-drift factor %v outside [0.5,2]", op.P)
		}
	case OpCorrupt:
		needNode = true
		ok := false
		for _, s := range CorruptSubs {
			if op.Sub == s {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("corrupt sub %q not one of %v", op.Sub, CorruptSubs)
		}
	default:
		return fmt.Errorf("unknown op kind %q", op.Kind)
	}
	if needNet && (op.Net < 0 || op.Net >= p.Networks) {
		return fmt.Errorf("%s network %d outside 0..%d", op.Kind, op.Net, p.Networks-1)
	}
	if needNode && (op.Node < 1 || int(op.Node) > p.Nodes) {
		return fmt.Errorf("%s node %v outside 1..%d", op.Kind, op.Node, p.Nodes)
	}
	return nil
}
