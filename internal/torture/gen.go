package torture

import (
	"math/rand"
	"time"

	"github.com/totem-rrp/totem/internal/proto"
)

// Generate derives a complete torture program from a seed. The same
// (seed, style) pair always yields the same program: the generator is a
// pure function of its own rand stream, and the program in turn fully
// determines the run. Parameter ranges are chosen so that every generated
// program is survivable — the ring must be able to re-form and drain in
// the tail, because the end-of-run invariants assume a healed system.
func Generate(seed int64, style proto.ReplicationStyle) Program {
	rng := rand.New(rand.NewSource(seed))
	p := Program{
		Seed:        seed,
		Style:       style.String(),
		Nodes:       3 + rng.Intn(2), // 3..4
		Networks:    2 + rng.Intn(2), // 2..3
		Warmup:      1500 * time.Millisecond,
		FaultWindow: 3 * time.Second,
		Tail:        3 * time.Second,

		LoadInterval: 4 * time.Millisecond,
		PayloadLen:   64 + rng.Intn(300),
	}
	if style == proto.ReplicationActivePassive {
		p.K = 2
		// K-of-N gating requires 1 < K < N: lift two-network draws to three.
		if p.Networks < 3 {
			p.Networks = 3
		}
	}

	nOps := 2 + rng.Intn(5) // 2..6
	crashed := false
	for i := 0; i < nOps; i++ {
		op := Op{
			At: time.Duration(rng.Int63n(int64(p.FaultWindow - 100*time.Millisecond))),
		}
		switch k := rng.Intn(8); {
		case k == 0:
			op.Kind = OpNetDown
			op.Net = rng.Intn(p.Networks)
			op.Dur = 300*time.Millisecond + time.Duration(rng.Int63n(int64(1200*time.Millisecond)))
		case k == 1:
			op.Kind = OpPartition
			op.Net = rng.Intn(p.Networks)
			op.Dur = 200*time.Millisecond + time.Duration(rng.Int63n(int64(800*time.Millisecond)))
			// Both sides non-empty: node 1 plus a random subset of the
			// middle nodes on one side; the highest node never joins, so
			// the other side keeps at least one member.
			op.Part = 1 | uint32(rng.Intn(1<<uint(p.Nodes-1)))
		case k == 2:
			op.Kind = OpTokenLoss
			op.Dur = 60*time.Millisecond + time.Duration(rng.Int63n(int64(90*time.Millisecond)))
		case k == 3:
			op.Kind = OpBlockSend
			op.Net = rng.Intn(p.Networks)
			op.Node = proto.NodeID(1 + rng.Intn(p.Nodes))
			op.Dur = 200*time.Millisecond + time.Duration(rng.Int63n(int64(800*time.Millisecond)))
		case k == 4:
			op.Kind = OpBlockRecv
			op.Net = rng.Intn(p.Networks)
			op.Node = proto.NodeID(1 + rng.Intn(p.Nodes))
			op.Dur = 200*time.Millisecond + time.Duration(rng.Int63n(int64(800*time.Millisecond)))
		case k == 5:
			op.Kind = OpTimerSkew
			op.Node = proto.NodeID(1 + rng.Intn(p.Nodes))
			op.P = 0.7 + 0.7*rng.Float64() // 0.7..1.4
			op.Dur = 500*time.Millisecond + time.Duration(rng.Int63n(int64(1500*time.Millisecond)))
		case k == 6 && !crashed:
			op.Kind = OpCrash
			op.Node = proto.NodeID(1 + rng.Intn(p.Nodes))
			op.Dur = 500*time.Millisecond + time.Duration(rng.Int63n(int64(time.Second)))
			crashed = true
		default: // k == 7, or a second crash rerolled as the common case
			op.Kind = OpLossBurst
			op.Net = rng.Intn(p.Networks)
			op.P = 0.05 + 0.55*rng.Float64()
			op.Dur = 100*time.Millisecond + time.Duration(rng.Int63n(int64(700*time.Millisecond)))
		}
		p.Ops = append(p.Ops, op)
	}
	return p
}

// GenerateGray derives a gray-failure program (DESIGN.md §12): the fault
// mix favours the non-binary ops — one-way links, congestion-correlated
// loss, duplicate storms, slow networks, drifting clocks — over hard
// outages. The replication style is itself drawn from the seed, so a
// single gray sweep exercises all three styles. If corrupt is non-empty,
// one OpCorrupt op is appended targeting a random node: "rand" draws the
// corrupted state from CorruptSubs, anything else names the Sub directly.
func GenerateGray(seed int64, corrupt string) Program {
	rng := rand.New(rand.NewSource(seed))
	styles := []string{"active", "passive", "active-passive"}
	p := Program{
		Seed:        seed,
		Style:       styles[rng.Intn(len(styles))],
		Nodes:       3 + rng.Intn(2), // 3..4
		Networks:    2 + rng.Intn(2), // 2..3
		Warmup:      1500 * time.Millisecond,
		FaultWindow: 3 * time.Second,
		Tail:        3 * time.Second,

		LoadInterval: 4 * time.Millisecond,
		PayloadLen:   64 + rng.Intn(300),
	}
	if p.Style == "active-passive" {
		p.K = 2
		if p.Networks < 3 {
			p.Networks = 3
		}
	}

	nOps := 2 + rng.Intn(4) // 2..5
	for i := 0; i < nOps; i++ {
		op := Op{
			At: time.Duration(rng.Int63n(int64(p.FaultWindow - 100*time.Millisecond))),
		}
		switch rng.Intn(7) {
		case 0:
			op.Kind = OpOneWay
			op.Net = rng.Intn(p.Networks)
			op.Node = proto.NodeID(1 + rng.Intn(p.Nodes))
			op.Peer = proto.NodeID(1 + rng.Intn(p.Nodes))
			for op.Peer == op.Node {
				op.Peer = proto.NodeID(1 + rng.Intn(p.Nodes))
			}
			op.Dur = 200*time.Millisecond + time.Duration(rng.Int63n(int64(900*time.Millisecond)))
		case 1:
			op.Kind = OpCongestion
			op.Net = rng.Intn(p.Networks)
			op.P = 0.2 + 0.6*rng.Float64()
			op.Dur = 300*time.Millisecond + time.Duration(rng.Int63n(int64(1200*time.Millisecond)))
		case 2:
			op.Kind = OpDupStorm
			op.Net = rng.Intn(p.Networks)
			op.P = 0.1 + 0.5*rng.Float64()
			op.Dur = 300*time.Millisecond + time.Duration(rng.Int63n(int64(1200*time.Millisecond)))
		case 3:
			op.Kind = OpSlowNet
			op.Net = rng.Intn(p.Networks)
			op.Lat = SlowNetMinLat + time.Duration(rng.Int63n(int64(SlowNetMaxLat-SlowNetMinLat)))
			op.Dur = 400*time.Millisecond + time.Duration(rng.Int63n(int64(1500*time.Millisecond)))
		case 4:
			op.Kind = OpClockDrift
			op.Node = proto.NodeID(1 + rng.Intn(p.Nodes))
			op.P = 0.8 + 0.4*rng.Float64() // drift toward 0.8..1.2 of nominal
			op.Dur = 500*time.Millisecond + time.Duration(rng.Int63n(int64(1500*time.Millisecond)))
		case 5:
			op.Kind = OpLossBurst
			op.Net = rng.Intn(p.Networks)
			op.P = 0.05 + 0.4*rng.Float64()
			op.Dur = 100*time.Millisecond + time.Duration(rng.Int63n(int64(600*time.Millisecond)))
		default:
			op.Kind = OpBlockSend
			op.Net = rng.Intn(p.Networks)
			op.Node = proto.NodeID(1 + rng.Intn(p.Nodes))
			op.Dur = 200*time.Millisecond + time.Duration(rng.Int63n(int64(800*time.Millisecond)))
		}
		p.Ops = append(p.Ops, op)
	}
	if corrupt != "" {
		sub := corrupt
		if sub == "rand" {
			sub = CorruptSubs[rng.Intn(len(CorruptSubs))]
		}
		p.Ops = append(p.Ops, Op{
			Kind: OpCorrupt,
			// Late enough that the ring is operational again even if an
			// early fault forced a reformation.
			At:   500*time.Millisecond + time.Duration(rng.Int63n(int64(p.FaultWindow-time.Second))),
			Dur:  time.Millisecond,
			Node: proto.NodeID(1 + rng.Intn(p.Nodes)),
			Sub:  sub,
		})
	}
	return p
}
