package torture

import (
	"math/rand"
	"time"

	"github.com/totem-rrp/totem/internal/proto"
)

// Generate derives a complete torture program from a seed. The same
// (seed, style) pair always yields the same program: the generator is a
// pure function of its own rand stream, and the program in turn fully
// determines the run. Parameter ranges are chosen so that every generated
// program is survivable — the ring must be able to re-form and drain in
// the tail, because the end-of-run invariants assume a healed system.
func Generate(seed int64, style proto.ReplicationStyle) Program {
	rng := rand.New(rand.NewSource(seed))
	p := Program{
		Seed:        seed,
		Style:       style.String(),
		Nodes:       3 + rng.Intn(2), // 3..4
		Networks:    2 + rng.Intn(2), // 2..3
		Warmup:      1500 * time.Millisecond,
		FaultWindow: 3 * time.Second,
		Tail:        3 * time.Second,

		LoadInterval: 4 * time.Millisecond,
		PayloadLen:   64 + rng.Intn(300),
	}
	if style == proto.ReplicationActivePassive {
		p.K = 2
		// K-of-N gating requires 1 < K < N: lift two-network draws to three.
		if p.Networks < 3 {
			p.Networks = 3
		}
	}

	nOps := 2 + rng.Intn(5) // 2..6
	crashed := false
	for i := 0; i < nOps; i++ {
		op := Op{
			At: time.Duration(rng.Int63n(int64(p.FaultWindow - 100*time.Millisecond))),
		}
		switch k := rng.Intn(8); {
		case k == 0:
			op.Kind = OpNetDown
			op.Net = rng.Intn(p.Networks)
			op.Dur = 300*time.Millisecond + time.Duration(rng.Int63n(int64(1200*time.Millisecond)))
		case k == 1:
			op.Kind = OpPartition
			op.Net = rng.Intn(p.Networks)
			op.Dur = 200*time.Millisecond + time.Duration(rng.Int63n(int64(800*time.Millisecond)))
			// Both sides non-empty: node 1 plus a random subset of the
			// middle nodes on one side; the highest node never joins, so
			// the other side keeps at least one member.
			op.Part = 1 | uint32(rng.Intn(1<<uint(p.Nodes-1)))
		case k == 2:
			op.Kind = OpTokenLoss
			op.Dur = 60*time.Millisecond + time.Duration(rng.Int63n(int64(90*time.Millisecond)))
		case k == 3:
			op.Kind = OpBlockSend
			op.Net = rng.Intn(p.Networks)
			op.Node = proto.NodeID(1 + rng.Intn(p.Nodes))
			op.Dur = 200*time.Millisecond + time.Duration(rng.Int63n(int64(800*time.Millisecond)))
		case k == 4:
			op.Kind = OpBlockRecv
			op.Net = rng.Intn(p.Networks)
			op.Node = proto.NodeID(1 + rng.Intn(p.Nodes))
			op.Dur = 200*time.Millisecond + time.Duration(rng.Int63n(int64(800*time.Millisecond)))
		case k == 5:
			op.Kind = OpTimerSkew
			op.Node = proto.NodeID(1 + rng.Intn(p.Nodes))
			op.P = 0.7 + 0.7*rng.Float64() // 0.7..1.4
			op.Dur = 500*time.Millisecond + time.Duration(rng.Int63n(int64(1500*time.Millisecond)))
		case k == 6 && !crashed:
			op.Kind = OpCrash
			op.Node = proto.NodeID(1 + rng.Intn(p.Nodes))
			op.Dur = 500*time.Millisecond + time.Duration(rng.Int63n(int64(time.Second)))
			crashed = true
		default: // k == 7, or a second crash rerolled as the common case
			op.Kind = OpLossBurst
			op.Net = rng.Intn(p.Networks)
			op.P = 0.05 + 0.55*rng.Float64()
			op.Dur = 100*time.Millisecond + time.Duration(rng.Int63n(int64(700*time.Millisecond)))
		}
		p.Ops = append(p.Ops, op)
	}
	return p
}
