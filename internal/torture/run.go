package torture

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"github.com/totem-rrp/totem/internal/core"
	"github.com/totem-rrp/totem/internal/proto"
	"github.com/totem-rrp/totem/internal/sim"
	"github.com/totem-rrp/totem/internal/srp"
	"github.com/totem-rrp/totem/internal/stack"
	"github.com/totem-rrp/totem/internal/trace"
)

// Options tunes one execution without becoming part of the program.
type Options struct {
	// Chaos re-introduces a known-fixed bug for the duration of the run
	// (mutation testing: the checker must catch it). Execute installs and
	// clears the global flags, so runs must not overlap in one process.
	Chaos core.ChaosFlags
	// TraceCap bounds the trace ring; 0 means a 512-event tail.
	TraceCap int
	// RecordDeliveries retains each node's delivery order (payload
	// hashes) in the result, for the sim-vs-live differential mode.
	RecordDeliveries bool
}

// Result is the outcome of one torture run.
type Result struct {
	Program   Program    `json:"program"`
	Violation *Violation `json:"violation,omitempty"`
	// Delivered is the total delivery count across all nodes — a sanity
	// signal that the run actually exercised the ring.
	Delivered uint64 `json:"delivered"`
	// End is the virtual time reached (runs stop early on violation).
	End time.Duration `json:"end"`
	// TraceTail is the formatted tail of the event trace, ending at the
	// violation (or at the end of a clean run).
	TraceTail []string `json:"traceTail,omitempty"`
	// FinalMembers is the common final-ring membership of the live nodes
	// (nil if they never agreed on one).
	FinalMembers []proto.NodeID `json:"finalMembers,omitempty"`
	// Deliveries is each node's delivery order as payload hashes, present
	// only with Options.RecordDeliveries.
	Deliveries map[proto.NodeID][]uint64 `json:"-"`
}

// TortureTune shortens the RRP recovery cadence so that fault/heal cycles
// converge within a run's tail: decay every 200ms, two clean windows to
// readmit, flap backoff capped at 8 windows. The live harness applies the
// same tuning (scaled) so both backends run the same protocol shape.
func TortureTune(sc *stack.Config) {
	sc.RRP.DecayInterval = 200 * time.Millisecond
	sc.RRP.ProbationWindows = 2
	sc.RRP.MaxProbation = 8
	sc.RRP.FlapWindow = 2 * time.Second
}

// MonitorBoundFor derives the count-monitor headroom bound the checker
// asserts. After normalisation the minimum non-faulty counter is zero, so
// a healthy monitor's largest counter stays within a small multiple of
// the conviction thresholds; see DESIGN.md §10.
func MonitorBoundFor(sc stack.Config) int64 {
	return int64(3*sc.RRP.DiffThreshold + 2*sc.RRP.TokenDiffThreshold + 4)
}

// Execute runs one program to completion (or to its first invariant
// violation) and reports the outcome. Identical (Program, Options) pairs
// replay byte for byte: the simulator, the load and the fault schedule
// are all pure functions of the program.
func Execute(p Program, opt Options) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	style, err := StyleByName(p.Style)
	if err != nil {
		return nil, err
	}
	core.Chaos = opt.Chaos
	defer func() { core.Chaos = core.ChaosFlags{} }()

	traceCap := opt.TraceCap
	if traceCap <= 0 {
		traceCap = 512
	}
	ring := trace.NewRing(traceCap)

	sample := stack.DefaultConfig(1, p.Networks, style)
	TortureTune(&sample)
	ch := NewChecker(style, MonitorBoundFor(sample))
	ch.SetRecordDeliveries(opt.RecordDeliveries)
	ch.SetSlowOnly(SlowOnlyNets(p))
	ch.SetRecoveryBudget(RecoveryBudget(p))

	c, err := sim.NewCluster(sim.Config{
		Nodes:    p.Nodes,
		Networks: p.Networks,
		Style:    style,
		K:        p.K,
		Net:      sim.DefaultNetworkParams(),
		Host:     sim.DefaultNodeParams(),
		Seed:     p.Seed,
		TuneSRP:  func(_ proto.NodeID, sc *stack.Config) { TortureTune(sc) },
		Trace:    trace.Multi{ch, ring},
	})
	if err != nil {
		return nil, err
	}
	ch.SetNow(c.Sim.Now)
	for _, id := range c.NodeIDs() {
		id := id
		n := c.Node(id)
		n.KeepPayloads = false // the checker hashes payloads immediately
		n.OnDeliver = func(d proto.Delivery) { ch.OnDeliver(id, d) }
	}
	c.Start()
	scheduleOps(c, ch, p)
	scheduleHeal(c, p)
	scheduleLoad(c, ch, p)

	// Advance in slices so a violation stops the run near where it
	// happened and the trace tail ends at the failure.
	end := proto.Time(p.Duration())
	const slice = 100 * time.Millisecond
	for c.Sim.Now() < end && ch.Violation() == nil {
		c.Run(min(slice, end-c.Sim.Now()))
	}
	var endState *EndState
	if ch.Violation() == nil {
		// Bounded convergence grace before the end-of-run checks: the
		// fixed step keeps the extra virtual time deterministic.
		c.RunUntil(func() bool {
			endState = simEndState(c)
			return endState.Settled()
		}, 25*time.Millisecond, 3*time.Second)
		ch.Finish(endState)
	}

	res := &Result{
		Program:   p,
		Violation: ch.Violation(),
		End:       time.Duration(c.Sim.Now()),
	}
	if endState != nil {
		res.FinalMembers = endState.FinalMembers()
	}
	if opt.RecordDeliveries {
		res.Deliveries = ch.DeliverySeqs()
	}
	for _, id := range c.NodeIDs() {
		res.Delivered += c.Node(id).DeliveredCount
	}
	for _, e := range ring.Events(nil) {
		res.TraceTail = append(res.TraceTail, e.String())
	}
	return res, nil
}

// simEndState snapshots the simulated cluster into the backend-neutral
// form the checker's end-of-run invariants consume.
func simEndState(c *sim.Cluster) *EndState {
	end := &EndState{}
	for _, id := range c.NodeIDs() {
		n := c.Node(id)
		m := n.Stack.SRP()
		end.Nodes = append(end.Nodes, NodeEnd{
			ID:          id,
			Crashed:     n.Crashed(),
			Operational: m.State() == srp.StateOperational,
			State:       m.State().String(),
			Ring:        m.Ring(),
			Members:     m.Members(),
			Backlog:     n.Stack.Backlog(),
			Faulty:      n.Stack.Replicator().Faulty(),
		})
	}
	return end
}

// scheduleOps arms every op's apply and undo closures. Undo actions only
// ever heal, so overlapping ops stay safe (and deterministic) in any
// order.
func scheduleOps(c *sim.Cluster, ch *Checker, p Program) {
	for _, op := range p.Ops {
		op := op
		at := proto.Time(p.Warmup + op.At)
		over := at + proto.Time(op.Dur)
		switch op.Kind {
		case OpLossBurst:
			c.Sim.At(at, func() { c.SetLoss(op.Net, op.P) })
			c.Sim.At(over, func() { c.SetLoss(op.Net, 0) })
		case OpNetDown:
			c.Sim.At(at, func() { c.KillNetwork(op.Net) })
			c.Sim.At(over, func() { c.ReviveNetwork(op.Net) })
		case OpPartition:
			c.Sim.At(at, func() { c.Partition(op.Net, PartitionGroups(p.Nodes, op.Part)) })
			c.Sim.At(over, func() { c.Partition(op.Net, nil) })
		case OpTokenLoss:
			c.Sim.At(at, func() {
				for i := 0; i < p.Networks; i++ {
					c.SetLoss(i, 1)
				}
			})
			c.Sim.At(over, func() {
				for i := 0; i < p.Networks; i++ {
					c.SetLoss(i, 0)
				}
			})
		case OpBlockSend:
			c.Sim.At(at, func() { c.BlockSend(op.Node, op.Net, true) })
			c.Sim.At(over, func() { c.BlockSend(op.Node, op.Net, false) })
		case OpBlockRecv:
			c.Sim.At(at, func() { c.BlockRecv(op.Node, op.Net, true) })
			c.Sim.At(over, func() { c.BlockRecv(op.Node, op.Net, false) })
		case OpTimerSkew:
			c.Sim.At(at, func() { c.SetTimerSkew(op.Node, op.P) })
			c.Sim.At(over, func() { c.SetTimerSkew(op.Node, 1) })
		case OpCrash:
			c.Sim.At(at, func() {
				if !c.Node(op.Node).Crashed() {
					c.Crash(op.Node)
					ch.NoteCrash(op.Node)
				}
			})
			c.Sim.At(over, func() {
				// Restart errors only if some other op already revived the
				// node; either way it is running afterwards.
				_ = c.Restart(op.Node)
			})
		case OpOneWay:
			c.Sim.At(at, func() { c.BlockPair(op.Net, op.Node, op.Peer, true) })
			c.Sim.At(over, func() { c.BlockPair(op.Net, op.Node, op.Peer, false) })
		case OpCongestion:
			c.Sim.At(at, func() { c.SetCongestion(op.Net, op.P) })
			c.Sim.At(over, func() { c.SetCongestion(op.Net, 0) })
		case OpDupStorm:
			c.Sim.At(at, func() { c.SetDupStorm(op.Net, op.P) })
			c.Sim.At(over, func() { c.SetDupStorm(op.Net, 0) })
		case OpSlowNet:
			c.Sim.At(at, func() { c.SetSlowNet(op.Net, op.Lat) })
			c.Sim.At(over, func() { c.SetSlowNet(op.Net, 0) })
		case OpClockDrift:
			// A drifting (not stepping) clock: ramp the skew from nominal
			// to the target in fixed steps across the op's duration.
			const steps = 8
			for s := 1; s <= steps; s++ {
				s := s
				c.Sim.At(at+proto.Time(op.Dur)*proto.Time(s-1)/steps, func() {
					c.SetTimerSkew(op.Node, 1+(op.P-1)*float64(s)/steps)
				})
			}
			c.Sim.At(over, func() { c.SetTimerSkew(op.Node, 1) })
		case OpCorrupt:
			c.Sim.At(at, func() {
				if c.Node(op.Node).Crashed() {
					return
				}
				ch.NoteCorrupt(op.Node)
				c.Corrupt(op.Node, op.Sub, CorruptSeed(p, op))
			})
		}
	}
}

// CorruptSeed derives the corruption's private rand stream from the
// program so replays scramble identically.
func CorruptSeed(p Program, op Op) int64 {
	return p.Seed*16777619 ^ int64(op.Node)<<7 ^ int64(op.At)
}

// SlowOnlyNets computes the networks the slow-vs-dead invariant is armed
// for: those targeted by a slow-net op and degraded by nothing else. Ops
// that legitimately starve a network of receptions (loss, outages,
// partitions, blocks, one-way links, congestion) disqualify their target,
// and program-wide distortions disarm the invariant entirely: token-loss
// blackouts black out every network, duplicate storms inflate one
// network's reception counts (making the others lag on a correct monitor),
// and a fast-running clock shrinks the token gate below the latency the
// slow network is entitled to.
func SlowOnlyNets(p Program) []bool {
	slow := make([]bool, p.Networks)
	hard := make([]bool, p.Networks)
	for _, op := range p.Ops {
		switch op.Kind {
		case OpSlowNet:
			slow[op.Net] = true
		case OpTokenLoss, OpDupStorm:
			return make([]bool, p.Networks)
		case OpTimerSkew, OpClockDrift:
			if op.P < 1 {
				return make([]bool, p.Networks)
			}
		case OpLossBurst, OpNetDown, OpPartition, OpBlockSend, OpBlockRecv, OpOneWay, OpCongestion:
			hard[op.Net] = true
		}
	}
	for i := range slow {
		if hard[i] {
			slow[i] = false
		}
	}
	return slow
}

// RecoveryBudget is the bounded-recovery allowance (DESIGN.md §12): after
// an OpCorrupt fires, the corrupted node must deliver its own next
// accepted submission before receiving this many token copies. The worst
// healthy path is a full token-loss reformation — retransmit bursts, a
// membership round, then draining the backlog accumulated while the
// filter was poisoned — which stays well under a hundred receptions per
// network; the budget more than doubles that for slack. A node whose
// recovery path is sabotaged re-forms endlessly instead and either blows
// through the budget or never delivers at all (caught at Finish).
func RecoveryBudget(p Program) int64 {
	return int64(256 * p.Networks)
}

// scheduleHeal arms the unconditional end-of-fault-window repair. It is
// deliberately outside the program: shrinking can drop any op, but the
// system the end-of-run invariants judge is always a healed one.
func scheduleHeal(c *sim.Cluster, p Program) {
	c.Sim.At(proto.Time(p.Warmup+p.FaultWindow), func() {
		ids := c.NodeIDs()
		for i := 0; i < p.Networks; i++ {
			c.ReviveNetwork(i)
			c.SetLoss(i, 0)
			c.Partition(i, nil)
			c.SetCongestion(i, 0)
			c.SetDupStorm(i, 0)
			c.SetSlowNet(i, 0)
			for _, a := range ids {
				for _, b := range ids {
					if a != b {
						c.BlockPair(i, a, b, false)
					}
				}
			}
		}
		for _, id := range ids {
			c.SetTimerSkew(id, 1)
			for i := 0; i < p.Networks; i++ {
				c.BlockSend(id, i, false)
				c.BlockRecv(id, i, false)
			}
		}
	})
}

// scheduleLoad arms every submission up front: each node submits a unique
// payload every LoadInterval from the end of warmup until the cutoff,
// staggered so nodes never submit at the same instant.
func scheduleLoad(c *sim.Cluster, ch *Checker, p Program) {
	ids := c.NodeIDs()
	start := proto.Time(p.Warmup)
	cutoff := proto.Time(p.LoadCutoff())
	for i, id := range ids {
		id := id
		offset := proto.Time(i) * proto.Time(p.LoadInterval) / proto.Time(len(ids))
		k := 0
		for t := start + offset; t < cutoff; t += proto.Time(p.LoadInterval) {
			seqNo := k
			k++
			c.Sim.At(t, func() {
				payload := LoadPayload(p, id, seqNo)
				ch.NoteSubmit(id, payload, c.Submit(id, payload))
			})
		}
	}
}

// LoadPayload builds the unique payload for node id's seqNo-th submission.
// Exported so the live harness submits byte-identical load, which is what
// makes sim and live delivery sets comparable in the differential mode.
func LoadPayload(p Program, id proto.NodeID, seqNo int) []byte {
	buf := make([]byte, p.PayloadLen)
	copy(buf, fmt.Sprintf("s%d/%v/%d|", p.Seed, id, seqNo))
	return buf
}

// PartitionGroups expands a partition bitmask into the group map both
// execution backends apply (bit i-1 set puts node i in group 1).
func PartitionGroups(nodes int, mask uint32) map[proto.NodeID]int {
	groups := make(map[proto.NodeID]int, nodes)
	for i := 1; i <= nodes; i++ {
		g := 0
		if mask&(1<<uint(i-1)) != 0 {
			g = 1
		}
		groups[proto.NodeID(i)] = g
	}
	return groups
}

// Repro is the on-disk minimal-repro format: the program, the chaos flags
// it ran under, and the violation it is expected to (re)produce. A repro
// with an empty Expect documents a program that must run clean.
type Repro struct {
	Note      string          `json:"note,omitempty"`
	Chaos     core.ChaosFlags `json:"chaos,omitempty"`
	Expect    string          `json:"expect,omitempty"`
	Program   Program         `json:"program"`
	Violation *Violation      `json:"violation,omitempty"`
}

// SaveRepro writes a repro file.
func SaveRepro(path string, r Repro) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadRepro reads a repro file.
func LoadRepro(path string) (Repro, error) {
	var r Repro
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("torture: %s: %w", path, err)
	}
	return r, nil
}
