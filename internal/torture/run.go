package torture

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"github.com/totem-rrp/totem/internal/core"
	"github.com/totem-rrp/totem/internal/proto"
	"github.com/totem-rrp/totem/internal/sim"
	"github.com/totem-rrp/totem/internal/srp"
	"github.com/totem-rrp/totem/internal/stack"
	"github.com/totem-rrp/totem/internal/trace"
)

// Options tunes one execution without becoming part of the program.
type Options struct {
	// Chaos re-introduces a known-fixed bug for the duration of the run
	// (mutation testing: the checker must catch it). Execute installs and
	// clears the global flags, so runs must not overlap in one process.
	Chaos core.ChaosFlags
	// TraceCap bounds the trace ring; 0 means a 512-event tail.
	TraceCap int
}

// Result is the outcome of one torture run.
type Result struct {
	Program   Program    `json:"program"`
	Violation *Violation `json:"violation,omitempty"`
	// Delivered is the total delivery count across all nodes — a sanity
	// signal that the run actually exercised the ring.
	Delivered uint64 `json:"delivered"`
	// End is the virtual time reached (runs stop early on violation).
	End time.Duration `json:"end"`
	// TraceTail is the formatted tail of the event trace, ending at the
	// violation (or at the end of a clean run).
	TraceTail []string `json:"traceTail,omitempty"`
}

// tortureTune shortens the RRP recovery cadence so that fault/heal cycles
// converge within a run's tail: decay every 200ms, two clean windows to
// readmit, flap backoff capped at 8 windows.
func tortureTune(sc *stack.Config) {
	sc.RRP.DecayInterval = 200 * time.Millisecond
	sc.RRP.ProbationWindows = 2
	sc.RRP.MaxProbation = 8
	sc.RRP.FlapWindow = 2 * time.Second
}

// monitorBoundFor derives the count-monitor headroom bound the checker
// asserts. After normalisation the minimum non-faulty counter is zero, so
// a healthy monitor's largest counter stays within a small multiple of
// the conviction thresholds; see DESIGN.md §10.
func monitorBoundFor(sc stack.Config) int64 {
	return int64(3*sc.RRP.DiffThreshold + 2*sc.RRP.TokenDiffThreshold + 4)
}

// Execute runs one program to completion (or to its first invariant
// violation) and reports the outcome. Identical (Program, Options) pairs
// replay byte for byte: the simulator, the load and the fault schedule
// are all pure functions of the program.
func Execute(p Program, opt Options) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	style, err := StyleByName(p.Style)
	if err != nil {
		return nil, err
	}
	core.Chaos = opt.Chaos
	defer func() { core.Chaos = core.ChaosFlags{} }()

	traceCap := opt.TraceCap
	if traceCap <= 0 {
		traceCap = 512
	}
	ring := trace.NewRing(traceCap)

	sample := stack.DefaultConfig(1, p.Networks, style)
	tortureTune(&sample)
	ch := newChecker(style, monitorBoundFor(sample))

	c, err := sim.NewCluster(sim.Config{
		Nodes:    p.Nodes,
		Networks: p.Networks,
		Style:    style,
		K:        p.K,
		Net:      sim.DefaultNetworkParams(),
		Host:     sim.DefaultNodeParams(),
		Seed:     p.Seed,
		TuneSRP:  func(_ proto.NodeID, sc *stack.Config) { tortureTune(sc) },
		Trace:    trace.Multi{ch, ring},
	})
	if err != nil {
		return nil, err
	}
	ch.now = c.Sim.Now
	for _, id := range c.NodeIDs() {
		id := id
		n := c.Node(id)
		n.KeepPayloads = false // the checker hashes payloads immediately
		n.OnDeliver = func(d proto.Delivery) { ch.OnDeliver(id, d) }
	}
	c.Start()
	scheduleOps(c, ch, p)
	scheduleHeal(c, p)
	scheduleLoad(c, ch, p)

	// Advance in slices so a violation stops the run near where it
	// happened and the trace tail ends at the failure.
	end := proto.Time(p.Duration())
	const slice = 100 * time.Millisecond
	for c.Sim.Now() < end && ch.Violation() == nil {
		c.Run(min(slice, end-c.Sim.Now()))
	}
	if ch.Violation() == nil {
		// Bounded convergence grace before the end-of-run checks: the
		// fixed step keeps the extra virtual time deterministic.
		c.RunUntil(func() bool { return settled(c) }, 25*time.Millisecond, 3*time.Second)
		ch.Finish(c)
	}

	res := &Result{
		Program:   p,
		Violation: ch.Violation(),
		End:       time.Duration(c.Sim.Now()),
	}
	for _, id := range c.NodeIDs() {
		res.Delivered += c.Node(id).DeliveredCount
	}
	for _, e := range ring.Events(nil) {
		res.TraceTail = append(res.TraceTail, e.String())
	}
	return res, nil
}

// settled reports whether every live node is operational on one common
// ring of exactly the live nodes, with drained backlogs and no network
// still marked faulty.
func settled(c *sim.Cluster) bool {
	var live []*sim.Node
	for _, id := range c.NodeIDs() {
		if n := c.Node(id); !n.Crashed() {
			live = append(live, n)
		}
	}
	if len(live) == 0 {
		return true
	}
	ring := live[0].Stack.SRP().Ring()
	for _, n := range live {
		m := n.Stack.SRP()
		if m.State() != srp.StateOperational || m.Ring() != ring || len(m.Members()) != len(live) {
			return false
		}
		if n.Stack.Backlog() != 0 {
			return false
		}
		for _, faulty := range n.Stack.Replicator().Faulty() {
			if faulty {
				return false
			}
		}
	}
	return true
}

// scheduleOps arms every op's apply and undo closures. Undo actions only
// ever heal, so overlapping ops stay safe (and deterministic) in any
// order.
func scheduleOps(c *sim.Cluster, ch *Checker, p Program) {
	for _, op := range p.Ops {
		op := op
		at := proto.Time(p.Warmup + op.At)
		over := at + proto.Time(op.Dur)
		switch op.Kind {
		case OpLossBurst:
			c.Sim.At(at, func() { c.SetLoss(op.Net, op.P) })
			c.Sim.At(over, func() { c.SetLoss(op.Net, 0) })
		case OpNetDown:
			c.Sim.At(at, func() { c.KillNetwork(op.Net) })
			c.Sim.At(over, func() { c.ReviveNetwork(op.Net) })
		case OpPartition:
			c.Sim.At(at, func() { c.Partition(op.Net, partitionGroups(p.Nodes, op.Part)) })
			c.Sim.At(over, func() { c.Partition(op.Net, nil) })
		case OpTokenLoss:
			c.Sim.At(at, func() {
				for i := 0; i < p.Networks; i++ {
					c.SetLoss(i, 1)
				}
			})
			c.Sim.At(over, func() {
				for i := 0; i < p.Networks; i++ {
					c.SetLoss(i, 0)
				}
			})
		case OpBlockSend:
			c.Sim.At(at, func() { c.BlockSend(op.Node, op.Net, true) })
			c.Sim.At(over, func() { c.BlockSend(op.Node, op.Net, false) })
		case OpBlockRecv:
			c.Sim.At(at, func() { c.BlockRecv(op.Node, op.Net, true) })
			c.Sim.At(over, func() { c.BlockRecv(op.Node, op.Net, false) })
		case OpTimerSkew:
			c.Sim.At(at, func() { c.SetTimerSkew(op.Node, op.P) })
			c.Sim.At(over, func() { c.SetTimerSkew(op.Node, 1) })
		case OpCrash:
			c.Sim.At(at, func() {
				if !c.Node(op.Node).Crashed() {
					c.Crash(op.Node)
					ch.NoteCrash(op.Node)
				}
			})
			c.Sim.At(over, func() {
				// Restart errors only if some other op already revived the
				// node; either way it is running afterwards.
				_ = c.Restart(op.Node)
			})
		}
	}
}

// scheduleHeal arms the unconditional end-of-fault-window repair. It is
// deliberately outside the program: shrinking can drop any op, but the
// system the end-of-run invariants judge is always a healed one.
func scheduleHeal(c *sim.Cluster, p Program) {
	c.Sim.At(proto.Time(p.Warmup+p.FaultWindow), func() {
		for i := 0; i < p.Networks; i++ {
			c.ReviveNetwork(i)
			c.SetLoss(i, 0)
			c.Partition(i, nil)
		}
		for _, id := range c.NodeIDs() {
			c.SetTimerSkew(id, 1)
			for i := 0; i < p.Networks; i++ {
				c.BlockSend(id, i, false)
				c.BlockRecv(id, i, false)
			}
		}
	})
}

// scheduleLoad arms every submission up front: each node submits a unique
// payload every LoadInterval from the end of warmup until the cutoff,
// staggered so nodes never submit at the same instant.
func scheduleLoad(c *sim.Cluster, ch *Checker, p Program) {
	ids := c.NodeIDs()
	start := proto.Time(p.Warmup)
	cutoff := proto.Time(p.loadCutoff())
	for i, id := range ids {
		id := id
		offset := proto.Time(i) * proto.Time(p.LoadInterval) / proto.Time(len(ids))
		k := 0
		for t := start + offset; t < cutoff; t += proto.Time(p.LoadInterval) {
			seqNo := k
			k++
			c.Sim.At(t, func() {
				payload := loadPayload(p, id, seqNo)
				ch.NoteSubmit(id, payload, c.Submit(id, payload))
			})
		}
	}
}

// loadPayload builds the unique payload for node id's seqNo-th submission.
func loadPayload(p Program, id proto.NodeID, seqNo int) []byte {
	buf := make([]byte, p.PayloadLen)
	copy(buf, fmt.Sprintf("s%d/%v/%d|", p.Seed, id, seqNo))
	return buf
}

// partitionGroups expands a bitmask into the simulator's group map.
func partitionGroups(nodes int, mask uint32) map[proto.NodeID]int {
	groups := make(map[proto.NodeID]int, nodes)
	for i := 1; i <= nodes; i++ {
		g := 0
		if mask&(1<<uint(i-1)) != 0 {
			g = 1
		}
		groups[proto.NodeID(i)] = g
	}
	return groups
}

// Repro is the on-disk minimal-repro format: the program, the chaos flags
// it ran under, and the violation it is expected to (re)produce. A repro
// with an empty Expect documents a program that must run clean.
type Repro struct {
	Note      string          `json:"note,omitempty"`
	Chaos     core.ChaosFlags `json:"chaos,omitempty"`
	Expect    string          `json:"expect,omitempty"`
	Program   Program         `json:"program"`
	Violation *Violation      `json:"violation,omitempty"`
}

// SaveRepro writes a repro file.
func SaveRepro(path string, r Repro) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadRepro reads a repro file.
func LoadRepro(path string) (Repro, error) {
	var r Repro
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("torture: %s: %w", path, err)
	}
	return r, nil
}
