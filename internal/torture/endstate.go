package torture

import "github.com/totem-rrp/totem/internal/proto"

// EndState is a backend-neutral snapshot of a cluster at the end of a
// run: everything the end-of-run invariants need to judge a healed
// system, and nothing tied to how the run was executed. The virtual-time
// runner builds one from a sim.Cluster; the live harness builds one from
// real totem.Nodes via the public inspection API. Checker.Finish accepts
// either, which is what makes the invariant set a reusable oracle for
// any execution backend.
type EndState struct {
	Nodes []NodeEnd
}

// NodeEnd is one node's contribution to an EndState.
type NodeEnd struct {
	ID proto.NodeID
	// Crashed marks a node that was fail-stopped and never restarted;
	// crashed nodes are exempt from the end-of-run invariants.
	Crashed bool
	// Operational reports whether the ordering layer has an installed
	// configuration and is exchanging traffic.
	Operational bool
	// State is the human-readable protocol state, used only in violation
	// messages.
	State string
	// Ring and Members identify the node's current configuration.
	Ring    proto.RingID
	Members []proto.NodeID
	// Backlog is the number of queued, unsent application messages.
	Backlog int
	// Faulty holds the per-network faulty flags of the RRP layer.
	Faulty []bool
}

// live returns the nodes that are not crashed.
func (e *EndState) live() []*NodeEnd {
	var out []*NodeEnd
	for i := range e.Nodes {
		if !e.Nodes[i].Crashed {
			out = append(out, &e.Nodes[i])
		}
	}
	return out
}

// Settled reports whether every live node is operational on one common
// ring of exactly the live nodes, with drained backlogs and no network
// still marked faulty — the fixed point runners poll for before handing
// the snapshot to Checker.Finish.
func (e *EndState) Settled() bool {
	live := e.live()
	if len(live) == 0 {
		return true
	}
	ring := live[0].Ring
	for _, n := range live {
		if !n.Operational || n.Ring != ring || len(n.Members) != len(live) {
			return false
		}
		if n.Backlog != 0 {
			return false
		}
		for _, faulty := range n.Faulty {
			if faulty {
				return false
			}
		}
	}
	return true
}

// FinalMembers returns the common final-ring membership of the live
// nodes, or nil when the live nodes do not agree on one ring (in which
// case Finish reports a final-ring violation anyway).
func (e *EndState) FinalMembers() []proto.NodeID {
	live := e.live()
	if len(live) == 0 {
		return nil
	}
	ring := live[0].Ring
	for _, n := range live {
		if n.Ring != ring || len(n.Members) != len(live[0].Members) {
			return nil
		}
	}
	return append([]proto.NodeID(nil), live[0].Members...)
}
