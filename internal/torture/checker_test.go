package torture

import (
	"testing"

	"github.com/totem-rrp/totem/internal/core"
	"github.com/totem-rrp/totem/internal/proto"
)

func deliver(ch *Checker, node proto.NodeID, ring proto.RingID, seq uint32, payload string) {
	ch.OnDeliver(node, proto.Delivery{Ring: ring, Seq: seq, Payload: []byte(payload)})
}

func TestCheckerAcceptsConsistentOrder(t *testing.T) {
	ch := NewChecker(proto.ReplicationActive, 1<<30)
	ring := proto.RingID{Rep: 1, Epoch: 1}
	// Node 1 authors the order; node 2 replays it exactly; node 3 joins
	// late and replays a suffix — all legal under virtual synchrony.
	for _, n := range []proto.NodeID{1, 2} {
		deliver(ch, n, ring, 1, "a")
		deliver(ch, n, ring, 1, "b")
		deliver(ch, n, ring, 2, "c")
	}
	deliver(ch, 3, ring, 2, "c")
	if v := ch.Violation(); v != nil {
		t.Fatalf("consistent streams flagged: %v", v)
	}
}

func TestCheckerCatchesChunkDisagreement(t *testing.T) {
	ch := NewChecker(proto.ReplicationActive, 1<<30)
	ring := proto.RingID{Rep: 1, Epoch: 1}
	deliver(ch, 1, ring, 1, "a")
	deliver(ch, 2, ring, 1, "X") // same slot, different payload
	v := ch.Violation()
	if v == nil || v.Invariant != "order" {
		t.Fatalf("violation = %v, want order", v)
	}
}

func TestCheckerCatchesSeqRegression(t *testing.T) {
	ch := NewChecker(proto.ReplicationActive, 1<<30)
	ring := proto.RingID{Rep: 1, Epoch: 1}
	deliver(ch, 1, ring, 5, "a")
	deliver(ch, 1, ring, 4, "b")
	v := ch.Violation()
	if v == nil || v.Invariant != "order" {
		t.Fatalf("violation = %v, want order", v)
	}
}

func TestCheckerCatchesPartialPacket(t *testing.T) {
	ch := NewChecker(proto.ReplicationActive, 1<<30)
	ring := proto.RingID{Rep: 1, Epoch: 1}
	// Node 1 authors a two-chunk packet at seq 1; node 2 delivers only the
	// first chunk and moves on.
	deliver(ch, 1, ring, 1, "a")
	deliver(ch, 1, ring, 1, "b")
	deliver(ch, 2, ring, 1, "a")
	deliver(ch, 2, ring, 2, "c")
	v := ch.Violation()
	if v == nil || v.Invariant != "order" {
		t.Fatalf("violation = %v, want order (left seq short)", v)
	}
}

func TestCheckerCatchesLateExtension(t *testing.T) {
	ch := NewChecker(proto.ReplicationActive, 1<<30)
	ring := proto.RingID{Rep: 1, Epoch: 1}
	// Node 1 completes seq 1 with one chunk and moves to seq 2; node 2
	// then tries to extend the closed seq 1 with a second chunk.
	deliver(ch, 1, ring, 1, "a")
	deliver(ch, 1, ring, 2, "b")
	deliver(ch, 2, ring, 1, "a")
	deliver(ch, 2, ring, 1, "extra")
	v := ch.Violation()
	if v == nil || v.Invariant != "order" {
		t.Fatalf("violation = %v, want order (extended a closed packet)", v)
	}
}

func TestCheckerCatchesDuplicateDelivery(t *testing.T) {
	ch := NewChecker(proto.ReplicationActive, 1<<30)
	ring := proto.RingID{Rep: 1, Epoch: 1}
	deliver(ch, 1, ring, 1, "a")
	deliver(ch, 1, ring, 2, "a") // same payload again
	v := ch.Violation()
	if v == nil || v.Invariant != "no-dup" {
		t.Fatalf("violation = %v, want no-dup", v)
	}
}

func TestCheckerAllowsTransitionalSkips(t *testing.T) {
	// A node may skip sequence numbers it never received (messages from
	// processors outside its transitional configuration) as long as what
	// it does deliver replays the global order.
	ch := NewChecker(proto.ReplicationActive, 1<<30)
	ring := proto.RingID{Rep: 1, Epoch: 1}
	deliver(ch, 1, ring, 1, "a")
	deliver(ch, 1, ring, 2, "b")
	deliver(ch, 1, ring, 3, "c")
	deliver(ch, 2, ring, 1, "a")
	deliver(ch, 2, ring, 3, "c") // skips seq 2: fine
	if v := ch.Violation(); v != nil {
		t.Fatalf("legal transitional skip flagged: %v", v)
	}
}

func TestShrinkMinimisesToCulpritOp(t *testing.T) {
	// Chaos makes any program with token traffic fail token-accounting;
	// shrinking must strip the irrelevant ops while preserving the
	// violation, and never trade it for a different invariant.
	p := Generate(1, proto.ReplicationPassive)
	if len(p.Ops) < 2 {
		t.Fatalf("seed 1 program has %d ops, want >= 2 for a meaningful shrink", len(p.Ops))
	}
	opt := Options{Chaos: core.ChaosFlags{HeldTokenLeak: true}}
	sp, res, err := Shrink(p, opt, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || res.Violation == nil || res.Violation.Invariant != "token-accounting" {
		t.Fatalf("shrunk result = %+v, want token-accounting violation", res)
	}
	if len(sp.Ops) >= len(p.Ops) {
		t.Fatalf("shrink kept %d of %d ops", len(sp.Ops), len(p.Ops))
	}
	if err := sp.Validate(); err != nil {
		t.Fatalf("shrunk program invalid: %v", err)
	}
}
