package torture

import (
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"github.com/totem-rrp/totem/internal/core"
)

func TestGrayGenerateDeterministic(t *testing.T) {
	for _, corrupt := range []string{"", "rand", "ring-seq"} {
		a := GenerateGray(42, corrupt)
		b := GenerateGray(42, corrupt)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("corrupt=%q: GenerateGray(42) not deterministic:\n%+v\n%+v", corrupt, a, b)
		}
	}
	for seed := int64(1); seed <= 200; seed++ {
		if err := GenerateGray(seed, "").Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := GenerateGray(seed, "rand").Validate(); err != nil {
			t.Fatalf("seed %d corrupt: %v", seed, err)
		}
	}
}

// grayOpCases is one valid instance of every gray-failure op kind, sized
// for the corpus frozen-token-filter program (3 nodes, 3 networks).
var grayOpCases = []struct {
	name string
	op   Op
}{
	{"one-way", Op{Kind: OpOneWay, At: 100 * time.Millisecond, Dur: 500 * time.Millisecond, Net: 0, Node: 2, Peer: 3}},
	{"congestion", Op{Kind: OpCongestion, At: 100 * time.Millisecond, Dur: 500 * time.Millisecond, Net: 0, P: 0.4}},
	{"dup-storm", Op{Kind: OpDupStorm, At: 100 * time.Millisecond, Dur: 500 * time.Millisecond, Net: 0, P: 0.3}},
	{"slow-net", Op{Kind: OpSlowNet, At: 100 * time.Millisecond, Dur: 500 * time.Millisecond, Net: 0, Lat: time.Millisecond}},
	{"clock-drift", Op{Kind: OpClockDrift, At: 100 * time.Millisecond, Dur: 500 * time.Millisecond, Node: 3, P: 1.1}},
	{"corrupt", Op{Kind: OpCorrupt, At: 100 * time.Millisecond, Dur: time.Millisecond, Node: 2, Sub: "monitors"}},
}

// TestGrayOpsJSONRoundTrip holds every new fault-op kind to the repro
// contract: generate, save, load, and the reloaded program must be
// byte-identical in structure and replay to an identical trace.
func TestGrayOpsJSONRoundTrip(t *testing.T) {
	dir := t.TempDir()
	for _, tc := range grayOpCases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			p := GenerateGray(9, "")
			p.Ops = []Op{tc.op}
			if err := p.Validate(); err != nil {
				t.Fatalf("case program invalid: %v", err)
			}
			file := filepath.Join(dir, tc.name+".json")
			if err := SaveRepro(file, Repro{Note: "round-trip " + tc.name, Program: p}); err != nil {
				t.Fatal(err)
			}
			r, err := LoadRepro(file)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(r.Program, p) {
				t.Fatalf("program changed across save/load:\n%+v\n%+v", p, r.Program)
			}
			a, err := Execute(p, Options{})
			if err != nil {
				t.Fatal(err)
			}
			b, err := Execute(r.Program, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a.TraceTail, b.TraceTail) {
				t.Fatal("reloaded program replayed to a different trace")
			}
		})
	}
}

// TestGrayOpsShrink proves the shrinker can delete every new op kind: a
// pinned chaos repro (state corruption with recovery sabotaged — a
// violation robust to any rng perturbation) gains one irrelevant gray op,
// and Shrink must strip it back out while preserving the violation.
func TestGrayOpsShrink(t *testing.T) {
	base, err := LoadRepro("corpus/chaos-frozen-token-filter.json")
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Chaos: core.ChaosFlags{FrozenTokenFilter: true}}
	for _, tc := range grayOpCases {
		if tc.op.Kind == OpCorrupt {
			continue // the base already has its corrupt op (one allowed)
		}
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			p := base.Program
			p.Ops = append(append([]Op(nil), base.Program.Ops...), tc.op)
			if err := p.Validate(); err != nil {
				t.Fatalf("case program invalid: %v", err)
			}
			sp, sr, err := Shrink(p, opt, 0)
			if err != nil {
				t.Fatal(err)
			}
			if sr == nil || sr.Violation == nil {
				t.Fatal("shrunk program no longer fails")
			}
			for _, op := range sp.Ops {
				if op.Kind == tc.op.Kind {
					t.Fatalf("shrink kept the irrelevant %s op: %+v (violation %v)",
						tc.op.Kind, sp.Ops, sr.Violation)
				}
			}
		})
	}
}
