package proto

import "fmt"

// ProbeCode identifies one in-machine instrumentation event. Probes are
// the protocol's own commentary on its execution: they fire at decision
// points that neither packets nor Stats counters expose (why a token was
// held, how close a monitor is to conviction, which membership phase a
// node entered). Codes are stable identifiers; drivers may switch on them.
type ProbeCode uint8

const (
	// ProbeTokenGathered fires when the RRP layer sees the first copy of a
	// new token generation. A = token seq, B = rotation.
	ProbeTokenGathered ProbeCode = iota + 1
	// ProbeTokenGated fires when a token is passed up after its gate was
	// satisfied (all live copies gathered, or K copies in active-passive,
	// or no outstanding messages in passive). A = token seq.
	ProbeTokenGated
	// ProbeTokenTimedOut fires when a held token is released by the RRP
	// token timer instead of its gate. A = token seq.
	ProbeTokenTimedOut
	// ProbeTokenDiscarded fires when a stale or duplicate token copy is
	// dropped. Network = arrival network, A = token seq.
	ProbeTokenDiscarded
	// ProbeMonitorThreshold fires when a count monitor's per-network
	// counter crosses its conviction threshold (the step before a fault is
	// raised). Network = the convicted network, A = counter value,
	// B = threshold.
	ProbeMonitorThreshold
	// ProbeMonitorDecay fires on each periodic decay/replenishment tick.
	// A = decay window index, B = largest per-network counter across all
	// count monitors (a witness for the "counters never grow unboundedly"
	// contract; only passive and active-passive populate it).
	ProbeMonitorDecay
	// ProbeProbation reports probation progress for a faulty network at
	// each decay window. Network = the network under probation, A = clean
	// windows served, B = clean windows required.
	ProbeProbation
	// ProbeProbeSent fires when a probe copy of outbound traffic is
	// duplicated onto a faulty network to test it. Network = the probed
	// network, A = probe budget remaining in this window.
	ProbeProbeSent
	// ProbeFlapBackoff fires when flap damping doubles a network's
	// probation after a re-fault. Network = the flapping network,
	// A = new probation length in windows.
	ProbeFlapBackoff
	// ProbeRetransRequested fires when the SRP machine adds a missing
	// sequence number to the token's retransmission list. A = seq.
	ProbeRetransRequested
	// ProbeRetransServed fires when the SRP machine re-broadcasts a packet
	// another node requested. A = seq.
	ProbeRetransServed
	// ProbeFlowStall fires when flow control rejects or defers traffic:
	// a Submit bounced off a full backlog, or a token visit could send
	// nothing. A = backlog length.
	ProbeFlowStall
	// ProbePhase fires on an SRP membership phase transition.
	// A = old state, B = new state (srp.State values).
	ProbePhase
	// ProbeTokenLoss fires when the token-loss timer expires and the node
	// abandons the ring to start the membership protocol. A = last seq.
	ProbeTokenLoss
	// ProbeSeqRollover fires when the representative abandons an
	// operational ring because its sequence numbers approached the
	// configured rollover limit, forcing a ring reformation that resets the
	// sequence space. A = the sequence number that tripped the limit,
	// B = the limit.
	ProbeSeqRollover
	// ProbeStateCorrupted fires when a fault-injection hook scrambles this
	// node's protocol state (the torture harness's arbitrary-initial-state
	// recovery mode; never in production). A = 1 if the corruption took
	// effect, 0 if the machine was in a phase where it could not apply.
	ProbeStateCorrupted
)

// String implements fmt.Stringer.
func (c ProbeCode) String() string {
	switch c {
	case ProbeTokenGathered:
		return "token-gathered"
	case ProbeTokenGated:
		return "token-gated"
	case ProbeTokenTimedOut:
		return "token-timed-out"
	case ProbeTokenDiscarded:
		return "token-discarded"
	case ProbeMonitorThreshold:
		return "monitor-threshold"
	case ProbeMonitorDecay:
		return "monitor-decay"
	case ProbeProbation:
		return "probation"
	case ProbeProbeSent:
		return "probe-sent"
	case ProbeFlapBackoff:
		return "flap-backoff"
	case ProbeRetransRequested:
		return "retrans-requested"
	case ProbeRetransServed:
		return "retrans-served"
	case ProbeFlowStall:
		return "flow-stall"
	case ProbePhase:
		return "phase"
	case ProbeTokenLoss:
		return "token-loss"
	case ProbeSeqRollover:
		return "seq-rollover"
	case ProbeStateCorrupted:
		return "state-corrupted"
	default:
		return fmt.Sprintf("ProbeCode(%d)", uint8(c))
	}
}

// ProbeEvent is one typed, allocation-free machine event. The meaning of
// A/B/C depends on Code (documented per code above). Network is -1 when
// the event is not tied to one network.
type ProbeEvent struct {
	Code    ProbeCode
	Network int
	A, B, C int64
}

// ProbeFunc receives machine events. Implementations must be fast and
// must not re-enter the machine; they run synchronously inside handlers.
type ProbeFunc func(ProbeEvent)

// SetProbe installs (or, with nil, removes) the probe hook. With no probe
// installed Probe is a single predictable branch, so machines can emit
// events unconditionally without an allocation or formatting cost.
func (a *Actions) SetProbe(fn ProbeFunc) { a.probe = fn }

// ProbeEnabled reports whether a probe hook is installed, for the rare
// emission site that wants to skip argument computation entirely.
func (a *Actions) ProbeEnabled() bool { return a.probe != nil }

// Probe emits a machine event to the installed hook, if any.
func (a *Actions) Probe(code ProbeCode, network int, av, bv, cv int64) {
	if a.probe == nil {
		return
	}
	a.probe(ProbeEvent{Code: code, Network: network, A: av, B: bv, C: cv})
}
