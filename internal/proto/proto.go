// Package proto defines the primitive types shared by every layer of the
// Totem protocol stack: node and ring identifiers, the action vocabulary
// that the pure state machines emit, timer identifiers, and the events
// surfaced to the application (deliveries, fault reports, configuration
// changes).
//
// The SRP and RRP machines are deterministic, single-threaded state
// machines. They never touch the wall clock or spawn goroutines; instead
// every input carries a timestamp (a time.Duration measured from an
// arbitrary epoch) and every output is an Action executed by a driver —
// either the discrete-event simulator (internal/sim) or the real-time
// runtime (internal/transport).
package proto

import (
	"fmt"
	"time"
)

// NodeID identifies a processor on the ring. IDs are compared numerically;
// the smallest ID in a membership acts as the ring representative. The zero
// value is reserved and never identifies a live node.
type NodeID uint32

// String implements fmt.Stringer.
func (n NodeID) String() string { return fmt.Sprintf("n%d", uint32(n)) }

// BroadcastID is the destination used for ring-wide broadcast sends.
const BroadcastID NodeID = 0

// RingID identifies a ring configuration. A new RingID is minted by the
// membership protocol each time a new ring forms: Rep is the representative
// (smallest member ID) and Epoch increases monotonically across
// configurations observed by any member.
type RingID struct {
	Rep   NodeID
	Epoch uint32
}

// String implements fmt.Stringer.
func (r RingID) String() string { return fmt.Sprintf("ring(%s,%d)", r.Rep, r.Epoch) }

// Less orders ring identifiers by (Epoch, Rep).
func (r RingID) Less(o RingID) bool {
	if r.Epoch != o.Epoch {
		return r.Epoch < o.Epoch
	}
	return r.Rep < o.Rep
}

// Time is a point in virtual or real time, measured as an offset from the
// driver's epoch. Durations between Times behave as expected.
type Time = time.Duration

// ReplicationStyle selects how the RRP layer maps protocol traffic onto the
// redundant networks (paper §4).
type ReplicationStyle int

// Replication styles implemented by internal/core.
const (
	// ReplicationNone runs the SRP directly on network 0 with no
	// redundancy. It is the paper's "no replication" baseline.
	ReplicationNone ReplicationStyle = iota + 1
	// ReplicationActive sends every message and token on all non-faulty
	// networks simultaneously (paper §5).
	ReplicationActive
	// ReplicationPassive sends each message and token on exactly one
	// network, chosen round-robin (paper §6).
	ReplicationPassive
	// ReplicationActivePassive sends each message and token on K of the N
	// networks, with the window advancing round-robin (paper §7).
	ReplicationActivePassive
)

// String implements fmt.Stringer.
func (s ReplicationStyle) String() string {
	switch s {
	case ReplicationNone:
		return "none"
	case ReplicationActive:
		return "active"
	case ReplicationPassive:
		return "passive"
	case ReplicationActivePassive:
		return "active-passive"
	default:
		return fmt.Sprintf("ReplicationStyle(%d)", int(s))
	}
}

// Valid reports whether s is one of the defined styles.
func (s ReplicationStyle) Valid() bool {
	return s >= ReplicationNone && s <= ReplicationActivePassive
}
