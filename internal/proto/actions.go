package proto

import (
	"fmt"
	"time"
)

// Action is one output of a protocol state machine. Drivers (the simulator
// or the real-time runtime) execute actions in the order they were emitted.
type Action interface {
	isAction()
}

// SendPacket transmits an encoded packet on one network. Dest is a node ID
// for unicast (token passing) or BroadcastID for ring-wide broadcast.
//
// SendPacket travels as *SendPacket inside Action: boxing a pointer is
// allocation-free, which keeps the per-packet fan-out (one action per
// network, several per token visit) off the heap. The objects come from a
// free list replenished by Recycle, so a driver must copy any field it
// needs after recycling a batch.
type SendPacket struct {
	Network int
	Dest    NodeID
	Data    []byte
}

// SetTimer arms (or re-arms) the timer identified by ID to fire After from
// now. Arming an already-armed timer replaces its deadline.
type SetTimer struct {
	ID    TimerID
	After time.Duration
}

// CancelTimer disarms the identified timer. Cancelling an unarmed timer is
// a no-op.
type CancelTimer struct {
	ID TimerID
}

// Deliver hands a totally-ordered application message up to the user.
type Deliver struct {
	Msg Delivery
}

// Fault surfaces an RRP network-fault report to the user (paper §3: the
// protocol "raises an alarm" while the system stays operational).
type Fault struct {
	Report FaultReport
}

// FaultCleared surfaces an RRP recovery report: a previously faulty
// network passed its probation and was automatically readmitted. The
// counterpart of Fault, so operators see recovery as well as failure.
type FaultCleared struct {
	Report ClearReport
}

// Config surfaces a membership configuration change to the user.
type Config struct {
	Change ConfigChange
}

// BulkSignal surfaces a bulk-transfer lane event (chunk acknowledgement or
// configuration-change rewind notice) to the sender-side transfer manager.
type BulkSignal struct {
	Ev BulkEvent
}

func (*SendPacket) isAction()  {}
func (SetTimer) isAction()     {}
func (CancelTimer) isAction()  {}
func (Deliver) isAction()      {}
func (Fault) isAction()        {}
func (FaultCleared) isAction() {}
func (Config) isAction()       {}
func (BulkSignal) isAction()   {}

// Delivery is a totally-ordered message delivered to the application.
type Delivery struct {
	// Ring is the configuration the message was ordered in.
	Ring RingID
	// Sender is the node that originated the message.
	Sender NodeID
	// Seq is the global packet sequence number that completed the message;
	// deliveries within one ring are strictly ordered by Seq and identical
	// at every member.
	Seq uint32
	// Payload is the application payload. The slice is a read-only view
	// that may alias buffers the protocol retains for retransmission
	// until the safe horizon passes; the receiver may keep it but must
	// copy before mutating.
	Payload []byte
	// Transitional marks messages delivered in a transitional
	// configuration during membership recovery (extended virtual
	// synchrony).
	Transitional bool
	// Bulk marks a completed bulk transfer reassembled from the bulk lane:
	// Payload is the whole multi-chunk transfer (owned by the receiver)
	// and Seq is the sequence number of the packet that completed it.
	Bulk bool
	// Shard is the ring shard the message was ordered on. The protocol
	// machines never set it: a multi-ring node tags it at the delivery
	// fan-in, so it is always 0 on a single-ring node.
	Shard int
}

// BulkEventKind classifies bulk-lane sender events.
type BulkEventKind int

// Bulk event kinds.
const (
	// BulkAcked: the sender delivered its own bulk chunk — the ring-wide
	// acknowledgement that every member of the configuration ordered it.
	BulkAcked BulkEventKind = iota + 1
	// BulkReconfig: a regular configuration was installed; senders must
	// rewind in-flight transfers to their last contiguous acknowledged
	// offset and re-send (receivers deduplicate).
	BulkReconfig
)

// BulkEvent is one bulk-lane sender event.
type BulkEvent struct {
	Kind BulkEventKind
	// ID is the transfer identifier (sender-local); zero for BulkReconfig.
	ID uint64
	// Offset and Len locate the acknowledged chunk within the transfer.
	Offset uint64
	Len    int
	// Time is the (virtual or real) time of the event.
	Time Time
}

// FaultReport describes a detected network fault (paper §3). The protocol
// marks the network faulty, stops sending on it, and keeps operating on the
// remaining networks.
type FaultReport struct {
	// Network is the index of the network declared faulty.
	Network int
	// Reason is a human-readable diagnosis (e.g. which monitor fired).
	Reason string
	// Time is the (virtual or real) time of detection.
	Time Time
	// Shard is the ring shard whose monitors raised the report (tagged at
	// the multi-ring fan-in; 0 on a single-ring node).
	Shard int
}

// String implements fmt.Stringer.
func (f FaultReport) String() string {
	return fmt.Sprintf("network %d faulty at %v: %s", f.Network, f.Time, f.Reason)
}

// ClearReport describes the automatic readmission of a healed network: the
// RRP recovery monitor observed clean receptions on the faulty network for
// a full probation period and re-enabled it without operator action.
type ClearReport struct {
	// Network is the index of the readmitted network.
	Network int
	// Probation is the number of consecutive clean decay windows the
	// network had to serve. It grows exponentially under flap damping, so
	// a rising value across reports identifies an oscillating network.
	Probation int
	// Time is the (virtual or real) time of readmission.
	Time Time
	// Shard is the ring shard that readmitted the network (tagged at the
	// multi-ring fan-in; 0 on a single-ring node).
	Shard int
}

// String implements fmt.Stringer.
func (c ClearReport) String() string {
	return fmt.Sprintf("network %d readmitted at %v after %d clean windows", c.Network, c.Time, c.Probation)
}

// ConfigChange reports a membership change. Per extended virtual synchrony
// a regular configuration is preceded by a transitional configuration that
// scopes the messages delivered between the old and new memberships.
type ConfigChange struct {
	Ring         RingID
	Members      []NodeID
	Transitional bool
	// Shard is the ring shard whose membership changed (tagged at the
	// multi-ring fan-in; 0 on a single-ring node).
	Shard int
}

// String implements fmt.Stringer.
func (c ConfigChange) String() string {
	kind := "regular"
	if c.Transitional {
		kind = "transitional"
	}
	return fmt.Sprintf("%s config %v members %v", kind, c.Ring, c.Members)
}

// Actions is an append-only buffer the machines emit into. The zero value
// is ready to use.
//
// Drivers that run the protocol in a loop can avoid allocating a fresh
// backing array per event by returning drained batches with Recycle; the
// next emission after a Drain reuses the most recently recycled array.
// Reuse is deliberately not done in place on Drain because handlers can
// re-enter the machine while a batch is still being executed (e.g. an
// application submitting from its delivery callback).
type Actions struct {
	list   []Action
	free   [][]Action
	spFree []*SendPacket
	// probe, when non-nil, receives typed in-machine events (see probe.go).
	// Kept here so every machine layer sharing the buffer shares the hook.
	probe ProbeFunc
}

// Send appends a SendPacket action.
func (a *Actions) Send(network int, dest NodeID, data []byte) {
	a.grab()
	var sp *SendPacket
	if n := len(a.spFree); n > 0 {
		sp = a.spFree[n-1]
		a.spFree = a.spFree[:n-1]
	} else {
		sp = new(SendPacket)
	}
	sp.Network, sp.Dest, sp.Data = network, dest, data
	a.list = append(a.list, sp)
}

// grab installs a recycled backing array when the buffer is empty.
func (a *Actions) grab() {
	if a.list == nil && len(a.free) > 0 {
		a.list = a.free[len(a.free)-1]
		a.free = a.free[:len(a.free)-1]
	}
}

// SetTimer appends a SetTimer action.
func (a *Actions) SetTimer(id TimerID, after time.Duration) {
	a.grab()
	a.list = append(a.list, SetTimer{ID: id, After: after})
}

// CancelTimer appends a CancelTimer action.
func (a *Actions) CancelTimer(id TimerID) {
	a.grab()
	a.list = append(a.list, CancelTimer{ID: id})
}

// Deliver appends a Deliver action.
func (a *Actions) Deliver(d Delivery) {
	a.grab()
	a.list = append(a.list, Deliver{Msg: d})
}

// Fault appends a Fault action.
func (a *Actions) Fault(r FaultReport) {
	a.grab()
	a.list = append(a.list, Fault{Report: r})
}

// FaultCleared appends a FaultCleared action.
func (a *Actions) FaultCleared(r ClearReport) {
	a.grab()
	a.list = append(a.list, FaultCleared{Report: r})
}

// Config appends a Config action.
func (a *Actions) Config(c ConfigChange) {
	a.grab()
	a.list = append(a.list, Config{Change: c})
}

// Bulk appends a BulkSignal action.
func (a *Actions) Bulk(e BulkEvent) {
	a.grab()
	a.list = append(a.list, BulkSignal{Ev: e})
}

// Append appends an arbitrary action.
func (a *Actions) Append(act Action) {
	a.grab()
	a.list = append(a.list, act)
}

// Drain returns the buffered actions and resets the buffer.
func (a *Actions) Drain() []Action {
	out := a.list
	a.list = nil
	return out
}

// Recycle returns a batch obtained from Drain once the driver has finished
// executing it. The backing array is cleared (so recycled batches do not
// pin packet buffers or payloads) and reused by a later emission. Callers
// must not touch the batch afterwards.
func (a *Actions) Recycle(batch []Action) {
	if cap(batch) == 0 {
		return
	}
	for _, act := range batch {
		if sp, ok := act.(*SendPacket); ok {
			sp.Data = nil
			if len(a.spFree) < 256 {
				a.spFree = append(a.spFree, sp)
			}
		}
	}
	clear(batch[:cap(batch)])
	if len(a.free) < 4 {
		a.free = append(a.free, batch[:0])
	}
}

// Len returns the number of buffered actions.
func (a *Actions) Len() int { return len(a.list) }
