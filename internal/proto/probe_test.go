package proto

import "testing"

func TestProbeNilIsFree(t *testing.T) {
	var a Actions
	if a.ProbeEnabled() {
		t.Fatal("fresh Actions claims an installed probe")
	}
	// With no probe installed, emission must produce nothing and cost
	// nothing: no events, no allocations — a single branch per site.
	allocs := testing.AllocsPerRun(1000, func() {
		a.Probe(ProbeTokenGathered, 0, 1, 2, 3)
		a.Probe(ProbePhase, -1, 4, 5, 0)
	})
	if allocs != 0 {
		t.Fatalf("nil probe allocated %.1f per run, want 0", allocs)
	}
	if got := a.Drain(); len(got) != 0 {
		t.Fatalf("nil probe appended %d actions", len(got))
	}
}

func TestProbeDelivery(t *testing.T) {
	var a Actions
	var got []ProbeEvent
	a.SetProbe(func(e ProbeEvent) { got = append(got, e) })
	if !a.ProbeEnabled() {
		t.Fatal("probe not reported enabled")
	}
	a.Probe(ProbeMonitorThreshold, 1, 10, 20, 30)
	if len(got) != 1 {
		t.Fatalf("got %d events, want 1", len(got))
	}
	e := got[0]
	if e.Code != ProbeMonitorThreshold || e.Network != 1 || e.A != 10 || e.B != 20 || e.C != 30 {
		t.Fatalf("event fields wrong: %+v", e)
	}
	a.SetProbe(nil)
	a.Probe(ProbeTokenGated, -1, 1, 0, 0)
	if len(got) != 1 {
		t.Fatal("probe fired after removal")
	}
}

func TestProbeCodeStrings(t *testing.T) {
	codes := []ProbeCode{
		ProbeTokenGathered, ProbeTokenGated, ProbeTokenTimedOut,
		ProbeTokenDiscarded, ProbeMonitorThreshold, ProbeMonitorDecay,
		ProbeProbation, ProbeProbeSent, ProbeFlapBackoff,
		ProbeRetransRequested, ProbeRetransServed, ProbeFlowStall,
		ProbePhase, ProbeTokenLoss,
	}
	seen := map[string]bool{}
	for _, c := range codes {
		s := c.String()
		if s == "" || seen[s] {
			t.Fatalf("code %d has empty or duplicate string %q", c, s)
		}
		seen[s] = true
	}
	if ProbeCode(0).String() == codes[0].String() {
		t.Fatal("zero code collides with a real code")
	}
}
