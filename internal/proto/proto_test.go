package proto

import (
	"strings"
	"testing"
	"time"
)

func TestNodeIDString(t *testing.T) {
	if got := NodeID(42).String(); got != "n42" {
		t.Fatalf("String = %q", got)
	}
}

func TestRingIDString(t *testing.T) {
	r := RingID{Rep: 3, Epoch: 7}
	if got := r.String(); got != "ring(n3,7)" {
		t.Fatalf("String = %q", got)
	}
}

func TestRingIDLess(t *testing.T) {
	cases := []struct {
		a, b RingID
		want bool
	}{
		{RingID{Rep: 1, Epoch: 1}, RingID{Rep: 1, Epoch: 2}, true},
		{RingID{Rep: 1, Epoch: 2}, RingID{Rep: 1, Epoch: 1}, false},
		{RingID{Rep: 1, Epoch: 5}, RingID{Rep: 2, Epoch: 5}, true},
		{RingID{Rep: 2, Epoch: 5}, RingID{Rep: 1, Epoch: 5}, false},
		{RingID{Rep: 1, Epoch: 1}, RingID{Rep: 1, Epoch: 1}, false},
	}
	for _, tc := range cases {
		if got := tc.a.Less(tc.b); got != tc.want {
			t.Errorf("%v.Less(%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestReplicationStyleString(t *testing.T) {
	cases := map[ReplicationStyle]string{
		ReplicationNone:          "none",
		ReplicationActive:        "active",
		ReplicationPassive:       "passive",
		ReplicationActivePassive: "active-passive",
		ReplicationStyle(99):     "ReplicationStyle(99)",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(s), got, want)
		}
	}
}

func TestReplicationStyleValid(t *testing.T) {
	for _, s := range []ReplicationStyle{ReplicationNone, ReplicationActive, ReplicationPassive, ReplicationActivePassive} {
		if !s.Valid() {
			t.Errorf("%v not valid", s)
		}
	}
	for _, s := range []ReplicationStyle{0, 5, -1} {
		if s.Valid() {
			t.Errorf("%d wrongly valid", int(s))
		}
	}
}

func TestTimerClassStrings(t *testing.T) {
	classes := []TimerClass{
		TimerTokenLoss, TimerTokenRetransmit, TimerJoin, TimerConsensus,
		TimerCommitRetransmit, TimerMergeDetect, TimerTokenHold,
		TimerRRPToken, TimerRRPDecay,
	}
	seen := map[string]bool{}
	for _, c := range classes {
		s := c.String()
		if s == "" || seen[s] {
			t.Errorf("class %d has empty or duplicate string %q", uint8(c), s)
		}
		seen[s] = true
	}
	if got := TimerClass(200).String(); got != "TimerClass(200)" {
		t.Fatalf("unknown class String = %q", got)
	}
}

func TestTimerIDString(t *testing.T) {
	if got := (TimerID{Class: TimerJoin}).String(); got != "join" {
		t.Fatalf("String = %q", got)
	}
	if got := (TimerID{Class: TimerJoin, Arg: 3}).String(); got != "join/3" {
		t.Fatalf("String = %q", got)
	}
}

func TestTimerIDIsRRP(t *testing.T) {
	if (TimerID{Class: TimerTokenLoss}).IsRRP() {
		t.Fatal("SRP timer classified as RRP")
	}
	if !(TimerID{Class: TimerRRPToken}).IsRRP() {
		t.Fatal("RRP token timer not classified as RRP")
	}
	if !(TimerID{Class: TimerRRPDecay}).IsRRP() {
		t.Fatal("RRP decay timer not classified as RRP")
	}
}

func TestActionsBufferAccumulatesAndDrains(t *testing.T) {
	var a Actions
	a.Send(1, 2, []byte("x"))
	a.SetTimer(TimerID{Class: TimerJoin}, time.Second)
	a.CancelTimer(TimerID{Class: TimerJoin})
	a.Deliver(Delivery{Sender: 1, Seq: 2})
	a.Fault(FaultReport{Network: 1})
	a.Config(ConfigChange{})
	a.Append(&SendPacket{Network: 0})
	if a.Len() != 7 {
		t.Fatalf("Len = %d", a.Len())
	}
	got := a.Drain()
	if len(got) != 7 {
		t.Fatalf("Drain returned %d actions", len(got))
	}
	if a.Len() != 0 || len(a.Drain()) != 0 {
		t.Fatal("buffer not reset after drain")
	}
	// Types in emission order.
	if _, ok := got[0].(*SendPacket); !ok {
		t.Fatalf("action 0 is %T", got[0])
	}
	if st, ok := got[1].(SetTimer); !ok || st.After != time.Second {
		t.Fatalf("action 1 is %#v", got[1])
	}
	if _, ok := got[2].(CancelTimer); !ok {
		t.Fatalf("action 2 is %T", got[2])
	}
	if d, ok := got[3].(Deliver); !ok || d.Msg.Seq != 2 {
		t.Fatalf("action 3 is %#v", got[3])
	}
	if _, ok := got[4].(Fault); !ok {
		t.Fatalf("action 4 is %T", got[4])
	}
	if _, ok := got[5].(Config); !ok {
		t.Fatalf("action 5 is %T", got[5])
	}
}

func TestActionsRecycleReusesBackingArray(t *testing.T) {
	var a Actions
	a.Send(0, 1, []byte("x"))
	a.Send(1, 1, []byte("x"))
	batch := a.Drain()
	a.Recycle(batch)
	// The recycled array must be cleared so it pins no buffers.
	if batch[:cap(batch)][0] != nil {
		t.Fatal("recycled batch not cleared")
	}
	a.Send(0, 2, []byte("y"))
	next := a.Drain()
	if &next[0] != &batch[0] {
		t.Fatal("emission after recycle should reuse the returned array")
	}
	if sp, ok := next[0].(*SendPacket); !ok || sp.Dest != 2 {
		t.Fatalf("recycled batch carries wrong action: %#v", next[0])
	}
}

func TestActionsRecycleToleratesEmptyBatch(t *testing.T) {
	var a Actions
	a.Recycle(nil)
	a.Recycle(a.Drain())
	a.Send(0, 1, nil)
	if a.Len() != 1 {
		t.Fatalf("Len = %d", a.Len())
	}
}

func TestFaultReportString(t *testing.T) {
	f := FaultReport{Network: 1, Reason: "dead", Time: time.Second}
	s := f.String()
	for _, want := range []string{"network 1", "dead", "1s"} {
		if !strings.Contains(s, want) {
			t.Errorf("FaultReport.String() = %q missing %q", s, want)
		}
	}
}

func TestConfigChangeString(t *testing.T) {
	c := ConfigChange{Ring: RingID{Rep: 1, Epoch: 2}, Members: []NodeID{1, 2}, Transitional: true}
	if !strings.Contains(c.String(), "transitional") {
		t.Fatalf("String = %q", c.String())
	}
	c.Transitional = false
	if !strings.Contains(c.String(), "regular") {
		t.Fatalf("String = %q", c.String())
	}
}
