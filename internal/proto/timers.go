package proto

import "fmt"

// TimerClass enumerates every timer used by the stack. Classes are
// partitioned between the SRP machine and the RRP layer so the stack can
// route expirations to the right machine without inspecting state.
type TimerClass uint8

// Timer classes. SRP timers come first, RRP timers after TimerRRPBase.
const (
	// TimerTokenLoss fires when no token has been received for the
	// token-loss timeout; it triggers the membership protocol (paper §2).
	TimerTokenLoss TimerClass = iota + 1
	// TimerTokenRetransmit periodically resends the last token sent until
	// evidence of its reception arrives (paper §2).
	TimerTokenRetransmit
	// TimerJoin resends the join message while in the Gather state.
	TimerJoin
	// TimerConsensus bounds how long Gather waits for unanimous join
	// agreement before declaring silent nodes failed.
	TimerConsensus
	// TimerCommitRetransmit resends the commit token while in the Commit
	// or Recovery handoff.
	TimerCommitRetransmit
	// TimerMergeDetect drives the representative's periodic merge-detect
	// broadcast, letting rings separated by a healed partition find each
	// other.
	TimerMergeDetect
	// TimerTokenHold releases a token the representative held back on an
	// idle ring (a CPU courtesy, as in production Totem deployments).
	TimerTokenHold

	// TimerRRPBase is the first RRP-owned timer class; the stack routes
	// classes >= TimerRRPBase to the replication layer.
	TimerRRPBase
	// TimerRRPToken is the RRP token gather/hold timer: in active
	// replication it bounds the wait for the remaining token copies; in
	// passive replication it bounds how long a token is buffered while
	// messages are outstanding (paper §5, §6).
	TimerRRPToken
	// TimerRRPDecay drives the periodic decay/replenishment that stops
	// sporadic loss from accumulating into a false network-fault verdict
	// (requirements A6 and P5).
	TimerRRPDecay
)

// String implements fmt.Stringer.
func (c TimerClass) String() string {
	switch c {
	case TimerTokenLoss:
		return "token-loss"
	case TimerTokenRetransmit:
		return "token-retransmit"
	case TimerJoin:
		return "join"
	case TimerConsensus:
		return "consensus"
	case TimerCommitRetransmit:
		return "commit-retransmit"
	case TimerMergeDetect:
		return "merge-detect"
	case TimerTokenHold:
		return "token-hold"
	case TimerRRPToken:
		return "rrp-token"
	case TimerRRPDecay:
		return "rrp-decay"
	default:
		return fmt.Sprintf("TimerClass(%d)", uint8(c))
	}
}

// TimerID names one timer instance. Arg disambiguates multiple timers of
// the same class (unused by the current classes but kept for extension).
type TimerID struct {
	Class TimerClass
	Arg   uint32
}

// String implements fmt.Stringer.
func (id TimerID) String() string {
	if id.Arg == 0 {
		return id.Class.String()
	}
	return fmt.Sprintf("%s/%d", id.Class, id.Arg)
}

// IsRRP reports whether the timer belongs to the replication layer.
func (id TimerID) IsRRP() bool { return id.Class >= TimerRRPBase }
