package bulk

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"github.com/totem-rrp/totem/internal/proto"
)

func payload(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = seed + byte(i*7)
	}
	return b
}

func TestEnvelopeRoundTrip(t *testing.T) {
	data := payload(100, 3)
	msg := AppendChunk(nil, 42, 8192, 1<<20, data)
	if len(msg) != Overhead+100 {
		t.Fatalf("envelope size %d, want %d", len(msg), Overhead+100)
	}
	id, off, total, got, err := DecodeChunk(msg)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if id != 42 || off != 8192 || total != 1<<20 || !bytes.Equal(got, data) {
		t.Fatalf("round trip mismatch: id=%d off=%d total=%d", id, off, total)
	}
	if &got[0] != &msg[Overhead] {
		t.Fatal("DecodeChunk must alias msg, not copy")
	}
}

func TestEnvelopeAppendsToRecycledBuffer(t *testing.T) {
	buf := make([]byte, 0, 256)
	msg := AppendChunk(buf, 1, 0, 10, payload(10, 1))
	if &msg[0] != &buf[:1][0] {
		t.Fatal("AppendChunk must reuse the provided buffer's capacity")
	}
}

func TestEnvelopeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		payload(Overhead-1, 0),                  // short
		append([]byte{0x00}, payload(30, 0)...), // wrong magic
		AppendChunk(nil, 1, 11, 10, nil),        // off > total
		AppendChunk(nil, 1, 5, 10, payload(6, 0)), // off+len > total
	}
	for i, c := range cases {
		if _, _, _, _, err := DecodeChunk(c); !errors.Is(err, ErrEnvelope) {
			t.Errorf("case %d: want ErrEnvelope, got %v", i, err)
		}
	}
}

func TestRxInOrderCompletion(t *testing.T) {
	r := NewRx(1<<20, 4)
	want := payload(1000, 9)
	var full []byte
	for off := 0; off < len(want); off += 300 {
		end := min(off+300, len(want))
		got, st := r.Add(1, 7, uint64(off), uint64(len(want)), want[off:end])
		if end < len(want) {
			if st != RxAccepted || got != nil {
				t.Fatalf("off %d: status %v", off, st)
			}
		} else {
			if st != RxCompleted {
				t.Fatalf("final chunk: status %v", st)
			}
			full = got
		}
	}
	if !bytes.Equal(full, want) {
		t.Fatal("reassembled transfer differs")
	}
	if r.Pending() != 0 {
		t.Fatalf("completed transfer still pending: %d", r.Pending())
	}
}

func TestRxDuplicatesAfterReconfigResend(t *testing.T) {
	// A sender rewinds to its acked prefix on configuration change and
	// re-sends; the receiver must dedupe against its own prefix.
	r := NewRx(1<<20, 4)
	want := payload(900, 2)
	r.Add(1, 1, 0, 900, want[:300])
	r.Add(1, 1, 300, 900, want[300:600])
	if _, st := r.Add(1, 1, 0, 900, want[:300]); st != RxDuplicate {
		t.Fatalf("resent prefix chunk: status %v", st)
	}
	if _, st := r.Add(1, 1, 300, 900, want[300:600]); st != RxDuplicate {
		t.Fatalf("resent prefix chunk: status %v", st)
	}
	full, st := r.Add(1, 1, 600, 900, want[600:])
	if st != RxCompleted || !bytes.Equal(full, want) {
		t.Fatalf("completion after dedupe: status %v", st)
	}
}

func TestRxMidStreamJoinerNeverCompletes(t *testing.T) {
	r := NewRx(1<<20, 4)
	if _, st := r.Add(1, 5, 300, 900, payload(300, 0)); st != RxDropped {
		t.Fatalf("mid-stream first chunk: status %v, want RxDropped", st)
	}
	// Later chunks of the same transfer are dropped without partial state.
	if _, st := r.Add(1, 5, 600, 900, payload(300, 0)); st != RxDropped {
		t.Fatal("skipped transfer accepted a chunk")
	}
	if r.Pending() != 0 {
		t.Fatal("skipped transfer created partial state")
	}
	// A different transfer from the same sender is unaffected.
	if _, st := r.Add(1, 6, 0, 100, payload(50, 1)); st != RxAccepted {
		t.Fatalf("fresh transfer: status %v", st)
	}
}

func TestRxLimits(t *testing.T) {
	r := NewRx(1000, 2)
	if _, st := r.Add(1, 1, 0, 1001, payload(10, 0)); st != RxDropped {
		t.Fatal("over-MaxTransfer announcement accepted")
	}
	if _, st := r.Add(1, 2, 0, 0, nil); st != RxDropped {
		t.Fatal("zero-length announcement accepted")
	}
	r.Add(1, 3, 0, 100, payload(10, 0))
	r.Add(1, 4, 0, 100, payload(10, 0))
	if _, st := r.Add(1, 5, 0, 100, payload(10, 0)); st != RxDropped {
		t.Fatal("MaxPartials not enforced")
	}
	if r.Pending() != 2 {
		t.Fatalf("pending %d, want 2", r.Pending())
	}
}

func TestRxPoisonsMismatchedEnvelope(t *testing.T) {
	r := NewRx(1<<20, 4)
	r.Add(1, 1, 0, 900, payload(300, 0))
	if _, st := r.Add(1, 1, 300, 800, payload(300, 0)); st != RxDropped {
		t.Fatal("total mismatch accepted")
	}
	if r.Pending() != 0 {
		t.Fatal("poisoned transfer still pending")
	}
	if _, st := r.Add(1, 1, 600, 900, payload(300, 0)); st != RxDropped {
		t.Fatal("poisoned transfer resurrected")
	}
}

func TestRxRetainDropsDepartedSenders(t *testing.T) {
	r := NewRx(1<<20, 8)
	r.Add(1, 1, 0, 900, payload(300, 0))
	r.Add(2, 1, 0, 900, payload(300, 0))
	r.Add(3, 9, 100, 900, payload(10, 0)) // skip-marked
	dropped := r.Retain(func(id proto.NodeID) bool { return id == 2 })
	if dropped != 1 || r.Pending() != 1 {
		t.Fatalf("dropped %d pending %d, want 1/1", dropped, r.Pending())
	}
	// Sender 3 left; if it comes back its ids start fresh — and the skip
	// mark must not linger. A new transfer with off=0 is accepted.
	if _, st := r.Add(3, 9, 0, 100, payload(10, 0)); st != RxAccepted {
		t.Fatalf("returning sender: status %v", st)
	}
}

func TestRxInterleavedSendersAndRandomOrder(t *testing.T) {
	// Chunks from different senders interleave arbitrarily; within one
	// sender the range map even tolerates out-of-order arrival.
	rng := rand.New(rand.NewSource(7))
	r := NewRx(1<<20, 16)
	const n = 2000
	wants := map[proto.NodeID][]byte{1: payload(n, 1), 2: payload(n, 2)}
	type piece struct {
		sender proto.NodeID
		off    int
	}
	// Each sender's off=0 piece must come first for that sender (an
	// off>0 first sighting is a mid-stream join and gets skipped); the
	// rest arrive in any order.
	pieces := []piece{{1, 0}, {2, 0}}
	var rest []piece
	for s := proto.NodeID(1); s <= 2; s++ {
		for off := 128; off < n; off += 128 {
			rest = append(rest, piece{s, off})
		}
	}
	rng.Shuffle(len(rest), func(i, j int) { rest[i], rest[j] = rest[j], rest[i] })
	pieces = append(pieces, rest...)
	done := map[proto.NodeID][]byte{}
	for _, pc := range pieces {
		w := wants[pc.sender]
		end := min(pc.off+128, n)
		if full, st := r.Add(pc.sender, 11, uint64(pc.off), n, w[pc.off:end]); st == RxCompleted {
			done[pc.sender] = full
		}
	}
	for s, w := range wants {
		if !bytes.Equal(done[s], w) {
			t.Fatalf("sender %d: transfer incomplete or corrupted", s)
		}
	}
}

func TestSendStateWindowAndCompletion(t *testing.T) {
	s := NewSendState(1000, 300, 2, 3)
	if s.Chunks() != 4 {
		t.Fatalf("chunks %d, want 4", s.Chunks())
	}
	if off, end := s.Range(3); off != 900 || end != 1000 {
		t.Fatalf("final range [%d,%d)", off, end)
	}
	i0, ok0 := s.Next()
	i1, ok1 := s.Next()
	if !ok0 || !ok1 || i0 != 0 || i1 != 1 {
		t.Fatalf("first window: %d/%v %d/%v", i0, ok0, i1, ok1)
	}
	if _, ok := s.Next(); ok {
		t.Fatal("window of 2 allowed a third in-flight chunk")
	}
	s.Ack(i0)
	if a, total := s.Progress(); a != 300 || total != 1000 {
		t.Fatalf("progress %d/%d", a, total)
	}
	s.Ack(i1)
	for !s.Done() {
		idx, ok := s.Next()
		if !ok {
			t.Fatal("stalled")
		}
		s.Ack(idx)
	}
	if a, _ := s.Progress(); a != 1000 {
		t.Fatalf("done progress %d", a)
	}
}

func TestSendStateOutOfOrderAckPrefix(t *testing.T) {
	s := NewSendState(900, 300, 3, 0)
	a, _ := s.Next()
	b, _ := s.Next()
	c, _ := s.Next()
	s.Ack(c)
	if p, _ := s.Progress(); p != 0 {
		t.Fatalf("prefix advanced past a gap: %d", p)
	}
	s.Ack(a)
	if p, _ := s.Progress(); p != 300 {
		t.Fatalf("prefix %d, want 300", p)
	}
	s.Ack(b)
	if !s.Done() {
		t.Fatal("all acked but not done")
	}
}

func TestSendStateRetriesExhaust(t *testing.T) {
	s := NewSendState(100, 100, 1, 2)
	for try := 0; try < 3; try++ {
		idx, ok := s.Next()
		if !ok || idx != 0 {
			t.Fatalf("try %d: %d/%v", try, idx, ok)
		}
		if !s.Fail(idx) && try < 2 {
			t.Fatalf("retry budget spent early on try %d", try)
		}
	}
	if _, ok := s.Next(); ok {
		t.Fatal("failed transfer still sendable")
	}
	if !errors.Is(s.Err(), ErrRetriesExhausted) {
		t.Fatalf("err = %v", s.Err())
	}
	if s.Done() {
		t.Fatal("failed transfer reports done")
	}
}

func TestSendStateReconfigResendsFromPrefix(t *testing.T) {
	s := NewSendState(1200, 300, 4, 1)
	i0, _ := s.Next()
	i1, _ := s.Next()
	i2, _ := s.Next()
	s.Ack(i0)
	s.Ack(i2) // beyond-gap ack: uncertain after reconfig
	_ = i1
	s.Reconfig()
	// Everything >= the contiguous prefix (chunk 1) resends, including the
	// previously-acked chunk 2.
	var order []int
	for {
		idx, ok := s.Next()
		if !ok {
			break
		}
		order = append(order, idx)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("resend order %v, want [1 2 3]", order)
	}
	for _, idx := range order {
		s.Ack(idx)
	}
	if !s.Done() {
		t.Fatal("transfer incomplete after post-reconfig resend")
	}
}

func TestSendStateReconfigForgivesRetries(t *testing.T) {
	s := NewSendState(100, 100, 1, 1)
	idx, _ := s.Next()
	s.Fail(idx)
	s.Reconfig()
	// Attempts were reset: two more tries fit in the budget of 1 retry.
	idx, _ = s.Next()
	s.Ack(idx)
	if !s.Done() {
		t.Fatal("transfer incomplete")
	}
}

func TestSendStateAgainstRx(t *testing.T) {
	// Close the loop: drive a SendState's chunks through an Rx with a
	// mid-transfer reconfig on both sides.
	want := payload(10240, 5)
	s := NewSendState(len(want), 1024, 4, 2)
	r := NewRx(1<<20, 4)
	var full []byte
	step := 0
	for !s.Done() {
		idx, ok := s.Next()
		if !ok {
			t.Fatal("stalled")
		}
		step++
		if step == 5 {
			s.Reconfig() // chunks in flight at the change resend
			continue
		}
		off, end := s.Range(idx)
		if got, st := r.Add(1, 1, uint64(off), uint64(len(want)), want[off:end]); st == RxCompleted {
			full = got
		}
		s.Ack(idx)
	}
	if !bytes.Equal(full, want) {
		t.Fatal("transfer corrupted through reconfig")
	}
}

func TestSendStateZeroByteTransfer(t *testing.T) {
	s := NewSendState(0, 1024, 1, 0)
	if s.Chunks() != 1 {
		t.Fatalf("chunks %d", s.Chunks())
	}
	idx, ok := s.Next()
	if !ok {
		t.Fatal("no chunk for empty transfer")
	}
	if off, end := s.Range(idx); off != 0 || end != 0 {
		t.Fatalf("range [%d,%d)", off, end)
	}
	s.Ack(idx)
	if !s.Done() {
		t.Fatal("empty transfer not done")
	}
}

// TestLateAckAfterReconfigDoesNotLeakWindow pins a stall found on the ring
// harness: Reconfig requeues in-flight chunks, then their acks from the
// abandoned ring arrive late and mark the requeued chunks acked. Next must
// skip those queue entries — resending them would consume window slots
// whose duplicate acks are suppressed as already-acked, wedging the
// transfer with phantom inflight chunks.
func TestLateAckAfterReconfigDoesNotLeakWindow(t *testing.T) {
	s := NewSendState(10*100, 100, 4, 2)
	sent := []int{}
	for {
		i, ok := s.Next()
		if !ok {
			break
		}
		sent = append(sent, i)
	}
	if len(sent) != 4 {
		t.Fatalf("window admitted %d chunks, want 4", len(sent))
	}
	s.Reconfig() // ring change: chunks 0-3 requeued, nothing acked yet
	for _, i := range sent {
		s.Ack(i) // late acks from the abandoned ring land after the requeue
	}
	// The requeued-but-now-acked chunks must not come back out of Next, and
	// the window must be fully available for the rest of the transfer.
	for want := 4; want < 10; want++ {
		i, ok := s.Next()
		if !ok {
			t.Fatalf("window wedged before chunk %d", want)
		}
		if i != want {
			t.Fatalf("Next returned chunk %d, want %d (acked chunk resent)", i, want)
		}
		s.Ack(i)
	}
	if !s.Done() {
		t.Fatal("transfer not done")
	}
}
