// Package bulk implements the chunked large-transfer layer that rides the
// ring's bulk lane: a tiny chunk envelope identifying (transfer, offset,
// total), a receiver-side reassembler with contiguous-prefix tracking, and
// a pure sender-side window/retry state machine.
//
// The ring's total order does the heavy lifting: every member — including
// the sender — delivers a transfer's chunks in the same order, so the
// sender's own delivery of a chunk doubles as a ring-wide acknowledgement,
// and a receiver's contiguous prefix only ever advances. The pieces here
// are deliberately pure (no goroutines, no clocks) so the SRP machine can
// host the receiver deterministically and the torture/simulation harness
// can drive every path.
package bulk

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/totem-rrp/totem/internal/proto"
)

// envelope layout: magic byte, transfer id, byte offset, total length —
// then the chunk's data. The magic byte guards against misrouted
// interactive traffic showing up on the bulk lane.
const (
	envMagic = 0xB7
	// Overhead is the envelope size prepended to every chunk's data.
	Overhead = 1 + 8 + 8 + 8
)

// ErrEnvelope reports a malformed bulk chunk envelope.
var ErrEnvelope = errors.New("bulk: malformed chunk envelope")

// AppendChunk appends the envelope for (id, off, total) followed by data to
// dst and returns the extended slice. dst may be nil or a recycled buffer.
func AppendChunk(dst []byte, id, off, total uint64, data []byte) []byte {
	dst = append(dst, envMagic)
	dst = binary.BigEndian.AppendUint64(dst, id)
	dst = binary.BigEndian.AppendUint64(dst, off)
	dst = binary.BigEndian.AppendUint64(dst, total)
	return append(dst, data...)
}

// DecodeChunk splits a bulk-lane message back into its envelope fields.
// data aliases msg; the caller must respect msg's lifetime.
func DecodeChunk(msg []byte) (id, off, total uint64, data []byte, err error) {
	if len(msg) < Overhead || msg[0] != envMagic {
		return 0, 0, 0, nil, ErrEnvelope
	}
	id = binary.BigEndian.Uint64(msg[1:])
	off = binary.BigEndian.Uint64(msg[9:])
	total = binary.BigEndian.Uint64(msg[17:])
	data = msg[Overhead:]
	if off > total || uint64(len(data)) > total-off {
		return 0, 0, 0, nil, fmt.Errorf("%w: off %d + %d bytes exceeds total %d", ErrEnvelope, off, len(data), total)
	}
	return id, off, total, data, nil
}

// Key identifies one transfer ring-wide.
type Key struct {
	Sender proto.NodeID
	ID     uint64
}

// AddStatus classifies the outcome of Rx.Add.
type AddStatus int

const (
	// RxAccepted: chunk stored, transfer still incomplete.
	RxAccepted AddStatus = iota
	// RxCompleted: this chunk completed the transfer.
	RxCompleted
	// RxDuplicate: chunk was already part of the contiguous prefix
	// (re-sent after a configuration change); ignored.
	RxDuplicate
	// RxDropped: chunk ignored — mid-stream join, over limits, or for a
	// transfer already being skipped.
	RxDropped
)

// transfer is one in-progress inbound transfer.
type transfer struct {
	buf    []byte
	total  uint64
	prefix uint64            // contiguous bytes received from 0
	ranges map[uint64]uint64 // non-contiguous received ranges: start -> end
}

// Rx reassembles inbound transfers, one partial per (sender, id). The
// total order makes chunks from one sender arrive in emit order, so in
// steady state the prefix advances without gaps; the range map only works
// when configuration changes reorder resends.
type Rx struct {
	// MaxTransfer bounds a single transfer's total length; larger
	// announcements are dropped (a malicious or buggy sender must not make
	// every member allocate unbounded memory).
	MaxTransfer int
	// MaxPartials bounds concurrent in-progress inbound transfers.
	MaxPartials int

	transfers map[Key]*transfer
	// skip marks transfers this member can never complete (it joined
	// mid-stream and missed the beginning); their chunks are dropped
	// without creating partial state.
	skip map[Key]struct{}
}

// NewRx returns an empty receiver with the given limits.
func NewRx(maxTransfer, maxPartials int) *Rx {
	return &Rx{
		MaxTransfer: maxTransfer,
		MaxPartials: maxPartials,
		transfers:   make(map[Key]*transfer),
		skip:        make(map[Key]struct{}),
	}
}

// Pending returns the number of in-progress inbound transfers.
func (r *Rx) Pending() int { return len(r.transfers) }

// Add processes one delivered bulk chunk. On RxCompleted the returned
// buffer holds the whole transfer and is owned by the caller; Rx forgets
// the transfer.
func (r *Rx) Add(sender proto.NodeID, id, off, total uint64, data []byte) ([]byte, AddStatus) {
	key := Key{Sender: sender, ID: id}
	if _, skipped := r.skip[key]; skipped {
		return nil, RxDropped
	}
	tr, ok := r.transfers[key]
	if !ok {
		if off != 0 {
			// Joined mid-transfer: the beginning can never arrive (the ring
			// does not retransmit across configurations), so the transfer is
			// unfinishable here. Skip it wholesale.
			r.markSkip(key)
			return nil, RxDropped
		}
		if total == 0 || (r.MaxTransfer > 0 && total > uint64(r.MaxTransfer)) {
			r.markSkip(key)
			return nil, RxDropped
		}
		if r.MaxPartials > 0 && len(r.transfers) >= r.MaxPartials {
			r.markSkip(key)
			return nil, RxDropped
		}
		tr = &transfer{buf: make([]byte, total), total: total}
		r.transfers[key] = tr
	}
	if total != tr.total || off+uint64(len(data)) > tr.total {
		// Envelope disagrees with the announcement; poison the transfer.
		delete(r.transfers, key)
		r.markSkip(key)
		return nil, RxDropped
	}
	end := off + uint64(len(data))
	if end <= tr.prefix {
		return nil, RxDuplicate
	}
	copy(tr.buf[off:end], data)
	if off <= tr.prefix {
		if end > tr.prefix {
			tr.prefix = end
		}
		// Fold in any ranges the new prefix now reaches.
		for len(tr.ranges) > 0 {
			merged := false
			for s, e := range tr.ranges {
				if s <= tr.prefix {
					if e > tr.prefix {
						tr.prefix = e
					}
					delete(tr.ranges, s)
					merged = true
				}
			}
			if !merged {
				break
			}
		}
	} else {
		if tr.ranges == nil {
			tr.ranges = make(map[uint64]uint64)
		}
		if e, dup := tr.ranges[off]; !dup || end > e {
			tr.ranges[off] = end
		}
	}
	if tr.prefix == tr.total {
		delete(r.transfers, key)
		return tr.buf, RxCompleted
	}
	return nil, RxAccepted
}

func (r *Rx) markSkip(key Key) {
	// The skip set is bounded: total order means a sender has few transfers
	// in flight, but guard against pathological id churn anyway.
	if len(r.skip) >= 1024 {
		clear(r.skip)
	}
	r.skip[key] = struct{}{}
}

// Retain drops partials (and skip marks) from senders keep rejects —
// called on configuration change with the new membership, since a departed
// sender's transfer can never complete. Returns the number of partials
// dropped.
func (r *Rx) Retain(keep func(proto.NodeID) bool) int {
	dropped := 0
	for key := range r.transfers {
		if !keep(key.Sender) {
			delete(r.transfers, key)
			dropped++
		}
	}
	for key := range r.skip {
		if !keep(key.Sender) {
			delete(r.skip, key)
		}
	}
	return dropped
}

// SendState is the pure sender-side state machine for one outbound
// transfer: fixed-size chunks behind an offset cursor, a bounded window of
// unacknowledged chunks, bounded per-chunk retries, and contiguous-prefix
// completion so a configuration change resumes from the last contiguous
// acknowledged offset.
type SendState struct {
	total     int
	chunkSize int
	window    int
	retries   int

	n        int // number of chunks
	prefix   int // chunks 0..prefix-1 contiguously acked
	acked    []bool
	attempts []int
	queue    []int // chunk indices awaiting (re)send, in order
	inflight int
	err      error
}

// ErrRetriesExhausted reports a chunk that failed more times than the
// transfer's retry budget allows.
var ErrRetriesExhausted = errors.New("bulk: chunk retries exhausted")

// NewSendState plans a transfer of total bytes in chunkSize pieces with at
// most window chunks unacknowledged at once and retries re-sends per chunk.
func NewSendState(total, chunkSize, window, retries int) *SendState {
	if total < 0 || chunkSize <= 0 || window <= 0 || retries < 0 {
		panic("bulk: invalid SendState parameters")
	}
	n := (total + chunkSize - 1) / chunkSize
	if n == 0 {
		n = 1 // zero-byte transfer still takes one (empty) chunk
	}
	s := &SendState{
		total: total, chunkSize: chunkSize, window: window, retries: retries,
		n: n, acked: make([]bool, n), attempts: make([]int, n),
		queue: make([]int, n),
	}
	for i := range s.queue {
		s.queue[i] = i
	}
	return s
}

// Chunks returns the number of chunks in the transfer.
func (s *SendState) Chunks() int { return s.n }

// Range returns chunk i's byte range [off, end).
func (s *SendState) Range(i int) (off, end int) {
	off = i * s.chunkSize
	end = off + s.chunkSize
	if end > s.total {
		end = s.total
	}
	return off, end
}

// ChunkAt maps a byte offset back to its chunk index.
func (s *SendState) ChunkAt(off int) int { return off / s.chunkSize }

// Next returns the next chunk index to send, respecting the window.
// ok is false when nothing is currently sendable (window full, queue
// drained, transfer done or failed). Chunks acknowledged while queued are
// skipped: after Reconfig a late ack from the abandoned ring can land on a
// requeued chunk, and resending it would consume a window slot that the
// duplicate's ack (suppressed as already-acked) never gives back.
func (s *SendState) Next() (idx int, ok bool) {
	if s.err != nil || s.inflight >= s.window {
		return 0, false
	}
	for len(s.queue) > 0 {
		idx = s.queue[0]
		s.queue = s.queue[1:]
		if s.acked[idx] {
			continue
		}
		s.inflight++
		s.attempts[idx]++
		return idx, true
	}
	return 0, false
}

// Ack records ring-wide acknowledgement (the sender delivered its own
// chunk) and advances the contiguous prefix.
func (s *SendState) Ack(idx int) {
	if idx < 0 || idx >= s.n || s.acked[idx] {
		return
	}
	s.acked[idx] = true
	if s.inflight > 0 {
		s.inflight--
	}
	for s.prefix < s.n && s.acked[s.prefix] {
		s.prefix++
	}
}

// Fail requeues a chunk whose submission was rejected (backpressure). It
// returns false — and poisons the transfer — once the chunk's retry budget
// is exhausted.
func (s *SendState) Fail(idx int) bool {
	if idx < 0 || idx >= s.n || s.acked[idx] {
		return true
	}
	if s.inflight > 0 {
		s.inflight--
	}
	if s.attempts[idx] > s.retries {
		s.err = fmt.Errorf("%w: chunk %d tried %d times", ErrRetriesExhausted, idx, s.attempts[idx])
		return false
	}
	s.queue = append([]int{idx}, s.queue...)
	return true
}

// Reconfig rewinds to the last contiguous acknowledged offset: every chunk
// at or beyond the prefix is requeued for (re)send, acknowledged or not,
// because delivery of in-flight chunks on the abandoned ring is uncertain
// for the members that just joined. Receivers deduplicate against their
// own prefix, so over-sending is safe. Retry attempts are forgiven — the
// failure was the ring's, not the chunk's.
func (s *SendState) Reconfig() {
	if s.err != nil || s.Done() {
		return
	}
	s.inflight = 0
	s.queue = s.queue[:0]
	for i := s.prefix; i < s.n; i++ {
		s.acked[i] = false
		s.attempts[i] = 0
		s.queue = append(s.queue, i)
	}
}

// Done reports whether every chunk has been acknowledged.
func (s *SendState) Done() bool { return s.prefix == s.n && s.err == nil }

// Err returns the terminal error, if the transfer failed.
func (s *SendState) Err() error { return s.err }

// Progress returns contiguously acknowledged bytes and the total.
func (s *SendState) Progress() (acked, total int) {
	a := s.prefix * s.chunkSize
	if a > s.total {
		a = s.total
	}
	return a, s.total
}
