package shard

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

func TestHashRangeAndStability(t *testing.T) {
	// Stable across runs/platforms: pin a couple of known mappings.
	if got := Hash([]byte("user:1234"), 8); got != Hash([]byte("user:1234"), 8) {
		t.Fatal("hash not deterministic")
	}
	counts := make([]int, 8)
	for i := 0; i < 4096; i++ {
		s := Hash([]byte(fmt.Sprintf("key-%d", i)), 8)
		if s < 0 || s >= 8 {
			t.Fatalf("hash out of range: %d", s)
		}
		counts[s]++
	}
	for s, n := range counts {
		if n < 4096/8/2 {
			t.Fatalf("shard %d badly underloaded: %d/4096", s, n)
		}
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	app := WrapApp(77, []byte("payload"))
	kind, ts, body, err := Unwrap(app)
	if err != nil || kind != KindApp || ts != 77 || !bytes.Equal(body, []byte("payload")) {
		t.Fatalf("app round trip: kind=%#x ts=%d body=%q err=%v", kind, ts, body, err)
	}
	mk := WrapMarker(12)
	kind, ts, body, err = Unwrap(mk)
	if err != nil || kind != KindMarker || ts != 12 || len(body) != 0 {
		t.Fatalf("marker round trip: kind=%#x ts=%d body=%q err=%v", kind, ts, body, err)
	}
	for _, bad := range [][]byte{nil, {KindApp}, {0x7f, 0, 0, 0, 0, 0, 0, 0, 0}} {
		if _, _, _, err := Unwrap(bad); !errors.Is(err, ErrEnvelope) {
			t.Fatalf("Unwrap(%v) = %v, want ErrEnvelope", bad, err)
		}
	}
}

func TestClock(t *testing.T) {
	var c Clock
	if c.Tick() != 1 || c.Tick() != 2 {
		t.Fatal("Tick must count from 1")
	}
	c.Observe(100)
	if got := c.Tick(); got != 101 {
		t.Fatalf("Tick after Observe(100) = %d, want 101", got)
	}
	c.Observe(50) // stale observation must not rewind
	if got := c.Tick(); got != 102 {
		t.Fatalf("Tick after stale Observe = %d, want 102", got)
	}
}

// stream is one shard's delivered sequence for merge tests.
type stream []Item

// refMerge computes the specification order: effective timestamps are the
// per-shard running max, global order sorts by (eff, shard, index),
// markers removed.
func refMerge(streams []stream) []string {
	type ref struct {
		eff      uint64
		shard, i int
		it       Item
	}
	var all []ref
	for s, st := range streams {
		var eff uint64
		for i, it := range st {
			if it.TS > eff {
				eff = it.TS
			}
			all = append(all, ref{eff, s, i, it})
		}
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].eff != all[b].eff {
			return all[a].eff < all[b].eff
		}
		if all[a].shard != all[b].shard {
			return all[a].shard < all[b].shard
		}
		return all[a].i < all[b].i
	})
	var out []string
	for _, r := range all {
		if !r.it.Marker {
			out = append(out, r.it.Payload.(string))
		}
	}
	return out
}

// drain pops everything currently releasable.
func drain(m *Merge, out *[]string) {
	for {
		it, _, ok := m.Pop()
		if !ok {
			return
		}
		*out = append(*out, it.Payload.(string))
	}
}

// TestMergeDeterministicAcrossInterleavings is the core determinism
// property: any real-time interleaving of per-shard pushes releases the
// exact reference order.
func TestMergeDeterministicAcrossInterleavings(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 200; trial++ {
		shards := 2 + rng.Intn(4)
		streams := make([]stream, shards)
		for s := range streams {
			n := 1 + rng.Intn(12)
			var ts uint64
			for i := 0; i < n; i++ {
				// Arbitrary stamps, sometimes regressing (eff fixes that),
				// sometimes colliding across shards.
				if rng.Intn(3) == 0 && ts > 0 {
					ts -= uint64(rng.Intn(int(ts)) + 1)
				}
				ts += uint64(1 + rng.Intn(5))
				streams[s] = append(streams[s], Item{
					TS:      ts,
					Marker:  rng.Intn(5) == 0,
					Payload: fmt.Sprintf("s%d-%d", s, i),
				})
			}
			// Terminal marker far in the future so the merge can fully
			// drain (models the idle-marker liveness mechanism).
			streams[s] = append(streams[s], Item{TS: 1 << 40, Marker: true, Payload: "end"})
		}
		want := refMerge(streams)

		for inter := 0; inter < 5; inter++ {
			m := NewMerge(shards)
			next := make([]int, shards)
			var got []string
			for {
				live := live(streams, next)
				if len(live) == 0 {
					break
				}
				s := live[rng.Intn(len(live))]
				m.Push(s, streams[s][next[s]])
				next[s]++
				if rng.Intn(2) == 0 {
					drain(m, &got) // popping mid-stream must not change the order
				}
			}
			drain(m, &got)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d interleaving %d:\n got %v\nwant %v", trial, inter, got, want)
			}
		}
	}
}

func live(streams []stream, next []int) []int {
	var out []int
	for s := range streams {
		if next[s] < len(streams[s]) {
			out = append(out, s)
		}
	}
	return out
}

// TestMergeHoldsBackUntilCutAdvances: an item is not released while an
// idle shard could still sort before it, and a marker unblocks it.
func TestMergeHoldsBackUntilCutAdvances(t *testing.T) {
	m := NewMerge(2)
	m.Push(0, Item{TS: 5, Payload: "a"})
	if _, _, ok := m.Pop(); ok {
		t.Fatal("released while shard 1's cut was behind")
	}
	m.Push(1, Item{TS: 3, Marker: true})
	if _, _, ok := m.Pop(); ok {
		t.Fatal("marker at ts 3 cannot clear an item at ts 5")
	}
	m.Push(1, Item{TS: 9, Marker: true})
	it, s, ok := m.Pop()
	if !ok || s != 0 || it.Payload.(string) != "a" {
		t.Fatalf("marker at ts 9 should release a: %v %d %v", it, s, ok)
	}
	if _, _, ok := m.Pop(); ok {
		t.Fatal("nothing else should be releasable")
	}
	if m.Cut(1) != 9 {
		t.Fatalf("Cut(1) = %d, want 9", m.Cut(1))
	}
}

// TestMergeTieBreaksByShard: equal effective stamps release lower shard
// first, and an empty equal-stamp shard only blocks lower shards.
func TestMergeTieBreaksByShard(t *testing.T) {
	m := NewMerge(2)
	m.Push(0, Item{TS: 7, Payload: "zero"})
	m.Push(1, Item{TS: 7, Payload: "one"})
	it, s, ok := m.Pop()
	if !ok || s != 0 || it.Payload.(string) != "zero" {
		t.Fatalf("tie must release shard 0 first: %v %d %v", it, s, ok)
	}
	// Shard 1's head (7) is now blocked: shard 0 is empty with lastEff=7,
	// and shard 0 could still produce another ts-7 item sorting earlier.
	if _, _, ok := m.Pop(); ok {
		t.Fatal("shard 1 at ts 7 must wait for shard 0's cut to pass 7")
	}
	m.Push(0, Item{TS: 8, Marker: true})
	it, s, ok = m.Pop()
	if !ok || s != 1 || it.Payload.(string) != "one" {
		t.Fatalf("want shard 1's item: %v %d %v", it, s, ok)
	}
}

func TestMergePendingAndFIFOReuse(t *testing.T) {
	m := NewMerge(1)
	for i := 0; i < 1000; i++ {
		m.Push(0, Item{TS: uint64(i + 1), Payload: fmt.Sprintf("%d", i)})
		if it, _, ok := m.Pop(); !ok || it.Payload.(string) != fmt.Sprintf("%d", i) {
			t.Fatalf("single-shard merge must be FIFO at %d", i)
		}
	}
	if m.Pending() != 0 {
		t.Fatalf("Pending = %d after full drain", m.Pending())
	}
}
