// Package shard implements the pieces of multi-ring sharding that are
// independent of the protocol stack: the key→shard hash, the CrossOrder
// payload envelope, a Lamport clock, and the deterministic cross-shard
// merge that turns M per-shard total orders into one global total order.
//
// The merge is intentionally sequencer-free, in the spirit of Totem's
// multiple-ring extension: every node runs the same pure function over
// the same M delivered streams (each totally ordered by its own ring),
// so every node computes the same merged order with no extra messages
// beyond periodic idle markers.
package shard

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// Hash maps a key to a shard in [0, shards) with FNV-1a. It is the
// default ShardFunc: stable across processes and platforms, cheap, and
// well-spread for short keys.
func Hash(key []byte, shards int) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	return int(h % uint64(shards))
}

// CrossOrder payload envelope. When the merge is on, every application
// payload is prefixed with a kind byte and the sender's Lamport stamp;
// idle shards carry periodic marker messages (no payload) so their merge
// cut keeps advancing. The envelope exists only inside CrossOrder mode —
// plain sharding delivers raw payloads untouched.
const (
	// KindApp tags an application payload.
	KindApp byte = 0x01
	// KindMarker tags an idle-shard cut-advancement message.
	KindMarker byte = 0x02
	// EnvOverhead is the envelope cost: kind(1) + lamport(8).
	EnvOverhead = 9
)

// ErrEnvelope reports a malformed CrossOrder envelope.
var ErrEnvelope = errors.New("shard: malformed cross-order envelope")

// WrapApp prefixes payload with an application envelope.
func WrapApp(ts uint64, payload []byte) []byte {
	buf := make([]byte, EnvOverhead+len(payload))
	buf[0] = KindApp
	binary.BigEndian.PutUint64(buf[1:], ts)
	copy(buf[EnvOverhead:], payload)
	return buf
}

// WrapMarker builds an idle-shard marker message.
func WrapMarker(ts uint64) []byte {
	buf := make([]byte, EnvOverhead)
	buf[0] = KindMarker
	binary.BigEndian.PutUint64(buf[1:], ts)
	return buf
}

// Unwrap splits a CrossOrder payload into kind, Lamport stamp, and the
// application bytes (nil for markers).
func Unwrap(data []byte) (byte, uint64, []byte, error) {
	if len(data) < EnvOverhead {
		return 0, 0, nil, fmt.Errorf("%w: %d bytes", ErrEnvelope, len(data))
	}
	kind := data[0]
	if kind != KindApp && kind != KindMarker {
		return 0, 0, nil, fmt.Errorf("%w: kind %#02x", ErrEnvelope, kind)
	}
	return kind, binary.BigEndian.Uint64(data[1:]), data[EnvOverhead:], nil
}

// Clock is a Lamport clock shared by all shards of one node: Tick stamps
// outbound messages, Observe folds in stamps seen on delivery so later
// sends sort after everything the node has already observed.
type Clock struct {
	mu sync.Mutex
	t  uint64
}

// Tick advances the clock and returns the new stamp (always >= 1).
func (c *Clock) Tick() uint64 {
	c.mu.Lock()
	c.t++
	t := c.t
	c.mu.Unlock()
	return t
}

// Observe folds a delivered stamp into the clock.
func (c *Clock) Observe(ts uint64) {
	c.mu.Lock()
	if ts > c.t {
		c.t = ts
	}
	c.mu.Unlock()
}

// Item is one delivered message entering the merge.
type Item struct {
	TS      uint64      // sender's Lamport stamp
	Marker  bool        // cut-advancement message; consumed, never released
	Payload interface{} // opaque to the merge (the totem layer stores its Delivery)
}

// entry is an Item after effective-timestamp normalisation.
type entry struct {
	eff uint64
	it  Item
}

// Merge is the deterministic M-way merge. Push feeds shard s's delivered
// stream in its ring order; Pop releases the next message of the merged
// global order, or reports that no release is currently safe.
//
// Determinism: each item's effective timestamp is the running max of
// stamps delivered so far on its shard — a pure function of that shard's
// delivered prefix, which Totem makes identical at every node. The merged
// order is then the unique sort by (effective TS, shard, in-shard
// position), so every node releases the same sequence regardless of how
// shard deliveries interleave in real time.
//
// Safety of a release: the head (t, s) may be released only when no shard
// can later contribute an item sorting before it. A shard with a queued
// item can't (effective timestamps are monotone per shard, so its head is
// its earliest, and the head already lost the min comparison); an empty
// shard s' can't once lastEff[s'] > t, or lastEff[s'] == t with s' > s.
// Idle shards are kept live by periodic markers advancing lastEff.
//
// Merge is not concurrency-safe; the owner serialises access.
type Merge struct {
	queues  []fifo
	lastEff []uint64
}

// NewMerge returns a merge over shards streams.
func NewMerge(shards int) *Merge {
	return &Merge{
		queues:  make([]fifo, shards),
		lastEff: make([]uint64, shards),
	}
}

// Push appends the next delivered item of shard s.
func (m *Merge) Push(s int, it Item) {
	eff := it.TS
	if m.lastEff[s] > eff {
		eff = m.lastEff[s]
	}
	m.lastEff[s] = eff
	m.queues[s].push(entry{eff: eff, it: it})
}

// Pop returns the next releasable application item and its shard, or
// ok=false when nothing can safely be released yet. Markers are consumed
// internally.
func (m *Merge) Pop() (Item, int, bool) {
	for {
		// Min head by (effective TS, shard).
		s := -1
		var t uint64
		for i := range m.queues {
			h, ok := m.queues[i].peek()
			if !ok {
				continue
			}
			if s == -1 || h.eff < t {
				s, t = i, h.eff
			}
		}
		if s == -1 {
			return Item{}, 0, false
		}
		// Every empty shard must already be provably past (t, s).
		for i := range m.queues {
			if i == s || m.queues[i].len() > 0 {
				continue
			}
			if m.lastEff[i] > t || (m.lastEff[i] == t && i > s) {
				continue
			}
			return Item{}, 0, false
		}
		e, _ := m.queues[s].pop()
		if e.it.Marker {
			continue
		}
		return e.it, s, true
	}
}

// Pending reports the number of queued (unreleased) items, markers
// included — the merge's hold-back depth, surfaced as a gauge.
func (m *Merge) Pending() int {
	n := 0
	for i := range m.queues {
		n += m.queues[i].len()
	}
	return n
}

// Cut returns shard s's merge cut: the effective timestamp its stream has
// provably advanced past.
func (m *Merge) Cut(s int) uint64 { return m.lastEff[s] }

// fifo is an amortised-O(1) queue (slice + head index with compaction);
// the merge never needs more than append/peek/pop.
type fifo struct {
	buf  []entry
	head int
}

func (f *fifo) push(e entry) { f.buf = append(f.buf, e) }

func (f *fifo) len() int { return len(f.buf) - f.head }

func (f *fifo) peek() (entry, bool) {
	if f.head >= len(f.buf) {
		return entry{}, false
	}
	return f.buf[f.head], true
}

func (f *fifo) pop() (entry, bool) {
	if f.head >= len(f.buf) {
		return entry{}, false
	}
	e := f.buf[f.head]
	f.buf[f.head] = entry{} // drop the payload reference
	f.head++
	if f.head > 64 && f.head*2 >= len(f.buf) {
		n := copy(f.buf, f.buf[f.head:])
		for i := n; i < len(f.buf); i++ {
			f.buf[i] = entry{}
		}
		f.buf = f.buf[:n]
		f.head = 0
	}
	return e, true
}
