package wire

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"

	"github.com/totem-rrp/totem/internal/proto"
)

// Native fuzz targets for the message-packing layer: the Packer's
// fragmentation and the Assembler's reassembly are the two halves of the
// paper's §8 packing algorithm, and every byte the ring orders passes
// through them.

// packerSeeds mirrors the payload-size population the torture harness
// drives through the stack (its load generator submits 64..364-byte
// payloads shaped "s<seed>/<node>/<n>|..."), plus the fragmentation
// boundaries.
func packerSeeds(f *testing.F) {
	f.Helper()
	sizes := func(ns ...int) []byte {
		var b []byte
		for _, n := range ns {
			b = binary.LittleEndian.AppendUint16(b, uint16(n))
		}
		return b
	}
	f.Add(sizes(64))
	f.Add(sizes(64, 200, 364))                     // torture load population
	f.Add(sizes(364, 364, 364, 364))               // several per packet
	f.Add(sizes(maxWhole-1, maxWhole, maxWhole+1)) // split boundary
	f.Add(sizes(MaxPayload, MaxPayload+1))
	f.Add(sizes(3*MaxPayload + 17))   // multi-packet fragmentation
	f.Add(sizes(1, maxWhole+5, 1, 1)) // fragment then small tail
	f.Add(sizes())                    // empty queue
	f.Add(sizes(0, 0, 64))            // zero-length messages
}

// FuzzPackerAssembler drives arbitrary message-size sequences through
// Enqueue -> NextChunks -> Assembler.Add and demands perfect reassembly:
// every message comes back whole, in order, byte for byte, with no drops,
// and every emitted packet respects the MaxPayload budget.
func FuzzPackerAssembler(f *testing.F) {
	packerSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		const (
			maxMsgs = 24
			maxLen  = 4 * MaxPayload
			sender  = proto.NodeID(7)
		)
		var msgs [][]byte
		for i := 0; i+1 < len(data) && len(msgs) < maxMsgs; i += 2 {
			n := int(binary.LittleEndian.Uint16(data[i:])) % (maxLen + 1)
			msg := make([]byte, n)
			for j := range msg {
				msg[j] = byte(len(msgs)*31 + j)
			}
			msgs = append(msgs, msg)
		}

		p := &Packer{}
		total := 0
		for _, m := range msgs {
			p.Enqueue(append([]byte(nil), m...))
			total += len(m)
		}
		if p.Backlog() != len(msgs) || p.QueuedBytes() != total {
			t.Fatalf("after enqueue: backlog %d queued %d, want %d/%d",
				p.Backlog(), p.QueuedBytes(), len(msgs), total)
		}

		a := NewAssembler()
		var got [][]byte
		// Each NextChunks call must make progress; total+len(msgs) packets
		// is a generous upper bound, so exceeding it means livelock.
		for i := 0; !p.Empty(); i++ {
			if i > total+len(msgs)+1 {
				t.Fatalf("packer livelock: %d packets and still %d queued", i, p.Backlog())
			}
			chunks := p.NextChunks()
			if chunks == nil {
				t.Fatalf("NextChunks returned nil with %d messages queued", p.Backlog())
			}
			budget := 0
			for _, c := range chunks {
				budget += len(c.Data) + ChunkOverhead
			}
			if budget > MaxPayload {
				t.Fatalf("packet holds %d bytes, budget %d", budget, MaxPayload)
			}
			for _, c := range chunks {
				if m, ok := a.Add(sender, c); ok {
					got = append(got, append([]byte(nil), m...))
				}
			}
		}
		if p.NextChunks() != nil {
			t.Fatal("NextChunks returned chunks from an empty queue")
		}
		if p.QueuedBytes() != 0 {
			t.Fatalf("drained packer still reports %d queued bytes", p.QueuedBytes())
		}
		if a.Dropped != 0 {
			t.Fatalf("assembler dropped %d chunks of a clean in-order stream", a.Dropped)
		}
		if len(got) != len(msgs) {
			t.Fatalf("reassembled %d messages, submitted %d", len(got), len(msgs))
		}
		for i := range msgs {
			if !bytes.Equal(got[i], msgs[i]) {
				t.Fatalf("message %d corrupted: %d bytes in, %d out", i, len(msgs[i]), len(got[i]))
			}
		}
	})
}

// FuzzAssemblerStream feeds the Assembler an arbitrary — including
// protocol-violating — chunk stream across several senders. It must never
// panic, never fabricate bytes that were not in some chunk, and account
// for every orphan continuation in Dropped.
func FuzzAssemblerStream(f *testing.F) {
	// flags byte, length byte, payload — repeated.
	f.Add([]byte{byte(ChunkFirst | ChunkLast), 3, 'a', 'b', 'c'})
	f.Add([]byte{byte(ChunkFirst), 2, 'x', 'y', byte(ChunkLast), 1, 'z'})
	f.Add([]byte{0, 4, 1, 2, 3, 4}) // orphan continuation
	f.Add([]byte{byte(ChunkFirst), 1, 'q', byte(ChunkFirst | ChunkLast), 1, 'r'})
	f.Fuzz(func(t *testing.T, data []byte) {
		a := NewAssembler()
		fed, returned, completions := 0, 0, 0
		for i := 0; i+1 < len(data); {
			flags := data[i] & (ChunkFirst | ChunkLast)
			n := int(data[i+1])
			i += 2
			if n > len(data)-i {
				n = len(data) - i
			}
			sender := proto.NodeID(1 + n%3)
			fed += n
			m, ok := a.Add(sender, Chunk{Flags: flags, Data: data[i : i+n]})
			i += n
			if ok {
				completions++
				returned += len(m)
			} else if m != nil {
				t.Fatal("incomplete Add returned a message")
			}
		}
		if returned > fed {
			t.Fatalf("assembler returned %d bytes from %d fed", returned, fed)
		}
		a.Reset()
		if m, ok := a.Add(1, Chunk{Flags: 0, Data: []byte("tail")}); ok || m != nil {
			t.Fatal("continuation accepted after Reset")
		}
		_ = fmt.Sprintf("%d", completions) // keep the counter observable under -v
	})
}

// FuzzMixedLanes drives arbitrary interleavings of interactive and bulk
// enqueues — with an optional mid-stream configuration change (Assembler
// Reset plus Packer Rewind) — and demands the two-lane contract: FIFO
// byte-exact reassembly within each lane, interactive chunks packed ahead
// of bulk in every packet, nothing dropped, and no livelock.
func FuzzMixedLanes(f *testing.F) {
	seed := func(resetAt byte, ops ...uint16) []byte {
		b := []byte{resetAt}
		for _, op := range ops {
			b = binary.LittleEndian.AppendUint16(b, op)
		}
		return b
	}
	lane := func(bulk bool, n int) uint16 {
		v := uint16(n) << 1
		if bulk {
			v |= 1
		}
		return v
	}
	f.Add(seed(255, lane(false, 200), lane(true, 20000), lane(false, 64)))
	f.Add(seed(2, lane(true, 3*MaxPayload), lane(false, 100)))  // reset mid-fragment
	f.Add(seed(0, lane(true, 1), lane(true, 0), lane(false, maxWhole)))
	f.Add(seed(255, lane(true, 8192), lane(true, 8192), lane(true, 8192)))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		// data[0] < 128 schedules one configuration change at that packet
		// index; the ops are (size<<1 | bulkLane) little-endian pairs.
		resetAt := -1
		if data[0] < 128 {
			resetAt = int(data[0]) % 16
		}
		const maxMsgs = 24
		var p Packer
		a := NewAssembler()
		var wantI, wantB, gotI, gotB [][]byte
		msgs := 0
		for i := 1; i+1 < len(data) && msgs < maxMsgs; i += 2 {
			v := binary.LittleEndian.Uint16(data[i:])
			n := int(v>>1) % (3*MaxPayload + 1)
			m := make([]byte, n)
			for j := range m {
				m[j] = byte(msgs*31 + j)
			}
			if v&1 == 1 {
				wantB = append(wantB, m)
				p.EnqueueBulk(append([]byte(nil), m...))
			} else {
				wantI = append(wantI, m)
				p.Enqueue(append([]byte(nil), m...))
			}
			msgs++
		}

		for pkt := 0; !p.Empty(); pkt++ {
			if pkt > 100000 {
				t.Fatalf("livelock: %d packets and still %d+%d queued", pkt, p.Backlog(), p.BulkBacklog())
			}
			if pkt == resetAt {
				// A configuration change wipes reassembly state; the packer
				// rewinds so in-flight fragments restart whole. Nothing may
				// be lost or corrupted — only re-sent.
				a.Reset()
				a.Dropped = 0
				p.Rewind()
			}
			chunks := p.NextChunks()
			if len(chunks) == 0 {
				t.Fatalf("no progress with %d+%d messages queued", p.Backlog(), p.BulkBacklog())
			}
			budget, sawBulk := 0, false
			for _, c := range chunks {
				budget += len(c.Data) + ChunkOverhead
				if c.Flags&ChunkBulk != 0 {
					sawBulk = true
				} else if sawBulk {
					t.Fatal("interactive chunk packed behind a bulk chunk")
				}
				if m, ok := a.Add(3, c); ok {
					cp := append([]byte(nil), m...)
					if c.Flags&ChunkBulk != 0 {
						gotB = append(gotB, cp)
					} else {
						gotI = append(gotI, cp)
					}
				}
			}
			if budget > MaxPayload {
				t.Fatalf("packet holds %d bytes, budget %d", budget, MaxPayload)
			}
		}
		check := func(lane string, got, want [][]byte) {
			if len(got) != len(want) {
				t.Fatalf("%s lane delivered %d of %d messages", lane, len(got), len(want))
			}
			for i := range want {
				if !bytes.Equal(got[i], want[i]) {
					t.Fatalf("%s lane message %d not FIFO/byte-exact", lane, i)
				}
			}
		}
		check("interactive", gotI, wantI)
		check("bulk", gotB, wantB)
		if a.Dropped != 0 {
			t.Fatalf("assembler dropped %d chunks of a clean stream", a.Dropped)
		}
	})
}
