package wire

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/totem-rrp/totem/internal/proto"
)

func TestDataPacketRoundTrip(t *testing.T) {
	p := &DataPacket{
		Ring:   proto.RingID{Rep: 3, Epoch: 17},
		Sender: 9,
		Seq:    4242,
		Flags:  FlagRetrans,
		Chunks: []Chunk{
			{Flags: ChunkFirst | ChunkLast, Data: []byte("hello")},
			{Flags: ChunkFirst, Data: []byte("frag-start")},
		},
	}
	data, err := p.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeData(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(p, got) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, p)
	}
}

func TestDataPacketEmptyChunkData(t *testing.T) {
	p := &DataPacket{
		Ring:   proto.RingID{Rep: 1, Epoch: 1},
		Sender: 1,
		Seq:    1,
		Chunks: []Chunk{{Flags: ChunkFirst | ChunkLast, Data: []byte{}}},
	}
	data, err := p.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeData(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got.Chunks) != 1 || len(got.Chunks[0].Data) != 0 {
		t.Fatalf("want one empty chunk, got %+v", got.Chunks)
	}
}

func TestDataPacketRejectsNoChunks(t *testing.T) {
	p := &DataPacket{Ring: proto.RingID{Rep: 1, Epoch: 1}, Sender: 1, Seq: 1}
	if _, err := p.Encode(); !errors.Is(err, ErrMalformed) {
		t.Fatalf("want ErrMalformed, got %v", err)
	}
}

func TestDataPacketRejectsOversizedPayload(t *testing.T) {
	p := &DataPacket{
		Ring:   proto.RingID{Rep: 1, Epoch: 1},
		Sender: 1,
		Seq:    1,
		Chunks: []Chunk{{Flags: ChunkFirst | ChunkLast, Data: make([]byte, MaxPayload+1)}},
	}
	if _, err := p.Encode(); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("want ErrTooLarge, got %v", err)
	}
}

func TestDataPacketRejectsCombinedOversize(t *testing.T) {
	half := make([]byte, MaxPayload/2)
	p := &DataPacket{
		Ring:   proto.RingID{Rep: 1, Epoch: 1},
		Sender: 1,
		Seq:    1,
		Chunks: []Chunk{
			{Flags: ChunkFirst | ChunkLast, Data: half},
			{Flags: ChunkFirst | ChunkLast, Data: half},
		},
	}
	// Two halves plus framing exceed the budget.
	if _, err := p.Encode(); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("want ErrTooLarge, got %v", err)
	}
}

func TestTokenRoundTrip(t *testing.T) {
	tok := &Token{
		Ring:     proto.RingID{Rep: 2, Epoch: 8},
		Seq:      1000,
		Rotation: 55,
		ARU:      990,
		ARUID:    4,
		FCC:      17,
		Backlog:  3,
		RTR:      []uint32{991, 993, 999},
	}
	data, err := tok.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeToken(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(tok, got) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, tok)
	}
}

func TestTokenRoundTripEmptyRTR(t *testing.T) {
	tok := &Token{Ring: proto.RingID{Rep: 1, Epoch: 1}, Seq: 5}
	data, err := tok.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeToken(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.RTR != nil {
		t.Fatalf("want nil RTR, got %v", got.RTR)
	}
}

func TestTokenRejectsOversizedRTR(t *testing.T) {
	tok := &Token{Ring: proto.RingID{Rep: 1, Epoch: 1}, RTR: make([]uint32, MaxRTR+1)}
	if _, err := tok.Encode(); !errors.Is(err, ErrMalformed) {
		t.Fatalf("want ErrMalformed, got %v", err)
	}
}

func TestPeekTokenSeq(t *testing.T) {
	tok := &Token{Ring: proto.RingID{Rep: 1, Epoch: 1}, Seq: 77, Rotation: 5}
	data, err := tok.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	seq, rot, err := PeekTokenSeq(data)
	if err != nil {
		t.Fatalf("peek: %v", err)
	}
	if seq != 77 || rot != 5 {
		t.Fatalf("peek = (%d,%d), want (77,5)", seq, rot)
	}
}

func TestPeekTokenSeqRejectsData(t *testing.T) {
	p := &DataPacket{
		Ring: proto.RingID{Rep: 1, Epoch: 1}, Sender: 1, Seq: 1,
		Chunks: []Chunk{{Flags: ChunkFirst | ChunkLast, Data: []byte("x")}},
	}
	data, err := p.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if _, _, err := PeekTokenSeq(data); !errors.Is(err, ErrMalformed) {
		t.Fatalf("want ErrMalformed, got %v", err)
	}
}

func TestJoinRoundTrip(t *testing.T) {
	j := &JoinPacket{
		Sender:  7,
		RingSeq: 12,
		ProcSet: []proto.NodeID{1, 2, 7},
		FailSet: []proto.NodeID{5},
	}
	data, err := j.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeJoin(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(j, got) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, j)
	}
}

func TestJoinRoundTripEmptySets(t *testing.T) {
	j := &JoinPacket{Sender: 7, RingSeq: 12}
	data, err := j.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeJoin(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.ProcSet != nil || got.FailSet != nil {
		t.Fatalf("want nil sets, got %+v", got)
	}
}

func TestCommitRoundTrip(t *testing.T) {
	c := &CommitToken{
		Ring: proto.RingID{Rep: 1, Epoch: 20},
		Members: []CommitEntry{
			{ID: 1, OldRing: proto.RingID{Rep: 1, Epoch: 16}, MyAru: 100, HighSeq: 120, Visits: 1},
			{ID: 4, OldRing: proto.RingID{Rep: 4, Epoch: 18}, MyAru: 7, HighSeq: 7, Visits: 0},
		},
	}
	data, err := c.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeCommit(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(c, got) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, c)
	}
}

func TestCommitRejectsEmpty(t *testing.T) {
	c := &CommitToken{Ring: proto.RingID{Rep: 1, Epoch: 1}}
	if _, err := c.Encode(); !errors.Is(err, ErrMalformed) {
		t.Fatalf("want ErrMalformed, got %v", err)
	}
}

func TestPeekKindAndRing(t *testing.T) {
	tok := &Token{Ring: proto.RingID{Rep: 9, Epoch: 3}}
	data, err := tok.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	k, err := PeekKind(data)
	if err != nil || k != KindToken {
		t.Fatalf("PeekKind = %v, %v", k, err)
	}
	ring, err := PeekRing(data)
	if err != nil || ring != (proto.RingID{Rep: 9, Epoch: 3}) {
		t.Fatalf("PeekRing = %v, %v", ring, err)
	}
}

func TestDecodeRejectsGarbageHeader(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{0x54},
		bytes.Repeat([]byte{0xff}, 64),
		append([]byte{0x54, 0x4d, version, 99}, make([]byte, 32)...),         // bad kind
		append([]byte{0x54, 0x4d, 42, uint8(KindData)}, make([]byte, 32)...), // bad version
	}
	for i, data := range cases {
		if _, err := DecodeData(data); err == nil {
			t.Errorf("case %d: DecodeData accepted garbage", i)
		}
		if _, err := DecodeToken(data); err == nil {
			t.Errorf("case %d: DecodeToken accepted garbage", i)
		}
		if _, err := DecodeJoin(data); err == nil {
			t.Errorf("case %d: DecodeJoin accepted garbage", i)
		}
		if _, err := DecodeCommit(data); err == nil {
			t.Errorf("case %d: DecodeCommit accepted garbage", i)
		}
	}
}

func TestDecodeRejectsTruncatedEncodings(t *testing.T) {
	p := &DataPacket{
		Ring: proto.RingID{Rep: 1, Epoch: 1}, Sender: 2, Seq: 3,
		Chunks: []Chunk{{Flags: ChunkFirst | ChunkLast, Data: []byte("payload")}},
	}
	data, err := p.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	for cut := 1; cut < len(data); cut++ {
		if _, err := DecodeData(data[:cut]); err == nil {
			t.Fatalf("accepted truncation at %d", cut)
		}
	}
}

func TestDecodeRejectsTrailingBytes(t *testing.T) {
	p := &DataPacket{
		Ring: proto.RingID{Rep: 1, Epoch: 1}, Sender: 2, Seq: 3,
		Chunks: []Chunk{{Flags: ChunkFirst | ChunkLast, Data: []byte("payload")}},
	}
	data, err := p.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if _, err := DecodeData(append(data, 0)); !errors.Is(err, ErrMalformed) {
		t.Fatalf("want ErrMalformed, got %v", err)
	}
}

// Property: any DataPacket within limits round-trips exactly.
func TestQuickDataRoundTrip(t *testing.T) {
	f := func(rep, sender uint32, epoch, seq uint32, flags uint8, raw [][]byte) bool {
		if len(raw) == 0 {
			raw = [][]byte{{0x1}}
		}
		if len(raw) > 8 {
			raw = raw[:8]
		}
		total := 0
		chunks := make([]Chunk, 0, len(raw))
		for _, d := range raw {
			if len(d) > 128 {
				d = d[:128]
			}
			total += len(d) + ChunkOverhead
			if total > MaxPayload {
				break
			}
			chunks = append(chunks, Chunk{Flags: ChunkFirst | ChunkLast, Data: append([]byte(nil), d...)})
		}
		if len(chunks) == 0 {
			return true
		}
		p := &DataPacket{
			Ring:   proto.RingID{Rep: proto.NodeID(rep), Epoch: epoch},
			Sender: proto.NodeID(sender),
			Seq:    seq,
			Flags:  flags,
			Chunks: chunks,
		}
		data, err := p.Encode()
		if err != nil {
			return false
		}
		got, err := DecodeData(data)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(p, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: any Token within limits round-trips exactly.
func TestQuickTokenRoundTrip(t *testing.T) {
	f := func(rep, epoch, seq, rot, aru, aruid, fcc, backlog uint32, rtr []uint32) bool {
		if len(rtr) > MaxRTR {
			rtr = rtr[:MaxRTR]
		}
		if len(rtr) == 0 {
			rtr = nil
		}
		tok := &Token{
			Ring:     proto.RingID{Rep: proto.NodeID(rep), Epoch: epoch},
			Seq:      seq,
			Rotation: rot,
			ARU:      aru,
			ARUID:    proto.NodeID(aruid),
			FCC:      fcc,
			Backlog:  backlog,
			RTR:      rtr,
		}
		data, err := tok.Encode()
		if err != nil {
			return false
		}
		got, err := DecodeToken(data)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(tok, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: decoders never panic and never accept random noise as valid
// unless it happens to be a perfect encoding (vanishingly unlikely).
func TestQuickDecodersSurviveNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		n := rng.Intn(200)
		data := make([]byte, n)
		rng.Read(data)
		DecodeData(data)
		DecodeToken(data)
		DecodeJoin(data)
		DecodeCommit(data)
		PeekKind(data)
		PeekRing(data)
		PeekTokenSeq(data)
	}
}

// Fuzz-by-mutation: take valid encodings, flip bytes, ensure no panics.
func TestQuickDecodersSurviveMutation(t *testing.T) {
	tok := &Token{Ring: proto.RingID{Rep: 1, Epoch: 1}, Seq: 9, RTR: []uint32{1, 2, 3}}
	tdata, err := tok.Encode()
	if err != nil {
		t.Fatal(err)
	}
	p := &DataPacket{
		Ring: proto.RingID{Rep: 1, Epoch: 1}, Sender: 2, Seq: 3,
		Chunks: []Chunk{{Flags: ChunkFirst | ChunkLast, Data: []byte("abcdef")}},
	}
	pdata, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		for _, orig := range [][]byte{tdata, pdata} {
			m := append([]byte(nil), orig...)
			m[rng.Intn(len(m))] ^= byte(1 << rng.Intn(8))
			DecodeToken(m)
			DecodeData(m)
			DecodeJoin(m)
			DecodeCommit(m)
		}
	}
}

func TestFrameBudgetConstants(t *testing.T) {
	if MaxPayload != 1424 {
		t.Fatalf("MaxPayload = %d, want 1424 (paper §8)", MaxPayload)
	}
	if MaxFrame-FrameOverhead != MaxPayload {
		t.Fatalf("budget arithmetic inconsistent")
	}
}
