// Package wire defines the on-the-wire formats of the Totem protocols and
// their binary codecs: data packets (with message packing and
// fragmentation), the rotating token, join messages and the commit token
// used by membership.
//
// Encoding is big-endian with explicit lengths. Decoders validate every
// length against the remaining input and hard caps so that a corrupted or
// hostile packet can never cause a panic or an oversized allocation.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/totem-rrp/totem/internal/proto"
)

// Frame-budget constants from the paper (§8): a maximum Ethernet frame of
// 1518 bytes carries 94 bytes of Ethernet + IPv4 + UDP + Totem headers,
// leaving 1424 bytes of Totem payload per frame.
const (
	// MaxFrame is the maximum Ethernet frame size modelled.
	MaxFrame = 1518
	// FrameOverhead is the per-frame header overhead (Ethernet header and
	// trailer, IPv4 header, UDP header and the Totem header).
	FrameOverhead = 94
	// MaxPayload is the maximum Totem payload per packet: application
	// chunks plus their per-chunk framing must fit in this budget.
	MaxPayload = MaxFrame - FrameOverhead // 1424
)

// RecoverySlack is the extra frame budget granted to recovery packets to
// cover the encapsulation headers of the original packet.
const RecoverySlack = 64

// Hard caps used by the decoders to reject malformed input.
const (
	// MaxRTR bounds the retransmission-request list carried by a token.
	MaxRTR = 64
	// MaxMembers bounds membership set sizes in join and commit packets.
	MaxMembers = 256
	// MaxChunks bounds the number of packed chunks in one data packet.
	MaxChunks = 128
)

// Kind discriminates packet types on the wire.
type Kind uint8

// Packet kinds.
const (
	KindData Kind = iota + 1
	KindToken
	KindJoin
	KindCommit
	KindMergeDetect
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindData:
		return "data"
	case KindToken:
		return "token"
	case KindJoin:
		return "join"
	case KindCommit:
		return "commit"
	case KindMergeDetect:
		return "merge-detect"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

const (
	magic   uint16 = 0x544D // "TM"
	version uint8  = 1
	// headerLen is magic(2) + version(1) + kind(1) + ring rep(4) + ring
	// epoch(4).
	headerLen = 12
)

// Codec errors. ErrTruncated and ErrMalformed are matched by tests and by
// the transports, which drop undecodable packets.
var (
	ErrTruncated = errors.New("wire: truncated packet")
	ErrMalformed = errors.New("wire: malformed packet")
	ErrTooLarge  = errors.New("wire: packet exceeds frame budget")
)

// Chunk flags: a whole message is First|Last; fragments of a long message
// set First on the first fragment, Last on the final one. Bulk marks a
// chunk of the bulk lane; all fragments of a bulk message carry it, and
// receivers reassemble the two lanes independently per sender.
const (
	ChunkFirst uint8 = 1 << 0
	ChunkLast  uint8 = 1 << 1
	ChunkBulk  uint8 = 1 << 2
)

// Data packet flags.
const (
	// FlagRetrans marks a retransmitted copy of a packet.
	FlagRetrans uint8 = 1 << 0
	// FlagRecovery marks a packet broadcast on a new ring during
	// membership recovery; its single chunk encapsulates an original
	// old-ring data packet.
	FlagRecovery uint8 = 1 << 1
)

// Chunk is one framed unit inside a data packet: a whole application
// message or one fragment of a long message.
type Chunk struct {
	Flags uint8
	Data  []byte
}

// DataPacket is a sequenced broadcast packet carrying one or more chunks.
type DataPacket struct {
	Ring   proto.RingID
	Sender proto.NodeID
	Seq    uint32
	Flags  uint8
	Chunks []Chunk
}

// Token flags used while a new ring is in the Recovery state: Quiet is set
// by the ring representative once its recovery traffic has quiesced and is
// cleared by any member whose recovery is still in flight; Operational is
// set by the representative when Quiet survives a full rotation and tells
// every member to install the new configuration.
const (
	TokenFlagQuiet       uint8 = 1 << 0
	TokenFlagOperational uint8 = 1 << 1
)

// Token is the rotating token of the Totem SRP (paper §2). Seq is the
// sequence number of the last message broadcast on the ring; Rotation is
// incremented by the ring leader on every full rotation so that an idle
// ring still produces distinguishable tokens; ARU/ARUID implement the
// all-received-up-to computation for safe delivery and buffer reclamation;
// FCC and Backlog drive flow control; RTR lists sequence numbers whose
// retransmission is requested.
type Token struct {
	Ring     proto.RingID
	Seq      uint32
	Rotation uint32
	ARU      uint32
	ARUID    proto.NodeID
	FCC      uint32
	Backlog  uint32
	// BulkBacklog counts queued bulk-lane messages ring-wide, maintained
	// like Backlog but separately so the interactive flow-control signal is
	// never diluted by a multi-megabyte transfer sitting in the bulk queue.
	BulkBacklog uint32
	Flags       uint8
	RTR         []uint32
}

// JoinPacket is broadcast during the Gather state of membership. ProcSet
// is the set of processors the sender believes reachable; FailSet the set
// it believes failed; RingSeq is the epoch of the sender's last regular
// configuration, used to mint a larger epoch for the next ring.
type JoinPacket struct {
	Sender  proto.NodeID
	RingSeq uint32
	ProcSet []proto.NodeID
	FailSet []proto.NodeID
}

// CommitEntry is one member's slot in the commit token.
type CommitEntry struct {
	ID      proto.NodeID
	OldRing proto.RingID
	// MyAru is the member's all-received-up-to on its old ring.
	MyAru uint32
	// HighSeq is the highest sequence number the member holds from its
	// old ring.
	HighSeq uint32
	// Visits counts how many times the commit token has reached this
	// member (membership needs two passes).
	Visits uint8
}

// CommitToken circulates around the proposed new ring: the first pass
// collects every member's old-ring state, the second pass (when every
// member sees its own Visits already at 1) commits the configuration and
// starts recovery.
type CommitToken struct {
	Ring    proto.RingID
	Members []CommitEntry
}

func putHeader(buf []byte, k Kind, ring proto.RingID) []byte {
	buf = binary.BigEndian.AppendUint16(buf, magic)
	buf = append(buf, version, uint8(k))
	buf = binary.BigEndian.AppendUint32(buf, uint32(ring.Rep))
	buf = binary.BigEndian.AppendUint32(buf, ring.Epoch)
	return buf
}

func parseHeader(data []byte) (Kind, proto.RingID, []byte, error) {
	if len(data) < headerLen {
		return 0, proto.RingID{}, nil, ErrTruncated
	}
	if binary.BigEndian.Uint16(data) != magic || data[2] != version {
		return 0, proto.RingID{}, nil, ErrMalformed
	}
	k := Kind(data[3])
	if k < KindData || k > KindMergeDetect {
		return 0, proto.RingID{}, nil, ErrMalformed
	}
	ring := proto.RingID{
		Rep:   proto.NodeID(binary.BigEndian.Uint32(data[4:])),
		Epoch: binary.BigEndian.Uint32(data[8:]),
	}
	return k, ring, data[headerLen:], nil
}

// PeekKind returns the packet kind without a full decode. It is used by
// the RRP layer, which treats tokens and messages differently.
func PeekKind(data []byte) (Kind, error) {
	k, _, _, err := parseHeader(data)
	return k, err
}

// PeekRing returns the ring the packet belongs to without a full decode.
func PeekRing(data []byte) (proto.RingID, error) {
	_, ring, _, err := parseHeader(data)
	return ring, err
}

// --- DataPacket ---

// Encode serialises the packet into a freshly allocated buffer. It fails
// with ErrTooLarge when the chunk payloads exceed the frame budget, and
// ErrMalformed on cap violations.
func (p *DataPacket) Encode() ([]byte, error) {
	return p.AppendEncode(make([]byte, 0, headerLen+16+MaxPayload+RecoverySlack))
}

// AppendEncode serialises the packet by appending to buf (which may be
// nil, or a pooled frame from GetFrame) and returns the extended slice.
// Nothing is appended on error. It is the allocation-free hot-path codec:
// with a buffer of FrameCap capacity it never allocates.
func (p *DataPacket) AppendEncode(buf []byte) ([]byte, error) {
	if len(p.Chunks) == 0 || len(p.Chunks) > MaxChunks {
		return buf, fmt.Errorf("%w: %d chunks", ErrMalformed, len(p.Chunks))
	}
	budget := MaxPayload
	if p.Flags&FlagRecovery != 0 {
		// Recovery packets encapsulate a whole original packet; allow the
		// encapsulation overhead on top of the nominal frame budget (the
		// real protocol reuses the replaced header space).
		budget = MaxPayload + RecoverySlack
	}
	payload := 0
	for _, c := range p.Chunks {
		if len(c.Data) > budget {
			return buf, fmt.Errorf("%w: chunk %d bytes", ErrTooLarge, len(c.Data))
		}
		payload += len(c.Data) + ChunkOverhead
	}
	if payload > budget {
		return buf, fmt.Errorf("%w: %d payload bytes", ErrTooLarge, payload)
	}
	buf = putHeader(buf, KindData, p.Ring)
	buf = binary.BigEndian.AppendUint32(buf, uint32(p.Sender))
	buf = binary.BigEndian.AppendUint32(buf, p.Seq)
	buf = append(buf, p.Flags, uint8(len(p.Chunks)))
	for _, c := range p.Chunks {
		buf = append(buf, c.Flags)
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(c.Data)))
		buf = append(buf, c.Data...)
	}
	return buf, nil
}

// ChunkOverhead is the per-chunk framing cost inside a data packet:
// flags(1) + length(2).
const ChunkOverhead = 3

// DecodeData parses a KindData packet.
func DecodeData(data []byte) (*DataPacket, error) {
	k, ring, rest, err := parseHeader(data)
	if err != nil {
		return nil, err
	}
	if k != KindData {
		return nil, fmt.Errorf("%w: kind %v, want data", ErrMalformed, k)
	}
	if len(rest) < 10 {
		return nil, ErrTruncated
	}
	p := &DataPacket{
		Ring:   ring,
		Sender: proto.NodeID(binary.BigEndian.Uint32(rest)),
		Seq:    binary.BigEndian.Uint32(rest[4:]),
		Flags:  rest[8],
	}
	n := int(rest[9])
	if n == 0 || n > MaxChunks {
		return nil, fmt.Errorf("%w: %d chunks", ErrMalformed, n)
	}
	rest = rest[10:]
	p.Chunks = make([]Chunk, 0, n)
	for i := 0; i < n; i++ {
		if len(rest) < ChunkOverhead {
			return nil, ErrTruncated
		}
		flags := rest[0]
		l := int(binary.BigEndian.Uint16(rest[1:]))
		rest = rest[ChunkOverhead:]
		if l > len(rest) {
			return nil, ErrTruncated
		}
		chunk := Chunk{Flags: flags}
		if l > 0 {
			chunk.Data = make([]byte, l)
			copy(chunk.Data, rest[:l])
		}
		p.Chunks = append(p.Chunks, chunk)
		rest = rest[l:]
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrMalformed, len(rest))
	}
	return p, nil
}

// --- Token ---

// tokenBodyLen is the fixed part of an encoded token body: Seq, Rotation,
// ARU, ARUID, FCC, Backlog, BulkBacklog (7×u32) + Flags (u8) + RTR count
// (u16).
const tokenBodyLen = 31

// Encode serialises the token into a freshly allocated buffer.
func (t *Token) Encode() ([]byte, error) {
	return t.AppendEncode(make([]byte, 0, headerLen+tokenBodyLen+4*len(t.RTR)))
}

// AppendEncode serialises the token by appending to buf. Nothing is
// appended on error.
func (t *Token) AppendEncode(buf []byte) ([]byte, error) {
	if len(t.RTR) > MaxRTR {
		return buf, fmt.Errorf("%w: %d rtr entries", ErrMalformed, len(t.RTR))
	}
	buf = putHeader(buf, KindToken, t.Ring)
	buf = binary.BigEndian.AppendUint32(buf, t.Seq)
	buf = binary.BigEndian.AppendUint32(buf, t.Rotation)
	buf = binary.BigEndian.AppendUint32(buf, t.ARU)
	buf = binary.BigEndian.AppendUint32(buf, uint32(t.ARUID))
	buf = binary.BigEndian.AppendUint32(buf, t.FCC)
	buf = binary.BigEndian.AppendUint32(buf, t.Backlog)
	buf = binary.BigEndian.AppendUint32(buf, t.BulkBacklog)
	buf = append(buf, t.Flags)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(t.RTR)))
	for _, s := range t.RTR {
		buf = binary.BigEndian.AppendUint32(buf, s)
	}
	return buf, nil
}

// DecodeToken parses a KindToken packet.
func DecodeToken(data []byte) (*Token, error) {
	k, ring, rest, err := parseHeader(data)
	if err != nil {
		return nil, err
	}
	if k != KindToken {
		return nil, fmt.Errorf("%w: kind %v, want token", ErrMalformed, k)
	}
	if len(rest) < tokenBodyLen {
		return nil, ErrTruncated
	}
	t := &Token{
		Ring:        ring,
		Seq:         binary.BigEndian.Uint32(rest),
		Rotation:    binary.BigEndian.Uint32(rest[4:]),
		ARU:         binary.BigEndian.Uint32(rest[8:]),
		ARUID:       proto.NodeID(binary.BigEndian.Uint32(rest[12:])),
		FCC:         binary.BigEndian.Uint32(rest[16:]),
		Backlog:     binary.BigEndian.Uint32(rest[20:]),
		BulkBacklog: binary.BigEndian.Uint32(rest[24:]),
		Flags:       rest[28],
	}
	n := int(binary.BigEndian.Uint16(rest[29:]))
	if n > MaxRTR {
		return nil, fmt.Errorf("%w: %d rtr entries", ErrMalformed, n)
	}
	rest = rest[tokenBodyLen:]
	if len(rest) != 4*n {
		return nil, fmt.Errorf("%w: rtr length", ErrMalformed)
	}
	if n > 0 {
		t.RTR = make([]uint32, n)
		for i := range t.RTR {
			t.RTR[i] = binary.BigEndian.Uint32(rest[4*i:])
		}
	}
	return t, nil
}

// PeekTokenSeq returns (Seq, Rotation) of an encoded token without a full
// decode. The RRP layer uses it to identify token generations (paper §5).
func PeekTokenSeq(data []byte) (seq, rotation uint32, err error) {
	k, _, rest, err := parseHeader(data)
	if err != nil {
		return 0, 0, err
	}
	if k != KindToken {
		return 0, 0, fmt.Errorf("%w: kind %v, want token", ErrMalformed, k)
	}
	if len(rest) < 8 {
		return 0, 0, ErrTruncated
	}
	return binary.BigEndian.Uint32(rest), binary.BigEndian.Uint32(rest[4:]), nil
}

// PeekSender returns the sender of an encoded data packet without a full
// decode. The passive RRP layer's per-sender message monitors use it
// (paper §6).
func PeekSender(data []byte) (proto.NodeID, error) {
	k, _, rest, err := parseHeader(data)
	if err != nil {
		return 0, err
	}
	if k != KindData {
		return 0, fmt.Errorf("%w: kind %v, want data", ErrMalformed, k)
	}
	if len(rest) < 4 {
		return 0, ErrTruncated
	}
	return proto.NodeID(binary.BigEndian.Uint32(rest)), nil
}

// PeekDataFlags returns the Flags byte of an encoded data packet without
// a full decode (used by the RRP monitors to exclude retransmissions).
func PeekDataFlags(data []byte) (uint8, error) {
	k, _, rest, err := parseHeader(data)
	if err != nil {
		return 0, err
	}
	if k != KindData {
		return 0, fmt.Errorf("%w: kind %v, want data", ErrMalformed, k)
	}
	if len(rest) < 9 {
		return 0, ErrTruncated
	}
	return rest[8], nil
}

// --- JoinPacket ---

func encodeNodeSet(buf []byte, set []proto.NodeID) []byte {
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(set)))
	for _, id := range set {
		buf = binary.BigEndian.AppendUint32(buf, uint32(id))
	}
	return buf
}

func decodeNodeSet(rest []byte) ([]proto.NodeID, []byte, error) {
	if len(rest) < 2 {
		return nil, nil, ErrTruncated
	}
	n := int(binary.BigEndian.Uint16(rest))
	if n > MaxMembers {
		return nil, nil, fmt.Errorf("%w: %d set members", ErrMalformed, n)
	}
	rest = rest[2:]
	if len(rest) < 4*n {
		return nil, nil, ErrTruncated
	}
	var set []proto.NodeID
	if n > 0 {
		set = make([]proto.NodeID, n)
		for i := range set {
			set[i] = proto.NodeID(binary.BigEndian.Uint32(rest[4*i:]))
		}
	}
	return set, rest[4*n:], nil
}

// Encode serialises the join packet into a freshly allocated buffer. The
// header ring field carries the sender's old ring so receivers can
// correlate epochs.
func (j *JoinPacket) Encode() ([]byte, error) {
	return j.AppendEncode(make([]byte, 0, headerLen+10+4*(len(j.ProcSet)+len(j.FailSet))))
}

// AppendEncode serialises the join packet by appending to buf. Nothing is
// appended on error.
func (j *JoinPacket) AppendEncode(buf []byte) ([]byte, error) {
	if len(j.ProcSet) > MaxMembers || len(j.FailSet) > MaxMembers {
		return buf, fmt.Errorf("%w: membership sets too large", ErrMalformed)
	}
	buf = putHeader(buf, KindJoin, proto.RingID{})
	buf = binary.BigEndian.AppendUint32(buf, uint32(j.Sender))
	buf = binary.BigEndian.AppendUint32(buf, j.RingSeq)
	buf = encodeNodeSet(buf, j.ProcSet)
	buf = encodeNodeSet(buf, j.FailSet)
	return buf, nil
}

// DecodeJoin parses a KindJoin packet.
func DecodeJoin(data []byte) (*JoinPacket, error) {
	k, _, rest, err := parseHeader(data)
	if err != nil {
		return nil, err
	}
	if k != KindJoin {
		return nil, fmt.Errorf("%w: kind %v, want join", ErrMalformed, k)
	}
	if len(rest) < 8 {
		return nil, ErrTruncated
	}
	j := &JoinPacket{
		Sender:  proto.NodeID(binary.BigEndian.Uint32(rest)),
		RingSeq: binary.BigEndian.Uint32(rest[4:]),
	}
	rest = rest[8:]
	if j.ProcSet, rest, err = decodeNodeSet(rest); err != nil {
		return nil, err
	}
	if j.FailSet, rest, err = decodeNodeSet(rest); err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrMalformed, len(rest))
	}
	return j, nil
}

// --- CommitToken ---

// Encode serialises the commit token into a freshly allocated buffer.
func (c *CommitToken) Encode() ([]byte, error) {
	return c.AppendEncode(make([]byte, 0, headerLen+2+21*len(c.Members)))
}

// AppendEncode serialises the commit token by appending to buf. Nothing is
// appended on error.
func (c *CommitToken) AppendEncode(buf []byte) ([]byte, error) {
	if len(c.Members) == 0 || len(c.Members) > MaxMembers {
		return buf, fmt.Errorf("%w: %d commit members", ErrMalformed, len(c.Members))
	}
	buf = putHeader(buf, KindCommit, c.Ring)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(c.Members)))
	for _, m := range c.Members {
		buf = binary.BigEndian.AppendUint32(buf, uint32(m.ID))
		buf = binary.BigEndian.AppendUint32(buf, uint32(m.OldRing.Rep))
		buf = binary.BigEndian.AppendUint32(buf, m.OldRing.Epoch)
		buf = binary.BigEndian.AppendUint32(buf, m.MyAru)
		buf = binary.BigEndian.AppendUint32(buf, m.HighSeq)
		buf = append(buf, m.Visits)
	}
	return buf, nil
}

// DecodeCommit parses a KindCommit packet.
func DecodeCommit(data []byte) (*CommitToken, error) {
	k, ring, rest, err := parseHeader(data)
	if err != nil {
		return nil, err
	}
	if k != KindCommit {
		return nil, fmt.Errorf("%w: kind %v, want commit", ErrMalformed, k)
	}
	if len(rest) < 2 {
		return nil, ErrTruncated
	}
	n := int(binary.BigEndian.Uint16(rest))
	if n == 0 || n > MaxMembers {
		return nil, fmt.Errorf("%w: %d commit members", ErrMalformed, n)
	}
	rest = rest[2:]
	if len(rest) != 21*n {
		return nil, fmt.Errorf("%w: commit member length", ErrMalformed)
	}
	c := &CommitToken{Ring: ring, Members: make([]CommitEntry, n)}
	for i := range c.Members {
		f := rest[21*i:]
		c.Members[i] = CommitEntry{
			ID:      proto.NodeID(binary.BigEndian.Uint32(f)),
			OldRing: proto.RingID{Rep: proto.NodeID(binary.BigEndian.Uint32(f[4:])), Epoch: binary.BigEndian.Uint32(f[8:])},
			MyAru:   binary.BigEndian.Uint32(f[12:]),
			HighSeq: binary.BigEndian.Uint32(f[16:]),
			Visits:  f[20],
		}
	}
	return c, nil
}

// --- MergeDetect ---

// MergeDetect is periodically broadcast by the representative of an
// operational ring so that rings separated by a healed partition discover
// each other and merge (the totemsrp "merge detect" mechanism). The header
// carries the sender's ring; receivers on a different ring start the
// membership protocol.
type MergeDetect struct {
	Ring   proto.RingID
	Sender proto.NodeID
}

// Encode serialises the merge-detect packet into a freshly allocated
// buffer.
func (m *MergeDetect) Encode() ([]byte, error) {
	return m.AppendEncode(make([]byte, 0, headerLen+4))
}

// AppendEncode serialises the merge-detect packet by appending to buf.
func (m *MergeDetect) AppendEncode(buf []byte) ([]byte, error) {
	buf = putHeader(buf, KindMergeDetect, m.Ring)
	buf = binary.BigEndian.AppendUint32(buf, uint32(m.Sender))
	return buf, nil
}

// DecodeMergeDetect parses a KindMergeDetect packet.
func DecodeMergeDetect(data []byte) (*MergeDetect, error) {
	k, ring, rest, err := parseHeader(data)
	if err != nil {
		return nil, err
	}
	if k != KindMergeDetect {
		return nil, fmt.Errorf("%w: kind %v, want merge-detect", ErrMalformed, k)
	}
	if len(rest) != 4 {
		return nil, ErrTruncated
	}
	return &MergeDetect{Ring: ring, Sender: proto.NodeID(binary.BigEndian.Uint32(rest))}, nil
}
