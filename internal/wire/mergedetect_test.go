package wire

import (
	"errors"
	"reflect"
	"testing"

	"github.com/totem-rrp/totem/internal/proto"
)

func TestMergeDetectRoundTrip(t *testing.T) {
	md := &MergeDetect{Ring: proto.RingID{Rep: 2, Epoch: 9}, Sender: 5}
	data, err := md.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeMergeDetect(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(md, got) {
		t.Fatalf("round trip: %+v vs %+v", got, md)
	}
	k, err := PeekKind(data)
	if err != nil || k != KindMergeDetect {
		t.Fatalf("PeekKind = %v, %v", k, err)
	}
}

func TestMergeDetectRejectsWrongKind(t *testing.T) {
	tok := &Token{Ring: proto.RingID{Rep: 1, Epoch: 1}}
	data, err := tok.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeMergeDetect(data); !errors.Is(err, ErrMalformed) {
		t.Fatalf("err = %v", err)
	}
}

func TestMergeDetectRejectsTruncation(t *testing.T) {
	md := &MergeDetect{Ring: proto.RingID{Rep: 1, Epoch: 1}, Sender: 1}
	data, err := md.Encode()
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(data); cut++ {
		if _, err := DecodeMergeDetect(data[:cut]); err == nil {
			t.Fatalf("accepted truncation at %d", cut)
		}
	}
	if _, err := DecodeMergeDetect(append(data, 0)); err == nil {
		t.Fatal("accepted trailing bytes")
	}
}

func TestPeekSender(t *testing.T) {
	p := &DataPacket{
		Ring: proto.RingID{Rep: 1, Epoch: 1}, Sender: 42, Seq: 7,
		Chunks: []Chunk{{Flags: ChunkFirst | ChunkLast, Data: []byte("x")}},
	}
	data, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	sender, err := PeekSender(data)
	if err != nil || sender != 42 {
		t.Fatalf("PeekSender = %v, %v", sender, err)
	}
	tok, _ := (&Token{Ring: proto.RingID{Rep: 1, Epoch: 1}}).Encode()
	if _, err := PeekSender(tok); !errors.Is(err, ErrMalformed) {
		t.Fatalf("PeekSender on token: %v", err)
	}
}

func TestPeekDataFlags(t *testing.T) {
	p := &DataPacket{
		Ring: proto.RingID{Rep: 1, Epoch: 1}, Sender: 1, Seq: 1,
		Flags:  FlagRetrans,
		Chunks: []Chunk{{Flags: ChunkFirst | ChunkLast, Data: []byte("x")}},
	}
	data, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	flags, err := PeekDataFlags(data)
	if err != nil || flags != FlagRetrans {
		t.Fatalf("PeekDataFlags = %x, %v", flags, err)
	}
	tok, _ := (&Token{Ring: proto.RingID{Rep: 1, Epoch: 1}}).Encode()
	if _, err := PeekDataFlags(tok); !errors.Is(err, ErrMalformed) {
		t.Fatalf("PeekDataFlags on token: %v", err)
	}
}

func TestRecoveryPacketAllowsEncapsulationSlack(t *testing.T) {
	// An encapsulated full-size packet exceeds MaxPayload but must encode
	// when flagged as recovery.
	inner := &DataPacket{
		Ring: proto.RingID{Rep: 1, Epoch: 1}, Sender: 1, Seq: 1,
		Chunks: []Chunk{{Flags: ChunkFirst | ChunkLast, Data: make([]byte, MaxPayload-ChunkOverhead)}},
	}
	innerData, err := inner.Encode()
	if err != nil {
		t.Fatal(err)
	}
	outer := &DataPacket{
		Ring: proto.RingID{Rep: 1, Epoch: 2}, Sender: 1, Seq: 1,
		Flags:  FlagRecovery,
		Chunks: []Chunk{{Flags: ChunkFirst | ChunkLast, Data: innerData}},
	}
	data, err := outer.Encode()
	if err != nil {
		t.Fatalf("recovery encapsulation rejected: %v", err)
	}
	got, err := DecodeData(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	inner2, err := DecodeData(got.Chunks[0].Data)
	if err != nil {
		t.Fatalf("inner decode: %v", err)
	}
	if inner2.Seq != inner.Seq || len(inner2.Chunks[0].Data) != len(inner.Chunks[0].Data) {
		t.Fatal("inner packet corrupted by encapsulation")
	}
	// Without the flag the same payload is rejected.
	outer.Flags = 0
	if _, err := outer.Encode(); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized non-recovery packet accepted: %v", err)
	}
}
