package wire

import (
	"testing"

	"github.com/totem-rrp/totem/internal/proto"
)

// The BenchmarkHotPath* family measures the steady-state packet path in
// isolation. The headline target (enforced by EXPERIMENTS.md and the CI
// bench smoke job) is 0 allocs/op for data-packet encode into a pooled
// frame; decode still allocates by design, because decoded packets are
// retained for retransmission while the raw frame is recycled.

func hotPathPacket(msgLen int) *DataPacket {
	return &DataPacket{
		Ring:   proto.RingID{Rep: 1, Epoch: 7},
		Sender: 1,
		Seq:    42,
		Chunks: []Chunk{{Flags: ChunkFirst | ChunkLast, Data: fill(msgLen, 3)}},
	}
}

func BenchmarkHotPathEncode(b *testing.B) {
	pkt := hotPathPacket(1400)
	b.SetBytes(1400)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkt.Seq++
		buf, err := pkt.AppendEncode(GetFrame())
		if err != nil {
			b.Fatal(err)
		}
		PutFrame(buf)
	}
}

func BenchmarkHotPathDecode(b *testing.B) {
	pkt := hotPathPacket(1400)
	data, err := pkt.Encode()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeData(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHotPathFramePool(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PutFrame(GetFrame())
	}
}

func BenchmarkHotPathPacker(b *testing.B) {
	// Steady state of the paper's sawtooth peak: two 700 B messages per
	// packet. The message buffers are recycled by the benchmark because
	// Enqueue transfers ownership.
	msgs := [2][]byte{fill(700, 1), fill(700, 2)}
	var p Packer
	b.SetBytes(1400)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Enqueue(msgs[0])
		p.Enqueue(msgs[1])
		for !p.Empty() {
			if p.NextChunks() == nil {
				b.Fatal("packer stalled")
			}
		}
	}
}

func BenchmarkHotPathAssembler(b *testing.B) {
	a := NewAssembler()
	c := Chunk{Flags: ChunkFirst | ChunkLast, Data: fill(700, 1)}
	b.SetBytes(700)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := a.Add(1, c); !ok {
			b.Fatal("whole chunk must complete a message")
		}
	}
}
