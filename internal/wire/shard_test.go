package wire

import (
	"bytes"
	"errors"
	"testing"

	"github.com/totem-rrp/totem/internal/proto"
)

func TestShardTagRoundTrip(t *testing.T) {
	pkt := &DataPacket{
		Ring:   proto.RingID{Rep: 1, Epoch: 3},
		Sender: 2,
		Seq:    7,
		Chunks: []Chunk{{Flags: ChunkFirst | ChunkLast, Data: []byte("hello")}},
	}
	frame, err := pkt.Encode()
	if err != nil {
		t.Fatal(err)
	}
	for shard := 0; shard < MaxShards; shard += 17 {
		tagged := WrapShard(shard, frame)
		if len(tagged) != len(frame)+ShardOverhead {
			t.Fatalf("shard %d: tagged length %d, want %d", shard, len(tagged), len(frame)+ShardOverhead)
		}
		got, inner, err := PeekShard(tagged)
		if err != nil {
			t.Fatalf("shard %d: PeekShard: %v", shard, err)
		}
		if got != shard {
			t.Fatalf("PeekShard shard = %d, want %d", got, shard)
		}
		if !bytes.Equal(inner, frame) {
			t.Fatalf("shard %d: inner frame mangled", shard)
		}
		if _, err := DecodeData(inner); err != nil {
			t.Fatalf("shard %d: inner decode: %v", shard, err)
		}
		PutFrame(tagged)
	}
}

func TestPeekShardUntaggedIsShardZero(t *testing.T) {
	tok := &Token{Ring: proto.RingID{Rep: 1, Epoch: 1}, Seq: 5}
	frame, err := tok.Encode()
	if err != nil {
		t.Fatal(err)
	}
	shard, inner, err := PeekShard(frame)
	if err != nil {
		t.Fatal(err)
	}
	if shard != 0 {
		t.Fatalf("untagged frame reported shard %d", shard)
	}
	if len(inner) != len(frame) || &inner[0] != &frame[0] {
		t.Fatal("untagged frame must be returned unchanged (no copy, no trim)")
	}
}

func TestPeekShardRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{0x54},
		{0x00, 0x00, 0x00},
		{0xff, 0xff, 0x01, 0x02},
	}
	for _, c := range cases {
		if _, _, err := PeekShard(c); err == nil {
			t.Fatalf("PeekShard(%v) accepted garbage", c)
		}
	}
	// A truncated tagged frame: magic only, no shard byte.
	if _, _, err := PeekShard([]byte{0x54, 0x53}); !errors.Is(err, ErrTruncated) {
		t.Fatalf("want ErrTruncated for short tagged frame, got %v", err)
	}
}

func TestWrapShardPoolsFrames(t *testing.T) {
	frame := make([]byte, MaxPayload)
	tagged := WrapShard(3, frame)
	if cap(tagged) != FrameCap {
		t.Fatalf("WrapShard did not use a pooled frame (cap %d)", cap(tagged))
	}
	PutFrame(tagged)
	// Oversized input falls back to the heap rather than panicking.
	big := make([]byte, FrameCap)
	tagged = WrapShard(1, big)
	if cap(tagged) == FrameCap {
		t.Fatal("oversized WrapShard must not claim a pooled frame")
	}
}
