package wire

import "github.com/totem-rrp/totem/internal/proto"

// Packer lanes. The interactive lane carries ordinary Submit traffic and
// keeps the paper's packing semantics exactly; the bulk lane carries
// chunked large-transfer traffic, which is packed as a byte stream into
// whatever budget the interactive lane leaves over.
const (
	// LaneInteractive is the default lane (paper §8 semantics).
	LaneInteractive = 0
	// LaneBulk is the rate-limited large-transfer lane.
	LaneBulk = 1
	// PackerLanes is the number of lanes.
	PackerLanes = 2
)

// laneQueue is one lane's send queue.
type laneQueue struct {
	pending    [][]byte
	fragOffset int // bytes of pending[0] already emitted
	queuedByte int
}

// Packer implements the Totem message-packing algorithm (paper §8),
// extended with a second, lower-priority bulk lane: all queued application
// messages that fit are placed into a single packet of at most MaxPayload
// bytes; a message longer than the payload budget is split across multiple
// packets. Interactive messages that fit whole are never split, which is
// what produces the characteristic throughput peaks at 1424/k message
// sizes. Interactive chunks fill each packet first; bulk chunks stream
// into the remaining budget and — unlike interactive fragments — may begin
// mid-packet, so bulk wastes none of the space interactive traffic leaves
// over.
//
// Packer is a pure data structure with no locking; the SRP machine owns it.
type Packer struct {
	lane [PackerLanes]laneQueue
	// finished collects fully-emitted bulk messages for buffer recycling
	// when collectFinished is set (the SRP machine reuses the chunk
	// envelope buffers once the packets that carried them are pruned).
	finished        [][]byte
	collectFinished bool
}

// Enqueue appends an application message to the interactive send queue.
// The caller must not reuse msg afterwards.
func (p *Packer) Enqueue(msg []byte) {
	p.lane[LaneInteractive].pending = append(p.lane[LaneInteractive].pending, msg)
	p.lane[LaneInteractive].queuedByte += len(msg)
}

// EnqueueBulk appends a message to the bulk lane. The caller must not
// reuse msg afterwards (with CollectFinished it gets the buffer back via
// TakeFinishedBulk once the message has been fully emitted).
func (p *Packer) EnqueueBulk(msg []byte) {
	p.lane[LaneBulk].pending = append(p.lane[LaneBulk].pending, msg)
	p.lane[LaneBulk].queuedByte += len(msg)
}

// Backlog returns the number of queued (possibly partially sent)
// interactive messages. Bulk messages are counted by BulkBacklog: the two
// lanes are flow-controlled independently.
func (p *Packer) Backlog() int { return len(p.lane[LaneInteractive].pending) }

// BulkBacklog returns the number of queued (possibly partially sent) bulk
// messages.
func (p *Packer) BulkBacklog() int { return len(p.lane[LaneBulk].pending) }

// QueuedBytes returns the number of not-yet-emitted payload bytes across
// both lanes.
func (p *Packer) QueuedBytes() int {
	total := 0
	for i := range p.lane {
		total += p.lane[i].queuedByte - p.lane[i].fragOffset
	}
	return total
}

// Empty reports whether nothing remains to send on either lane.
func (p *Packer) Empty() bool {
	return len(p.lane[LaneInteractive].pending) == 0 && len(p.lane[LaneBulk].pending) == 0
}

// CollectFinished enables collection of fully-emitted bulk message buffers
// for recycling; drain them with TakeFinishedBulk after every packet, or
// the list grows without bound.
func (p *Packer) CollectFinished(on bool) { p.collectFinished = on }

// TakeFinishedBulk returns the bulk message buffers fully emitted since
// the last call and resets the list. Only meaningful with CollectFinished.
func (p *Packer) TakeFinishedBulk() [][]byte {
	out := p.finished
	p.finished = nil
	return out
}

// maxWhole is the largest message that can travel unfragmented.
const maxWhole = MaxPayload - ChunkOverhead

// NextChunks fills one packet's worth of chunks from both lanes, honouring
// the packing rules above. It returns nil when both queues are empty.
func (p *Packer) NextChunks() []Chunk { return p.nextChunks(MaxPayload, true) }

// NextChunksInteractive fills one packet from the interactive lane only,
// leaving the bulk lane untouched. The SRP uses it once a token visit's
// bulk budget is spent.
func (p *Packer) NextChunksInteractive() []Chunk { return p.nextChunks(MaxPayload, false) }

// nextChunks is the budget-parameterised core of NextChunks; tests drive
// it with tiny budgets to audit the boundary arithmetic exhaustively. The
// invariants, regardless of budget (which must exceed ChunkOverhead):
// every chunk's framed size fits the remaining budget, no continuation
// chunk is ever empty (a fragment boundary landing exactly on the budget
// closes the packet instead of emitting a zero-byte chunk), and at most
// MaxChunks chunks are emitted per packet (the encoder's hard cap, which
// tiny messages would otherwise overflow).
func (p *Packer) nextChunks(budget int, allowBulk bool) []Chunk {
	var chunks []Chunk
	full := budget
	it := &p.lane[LaneInteractive]
interactive:
	for len(it.pending) > 0 && budget > ChunkOverhead && len(chunks) < MaxChunks {
		head := it.pending[0]
		switch {
		case it.fragOffset > 0:
			// Continue a fragmented message.
			rem := len(head) - it.fragOffset
			take := min(rem, budget-ChunkOverhead)
			var flags uint8
			if take == rem {
				flags |= ChunkLast
			}
			chunks = append(chunks, Chunk{Flags: flags, Data: head[it.fragOffset : it.fragOffset+take]})
			it.fragOffset += take
			budget -= take + ChunkOverhead
			if it.fragOffset == len(head) {
				p.popHead(LaneInteractive)
			}
		case len(head)+ChunkOverhead <= budget:
			// Whole message fits.
			chunks = append(chunks, Chunk{Flags: ChunkFirst | ChunkLast, Data: head})
			budget -= len(head) + ChunkOverhead
			p.popHead(LaneInteractive)
		case len(head)+ChunkOverhead > full && len(chunks) == 0:
			// Oversized message (cannot fit whole in any packet): begin
			// fragmenting in a fresh packet.
			take := budget - ChunkOverhead
			chunks = append(chunks, Chunk{Flags: ChunkFirst, Data: head[:take]})
			it.fragOffset = take
			budget = 0
		default:
			// Fits in a later packet whole; leave the rest of this one to
			// the bulk lane.
			break interactive
		}
	}
	if !allowBulk {
		return chunks
	}
	// Bulk fill: the bulk lane is a byte stream with message framing. It
	// has no fresh-packet rule — a bulk message may start fragmenting in
	// the space an interactive packet leaves over, trading the interactive
	// lane's never-split guarantee for zero wasted budget.
	b := &p.lane[LaneBulk]
	for len(b.pending) > 0 && budget > ChunkOverhead && len(chunks) < MaxChunks {
		head := b.pending[0]
		rem := len(head) - b.fragOffset
		take := min(rem, budget-ChunkOverhead)
		flags := ChunkBulk
		if b.fragOffset == 0 {
			flags |= ChunkFirst
		}
		if take == rem {
			flags |= ChunkLast
		}
		chunks = append(chunks, Chunk{Flags: flags, Data: head[b.fragOffset : b.fragOffset+take]})
		b.fragOffset += take
		budget -= take + ChunkOverhead
		if b.fragOffset == len(head) {
			p.popHead(LaneBulk)
		}
	}
	return chunks
}

func (p *Packer) popHead(lane int) {
	q := &p.lane[lane]
	head := q.pending[0]
	q.queuedByte -= len(head)
	if lane == LaneBulk && p.collectFinished {
		p.finished = append(p.finished, head)
	}
	q.pending[0] = nil
	q.pending = q.pending[1:]
	q.fragOffset = 0
	if len(q.pending) == 0 {
		q.pending = nil
	}
}

// Rewind resets each lane's fragment cursor so a partially-emitted head
// message will be re-emitted from its start. The SRP calls it when a new
// ring's sequence space begins: fragments already broadcast on the
// abandoned ring can never be completed there (reassembly state is scoped
// to a ring), so continuing from the cursor would send a continuation
// chunk with no start — every receiver would drop the remainder and the
// message would vanish. Restarting it whole on the new ring delivers it
// exactly once (the old ring's partial prefix completes nowhere).
func (p *Packer) Rewind() {
	for i := range p.lane {
		p.lane[i].fragOffset = 0
	}
}

// PacketsFor returns how many packets count interactive messages of
// msgLen bytes occupy when flushed. Used by flow-control backlog
// accounting and by the benchmark harness's analytic checks; it is exact
// for a uniform interactive queue and differentially tested against
// NextChunks.
func PacketsFor(msgLen, count int) int {
	if count == 0 {
		return 0
	}
	if msgLen+ChunkOverhead <= MaxPayload {
		perPacket := MaxPayload / (msgLen + ChunkOverhead)
		// The encoder caps a packet at MaxChunks chunks, so tiny messages
		// pack out of chunk slots before they pack out of bytes.
		if perPacket > MaxChunks {
			perPacket = MaxChunks
		}
		return (count + perPacket - 1) / perPacket
	}
	// Fragmented: each message takes ceil(len/budget) packets. This is
	// exact, not conservative: an interactive fragment may only begin in a
	// fresh packet, so with a uniform queue of oversized messages the final
	// fragment never shares its packet with the next message's start (the
	// bulk lane, which does share, is modelled by PacketsForBulk).
	per := (msgLen + maxWhole - 1) / maxWhole
	return per * count
}

// PacketsForBulk returns how many packets count bulk messages of msgLen
// bytes occupy when flushed with no competing interactive traffic. The
// bulk lane streams: a message's final fragment shares its packet with the
// next message's start, so the model mirrors nextChunks' loop exactly and
// is differentially tested against it.
func PacketsForBulk(msgLen, count int) int {
	if count == 0 {
		return 0
	}
	packets, budget, chunksInPkt := 0, 0, 0
	for i := 0; i < count; i++ {
		rem := msgLen
		for {
			if budget <= ChunkOverhead || chunksInPkt >= MaxChunks {
				packets++
				budget = MaxPayload
				chunksInPkt = 0
			}
			take := min(rem, budget-ChunkOverhead)
			budget -= take + ChunkOverhead
			chunksInPkt++
			rem -= take
			if rem == 0 {
				break
			}
		}
	}
	return packets
}

// asmKey scopes reassembly state: the total order guarantees chunks from
// one sender arrive in the order they were packed, but the two lanes
// interleave freely, so each (sender, lane) pair needs its own partial.
type asmKey struct {
	sender proto.NodeID
	bulk   bool
}

// Assembler reassembles chunk streams back into application messages, one
// partial buffer per sender and lane.
type Assembler struct {
	partial map[asmKey][]byte
	// Dropped counts reassembly anomalies: a continuation without a start
	// (legitimate when joining mid-stream after a configuration change) and
	// a partially-assembled prefix abandoned because a fresh ChunkFirst
	// arrived mid-reassembly.
	Dropped int
}

// NewAssembler returns an empty assembler.
func NewAssembler() *Assembler {
	return &Assembler{partial: make(map[asmKey][]byte)}
}

// Add processes one chunk from sender and returns (message, true) when the
// chunk completes an application message.
//
// Zero-copy contract: for an unfragmented message (First|Last) the
// returned slice aliases c.Data — no copy is made, and the assembler
// itself never retains or mutates it. The caller owns the returned slice
// only as far as the chunk's backing buffer lives and must treat it as
// read-only (the SRP retains decoded packets for retransmission until the
// safe horizon passes); a caller that needs to mutate or outlive the
// packet must copy. Fragmented messages are accumulated into a buffer the
// assembler allocates, which the caller owns outright.
func (a *Assembler) Add(sender proto.NodeID, c Chunk) ([]byte, bool) {
	key := asmKey{sender: sender, bulk: c.Flags&ChunkBulk != 0}
	first := c.Flags&ChunkFirst != 0
	last := c.Flags&ChunkLast != 0
	switch {
	case first && last:
		if _, abandoned := a.partial[key]; abandoned {
			a.Dropped++
			delete(a.partial, key)
		}
		return c.Data, true
	case first:
		if _, abandoned := a.partial[key]; abandoned {
			a.Dropped++
		}
		a.partial[key] = append([]byte(nil), c.Data...)
		return nil, false
	default:
		buf, ok := a.partial[key]
		if !ok {
			a.Dropped++
			return nil, false
		}
		buf = append(buf, c.Data...)
		if last {
			delete(a.partial, key)
			return buf, true
		}
		a.partial[key] = buf
		return nil, false
	}
}

// Reset discards all partial state (used on configuration change).
func (a *Assembler) Reset() {
	clear(a.partial)
}
