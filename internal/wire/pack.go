package wire

import "github.com/totem-rrp/totem/internal/proto"

// Packer implements the Totem message-packing algorithm (paper §8): all
// queued application messages that fit are placed into a single packet of
// at most MaxPayload bytes; a message longer than the payload budget is
// split across multiple packets. Messages that fit whole are never split,
// which is what produces the characteristic throughput peaks at 1424/k
// message sizes.
//
// Packer is a pure data structure with no locking; the SRP machine owns it.
type Packer struct {
	pending    [][]byte
	fragOffset int // bytes of pending[0] already emitted
	queuedByte int
}

// Enqueue appends an application message to the send queue. The caller
// must not reuse msg afterwards.
func (p *Packer) Enqueue(msg []byte) {
	p.pending = append(p.pending, msg)
	p.queuedByte += len(msg)
}

// Backlog returns the number of queued (possibly partially sent) messages.
func (p *Packer) Backlog() int { return len(p.pending) }

// QueuedBytes returns the number of not-yet-emitted payload bytes.
func (p *Packer) QueuedBytes() int { return p.queuedByte - p.fragOffset }

// Empty reports whether nothing remains to send.
func (p *Packer) Empty() bool { return len(p.pending) == 0 }

// maxWhole is the largest message that can travel unfragmented.
const maxWhole = MaxPayload - ChunkOverhead

// NextChunks fills one packet's worth of chunks from the queue, honouring
// the packing rules above. It returns nil when the queue is empty.
func (p *Packer) NextChunks() []Chunk {
	budget := MaxPayload
	var chunks []Chunk
	for len(p.pending) > 0 && budget > ChunkOverhead {
		head := p.pending[0]
		switch {
		case p.fragOffset > 0:
			// Continue a fragmented message.
			rem := len(head) - p.fragOffset
			take := min(rem, budget-ChunkOverhead)
			var flags uint8
			if take == rem {
				flags |= ChunkLast
			}
			chunks = append(chunks, Chunk{Flags: flags, Data: head[p.fragOffset : p.fragOffset+take]})
			p.fragOffset += take
			budget -= take + ChunkOverhead
			if p.fragOffset == len(head) {
				p.popHead()
			}
		case len(head)+ChunkOverhead <= budget:
			// Whole message fits.
			chunks = append(chunks, Chunk{Flags: ChunkFirst | ChunkLast, Data: head})
			budget -= len(head) + ChunkOverhead
			p.popHead()
		case len(head) > maxWhole && len(chunks) == 0:
			// Oversized message: begin fragmenting in a fresh packet.
			take := budget - ChunkOverhead
			chunks = append(chunks, Chunk{Flags: ChunkFirst, Data: head[:take]})
			p.fragOffset = take
			budget = 0
		default:
			// Fits in a later packet whole; close this one.
			return chunks
		}
	}
	return chunks
}

func (p *Packer) popHead() {
	p.queuedByte -= len(p.pending[0])
	p.pending[0] = nil
	p.pending = p.pending[1:]
	p.fragOffset = 0
	if len(p.pending) == 0 {
		p.pending = nil
	}
}

// PacketsFor returns how many packets the current queue would occupy if
// flushed completely. Used by flow-control backlog accounting and by the
// benchmark harness's analytic checks.
func PacketsFor(msgLen, count int) int {
	if count == 0 {
		return 0
	}
	if msgLen+ChunkOverhead <= MaxPayload {
		perPacket := MaxPayload / (msgLen + ChunkOverhead)
		return (count + perPacket - 1) / perPacket
	}
	// Fragmented: each message takes ceil(len/budget) packets (fragments
	// do not share packets with the next message's start in this model
	// except the final fragment, which we conservatively ignore).
	per := (msgLen + maxWhole - 1) / maxWhole
	return per * count
}

// Assembler reassembles chunk streams back into application messages. The
// total order guarantees chunks from one sender arrive in the order they
// were packed, so one partial buffer per sender suffices.
type Assembler struct {
	partial map[proto.NodeID][]byte
	// Dropped counts protocol anomalies (continuation without a start),
	// which can occur legitimately when joining mid-stream after a
	// configuration change.
	Dropped int
}

// NewAssembler returns an empty assembler.
func NewAssembler() *Assembler {
	return &Assembler{partial: make(map[proto.NodeID][]byte)}
}

// Add processes one chunk from sender and returns (message, true) when the
// chunk completes an application message.
//
// Zero-copy contract: for an unfragmented message (First|Last) the
// returned slice aliases c.Data — no copy is made, and the assembler
// itself never retains or mutates it. The caller owns the returned slice
// only as far as the chunk's backing buffer lives and must treat it as
// read-only (the SRP retains decoded packets for retransmission until the
// safe horizon passes); a caller that needs to mutate or outlive the
// packet must copy. Fragmented messages are accumulated into a buffer the
// assembler allocates, which the caller owns outright.
func (a *Assembler) Add(sender proto.NodeID, c Chunk) ([]byte, bool) {
	first := c.Flags&ChunkFirst != 0
	last := c.Flags&ChunkLast != 0
	switch {
	case first && last:
		delete(a.partial, sender)
		return c.Data, true
	case first:
		a.partial[sender] = append([]byte(nil), c.Data...)
		return nil, false
	default:
		buf, ok := a.partial[sender]
		if !ok {
			a.Dropped++
			return nil, false
		}
		buf = append(buf, c.Data...)
		if last {
			delete(a.partial, sender)
			return buf, true
		}
		a.partial[sender] = buf
		return nil, false
	}
}

// Reset discards all partial state (used on configuration change).
func (a *Assembler) Reset() {
	clear(a.partial)
}
