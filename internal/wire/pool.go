package wire

import "sync"

// Frame-buffer pool for the steady-state packet path. Encoding a data
// packet into a pooled frame with AppendEncode is allocation-free, and the
// pool round-trip itself never allocates: buffers are backed by fixed-size
// arrays, so Put converts the slice back to an array pointer instead of
// boxing a new slice header.
//
// Ownership rules (DESIGN.md §8b):
//
//   - Only KindData packets travel in pooled frames. Token, join and
//     commit buffers are retained across events (token gating, token and
//     commit retransmission) and must stay on the ordinary heap.
//   - A layer that emits a pooled frame transfers ownership downward with
//     it; no layer may retain the raw bytes of a KindData packet after its
//     Send/OnPacket call returns (the SRP decodes-and-copies).
//   - The driver at the bottom (simulator, real-time runtime) returns a
//     frame with PutFrame once every send and every local delivery that
//     references it has completed.

// FrameCap is the capacity of pooled frame buffers: the largest encoded
// packet (a recovery data packet) always fits.
const FrameCap = MaxFrame + RecoverySlack

var framePool = sync.Pool{
	New: func() any { return new([FrameCap]byte) },
}

// GetFrame returns an empty frame buffer with FrameCap capacity.
func GetFrame() []byte {
	return framePool.Get().(*[FrameCap]byte)[:0]
}

// PutFrame returns a frame obtained from GetFrame to the pool. Buffers of
// any other capacity (e.g. from Encode) are ignored, so drivers may call
// it unconditionally on buffers they own. The caller must guarantee no
// other reference to buf remains live.
func PutFrame(buf []byte) {
	if cap(buf) != FrameCap {
		return
	}
	framePool.Put((*[FrameCap]byte)(buf[:FrameCap]))
}

// ReleaseFrame is PutFrame restricted to data packets: control packets
// (tokens, join, commit) may be retained by upper layers after their
// handler returns, so a driver holding a frame of unknown kind recycles it
// through this guard. Non-pooled buffers and undecodable frames are
// ignored.
func ReleaseFrame(data []byte) {
	if cap(data) != FrameCap {
		return
	}
	if k, err := PeekKind(data); err != nil || k != KindData {
		return
	}
	framePool.Put((*[FrameCap]byte)(data[:FrameCap]))
}
