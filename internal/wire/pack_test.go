package wire

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/totem-rrp/totem/internal/proto"
)

func fill(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = seed + byte(i)
	}
	return b
}

func TestPackerTwo700ByteMessagesShareOnePacket(t *testing.T) {
	// The paper's sawtooth peak: 2 x 700 B (+2 x 3 B framing) = 1406 <= 1424.
	var p Packer
	p.Enqueue(fill(700, 1))
	p.Enqueue(fill(700, 2))
	chunks := p.NextChunks()
	if len(chunks) != 2 {
		t.Fatalf("want 2 chunks in one packet, got %d", len(chunks))
	}
	if !p.Empty() {
		t.Fatalf("queue should be drained")
	}
}

func TestPackerTwo712ByteMessagesNeedTwoPackets(t *testing.T) {
	// 2 x (712+3) = 1430 > 1424: second message must wait, unfragmented.
	var p Packer
	p.Enqueue(fill(712, 1))
	p.Enqueue(fill(712, 2))
	first := p.NextChunks()
	if len(first) != 1 {
		t.Fatalf("want 1 chunk in first packet, got %d", len(first))
	}
	if first[0].Flags != ChunkFirst|ChunkLast {
		t.Fatalf("whole message must not be fragmented, flags=%x", first[0].Flags)
	}
	second := p.NextChunks()
	if len(second) != 1 || len(second[0].Data) != 712 {
		t.Fatalf("second packet wrong: %d chunks", len(second))
	}
}

func TestPackerFragmentsOversizedMessage(t *testing.T) {
	msg := fill(3000, 7)
	var p Packer
	p.Enqueue(append([]byte(nil), msg...))
	var got []byte
	var flagsSeen []uint8
	for !p.Empty() {
		for _, c := range p.NextChunks() {
			got = append(got, c.Data...)
			flagsSeen = append(flagsSeen, c.Flags)
		}
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("fragment reassembly bytes differ: %d vs %d", len(got), len(msg))
	}
	if len(flagsSeen) < 3 {
		t.Fatalf("3000B must need >= 3 fragments, got %d", len(flagsSeen))
	}
	if flagsSeen[0] != ChunkFirst {
		t.Fatalf("first fragment flags = %x", flagsSeen[0])
	}
	if flagsSeen[len(flagsSeen)-1] != ChunkLast {
		t.Fatalf("last fragment flags = %x", flagsSeen[len(flagsSeen)-1])
	}
	for _, f := range flagsSeen[1 : len(flagsSeen)-1] {
		if f != 0 {
			t.Fatalf("middle fragment flags = %x", f)
		}
	}
}

func TestPackerFinalFragmentSharesPacketWithNextMessage(t *testing.T) {
	var p Packer
	p.Enqueue(fill(1500, 1)) // 1421 + 79
	p.Enqueue(fill(100, 2))
	first := p.NextChunks()
	if len(first) != 1 || len(first[0].Data) != maxWhole {
		t.Fatalf("first packet should be one full fragment, got %d chunks (%d bytes)",
			len(first), len(first[0].Data))
	}
	second := p.NextChunks()
	if len(second) != 2 {
		t.Fatalf("final fragment and next whole message should share a packet, got %d chunks", len(second))
	}
	if second[0].Flags != ChunkLast || second[1].Flags != ChunkFirst|ChunkLast {
		t.Fatalf("flags wrong: %x %x", second[0].Flags, second[1].Flags)
	}
}

func TestPackerEmptyQueue(t *testing.T) {
	var p Packer
	if got := p.NextChunks(); got != nil {
		t.Fatalf("want nil for empty queue, got %v", got)
	}
	if p.Backlog() != 0 || p.QueuedBytes() != 0 || !p.Empty() {
		t.Fatalf("empty packer accounting wrong")
	}
}

func TestPackerZeroLengthMessage(t *testing.T) {
	var p Packer
	p.Enqueue(nil)
	chunks := p.NextChunks()
	if len(chunks) != 1 || chunks[0].Flags != ChunkFirst|ChunkLast || len(chunks[0].Data) != 0 {
		t.Fatalf("zero-length message mishandled: %+v", chunks)
	}
}

func TestPackerExactlyMaxWholeMessage(t *testing.T) {
	// 1421 + 3 B framing = exactly MaxPayload: travels whole, alone.
	var p Packer
	p.Enqueue(fill(maxWhole, 1))
	chunks := p.NextChunks()
	if len(chunks) != 1 || chunks[0].Flags != ChunkFirst|ChunkLast || len(chunks[0].Data) != maxWhole {
		t.Fatalf("maxWhole message mishandled: %d chunks, flags %x, %d bytes",
			len(chunks), chunks[0].Flags, len(chunks[0].Data))
	}
	if !p.Empty() {
		t.Fatal("queue should be drained")
	}
}

func TestPackerFinalFragmentExactlyFillsBudget(t *testing.T) {
	// 2*maxWhole splits into two full-budget fragments; the second packet
	// has zero budget left, so a queued whole message cannot share it.
	var p Packer
	p.Enqueue(fill(2*maxWhole, 1))
	p.Enqueue(fill(10, 2))
	first := p.NextChunks()
	if len(first) != 1 || first[0].Flags != ChunkFirst || len(first[0].Data) != maxWhole {
		t.Fatalf("first fragment wrong: %d chunks, flags %x, %d bytes",
			len(first), first[0].Flags, len(first[0].Data))
	}
	second := p.NextChunks()
	if len(second) != 1 || second[0].Flags != ChunkLast || len(second[0].Data) != maxWhole {
		t.Fatalf("final fragment must exactly fill the packet alone: %d chunks, flags %x, %d bytes",
			len(second), second[0].Flags, len(second[0].Data))
	}
	third := p.NextChunks()
	if len(third) != 1 || third[0].Flags != ChunkFirst|ChunkLast || len(third[0].Data) != 10 {
		t.Fatalf("queued message should follow in its own packet: %+v", third)
	}
	if !p.Empty() {
		t.Fatal("queue should be drained")
	}
}

func TestPackerAccounting(t *testing.T) {
	var p Packer
	p.Enqueue(fill(100, 1))
	p.Enqueue(fill(200, 2))
	if p.Backlog() != 2 || p.QueuedBytes() != 300 {
		t.Fatalf("backlog=%d bytes=%d", p.Backlog(), p.QueuedBytes())
	}
	p.NextChunks()
	if p.Backlog() != 0 || p.QueuedBytes() != 0 {
		t.Fatalf("after drain: backlog=%d bytes=%d", p.Backlog(), p.QueuedBytes())
	}
}

func TestPacketsFor(t *testing.T) {
	cases := []struct {
		msgLen, count, want int
	}{
		{700, 2, 1},   // sawtooth peak
		{712, 2, 2},   // just over half budget
		{1400, 1, 1},  // second peak: one per packet, near-full frame
		{1421, 1, 1},  // exactly maxWhole
		{1422, 1, 2},  // just over: fragmented
		{100, 13, 1},  // 13*(103)=1339 fits
		{100, 14, 2},  // 14*(103)=1442 does not
		{10000, 1, 8}, // ceil(10000/1421)
		{100, 0, 0},
	}
	for _, c := range cases {
		if got := PacketsFor(c.msgLen, c.count); got != c.want {
			t.Errorf("PacketsFor(%d,%d) = %d, want %d", c.msgLen, c.count, got, c.want)
		}
	}
}

func TestAssemblerWholeMessages(t *testing.T) {
	a := NewAssembler()
	msg, ok := a.Add(1, Chunk{Flags: ChunkFirst | ChunkLast, Data: []byte("abc")})
	if !ok || string(msg) != "abc" {
		t.Fatalf("whole message not returned: %q %v", msg, ok)
	}
}

func TestAssemblerWholeMessageIsZeroCopy(t *testing.T) {
	// The documented fast path: an unfragmented message aliases the chunk
	// data instead of copying it.
	a := NewAssembler()
	in := []byte("abc")
	msg, ok := a.Add(1, Chunk{Flags: ChunkFirst | ChunkLast, Data: in})
	if !ok || &msg[0] != &in[0] {
		t.Fatal("whole-message fast path must return the chunk data uncopied")
	}
}

func TestAssemblerInterleavedSenders(t *testing.T) {
	a := NewAssembler()
	if _, ok := a.Add(1, Chunk{Flags: ChunkFirst, Data: []byte("aa")}); ok {
		t.Fatal("incomplete message returned")
	}
	if _, ok := a.Add(2, Chunk{Flags: ChunkFirst, Data: []byte("xx")}); ok {
		t.Fatal("incomplete message returned")
	}
	m1, ok := a.Add(1, Chunk{Flags: ChunkLast, Data: []byte("bb")})
	if !ok || string(m1) != "aabb" {
		t.Fatalf("sender 1 reassembly: %q %v", m1, ok)
	}
	m2, ok := a.Add(2, Chunk{Flags: ChunkLast, Data: []byte("yy")})
	if !ok || string(m2) != "xxyy" {
		t.Fatalf("sender 2 reassembly: %q %v", m2, ok)
	}
}

func TestAssemblerDropsOrphanContinuation(t *testing.T) {
	a := NewAssembler()
	if _, ok := a.Add(1, Chunk{Flags: ChunkLast, Data: []byte("tail")}); ok {
		t.Fatal("orphan continuation must not produce a message")
	}
	if a.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", a.Dropped)
	}
}

func TestAssemblerRestartAfterFirstOverwrites(t *testing.T) {
	a := NewAssembler()
	a.Add(1, Chunk{Flags: ChunkFirst, Data: []byte("old")})
	a.Add(1, Chunk{Flags: ChunkFirst, Data: []byte("new")})
	m, ok := a.Add(1, Chunk{Flags: ChunkLast, Data: []byte("!")})
	if !ok || string(m) != "new!" {
		t.Fatalf("restart semantics: %q %v", m, ok)
	}
}

func TestAssemblerReset(t *testing.T) {
	a := NewAssembler()
	a.Add(1, Chunk{Flags: ChunkFirst, Data: []byte("aa")})
	a.Reset()
	if _, ok := a.Add(1, Chunk{Flags: ChunkLast, Data: []byte("bb")}); ok {
		t.Fatal("reset did not clear partial state")
	}
}

// Property: pack then reassemble returns exactly the original messages in
// order, for arbitrary message sizes (including oversized ones).
func TestQuickPackAssembleRoundTrip(t *testing.T) {
	f := func(sizes []uint16) bool {
		if len(sizes) > 40 {
			sizes = sizes[:40]
		}
		rng := rand.New(rand.NewSource(42))
		var p Packer
		var want [][]byte
		for _, s := range sizes {
			n := int(s) % 4000
			msg := make([]byte, n)
			rng.Read(msg)
			want = append(want, msg)
			p.Enqueue(append([]byte(nil), msg...))
		}
		a := NewAssembler()
		var got [][]byte
		for !p.Empty() {
			chunks := p.NextChunks()
			if chunks == nil {
				return false // must make progress
			}
			total := 0
			for _, c := range chunks {
				total += len(c.Data) + ChunkOverhead
				if m, ok := a.Add(7, c); ok {
					got = append(got, m)
				}
			}
			if total > MaxPayload {
				return false // budget violated
			}
		}
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if !bytes.Equal(got[i], want[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: every emitted packet obeys the frame budget and whole messages
// are never fragmented.
func TestQuickPackerNeverFragmentsSmallMessages(t *testing.T) {
	f := func(sizes []uint16) bool {
		if len(sizes) > 60 {
			sizes = sizes[:60]
		}
		var p Packer
		for _, s := range sizes {
			p.Enqueue(make([]byte, int(s)%maxWhole)) // all fit whole
		}
		for !p.Empty() {
			for _, c := range p.NextChunks() {
				if c.Flags != ChunkFirst|ChunkLast {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

var _ = proto.NodeID(0)
