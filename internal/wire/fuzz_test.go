package wire

import (
	"bytes"
	"testing"

	"github.com/totem-rrp/totem/internal/proto"
)

// Native fuzz targets for every decoder. In normal `go test` runs the
// seed corpus acts as a regression suite; `go test -fuzz=FuzzDecodeData
// ./internal/wire` explores further.

func seedCorpus(f *testing.F) {
	f.Helper()
	p := &DataPacket{
		Ring: proto.RingID{Rep: 1, Epoch: 1}, Sender: 2, Seq: 3,
		Chunks: []Chunk{
			{Flags: ChunkFirst | ChunkLast, Data: []byte("hello")},
			{Flags: ChunkFirst, Data: bytes.Repeat([]byte{0xAA}, 700)},
		},
	}
	if d, err := p.Encode(); err == nil {
		f.Add(d)
	}
	tok := &Token{
		Ring: proto.RingID{Rep: 1, Epoch: 2}, Seq: 99, Rotation: 3,
		ARU: 90, ARUID: 4, FCC: 7, Backlog: 2, Flags: TokenFlagQuiet,
		RTR: []uint32{91, 95},
	}
	if d, err := tok.Encode(); err == nil {
		f.Add(d)
	}
	j := &JoinPacket{Sender: 5, RingSeq: 8, ProcSet: []proto.NodeID{1, 2, 5}, FailSet: []proto.NodeID{9}}
	if d, err := j.Encode(); err == nil {
		f.Add(d)
	}
	c := &CommitToken{
		Ring:    proto.RingID{Rep: 1, Epoch: 9},
		Members: []CommitEntry{{ID: 1, Visits: 1}, {ID: 2, MyAru: 10, HighSeq: 12}},
	}
	if d, err := c.Encode(); err == nil {
		f.Add(d)
	}
	md := &MergeDetect{Ring: proto.RingID{Rep: 3, Epoch: 4}, Sender: 3}
	if d, err := md.Encode(); err == nil {
		f.Add(d)
	}
	f.Add([]byte{})
	f.Add([]byte{0x54, 0x4D, 1, 1})
	f.Add(bytes.Repeat([]byte{0xFF}, 2000))
}

// FuzzDecodeData checks that DecodeData never panics and that every
// accepted packet re-encodes to an equivalent decode (round-trip
// stability).
func FuzzDecodeData(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodeData(data)
		if err != nil {
			return
		}
		re, err := p.Encode()
		if err != nil {
			// Decoded packets with recovery-slack payloads may only
			// re-encode when flagged; acceptable asymmetry.
			if p.Flags&FlagRecovery != 0 {
				return
			}
			t.Fatalf("accepted packet failed to re-encode: %v", err)
		}
		p2, err := DecodeData(re)
		if err != nil {
			t.Fatalf("re-encoded packet failed to decode: %v", err)
		}
		if p2.Seq != p.Seq || p2.Sender != p.Sender || len(p2.Chunks) != len(p.Chunks) {
			t.Fatalf("round-trip mismatch: %+v vs %+v", p, p2)
		}
	})
}

// FuzzDecodeToken checks DecodeToken for panics and round-trip stability.
func FuzzDecodeToken(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		tok, err := DecodeToken(data)
		if err != nil {
			return
		}
		re, err := tok.Encode()
		if err != nil {
			t.Fatalf("accepted token failed to re-encode: %v", err)
		}
		tok2, err := DecodeToken(re)
		if err != nil {
			t.Fatalf("re-encoded token failed to decode: %v", err)
		}
		if tok2.Seq != tok.Seq || tok2.Rotation != tok.Rotation || len(tok2.RTR) != len(tok.RTR) {
			t.Fatalf("round-trip mismatch")
		}
	})
}

// FuzzDecodeMembership covers the join, commit and merge-detect decoders.
func FuzzDecodeMembership(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		if j, err := DecodeJoin(data); err == nil {
			if re, err := j.Encode(); err == nil {
				if _, err := DecodeJoin(re); err != nil {
					t.Fatalf("join round trip: %v", err)
				}
			}
		}
		if c, err := DecodeCommit(data); err == nil {
			if re, err := c.Encode(); err == nil {
				if _, err := DecodeCommit(re); err != nil {
					t.Fatalf("commit round trip: %v", err)
				}
			}
		}
		if md, err := DecodeMergeDetect(data); err == nil {
			if re, err := md.Encode(); err == nil {
				if _, err := DecodeMergeDetect(re); err != nil {
					t.Fatalf("merge-detect round trip: %v", err)
				}
			}
		}
		// The peek helpers must agree with the full decoders on validity.
		PeekKind(data)
		PeekRing(data)
		PeekSender(data)
		PeekDataFlags(data)
		PeekTokenSeq(data)
	})
}
