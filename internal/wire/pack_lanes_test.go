package wire

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"github.com/totem-rrp/totem/internal/proto"
)

// Tests for the two-lane Packer, the boundary-arithmetic audit, the
// analytic packet-count models, and the Assembler Dropped accounting.

// --- Satellite: Assembler.Add abandoned-prefix accounting ---

func TestAssemblerCountsAbandonedPrefixOnFreshFirst(t *testing.T) {
	a := NewAssembler()
	a.Add(1, Chunk{Flags: ChunkFirst, Data: []byte("old")})
	a.Add(1, Chunk{Flags: ChunkFirst, Data: []byte("new")})
	if a.Dropped != 1 {
		t.Fatalf("fresh ChunkFirst mid-reassembly must count the abandoned prefix: Dropped = %d, want 1", a.Dropped)
	}
	m, ok := a.Add(1, Chunk{Flags: ChunkLast, Data: []byte("!")})
	if !ok || string(m) != "new!" {
		t.Fatalf("restart semantics broken: %q %v", m, ok)
	}
	if a.Dropped != 1 {
		t.Fatalf("completing the restarted message must not count again: Dropped = %d", a.Dropped)
	}
}

func TestAssemblerCountsAbandonedPrefixOnWholeMessage(t *testing.T) {
	// A First|Last chunk arriving mid-reassembly also abandons the partial.
	a := NewAssembler()
	a.Add(1, Chunk{Flags: ChunkFirst, Data: []byte("old")})
	m, ok := a.Add(1, Chunk{Flags: ChunkFirst | ChunkLast, Data: []byte("whole")})
	if !ok || string(m) != "whole" {
		t.Fatalf("whole message not returned: %q %v", m, ok)
	}
	if a.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", a.Dropped)
	}
	// The abandoned partial must be gone: a continuation is now an orphan.
	if _, ok := a.Add(1, Chunk{Flags: ChunkLast, Data: []byte("tail")}); ok {
		t.Fatal("abandoned partial resurrected by later continuation")
	}
	if a.Dropped != 2 {
		t.Fatalf("orphan after abandonment: Dropped = %d, want 2", a.Dropped)
	}
}

func TestAssemblerLanesDoNotCollide(t *testing.T) {
	// The same sender may fragment on both lanes at once; reassembly state
	// is keyed per (sender, lane).
	a := NewAssembler()
	a.Add(1, Chunk{Flags: ChunkFirst, Data: []byte("int-")})
	a.Add(1, Chunk{Flags: ChunkBulk | ChunkFirst, Data: []byte("blk-")})
	mi, ok := a.Add(1, Chunk{Flags: ChunkLast, Data: []byte("a")})
	if !ok || string(mi) != "int-a" {
		t.Fatalf("interactive lane reassembly: %q %v", mi, ok)
	}
	mb, ok := a.Add(1, Chunk{Flags: ChunkBulk | ChunkLast, Data: []byte("b")})
	if !ok || string(mb) != "blk-b" {
		t.Fatalf("bulk lane reassembly: %q %v", mb, ok)
	}
	if a.Dropped != 0 {
		t.Fatalf("clean two-lane interleave dropped %d", a.Dropped)
	}
}

// --- Satellite: boundary arithmetic, exhaustively, at small budgets ---

// drainBudget runs the budget-parameterised packer core to exhaustion and
// checks the per-packet invariants: progress on every call, framed size
// within budget, no zero-byte continuation chunk (a fragment boundary
// landing exactly on the budget must close the packet instead), at most
// MaxChunks chunks, and byte-exact reassembly of every lane's stream.
func drainBudget(t *testing.T, p *Packer, budget int, wantInteractive, wantBulk [][]byte) {
	t.Helper()
	a := NewAssembler()
	var gotInt, gotBulk [][]byte
	for i := 0; !p.Empty(); i++ {
		if i > 100000 {
			t.Fatalf("budget %d: livelock", budget)
		}
		chunks := p.nextChunks(budget, true)
		if len(chunks) == 0 {
			t.Fatalf("budget %d: no progress with %d+%d messages queued",
				budget, p.Backlog(), p.BulkBacklog())
		}
		used := 0
		for j, c := range chunks {
			used += len(c.Data) + ChunkOverhead
			first := c.Flags&ChunkFirst != 0
			if len(c.Data) == 0 && !first {
				t.Fatalf("budget %d: zero-byte continuation chunk %d (flags %x)", budget, j, c.Flags)
			}
			if m, ok := a.Add(9, c); ok {
				cp := append([]byte(nil), m...)
				if c.Flags&ChunkBulk != 0 {
					gotBulk = append(gotBulk, cp)
				} else {
					gotInt = append(gotInt, cp)
				}
			}
		}
		if used > budget {
			t.Fatalf("budget %d: packet used %d", budget, used)
		}
		if len(chunks) > MaxChunks {
			t.Fatalf("budget %d: %d chunks exceeds MaxChunks", budget, len(chunks))
		}
	}
	check := func(lane string, got, want [][]byte) {
		if len(got) != len(want) {
			t.Fatalf("budget %d: %s lane delivered %d messages, want %d", budget, lane, len(got), len(want))
		}
		for i := range want {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("budget %d: %s message %d corrupted (%d bytes in, %d out)",
					budget, lane, i, len(want[i]), len(got[i]))
			}
		}
	}
	check("interactive", gotInt, wantInteractive)
	check("bulk", gotBulk, wantBulk)
	if a.Dropped != 0 {
		t.Fatalf("budget %d: dropped %d chunks of a clean stream", budget, a.Dropped)
	}
}

func TestPackerBoundaryArithmeticExhaustive(t *testing.T) {
	// Every (budget, message-size) pair in a small box, both lanes. This
	// covers in particular the case the issue calls out: a fragment boundary
	// landing exactly on the budget (size ≡ 0 mod budget-ChunkOverhead),
	// where a naive continuation would emit a zero-byte chunk.
	for budget := ChunkOverhead + 1; budget <= 4*ChunkOverhead+8; budget++ {
		for size := 0; size <= 3*(budget-ChunkOverhead); size++ {
			msg := fill(size, byte(size))
			var p Packer
			p.Enqueue(append([]byte(nil), msg...))
			drainBudget(t, &p, budget, [][]byte{msg}, nil)

			var pb Packer
			pb.EnqueueBulk(append([]byte(nil), msg...))
			drainBudget(t, &pb, budget, nil, [][]byte{msg})
		}
	}
}

func TestPackerBoundaryArithmeticMixedQueues(t *testing.T) {
	// Multi-message queues at tiny budgets: exact-boundary fragment followed
	// by more traffic on both lanes.
	for budget := ChunkOverhead + 1; budget <= 2*ChunkOverhead+6; budget++ {
		take := budget - ChunkOverhead
		sets := [][]int{
			{take, take, take},           // every message exactly one full chunk
			{2 * take, 1},                // boundary lands exactly on budget, then small
			{3*take - 1, 3 * take, 0},    // near-boundary, boundary, empty
			{0, 0, take * 2},             // empty messages first
			{take*2 + 1, take, take * 3}, // off-by-one over boundary
		}
		for _, sizes := range sets {
			var wantI, wantB [][]byte
			var p Packer
			for i, n := range sizes {
				m := fill(n, byte(7*i+1))
				wantI = append(wantI, m)
				p.Enqueue(append([]byte(nil), m...))
			}
			for i, n := range sizes {
				m := fill(n, byte(11*i+5))
				wantB = append(wantB, m)
				p.EnqueueBulk(append([]byte(nil), m...))
			}
			drainBudget(t, &p, budget, wantI, wantB)
		}
	}
}

func TestPackerTinyMessagesRespectMaxChunks(t *testing.T) {
	// 1-byte messages: byte budget alone would allow 356 per packet, but the
	// encoder caps a packet at MaxChunks. The old packer overflowed this and
	// produced unencodable packets (silently lost at broadcast).
	var p Packer
	const n = 3 * MaxChunks
	for i := 0; i < n; i++ {
		p.Enqueue([]byte{byte(i)})
	}
	packets := 0
	for !p.Empty() {
		chunks := p.NextChunks()
		if len(chunks) > MaxChunks {
			t.Fatalf("packet holds %d chunks, encoder cap is %d", len(chunks), MaxChunks)
		}
		dp := &DataPacket{Ring: proto.RingID{Rep: 1, Epoch: 1}, Sender: 1, Seq: uint32(packets + 1), Chunks: chunks}
		if _, err := dp.Encode(); err != nil {
			t.Fatalf("packet %d not encodable: %v", packets, err)
		}
		packets++
	}
	if want := PacketsFor(1, n); packets != want {
		t.Fatalf("drained %d 1-byte messages in %d packets, PacketsFor says %d", n, packets, want)
	}
}

// --- Satellite: analytic packet-count models vs the real Packer ---

func packetsByDraining(p *Packer) int {
	n := 0
	for !p.Empty() {
		if p.NextChunks() == nil {
			return -1
		}
		n++
	}
	return n
}

func TestPacketsForDifferentialAgainstNextChunks(t *testing.T) {
	sizes := []int{1, 2, 3, 8, 64, 100, 355, 356, 700, 711, 712, 1400,
		maxWhole - 1, maxWhole, maxWhole + 1, 2 * maxWhole, 2*maxWhole + 1,
		3*maxWhole - 1, 10000}
	counts := []int{0, 1, 2, 3, 7, 20}
	for _, sz := range sizes {
		for _, cnt := range counts {
			var p Packer
			for i := 0; i < cnt; i++ {
				p.Enqueue(fill(sz, byte(i)))
			}
			got := packetsByDraining(&p)
			if want := PacketsFor(sz, cnt); got != want {
				t.Errorf("uniform interactive %d x %dB: packer used %d packets, PacketsFor says %d", cnt, sz, got, want)
			}
		}
	}
}

func TestPacketsForBulkDifferentialAgainstNextChunks(t *testing.T) {
	sizes := []int{1, 8, 100, 700, maxWhole, maxWhole + 1, 2 * maxWhole, 8192, 10000}
	counts := []int{0, 1, 2, 3, 7, 20}
	for _, sz := range sizes {
		for _, cnt := range counts {
			var p Packer
			for i := 0; i < cnt; i++ {
				p.EnqueueBulk(fill(sz, byte(i)))
			}
			got := packetsByDraining(&p)
			if want := PacketsForBulk(sz, cnt); got != want {
				t.Errorf("uniform bulk %d x %dB: packer used %d packets, PacketsForBulk says %d", cnt, sz, got, want)
			}
		}
	}
}

func TestPacketsForBulkStreamsAcrossMessages(t *testing.T) {
	// The defining difference between the models: bulk fragments share
	// packets across message boundaries, interactive fragments do not.
	const sz, cnt = maxWhole + 100, 4
	ifPackets := PacketsFor(sz, cnt)      // 2 per message: fresh-packet rule
	blkPackets := PacketsForBulk(sz, cnt) // streamed: ceil(total/payload)-ish
	if ifPackets != 2*cnt {
		t.Fatalf("interactive model: %d, want %d", ifPackets, 2*cnt)
	}
	if blkPackets >= ifPackets {
		t.Fatalf("bulk streaming must beat interactive fragmentation: %d vs %d", blkPackets, ifPackets)
	}
}

// --- Two-lane scheduling behaviour ---

func TestPackerBulkFillsLeftoverBudget(t *testing.T) {
	// One 700B interactive message leaves 721B of budget; the bulk stream
	// must fill it (and may start mid-packet, unlike interactive).
	var p Packer
	p.Enqueue(fill(700, 1))
	p.EnqueueBulk(fill(2000, 2))
	chunks := p.NextChunks()
	if len(chunks) != 2 {
		t.Fatalf("want interactive + bulk chunk sharing the packet, got %d chunks", len(chunks))
	}
	if chunks[0].Flags != ChunkFirst|ChunkLast {
		t.Fatalf("interactive chunk flags %x", chunks[0].Flags)
	}
	if chunks[1].Flags != ChunkBulk|ChunkFirst {
		t.Fatalf("bulk chunk flags %x, want bulk first fragment", chunks[1].Flags)
	}
	if got := len(chunks[1].Data); got != MaxPayload-(700+ChunkOverhead)-ChunkOverhead {
		t.Fatalf("bulk fragment should fill the leftover budget exactly, got %d bytes", got)
	}
}

func TestPackerInteractiveOnlySkipsBulk(t *testing.T) {
	var p Packer
	p.Enqueue(fill(100, 1))
	p.EnqueueBulk(fill(100, 2))
	chunks := p.NextChunksInteractive()
	if len(chunks) != 1 || chunks[0].Flags&ChunkBulk != 0 {
		t.Fatalf("interactive-only packet leaked bulk chunks: %+v", chunks)
	}
	if p.BulkBacklog() != 1 {
		t.Fatalf("bulk lane touched: backlog %d", p.BulkBacklog())
	}
	// The bulk message is still intact and delivered later.
	rest := p.NextChunks()
	if len(rest) != 1 || rest[0].Flags != ChunkBulk|ChunkFirst|ChunkLast {
		t.Fatalf("bulk message mangled: %+v", rest)
	}
}

func TestPackerLaneAccounting(t *testing.T) {
	var p Packer
	p.Enqueue(fill(100, 1))
	p.EnqueueBulk(fill(5000, 2))
	p.EnqueueBulk(fill(50, 3))
	if p.Backlog() != 1 || p.BulkBacklog() != 2 {
		t.Fatalf("backlog %d/%d, want 1/2", p.Backlog(), p.BulkBacklog())
	}
	if p.QueuedBytes() != 5150 {
		t.Fatalf("queued bytes %d, want 5150", p.QueuedBytes())
	}
	p.NextChunks() // drains interactive, starts the 5000B bulk transfer
	if p.Backlog() != 0 || p.BulkBacklog() != 2 {
		t.Fatalf("after one packet: backlog %d/%d, want 0/2", p.Backlog(), p.BulkBacklog())
	}
	if p.Empty() {
		t.Fatal("bulk bytes remain")
	}
	for !p.Empty() {
		p.NextChunks()
	}
	if p.QueuedBytes() != 0 {
		t.Fatalf("drained packer reports %d queued bytes", p.QueuedBytes())
	}
}

func TestPackerTakeFinishedBulk(t *testing.T) {
	var p Packer
	p.CollectFinished(true)
	b1, b2 := fill(100, 1), fill(2000, 2)
	p.EnqueueBulk(b1)
	p.EnqueueBulk(b2)
	p.Enqueue(fill(10, 3)) // interactive buffers are never collected
	var got [][]byte
	for !p.Empty() {
		p.NextChunks()
		got = append(got, p.TakeFinishedBulk()...)
	}
	if len(got) != 2 || &got[0][0] != &b1[0] || &got[1][0] != &b2[0] {
		t.Fatalf("finished bulk buffers not returned in emit order: %d buffers", len(got))
	}
	if p.TakeFinishedBulk() != nil {
		t.Fatal("TakeFinishedBulk must reset the list")
	}
}

func TestPackerRewindRestartsPartialMessages(t *testing.T) {
	// After Rewind a partially-emitted message re-emits whole: the SRP uses
	// this on ring change so the new ring never sees a continuation with no
	// start.
	var p Packer
	msg := fill(2*maxWhole, 1)
	blk := fill(3000, 2)
	p.Enqueue(append([]byte(nil), msg...))
	p.EnqueueBulk(append([]byte(nil), blk...))
	first := p.NextChunks()
	if len(first) != 1 || first[0].Flags != ChunkFirst {
		t.Fatalf("setup: want one interactive first-fragment, got %+v", first)
	}
	p.Rewind()
	drainBudget(t, &p, MaxPayload, [][]byte{msg}, [][]byte{blk})
}

func TestPackerRewindOnFreshQueuesIsNoOp(t *testing.T) {
	var p Packer
	p.Rewind()
	if !p.Empty() || p.QueuedBytes() != 0 {
		t.Fatal("Rewind on empty packer changed state")
	}
	p.Enqueue(fill(10, 1))
	p.Rewind()
	chunks := p.NextChunks()
	if len(chunks) != 1 || chunks[0].Flags != ChunkFirst|ChunkLast {
		t.Fatalf("Rewind before first emit broke packing: %+v", chunks)
	}
}

// --- Satellite: lane interleaving under fuzz-like randomised load ---

// TestQuickLaneInterleaving mixes interactive and bulk enqueues in random
// order and asserts FIFO within each lane, byte-exact reassembly, and no
// interactive starvation (every interactive message is delivered within a
// bounded number of packets of being at the head of its lane).
func TestQuickLaneInterleaving(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		var p Packer
		a := NewAssembler()
		var wantI, wantB, gotI, gotB [][]byte
		n := 1 + rng.Intn(12)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				m := fill(rng.Intn(3*maxWhole), byte(i+1))
				wantI = append(wantI, m)
				p.Enqueue(append([]byte(nil), m...))
			} else {
				m := fill(rng.Intn(20000), byte(i+101))
				wantB = append(wantB, m)
				p.EnqueueBulk(append([]byte(nil), m...))
			}
		}
		resetAt := -1
		if rng.Intn(4) == 0 {
			resetAt = rng.Intn(8) // exercise Assembler.Reset mid-transfer
		}
		for pkt := 0; !p.Empty(); pkt++ {
			if pkt > 100000 {
				t.Fatalf("trial %d: livelock", trial)
			}
			if pkt == resetAt {
				// A configuration change wipes reassembly state; the packer
				// rewinds so in-flight fragments restart whole. Nothing may
				// be lost or corrupted — only re-sent.
				a.Reset()
				a.Dropped = 0
				p.Rewind()
			}
			chunks := p.NextChunks()
			if len(chunks) == 0 {
				t.Fatalf("trial %d: no progress", trial)
			}
			for _, c := range chunks {
				if m, ok := a.Add(3, c); ok {
					cp := append([]byte(nil), m...)
					if c.Flags&ChunkBulk != 0 {
						gotB = append(gotB, cp)
					} else {
						gotI = append(gotI, cp)
					}
				}
			}
		}
		check := func(lane string, got, want [][]byte) {
			if len(got) != len(want) {
				t.Fatalf("trial %d: %s delivered %d of %d messages", trial, lane, len(got), len(want))
			}
			for i := range want {
				if !bytes.Equal(got[i], want[i]) {
					t.Fatalf("trial %d: %s message %d not FIFO/byte-exact", trial, lane, i)
				}
			}
		}
		check("interactive", gotI, wantI)
		check("bulk", gotB, wantB)
		if a.Dropped != 0 {
			t.Fatalf("trial %d: dropped %d", trial, a.Dropped)
		}
	}
}

func TestPackerBulkNeverStarvesInteractive(t *testing.T) {
	// With a huge bulk backlog queued first, a later interactive enqueue
	// still rides in the very next packet: interactive fills first.
	var p Packer
	p.EnqueueBulk(fill(1<<20, 1))
	p.NextChunks() // bulk transfer underway
	p.Enqueue(fill(200, 2))
	chunks := p.NextChunks()
	if len(chunks) == 0 || chunks[0].Flags&ChunkBulk != 0 || len(chunks[0].Data) != 200 {
		t.Fatalf("interactive message must preempt the bulk stream: %+v", chunks[0].Flags)
	}
}

// --- Token codec: BulkBacklog field ---

func TestTokenRoundTripBulkBacklog(t *testing.T) {
	tok := &Token{
		Ring: proto.RingID{Rep: 2, Epoch: 8}, Seq: 10, Rotation: 3,
		ARU: 9, ARUID: 1, FCC: 4, Backlog: 2, BulkBacklog: 77,
		RTR: []uint32{5, 6},
	}
	data, err := tok.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeToken(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(tok, got) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, tok)
	}
	// PeekTokenSeq reads the leading fixed fields and must be unaffected by
	// the widened body.
	seq, rot, err := PeekTokenSeq(data)
	if err != nil || seq != 10 || rot != 3 {
		t.Fatalf("peek = (%d,%d,%v)", seq, rot, err)
	}
}
