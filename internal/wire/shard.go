package wire

import (
	"errors"
	"fmt"
)

// Shard envelope: when a node runs M > 1 independent rings over the same
// redundant networks, every frame is prefixed with a 3-byte shard tag so
// one transport can mux all M rings and the receive path can demux them
// to the owning ring's protocol instance.
//
// The envelope is deliberately absent for M = 1: a single-ring node sends
// exactly the frames it always sent, byte for byte, and PeekShard treats
// any untagged frame (the ordinary "TM" wire magic) as shard 0. The two
// magics differ in their second byte, so a tagged frame can never be
// mistaken for an untagged one or vice versa.
const (
	// shardMagic opens a shard-tagged frame ("TS": Totem Shard).
	shardMagic uint16 = 0x5453
	// ShardOverhead is the envelope cost: magic(2) + shard(1).
	ShardOverhead = 3
	// MaxShards bounds the shard count representable on the wire.
	MaxShards = 256
)

// ErrShard reports a malformed shard envelope.
var ErrShard = errors.New("wire: malformed shard envelope")

// AppendShardTag appends the shard envelope header to buf. The caller
// appends the inner frame afterwards (or copies an already-encoded frame).
func AppendShardTag(buf []byte, shard int) []byte {
	return append(buf, byte(shardMagic>>8), byte(shardMagic&0xff), byte(shard))
}

// WrapShard copies frame into a fresh pooled buffer behind a shard tag.
// The caller owns the returned buffer (release with PutFrame) and may
// recycle frame as soon as WrapShard returns. Frames too large for the
// pool (never produced by this stack) fall back to the heap.
func WrapShard(shard int, frame []byte) []byte {
	var buf []byte
	if len(frame)+ShardOverhead <= FrameCap {
		buf = GetFrame()
	} else {
		buf = make([]byte, 0, len(frame)+ShardOverhead)
	}
	buf = AppendShardTag(buf, shard)
	return append(buf, frame...)
}

// PeekShard splits a received frame into its shard index and inner frame.
// Untagged frames (plain "TM" wire magic) belong to shard 0 and are
// returned unchanged; tagged frames yield the tagged shard and the bytes
// after the envelope. Anything too short to carry either magic is an
// error (the transports drop it).
func PeekShard(data []byte) (int, []byte, error) {
	if len(data) < 2 {
		return 0, nil, ErrTruncated
	}
	m := uint16(data[0])<<8 | uint16(data[1])
	switch m {
	case shardMagic:
		if len(data) < ShardOverhead {
			return 0, nil, ErrTruncated
		}
		return int(data[2]), data[ShardOverhead:], nil
	case magic:
		return 0, data, nil
	default:
		return 0, nil, fmt.Errorf("%w: magic %#04x", ErrShard, m)
	}
}
