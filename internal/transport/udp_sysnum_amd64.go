//go:build linux && amd64

package transport

// Raw syscall numbers for the batched wire path. The frozen syscall
// package predates sendmmsg, so both are pinned here per architecture.
const (
	sysSendmmsg = 307
	sysRecvmmsg = 299
)
