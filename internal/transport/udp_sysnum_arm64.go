//go:build linux && arm64

package transport

// Raw syscall numbers for the batched wire path (asm-generic table).
const (
	sysSendmmsg = 269
	sysRecvmmsg = 243
)
