package transport

import (
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"

	"github.com/totem-rrp/totem/internal/metrics"
	"github.com/totem-rrp/totem/internal/proto"
	"github.com/totem-rrp/totem/internal/wire"
)

// UDPConfig describes a node's sockets on N redundant UDP networks.
//
// Deployment note: the paper's testbed used native Ethernet broadcast, one
// UDP socket per NIC. In environments without broadcast/multicast (cloud
// VMs, containers — including the one this repository is developed in),
// this transport emulates broadcast by fanning a packet out to every
// configured peer with unicast sends on the same network. The protocol
// semantics are identical; the fan-out costs (N-1)× sender bandwidth,
// which DESIGN.md documents as a deviation from the paper's testbed.
type UDPConfig struct {
	// ID is this node's identifier.
	ID proto.NodeID
	// Listen has one local address per network, e.g.
	// ["10.0.1.5:5405", "10.0.2.5:5405"] for two redundant LANs.
	Listen []string
	// Peers maps every other node to its per-network addresses; the inner
	// slice is indexed by network and must have len(Listen) entries.
	Peers map[proto.NodeID][]string
}

// UDPTransport implements Transport over one UDP socket per network.
type UDPTransport struct {
	networks int
	conns    []*net.UDPConn
	// counters index by network; incremented from the read loops and the
	// send goroutine, so they are atomics (see netCounters).
	counters []netCounters

	peerMu sync.RWMutex
	peers  map[proto.NodeID][]*net.UDPAddr
	// bcast is Send's reusable broadcast-address snapshot (Send is called
	// from a single goroutine).
	bcast []*net.UDPAddr

	rx chan Packet

	closeOnce sync.Once
	closed    chan struct{}
	wg        sync.WaitGroup
}

var _ Transport = (*UDPTransport)(nil)

// NewUDP opens the sockets and starts the receive loops.
func NewUDP(cfg UDPConfig) (*UDPTransport, error) {
	if len(cfg.Listen) == 0 {
		return nil, errors.New("udp: no listen addresses")
	}
	t := &UDPTransport{
		networks: len(cfg.Listen),
		counters: make([]netCounters, len(cfg.Listen)),
		peers:    make(map[proto.NodeID][]*net.UDPAddr, len(cfg.Peers)),
		rx:       make(chan Packet, memDepth),
		closed:   make(chan struct{}),
	}
	for id, addrs := range cfg.Peers {
		if len(addrs) != t.networks {
			return nil, fmt.Errorf("udp: peer %v has %d addresses, want %d", id, len(addrs), t.networks)
		}
		resolved := make([]*net.UDPAddr, t.networks)
		for i, a := range addrs {
			ua, err := net.ResolveUDPAddr("udp", a)
			if err != nil {
				return nil, fmt.Errorf("udp: peer %v network %d: %w", id, i, err)
			}
			resolved[i] = ua
		}
		t.peers[id] = resolved
	}
	for i, a := range cfg.Listen {
		ua, err := net.ResolveUDPAddr("udp", a)
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("udp: listen %q: %w", a, err)
		}
		conn, err := net.ListenUDP("udp", ua)
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("udp: listen %q: %w", a, err)
		}
		t.conns = append(t.conns, conn)
		t.wg.Add(1)
		go t.readLoop(i, conn)
	}
	return t, nil
}

// LocalAddrs returns the bound addresses, one per network (useful when
// listening on port 0).
func (t *UDPTransport) LocalAddrs() []string {
	out := make([]string, len(t.conns))
	for i, c := range t.conns {
		out[i] = c.LocalAddr().String()
	}
	return out
}

// AddPeer registers (or replaces) a peer's per-network addresses. It is
// safe to call while the node is running.
func (t *UDPTransport) AddPeer(id proto.NodeID, addrs []string) error {
	if len(addrs) != t.networks {
		return fmt.Errorf("udp: peer %v has %d addresses, want %d", id, len(addrs), t.networks)
	}
	resolved := make([]*net.UDPAddr, t.networks)
	for i, a := range addrs {
		ua, err := net.ResolveUDPAddr("udp", a)
		if err != nil {
			return fmt.Errorf("udp: peer %v network %d: %w", id, i, err)
		}
		resolved[i] = ua
	}
	t.peerMu.Lock()
	t.peers[id] = resolved
	t.peerMu.Unlock()
	return nil
}

// RemovePeer unregisters a peer: subsequent unicasts to it return
// ErrNoPeer and broadcasts skip it. Removing an unknown peer is a no-op,
// and a later AddPeer re-registers the node. Safe to call while the node
// is running.
func (t *UDPTransport) RemovePeer(id proto.NodeID) {
	t.peerMu.Lock()
	delete(t.peers, id)
	t.peerMu.Unlock()
}

func (t *UDPTransport) readLoop(network int, conn *net.UDPConn) {
	defer t.wg.Done()
	// Datagrams are read straight into pooled frames and handed to the
	// consumer without copying; a dropped datagram reuses its frame for
	// the next read. The consumer recycles data frames after processing
	// (wire.ReleaseFrame); control frames age out through the GC because
	// upper layers may retain them.
	buf := wire.GetFrame()[:wire.FrameCap]
	for {
		n, _, err := conn.ReadFromUDP(buf)
		if err != nil {
			wire.PutFrame(buf)
			return // socket closed
		}
		t.counters[network].rxDatagrams.Add(1)
		select {
		case t.rx <- Packet{Network: network, Data: buf[:n]}:
			buf = wire.GetFrame()[:wire.FrameCap]
		case <-t.closed:
			wire.PutFrame(buf)
			return
		default:
			// Drop on overflow: UDP semantics; retransmission recovers.
			t.counters[network].rxDropped.Add(1)
		}
	}
}

// Networks implements Transport.
func (t *UDPTransport) Networks() int { return t.networks }

// Send implements Transport. For broadcast, the peer addresses are
// snapshotted under the read lock and the syscalls issued outside it, so a
// concurrent AddPeer is never blocked behind a slow socket. The snapshot
// buffer is reused across calls (Send is single-goroutine per the
// Transport contract).
func (t *UDPTransport) Send(network int, dest proto.NodeID, data []byte) error {
	if network < 0 || network >= t.networks {
		return ErrBadNetwork
	}
	conn := t.conns[network]
	if dest == proto.BroadcastID {
		t.peerMu.RLock()
		t.bcast = t.bcast[:0]
		for _, addrs := range t.peers {
			t.bcast = append(t.bcast, addrs[network])
		}
		t.peerMu.RUnlock()
		for _, a := range t.bcast {
			// Best-effort fan-out: a failed peer must not stop the rest.
			conn.WriteToUDP(data, a) //nolint:errcheck
		}
		t.counters[network].txDatagrams.Add(uint64(len(t.bcast)))
		return nil
	}
	t.peerMu.RLock()
	addrs, ok := t.peers[dest]
	t.peerMu.RUnlock()
	if !ok {
		return ErrNoPeer
	}
	t.counters[network].txDatagrams.Add(1)
	_, err := conn.WriteToUDP(data, addrs[network])
	return err
}

// netCounters is one network's datagram accounting.
type netCounters struct {
	rxDatagrams atomic.Uint64
	rxDropped   atomic.Uint64
	txDatagrams atomic.Uint64
}

// RegisterMetrics implements MetricSource: per-network datagram counts
// and overflow drops under "udp.netI.*", plus the shared receive-queue
// depth gauge.
func (t *UDPTransport) RegisterMetrics(reg *metrics.Registry) {
	for i := range t.counters {
		c := &t.counters[i]
		prefix := "udp.net" + strconv.Itoa(i)
		reg.RegisterFunc(prefix+".rx_datagrams", func() int64 { return int64(c.rxDatagrams.Load()) })
		reg.RegisterFunc(prefix+".rx_dropped", func() int64 { return int64(c.rxDropped.Load()) })
		reg.RegisterFunc(prefix+".tx_datagrams", func() int64 { return int64(c.txDatagrams.Load()) })
	}
	reg.RegisterFunc("udp.rx_queue_depth", func() int64 { return int64(len(t.rx)) })
}

// Packets implements Transport.
func (t *UDPTransport) Packets() <-chan Packet { return t.rx }

// Close implements Transport.
func (t *UDPTransport) Close() error {
	t.closeOnce.Do(func() {
		close(t.closed)
		for _, c := range t.conns {
			c.Close() //nolint:errcheck
		}
		t.wg.Wait()
		close(t.rx)
	})
	return nil
}
