package transport

import (
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"

	"github.com/totem-rrp/totem/internal/metrics"
	"github.com/totem-rrp/totem/internal/proto"
	"github.com/totem-rrp/totem/internal/wire"
)

// UDPConfig describes a node's sockets on N redundant UDP networks.
//
// Deployment note: the paper's testbed used native Ethernet broadcast, one
// UDP socket per NIC. In environments without broadcast/multicast (cloud
// VMs, containers — including the one this repository is developed in),
// this transport emulates broadcast by fanning a packet out to every
// configured peer with unicast sends on the same network. The protocol
// semantics are identical; the fan-out costs (N-1)× sender bandwidth,
// which DESIGN.md documents as a deviation from the paper's testbed.
type UDPConfig struct {
	// ID is this node's identifier.
	ID proto.NodeID
	// Listen has one local address per network, e.g.
	// ["10.0.1.5:5405", "10.0.2.5:5405"] for two redundant LANs.
	Listen []string
	// Peers maps every other node to its per-network addresses; the inner
	// slice is indexed by network and must have len(Listen) entries.
	Peers map[proto.NodeID][]string

	// WirePath selects the kernel driver: "" or "auto" picks the batched
	// sendmmsg/recvmmsg driver where the platform supports it (unless
	// TOTEM_WIREPATH overrides), "portable" forces the per-datagram
	// WriteToUDP/ReadFromUDP path, and "batch" requires the batched driver
	// (an error on platforms without it). See DESIGN.md §13.
	WirePath string
	// RecvShards is the number of SO_REUSEPORT receive sockets per network
	// on the batched driver: R reader goroutines drain one port without a
	// shared-socket convoy. 0 means the driver default (2); the portable
	// driver always uses a single socket.
	RecvShards int
	// BatchMax caps the datagrams coalesced into one sendmmsg on the
	// batched driver (0 = driver default, 64). Ignored by the portable
	// driver.
	BatchMax int
}

// wireDriver is the socket backend behind a UDPTransport: the portable
// per-datagram path or the Linux batched path. Drivers own the sockets and
// the read goroutines; the transport owns peers, the receive channel and
// the counters.
type wireDriver interface {
	// localAddrs returns the bound receive addresses, one per network.
	localAddrs() []string
	// unicast sends (or queues) one datagram. data is not retained past
	// the call.
	unicast(network int, addr *net.UDPAddr, data []byte) error
	// broadcast fans data out to addrs, preserving enqueue order with any
	// earlier traffic on the same network. data is not retained.
	broadcast(network int, addrs []*net.UDPAddr, data []byte)
	// flush forces any queued datagrams onto the wire.
	flush()
	// close releases the driver's sockets, unblocking its read loops.
	close() error
}

// UDPTransport implements Transport over one UDP socket set per network.
type UDPTransport struct {
	networks int
	wirepath string
	driver   wireDriver
	// counters index by network; incremented from the read loops, the
	// send goroutine and flush timers, so they are atomics (netCounters).
	counters []netCounters

	peerMu sync.RWMutex
	peers  map[proto.NodeID][]*net.UDPAddr
	// bcast is Send's reusable broadcast-address snapshot (Send is called
	// from a single goroutine).
	bcast []*net.UDPAddr

	rx chan Packet

	closeOnce sync.Once
	closed    chan struct{}
	wg        sync.WaitGroup
}

var (
	_ Transport   = (*UDPTransport)(nil)
	_ BatchSender = (*UDPTransport)(nil)
)

// NewUDP opens the sockets and starts the receive loops.
func NewUDP(cfg UDPConfig) (*UDPTransport, error) {
	if len(cfg.Listen) == 0 {
		return nil, errors.New("udp: no listen addresses")
	}
	wirepath, err := resolveWirePath(cfg.WirePath)
	if err != nil {
		return nil, err
	}
	t := &UDPTransport{
		networks: len(cfg.Listen),
		wirepath: wirepath,
		counters: make([]netCounters, len(cfg.Listen)),
		peers:    make(map[proto.NodeID][]*net.UDPAddr, len(cfg.Peers)),
		rx:       make(chan Packet, memDepth),
		closed:   make(chan struct{}),
	}
	for id, addrs := range cfg.Peers {
		if len(addrs) != t.networks {
			return nil, fmt.Errorf("udp: peer %v has %d addresses, want %d", id, len(addrs), t.networks)
		}
		resolved := make([]*net.UDPAddr, t.networks)
		for i, a := range addrs {
			ua, err := net.ResolveUDPAddr("udp", a)
			if err != nil {
				return nil, fmt.Errorf("udp: peer %v network %d: %w", id, i, err)
			}
			resolved[i] = ua
		}
		t.peers[id] = resolved
	}
	if wirepath == WirePathBatch {
		t.driver, err = newBatchDriver(t, cfg)
	} else {
		t.driver, err = newPortableDriver(t, cfg)
	}
	if err != nil {
		// A failed constructor has closed any sockets it opened; the read
		// loops it may have started exit on those closed sockets.
		close(t.closed)
		t.wg.Wait()
		close(t.rx)
		return nil, err
	}
	return t, nil
}

// WirePath reports the active wire driver: "portable" or "batch".
func (t *UDPTransport) WirePath() string { return t.wirepath }

// LocalAddrs returns the bound addresses, one per network (useful when
// listening on port 0).
func (t *UDPTransport) LocalAddrs() []string { return t.driver.localAddrs() }

// AddPeer registers (or replaces) a peer's per-network addresses. It is
// safe to call while the node is running.
func (t *UDPTransport) AddPeer(id proto.NodeID, addrs []string) error {
	if len(addrs) != t.networks {
		return fmt.Errorf("udp: peer %v has %d addresses, want %d", id, len(addrs), t.networks)
	}
	resolved := make([]*net.UDPAddr, t.networks)
	for i, a := range addrs {
		ua, err := net.ResolveUDPAddr("udp", a)
		if err != nil {
			return fmt.Errorf("udp: peer %v network %d: %w", id, i, err)
		}
		resolved[i] = ua
	}
	t.peerMu.Lock()
	t.peers[id] = resolved
	t.peerMu.Unlock()
	return nil
}

// RemovePeer unregisters a peer: subsequent unicasts to it return
// ErrNoPeer and broadcasts skip it. Removing an unknown peer is a no-op,
// and a later AddPeer re-registers the node. Safe to call while the node
// is running.
func (t *UDPTransport) RemovePeer(id proto.NodeID) {
	t.peerMu.Lock()
	delete(t.peers, id)
	t.peerMu.Unlock()
}

// deliver hands one received datagram to the consumer and reports whether
// the buffer was consumed (false lets the read loop reuse it for the next
// datagram). Drop on overflow is UDP semantics; retransmission recovers.
func (t *UDPTransport) deliver(network int, data []byte) bool {
	t.counters[network].rxDatagrams.Add(1)
	select {
	case t.rx <- Packet{Network: network, Data: data}:
		return true
	case <-t.closed:
		return false
	default:
		t.counters[network].rxDropped.Add(1)
		return false
	}
}

// Networks implements Transport.
func (t *UDPTransport) Networks() int { return t.networks }

// Send implements Transport. For broadcast, the peer addresses are
// snapshotted under the read lock and the socket work done outside it, so
// a concurrent AddPeer is never blocked behind a slow socket. The snapshot
// buffer is reused across calls (Send is single-goroutine per the
// Transport contract). On the batched driver the datagrams may be queued
// rather than sent; Flush, a control packet, the size threshold or the
// sub-millisecond deadline put them on the wire in FIFO order.
func (t *UDPTransport) Send(network int, dest proto.NodeID, data []byte) error {
	if network < 0 || network >= t.networks {
		return ErrBadNetwork
	}
	if dest == proto.BroadcastID {
		t.peerMu.RLock()
		t.bcast = t.bcast[:0]
		for _, addrs := range t.peers {
			t.bcast = append(t.bcast, addrs[network])
		}
		t.peerMu.RUnlock()
		t.driver.broadcast(network, t.bcast, data)
		return nil
	}
	t.peerMu.RLock()
	addrs, ok := t.peers[dest]
	t.peerMu.RUnlock()
	if !ok {
		return ErrNoPeer
	}
	return t.driver.unicast(network, addrs[network], data)
}

// Flush implements BatchSender: it forces any queued datagrams onto the
// wire. The runtime calls it at the end of every action batch, so a token
// and the messages sent with it leave in one kernel visit on the batched
// driver. A no-op on the portable driver.
func (t *UDPTransport) Flush() { t.driver.flush() }

// netCounters is one network's datagram accounting.
type netCounters struct {
	rxDatagrams atomic.Uint64
	rxDropped   atomic.Uint64
	rxSyscalls  atomic.Uint64
	txDatagrams atomic.Uint64
	txErrors    atomic.Uint64
	txSyscalls  atomic.Uint64
	// flush-reason counters (batched driver only): why each sendmmsg
	// batch left the queue.
	flushControl  atomic.Uint64
	flushSize     atomic.Uint64
	flushDeadline atomic.Uint64
	flushExplicit atomic.Uint64
}

// RegisterMetrics implements MetricSource: per-network datagram counts,
// overflow drops, send errors, kernel-visit counts and batch flush
// reasons under "udp.netI.*", plus the shared receive-queue depth gauge
// and the active wire path (0 portable, 1 batch).
func (t *UDPTransport) RegisterMetrics(reg *metrics.Registry) {
	for i := range t.counters {
		c := &t.counters[i]
		prefix := "udp.net" + strconv.Itoa(i)
		counter := func(name string, v *atomic.Uint64) {
			reg.RegisterFunc(prefix+name, func() int64 { return int64(v.Load()) })
		}
		counter(".rx_datagrams", &c.rxDatagrams)
		counter(".rx_dropped", &c.rxDropped)
		counter(".rx_syscalls", &c.rxSyscalls)
		counter(".tx_datagrams", &c.txDatagrams)
		counter(".tx_errors", &c.txErrors)
		counter(".tx_syscalls", &c.txSyscalls)
		counter(".flush_control", &c.flushControl)
		counter(".flush_size", &c.flushSize)
		counter(".flush_deadline", &c.flushDeadline)
		counter(".flush_explicit", &c.flushExplicit)
	}
	reg.RegisterFunc("udp.rx_queue_depth", func() int64 { return int64(len(t.rx)) })
	wirepath := int64(0)
	if t.wirepath == WirePathBatch {
		wirepath = 1
	}
	reg.RegisterFunc("udp.wirepath_batch", func() int64 { return wirepath })
}

// Packets implements Transport.
func (t *UDPTransport) Packets() <-chan Packet { return t.rx }

// Close implements Transport.
func (t *UDPTransport) Close() error {
	t.closeOnce.Do(func() {
		close(t.closed)
		t.driver.close() //nolint:errcheck
		t.wg.Wait()
		close(t.rx)
	})
	return nil
}

// portableDriver is the per-datagram path: one net.UDPConn per network,
// one blocking ReadFromUDP loop each, one WriteToUDP per outbound
// datagram. It works on every platform Go supports and is the semantic
// reference for the batched driver.
type portableDriver struct {
	t     *UDPTransport
	conns []*net.UDPConn
}

func newPortableDriver(t *UDPTransport, cfg UDPConfig) (wireDriver, error) {
	d := &portableDriver{t: t}
	for i, a := range cfg.Listen {
		ua, err := net.ResolveUDPAddr("udp", a)
		if err != nil {
			d.close() //nolint:errcheck
			return nil, fmt.Errorf("udp: listen %q: %w", a, err)
		}
		conn, err := net.ListenUDP("udp", ua)
		if err != nil {
			d.close() //nolint:errcheck
			return nil, fmt.Errorf("udp: listen %q: %w", a, err)
		}
		d.conns = append(d.conns, conn)
		t.wg.Add(1)
		go d.readLoop(i, conn)
	}
	return d, nil
}

func (d *portableDriver) localAddrs() []string {
	out := make([]string, len(d.conns))
	for i, c := range d.conns {
		out[i] = c.LocalAddr().String()
	}
	return out
}

func (d *portableDriver) readLoop(network int, conn *net.UDPConn) {
	defer d.t.wg.Done()
	// Datagrams are read straight into pooled frames and handed to the
	// consumer without copying; a dropped datagram reuses its frame for
	// the next read. The consumer recycles data frames after processing
	// (wire.ReleaseFrame); control frames age out through the GC because
	// upper layers may retain them.
	buf := wire.GetFrame()[:wire.FrameCap]
	for {
		n, _, err := conn.ReadFromUDP(buf)
		if err != nil {
			wire.PutFrame(buf)
			return // socket closed
		}
		d.t.counters[network].rxSyscalls.Add(1)
		if d.t.deliver(network, buf[:n]) {
			buf = wire.GetFrame()[:wire.FrameCap]
		}
	}
}

func (d *portableDriver) unicast(network int, addr *net.UDPAddr, data []byte) error {
	c := &d.t.counters[network]
	c.txDatagrams.Add(1)
	c.txSyscalls.Add(1)
	_, err := d.conns[network].WriteToUDP(data, addr)
	if err != nil {
		c.txErrors.Add(1)
	}
	return err
}

func (d *portableDriver) broadcast(network int, addrs []*net.UDPAddr, data []byte) {
	c := &d.t.counters[network]
	conn := d.conns[network]
	for _, a := range addrs {
		// Best-effort fan-out: a failed peer must not stop the rest, but
		// the failure is counted — a saturated socket buffer shows up in
		// udp.netI.tx_errors instead of as invisible loss.
		if _, err := conn.WriteToUDP(data, a); err != nil {
			c.txErrors.Add(1)
		}
	}
	c.txDatagrams.Add(uint64(len(addrs)))
	c.txSyscalls.Add(uint64(len(addrs)))
}

func (d *portableDriver) flush() {}

func (d *portableDriver) close() error {
	for _, c := range d.conns {
		c.Close() //nolint:errcheck
	}
	return nil
}
