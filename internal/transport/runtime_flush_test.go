package transport

import (
	"testing"

	"github.com/totem-rrp/totem/internal/proto"
	"github.com/totem-rrp/totem/internal/stack"
)

// flushRecorder is a fake batching transport that records the order of
// Send and Flush calls, pinning the Runtime↔BatchSender contract without
// sockets.
type flushRecorder struct {
	events []string
	rx     chan Packet
}

func (f *flushRecorder) Networks() int { return 2 }
func (f *flushRecorder) Send(network int, dest proto.NodeID, data []byte) error {
	f.events = append(f.events, "send")
	return nil
}
func (f *flushRecorder) Packets() <-chan Packet { return f.rx }
func (f *flushRecorder) Close() error           { return nil }
func (f *flushRecorder) Flush()                 { f.events = append(f.events, "flush") }

// TestRuntimeFlushesBatchingTransport pins the runtime's flush hook: an
// action batch that sent anything ends with exactly one Flush, after the
// last send; a batch that sent nothing must not flush (flushing on every
// batch would put timer-only wakeups into the kernel for nothing).
func TestRuntimeFlushesBatchingTransport(t *testing.T) {
	st, err := stack.New(stack.DefaultConfig(1, 2, proto.ReplicationActive))
	if err != nil {
		t.Fatal(err)
	}
	fake := &flushRecorder{rx: make(chan Packet)}
	r := NewRuntime(st, fake)
	if r.flush == nil {
		t.Fatal("runtime did not detect the BatchSender transport")
	}

	// Never Start the loop: execute is driven directly, so the recorder
	// needs no locking.
	r.execute([]proto.Action{
		&proto.SendPacket{Network: 0, Dest: proto.BroadcastID, Data: []byte("a")},
		&proto.SendPacket{Network: 0, Dest: 2, Data: []byte("b")},
	})
	want := []string{"send", "send", "flush"}
	if len(fake.events) != len(want) {
		t.Fatalf("events = %v, want %v", fake.events, want)
	}
	for i, e := range fake.events {
		if e != want[i] {
			t.Fatalf("events = %v, want %v", fake.events, want)
		}
	}

	fake.events = fake.events[:0]
	r.execute(nil)
	r.execute([]proto.Action{proto.CancelTimer{ID: proto.TimerID{}}})
	if len(fake.events) != 0 {
		t.Fatalf("sendless batches flushed: %v", fake.events)
	}
}

// TestRuntimeNonBatchingTransportNoHook pins that a plain Transport (the
// in-process hub) leaves the hook nil — the portable path pays nothing.
func TestRuntimeNonBatchingTransportNoHook(t *testing.T) {
	st, err := stack.New(stack.DefaultConfig(1, 2, proto.ReplicationActive))
	if err != nil {
		t.Fatal(err)
	}
	hub := NewMemHub(2)
	tr, err := hub.Join(1)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if r := NewRuntime(st, tr); r.flush != nil {
		t.Fatal("mem transport unexpectedly detected as BatchSender")
	}
}
