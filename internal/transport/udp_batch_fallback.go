//go:build !linux || !(amd64 || arm64)

package transport

import "errors"

// The batched sendmmsg/recvmmsg wire path is Linux amd64/arm64 only; on
// every other platform the detector (platform.go) degrades to the
// portable driver and this constructor is unreachable except through an
// explicit UDPConfig.WirePath="batch", which resolveWirePath rejects
// first.
const batchSupported = false

func newBatchDriver(t *UDPTransport, cfg UDPConfig) (wireDriver, error) {
	return nil, errors.New("udp: batched wire path not supported on this platform")
}
