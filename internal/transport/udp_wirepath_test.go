package transport

import (
	"fmt"
	"testing"
	"time"

	"github.com/totem-rrp/totem/internal/metrics"
	"github.com/totem-rrp/totem/internal/proto"
	"github.com/totem-rrp/totem/internal/wire"
)

// wirePaths returns every driver this platform can run, so parity tests
// pin identical semantics across the portable and batched paths.
func wirePaths() []string {
	paths := []string{WirePathPortable}
	if BatchSupported() {
		paths = append(paths, WirePathBatch)
	}
	return paths
}

func newUDPPairPath(t *testing.T, networks int, path string, cfg UDPConfig) (*UDPTransport, *UDPTransport) {
	t.Helper()
	listen := make([]string, networks)
	for i := range listen {
		listen[i] = "127.0.0.1:0"
	}
	cfg.Listen = listen
	cfg.WirePath = path
	cfg.ID = 1
	a, err := NewUDP(cfg)
	if err != nil {
		t.Fatalf("NewUDP a: %v", err)
	}
	t.Cleanup(func() { a.Close() })
	cfg.ID = 2
	b, err := NewUDP(cfg)
	if err != nil {
		t.Fatalf("NewUDP b: %v", err)
	}
	t.Cleanup(func() { b.Close() })
	if err := a.AddPeer(2, b.LocalAddrs()); err != nil {
		t.Fatal(err)
	}
	if err := b.AddPeer(1, a.LocalAddrs()); err != nil {
		t.Fatal(err)
	}
	return a, b
}

// encodedToken builds a real KindToken frame, the packet class whose send
// must flush the batch queue immediately and must never overtake messages
// queued before it.
func encodedToken(t *testing.T) []byte {
	t.Helper()
	tok, err := (&wire.Token{Ring: proto.RingID{Rep: 1, Epoch: 1}, Seq: 7}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	return tok
}

// TestUDPPerDestinationFIFO pins the ordering contract the SRP relies on:
// datagrams from one sender to one destination arrive in Send order on
// both wire paths, across queued batches and explicit flushes.
func TestUDPPerDestinationFIFO(t *testing.T) {
	for _, path := range wirePaths() {
		t.Run(path, func(t *testing.T) {
			a, b := newUDPPairPath(t, 1, path, UDPConfig{})
			const n = 50
			for i := 0; i < n; i++ {
				if err := a.Send(0, 2, []byte(fmt.Sprintf("m-%02d", i))); err != nil {
					t.Fatal(err)
				}
				if i%16 == 15 {
					a.Flush()
				}
			}
			a.Flush()
			for i := 0; i < n; i++ {
				p := recvOne(t, b, 2*time.Second)
				if want := fmt.Sprintf("m-%02d", i); string(p.Data) != want {
					t.Fatalf("datagram %d reordered: got %q want %q", i, p.Data, want)
				}
			}
		})
	}
}

// TestUDPTokenNeverOvertakesQueue pins the control-flush path: a token
// sent after queued data flushes the whole queue FIFO, so the token is
// received after every message that was sent before it — the batched
// driver must not let the token jump the queue.
func TestUDPTokenNeverOvertakesQueue(t *testing.T) {
	tok := encodedToken(t)
	for _, path := range wirePaths() {
		t.Run(path, func(t *testing.T) {
			a, b := newUDPPairPath(t, 1, path, UDPConfig{})
			for i := 0; i < 10; i++ {
				if err := a.Send(0, 2, []byte(fmt.Sprintf("d-%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			if err := a.Send(0, 2, tok); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 10; i++ {
				p := recvOne(t, b, 2*time.Second)
				if want := fmt.Sprintf("d-%d", i); string(p.Data) != want {
					t.Fatalf("position %d: got %q want %q (token overtook data?)", i, p.Data, want)
				}
			}
			p := recvOne(t, b, 2*time.Second)
			if k, err := wire.PeekKind(p.Data); err != nil || k != wire.KindToken {
				t.Fatalf("position 10: want token, got kind %v err %v (%q)", k, err, p.Data)
			}
		})
	}
}

// TestUDPOversizeKeepsFIFO pins the bypass path: a datagram too large for
// a batch slot is sent directly, but only after the queued batch flushes,
// so it cannot overtake earlier traffic.
func TestUDPOversizeKeepsFIFO(t *testing.T) {
	big := make([]byte, wire.FrameCap+200)
	for i := range big {
		big[i] = byte(i)
	}
	for _, path := range wirePaths() {
		t.Run(path, func(t *testing.T) {
			a, b := newUDPPairPath(t, 1, path, UDPConfig{})
			if err := a.Send(0, 2, []byte("first")); err != nil {
				t.Fatal(err)
			}
			if err := a.Send(0, 2, big); err != nil {
				t.Fatal(err)
			}
			if p := recvOne(t, b, 2*time.Second); string(p.Data) != "first" {
				t.Fatalf("oversize datagram overtook the queue: got %q", p.Data)
			}
			if p := recvOne(t, b, 2*time.Second); len(p.Data) < wire.FrameCap {
				t.Fatalf("oversize datagram lost: got %d bytes", len(p.Data))
			}
		})
	}
}

// TestUDPZeroLengthSend pins that an empty payload survives the send
// queue (it is legal UDP and must not wedge the iovec construction).
func TestUDPZeroLengthSend(t *testing.T) {
	for _, path := range wirePaths() {
		t.Run(path, func(t *testing.T) {
			a, b := newUDPPairPath(t, 1, path, UDPConfig{})
			if err := a.Send(0, 2, []byte{}); err != nil {
				t.Fatal(err)
			}
			a.Flush()
			if p := recvOne(t, b, 2*time.Second); len(p.Data) != 0 {
				t.Fatalf("zero-length send delivered %d bytes", len(p.Data))
			}
		})
	}
}

// TestUDPSendErrorCounted pins satellite fix #1: a WriteToUDP failure is
// no longer silently dropped — it lands in udp.netI.tx_errors on both wire
// paths. A >64KiB datagram trips EMSGSIZE deterministically (it also
// exceeds a batch slot, so on the batched driver it takes the same direct
// WriteToUDP path whose errors used to vanish).
func TestUDPSendErrorCounted(t *testing.T) {
	huge := make([]byte, 70000)
	for _, path := range wirePaths() {
		t.Run(path, func(t *testing.T) {
			a, _ := newUDPPairPath(t, 1, path, UDPConfig{})
			reg := metrics.NewRegistry()
			a.RegisterMetrics(reg)

			if err := a.Send(0, proto.BroadcastID, huge); err != nil {
				t.Fatalf("broadcast reported error despite best-effort contract: %v", err)
			}
			if v, ok := reg.Get("udp.net0.tx_errors"); !ok || v < 1 {
				t.Fatalf("broadcast send error not counted: %d %v", v, ok)
			}

			before, _ := reg.Get("udp.net0.tx_errors")
			if err := a.Send(0, 2, huge); err == nil {
				t.Fatal("unicast of 70000 bytes succeeded")
			}
			if v, _ := reg.Get("udp.net0.tx_errors"); v != before+1 {
				t.Fatalf("unicast send error not counted: %d -> %d", before, v)
			}
		})
	}
}

// TestUDPBatchFlushReasons pins the batched driver's flush policy through
// its reason counters: explicit Flush, control packet, size overflow and
// the deadline backstop each account their flushes.
func TestUDPBatchFlushReasons(t *testing.T) {
	if !BatchSupported() {
		t.Skip("batched wire path not supported on this platform")
	}

	t.Run("explicit", func(t *testing.T) {
		a, b := newUDPPairPath(t, 1, WirePathBatch, UDPConfig{})
		reg := metrics.NewRegistry()
		a.RegisterMetrics(reg)
		if err := a.Send(0, 2, []byte("x")); err != nil {
			t.Fatal(err)
		}
		a.Flush()
		recvOne(t, b, 2*time.Second)
		if v, _ := reg.Get("udp.net0.flush_explicit"); v < 1 {
			t.Fatalf("flush_explicit = %d", v)
		}
	})

	t.Run("control", func(t *testing.T) {
		a, b := newUDPPairPath(t, 1, WirePathBatch, UDPConfig{})
		reg := metrics.NewRegistry()
		a.RegisterMetrics(reg)
		if err := a.Send(0, 2, encodedToken(t)); err != nil {
			t.Fatal(err)
		}
		recvOne(t, b, 2*time.Second)
		if v, _ := reg.Get("udp.net0.flush_control"); v < 1 {
			t.Fatalf("flush_control = %d", v)
		}
	})

	t.Run("size", func(t *testing.T) {
		// BatchMax 2 with a 3-peer broadcast overflows the entry budget
		// inside one enqueue (mutex held throughout), so the size flush is
		// deterministic — no race against the deadline timer.
		listen := []string{"127.0.0.1:0"}
		var trs []*UDPTransport
		for i := 1; i <= 4; i++ {
			tr, err := NewUDP(UDPConfig{
				ID: proto.NodeID(i), Listen: listen,
				WirePath: WirePathBatch, BatchMax: 2,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer tr.Close()
			trs = append(trs, tr)
		}
		for j, other := range trs[1:] {
			if err := trs[0].AddPeer(proto.NodeID(j+2), other.LocalAddrs()); err != nil {
				t.Fatal(err)
			}
		}
		reg := metrics.NewRegistry()
		trs[0].RegisterMetrics(reg)
		if err := trs[0].Send(0, proto.BroadcastID, []byte("fan")); err != nil {
			t.Fatal(err)
		}
		trs[0].Flush()
		for _, tr := range trs[1:] {
			if p := recvOne(t, tr, 2*time.Second); string(p.Data) != "fan" {
				t.Fatalf("got %q", p.Data)
			}
		}
		if v, _ := reg.Get("udp.net0.flush_size"); v < 1 {
			t.Fatalf("flush_size = %d", v)
		}
	})

	t.Run("deadline", func(t *testing.T) {
		a, b := newUDPPairPath(t, 1, WirePathBatch, UDPConfig{})
		reg := metrics.NewRegistry()
		a.RegisterMetrics(reg)
		if err := a.Send(0, 2, []byte("lone")); err != nil {
			t.Fatal(err)
		}
		// No flush: the 200µs backstop must put it on the wire by itself.
		if p := recvOne(t, b, 2*time.Second); string(p.Data) != "lone" {
			t.Fatalf("got %q", p.Data)
		}
		if v, _ := reg.Get("udp.net0.flush_deadline"); v < 1 {
			t.Fatalf("flush_deadline = %d", v)
		}
	})
}

// TestUDPBatchSyscallCoalescing pins the point of the batched driver: a
// queue of datagrams flushed at once costs far fewer kernel visits than
// datagrams sent. This is the unit-level Figure 6 proxy the live bench
// gate scales up.
func TestUDPBatchSyscallCoalescing(t *testing.T) {
	if !BatchSupported() {
		t.Skip("batched wire path not supported on this platform")
	}
	a, b := newUDPPairPath(t, 1, WirePathBatch, UDPConfig{})
	reg := metrics.NewRegistry()
	a.RegisterMetrics(reg)
	const n = 32
	for i := 0; i < n; i++ {
		if err := a.Send(0, 2, []byte(fmt.Sprintf("c-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	a.Flush()
	for i := 0; i < n; i++ {
		recvOne(t, b, 2*time.Second)
	}
	dg, _ := reg.Get("udp.net0.tx_datagrams")
	sc, _ := reg.Get("udp.net0.tx_syscalls")
	if dg != n {
		t.Fatalf("tx_datagrams = %d, want %d", dg, n)
	}
	// One enqueue burst should need a handful of sendmmsg calls at most;
	// ≤ n/2 pins a ≥2× syscall reduction without depending on kernel mood.
	if sc > n/2 {
		t.Fatalf("tx_syscalls = %d for %d datagrams: batching not coalescing", sc, dg)
	}
}
