package transport

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/totem-rrp/totem/internal/proto"
	"github.com/totem-rrp/totem/internal/wire"
)

func newUDPPair(t *testing.T, networks int) (*UDPTransport, *UDPTransport) {
	t.Helper()
	listen := make([]string, networks)
	for i := range listen {
		listen[i] = "127.0.0.1:0"
	}
	a, err := NewUDP(UDPConfig{ID: 1, Listen: listen})
	if err != nil {
		t.Fatalf("NewUDP a: %v", err)
	}
	t.Cleanup(func() { a.Close() })
	b, err := NewUDP(UDPConfig{ID: 2, Listen: listen})
	if err != nil {
		t.Fatalf("NewUDP b: %v", err)
	}
	t.Cleanup(func() { b.Close() })
	if err := a.AddPeer(2, b.LocalAddrs()); err != nil {
		t.Fatal(err)
	}
	if err := b.AddPeer(1, a.LocalAddrs()); err != nil {
		t.Fatal(err)
	}
	return a, b
}

func TestUDPUnicastPerNetwork(t *testing.T) {
	a, b := newUDPPair(t, 2)
	for net := 0; net < 2; net++ {
		if err := a.Send(net, 2, []byte{byte('A' + net)}); err != nil {
			t.Fatal(err)
		}
		p := recvOne(t, b, 2*time.Second)
		if p.Network != net || p.Data[0] != byte('A'+net) {
			t.Fatalf("got %+v want network %d", p, net)
		}
	}
}

func TestUDPBroadcastFansOut(t *testing.T) {
	listen := []string{"127.0.0.1:0"}
	var trs []*UDPTransport
	for i := 1; i <= 3; i++ {
		tr, err := NewUDP(UDPConfig{ID: proto.NodeID(i), Listen: listen})
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Close()
		trs = append(trs, tr)
	}
	for i, tr := range trs {
		for j, other := range trs {
			if i == j {
				continue
			}
			if err := tr.AddPeer(proto.NodeID(j+1), other.LocalAddrs()); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := trs[0].Send(0, proto.BroadcastID, []byte("fan")); err != nil {
		t.Fatal(err)
	}
	for _, tr := range trs[1:] {
		if p := recvOne(t, tr, 2*time.Second); string(p.Data) != "fan" {
			t.Fatalf("got %q", p.Data)
		}
	}
	expectSilence(t, trs[0], 30*time.Millisecond)
}

func TestUDPValidation(t *testing.T) {
	if _, err := NewUDP(UDPConfig{ID: 1}); err == nil {
		t.Fatal("no listen addresses accepted")
	}
	if _, err := NewUDP(UDPConfig{
		ID:     1,
		Listen: []string{"127.0.0.1:0", "127.0.0.1:0"},
		Peers:  map[proto.NodeID][]string{2: {"127.0.0.1:1"}}, // wrong arity
	}); err == nil {
		t.Fatal("peer with wrong address count accepted")
	}
	if _, err := NewUDP(UDPConfig{ID: 1, Listen: []string{"not-an-address"}}); err == nil {
		t.Fatal("unresolvable listen address accepted")
	}
}

func TestUDPSendErrors(t *testing.T) {
	a, _ := newUDPPair(t, 1)
	if err := a.Send(7, 2, []byte("x")); !errors.Is(err, ErrBadNetwork) {
		t.Fatalf("bad network: %v", err)
	}
	if err := a.Send(0, 42, []byte("x")); !errors.Is(err, ErrNoPeer) {
		t.Fatalf("unknown peer: %v", err)
	}
}

func TestUDPAddPeerValidation(t *testing.T) {
	a, _ := newUDPPair(t, 2)
	if err := a.AddPeer(3, []string{"127.0.0.1:1"}); err == nil {
		t.Fatal("wrong arity accepted")
	}
	if err := a.AddPeer(3, []string{"bad", "bad"}); err == nil {
		t.Fatal("unresolvable peer accepted")
	}
}

func TestUDPCloseIsIdempotentAndStopsReceive(t *testing.T) {
	a, b := newUDPPair(t, 1)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	// The receive channel must be closed.
	select {
	case _, ok := <-b.Packets():
		if ok {
			t.Fatal("packet after close")
		}
	case <-time.After(time.Second):
		t.Fatal("packet channel not closed")
	}
	// Sending to the closed peer simply goes nowhere.
	if err := a.Send(0, 2, []byte("x")); err != nil {
		t.Fatalf("send to closed peer errored: %v", err)
	}
}

func TestUDPRemovePeerReAdd(t *testing.T) {
	a, b := newUDPPair(t, 1)

	a.RemovePeer(2)
	if err := a.Send(0, 2, []byte("gone")); !errors.Is(err, ErrNoPeer) {
		t.Fatalf("unicast to removed peer: %v, want ErrNoPeer", err)
	}
	if err := a.Send(0, proto.BroadcastID, []byte("gone")); err != nil {
		t.Fatalf("broadcast with no peers errored: %v", err)
	}
	expectSilence(t, b, 50*time.Millisecond)
	a.RemovePeer(42) // unknown peer is a no-op

	// Re-adding restores delivery on both paths.
	if err := a.AddPeer(2, b.LocalAddrs()); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(0, 2, []byte("uni")); err != nil {
		t.Fatal(err)
	}
	if p := recvOne(t, b, 2*time.Second); string(p.Data) != "uni" {
		t.Fatalf("got %q", p.Data)
	}
	if err := a.Send(0, proto.BroadcastID, []byte("bc")); err != nil {
		t.Fatal(err)
	}
	if p := recvOne(t, b, 2*time.Second); string(p.Data) != "bc" {
		t.Fatalf("got %q", p.Data)
	}
}

// TestUDPConcurrentSendPeerChurnClose drives the supported concurrency to
// its limit under the race detector: one goroutine sending (the Transport
// contract allows exactly one), another churning the peer table, a third
// draining, and Close landing while all are in flight.
func TestUDPConcurrentSendPeerChurnClose(t *testing.T) {
	a, b := newUDPPair(t, 2)
	stop := make(chan struct{})
	var wg sync.WaitGroup

	wg.Add(3)
	go func() { // sender: errors after Close are expected, panics are not
		defer wg.Done()
		payload := []byte("churn")
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			a.Send(i%2, proto.BroadcastID, payload) //nolint:errcheck
			a.Send(i%2, 2, payload)                 //nolint:errcheck
		}
	}()
	go func() { // peer churn
		defer wg.Done()
		addrs := b.LocalAddrs()
		for {
			select {
			case <-stop:
				return
			default:
			}
			a.RemovePeer(2)
			if err := a.AddPeer(2, addrs); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() { // drain so the receive queue never wedges the sender's peer
		defer wg.Done()
		for range b.Packets() {
		}
	}()

	time.Sleep(100 * time.Millisecond)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // let the sender race the closed sockets
	close(stop)
	b.Close()
	wg.Wait()
}

// rawSend fires one datagram at the transport's network-0 socket from an
// unmanaged socket, bypassing Send's framing entirely.
func rawSend(t *testing.T, to *UDPTransport, payload []byte) {
	t.Helper()
	conn, err := net.Dial("udp", to.LocalAddrs()[0])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(payload); err != nil {
		t.Fatal(err)
	}
}

// TestUDPTruncatedDatagram pins what happens when a datagram exceeds the
// frame pool's capacity: the kernel truncates it to wire.FrameCap, the
// read loop stays alive, and well-formed traffic flows afterwards. Upper
// layers discard the mangled frame when decoding fails.
func TestUDPTruncatedDatagram(t *testing.T) {
	a, b := newUDPPair(t, 1)
	oversize := make([]byte, wire.FrameCap+512)
	for i := range oversize {
		oversize[i] = byte(i)
	}
	rawSend(t, b, oversize)
	p := recvOne(t, b, 2*time.Second)
	if len(p.Data) != wire.FrameCap {
		t.Fatalf("truncated datagram delivered %d bytes, want %d", len(p.Data), wire.FrameCap)
	}
	if err := a.Send(0, 2, []byte("after")); err != nil {
		t.Fatal(err)
	}
	if p := recvOne(t, b, 2*time.Second); string(p.Data) != "after" {
		t.Fatalf("read loop wedged after truncation: got %q", p.Data)
	}
}

// TestUDPShortDatagrams pins the short-read path: zero-length and
// single-byte datagrams are legal UDP, must not kill the read loop, and
// surface as (useless but harmless) packets for the decoder to reject.
func TestUDPShortDatagrams(t *testing.T) {
	a, b := newUDPPair(t, 1)
	rawSend(t, b, nil)
	if p := recvOne(t, b, 2*time.Second); len(p.Data) != 0 {
		t.Fatalf("zero-length datagram delivered %d bytes", len(p.Data))
	}
	rawSend(t, b, []byte{0x7f})
	if p := recvOne(t, b, 2*time.Second); len(p.Data) != 1 || p.Data[0] != 0x7f {
		t.Fatalf("one-byte datagram mangled: %v", p.Data)
	}
	if err := a.Send(0, 2, []byte("after")); err != nil {
		t.Fatal(err)
	}
	if p := recvOne(t, b, 2*time.Second); string(p.Data) != "after" {
		t.Fatalf("read loop wedged after short reads: got %q", p.Data)
	}
}

func TestUDPLargeFrame(t *testing.T) {
	a, b := newUDPPair(t, 1)
	big := make([]byte, 1480) // max Totem frame incl. recovery slack
	for i := range big {
		big[i] = byte(i)
	}
	if err := a.Send(0, 2, big); err != nil {
		t.Fatal(err)
	}
	p := recvOne(t, b, 2*time.Second)
	if len(p.Data) != len(big) || p.Data[777] != big[777] {
		t.Fatalf("large frame corrupted: %d bytes", len(p.Data))
	}
}
