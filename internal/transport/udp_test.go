package transport

import (
	"errors"
	"testing"
	"time"

	"github.com/totem-rrp/totem/internal/proto"
)

func newUDPPair(t *testing.T, networks int) (*UDPTransport, *UDPTransport) {
	t.Helper()
	listen := make([]string, networks)
	for i := range listen {
		listen[i] = "127.0.0.1:0"
	}
	a, err := NewUDP(UDPConfig{ID: 1, Listen: listen})
	if err != nil {
		t.Fatalf("NewUDP a: %v", err)
	}
	t.Cleanup(func() { a.Close() })
	b, err := NewUDP(UDPConfig{ID: 2, Listen: listen})
	if err != nil {
		t.Fatalf("NewUDP b: %v", err)
	}
	t.Cleanup(func() { b.Close() })
	if err := a.AddPeer(2, b.LocalAddrs()); err != nil {
		t.Fatal(err)
	}
	if err := b.AddPeer(1, a.LocalAddrs()); err != nil {
		t.Fatal(err)
	}
	return a, b
}

func TestUDPUnicastPerNetwork(t *testing.T) {
	a, b := newUDPPair(t, 2)
	for net := 0; net < 2; net++ {
		if err := a.Send(net, 2, []byte{byte('A' + net)}); err != nil {
			t.Fatal(err)
		}
		p := recvOne(t, b, 2*time.Second)
		if p.Network != net || p.Data[0] != byte('A'+net) {
			t.Fatalf("got %+v want network %d", p, net)
		}
	}
}

func TestUDPBroadcastFansOut(t *testing.T) {
	listen := []string{"127.0.0.1:0"}
	var trs []*UDPTransport
	for i := 1; i <= 3; i++ {
		tr, err := NewUDP(UDPConfig{ID: proto.NodeID(i), Listen: listen})
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Close()
		trs = append(trs, tr)
	}
	for i, tr := range trs {
		for j, other := range trs {
			if i == j {
				continue
			}
			if err := tr.AddPeer(proto.NodeID(j+1), other.LocalAddrs()); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := trs[0].Send(0, proto.BroadcastID, []byte("fan")); err != nil {
		t.Fatal(err)
	}
	for _, tr := range trs[1:] {
		if p := recvOne(t, tr, 2*time.Second); string(p.Data) != "fan" {
			t.Fatalf("got %q", p.Data)
		}
	}
	expectSilence(t, trs[0], 30*time.Millisecond)
}

func TestUDPValidation(t *testing.T) {
	if _, err := NewUDP(UDPConfig{ID: 1}); err == nil {
		t.Fatal("no listen addresses accepted")
	}
	if _, err := NewUDP(UDPConfig{
		ID:     1,
		Listen: []string{"127.0.0.1:0", "127.0.0.1:0"},
		Peers:  map[proto.NodeID][]string{2: {"127.0.0.1:1"}}, // wrong arity
	}); err == nil {
		t.Fatal("peer with wrong address count accepted")
	}
	if _, err := NewUDP(UDPConfig{ID: 1, Listen: []string{"not-an-address"}}); err == nil {
		t.Fatal("unresolvable listen address accepted")
	}
}

func TestUDPSendErrors(t *testing.T) {
	a, _ := newUDPPair(t, 1)
	if err := a.Send(7, 2, []byte("x")); !errors.Is(err, ErrBadNetwork) {
		t.Fatalf("bad network: %v", err)
	}
	if err := a.Send(0, 42, []byte("x")); !errors.Is(err, ErrNoPeer) {
		t.Fatalf("unknown peer: %v", err)
	}
}

func TestUDPAddPeerValidation(t *testing.T) {
	a, _ := newUDPPair(t, 2)
	if err := a.AddPeer(3, []string{"127.0.0.1:1"}); err == nil {
		t.Fatal("wrong arity accepted")
	}
	if err := a.AddPeer(3, []string{"bad", "bad"}); err == nil {
		t.Fatal("unresolvable peer accepted")
	}
}

func TestUDPCloseIsIdempotentAndStopsReceive(t *testing.T) {
	a, b := newUDPPair(t, 1)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	// The receive channel must be closed.
	select {
	case _, ok := <-b.Packets():
		if ok {
			t.Fatal("packet after close")
		}
	case <-time.After(time.Second):
		t.Fatal("packet channel not closed")
	}
	// Sending to the closed peer simply goes nowhere.
	if err := a.Send(0, 2, []byte("x")); err != nil {
		t.Fatalf("send to closed peer errored: %v", err)
	}
}

func TestUDPLargeFrame(t *testing.T) {
	a, b := newUDPPair(t, 1)
	big := make([]byte, 1480) // max Totem frame incl. recovery slack
	for i := range big {
		big[i] = byte(i)
	}
	if err := a.Send(0, 2, big); err != nil {
		t.Fatal(err)
	}
	p := recvOne(t, b, 2*time.Second)
	if len(p.Data) != len(big) || p.Data[777] != big[777] {
		t.Fatalf("large frame corrupted: %d bytes", len(p.Data))
	}
}
