package transport

import (
	"strings"
	"testing"
)

// TestResolveWirePathPrecedence pins the selection order: explicit config
// beats the TOTEM_WIREPATH environment knob beats auto-detection, and the
// environment degrades gracefully where an explicit "batch" is strict.
func TestResolveWirePathPrecedence(t *testing.T) {
	auto := WirePathPortable
	if BatchSupported() {
		auto = WirePathBatch
	}

	cases := []struct {
		name      string
		requested string
		env       string
		want      string
	}{
		{"auto no env", WirePathAuto, "", auto},
		{"empty is auto", "", "", auto},
		{"explicit portable", WirePathPortable, "", WirePathPortable},
		{"config beats env", WirePathPortable, WirePathBatch, WirePathPortable},
		{"env portable overrides auto", "", WirePathPortable, WirePathPortable},
		{"env auto falls through", "", WirePathAuto, auto},
		// The environment knob never hard-fails: a CI matrix exports
		// TOTEM_WIREPATH=batch everywhere and non-Linux runners degrade.
		{"env batch degrades", "", WirePathBatch, auto},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			t.Setenv(WirePathEnv, tc.env)
			got, err := resolveWirePath(tc.requested)
			if err != nil {
				t.Fatalf("resolveWirePath(%q): %v", tc.requested, err)
			}
			if got != tc.want {
				t.Fatalf("resolveWirePath(%q) with env %q = %q, want %q",
					tc.requested, tc.env, got, tc.want)
			}
		})
	}
}

func TestResolveWirePathErrors(t *testing.T) {
	t.Setenv(WirePathEnv, "")
	if _, err := resolveWirePath("carrier-pigeon"); err == nil {
		t.Fatal("unknown wire path accepted")
	}
	t.Setenv(WirePathEnv, "carrier-pigeon")
	if _, err := resolveWirePath(""); err == nil {
		t.Fatal("unknown wire path in environment accepted")
	}
	if !BatchSupported() {
		// Explicit config is strict: asking for the batched driver on a
		// platform without it is a configuration error, not a silent
		// downgrade.
		if _, err := resolveWirePath(WirePathBatch); err == nil {
			t.Fatal("explicit batch accepted on unsupported platform")
		}
	}
}

// TestUDPWirePathReported pins that a constructed transport reports the
// driver actually in use and registers the matching gauge.
func TestUDPWirePathReported(t *testing.T) {
	t.Setenv(WirePathEnv, "")
	tr, err := NewUDP(UDPConfig{
		ID: 1, Listen: []string{"127.0.0.1:0"}, WirePath: WirePathPortable,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if got := tr.WirePath(); got != WirePathPortable {
		t.Fatalf("WirePath() = %q, want portable", got)
	}

	tr2, err := NewUDP(UDPConfig{ID: 2, Listen: []string{"127.0.0.1:0"}})
	if err != nil {
		t.Fatal(err)
	}
	defer tr2.Close()
	want := WirePathPortable
	if BatchSupported() {
		want = WirePathBatch
	}
	if got := tr2.WirePath(); got != want {
		t.Fatalf("auto WirePath() = %q, want %q", got, want)
	}
}

func TestNewUDPRejectsUnknownWirePath(t *testing.T) {
	_, err := NewUDP(UDPConfig{
		ID: 1, Listen: []string{"127.0.0.1:0"}, WirePath: "quantum",
	})
	if err == nil || !strings.Contains(err.Error(), "wire path") {
		t.Fatalf("unknown wire path accepted: %v", err)
	}
}
