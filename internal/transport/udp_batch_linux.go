//go:build linux && (amd64 || arm64)

package transport

import (
	"context"
	"fmt"
	"net"
	"runtime"
	"sync"
	"syscall"
	"time"
	"unsafe"

	"github.com/totem-rrp/totem/internal/wire"
)

// The batched wire path (DESIGN.md §13): one sendmmsg per queued batch on
// the way out, one recvmmsg per kernel visit on the way in, SO_REUSEPORT
// receive shards draining one port in parallel. The Go runtime's netpoller
// still owns readiness (syscall.RawConn.Read/Write), so blocking semantics
// and Close behaviour match the portable driver exactly.

const batchSupported = true

const (
	// defaultRecvShards is the SO_REUSEPORT socket count per network. The
	// kernel hashes each (src, dst) flow to one shard, so per-sender FIFO
	// — which the SRP relies on per link — is preserved while distinct
	// peers drain in parallel.
	defaultRecvShards = 2
	maxRecvShards     = 16
	// defaultBatchMax caps datagrams per sendmmsg; 64 comfortably covers
	// a full token visit (MaxPerVisit messages × peers + the token).
	defaultBatchMax = 64
	maxBatchMax     = 512
	// recvBatch is the mmsghdr count per recvmmsg.
	recvBatch = 16
	// batchSlot is the per-datagram buffer budget in the send queue; any
	// larger datagram bypasses the queue (after a FIFO-preserving flush).
	batchSlot = wire.FrameCap
	// flushDelay is the deadline backstop: a queued batch never waits
	// longer than this for an explicit Flush or a control packet. The
	// runtime flushes after every action batch, so in steady state this
	// timer is armed and disarmed without ever firing.
	flushDelay = 200 * time.Microsecond
)

// soReusePort is SO_REUSEPORT; the frozen syscall package predates it.
const soReusePort = 0xf

// rawSockaddr is a kernel-ready destination address (IPv4 or IPv6),
// stored by value in fixed batch slots so msg_hdr.Name can point at it
// without allocation.
type rawSockaddr struct {
	data [syscall.SizeofSockaddrInet6]byte
	len  uint32
}

// fill converts a resolved *net.UDPAddr. It reports false for addresses
// the kernel cannot take (nil IP).
func (ra *rawSockaddr) fill(a *net.UDPAddr) bool {
	if ip := a.IP.To4(); ip != nil {
		sa := (*syscall.RawSockaddrInet4)(unsafe.Pointer(&ra.data[0]))
		*sa = syscall.RawSockaddrInet4{Family: syscall.AF_INET}
		p := (*[2]byte)(unsafe.Pointer(&sa.Port))
		p[0], p[1] = byte(a.Port>>8), byte(a.Port) // network byte order
		copy(sa.Addr[:], ip)
		ra.len = syscall.SizeofSockaddrInet4
		return true
	}
	if ip := a.IP.To16(); ip != nil {
		sa := (*syscall.RawSockaddrInet6)(unsafe.Pointer(&ra.data[0]))
		*sa = syscall.RawSockaddrInet6{Family: syscall.AF_INET6}
		p := (*[2]byte)(unsafe.Pointer(&sa.Port))
		p[0], p[1] = byte(a.Port>>8), byte(a.Port)
		copy(sa.Addr[:], ip)
		ra.len = syscall.SizeofSockaddrInet6
		return true
	}
	return false
}

// mmsghdr mirrors struct mmsghdr; the explicit pad keeps the array stride
// at 64 bytes on both amd64 and arm64 (msghdr is 56 bytes on each).
type mmsghdr struct {
	hdr syscall.Msghdr
	cnt uint32
	_   [4]byte
}

func sendmmsg(fd uintptr, hdrs []mmsghdr) (int, syscall.Errno) {
	n, _, e := syscall.Syscall6(sysSendmmsg, fd,
		uintptr(unsafe.Pointer(&hdrs[0])), uintptr(len(hdrs)), 0, 0, 0)
	if e != 0 {
		return -1, e
	}
	return int(n), 0
}

func recvmmsg(fd uintptr, hdrs []mmsghdr, flags uintptr) (int, syscall.Errno) {
	n, _, e := syscall.Syscall6(sysRecvmmsg, fd,
		uintptr(unsafe.Pointer(&hdrs[0])), uintptr(len(hdrs)), flags, 0, 0)
	if e != 0 {
		return -1, e
	}
	return int(n), 0
}

// netBatch is one network's send queue: datagram bytes appended
// back-to-back in a fixed buffer, one entry per destination. A broadcast
// copies its payload once and adds one entry per peer pointing at the
// same bytes, so the encode-once fan-out stays copy-once too.
type netBatch struct {
	d       *batchDriver
	network int

	mu sync.Mutex
	// buf holds the queued datagram bytes (cap fixed at construction;
	// never reallocated, so iovec base pointers stay valid).
	buf []byte
	n   int // entries queued
	// per-entry parallel slots, length batchMax.
	offs  []int
	lens  []int
	dsts  []rawSockaddr
	hdrs  []mmsghdr
	iovs  []syscall.Iovec
	timer *time.Timer
	// armed tracks whether the deadline timer is pending, so the deadline
	// runs from the first queued datagram and is never pushed out by
	// later enqueues.
	armed bool
}

// batchDriver implements wireDriver with batched syscalls.
type batchDriver struct {
	t        *UDPTransport
	batchMax int
	// conns[i] holds network i's SO_REUSEPORT shard sockets; shard 0
	// doubles as the send socket (its bound port is the one peers know).
	conns   [][]*net.UDPConn
	sendRC  []syscall.RawConn
	batches []*netBatch
}

func newBatchDriver(t *UDPTransport, cfg UDPConfig) (wireDriver, error) {
	shards := cfg.RecvShards
	if shards <= 0 {
		shards = defaultRecvShards
	}
	if shards > maxRecvShards {
		shards = maxRecvShards
	}
	batchMax := cfg.BatchMax
	if batchMax <= 0 {
		batchMax = defaultBatchMax
	}
	if batchMax > maxBatchMax {
		batchMax = maxBatchMax
	}
	d := &batchDriver{t: t, batchMax: batchMax}
	for i, addr := range cfg.Listen {
		conns, err := listenReusePort(addr, shards)
		if err != nil {
			d.close() //nolint:errcheck
			return nil, fmt.Errorf("udp: listen %q: %w", addr, err)
		}
		rc, err := conns[0].SyscallConn()
		if err != nil {
			for _, c := range conns {
				c.Close() //nolint:errcheck
			}
			d.close() //nolint:errcheck
			return nil, fmt.Errorf("udp: listen %q: %w", addr, err)
		}
		d.conns = append(d.conns, conns)
		d.sendRC = append(d.sendRC, rc)
		nb := &netBatch{
			d:       d,
			network: i,
			buf:     make([]byte, 0, batchMax*batchSlot),
			offs:    make([]int, batchMax),
			lens:    make([]int, batchMax),
			dsts:    make([]rawSockaddr, batchMax),
			hdrs:    make([]mmsghdr, batchMax),
			iovs:    make([]syscall.Iovec, batchMax),
		}
		nb.timer = time.AfterFunc(time.Hour, nb.deadlineFlush)
		nb.timer.Stop()
		d.batches = append(d.batches, nb)
		for _, c := range conns {
			t.wg.Add(1)
			go d.readLoop(i, c)
		}
	}
	return d, nil
}

// listenReusePort binds `shards` UDP sockets to the same address with
// SO_REUSEPORT. With a ":0" request the first socket picks the port and
// the rest join it.
func listenReusePort(addr string, shards int) ([]*net.UDPConn, error) {
	lc := net.ListenConfig{
		Control: func(network, address string, c syscall.RawConn) error {
			var serr error
			err := c.Control(func(fd uintptr) {
				serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
			})
			if err != nil {
				return err
			}
			return serr
		},
	}
	conns := make([]*net.UDPConn, 0, shards)
	for i := 0; i < shards; i++ {
		pc, err := lc.ListenPacket(context.Background(), "udp", addr)
		if err != nil {
			for _, c := range conns {
				c.Close() //nolint:errcheck
			}
			return nil, err
		}
		uc := pc.(*net.UDPConn)
		conns = append(conns, uc)
		if i == 0 {
			addr = uc.LocalAddr().String() // later shards join the bound port
		}
	}
	return conns, nil
}

func (d *batchDriver) localAddrs() []string {
	out := make([]string, len(d.conns))
	for i, cs := range d.conns {
		out[i] = cs[0].LocalAddr().String()
	}
	return out
}

func (d *batchDriver) readLoop(network int, conn *net.UDPConn) {
	defer d.t.wg.Done()
	rc, err := conn.SyscallConn()
	if err != nil {
		return
	}
	c := &d.t.counters[network]
	var bufs [recvBatch][]byte
	for i := range bufs {
		bufs[i] = wire.GetFrame()[:wire.FrameCap]
	}
	hdrs := make([]mmsghdr, recvBatch)
	iovs := make([]syscall.Iovec, recvBatch)
	for {
		// Re-point the iovecs every round: delivered buffers were replaced
		// with fresh pooled frames.
		for i := range hdrs {
			iovs[i] = syscall.Iovec{Base: &bufs[i][0], Len: wire.FrameCap}
			hdrs[i] = mmsghdr{hdr: syscall.Msghdr{Iov: &iovs[i], Iovlen: 1}}
		}
		var (
			n  int
			en syscall.Errno
		)
		rerr := rc.Read(func(fd uintptr) bool {
			n, en = recvmmsg(fd, hdrs, syscall.MSG_DONTWAIT)
			return !(n < 0 && en == syscall.EAGAIN)
		})
		runtime.KeepAlive(&bufs)
		if rerr != nil {
			for i := range bufs {
				wire.PutFrame(bufs[i])
			}
			return // socket closed
		}
		if n <= 0 {
			continue // transient errno (e.g. async ICMP); the socket lives
		}
		c.rxSyscalls.Add(1)
		for i := 0; i < n; i++ {
			if d.t.deliver(network, bufs[i][:hdrs[i].cnt]) {
				bufs[i] = wire.GetFrame()[:wire.FrameCap]
			}
		}
	}
}

// isControl reports whether data is a protocol control packet (token,
// join, commit, merge-detect): those flush the batch immediately so
// token rotation and membership formation never wait out the deadline.
func isControl(data []byte) bool {
	k, err := wire.PeekKind(data)
	return err == nil && k != wire.KindData
}

func (d *batchDriver) unicast(network int, addr *net.UDPAddr, data []byte) error {
	return d.batches[network].enqueue(addr, nil, data)
}

func (d *batchDriver) broadcast(network int, addrs []*net.UDPAddr, data []byte) {
	if len(addrs) == 0 {
		return
	}
	d.batches[network].enqueue(nil, addrs, data)
}

func (d *batchDriver) flush() {
	for _, nb := range d.batches {
		nb.mu.Lock()
		if nb.n > 0 {
			d.t.counters[nb.network].flushExplicit.Add(1)
			nb.flushLocked()
		}
		nb.mu.Unlock()
	}
}

func (d *batchDriver) close() error {
	for _, nb := range d.batches {
		nb.mu.Lock()
		nb.timer.Stop()
		// Drop whatever is still queued: the sockets are going away and a
		// closing node's unflushed datagrams are indistinguishable from
		// wire loss to the peers.
		nb.buf, nb.n = nb.buf[:0], 0
		nb.mu.Unlock()
	}
	for _, cs := range d.conns {
		for _, c := range cs {
			c.Close() //nolint:errcheck
		}
	}
	return nil
}

// enqueue queues one datagram for addr (unicast) or one shared payload
// copy fanned out to every addrs entry (broadcast). FIFO order with all
// earlier traffic on the network is preserved across every flush path.
// The returned error is meaningful only for the oversize direct path — a
// queued datagram's kernel verdict arrives at flush time, where it is
// counted rather than returned, just like broadcast fan-out.
func (nb *netBatch) enqueue(addr *net.UDPAddr, addrs []*net.UDPAddr, data []byte) error {
	c := &nb.d.t.counters[nb.network]
	nb.mu.Lock()
	if len(data) > batchSlot {
		// Too big for a batch slot: flush what is queued (FIFO), then send
		// directly through the same socket.
		if nb.n > 0 {
			c.flushSize.Add(1)
			nb.flushLocked()
		}
		nb.mu.Unlock()
		conn := nb.d.conns[nb.network][0]
		if addr != nil {
			addrs = []*net.UDPAddr{addr}
		}
		var werr error
		for _, a := range addrs {
			c.txDatagrams.Add(1)
			c.txSyscalls.Add(1)
			if _, err := conn.WriteToUDP(data, a); err != nil {
				c.txErrors.Add(1)
				werr = err
			}
		}
		return werr
	}
	if addr != nil {
		nb.add(addr, data, -1)
	} else {
		// One payload copy, many entries. A mid-fan-out size flush resets
		// the buffer, so the copy offset is re-established as needed.
		off := -1
		for _, a := range addrs {
			off = nb.add(a, data, off)
		}
	}
	c.txDatagrams.Add(uint64(max(1, len(addrs))))
	switch {
	case isControl(data):
		c.flushControl.Add(1)
		nb.flushLocked()
	case nb.n > 0 && !nb.armed:
		// Arm the deadline backstop for the batch head.
		nb.armed = true
		nb.timer.Reset(flushDelay)
	}
	nb.mu.Unlock()
	return nil
}

// add appends one entry, copying data into the buffer unless off (an
// offset from an earlier entry of the same fan-out) is still valid. It
// returns the offset holding data. Caller holds nb.mu.
func (nb *netBatch) add(a *net.UDPAddr, data []byte, off int) int {
	c := &nb.d.t.counters[nb.network]
	if nb.n == nb.d.batchMax || (off < 0 && len(nb.buf)+len(data) > cap(nb.buf)) {
		c.flushSize.Add(1)
		nb.flushLocked()
		off = -1
	}
	if off < 0 {
		off = len(nb.buf)
		nb.buf = append(nb.buf, data...)
	}
	if !nb.dsts[nb.n].fill(a) {
		c.txErrors.Add(1)
		return off
	}
	nb.offs[nb.n] = off
	nb.lens[nb.n] = len(data)
	nb.n++
	return off
}

func (nb *netBatch) deadlineFlush() {
	nb.mu.Lock()
	if nb.n > 0 {
		nb.d.t.counters[nb.network].flushDeadline.Add(1)
		nb.flushLocked()
	}
	nb.mu.Unlock()
}

// flushLocked puts the queued batch on the wire with as few sendmmsg
// calls as the kernel allows, in strict FIFO order. A datagram the kernel
// rejects outright is dropped (counted in tx_errors) rather than
// reordered. Caller holds nb.mu and has already counted the flush reason.
func (nb *netBatch) flushLocked() {
	c := &nb.d.t.counters[nb.network]
	for i := 0; i < nb.n; i++ {
		// Zero-length datagrams are anchored off-buffer: their offset may
		// equal len(buf) (nothing was appended), which is not indexable.
		base := &zeroByte
		if nb.lens[i] > 0 {
			base = &nb.buf[nb.offs[i]]
		}
		nb.iovs[i] = syscall.Iovec{Base: base, Len: uint64(nb.lens[i])}
		nb.hdrs[i] = mmsghdr{hdr: syscall.Msghdr{
			Name:    &nb.dsts[i].data[0],
			Namelen: nb.dsts[i].len,
			Iov:     &nb.iovs[i],
			Iovlen:  1,
		}}
	}
	i := 0
	for i < nb.n {
		var (
			sent int
			en   syscall.Errno
		)
		werr := nb.d.sendRC[nb.network].Write(func(fd uintptr) bool {
			c.txSyscalls.Add(1)
			sent, en = sendmmsg(fd, nb.hdrs[i:nb.n])
			return !(sent < 0 && en == syscall.EAGAIN)
		})
		if werr != nil {
			// Socket closed underneath us: drop the remainder.
			c.txErrors.Add(uint64(nb.n - i))
			break
		}
		if sent <= 0 {
			// Hard error on the batch head (e.g. async ICMP): skip that
			// one datagram, keep the rest in order.
			c.txErrors.Add(1)
			i++
			continue
		}
		i += sent
	}
	runtime.KeepAlive(nb)
	nb.buf = nb.buf[:0]
	nb.n = 0
	nb.armed = false
	nb.timer.Stop()
}

// zeroByte anchors the iovec of a zero-length datagram.
var zeroByte byte
