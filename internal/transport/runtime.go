package transport

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/totem-rrp/totem/internal/proto"
	"github.com/totem-rrp/totem/internal/stack"
	"github.com/totem-rrp/totem/internal/trace"
	"github.com/totem-rrp/totem/internal/wire"
)

// Runtime drives one stack.Node in real time: a single goroutine
// serialises packets, timer expirations and submissions into the pure
// state machine and executes the resulting actions against the transport
// and wall-clock timers. Application-facing events are forwarded on
// unbounded queues so a slow consumer can never stall the token ring.
type Runtime struct {
	stack *stack.Node
	tr    Transport
	// flush, when non-nil, is the transport's batch-flush hook: execute
	// calls it once per action batch that sent anything, so the batched
	// wire path coalesces a whole token visit into one kernel entry.
	flush func()
	epoch time.Time
	// sent is execute's reusable scratch of pooled frames to release once
	// the batch completes (only touched by the loop goroutine).
	sent [][]byte

	// tracer, when non-nil, receives typed events from the loop goroutine
	// and the stack's probe hook. Set before Start; nil costs one branch
	// per site.
	tracer trace.Tracer
	// deliveryTap, when non-nil, observes every delivery synchronously on
	// the loop goroutine before it is queued for the application. Set
	// before Start; it must not block.
	deliveryTap func(proto.Delivery)
	id          proto.NodeID

	events chan runtimeEvent
	// submitRejected counts Submit calls refused by SRP backpressure.
	submitRejected atomic.Uint64

	timerMu  sync.Mutex
	timerGen map[proto.TimerID]uint64
	nextGen  uint64
	timers   map[proto.TimerID]*time.Timer

	deliveries *queue[proto.Delivery]
	faults     *queue[proto.FaultReport]
	cleared    *queue[proto.ClearReport]
	configs    *queue[proto.ConfigChange]
	bulkEvs    *queue[proto.BulkEvent]

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

type runtimeEvent struct {
	pkt    *Packet
	timer  *timerFire
	submit *submitReq
	query  func()
}

type timerFire struct {
	id  proto.TimerID
	gen uint64
}

type submitReq struct {
	payload []byte
	bulk    *bulkChunk
	reply   chan bool
}

// bulkChunk is one windowed piece of a bulk transfer bound for the
// rate-limited lane.
type bulkChunk struct {
	id, off, total uint64
	data           []byte
}

// NewRuntime wires a stack to a transport. Call Start to begin.
func NewRuntime(st *stack.Node, tr Transport) *Runtime {
	r := &Runtime{
		stack:      st,
		tr:         tr,
		id:         st.ID(),
		events:     make(chan runtimeEvent, 256),
		timerGen:   make(map[proto.TimerID]uint64),
		timers:     make(map[proto.TimerID]*time.Timer),
		deliveries: newQueue[proto.Delivery](),
		faults:     newQueue[proto.FaultReport](),
		cleared:    newQueue[proto.ClearReport](),
		configs:    newQueue[proto.ConfigChange](),
		bulkEvs:    newQueue[proto.BulkEvent](),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	reg := st.Metrics()
	reg.RegisterFunc("runtime.events_depth", func() int64 { return int64(len(r.events)) })
	reg.RegisterFunc("runtime.deliveries_depth", r.deliveries.depth)
	reg.RegisterFunc("runtime.faults_depth", r.faults.depth)
	reg.RegisterFunc("runtime.cleared_depth", r.cleared.depth)
	reg.RegisterFunc("runtime.configs_depth", r.configs.depth)
	reg.RegisterFunc("runtime.bulk_depth", r.bulkEvs.depth)
	reg.RegisterFunc("runtime.submit_rejected", func() int64 { return int64(r.submitRejected.Load()) })
	if ms, ok := tr.(MetricSource); ok {
		ms.RegisterMetrics(reg)
	}
	if bs, ok := tr.(BatchSender); ok {
		r.flush = bs.Flush
	}
	return r
}

// SetTracer installs a tracer for the runtime's packet/timer/delivery
// events and the stack's machine probes. Must be called before Start; the
// tracer must be safe for concurrent use if the caller also reads it
// (trace.Ring is).
func (r *Runtime) SetTracer(tr trace.Tracer) {
	r.tracer = tr
}

// SetDeliveryTap installs a synchronous observer for every delivery,
// invoked on the loop goroutine before the delivery is queued for the
// application. Must be called before Start; the tap must not block (it
// stalls the token ring if it does). The conformance harness uses it to
// feed the torture checker in protocol order, unperturbed by the
// application-facing queue.
func (r *Runtime) SetDeliveryTap(tap func(proto.Delivery)) {
	r.deliveryTap = tap
}

// Start boots the protocol stack and the event loop.
func (r *Runtime) Start() {
	r.epoch = time.Now()
	if r.tracer != nil {
		// Machine probes fire synchronously inside stack calls, which the
		// loop goroutine serialises, so stamping wall-clock time here is
		// race-free.
		r.stack.SetProbe(func(e proto.ProbeEvent) {
			r.tracer.Record(trace.Event{
				At: r.now(), Node: r.id, Kind: trace.Machine,
				Code: e.Code, Network: e.Network, A: e.A, B: e.B, C: e.C,
			})
		})
	}
	go r.loop()
}

func (r *Runtime) now() proto.Time { return time.Since(r.epoch) }

func (r *Runtime) loop() {
	defer close(r.done)
	r.execute(r.stack.Start(r.now()))
	packets := r.tr.Packets()
	for {
		select {
		case <-r.stop:
			return
		case pkt, ok := <-packets:
			if !ok {
				return
			}
			if r.tracer != nil {
				kind, _ := wire.PeekKind(pkt.Data)
				r.tracer.Record(trace.Event{
					At: r.now(), Node: r.id, Kind: trace.PacketReceived, Network: pkt.Network,
					A: int64(kind), C: int64(len(pkt.Data)),
				})
			}
			r.execute(r.stack.OnPacket(r.now(), pkt.Network, pkt.Data))
			// The stack copies what it keeps from a data frame (decoded
			// packets, not raw bytes), so the receive buffer can rejoin
			// the pool. Token frames may be retained by the replicator
			// and are skipped by the kind check.
			wire.ReleaseFrame(pkt.Data)
		case ev := <-r.events:
			switch {
			case ev.timer != nil:
				if r.takeTimer(ev.timer) {
					if r.tracer != nil {
						r.tracer.Record(trace.Event{
							At: r.now(), Node: r.id, Kind: trace.TimerFired, Network: -1,
							A: int64(ev.timer.id.Class), B: int64(ev.timer.id.Arg),
						})
					}
					r.execute(r.stack.OnTimer(r.now(), ev.timer.id))
				}
			case ev.submit != nil:
				var (
					ok   bool
					acts []proto.Action
				)
				if b := ev.submit.bulk; b != nil {
					ok, acts = r.stack.SubmitBulk(r.now(), b.id, b.off, b.total, b.data)
				} else {
					ok, acts = r.stack.Submit(r.now(), ev.submit.payload)
					if !ok {
						r.submitRejected.Add(1)
					}
				}
				r.execute(acts)
				ev.submit.reply <- ok
			case ev.query != nil:
				ev.query()
			}
		}
	}
}

// takeTimer validates a timer firing against cancellation/re-arming.
func (r *Runtime) takeTimer(tf *timerFire) bool {
	r.timerMu.Lock()
	defer r.timerMu.Unlock()
	if r.timerGen[tf.id] != tf.gen {
		return false
	}
	delete(r.timerGen, tf.id)
	delete(r.timers, tf.id)
	return true
}

func (r *Runtime) execute(actions []proto.Action) {
	sentAny := false
	for _, a := range actions {
		switch act := a.(type) {
		case *proto.SendPacket:
			sentAny = true
			// Send errors are deliberately absorbed: a dead network is
			// exactly what the RRP monitors are there to detect.
			r.tr.Send(act.Network, act.Dest, act.Data) //nolint:errcheck
			if r.tracer != nil {
				kind, _ := wire.PeekKind(act.Data)
				r.tracer.Record(trace.Event{
					At: r.now(), Node: r.id, Kind: trace.PacketSent, Network: act.Network,
					A: int64(kind), B: int64(act.Dest), C: int64(len(act.Data)),
				})
			}
			r.noteSent(act.Data)
		case proto.SetTimer:
			r.setTimer(act.ID, act.After)
		case proto.CancelTimer:
			r.cancelTimer(act.ID)
		case proto.Deliver:
			if r.deliveryTap != nil {
				r.deliveryTap(act.Msg)
			}
			if r.tracer != nil {
				r.tracer.Record(trace.Event{
					At: r.now(), Node: r.id, Kind: trace.Delivered, Network: -1,
					A: int64(act.Msg.Seq), B: int64(act.Msg.Sender), C: int64(len(act.Msg.Payload)),
				})
			}
			r.deliveries.push(act.Msg)
		case proto.Fault:
			if r.tracer != nil {
				r.tracer.Record(trace.Event{
					At: r.now(), Node: r.id, Kind: trace.FaultRaised,
					Network: act.Report.Network, Detail: act.Report.Reason,
				})
			}
			r.faults.push(act.Report)
		case proto.FaultCleared:
			if r.tracer != nil {
				r.tracer.Record(trace.Event{
					At: r.now(), Node: r.id, Kind: trace.FaultCleared,
					Network: act.Report.Network, A: int64(act.Report.Probation),
				})
			}
			r.cleared.push(act.Report)
		case proto.Config:
			if r.tracer != nil {
				detail := ""
				if act.Change.Transitional {
					detail = "transitional"
				}
				r.tracer.Record(trace.Event{
					At: r.now(), Node: r.id, Kind: trace.ConfigChanged, Network: -1,
					A: int64(act.Change.Ring.Rep), B: int64(act.Change.Ring.Epoch),
					C: int64(len(act.Change.Members)), Detail: detail,
				})
			}
			r.configs.push(act.Change)
		case proto.BulkSignal:
			r.bulkEvs.push(act.Ev)
		}
	}
	// One kernel visit per action batch: everything this batch queued on a
	// batching transport (a token visit's worth of fan-out) leaves now.
	if sentAny && r.flush != nil {
		r.flush()
	}
	// Both transports copy outbound bytes during Send (into the kernel or
	// into per-receiver pooled frames), so once the batch has executed the
	// distinct data frames it referenced can rejoin the pool and the batch
	// itself can be reused.
	for _, b := range r.sent {
		wire.ReleaseFrame(b)
	}
	r.sent = r.sent[:0]
	r.stack.Recycle(actions)
}

// noteSent records a pooled data frame for release after the batch,
// deduplicating the same buffer fanned out to several networks.
func (r *Runtime) noteSent(data []byte) {
	if len(data) == 0 || cap(data) != wire.FrameCap {
		return
	}
	p := &data[0]
	for _, b := range r.sent {
		if &b[0] == p {
			return
		}
	}
	r.sent = append(r.sent, data)
}

func (r *Runtime) setTimer(id proto.TimerID, after time.Duration) {
	r.timerMu.Lock()
	defer r.timerMu.Unlock()
	if t, ok := r.timers[id]; ok {
		t.Stop()
	}
	r.nextGen++
	gen := r.nextGen
	r.timerGen[id] = gen
	r.timers[id] = time.AfterFunc(after, func() {
		select {
		case r.events <- runtimeEvent{timer: &timerFire{id: id, gen: gen}}:
		case <-r.stop:
		}
	})
}

func (r *Runtime) cancelTimer(id proto.TimerID) {
	r.timerMu.Lock()
	defer r.timerMu.Unlock()
	if t, ok := r.timers[id]; ok {
		t.Stop()
		delete(r.timers, id)
	}
	delete(r.timerGen, id)
}

// Submit queues an application message, returning false under
// backpressure or after Close.
func (r *Runtime) Submit(payload []byte) bool {
	req := &submitReq{payload: payload, reply: make(chan bool, 1)}
	select {
	case r.events <- runtimeEvent{submit: req}:
	case <-r.stop:
		return false
	}
	select {
	case ok := <-req.reply:
		return ok
	case <-r.stop:
		return false
	}
}

// SubmitBulk queues one chunk of a bulk transfer on the rate-limited bulk
// lane, returning false under backpressure or after Close. The chunk is
// copied into the lane's recycled envelope buffers before this returns, so
// the caller may reuse data immediately.
func (r *Runtime) SubmitBulk(id, off, total uint64, data []byte) bool {
	req := &submitReq{bulk: &bulkChunk{id: id, off: off, total: total, data: data}, reply: make(chan bool, 1)}
	select {
	case r.events <- runtimeEvent{submit: req}:
	case <-r.stop:
		return false
	}
	select {
	case ok := <-req.reply:
		return ok
	case <-r.stop:
		return false
	}
}

// Inspect runs fn inside the event loop, giving it exclusive, race-free
// access to the stack (for state snapshots).
func (r *Runtime) Inspect(fn func(*stack.Node)) bool {
	done := make(chan struct{})
	q := func() {
		fn(r.stack)
		close(done)
	}
	select {
	case r.events <- runtimeEvent{query: q}:
	case <-r.stop:
		return false
	}
	select {
	case <-done:
		return true
	case <-r.stop:
		return false
	}
}

// Mutate runs fn inside the event loop like Inspect, then executes the
// actions it returns — for hooks that change stack state and emit timers
// or probes (the torture harness's state-corruption injector). Inspect is
// NOT a substitute: it discards actions, so a mutation that arms a timer
// would silently lose it.
func (r *Runtime) Mutate(fn func(proto.Time, *stack.Node) []proto.Action) bool {
	done := make(chan struct{})
	q := func() {
		r.execute(fn(r.now(), r.stack))
		close(done)
	}
	select {
	case r.events <- runtimeEvent{query: q}:
	case <-r.stop:
		return false
	}
	select {
	case <-done:
		return true
	case <-r.stop:
		return false
	}
}

// Deliveries returns the totally-ordered message stream.
func (r *Runtime) Deliveries() <-chan proto.Delivery { return r.deliveries.out }

// Faults returns the network fault-report stream.
func (r *Runtime) Faults() <-chan proto.FaultReport { return r.faults.out }

// Cleared returns the stream of automatic readmission reports.
func (r *Runtime) Cleared() <-chan proto.ClearReport { return r.cleared.out }

// Configs returns the membership configuration-change stream.
func (r *Runtime) Configs() <-chan proto.ConfigChange { return r.configs.out }

// BulkEvents returns the bulk-lane signal stream: per-chunk ring-wide
// acknowledgements and configuration-change rewind notices, in protocol
// order.
func (r *Runtime) BulkEvents() <-chan proto.BulkEvent { return r.bulkEvs.out }

// Close stops the loop, all timers and the event queues. It does not
// close the transport (the caller owns it).
func (r *Runtime) Close() {
	r.stopOnce.Do(func() {
		close(r.stop)
		<-r.done
		r.timerMu.Lock()
		for _, t := range r.timers {
			t.Stop()
		}
		r.timerMu.Unlock()
		r.deliveries.close()
		r.faults.close()
		r.cleared.close()
		r.configs.close()
		r.bulkEvs.close()
	})
}

// queue is an unbounded FIFO bridging the protocol loop to a consumer
// channel: pushes never block, so a slow application cannot stall the
// ring.
type queue[T any] struct {
	mu   sync.Mutex
	buf  []T
	wake chan struct{}
	quit chan struct{}
	out  chan T
}

func newQueue[T any]() *queue[T] {
	q := &queue[T]{
		wake: make(chan struct{}, 1),
		quit: make(chan struct{}),
		out:  make(chan T),
	}
	go q.pump()
	return q
}

// depth reports the number of buffered, unconsumed entries (a gauge for
// backpressure monitoring).
func (q *queue[T]) depth() int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return int64(len(q.buf))
}

func (q *queue[T]) push(v T) {
	q.mu.Lock()
	q.buf = append(q.buf, v)
	q.mu.Unlock()
	select {
	case q.wake <- struct{}{}:
	default:
	}
}

func (q *queue[T]) pump() {
	defer close(q.out)
	for {
		q.mu.Lock()
		var (
			v  T
			ok bool
		)
		if len(q.buf) > 0 {
			v, ok = q.buf[0], true
			q.buf = q.buf[1:]
		}
		q.mu.Unlock()
		if !ok {
			select {
			case <-q.wake:
				continue
			case <-q.quit:
				return
			}
		}
		select {
		case q.out <- v:
		case <-q.quit:
			return
		}
	}
}

func (q *queue[T]) close() { close(q.quit) }
