package transport

import (
	"fmt"
	"sync"

	"github.com/totem-rrp/totem/internal/metrics"
	"github.com/totem-rrp/totem/internal/proto"
	"github.com/totem-rrp/totem/internal/wire"
)

// ShardMux runs M independent rings over one Transport: each shard's
// protocol runtime gets its own Transport view (Port) whose frames are
// wrapped in the wire shard envelope on send and demuxed from the shared
// receive stream into per-shard funnels. The underlying transport — mem
// hub, UDP (either driver), or the netem wrapper — is unaware of shards;
// it just carries slightly longer datagrams.
//
// The mux owns the demux goroutine but not the underlying transport:
// Close stops demuxing and closes the per-shard funnels, leaving the
// inner transport for its owner, mirroring the Runtime/Transport
// ownership split.
type ShardMux struct {
	tr     Transport
	shards int
	ports  []*shardPort

	// sendMu serialises wrap+send across shard runtimes: each runtime is
	// single-goroutine, but M runtimes share the one inner transport whose
	// Send contract is single-goroutine.
	sendMu sync.Mutex

	// demux drops, by reason, for the mux's metric surface.
	badFrames  metrics.Counter
	dropOOR    metrics.Counter // shard index out of range
	dropClosed metrics.Counter // funnel overflow after close

	closeOnce sync.Once
	closed    chan struct{}
	done      chan struct{}
}

// shardDepth is the per-shard receive funnel depth. Overflow models packet
// loss on a saturated shard, which the protocol's retransmission machinery
// recovers from — same stance as the mem hub's bounded queues.
const shardDepth = 4096

// NewShardMux wraps tr for shards independent rings. shards must be in
// [2, wire.MaxShards]; a single-ring node should use tr directly (the
// degenerate M=1 path stays envelope-free and byte-identical).
func NewShardMux(tr Transport, shards int) (*ShardMux, error) {
	if shards < 2 || shards > wire.MaxShards {
		return nil, fmt.Errorf("transport: shard count %d out of range [2,%d]", shards, wire.MaxShards)
	}
	m := &ShardMux{
		tr:     tr,
		shards: shards,
		closed: make(chan struct{}),
		done:   make(chan struct{}),
	}
	for i := 0; i < shards; i++ {
		m.ports = append(m.ports, &shardPort{
			mux:   m,
			shard: i,
			rx:    make(chan Packet, shardDepth),
		})
	}
	go m.demux()
	return m, nil
}

// Shards returns M.
func (m *ShardMux) Shards() int { return m.shards }

// Port returns shard i's Transport view. Each port may be driven by its
// own Runtime; all ports share the inner transport's networks.
func (m *ShardMux) Port(i int) Transport { return m.ports[i] }

// demux pumps the shared receive stream into the per-shard funnels. The
// inner transport's pooled receive frames are copied into fresh pooled
// frames (minus the envelope) so the per-shard consumer keeps the exact
// release discipline it has without a mux.
func (m *ShardMux) demux() {
	defer close(m.done)
	defer func() {
		for _, p := range m.ports {
			close(p.rx)
		}
	}()
	for {
		select {
		case <-m.closed:
			return
		case pkt, ok := <-m.tr.Packets():
			if !ok {
				return
			}
			shard, inner, err := wire.PeekShard(pkt.Data)
			if err != nil {
				m.badFrames.Inc()
				wire.ReleaseFrame(pkt.Data)
				continue
			}
			if shard >= m.shards {
				m.dropOOR.Inc()
				wire.ReleaseFrame(pkt.Data)
				continue
			}
			if len(inner) == len(pkt.Data) {
				// Untagged frame from a single-ring peer: forward as-is,
				// preserving the ordinary per-runtime ownership rules.
				select {
				case m.ports[0].rx <- pkt:
				default:
					wire.PutFrame(pkt.Data)
				}
				continue
			}
			// Tagged frame: copy the inner bytes into a fresh pooled frame
			// so the shard runtime keeps the exact release discipline it
			// has without a mux; the tagged outer is never seen above this
			// layer, so it recycles unconditionally.
			var cp []byte
			if len(inner) <= wire.FrameCap {
				cp = append(wire.GetFrame(), inner...)
			} else {
				cp = append([]byte(nil), inner...)
			}
			select {
			case m.ports[shard].rx <- Packet{Network: pkt.Network, Data: cp}:
			default:
				// Funnel overflow: shed like a saturated NIC queue.
				wire.PutFrame(cp)
			}
			wire.PutFrame(pkt.Data)
		}
	}
}

// send wraps data in shard's envelope and forwards it on the inner
// transport. The wrapped copy lives in a pooled frame released as soon as
// the inner Send returns (both transports copy outbound bytes).
func (m *ShardMux) send(shard, network int, dest proto.NodeID, data []byte) error {
	buf := wire.WrapShard(shard, data)
	m.sendMu.Lock()
	err := m.tr.Send(network, dest, buf)
	m.sendMu.Unlock()
	wire.PutFrame(buf)
	return err
}

// Flush implements BatchSender by forwarding, so each shard runtime's
// end-of-batch flush still coalesces its token visit on the batched UDP
// wire path.
func (m *ShardMux) Flush() {
	if bs, ok := m.tr.(BatchSender); ok {
		bs.Flush()
	}
}

// RegisterMetrics implements MetricSource: the inner transport's wire
// counters plus the mux's own demux accounting land in the registry of
// whichever shard runtime registers first (shard 0 by construction).
func (m *ShardMux) RegisterMetrics(reg *metrics.Registry) {
	if ms, ok := m.tr.(MetricSource); ok {
		ms.RegisterMetrics(reg)
	}
	reg.RegisterFunc("shardmux.bad_frames", m.badFrames.Value)
	reg.RegisterFunc("shardmux.drop_shard_oor", m.dropOOR.Value)
}

// Close stops the demux goroutine and closes every per-shard funnel. The
// inner transport stays open (the caller owns it). Idempotent.
func (m *ShardMux) Close() error {
	m.closeOnce.Do(func() {
		close(m.closed)
		<-m.done
	})
	return nil
}

// shardPort is one shard's Transport view of the mux.
type shardPort struct {
	mux   *ShardMux
	shard int
	rx    chan Packet
}

var _ Transport = (*shardPort)(nil)
var _ BatchSender = (*shardPort)(nil)
var _ MetricSource = (*shardPort)(nil)

// Networks implements Transport.
func (p *shardPort) Networks() int { return p.mux.tr.Networks() }

// Send implements Transport.
func (p *shardPort) Send(network int, dest proto.NodeID, data []byte) error {
	return p.mux.send(p.shard, network, dest, data)
}

// Packets implements Transport.
func (p *shardPort) Packets() <-chan Packet { return p.rx }

// Flush implements BatchSender by forwarding through the mux.
func (p *shardPort) Flush() { p.mux.Flush() }

// RegisterMetrics implements MetricSource: only shard 0's runtime wires
// the shared inner counters, so the one underlying socket set is not
// registered M times into M different registries.
func (p *shardPort) RegisterMetrics(reg *metrics.Registry) {
	if p.shard == 0 {
		p.mux.RegisterMetrics(reg)
	}
}

// Close implements Transport; ports close with the mux, not individually
// (a runtime's Close does not call it — the Runtime never closes its
// transport).
func (p *shardPort) Close() error { return nil }
