// Package transport runs a Totem protocol stack in real time: it defines
// the Transport abstraction over N redundant packet networks, an
// in-process transport for tests and examples, a UDP transport for real
// deployments, and the Runtime that drives a stack.Node with goroutines,
// sockets and wall-clock timers.
package transport

import (
	"errors"

	"github.com/totem-rrp/totem/internal/metrics"
	"github.com/totem-rrp/totem/internal/proto"
)

// Packet is one datagram received from a network.
type Packet struct {
	// Network is the index of the redundant network it arrived on.
	Network int
	// Data is the raw packet payload.
	Data []byte
}

// Transport provides N redundant packet networks for one node. Send must
// be safe for use from one goroutine; Packets delivers received packets
// from all networks until Close.
type Transport interface {
	// Networks returns N, the number of redundant networks.
	Networks() int
	// Send transmits data on the given network. Dest is a node ID for
	// unicast or proto.BroadcastID for delivery to every peer.
	Send(network int, dest proto.NodeID, data []byte) error
	// Packets returns the receive channel. It is closed by Close.
	Packets() <-chan Packet
	// Close releases the transport's resources.
	Close() error
}

// MetricSource is implemented by transports that can expose their own
// counters (datagrams in/out, overflow drops). The Runtime registers any
// transport implementing it into the stack's registry at construction.
type MetricSource interface {
	RegisterMetrics(*metrics.Registry)
}

// BatchSender is implemented by transports that queue Send calls for
// batched kernel submission (the UDP transport's sendmmsg wire path).
// Flush forces everything queued onto the wire, preserving the Send
// order. The Runtime calls it at the end of every action batch, so a
// token and the messages emitted with it leave in one kernel visit;
// transports also self-flush on a size threshold and a sub-millisecond
// deadline, so callers that never Flush still make progress.
type BatchSender interface {
	Flush()
}

// Transport errors.
var (
	ErrClosed     = errors.New("transport: closed")
	ErrBadNetwork = errors.New("transport: network index out of range")
	ErrNoPeer     = errors.New("transport: unknown destination")
)
