package transport

import (
	"fmt"
	"os"
)

// Wire-path names. The wire path is the driver the UDP transport uses to
// move datagrams across the kernel boundary:
//
//   - WirePathPortable issues one sendto/recvfrom per datagram through
//     net.UDPConn — works everywhere Go does.
//   - WirePathBatch coalesces the encode-once fan-out into sendmmsg and
//     drains each port with recvmmsg across SO_REUSEPORT receive shards —
//     Linux amd64/arm64 only (raw syscall numbers; see udp_batch_linux.go).
//
// DESIGN.md §13 describes the split and the flush policy.
const (
	WirePathAuto     = "auto"
	WirePathPortable = "portable"
	WirePathBatch    = "batch"
)

// WirePathEnv is the environment knob that overrides automatic wire-path
// selection — the conformance sweep uses it to force the portable fallback
// on Linux without touching configuration ("TOTEM_WIREPATH=portable").
// An explicit UDPConfig.WirePath always wins over the environment.
const WirePathEnv = "TOTEM_WIREPATH"

// BatchSupported reports whether the batched sendmmsg/recvmmsg driver is
// compiled into this binary (Linux amd64/arm64).
func BatchSupported() bool { return batchSupported }

// resolveWirePath turns a UDPConfig.WirePath request into the concrete
// driver to use. Precedence: explicit config, then TOTEM_WIREPATH, then
// auto-detection (batch where supported, portable elsewhere). Asking for
// "batch" explicitly on a platform without it is a configuration error;
// the environment knob degrades gracefully instead, so one CI matrix can
// export it everywhere.
func resolveWirePath(requested string) (string, error) {
	pick := func(name string, strict bool) (string, error) {
		switch name {
		case WirePathPortable:
			return WirePathPortable, nil
		case WirePathBatch:
			if batchSupported {
				return WirePathBatch, nil
			}
			if strict {
				return "", fmt.Errorf("udp: wire path %q not supported on this platform", name)
			}
			return WirePathPortable, nil
		case "", WirePathAuto:
			return "", nil // caller falls through to the next source
		default:
			return "", fmt.Errorf("udp: unknown wire path %q", name)
		}
	}
	if wp, err := pick(requested, true); wp != "" || err != nil {
		return wp, err
	}
	if wp, err := pick(os.Getenv(WirePathEnv), false); wp != "" || err != nil {
		return wp, err
	}
	if batchSupported {
		return WirePathBatch, nil
	}
	return WirePathPortable, nil
}
