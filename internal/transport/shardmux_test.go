package transport

import (
	"testing"
	"time"

	"github.com/totem-rrp/totem/internal/proto"
	"github.com/totem-rrp/totem/internal/wire"
)

// encodeData builds a small encoded data frame for mux tests.
func encodeData(t *testing.T, seq uint32, payload string) []byte {
	t.Helper()
	pkt := &wire.DataPacket{
		Ring:   proto.RingID{Rep: 1, Epoch: 1},
		Sender: 1,
		Seq:    seq,
		Chunks: []wire.Chunk{{Flags: wire.ChunkFirst | wire.ChunkLast, Data: []byte(payload)}},
	}
	frame, err := pkt.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return frame
}

func recvPacket(t *testing.T, ch <-chan Packet) Packet {
	t.Helper()
	select {
	case pkt, ok := <-ch:
		if !ok {
			t.Fatal("funnel closed early")
		}
		return pkt
	case <-time.After(2 * time.Second):
		t.Fatal("timed out waiting for demuxed packet")
	}
	return Packet{}
}

// TestShardMuxRoutesPerShard sends tagged frames between two nodes on a
// mem hub and checks each shard's funnel only sees its own traffic.
func TestShardMuxRoutesPerShard(t *testing.T) {
	hub := NewMemHub(2)
	ta, err := hub.Join(1)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := hub.Join(2)
	if err != nil {
		t.Fatal(err)
	}
	ma, err := NewShardMux(ta, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer ma.Close()
	mb, err := NewShardMux(tb, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer mb.Close()

	for shard := 0; shard < 4; shard++ {
		frame := encodeData(t, uint32(shard+1), "shard payload")
		if err := ma.Port(shard).Send(1, proto.BroadcastID, frame); err != nil {
			t.Fatalf("shard %d send: %v", shard, err)
		}
		pkt := recvPacket(t, mb.Port(shard).Packets())
		if pkt.Network != 1 {
			t.Fatalf("shard %d: network %d, want 1", shard, pkt.Network)
		}
		dp, err := wire.DecodeData(pkt.Data)
		if err != nil {
			t.Fatalf("shard %d: demuxed frame undecodable: %v", shard, err)
		}
		if dp.Seq != uint32(shard+1) {
			t.Fatalf("shard %d: got seq %d", shard, dp.Seq)
		}
		// No other funnel may have traffic.
		for other := 0; other < 4; other++ {
			if other == shard {
				continue
			}
			select {
			case p := <-mb.Port(other).Packets():
				t.Fatalf("shard %d frame leaked to shard %d (%d bytes)", shard, other, len(p.Data))
			default:
			}
		}
		wire.ReleaseFrame(pkt.Data)
	}
}

// TestShardMuxUntaggedGoesToShardZero: frames from a non-sharded sender
// demux to shard 0 so a mixed rollout degrades predictably.
func TestShardMuxUntaggedGoesToShardZero(t *testing.T) {
	hub := NewMemHub(1)
	plain, err := hub.Join(1)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := hub.Join(2)
	if err != nil {
		t.Fatal(err)
	}
	mux, err := NewShardMux(sharded, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer mux.Close()

	frame := encodeData(t, 42, "plain")
	if err := plain.Send(0, proto.BroadcastID, frame); err != nil {
		t.Fatal(err)
	}
	pkt := recvPacket(t, mux.Port(0).Packets())
	dp, err := wire.DecodeData(pkt.Data)
	if err != nil {
		t.Fatal(err)
	}
	if dp.Seq != 42 {
		t.Fatalf("got seq %d, want 42", dp.Seq)
	}
	wire.ReleaseFrame(pkt.Data)
}

// TestShardMuxDropsForeignShards: a tag beyond the local shard count is
// dropped and counted, not delivered or crashed on.
func TestShardMuxDropsForeignShards(t *testing.T) {
	hub := NewMemHub(1)
	wide, err := hub.Join(1)
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := hub.Join(2)
	if err != nil {
		t.Fatal(err)
	}
	muxWide, err := NewShardMux(wide, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer muxWide.Close()
	muxNarrow, err := NewShardMux(narrow, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer muxNarrow.Close()

	if err := muxWide.Port(7).Send(0, proto.BroadcastID, encodeData(t, 1, "oor")); err != nil {
		t.Fatal(err)
	}
	// Then a valid one; its arrival proves the demux loop survived.
	if err := muxWide.Port(1).Send(0, proto.BroadcastID, encodeData(t, 2, "ok")); err != nil {
		t.Fatal(err)
	}
	pkt := recvPacket(t, muxNarrow.Port(1).Packets())
	wire.ReleaseFrame(pkt.Data)
	if n := muxNarrow.dropOOR.Value(); n != 1 {
		t.Fatalf("drop_shard_oor = %d, want 1", n)
	}
}

// TestShardMuxCloseIdempotent: Close twice, funnels close, inner stays
// open (caller owns it).
func TestShardMuxCloseIdempotent(t *testing.T) {
	hub := NewMemHub(1)
	tr, err := hub.Join(1)
	if err != nil {
		t.Fatal(err)
	}
	mux, err := NewShardMux(tr, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := mux.Close(); err != nil {
		t.Fatal(err)
	}
	if err := mux.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, ok := <-mux.Port(i).Packets(); ok {
			t.Fatalf("shard %d funnel still open after Close", i)
		}
	}
	// Inner transport is untouched by mux Close.
	if err := tr.Send(0, proto.BroadcastID, encodeData(t, 1, "still-open")); err != nil {
		t.Fatalf("inner transport closed by mux: %v", err)
	}
}

// TestShardMuxRejectsBadCounts: the constructor enforces [2, MaxShards].
func TestShardMuxRejectsBadCounts(t *testing.T) {
	hub := NewMemHub(1)
	tr, _ := hub.Join(1)
	for _, n := range []int{-1, 0, 1, wire.MaxShards + 1} {
		if _, err := NewShardMux(tr, n); err == nil {
			t.Fatalf("NewShardMux(%d) accepted", n)
		}
	}
}
