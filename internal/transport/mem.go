package transport

import (
	"fmt"
	"sync"

	"github.com/totem-rrp/totem/internal/proto"
	"github.com/totem-rrp/totem/internal/wire"
)

// MemHub is an in-process set of N redundant networks connecting any
// number of nodes. It is the real-time analogue of the simulator's
// broadcast media — useful for tests, examples and single-process demos.
// Packets are delivered in send order per (sender, network) pair, matching
// the UDP-over-Ethernet FIFO property the paper relies on (§5).
type MemHub struct {
	networks int

	mu    sync.Mutex
	nodes map[proto.NodeID]*MemTransport
	// down[i] silences network i entirely (fault injection).
	down []bool
	// blockSend[node][net] / blockRecv[node][net] model the paper's §3
	// per-node interface faults.
	blockSend map[proto.NodeID][]bool
	blockRecv map[proto.NodeID][]bool
}

// NewMemHub creates a hub with n redundant networks.
func NewMemHub(n int) *MemHub {
	return &MemHub{
		networks:  n,
		nodes:     make(map[proto.NodeID]*MemTransport),
		down:      make([]bool, n),
		blockSend: make(map[proto.NodeID][]bool),
		blockRecv: make(map[proto.NodeID][]bool),
	}
}

// buffered channel depth per node; deep enough that a busy ring never
// drops in-process packets under test loads.
const memDepth = 4096

// Join attaches a node and returns its transport.
func (h *MemHub) Join(id proto.NodeID) (*MemTransport, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.nodes[id]; ok {
		return nil, fmt.Errorf("memhub: node %v already joined", id)
	}
	t := &MemTransport{
		hub: h,
		id:  id,
		rx:  make(chan Packet, memDepth),
	}
	h.nodes[id] = t
	h.blockSend[id] = make([]bool, h.networks)
	h.blockRecv[id] = make([]bool, h.networks)
	return t, nil
}

// KillNetwork silences network i (both directions, all nodes).
func (h *MemHub) KillNetwork(i int) { h.setDown(i, true) }

// ReviveNetwork restores network i.
func (h *MemHub) ReviveNetwork(i int) { h.setDown(i, false) }

func (h *MemHub) setDown(i int, v bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if i >= 0 && i < h.networks {
		h.down[i] = v
	}
}

// BlockSend stops id from sending on network i (paper §3 fault model).
func (h *MemHub) BlockSend(id proto.NodeID, i int, blocked bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if b := h.blockSend[id]; i >= 0 && i < len(b) {
		b[i] = blocked
	}
}

// BlockRecv stops id from receiving on network i.
func (h *MemHub) BlockRecv(id proto.NodeID, i int, blocked bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if b := h.blockRecv[id]; i >= 0 && i < len(b) {
		b[i] = blocked
	}
}

// send routes one packet under the hub's fault rules.
func (h *MemHub) send(from proto.NodeID, network int, dest proto.NodeID, data []byte) error {
	if network < 0 || network >= h.networks {
		return ErrBadNetwork
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.down[network] || h.blockSend[from][network] {
		return nil // silently lost, like a dead NIC
	}
	deliver := func(t *MemTransport) {
		if h.blockRecv[t.id][network] {
			return
		}
		// Per-receiver copies go into pooled frames (the sender's buffer
		// may be recycled as soon as send returns); the consumer recycles
		// data frames with wire.ReleaseFrame after processing.
		var cp []byte
		if len(data) <= wire.FrameCap {
			cp = append(wire.GetFrame(), data...)
		} else {
			cp = append([]byte(nil), data...)
		}
		select {
		case t.rx <- Packet{Network: network, Data: cp}:
		default:
			// Receiver queue overflow models packet loss on a saturated
			// host; the protocol's retransmission machinery recovers.
			wire.PutFrame(cp)
		}
	}
	if dest == proto.BroadcastID {
		for id, t := range h.nodes {
			if id != from && !t.closed {
				deliver(t)
			}
		}
		return nil
	}
	t, ok := h.nodes[dest]
	if !ok {
		return ErrNoPeer
	}
	if !t.closed {
		deliver(t)
	}
	return nil
}

// MemTransport is one node's endpoint on a MemHub.
type MemTransport struct {
	hub    *MemHub
	id     proto.NodeID
	rx     chan Packet
	closed bool
}

var _ Transport = (*MemTransport)(nil)

// Networks implements Transport.
func (t *MemTransport) Networks() int { return t.hub.networks }

// Send implements Transport.
func (t *MemTransport) Send(network int, dest proto.NodeID, data []byte) error {
	if t.closed {
		return ErrClosed
	}
	return t.hub.send(t.id, network, dest, data)
}

// Packets implements Transport.
func (t *MemTransport) Packets() <-chan Packet { return t.rx }

// Close implements Transport.
func (t *MemTransport) Close() error {
	t.hub.mu.Lock()
	defer t.hub.mu.Unlock()
	if t.closed {
		return nil
	}
	t.closed = true
	delete(t.hub.nodes, t.id)
	close(t.rx)
	return nil
}
