package transport

import (
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/totem-rrp/totem/internal/proto"
	"github.com/totem-rrp/totem/internal/stack"
	"github.com/totem-rrp/totem/internal/trace"
)

// newTracedRing builds a runtime ring with a per-node tracer installed
// before Start (the SetTracer contract).
func newTracedRing(t *testing.T, n, networks int, tracers []trace.Tracer) []*Runtime {
	t.Helper()
	hub := NewMemHub(networks)
	var rts []*Runtime
	for i := 1; i <= n; i++ {
		id := proto.NodeID(i)
		tr, err := hub.Join(id)
		if err != nil {
			t.Fatal(err)
		}
		cfg := stack.DefaultConfig(id, networks, proto.ReplicationActive)
		cfg.SRP.IdleTokenHold = 2 * time.Millisecond
		st, err := stack.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rt := NewRuntime(st, tr)
		if tracers[i-1] != nil {
			rt.SetTracer(tracers[i-1])
		}
		rt.Start()
		t.Cleanup(func() {
			rt.Close()
			tr.Close()
		})
		rts = append(rts, rt)
	}
	return rts
}

// TestRuntimeTraceConcurrentDump exercises the live-debug path under the
// race detector: the protocol loop records into the ring at full rate
// while concurrent readers dump and snapshot it, exactly what the /trace
// endpoint does against a running node.
func TestRuntimeTraceConcurrentDump(t *testing.T) {
	ring := trace.NewRing(512)
	counter := trace.NewCounter()
	rts := newTracedRing(t, 3, 2, []trace.Tracer{trace.Multi{ring, counter}, nil, nil})
	waitOperational(t, rts, 3, 15*time.Second)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf []trace.Event
			for {
				select {
				case <-stop:
					return
				default:
				}
				var sb strings.Builder
				if err := ring.Dump(&sb); err != nil {
					t.Error(err)
					return
				}
				buf = ring.Events(buf[:0])
			}
		}()
	}
	for i := 0; i < 50; i++ {
		if !rts[0].Submit([]byte("traced payload")) {
			time.Sleep(time.Millisecond)
		}
	}
	deadline := time.After(10 * time.Second)
	for delivered := 0; delivered < 1; {
		select {
		case <-rts[0].Deliveries():
			delivered++
		case <-deadline:
			t.Fatal("no delivery while tracing")
		}
	}
	close(stop)
	wg.Wait()

	if counter.Count(trace.PacketSent) == 0 || counter.Count(trace.PacketReceived) == 0 {
		t.Fatal("runtime recorded no packet events")
	}
	if counter.Count(trace.TimerFired) == 0 {
		t.Fatal("runtime recorded no timer events")
	}
	if counter.Count(trace.Delivered) == 0 {
		t.Fatal("runtime recorded no delivery events")
	}
	if counter.Count(trace.Machine) == 0 {
		t.Fatal("stack probes never reached the runtime tracer")
	}
	if counter.CodeCount(proto.ProbePhase) == 0 {
		t.Fatal("no membership phase transitions in the runtime trace")
	}
	if ring.Len() == 0 {
		t.Fatal("ring tracer retained nothing")
	}
}

// TestRuntimeNoTracerNoEvents pins the zero-cost contract at the runtime
// level: without SetTracer the stack's probe hook stays nil and nothing
// is recorded anywhere.
func TestRuntimeNoTracerNoEvents(t *testing.T) {
	rts := newTracedRing(t, 2, 2, []trace.Tracer{nil, nil})
	waitOperational(t, rts, 2, 15*time.Second)
	if !rts[0].Submit([]byte("untraced")) {
		t.Fatal("submit rejected")
	}
	// Wait for the delivery on every node: agreed order guarantees both
	// deliver, but the sender's own delivery can trail the receiver's.
	for _, rt := range rts {
		select {
		case <-rt.Deliveries():
		case <-time.After(10 * time.Second):
			t.Fatal("no delivery")
		}
	}
	for _, rt := range rts {
		if rt.tracer != nil {
			t.Fatal("tracer unexpectedly set")
		}
		rt.Inspect(func(st *stack.Node) {
			// The registry still works without a tracer; the trace path is
			// what must stay disabled.
			if v, ok := st.Metrics().Get("srp.msgs_delivered"); !ok || v == 0 {
				t.Errorf("metrics not live without tracer: %d %v", v, ok)
			}
		})
	}
}
