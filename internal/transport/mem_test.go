package transport

import (
	"errors"
	"testing"
	"time"

	"github.com/totem-rrp/totem/internal/proto"
)

func recvOne(t *testing.T, tr Transport, timeout time.Duration) Packet {
	t.Helper()
	select {
	case p, ok := <-tr.Packets():
		if !ok {
			t.Fatal("packet channel closed")
		}
		return p
	case <-time.After(timeout):
		t.Fatal("timed out waiting for packet")
		return Packet{}
	}
}

func expectSilence(t *testing.T, tr Transport, d time.Duration) {
	t.Helper()
	select {
	case p := <-tr.Packets():
		t.Fatalf("unexpected packet on network %d: %q", p.Network, p.Data)
	case <-time.After(d):
	}
}

func TestMemHubUnicast(t *testing.T) {
	hub := NewMemHub(2)
	t1, err := hub.Join(1)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := hub.Join(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := t1.Send(1, 2, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	p := recvOne(t, t2, time.Second)
	if p.Network != 1 || string(p.Data) != "hi" {
		t.Fatalf("got %+v", p)
	}
	expectSilence(t, t1, 20*time.Millisecond) // no self-delivery
}

func TestMemHubBroadcastReachesAllButSender(t *testing.T) {
	hub := NewMemHub(1)
	trs := map[proto.NodeID]*MemTransport{}
	for i := proto.NodeID(1); i <= 3; i++ {
		tr, err := hub.Join(i)
		if err != nil {
			t.Fatal(err)
		}
		trs[i] = tr
	}
	if err := trs[1].Send(0, proto.BroadcastID, []byte("all")); err != nil {
		t.Fatal(err)
	}
	for _, id := range []proto.NodeID{2, 3} {
		if p := recvOne(t, trs[id], time.Second); string(p.Data) != "all" {
			t.Fatalf("node %v got %q", id, p.Data)
		}
	}
	expectSilence(t, trs[1], 20*time.Millisecond)
}

func TestMemHubRejectsDuplicateJoin(t *testing.T) {
	hub := NewMemHub(1)
	if _, err := hub.Join(1); err != nil {
		t.Fatal(err)
	}
	if _, err := hub.Join(1); err == nil {
		t.Fatal("duplicate join accepted")
	}
}

func TestMemHubBadNetworkIndex(t *testing.T) {
	hub := NewMemHub(1)
	tr, _ := hub.Join(1)
	if err := tr.Send(5, proto.BroadcastID, []byte("x")); !errors.Is(err, ErrBadNetwork) {
		t.Fatalf("err = %v", err)
	}
	if err := tr.Send(-1, proto.BroadcastID, []byte("x")); !errors.Is(err, ErrBadNetwork) {
		t.Fatalf("err = %v", err)
	}
}

func TestMemHubUnknownPeer(t *testing.T) {
	hub := NewMemHub(1)
	tr, _ := hub.Join(1)
	if err := tr.Send(0, 99, []byte("x")); !errors.Is(err, ErrNoPeer) {
		t.Fatalf("err = %v", err)
	}
}

func TestMemHubKillAndRevive(t *testing.T) {
	hub := NewMemHub(2)
	t1, _ := hub.Join(1)
	t2, _ := hub.Join(2)
	hub.KillNetwork(0)
	t1.Send(0, 2, []byte("lost"))
	expectSilence(t, t2, 20*time.Millisecond)
	t1.Send(1, 2, []byte("via-1"))
	if p := recvOne(t, t2, time.Second); p.Network != 1 {
		t.Fatalf("got %+v", p)
	}
	hub.ReviveNetwork(0)
	t1.Send(0, 2, []byte("back"))
	if p := recvOne(t, t2, time.Second); p.Network != 0 || string(p.Data) != "back" {
		t.Fatalf("got %+v", p)
	}
}

func TestMemHubBlockSendAndRecv(t *testing.T) {
	hub := NewMemHub(2)
	t1, _ := hub.Join(1)
	t2, _ := hub.Join(2)

	hub.BlockSend(1, 0, true)
	t1.Send(0, 2, []byte("blocked"))
	expectSilence(t, t2, 20*time.Millisecond)
	hub.BlockSend(1, 0, false)

	hub.BlockRecv(2, 1, true)
	t1.Send(1, 2, []byte("deaf"))
	expectSilence(t, t2, 20*time.Millisecond)
	hub.BlockRecv(2, 1, false)

	t1.Send(0, 2, []byte("ok"))
	if p := recvOne(t, t2, time.Second); string(p.Data) != "ok" {
		t.Fatalf("got %+v", p)
	}
}

func TestMemTransportDataIsolation(t *testing.T) {
	// The hub must copy payloads: mutating the sender's buffer after Send
	// must not corrupt the delivered packet.
	hub := NewMemHub(1)
	t1, _ := hub.Join(1)
	t2, _ := hub.Join(2)
	buf := []byte("original")
	t1.Send(0, 2, buf)
	copy(buf, "CLOBBER!")
	if p := recvOne(t, t2, time.Second); string(p.Data) != "original" {
		t.Fatalf("payload aliased sender buffer: %q", p.Data)
	}
}

func TestMemTransportClose(t *testing.T) {
	hub := NewMemHub(1)
	t1, _ := hub.Join(1)
	t2, _ := hub.Join(2)
	if err := t2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := t2.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	// Sending to a closed peer is not an error (it is just gone).
	if err := t1.Send(0, proto.BroadcastID, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := t2.Send(0, 1, []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("send on closed transport: %v", err)
	}
	// The ID can be reused after Close.
	if _, err := hub.Join(2); err != nil {
		t.Fatalf("rejoin after close: %v", err)
	}
}

func TestMemTransportNetworks(t *testing.T) {
	hub := NewMemHub(3)
	tr, _ := hub.Join(1)
	if tr.Networks() != 3 {
		t.Fatalf("Networks = %d", tr.Networks())
	}
}

func TestMemHubFIFOPerSenderPerNetwork(t *testing.T) {
	// The paper's §5 relies on UDP-over-Ethernet preserving send order
	// per (sender, network); the in-process hub must too.
	hub := NewMemHub(1)
	t1, _ := hub.Join(1)
	t2, _ := hub.Join(2)
	const n = 200
	for i := 0; i < n; i++ {
		if err := t1.Send(0, 2, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		p := recvOne(t, t2, time.Second)
		if p.Data[0] != byte(i) {
			t.Fatalf("reordered at %d: got %d", i, p.Data[0])
		}
	}
}
