package transport

import (
	"fmt"
	"testing"
	"time"

	"github.com/totem-rrp/totem/internal/proto"
	"github.com/totem-rrp/totem/internal/srp"
	"github.com/totem-rrp/totem/internal/stack"
)

func newRuntimeRing(t *testing.T, n int, style proto.ReplicationStyle, networks int) (*MemHub, []*Runtime) {
	t.Helper()
	hub := NewMemHub(networks)
	var rts []*Runtime
	for i := 1; i <= n; i++ {
		id := proto.NodeID(i)
		tr, err := hub.Join(id)
		if err != nil {
			t.Fatal(err)
		}
		cfg := stack.DefaultConfig(id, networks, style)
		cfg.SRP.IdleTokenHold = 2 * time.Millisecond
		st, err := stack.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rt := NewRuntime(st, tr)
		rt.Start()
		t.Cleanup(func() {
			rt.Close()
			tr.Close()
		})
		rts = append(rts, rt)
	}
	return hub, rts
}

func waitOperational(t *testing.T, rts []*Runtime, want int, budget time.Duration) {
	t.Helper()
	deadline := time.Now().Add(budget)
	for time.Now().Before(deadline) {
		ok := true
		for _, rt := range rts {
			good := false
			rt.Inspect(func(st *stack.Node) {
				good = st.SRP().State() == srp.StateOperational && len(st.SRP().Members()) == want
			})
			if !good {
				ok = false
				break
			}
		}
		if ok {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("runtime ring never became operational")
}

func TestRuntimeRingDelivers(t *testing.T) {
	_, rts := newRuntimeRing(t, 3, proto.ReplicationActive, 2)
	waitOperational(t, rts, 3, 15*time.Second)
	if !rts[0].Submit([]byte("ping")) {
		t.Fatal("submit rejected")
	}
	for i, rt := range rts {
		select {
		case d := <-rt.Deliveries():
			if string(d.Payload) != "ping" {
				t.Fatalf("node %d got %q", i+1, d.Payload)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("node %d never delivered", i+1)
		}
	}
}

func TestRuntimeSlowConsumerDoesNotStallRing(t *testing.T) {
	// Nobody reads node 2's delivery channel while hundreds of messages
	// flow: the unbounded queue must absorb them and the ring must stay
	// alive (no token loss, no membership change).
	_, rts := newRuntimeRing(t, 3, proto.ReplicationPassive, 2)
	waitOperational(t, rts, 3, 15*time.Second)
	const n = 500
	sent := 0
	for sent < n {
		if rts[0].Submit(make([]byte, 64)) {
			sent++
		} else {
			time.Sleep(time.Millisecond)
		}
	}
	// Now drain node 2 late; everything must be there.
	got := 0
	deadline := time.After(20 * time.Second)
	for got < n {
		select {
		case <-rts[1].Deliveries():
			got++
		case <-deadline:
			t.Fatalf("drained only %d/%d after the fact", got, n)
		}
	}
	// Membership must not have churned.
	rts[1].Inspect(func(st *stack.Node) {
		if st.SRP().Stats().TokenLosses != 0 {
			t.Errorf("token losses while consumer was slow: %d", st.SRP().Stats().TokenLosses)
		}
	})
}

func TestRuntimeSubmitAfterCloseReturnsFalse(t *testing.T) {
	_, rts := newRuntimeRing(t, 1, proto.ReplicationNone, 1)
	rts[0].Close()
	if rts[0].Submit([]byte("x")) {
		t.Fatal("submit accepted after close")
	}
	if rts[0].Inspect(func(*stack.Node) {}) {
		t.Fatal("inspect succeeded after close")
	}
}

func TestRuntimeCloseIsIdempotentAndClosesStreams(t *testing.T) {
	_, rts := newRuntimeRing(t, 1, proto.ReplicationNone, 1)
	rts[0].Close()
	rts[0].Close()
	for name, ch := range map[string]func() bool{
		"deliveries": func() bool { _, ok := <-rts[0].Deliveries(); return ok },
		"faults":     func() bool { _, ok := <-rts[0].Faults(); return ok },
	} {
		if ch() {
			t.Fatalf("%s channel still open after close", name)
		}
	}
}

func TestRuntimeInspectIsSerialisedWithEvents(t *testing.T) {
	_, rts := newRuntimeRing(t, 2, proto.ReplicationNone, 1)
	waitOperational(t, rts, 2, 15*time.Second)
	// Hammer Inspect concurrently with submissions; the race detector
	// validates serialisation.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			rts[0].Submit([]byte(fmt.Sprintf("m%d", i)))
		}
	}()
	for i := 0; i < 100; i++ {
		rts[0].Inspect(func(st *stack.Node) {
			_ = st.SRP().Stats()
			_ = st.Replicator().Stats()
		})
	}
	<-done
}

func TestQueueUnboundedFIFO(t *testing.T) {
	q := newQueue[int]()
	defer q.close()
	const n = 10000
	for i := 0; i < n; i++ {
		q.push(i)
	}
	for i := 0; i < n; i++ {
		select {
		case v := <-q.out:
			if v != i {
				t.Fatalf("out of order: got %d want %d", v, i)
			}
		case <-time.After(time.Second):
			t.Fatalf("queue stalled at %d", i)
		}
	}
}

func TestQueueCloseUnblocksConsumer(t *testing.T) {
	q := newQueue[int]()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range q.out {
		}
	}()
	q.push(1)
	time.Sleep(10 * time.Millisecond)
	q.close()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("consumer not unblocked by close")
	}
}
