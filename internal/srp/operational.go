package srp

import (
	"github.com/totem-rrp/totem/internal/proto"
	"github.com/totem-rrp/totem/internal/wire"
)

// onData processes a data packet.
func (m *Machine) onData(now proto.Time, pkt *wire.DataPacket) {
	if pkt.Ring != m.ring || (m.state != StateOperational && m.state != StateRecovery) {
		// A packet from a strictly newer configuration means we missed a
		// membership change (e.g. we were partitioned out): rejoin.
		if m.state == StateOperational && pkt.Ring.Epoch > m.ring.Epoch {
			m.enterGather(now, nil, nil)
		}
		return
	}
	seq := pkt.Seq
	if seq == 0 {
		return
	}
	if seq <= m.myAru || m.rx[seq] != nil {
		m.ctr.duplicates.Inc()
		return
	}
	m.rx[seq] = pkt
	if seq > m.highSeq {
		m.highSeq = seq
	}
	for m.rx[m.myAru+1] != nil {
		m.myAru++
	}
	m.ctr.packetsReceived.Inc()

	if pkt.Flags&wire.FlagRecovery != 0 {
		m.unwrapRecovery(pkt)
	}

	// Evidence that our last token was received: a packet with a higher
	// sequence number must have been sent by a node downstream of it
	// (paper §2).
	if m.tokenRetransOn && seq > m.lastTokenSentKey.seq {
		m.acts.CancelTimer(proto.TimerID{Class: proto.TimerTokenRetransmit})
		m.tokenRetransOn = false
	}

	if m.state == StateOperational {
		m.deliverPending(now)
	}
}

// deliverPending delivers every contiguous packet up to the delivery
// horizon, reassembling packed and fragmented messages. Bulk-lane chunks
// route into the bulk receiver instead of surfacing individually.
func (m *Machine) deliverPending(now proto.Time) {
	horizon := m.myAru
	if m.cfg.Delivery == DeliverSafe && m.safeTo < horizon {
		horizon = m.safeTo
	}
	for s := m.deliveredTo + 1; s <= horizon; s++ {
		pkt := m.rx[s]
		if pkt == nil {
			// Below myAru every packet is present unless already pruned;
			// pruning never outruns deliveredTo, so this is unreachable,
			// but guard anyway.
			break
		}
		m.deliveredTo = s
		if pkt.Flags&wire.FlagRecovery != 0 {
			// Recovery packets carry old-ring payload delivered by
			// completeRecovery; they occupy sequence numbers only.
			continue
		}
		for _, c := range pkt.Chunks {
			msg, ok := m.asm.Add(pkt.Sender, c)
			if !ok {
				continue
			}
			if c.Flags&wire.ChunkBulk != 0 {
				m.onBulkMessage(now, pkt.Ring, pkt.Sender, s, msg, false)
				continue
			}
			m.ctr.msgsDelivered.Inc()
			m.ctr.bytesDelivered.Add(uint64(len(msg)))
			m.acts.Deliver(proto.Delivery{
				Ring:    pkt.Ring,
				Sender:  pkt.Sender,
				Seq:     s,
				Payload: msg,
			})
		}
	}
}

// prune discards retained packets that are both delivered and known safe
// (every member holds them), so no retransmission can ever be requested.
func (m *Machine) prune() {
	horizon := m.safeTo
	if m.deliveredTo < horizon {
		horizon = m.deliveredTo
	}
	// The map holds at most window-size packets above the horizon, so a
	// sweep keyed on presence is cheap.
	for s := range m.rx {
		if s <= horizon {
			delete(m.rx, s)
		}
	}
	// A pruned packet can never be re-encoded for retransmission, so the
	// bulk envelope buffers its chunks aliased are now recyclable.
	for s, bufs := range m.bulkBufs {
		if s > horizon {
			continue
		}
		for _, b := range bufs {
			if len(m.bulkFree) < 64 {
				m.bulkFree = append(m.bulkFree, b)
			}
		}
		delete(m.bulkBufs, s)
	}
}

// flushSingleton broadcasts and delivers queued messages immediately when
// this node is the only ring member: no token circulation is needed.
func (m *Machine) flushSingleton(now proto.Time) {
	for !m.packer.Empty() {
		chunks := m.packer.NextChunks()
		if chunks == nil {
			break
		}
		seq := m.highSeq + 1
		pkt := &wire.DataPacket{Ring: m.ring, Sender: m.cfg.ID, Seq: seq, Chunks: chunks}
		m.rx[seq] = pkt
		m.highSeq = seq
		m.myAru = seq
		m.ctr.packetsSent.Inc()
		if bufs := m.packer.TakeFinishedBulk(); len(bufs) > 0 {
			m.bulkBufs[seq] = append(m.bulkBufs[seq], bufs...)
		}
	}
	m.safeTo = m.myAru
	m.deliverPending(now)
	m.prune()
	// A singleton ring has no token to carry the sequence number past the
	// representative, so the rollover check lives here instead.
	if m.highSeq >= m.cfg.SeqRollover {
		m.rolloverRing(now, m.highSeq)
	}
}

// rolloverRing abandons an operational ring whose sequence space is about
// to run out: reforming mints a new epoch and restarts sequence numbers at
// zero (paper's ring sequence number semantics), which is what keeps the
// machine's plain uint32 sequence comparisons safe without serial-number
// arithmetic.
func (m *Machine) rolloverRing(now proto.Time, seq uint32) {
	m.acts.Probe(proto.ProbeSeqRollover, -1, int64(seq), int64(m.cfg.SeqRollover), 0)
	m.enterGather(now, nil, nil)
}

// broadcastPacket encodes, self-stores and broadcasts one data packet,
// advancing the token sequence number.
func (m *Machine) broadcastPacket(tok *wire.Token, flags uint8, chunks []wire.Chunk) bool {
	seq := tok.Seq + 1
	pkt := &wire.DataPacket{Ring: m.ring, Sender: m.cfg.ID, Seq: seq, Flags: flags, Chunks: chunks}
	// Data packets are the steady-state hot path: encode into a pooled
	// frame. Ownership passes to the driver via Broadcast; only the decoded
	// pkt is retained (in m.rx), never the raw bytes.
	data, err := pkt.AppendEncode(wire.GetFrame())
	if err != nil {
		// Programmer error (packer guarantees budget); drop the packet
		// rather than wedge the ring.
		wire.PutFrame(data)
		return false
	}
	tok.Seq = seq
	m.rx[seq] = pkt
	if seq > m.highSeq {
		m.highSeq = seq
	}
	for m.rx[m.myAru+1] != nil {
		m.myAru++
	}
	m.out.Broadcast(data)
	m.ctr.packetsSent.Inc()
	return true
}

// onToken processes the ring token. This is the heart of the SRP: serve
// retransmission requests, request our own gaps, broadcast new traffic
// under flow control, update the all-received-up-to, and forward.
func (m *Machine) onToken(now proto.Time, tok *wire.Token) {
	if tok.Ring != m.ring || (m.state != StateOperational && m.state != StateRecovery) {
		if m.state == StateOperational && tok.Ring.Epoch > m.ring.Epoch {
			m.enterGather(now, nil, nil)
		}
		return
	}
	key := tokenKey{seq: tok.Seq, rotation: tok.Rotation}
	if m.seenAnyToken && !key.newer(m.lastTokenSeen) {
		// A retransmitted copy of a token we already handled (paper §2).
		return
	}
	m.seenAnyToken = true
	m.lastTokenSeen = key
	m.ctr.tokensReceived.Inc()
	wasOperational := m.state == StateOperational

	// Sequence-space exhaustion (documented limit, Config.SeqRollover):
	// the representative retires the ring before uint32 comparisons could
	// wrap. Only the representative triggers, so the ring reforms exactly
	// once; everything undelivered moves across through the normal
	// old-ring recovery exchange. Flow control bounds the overshoot past
	// the limit to WindowSize, keeping all comparisons wrap-free. The
	// rotation counter gets the same treatment: on an idle ring it grows
	// without the sequence number, and letting it wrap would make
	// tokenKey.newer reject the live token until the loss timeout fired.
	if wasOperational && m.isRep() &&
		(tok.Seq >= m.cfg.SeqRollover || tok.Rotation >= m.cfg.SeqRollover) {
		m.rolloverRing(now, tok.Seq)
		return
	}

	m.acts.CancelTimer(proto.TimerID{Class: proto.TimerTokenLoss})
	if m.tokenRetransOn {
		m.acts.CancelTimer(proto.TimerID{Class: proto.TimerTokenRetransmit})
		m.tokenRetransOn = false
	}
	if m.state == StateRecovery {
		// A circulating ring token is the evidence that the commit token
		// completed its passes; stop re-sending it.
		m.acts.CancelTimer(proto.TimerID{Class: proto.TimerCommitRetransmit})
		m.lastCommitSent = nil
	}

	// Recovery completion order: install the configuration before the
	// send stage so newly-unblocked application traffic can flow on this
	// very token visit.
	if m.state == StateRecovery && tok.Flags&wire.TokenFlagOperational != 0 {
		m.completeRecovery(now)
	}

	sent := m.serveRetransmissions(tok)
	m.requestRetransmissions(tok)
	sent += m.sendNewTraffic(tok)
	m.updateARU(tok)

	// Safe-delivery horizon: a packet is known safe once the token ARU
	// has covered it on two consecutive visits.
	if m.havePrevTokenAru {
		cand := min(m.prevTokenAru, tok.ARU)
		if cand > m.safeTo {
			m.safeTo = cand
		}
	}
	m.prevTokenAru = tok.ARU
	m.havePrevTokenAru = true

	// Flow control bookkeeping: replace our previous contribution with
	// the current one (fcc counts packets broadcast during the last
	// rotation; backlog counts queued messages ring-wide).
	tok.FCC = addClamped(tok.FCC, sent, m.prevSent)
	m.prevSent = sent
	queued := uint32(m.packer.Backlog() + len(m.recQueue))
	tok.Backlog = addClamped(tok.Backlog, queued, m.prevBacklog)
	m.prevBacklog = queued
	bulkQueued := uint32(m.packer.BulkBacklog())
	tok.BulkBacklog = addClamped(tok.BulkBacklog, bulkQueued, m.prevBulkBacklog)
	m.prevBulkBacklog = bulkQueued

	if m.isRep() {
		tok.Rotation++
	}

	m.updateRecoveryHandshake(now, tok)
	// Once the Operational flag has served its rotation (we received it
	// while already operational), the representative retires both flags.
	if wasOperational && m.isRep() {
		tok.Flags = 0
	}

	// On a completely idle ring the representative may hold the token
	// briefly to stop it spinning at CPU speed (IdleTokenHold; zero in
	// the simulator and benchmarks).
	idle := m.state == StateOperational && sent == 0 && len(tok.RTR) == 0 &&
		tok.Seq == tok.ARU && m.packer.Empty() && tok.Flags == 0
	if idle && m.isRep() && m.cfg.IdleTokenHold > 0 {
		m.heldToken = tok
		m.acts.SetTimer(proto.TimerID{Class: proto.TimerTokenHold}, m.cfg.IdleTokenHold)
		m.acts.SetTimer(proto.TimerID{Class: proto.TimerTokenLoss}, m.cfg.TokenLossTimeout)
	} else {
		m.forwardToken(tok)
	}
	if m.state == StateOperational {
		m.deliverPending(now)
	}
	// Reclaim retained packets once per visit (the safe horizon only
	// advances at token time, so sweeping more often is wasted work).
	m.prune()
}

// releaseHeldToken forwards a token held on an idle ring; when triggered
// by a submission it first broadcasts the fresh traffic under the normal
// flow-control rules.
func (m *Machine) releaseHeldToken(submitted bool) {
	tok := m.heldToken
	if tok == nil {
		return
	}
	m.heldToken = nil
	m.acts.CancelTimer(proto.TimerID{Class: proto.TimerTokenHold})
	if m.state != StateOperational {
		// Membership moved on while the token was held; the new ring has
		// its own token.
		return
	}
	if submitted && m.state == StateOperational {
		sent := m.sendNewTraffic(tok)
		tok.FCC = addClamped(tok.FCC, sent, 0)
		m.prevSent += sent
		m.updateARU(tok)
	}
	m.forwardToken(tok)
}

// serveRetransmissions re-broadcasts every requested packet we hold and
// removes it from the token's request list. Retransmissions count toward
// the flow-control fcc.
func (m *Machine) serveRetransmissions(tok *wire.Token) uint32 {
	if len(tok.RTR) == 0 {
		return 0
	}
	var sent uint32
	kept := tok.RTR[:0]
	for _, s := range tok.RTR {
		pkt := m.rx[s]
		if pkt == nil {
			kept = append(kept, s)
			continue
		}
		copyPkt := *pkt
		copyPkt.Flags |= wire.FlagRetrans
		data, err := copyPkt.AppendEncode(wire.GetFrame())
		if err != nil {
			wire.PutFrame(data)
			kept = append(kept, s)
			continue
		}
		m.out.Broadcast(data)
		m.ctr.retransmissions.Inc()
		m.acts.Probe(proto.ProbeRetransServed, -1, int64(s), 0, 0)
		sent++
	}
	tok.RTR = kept
	if len(tok.RTR) == 0 {
		tok.RTR = nil
	}
	return sent
}

// requestRetransmissions adds our gaps below the token sequence number to
// the request list (paper §2).
func (m *Machine) requestRetransmissions(tok *wire.Token) {
	if m.myAru >= tok.Seq {
		return
	}
	for s := m.myAru + 1; s <= tok.Seq && len(tok.RTR) < wire.MaxRTR; s++ {
		if m.rx[s] != nil || rtrContains(tok.RTR, s) {
			continue
		}
		tok.RTR = append(tok.RTR, s)
		m.ctr.retransRequested.Inc()
		m.acts.Probe(proto.ProbeRetransRequested, -1, int64(s), 0, 0)
	}
}

func rtrContains(rtr []uint32, s uint32) bool {
	for _, v := range rtr {
		if v == s {
			return true
		}
	}
	return false
}

// sendNewTraffic broadcasts new packets under the flow-control window:
// recovery retransmissions while in Recovery, application traffic while
// Operational.
//
// The bulk lane is additionally paced per visit: packets carrying nothing
// but bulk chunks are capped at BulkMaxPerVisit, dropping to
// BulkYieldPerVisit whenever other members advertise queued interactive
// traffic in the token backlog — a saturating transfer yields the window
// to latency-sensitive messages instead of competing with them. Packets
// that carry any interactive chunk (including mixed packets whose spare
// budget bulk filled) are never charged against the bulk cap, and every
// packet still counts toward the global fcc window.
func (m *Machine) sendNewTraffic(tok *wire.Token) uint32 {
	allowed := m.cfg.MaxPerVisit
	if w := m.cfg.WindowSize - int(tok.FCC); w < allowed {
		allowed = w
	}
	if w := m.cfg.WindowSize - int(tok.Seq-tok.ARU); w < allowed {
		allowed = w
	}
	bulkAllowed := m.cfg.BulkMaxPerVisit
	if int64(tok.Backlog) > int64(m.prevBacklog) {
		// The token backlog minus our own previous contribution is the
		// other members' queued interactive traffic.
		bulkAllowed = m.cfg.BulkYieldPerVisit
	}
	var sent uint32
	for allowed > 0 {
		switch {
		case m.state == StateRecovery:
			if len(m.recQueue) == 0 {
				return sent
			}
			inner := m.recQueue[0]
			chunks := []wire.Chunk{{Flags: wire.ChunkFirst | wire.ChunkLast, Data: inner}}
			if !m.broadcastPacket(tok, wire.FlagRecovery, chunks) {
				m.recQueue = m.recQueue[1:]
				continue
			}
			m.recQueue = m.recQueue[1:]
		case m.state == StateOperational:
			if m.packer.Empty() {
				return sent
			}
			var chunks []wire.Chunk
			if bulkAllowed > 0 {
				chunks = m.packer.NextChunks()
			} else {
				// Bulk budget spent: drain the interactive lane only.
				chunks = m.packer.NextChunksInteractive()
			}
			if chunks == nil {
				return sent
			}
			// Interactive chunks fill first, so a packet whose first chunk
			// is bulk carries only bulk.
			bulkOnly := chunks[0].Flags&wire.ChunkBulk != 0
			if !m.broadcastPacket(tok, 0, chunks) {
				continue
			}
			if bufs := m.packer.TakeFinishedBulk(); len(bufs) > 0 {
				m.bulkBufs[tok.Seq] = append(m.bulkBufs[tok.Seq], bufs...)
			}
			if bulkOnly {
				bulkAllowed--
			}
		default:
			return sent
		}
		sent++
		allowed--
	}
	return sent
}

// updateARU folds our all-received-up-to into the token (paper §2): the
// token ARU converges to the ring-wide minimum within one rotation.
func (m *Machine) updateARU(tok *wire.Token) {
	if m.myAru < tok.Seq {
		switch {
		case tok.ARUID == 0 || tok.ARU > m.myAru:
			tok.ARU = m.myAru
			tok.ARUID = m.cfg.ID
		case tok.ARUID == m.cfg.ID:
			tok.ARU = m.myAru
		}
		return
	}
	if tok.ARUID == m.cfg.ID || tok.ARUID == 0 {
		tok.ARU = tok.Seq
		tok.ARUID = 0
	}
}

// updateRecoveryHandshake runs the quiesce protocol that moves the whole
// ring from Recovery to Operational within two rotations (see DESIGN.md):
// the representative sets Quiet once its recovery traffic has drained; any
// member still recovering clears it; when Quiet survives a full rotation
// the representative flags the token Operational and every member installs
// the configuration as the flag passes.
func (m *Machine) updateRecoveryHandshake(now proto.Time, tok *wire.Token) {
	if m.state != StateRecovery {
		return
	}
	quiesced := len(m.recQueue) == 0 && m.myAru == tok.Seq && tok.ARU == tok.Seq
	if m.isRep() {
		switch {
		case quiesced && tok.Flags&wire.TokenFlagQuiet != 0 && m.quietSetter:
			tok.Flags |= wire.TokenFlagOperational
			m.completeRecovery(now)
		case quiesced:
			tok.Flags |= wire.TokenFlagQuiet
			m.quietSetter = true
		default:
			tok.Flags &^= wire.TokenFlagQuiet
			m.quietSetter = false
		}
		return
	}
	if !quiesced {
		tok.Flags &^= wire.TokenFlagQuiet
	}
}

// forwardToken encodes and unicasts the token to the successor, arming the
// retransmission and loss timers.
func (m *Machine) forwardToken(tok *wire.Token) {
	data, err := tok.Encode()
	if err != nil {
		// RTR list is capped at MaxRTR, so encoding cannot fail; guard to
		// keep the ring alive regardless.
		tok.RTR = nil
		if data, err = tok.Encode(); err != nil {
			return
		}
	}
	m.out.Unicast(m.successor(), data)
	m.ctr.tokensSent.Inc()
	m.lastTokenSent = data
	m.lastTokenSentKey = tokenKey{seq: tok.Seq, rotation: tok.Rotation}
	m.tokenRetransOn = true
	m.acts.SetTimer(proto.TimerID{Class: proto.TimerTokenRetransmit}, m.cfg.TokenRetransmitInterval)
	m.acts.SetTimer(proto.TimerID{Class: proto.TimerTokenLoss}, m.cfg.TokenLossTimeout)
}

// sendFirstToken emits the initial token of a freshly-committed ring; only
// the representative calls it.
func (m *Machine) sendFirstToken(now proto.Time) {
	tok := &wire.Token{Ring: m.ring}
	m.forwardToken(tok)
	// Deliberately do not mark the token as "seen": on an idle ring the
	// token comes back with an unchanged (seq, rotation) pair — the
	// rotation counter is only bumped when the representative *processes*
	// a visit — and it must be accepted then.
}

// addClamped computes base + add - sub with saturation at zero, tolerating
// a token whose counters were reset underneath us (regenerated token).
func addClamped(base, add, sub uint32) uint32 {
	v := int64(base) + int64(add) - int64(sub)
	if v < 0 {
		return 0
	}
	return uint32(v)
}
