package srp

import (
	"slices"

	"github.com/totem-rrp/totem/internal/proto"
)

// nodeSet is a sorted, duplicate-free set of node IDs. The zero value is
// the empty set. All operations return new or in-place sorted slices; the
// membership protocol relies on the canonical (sorted) form for set
// equality comparisons.
type nodeSet []proto.NodeID

func newNodeSet(ids ...proto.NodeID) nodeSet {
	s := nodeSet{}
	for _, id := range ids {
		s = s.add(id)
	}
	return s
}

func (s nodeSet) contains(id proto.NodeID) bool {
	_, ok := slices.BinarySearch(s, id)
	return ok
}

func (s nodeSet) add(id proto.NodeID) nodeSet {
	i, ok := slices.BinarySearch(s, id)
	if ok {
		return s
	}
	return slices.Insert(s, i, id)
}

func (s nodeSet) union(o nodeSet) nodeSet {
	// Copy first: add (slices.Insert) may otherwise shift elements inside
	// the receiver's backing array, corrupting s while the union is being
	// built.
	out := s.clone()
	for _, id := range o {
		out = out.add(id)
	}
	return out
}

// containsAll reports whether every element of o is in s.
func (s nodeSet) containsAll(o nodeSet) bool {
	for _, id := range o {
		if !s.contains(id) {
			return false
		}
	}
	return true
}

func (s nodeSet) equal(o nodeSet) bool {
	return slices.Equal(s, o)
}

// minus returns s \ o.
func (s nodeSet) minus(o nodeSet) nodeSet {
	out := make(nodeSet, 0, len(s))
	for _, id := range s {
		if !o.contains(id) {
			out = append(out, id)
		}
	}
	return out
}

// intersect returns s ∩ o.
func (s nodeSet) intersect(o nodeSet) nodeSet {
	out := make(nodeSet, 0, min(len(s), len(o)))
	for _, id := range s {
		if o.contains(id) {
			out = append(out, id)
		}
	}
	return out
}

func (s nodeSet) clone() nodeSet {
	return slices.Clone(s)
}
