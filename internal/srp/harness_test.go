package srp

import (
	"container/heap"
	"testing"
	"time"

	"github.com/totem-rrp/totem/internal/proto"
)

// The loopback harness connects machines directly (no RRP layer, no
// network model): broadcasts and unicasts are queued and delivered after a
// fixed tiny latency, timers fire at their deadlines, and tests may
// intercept packets to drop or reorder them. It gives the white-box tests
// precise control that the full simulator deliberately abstracts away.

type hEvent struct {
	at  proto.Time
	seq uint64
	fn  func()
}

type hQueue []*hEvent

func (q hQueue) Len() int { return len(q) }
func (q hQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q hQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *hQueue) Push(x any)   { *q = append(*q, x.(*hEvent)) }
func (q *hQueue) Pop() any {
	old := *q
	e := old[len(old)-1]
	*q = old[:len(old)-1]
	return e
}

type harness struct {
	t        *testing.T
	now      proto.Time
	events   hQueue
	seq      uint64
	latency  time.Duration
	machines map[proto.NodeID]*hNode
	order    []proto.NodeID
	// drop decides whether to drop a packet in flight (from, to; to==0 for
	// broadcast copies is the concrete destination).
	drop func(from, to proto.NodeID, data []byte) bool
}

type hNode struct {
	h       *harness
	id      proto.NodeID
	m       *Machine
	acts    proto.Actions
	timers  map[proto.TimerID]uint64
	tgen    uint64
	crashed bool

	delivered []proto.Delivery
	configs   []proto.ConfigChange
	bulkEvs   []proto.BulkEvent
}

func newHarness(t *testing.T, n int, tune func(*Config)) *harness {
	t.Helper()
	h := &harness{
		t:        t,
		latency:  100 * time.Microsecond,
		machines: make(map[proto.NodeID]*hNode),
	}
	for i := 1; i <= n; i++ {
		id := proto.NodeID(i)
		hn := &hNode{h: h, id: id, timers: make(map[proto.TimerID]uint64)}
		cfg := DefaultConfig(id)
		if tune != nil {
			tune(&cfg)
		}
		m, err := NewMachine(cfg, (*hOut)(hn), &hn.acts)
		if err != nil {
			t.Fatalf("NewMachine(%v): %v", id, err)
		}
		hn.m = m
		h.machines[id] = hn
		h.order = append(h.order, id)
	}
	return h
}

// hOut adapts hNode to the Outbound interface.
type hOut hNode

func (o *hOut) Broadcast(data []byte) {
	n := (*hNode)(o)
	for _, id := range n.h.order {
		if id == n.id {
			continue
		}
		n.h.post(n.id, id, data)
	}
}

func (o *hOut) Unicast(dest proto.NodeID, data []byte) {
	n := (*hNode)(o)
	if dest == n.id {
		return
	}
	n.h.post(n.id, dest, data)
}

func (h *harness) post(from, to proto.NodeID, data []byte) {
	if h.drop != nil && h.drop(from, to, data) {
		return
	}
	dst := h.machines[to]
	h.at(h.now+h.latency, func() {
		if dst.crashed {
			return
		}
		dst.m.OnPacket(h.now, data)
		dst.drain()
	})
}

func (h *harness) at(t proto.Time, fn func()) {
	h.seq++
	heap.Push(&h.events, &hEvent{at: t, seq: h.seq, fn: fn})
}

// drain executes non-send actions (timers, deliveries, configs); sends
// were already routed through Outbound synchronously.
func (n *hNode) drain() {
	for _, a := range n.acts.Drain() {
		switch act := a.(type) {
		case proto.SetTimer:
			n.tgen++
			gen := n.tgen
			id := act.ID
			n.timers[id] = gen
			n.h.at(n.h.now+act.After, func() {
				if n.crashed || n.timers[id] != gen {
					return
				}
				delete(n.timers, id)
				n.m.OnTimer(n.h.now, id)
				n.drain()
			})
		case proto.CancelTimer:
			delete(n.timers, act.ID)
		case proto.Deliver:
			n.delivered = append(n.delivered, act.Msg)
		case proto.Config:
			n.configs = append(n.configs, act.Change)
		case proto.BulkSignal:
			n.bulkEvs = append(n.bulkEvs, act.Ev)
		case *proto.SendPacket:
			n.h.t.Fatalf("unexpected SendPacket action from bare SRP machine")
		}
	}
}

func (h *harness) start() {
	for _, id := range h.order {
		n := h.machines[id]
		h.at(h.now+time.Duration(id)*time.Millisecond, func() {
			n.m.Start(h.now)
			n.drain()
		})
	}
}

func (h *harness) run(d time.Duration) {
	deadline := h.now + d
	for len(h.events) > 0 && h.events[0].at <= deadline {
		e := heap.Pop(&h.events).(*hEvent)
		h.now = e.at
		e.fn()
	}
	if h.now < deadline {
		h.now = deadline
	}
}

func (h *harness) runUntil(cond func() bool, budget time.Duration) bool {
	deadline := h.now + budget
	for h.now < deadline {
		if cond() {
			return true
		}
		h.run(5 * time.Millisecond)
	}
	return cond()
}

func (h *harness) submit(id proto.NodeID, payload []byte) bool {
	n := h.machines[id]
	ok := n.m.Submit(h.now, payload)
	n.drain()
	return ok
}

func (h *harness) allOperational() bool {
	var ring proto.RingID
	first := true
	for _, id := range h.order {
		n := h.machines[id]
		if n.crashed {
			continue
		}
		if n.m.State() != StateOperational || len(n.m.Members()) != h.liveCount() {
			return false
		}
		if first {
			ring = n.m.Ring()
			first = false
		} else if n.m.Ring() != ring {
			return false
		}
	}
	return true
}

func (h *harness) liveCount() int {
	c := 0
	for _, id := range h.order {
		if !h.machines[id].crashed {
			c++
		}
	}
	return c
}

func (h *harness) waitRing(budget time.Duration) {
	h.t.Helper()
	if !h.runUntil(h.allOperational, budget) {
		for _, id := range h.order {
			n := h.machines[id]
			h.t.Logf("node %v: crashed=%v state=%v ring=%v members=%v",
				id, n.crashed, n.m.State(), n.m.Ring(), n.m.Members())
		}
		h.t.Fatalf("ring did not form within %v", budget)
	}
}
