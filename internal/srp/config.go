// Package srp implements the Totem Single Ring Protocol (Amir et al., ACM
// TOCS 1995; summarised in §2 of the RRP paper): reliable totally-ordered
// broadcast on a logical token-passing ring, with retransmission driven by
// a token-borne request list, flow control via the token's fcc/backlog
// fields, message packing and fragmentation, token-loss fault detection,
// and a membership protocol (Gather → Commit → Recovery) providing
// extended-virtual-synchrony-style configuration changes.
//
// The Machine type is a pure, single-threaded state machine: all inputs
// carry an explicit timestamp and all outputs are emitted as proto.Actions
// plus sends through the Outbound interface (implemented by the RRP layer,
// which maps them onto the redundant networks).
package srp

import (
	"errors"
	"fmt"
	"time"

	"github.com/totem-rrp/totem/internal/metrics"
	"github.com/totem-rrp/totem/internal/proto"
)

// DeliveryMode selects the delivery guarantee.
type DeliveryMode int

// Delivery modes.
const (
	// DeliverAgreed delivers a message once all prior messages in the
	// total order have been received (Totem "agreed" delivery).
	DeliverAgreed DeliveryMode = iota + 1
	// DeliverSafe additionally waits until the token's all-received-up-to
	// has covered the message on two consecutive visits, guaranteeing
	// every member holds it (Totem "safe" delivery).
	DeliverSafe
)

// String implements fmt.Stringer.
func (m DeliveryMode) String() string {
	switch m {
	case DeliverAgreed:
		return "agreed"
	case DeliverSafe:
		return "safe"
	default:
		return fmt.Sprintf("DeliveryMode(%d)", int(m))
	}
}

// Config parameterises one SRP machine.
type Config struct {
	// ID is this node's identifier; it must be non-zero and unique.
	ID proto.NodeID

	// Delivery selects agreed or safe delivery. Default DeliverAgreed.
	Delivery DeliveryMode

	// WindowSize is the global flow-control window: the maximum number of
	// packets broadcast ring-wide per token rotation, and also the bound
	// on packets in flight beyond the all-received-up-to horizon.
	WindowSize int
	// MaxPerVisit caps the packets one node may broadcast per token visit.
	MaxPerVisit int
	// MaxQueued caps the application send queue (messages); Submit
	// rejects beyond it.
	MaxQueued int

	// BulkMaxPerVisit caps bulk-only packets (packets carrying nothing but
	// bulk-lane chunks) broadcast per token visit; interactive and mixed
	// packets are not charged against it. Zero selects the default.
	BulkMaxPerVisit int
	// BulkYieldPerVisit replaces BulkMaxPerVisit whenever other members
	// report queued interactive traffic in the token backlog, so a
	// saturating transfer yields the window to latency-sensitive traffic.
	// Zero selects the default; it must not exceed BulkMaxPerVisit.
	BulkYieldPerVisit int
	// MaxQueuedBulk caps the bulk-lane send queue (chunks); SubmitBulk
	// rejects beyond it. Zero selects the default.
	MaxQueuedBulk int
	// MaxBulkTransfer bounds a single inbound transfer's announced length
	// in bytes; larger announcements are dropped without allocation. Zero
	// selects the default.
	MaxBulkTransfer int
	// MaxBulkPartials bounds concurrent in-progress inbound transfers.
	// Zero selects the default.
	MaxBulkPartials int

	// TokenLossTimeout starts the membership protocol when no token
	// arrives for this long (paper §2).
	TokenLossTimeout time.Duration
	// TokenRetransmitInterval re-sends the last token until evidence of
	// its reception arrives (paper §2).
	TokenRetransmitInterval time.Duration
	// JoinInterval re-broadcasts the join message during Gather.
	JoinInterval time.Duration
	// ConsensusTimeout bounds Gather before silent nodes are declared
	// failed.
	ConsensusTimeout time.Duration
	// CommitRetransmitInterval re-sends the commit token until evidence
	// arrives.
	CommitRetransmitInterval time.Duration
	// CommitRetransmitLimit bounds commit-token retries before the
	// successor is declared failed and Gather restarts.
	CommitRetransmitLimit int
	// MergeDetectInterval is how often an operational ring's
	// representative broadcasts a merge-detect packet so that rings
	// separated by a healed partition find each other.
	MergeDetectInterval time.Duration
	// IdleTokenHold, when positive, makes the representative hold the
	// token briefly on a completely idle ring instead of spinning it at
	// full speed (CPU courtesy for real-time deployments; zero disables,
	// which the simulator and benchmarks use).
	IdleTokenHold time.Duration

	// SeqRollover is the enforced sequence-space limit: when the ring's
	// sequence number reaches it, the representative abandons the ring and
	// reforms it (new epoch, sequence numbers restart at zero) instead of
	// letting uint32 sequence comparisons wrap at 2³². The overshoot past
	// the limit is bounded by WindowSize (flow control caps in-flight
	// packets), so with the default of 2³¹ every comparison in the machine
	// stays wrap-free by a factor of two. Zero selects the default; tests
	// use tiny values to exercise rollover in seconds instead of days.
	SeqRollover uint32
	// InitialEpoch seeds the machine's highest-known ring epoch, so a
	// restarted node never mints a RingID it already used in an earlier
	// incarnation (Totem keeps this on stable storage; drivers that model
	// restart pass the pre-crash value here).
	InitialEpoch uint32

	// Metrics, when non-nil, is the registry the machine registers its
	// counters in (names under "srp."). Nil gets a private registry, so
	// Stats keeps working for callers that never wire one up.
	Metrics *metrics.Registry
}

// DefaultConfig returns the defaults used throughout the repository; they
// are scaled for the simulated 100 Mbit/s LANs of the evaluation.
func DefaultConfig(id proto.NodeID) Config {
	return Config{
		ID:                       id,
		Delivery:                 DeliverAgreed,
		WindowSize:               80,
		MaxPerVisit:              20,
		MaxQueued:                1024,
		BulkMaxPerVisit:          DefaultBulkMaxPerVisit,
		BulkYieldPerVisit:        DefaultBulkYieldPerVisit,
		MaxQueuedBulk:            DefaultMaxQueuedBulk,
		MaxBulkTransfer:          DefaultMaxBulkTransfer,
		MaxBulkPartials:          DefaultMaxBulkPartials,
		TokenLossTimeout:         100 * time.Millisecond,
		TokenRetransmitInterval:  6 * time.Millisecond,
		JoinInterval:             60 * time.Millisecond,
		ConsensusTimeout:         250 * time.Millisecond,
		CommitRetransmitInterval: 30 * time.Millisecond,
		CommitRetransmitLimit:    5,
		MergeDetectInterval:      200 * time.Millisecond,
		SeqRollover:              DefaultSeqRollover,
	}
}

// DefaultSeqRollover is the sequence-space limit applied when
// Config.SeqRollover is zero: half the uint32 range, leaving the entire
// upper half as guard band for the bounded WindowSize overshoot.
const DefaultSeqRollover = uint32(1) << 31

// Bulk-lane defaults, applied when the corresponding Config field is zero.
const (
	// DefaultBulkMaxPerVisit: half the interactive MaxPerVisit default —
	// an uncontended transfer still moves ~14 KB of chunks per visit.
	DefaultBulkMaxPerVisit = 10
	// DefaultBulkYieldPerVisit keeps a trickle of bulk progress even under
	// sustained interactive load, preventing transfer starvation.
	DefaultBulkYieldPerVisit = 2
	// DefaultMaxQueuedBulk bounds queued bulk chunks; the sender-side
	// window (totem.BulkOptions.Window) is far smaller, so this only trips
	// when many transfers run at once.
	DefaultMaxQueuedBulk = 256
	// DefaultMaxBulkTransfer bounds one transfer to 64 MiB.
	DefaultMaxBulkTransfer = 64 << 20
	// DefaultMaxBulkPartials bounds concurrent inbound transfers.
	DefaultMaxBulkPartials = 16
)

// Validation errors.
var (
	ErrBadID     = errors.New("srp: node ID must be non-zero")
	ErrBadConfig = errors.New("srp: invalid configuration")
)

// Validate checks the configuration, applying no defaults.
func (c Config) Validate() error {
	if c.ID == 0 {
		return ErrBadID
	}
	if c.Delivery != DeliverAgreed && c.Delivery != DeliverSafe {
		return fmt.Errorf("%w: delivery mode %v", ErrBadConfig, c.Delivery)
	}
	if c.WindowSize <= 0 || c.MaxPerVisit <= 0 || c.MaxQueued <= 0 {
		return fmt.Errorf("%w: window/visit/queue sizes must be positive", ErrBadConfig)
	}
	if c.MaxPerVisit > c.WindowSize {
		return fmt.Errorf("%w: MaxPerVisit %d exceeds WindowSize %d", ErrBadConfig, c.MaxPerVisit, c.WindowSize)
	}
	if c.BulkMaxPerVisit < 0 || c.BulkYieldPerVisit < 0 || c.MaxQueuedBulk < 0 ||
		c.MaxBulkTransfer < 0 || c.MaxBulkPartials < 0 {
		return fmt.Errorf("%w: bulk-lane knobs must be non-negative (zero selects the default)", ErrBadConfig)
	}
	if c.BulkMaxPerVisit > 0 && c.BulkYieldPerVisit > c.BulkMaxPerVisit {
		return fmt.Errorf("%w: BulkYieldPerVisit %d exceeds BulkMaxPerVisit %d", ErrBadConfig, c.BulkYieldPerVisit, c.BulkMaxPerVisit)
	}
	for _, d := range []time.Duration{
		c.TokenLossTimeout, c.TokenRetransmitInterval, c.JoinInterval,
		c.ConsensusTimeout, c.CommitRetransmitInterval, c.MergeDetectInterval,
	} {
		if d <= 0 {
			return fmt.Errorf("%w: all timeouts must be positive", ErrBadConfig)
		}
	}
	if c.TokenRetransmitInterval >= c.TokenLossTimeout {
		return fmt.Errorf("%w: token retransmit interval must be below token loss timeout", ErrBadConfig)
	}
	if c.CommitRetransmitLimit <= 0 {
		return fmt.Errorf("%w: CommitRetransmitLimit must be positive", ErrBadConfig)
	}
	if c.SeqRollover != 0 {
		if c.SeqRollover > DefaultSeqRollover {
			return fmt.Errorf("%w: SeqRollover %d exceeds %d, eroding the wraparound guard band", ErrBadConfig, c.SeqRollover, DefaultSeqRollover)
		}
		if c.SeqRollover < 4*uint32(c.WindowSize) {
			return fmt.Errorf("%w: SeqRollover %d below 4*WindowSize would reform the ring continuously", ErrBadConfig, c.SeqRollover)
		}
	}
	return nil
}
