package srp

import (
	"github.com/totem-rrp/totem/internal/bulk"
	"github.com/totem-rrp/totem/internal/proto"
)

// onBulkMessage processes one reassembled bulk-lane message (a chunk
// envelope) in total-order position. Every member — including the sender —
// feeds its receiver, so completed transfers surface identically
// everywhere as a Delivery with Bulk set. The sender additionally emits a
// BulkAcked signal: delivering its own chunk is the ring-wide evidence
// that every member of the configuration ordered it, which is what drives
// the sender-side window forward.
func (m *Machine) onBulkMessage(now proto.Time, ring proto.RingID, sender proto.NodeID, seq uint32, msg []byte, transitional bool) {
	id, off, total, data, err := bulk.DecodeChunk(msg)
	if err != nil {
		m.ctr.bulkRxDropped.Inc()
		return
	}
	if sender == m.cfg.ID {
		m.ctr.bulkChunksAcked.Inc()
		m.acts.Bulk(proto.BulkEvent{
			Kind:   proto.BulkAcked,
			ID:     id,
			Offset: off,
			Len:    len(data),
			Time:   now,
		})
	}
	full, st := m.bulkRx.Add(sender, id, off, total, data)
	switch st {
	case bulk.RxCompleted:
		m.ctr.bulkRxCompleted.Inc()
		m.ctr.msgsDelivered.Inc()
		m.ctr.bytesDelivered.Add(uint64(len(full)))
		m.acts.Deliver(proto.Delivery{
			Ring:         ring,
			Sender:       sender,
			Seq:          seq,
			Payload:      full,
			Transitional: transitional,
			Bulk:         true,
		})
	case bulk.RxDropped:
		m.ctr.bulkRxDropped.Inc()
	}
}
