package srp

import (
	"testing"

	"github.com/totem-rrp/totem/internal/proto"
	"github.com/totem-rrp/totem/internal/wire"
)

// fakeOut records sends for white-box machine tests.
type fakeOut struct {
	broadcasts [][]byte
	unicasts   []struct {
		dest proto.NodeID
		data []byte
	}
}

func (f *fakeOut) Broadcast(data []byte) { f.broadcasts = append(f.broadcasts, data) }
func (f *fakeOut) Unicast(dest proto.NodeID, data []byte) {
	f.unicasts = append(f.unicasts, struct {
		dest proto.NodeID
		data []byte
	}{dest, data})
}

// operationalMachine builds a machine already installed on a 3-node ring
// {1,2,3} as node id, bypassing membership.
func operationalMachine(t *testing.T, id proto.NodeID) (*Machine, *fakeOut, *proto.Actions) {
	t.Helper()
	out := &fakeOut{}
	acts := &proto.Actions{}
	m, err := NewMachine(DefaultConfig(id), out, acts)
	if err != nil {
		t.Fatal(err)
	}
	m.state = StateOperational
	m.ring = proto.RingID{Rep: 1, Epoch: 5}
	m.members = newNodeSet(1, 2, 3)
	m.maxEpoch = 5
	return m, out, acts
}

// mkData builds a stored packet for the machine's ring.
func mkData(m *Machine, sender proto.NodeID, seq uint32, payload string) *wire.DataPacket {
	return &wire.DataPacket{
		Ring: m.ring, Sender: sender, Seq: seq,
		Chunks: []wire.Chunk{{Flags: wire.ChunkFirst | wire.ChunkLast, Data: []byte(payload)}},
	}
}

func TestServeRetransmissionsServesAndPrunesRTR(t *testing.T) {
	m, out, _ := operationalMachine(t, 2)
	m.rx[5] = mkData(m, 1, 5, "five")
	tok := &wire.Token{Ring: m.ring, Seq: 10, RTR: []uint32{5, 7}}
	sent := m.serveRetransmissions(tok)
	if sent != 1 {
		t.Fatalf("sent = %d", sent)
	}
	if len(tok.RTR) != 1 || tok.RTR[0] != 7 {
		t.Fatalf("RTR = %v, want [7]", tok.RTR)
	}
	if len(out.broadcasts) != 1 {
		t.Fatalf("broadcasts = %d", len(out.broadcasts))
	}
	pkt, err := wire.DecodeData(out.broadcasts[0])
	if err != nil {
		t.Fatal(err)
	}
	if pkt.Flags&wire.FlagRetrans == 0 {
		t.Fatal("retransmission not flagged")
	}
	if pkt.Sender != 1 || pkt.Seq != 5 {
		t.Fatalf("retransmitted wrong packet: %+v", pkt)
	}
}

func TestRequestRetransmissionsAddsGapsOnly(t *testing.T) {
	m, _, _ := operationalMachine(t, 2)
	m.rx[1] = mkData(m, 1, 1, "one")
	m.rx[3] = mkData(m, 1, 3, "three")
	m.myAru = 1
	tok := &wire.Token{Ring: m.ring, Seq: 5, RTR: []uint32{4}}
	m.requestRetransmissions(tok)
	// Missing: 2, 4 (already listed), 5 → adds 2 and 5.
	want := map[uint32]bool{2: true, 4: true, 5: true}
	if len(tok.RTR) != 3 {
		t.Fatalf("RTR = %v", tok.RTR)
	}
	for _, s := range tok.RTR {
		if !want[s] {
			t.Fatalf("unexpected RTR entry %d in %v", s, tok.RTR)
		}
	}
}

func TestRequestRetransmissionsRespectsCap(t *testing.T) {
	m, _, _ := operationalMachine(t, 2)
	tok := &wire.Token{Ring: m.ring, Seq: 1000}
	m.requestRetransmissions(tok)
	if len(tok.RTR) != wire.MaxRTR {
		t.Fatalf("RTR length = %d, want cap %d", len(tok.RTR), wire.MaxRTR)
	}
}

func TestSendNewTrafficRespectsWindowAndVisitCap(t *testing.T) {
	m, out, _ := operationalMachine(t, 2)
	for i := 0; i < 100; i++ {
		m.packer.Enqueue(make([]byte, 1000)) // one packet per message
	}
	// FCC already at window-5: only 5 packets allowed this visit.
	tok := &wire.Token{Ring: m.ring, Seq: 50, ARU: 50, FCC: uint32(m.cfg.WindowSize - 5)}
	sent := m.sendNewTraffic(tok)
	if sent != 5 {
		t.Fatalf("sent = %d, want 5 (window residue)", sent)
	}
	if len(out.broadcasts) != 5 {
		t.Fatalf("broadcasts = %d", len(out.broadcasts))
	}
	// Fresh token with zero FCC: capped by MaxPerVisit.
	out.broadcasts = nil
	tok2 := &wire.Token{Ring: m.ring, Seq: tok.Seq, ARU: tok.Seq}
	sent = m.sendNewTraffic(tok2)
	if sent != uint32(m.cfg.MaxPerVisit) {
		t.Fatalf("sent = %d, want MaxPerVisit %d", sent, m.cfg.MaxPerVisit)
	}
}

func TestSendNewTrafficRespectsInFlightBound(t *testing.T) {
	m, _, _ := operationalMachine(t, 2)
	for i := 0; i < 100; i++ {
		m.packer.Enqueue(make([]byte, 1000)) // one packet per message
	}
	// seq far beyond aru: window minus in-flight bounds sends.
	tok := &wire.Token{Ring: m.ring, Seq: 100, ARU: 100 - uint32(m.cfg.WindowSize) + 3}
	if sent := m.sendNewTraffic(tok); sent != 3 {
		t.Fatalf("sent = %d, want 3 (in-flight bound)", sent)
	}
}

func TestOnDataDeliversInOrderAndCountsDuplicates(t *testing.T) {
	m, _, acts := operationalMachine(t, 2)
	m.onData(0, mkData(m, 1, 2, "second"))
	if len(drainDeliveries(acts)) != 0 {
		t.Fatal("out-of-order packet delivered")
	}
	m.onData(0, mkData(m, 1, 1, "first"))
	got := drainDeliveries(acts)
	if len(got) != 2 || string(got[0].Payload) != "first" || string(got[1].Payload) != "second" {
		t.Fatalf("deliveries = %v", got)
	}
	m.onData(0, mkData(m, 1, 1, "first"))
	if m.Stats().Duplicates != 1 {
		t.Fatalf("Duplicates = %d", m.Stats().Duplicates)
	}
}

func TestSafeModeHoldsDeliveryUntilSafe(t *testing.T) {
	out := &fakeOut{}
	acts := &proto.Actions{}
	cfg := DefaultConfig(2)
	cfg.Delivery = DeliverSafe
	m, err := NewMachine(cfg, out, acts)
	if err != nil {
		t.Fatal(err)
	}
	m.state = StateOperational
	m.ring = proto.RingID{Rep: 1, Epoch: 5}
	m.members = newNodeSet(1, 2, 3)

	m.onData(0, mkData(m, 1, 1, "held"))
	if len(drainDeliveries(acts)) != 0 {
		t.Fatal("safe mode delivered before the safe horizon")
	}
	// Two token visits with ARU >= 1 establish safety.
	m.onToken(0, &wire.Token{Ring: m.ring, Seq: 1, ARU: 1, Rotation: 1})
	m.onToken(0, &wire.Token{Ring: m.ring, Seq: 1, ARU: 1, Rotation: 2})
	got := drainDeliveries(acts)
	if len(got) != 1 || string(got[0].Payload) != "held" {
		t.Fatalf("safe delivery = %v", got)
	}
}

func TestPruneKeepsUnsafePackets(t *testing.T) {
	m, _, _ := operationalMachine(t, 2)
	m.rx[1] = mkData(m, 1, 1, "a")
	m.rx[2] = mkData(m, 1, 2, "b")
	m.myAru = 2
	m.deliveredTo = 2
	m.safeTo = 1
	m.prune()
	if m.rx[1] != nil {
		t.Fatal("safe+delivered packet not pruned")
	}
	if m.rx[2] == nil {
		t.Fatal("unsafe packet pruned — retransmission would be impossible")
	}
}

func TestForwardTokenArmsTimersAndRecordsState(t *testing.T) {
	m, out, acts := operationalMachine(t, 2)
	tok := &wire.Token{Ring: m.ring, Seq: 9, Rotation: 3}
	m.forwardToken(tok)
	if len(out.unicasts) != 1 || out.unicasts[0].dest != 3 {
		t.Fatalf("token forwarded to %v, want successor 3", out.unicasts)
	}
	var sawRetrans, sawLoss bool
	for _, a := range acts.Drain() {
		if st, ok := a.(proto.SetTimer); ok {
			switch st.ID.Class {
			case proto.TimerTokenRetransmit:
				sawRetrans = true
			case proto.TimerTokenLoss:
				sawLoss = true
			}
		}
	}
	if !sawRetrans || !sawLoss {
		t.Fatalf("timers not armed: retrans=%v loss=%v", sawRetrans, sawLoss)
	}
	if !m.tokenRetransOn || m.lastTokenSentKey != (tokenKey{seq: 9, rotation: 3}) {
		t.Fatal("retransmission state not recorded")
	}
}

func TestTokenRetransmitTimerResendsUntilEvidence(t *testing.T) {
	m, out, _ := operationalMachine(t, 2)
	m.forwardToken(&wire.Token{Ring: m.ring, Seq: 9, Rotation: 3})
	out.unicasts = nil
	m.OnTimer(0, proto.TimerID{Class: proto.TimerTokenRetransmit})
	if len(out.unicasts) != 1 {
		t.Fatal("token not retransmitted")
	}
	if m.Stats().TokenRetransmits != 1 {
		t.Fatalf("TokenRetransmits = %d", m.Stats().TokenRetransmits)
	}
	// Evidence: a data packet with a higher seq cancels retransmission.
	m.onData(0, mkData(m, 3, 10, "evidence"))
	if m.tokenRetransOn {
		t.Fatal("evidence did not cancel token retransmission")
	}
	out.unicasts = nil
	m.OnTimer(0, proto.TimerID{Class: proto.TimerTokenRetransmit})
	if len(out.unicasts) != 0 {
		t.Fatal("cancelled retransmission still fired")
	}
}

func TestDuplicateTokenIgnored(t *testing.T) {
	m, out, _ := operationalMachine(t, 2)
	tok := &wire.Token{Ring: m.ring, Seq: 9, Rotation: 3}
	m.onToken(0, tok)
	first := m.Stats().TokensReceived
	m.onToken(0, &wire.Token{Ring: m.ring, Seq: 9, Rotation: 3})
	if m.Stats().TokensReceived != first {
		t.Fatal("retransmitted token processed twice")
	}
	_ = out
}

func TestForeignEpochTokenTriggersGather(t *testing.T) {
	m, _, _ := operationalMachine(t, 2)
	newer := &wire.Token{Ring: proto.RingID{Rep: 1, Epoch: 9}, Seq: 0}
	m.onToken(0, newer)
	if m.state != StateGather {
		t.Fatalf("state = %v, want gather after newer-epoch token", m.state)
	}
}

func TestRecoveryHandshakeFlags(t *testing.T) {
	// Representative in recovery: quiesced → sets Quiet; Quiet survives a
	// rotation → sets Operational and completes.
	m, _, acts := operationalMachine(t, 1) // id 1 = rep
	m.state = StateRecovery
	m.old = nil
	tok := &wire.Token{Ring: m.ring, Seq: 0, ARU: 0}
	m.updateRecoveryHandshake(0, tok)
	if tok.Flags&wire.TokenFlagQuiet == 0 {
		t.Fatal("rep did not set Quiet when quiesced")
	}
	if m.state != StateRecovery {
		t.Fatal("rep completed before Quiet survived a rotation")
	}
	// The Quiet token comes back around.
	m.updateRecoveryHandshake(0, tok)
	if tok.Flags&wire.TokenFlagOperational == 0 {
		t.Fatal("rep did not set Operational after Quiet survived")
	}
	if m.state != StateOperational {
		t.Fatalf("state = %v after handshake completion", m.state)
	}
	acts.Drain()

	// Non-rep member still busy: clears Quiet.
	m2, _, _ := operationalMachine(t, 2)
	m2.state = StateRecovery
	m2.recQueue = [][]byte{{1}}
	tok2 := &wire.Token{Ring: m2.ring, Seq: 0, ARU: 0, Flags: wire.TokenFlagQuiet}
	m2.updateRecoveryHandshake(0, tok2)
	if tok2.Flags&wire.TokenFlagQuiet != 0 {
		t.Fatal("busy member did not clear Quiet")
	}
}

func TestMissingBeforeReflectsAru(t *testing.T) {
	m, _, _ := operationalMachine(t, 2)
	m.myAru = 7
	if m.MissingBefore(7) {
		t.Fatal("nothing missing at aru")
	}
	if !m.MissingBefore(8) {
		t.Fatal("gap above aru not reported")
	}
	m.state = StateGather
	if m.MissingBefore(100) {
		t.Fatal("MissingBefore outside operational must be false")
	}
}

func drainDeliveries(acts *proto.Actions) []proto.Delivery {
	var out []proto.Delivery
	for _, a := range acts.Drain() {
		if d, ok := a.(proto.Deliver); ok {
			out = append(out, d.Msg)
		}
	}
	return out
}
