package srp

import (
	"testing"

	"github.com/totem-rrp/totem/internal/proto"
	"github.com/totem-rrp/totem/internal/wire"
)

// recoveringMachine builds a machine that was operational on oldRing with
// the given received packets, then snapshots it as if entering gather.
func recoveringMachine(t *testing.T, id proto.NodeID, seqs ...uint32) *Machine {
	t.Helper()
	m, _, _ := operationalMachine(t, id)
	for _, s := range seqs {
		m.rx[s] = mkData(m, 1, s, "old")
	}
	for m.rx[m.myAru+1] != nil {
		m.myAru++
	}
	for _, s := range seqs {
		if s > m.highSeq {
			m.highSeq = s
		}
	}
	m.snapshotOld()
	m.state = StateGather
	m.procSet = newNodeSet(1, 2, 3)
	return m
}

// commitFor builds a commit token whose members all report the same old
// ring with the given per-member (aru, high).
func commitFor(m *Machine, entries map[proto.NodeID][2]uint32) *wire.CommitToken {
	c := &wire.CommitToken{Ring: proto.RingID{Rep: 1, Epoch: 10}}
	for _, id := range []proto.NodeID{1, 2, 3} {
		e, ok := entries[id]
		if !ok {
			continue
		}
		c.Members = append(c.Members, wire.CommitEntry{
			ID: id, OldRing: m.old.ring, MyAru: e[0], HighSeq: e[1],
		})
	}
	return c
}

func TestBeginRecoveryResponsibilityRule(t *testing.T) {
	// Node 2 holds old packets 1..6; group arus: n1=2, n2=4, n3=3.
	// lowAru=2, high=6.
	//  seq 3: holders by aru = {n2 (aru4), n3 (aru3)} → lowest ID holder
	//         with aru>=3 is n2 → n2 responsible. ✓ queued.
	//  seq 4: holders = {n2} → n2 responsible. ✓ queued.
	//  seq 5,6: beyond every aru → every holder requeues. n2 has them. ✓
	m := recoveringMachine(t, 2, 1, 2, 3, 4, 5, 6)
	c := commitFor(m, map[proto.NodeID][2]uint32{
		1: {2, 6}, 2: {4, 6}, 3: {3, 5},
	})
	m.beginRecovery(0, c)
	if m.state != StateRecovery {
		t.Fatalf("state = %v", m.state)
	}
	var seqs []uint32
	for _, data := range m.recQueue {
		pkt, err := wire.DecodeData(data)
		if err != nil {
			t.Fatal(err)
		}
		seqs = append(seqs, pkt.Seq)
	}
	want := []uint32{3, 4, 5, 6}
	if len(seqs) != len(want) {
		t.Fatalf("recQueue seqs = %v, want %v", seqs, want)
	}
	for i := range want {
		if seqs[i] != want[i] {
			t.Fatalf("recQueue seqs = %v, want %v", seqs, want)
		}
	}
}

func TestBeginRecoveryNotResponsibleWhenLowerIDHolds(t *testing.T) {
	// Node 3's view: n1 (aru 6) covers everything up to 6, so node 3 has
	// no duty below 7 even though it holds those packets.
	m := recoveringMachine(t, 3, 1, 2, 3, 4, 5, 6)
	c := commitFor(m, map[proto.NodeID][2]uint32{
		1: {6, 6}, 2: {2, 6}, 3: {6, 6},
	})
	m.beginRecovery(0, c)
	if len(m.recQueue) != 0 {
		t.Fatalf("recQueue = %d entries, want none (node 1 is responsible)", len(m.recQueue))
	}
}

func TestBeginRecoveryFreshNodeHasNoDuty(t *testing.T) {
	out := &fakeOut{}
	acts := &proto.Actions{}
	m, err := NewMachine(DefaultConfig(2), out, acts)
	if err != nil {
		t.Fatal(err)
	}
	m.state = StateGather
	m.procSet = newNodeSet(1, 2)
	c := &wire.CommitToken{
		Ring: proto.RingID{Rep: 1, Epoch: 3},
		Members: []wire.CommitEntry{
			{ID: 1, OldRing: proto.RingID{Rep: 1, Epoch: 2}, MyAru: 5, HighSeq: 5},
			{ID: 2}, // fresh: zero old ring
		},
	}
	m.beginRecovery(0, c)
	if len(m.recQueue) != 0 {
		t.Fatal("fresh node queued recovery traffic")
	}
}

func TestUnwrapRecoveryFiltersForeignAndStale(t *testing.T) {
	m := recoveringMachine(t, 2, 1, 2)
	c := commitFor(m, map[proto.NodeID][2]uint32{1: {2, 2}, 2: {2, 2}, 3: {0, 0}})
	m.beginRecovery(0, c)

	oldRing := m.old.ring
	wrap := func(inner *wire.DataPacket) *wire.DataPacket {
		data, err := inner.Encode()
		if err != nil {
			t.Fatal(err)
		}
		return &wire.DataPacket{
			Ring: m.ring, Sender: 3, Seq: 1, Flags: wire.FlagRecovery,
			Chunks: []wire.Chunk{{Flags: wire.ChunkFirst | wire.ChunkLast, Data: data}},
		}
	}

	// A proper old-ring packet fills the buffer.
	good := &wire.DataPacket{Ring: oldRing, Sender: 3, Seq: 5,
		Chunks: []wire.Chunk{{Flags: wire.ChunkFirst | wire.ChunkLast, Data: []byte("good")}}}
	m.unwrapRecovery(wrap(good))
	if m.old.rx[5] == nil {
		t.Fatal("old-ring packet not unwrapped")
	}

	// A foreign-ring packet is dropped: EVS delivers a message only to
	// members of the configuration it was sent in.
	foreign := &wire.DataPacket{Ring: proto.RingID{Rep: 9, Epoch: 4}, Sender: 9, Seq: 6,
		Chunks: []wire.Chunk{{Flags: wire.ChunkFirst | wire.ChunkLast, Data: []byte("foreign")}}}
	m.unwrapRecovery(wrap(foreign))
	if m.old.rx[6] != nil {
		t.Fatal("foreign-ring packet accepted into old-ring buffer")
	}

	// Garbage inside the encapsulation is dropped, not fatal.
	bad := &wire.DataPacket{
		Ring: m.ring, Sender: 3, Seq: 2, Flags: wire.FlagRecovery,
		Chunks: []wire.Chunk{{Flags: wire.ChunkFirst | wire.ChunkLast, Data: []byte("junk")}},
	}
	m.unwrapRecovery(bad)
}

func TestDeliverOldAndInstallOrdering(t *testing.T) {
	// Completion must deliver: transitional config → remaining old
	// messages (transitional) → regular config.
	m := recoveringMachine(t, 2, 1, 2, 3)
	m.old.deliveredTo = 1 // only seq 1 was delivered pre-failure
	c := commitFor(m, map[proto.NodeID][2]uint32{1: {3, 3}, 2: {3, 3}})
	m.beginRecovery(0, c)
	acts := m.acts
	acts.Drain()
	m.completeRecovery(0)

	var kinds []string
	for _, a := range acts.Drain() {
		switch act := a.(type) {
		case proto.Config:
			if act.Change.Transitional {
				kinds = append(kinds, "transitional-config")
			} else {
				kinds = append(kinds, "regular-config")
			}
		case proto.Deliver:
			if !act.Msg.Transitional {
				t.Fatalf("old message delivered without transitional mark: %v", act.Msg)
			}
			kinds = append(kinds, "old-msg")
		}
	}
	want := []string{"transitional-config", "old-msg", "old-msg", "regular-config"}
	if len(kinds) != len(want) {
		t.Fatalf("event order = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("event order = %v, want %v", kinds, want)
		}
	}
	if m.state != StateOperational || m.old != nil {
		t.Fatalf("state=%v old=%v after completion", m.state, m.old)
	}
}

func TestMergeDetectIgnoredFromOwnRing(t *testing.T) {
	m, _, _ := operationalMachine(t, 2)
	m.onMergeDetect(0, &wire.MergeDetect{Ring: m.ring, Sender: 1})
	if m.state != StateOperational {
		t.Fatal("own-ring advertisement triggered gather")
	}
	m.onMergeDetect(0, &wire.MergeDetect{Ring: proto.RingID{Rep: 9, Epoch: 9}, Sender: 9})
	if m.state != StateGather {
		t.Fatal("foreign advertisement did not trigger gather")
	}
}

func TestSingletonTransitionDeliversOwnMessagesPastGap(t *testing.T) {
	// Node 2 was operational holding a foreign packet at seq 4 and its own
	// packets at 5 and 7; seq 6 (from node 1) was lost before the ring
	// broke, so the agreed prefix ends at the gap below 4. When node 2
	// falls back to a singleton configuration, extended virtual synchrony
	// still owes it its own messages beyond the gap: 5 and 7 must be
	// delivered transitionally, while the foreign 4 is forfeited with the
	// gap (node 1 is not in the transitional configuration).
	m, _, acts := operationalMachine(t, 2)
	m.rx[4] = mkData(m, 1, 4, "four")
	m.rx[5] = mkData(m, 2, 5, "five")
	m.rx[7] = mkData(m, 2, 7, "seven")
	m.highSeq = 7
	m.snapshotOld()
	m.state = StateGather
	m.procSet = newNodeSet(2)
	acts.Drain()

	m.installSingleton(0)

	if m.state != StateOperational || len(m.members) != 1 {
		t.Fatalf("state=%v members=%v, want operational singleton", m.state, m.members)
	}
	got := drainDeliveries(acts)
	if len(got) != 2 {
		t.Fatalf("deliveries = %v, want own messages 5 and 7", got)
	}
	for i, want := range []struct {
		seq     uint32
		payload string
	}{{5, "five"}, {7, "seven"}} {
		d := got[i]
		if d.Seq != want.seq || string(d.Payload) != want.payload || !d.Transitional || d.Sender != 2 {
			t.Fatalf("delivery %d = %+v, want own seq %d %q transitional", i, d, want.seq, want.payload)
		}
	}
}
