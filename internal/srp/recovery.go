package srp

import (
	"github.com/totem-rrp/totem/internal/proto"
	"github.com/totem-rrp/totem/internal/wire"
)

// beginRecovery installs the pending ring's sequencing state and builds
// the queue of old-ring packets this node is responsible for
// re-broadcasting, encapsulated on the new ring.
//
// Responsibility rule: for each old-ring sequence number above the group's
// minimum all-received-up-to, the lowest-ID member whose ARU covers it
// re-broadcasts; sequence numbers beyond every member's ARU (held only
// partially) are re-broadcast by every holder, with duplicates suppressed
// by the receivers' sequence filters.
func (m *Machine) beginRecovery(now proto.Time, c *wire.CommitToken) {
	m.ring = c.Ring
	ids := make([]proto.NodeID, len(c.Members))
	for i := range c.Members {
		ids[i] = c.Members[i].ID
	}
	m.members = newNodeSet(ids...)
	m.resetRingState()
	m.recQueue = nil
	m.setState(StateRecovery)

	if m.old != nil {
		var group []wire.CommitEntry
		for _, e := range c.Members {
			if e.OldRing == m.old.ring {
				group = append(group, e)
			}
		}
		if len(group) > 0 {
			lowAru := group[0].MyAru
			highAll := group[0].HighSeq
			for _, e := range group[1:] {
				if e.MyAru < lowAru {
					lowAru = e.MyAru
				}
				if e.HighSeq > highAll {
					highAll = e.HighSeq
				}
			}
			for s := lowAru + 1; s <= highAll && s != 0; s++ {
				pkt := m.old.rx[s]
				if pkt == nil {
					continue
				}
				var responsible proto.NodeID
				for _, e := range group {
					if e.MyAru >= s {
						responsible = e.ID
						break // group is in ring (sorted-ID) order
					}
				}
				if responsible != 0 && responsible != m.cfg.ID {
					continue
				}
				copyPkt := *pkt
				copyPkt.Flags &^= wire.FlagRetrans
				data, err := copyPkt.Encode()
				if err != nil {
					continue
				}
				m.recQueue = append(m.recQueue, data)
			}
		}
	}

	// The new ring must produce a token promptly; if it does not, regather.
	m.acts.SetTimer(proto.TimerID{Class: proto.TimerTokenLoss}, m.cfg.TokenLossTimeout)
}

// unwrapRecovery extracts the original old-ring packet from a recovery
// packet and files it into the old-ring receive buffer. Packets from other
// partitions' old rings are dropped: extended virtual synchrony delivers a
// message only to processors that were members of the configuration the
// message was sent in.
func (m *Machine) unwrapRecovery(pkt *wire.DataPacket) {
	if m.old == nil || len(pkt.Chunks) != 1 {
		return
	}
	inner, err := wire.DecodeData(pkt.Chunks[0].Data)
	if err != nil {
		return
	}
	if inner.Ring != m.old.ring || inner.Seq == 0 {
		return
	}
	if inner.Seq <= m.old.deliveredTo || m.old.rx[inner.Seq] != nil {
		return
	}
	m.old.rx[inner.Seq] = inner
}

// completeRecovery finishes the membership change: it cancels the commit
// machinery, delivers the transitional configuration, the recovered
// old-ring messages, and the regular configuration, then returns the
// machine to Operational.
func (m *Machine) completeRecovery(now proto.Time) {
	m.acts.CancelTimer(proto.TimerID{Class: proto.TimerCommitRetransmit})
	m.commitPhase = 0
	m.pendingCommit = nil
	m.lastCommitSent = nil
	m.commitWaiting = false
	m.deliverOldAndInstall(now)
}

// deliverOldAndInstall emits the extended-virtual-synchrony delivery
// sequence for a configuration change: transitional configuration →
// remaining old-ring messages (marked transitional) → regular
// configuration. It leaves the machine Operational.
func (m *Machine) deliverOldAndInstall(now proto.Time) {
	if m.old != nil {
		trans := m.old.members.intersect(m.members)
		m.acts.Config(proto.ConfigChange{
			Ring:         m.ring,
			Members:      trans,
			Transitional: true,
		})
		m.ctr.configChanges.Inc()
		for s := m.old.deliveredTo + 1; ; s++ {
			pkt := m.old.rx[s]
			if pkt == nil {
				break
			}
			m.old.deliveredTo = s
			m.deliverOldPacket(now, s, pkt)
		}
		// The agreed prefix ends at the first gap, but extended virtual
		// synchrony still owes the messages of transitional members beyond
		// it — above all a processor's own messages, which it holds by
		// construction (self-delivery). A gap only forfeits messages from
		// processors outside the transitional configuration; packets from
		// members are delivered in sequence order past it. Without this a
		// node forced through a singleton transition (e.g. after a failed
		// commit round) silently drops its own accepted messages while the
		// rest of the old ring goes on to deliver them.
		for s := m.old.deliveredTo + 1; s <= m.old.high && s != 0; s++ {
			pkt := m.old.rx[s]
			if pkt == nil || !trans.contains(pkt.Sender) {
				continue
			}
			m.deliverOldPacket(now, s, pkt)
		}
		m.old = nil
	}
	m.acts.Config(proto.ConfigChange{
		Ring:         m.ring,
		Members:      m.members.clone(),
		Transitional: false,
	})
	m.ctr.configChanges.Inc()
	// Bulk-lane configuration hooks: partials from departed senders can
	// never complete (the ring does not retransmit across configurations),
	// and local senders must rewind their transfers to the last contiguous
	// acknowledged offset and re-send.
	if dropped := m.bulkRx.Retain(m.members.contains); dropped > 0 {
		m.ctr.bulkRxDropped.Add(uint64(dropped))
	}
	m.acts.Bulk(proto.BulkEvent{Kind: proto.BulkReconfig, Time: now})
	m.setState(StateOperational)
	if m.isRep() {
		// The representative advertises the ring so that partitioned
		// rings discover each other once connectivity heals.
		m.acts.SetTimer(proto.TimerID{Class: proto.TimerMergeDetect}, m.cfg.MergeDetectInterval)
	}
}

// deliverOldPacket delivers one old-ring packet in the transitional
// configuration.
func (m *Machine) deliverOldPacket(now proto.Time, s uint32, pkt *wire.DataPacket) {
	if pkt.Flags&wire.FlagRecovery != 0 {
		// A nested recovery placeholder: its payload belongs to an older
		// configuration that was already delivered when this old ring was
		// installed.
		return
	}
	for _, c := range pkt.Chunks {
		msg, ok := m.old.asm.Add(pkt.Sender, c)
		if !ok {
			continue
		}
		if c.Flags&wire.ChunkBulk != 0 {
			// Transitional bulk chunks still feed the receiver (and still
			// acknowledge the sender's own chunks): among transitional
			// members delivery is uniform, so prefix state stays agreed.
			m.onBulkMessage(now, m.old.ring, pkt.Sender, s, msg, true)
			continue
		}
		m.ctr.msgsDelivered.Inc()
		m.ctr.bytesDelivered.Add(uint64(len(msg)))
		m.acts.Deliver(proto.Delivery{
			Ring:         m.old.ring,
			Sender:       pkt.Sender,
			Seq:          s,
			Payload:      msg,
			Transitional: true,
		})
	}
}

// sendMergeDetect broadcasts the ring advertisement.
func (m *Machine) sendMergeDetect() {
	md := &wire.MergeDetect{Ring: m.ring, Sender: m.cfg.ID}
	data, err := md.Encode()
	if err != nil {
		return
	}
	m.out.Broadcast(data)
}

// onMergeDetect reacts to another ring's advertisement: an operational
// node hearing a foreign ring starts the membership protocol so the rings
// merge.
func (m *Machine) onMergeDetect(now proto.Time, md *wire.MergeDetect) {
	if md.Sender == m.cfg.ID || md.Ring == m.ring {
		return
	}
	if md.Ring.Epoch > m.maxEpoch {
		m.maxEpoch = md.Ring.Epoch
	}
	if m.state == StateOperational {
		m.enterGather(now, newNodeSet(md.Sender), nil)
	}
}
