package srp

import (
	"time"

	"github.com/totem-rrp/totem/internal/proto"
	"github.com/totem-rrp/totem/internal/wire"
)

// The membership protocol follows the Totem SRP design (paper §2; Amir et
// al. 1995): a node that loses the token (or hears a join) enters Gather
// and broadcasts join messages carrying its proc and fail sets; when every
// reachable processor advertises identical sets, consensus is reached and
// the representative (smallest ID) circulates a commit token around the
// proposed ring — the first pass collects each member's old-ring state,
// the second pass moves everyone into Recovery, where old-ring messages
// are exchanged on the new ring before the configuration is installed
// with extended-virtual-synchrony delivery guarantees.

// enterGather moves the machine into the Gather state. extraProc and
// extraFail fold in information from a triggering join; both may be nil.
func (m *Machine) enterGather(now proto.Time, extraProc, extraFail nodeSet) {
	switch m.state {
	case StateOperational:
		m.snapshotOld()
		m.procSet = newNodeSet(m.cfg.ID).union(m.members)
		m.failSet = nil
	case StateIdle:
		m.procSet = newNodeSet(m.cfg.ID)
		m.failSet = nil
	case StateGather, StateCommit, StateRecovery:
		// Keep the sets accumulated in this membership episode.
		if m.state == StateCommit || m.state == StateRecovery {
			m.abortPending()
		}
		m.procSet = m.procSet.add(m.cfg.ID)
	}
	m.procSet = m.procSet.union(extraProc)
	m.failSet = m.failSet.union(extraFail)
	m.cancelOperationalTimers()
	m.acts.CancelTimer(proto.TimerID{Class: proto.TimerCommitRetransmit})
	m.setState(StateGather)
	m.joinsSeen = map[proto.NodeID]bool{m.cfg.ID: true}
	m.consensus = map[proto.NodeID]bool{m.cfg.ID: true}
	m.sendJoin()
	m.acts.SetTimer(proto.TimerID{Class: proto.TimerJoin}, m.cfg.JoinInterval)
	m.acts.SetTimer(proto.TimerID{Class: proto.TimerConsensus}, m.cfg.ConsensusTimeout)
	m.checkConsensus(now, false)
}

// snapshotOld preserves the operational ring's state for recovery.
func (m *Machine) snapshotOld() {
	m.old = &oldRing{
		ring:        m.ring,
		members:     m.members.clone(),
		rx:          m.rx,
		aru:         m.myAru,
		high:        m.highSeq,
		deliveredTo: m.deliveredTo,
		asm:         m.asm,
	}
	m.rx = make(map[uint32]*wire.DataPacket)
	m.asm = wire.NewAssembler()
}

// abortPending discards an uncommitted configuration attempt; the old-ring
// snapshot (if any) is retained for the next recovery.
func (m *Machine) abortPending() {
	m.commitPhase = 0
	m.pendingCommit = nil
	m.lastCommitSent = nil
	m.commitDest = 0
	m.commitRetries = 0
	m.commitWaiting = false
	m.recQueue = nil
	m.acts.CancelTimer(proto.TimerID{Class: proto.TimerCommitRetransmit})
}

// sendJoin broadcasts the current proc and fail sets.
func (m *Machine) sendJoin() {
	j := &wire.JoinPacket{
		Sender:  m.cfg.ID,
		RingSeq: m.maxEpoch,
		ProcSet: m.procSet,
		FailSet: m.failSet,
	}
	data, err := j.Encode()
	if err != nil {
		return // sets exceed wire caps; nothing sensible to do
	}
	m.out.Broadcast(data)
}

// onJoin processes a join message in any state.
func (m *Machine) onJoin(now proto.Time, j *wire.JoinPacket) {
	if j.Sender == m.cfg.ID {
		return // our own join echoed back through a redundant network
	}
	if j.RingSeq < m.joinEpoch[j.Sender] {
		// Stale copy from an episode the sender has since concluded (its
		// epoch advanced when it installed a ring). Its proc and fail sets
		// describe a dead round; merging them would poison the current one.
		return
	}
	m.joinEpoch[j.Sender] = j.RingSeq
	if j.RingSeq > m.maxEpoch {
		m.maxEpoch = j.RingSeq
	}
	jProc := newNodeSet(j.ProcSet...).add(j.Sender)
	jFail := newNodeSet(j.FailSet...)
	if jFail.contains(m.cfg.ID) {
		// The sender is forming a configuration that excludes us. We can
		// never agree to a fail set containing ourselves (adopting it is
		// what would livelock two singletons failing each other), so we
		// part ways: ignore the round if we are operational, and treat
		// the split as mutual if we are mid-gather — the two rings merge
		// in a later, fresh episode.
		if m.state == StateOperational || m.state == StateIdle {
			return
		}
		jFail = jFail.minus(newNodeSet(m.cfg.ID)).add(j.Sender)
	}

	switch m.state {
	case StateIdle:
		return
	case StateOperational:
		// Stale duplicates from the round that formed the current ring
		// carry an epoch below ours; a member advertising our epoch (or
		// a stranger) genuinely wants a new configuration.
		if m.members.contains(j.Sender) && j.RingSeq < m.ring.Epoch {
			return
		}
		m.enterGather(now, jProc, jFail)
		m.mergeJoin(now, j, jProc, jFail)
	case StateCommit, StateRecovery:
		// Ignore joins that add nothing beyond the gather round that led
		// here — they are duplicates still in flight.
		known := m.procSet.union(m.failSet)
		if known.containsAll(jProc) && m.failSet.containsAll(jFail) {
			return
		}
		m.enterGather(now, jProc, jFail)
		m.mergeJoin(now, j, jProc, jFail)
	case StateGather:
		m.mergeJoin(now, j, jProc, jFail)
	}
}

// mergeJoin folds a join into the gather state and re-evaluates consensus.
func (m *Machine) mergeJoin(now proto.Time, j *wire.JoinPacket, jProc, jFail nodeSet) {
	if m.state != StateGather {
		return // enterGather may have short-circuited into a ring
	}
	newInfo := !m.procSet.containsAll(jProc) || !m.failSet.containsAll(jFail)
	if newInfo {
		m.procSet = m.procSet.union(jProc)
		m.failSet = m.failSet.union(jFail)
		m.consensus = map[proto.NodeID]bool{m.cfg.ID: true}
		m.sendJoin()
		m.acts.SetTimer(proto.TimerID{Class: proto.TimerConsensus}, m.cfg.ConsensusTimeout)
	}
	m.joinsSeen[j.Sender] = true
	m.consensus[j.Sender] = jProc.equal(m.procSet) && jFail.equal(m.failSet)
	m.checkConsensus(now, false)
}

// onConsensusTimeout declares every processor that has not reached
// consensus with us — silent or still disagreeing — failed, and retries
// the round with the remainder. A processor that crashed mid-round (after
// sending joins) is caught here just like one that never answered.
func (m *Machine) onConsensusTimeout(now proto.Time) {
	var failed nodeSet
	for _, p := range m.procSet.minus(m.failSet) {
		if !m.consensus[p] {
			failed = failed.add(p)
		}
	}
	if len(failed) > 0 {
		m.failSet = m.failSet.union(failed)
		m.consensus = map[proto.NodeID]bool{m.cfg.ID: true}
	}
	m.sendJoin()
	m.acts.SetTimer(proto.TimerID{Class: proto.TimerConsensus}, m.cfg.ConsensusTimeout)
	m.checkConsensus(now, true)
}

// checkConsensus installs a singleton, creates the commit token (as
// representative) or waits for it (as member) once every reachable
// processor advertises identical sets. timedOut is true when the call
// comes from the consensus timer rather than from a received join.
func (m *Machine) checkConsensus(now proto.Time, timedOut bool) {
	cands := m.procSet.minus(m.failSet)
	if !cands.contains(m.cfg.ID) {
		// Defensive: our own fail set should never contain us, but if it
		// does, restart the round alone and wait out a consensus period
		// rather than installing rings in a tight loop.
		m.procSet = newNodeSet(m.cfg.ID)
		m.failSet = nil
		m.joinsSeen = map[proto.NodeID]bool{m.cfg.ID: true}
		m.consensus = map[proto.NodeID]bool{m.cfg.ID: true}
		m.sendJoin()
		m.acts.SetTimer(proto.TimerID{Class: proto.TimerConsensus}, m.cfg.ConsensusTimeout)
		return
	}
	for _, p := range cands {
		if !m.consensus[p] {
			return
		}
	}
	if len(cands) == 1 && len(m.procSet) > 1 && !timedOut {
		// Everyone else we know of is in the fail set, typically because a
		// burst of joins carried mutual grudges. Installing the singleton
		// right here would mint a new ring — and a fresh wave of joins —
		// at packet cadence, which under sustained join traffic degenerates
		// into cluster-wide singleton churn thousands of times per second.
		// Hold the episode open until the consensus timer expires instead:
		// the pause absorbs in-flight joins, lets quieter rounds win, and
		// paces worst-case reformations at the consensus timeout.
		return
	}
	m.acts.CancelTimer(proto.TimerID{Class: proto.TimerJoin})
	m.acts.CancelTimer(proto.TimerID{Class: proto.TimerConsensus})
	if len(cands) == 1 {
		m.installSingleton(now)
		return
	}
	if cands[0] == m.cfg.ID {
		m.createCommit(now, cands)
		return
	}
	// Wait for the representative's commit token, bounded by the full
	// retry budget.
	m.setState(StateCommit)
	m.commitWaiting = true
	m.lastCommitSent = nil
	m.commitRetries = 0
	wait := time.Duration(m.cfg.CommitRetransmitLimit) * m.cfg.CommitRetransmitInterval
	m.acts.SetTimer(proto.TimerID{Class: proto.TimerCommitRetransmit}, wait)
}

// createCommit mints the new ring and starts the commit token around it.
func (m *Machine) createCommit(now proto.Time, cands nodeSet) {
	m.maxEpoch++
	ring := proto.RingID{Rep: m.cfg.ID, Epoch: m.maxEpoch}
	entries := make([]wire.CommitEntry, len(cands))
	for i, p := range cands {
		entries[i] = wire.CommitEntry{ID: p}
	}
	c := &wire.CommitToken{Ring: ring, Members: entries}
	m.fillCommitEntry(&c.Members[0])
	c.Members[0].Visits = 1
	m.pendingCommit = c
	m.commitPhase = 1
	m.setState(StateCommit)
	m.commitWaiting = false
	m.forwardCommit(c, 0)
}

// fillCommitEntry records our old-ring position in our commit slot.
func (m *Machine) fillCommitEntry(e *wire.CommitEntry) {
	if m.old != nil {
		e.OldRing = m.old.ring
		e.MyAru = m.old.aru
		e.HighSeq = m.old.high
	}
}

// forwardCommit unicasts the commit token to the next member and arms the
// retransmission timer.
func (m *Machine) forwardCommit(c *wire.CommitToken, myIdx int) {
	dest := c.Members[(myIdx+1)%len(c.Members)].ID
	data, err := c.Encode()
	if err != nil {
		return
	}
	m.out.Unicast(dest, data)
	m.lastCommitSent = data
	m.commitDest = dest
	m.commitRetries = 0
	m.acts.SetTimer(proto.TimerID{Class: proto.TimerCommitRetransmit}, m.cfg.CommitRetransmitInterval)
}

// onCommitTimeout retries the commit token and ultimately declares the
// successor (or the silent representative) failed.
func (m *Machine) onCommitTimeout(now proto.Time) {
	if m.commitWaiting {
		// The representative never delivered a commit token.
		cands := m.procSet.minus(m.failSet)
		var rep nodeSet
		if len(cands) > 0 && cands[0] != m.cfg.ID {
			rep = newNodeSet(cands[0])
		}
		m.enterGather(now, nil, rep)
		return
	}
	if m.lastCommitSent == nil {
		return
	}
	m.commitRetries++
	if m.commitRetries >= m.cfg.CommitRetransmitLimit {
		m.enterGather(now, nil, newNodeSet(m.commitDest))
		return
	}
	m.out.Unicast(m.commitDest, m.lastCommitSent)
	m.acts.SetTimer(proto.TimerID{Class: proto.TimerCommitRetransmit}, m.cfg.CommitRetransmitInterval)
}

// onCommit processes a commit token.
func (m *Machine) onCommit(now proto.Time, c *wire.CommitToken) {
	if c.Ring.Epoch > m.maxEpoch {
		m.maxEpoch = c.Ring.Epoch
	}
	idx := -1
	for i := range c.Members {
		if c.Members[i].ID == m.cfg.ID {
			idx = i
			break
		}
	}
	if idx < 0 {
		return // not our ring
	}
	if m.state != StateGather && m.state != StateCommit && m.state != StateRecovery {
		return
	}
	e := &c.Members[idx]
	if m.pendingCommit != nil && c.Ring == m.pendingCommit.Ring {
		if e.Visits < m.commitPhase {
			return // duplicate copy of an earlier pass
		}
	} else if m.pendingCommit != nil {
		if !m.pendingCommit.Ring.Less(c.Ring) {
			return // older attempt still in flight elsewhere
		}
		if m.state == StateRecovery || m.state == StateCommit {
			m.abortPending()
		}
	}

	switch {
	case e.Visits == 0:
		m.fillCommitEntry(e)
		e.Visits = 1
		m.pendingCommit = c
		m.commitPhase = 1
		m.setState(StateCommit)
		m.commitWaiting = false
		m.acts.CancelTimer(proto.TimerID{Class: proto.TimerJoin})
		m.acts.CancelTimer(proto.TimerID{Class: proto.TimerConsensus})
		m.forwardCommit(c, idx)
	case e.Visits == 1:
		e.Visits = 2
		m.pendingCommit = c
		m.commitPhase = 2
		m.beginRecovery(now, c)
		m.forwardCommit(c, idx)
	default:
		// Third arrival at the representative: the whole ring is in
		// Recovery; emit the first ring token.
		if m.cfg.ID == c.Ring.Rep && m.commitPhase == 2 &&
			m.pendingCommit != nil && c.Ring == m.pendingCommit.Ring {
			m.commitPhase = 3
			m.sendFirstToken(now)
		}
	}
}

// installSingleton forms a ring containing only this node.
func (m *Machine) installSingleton(now proto.Time) {
	m.abortPending()
	m.maxEpoch++
	m.ring = proto.RingID{Rep: m.cfg.ID, Epoch: m.maxEpoch}
	m.members = newNodeSet(m.cfg.ID)
	m.resetRingState()
	m.deliverOldAndInstall(now)
	if !m.packer.Empty() {
		m.flushSingleton(now)
	}
}
