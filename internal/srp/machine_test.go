package srp

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/totem-rrp/totem/internal/proto"
	"github.com/totem-rrp/totem/internal/wire"
)

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
		want   error
	}{
		{"default ok", func(c *Config) {}, nil},
		{"zero id", func(c *Config) { c.ID = 0 }, ErrBadID},
		{"bad delivery", func(c *Config) { c.Delivery = 0 }, ErrBadConfig},
		{"zero window", func(c *Config) { c.WindowSize = 0 }, ErrBadConfig},
		{"visit over window", func(c *Config) { c.MaxPerVisit = c.WindowSize + 1 }, ErrBadConfig},
		{"zero queue", func(c *Config) { c.MaxQueued = 0 }, ErrBadConfig},
		{"zero token loss", func(c *Config) { c.TokenLossTimeout = 0 }, ErrBadConfig},
		{"retransmit >= loss", func(c *Config) { c.TokenRetransmitInterval = c.TokenLossTimeout }, ErrBadConfig},
		{"zero commit limit", func(c *Config) { c.CommitRetransmitLimit = 0 }, ErrBadConfig},
		{"safe ok", func(c *Config) { c.Delivery = DeliverSafe }, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig(1)
			tc.mutate(&cfg)
			err := cfg.Validate()
			if tc.want == nil && err != nil {
				t.Fatalf("Validate: %v", err)
			}
			if tc.want != nil && !errors.Is(err, tc.want) {
				t.Fatalf("Validate = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestNewMachineRejectsNilDeps(t *testing.T) {
	if _, err := NewMachine(DefaultConfig(1), nil, &proto.Actions{}); err == nil {
		t.Fatal("nil outbound accepted")
	}
}

func TestTokenKeyNewer(t *testing.T) {
	cases := []struct {
		a, b tokenKey
		want bool
	}{
		{tokenKey{1, 0}, tokenKey{0, 0}, true},
		{tokenKey{0, 1}, tokenKey{0, 0}, true},
		{tokenKey{0, 0}, tokenKey{0, 0}, false},
		{tokenKey{0, 0}, tokenKey{1, 0}, false},
		{tokenKey{5, 2}, tokenKey{5, 3}, false},
		{tokenKey{6, 0}, tokenKey{5, 9}, true},
	}
	for _, tc := range cases {
		if got := tc.a.newer(tc.b); got != tc.want {
			t.Errorf("%v.newer(%v) = %v", tc.a, tc.b, got)
		}
	}
}

func TestAddClamped(t *testing.T) {
	cases := []struct {
		base, add, sub, want uint32
	}{
		{10, 5, 3, 12},
		{10, 0, 15, 0}, // clamps at zero
		{0, 0, 0, 0},
		{0, 7, 0, 7},
	}
	for _, tc := range cases {
		if got := addClamped(tc.base, tc.add, tc.sub); got != tc.want {
			t.Errorf("addClamped(%d,%d,%d) = %d, want %d", tc.base, tc.add, tc.sub, got, tc.want)
		}
	}
}

// aruMachine builds a machine with the given received-up-to state.
func aruMachine(t *testing.T, id proto.NodeID, aru uint32) *Machine {
	t.Helper()
	m, err := NewMachine(DefaultConfig(id), (*hOut)(&hNode{}), &proto.Actions{})
	if err != nil {
		t.Fatal(err)
	}
	m.myAru = aru
	return m
}

func TestUpdateARUConvergesToMinimum(t *testing.T) {
	// Three nodes: node 3 is missing messages (aru 4); 1 and 2 are caught
	// up at seq 10. Over two rotations the token ARU must equal 4.
	tok := &wire.Token{Seq: 10, ARU: 10}
	aruMachine(t, 1, 10).updateARU(tok)
	if tok.ARU != 10 || tok.ARUID != 0 {
		t.Fatalf("after full node: %+v", tok)
	}
	aruMachine(t, 3, 4).updateARU(tok)
	if tok.ARU != 4 || tok.ARUID != 3 {
		t.Fatalf("after lagging node: %+v", tok)
	}
	aruMachine(t, 1, 10).updateARU(tok)
	if tok.ARU != 4 {
		t.Fatalf("full node overwrote lagging aru: %+v", tok)
	}
	// Node 3 catches up: on its next visit it raises the ARU again.
	tok.Seq = 12
	aruMachine(t, 3, 12).updateARU(tok)
	if tok.ARU != 12 || tok.ARUID != 0 {
		t.Fatalf("recovered node did not release aru: %+v", tok)
	}
}

func TestUpdateARUTwoLaggards(t *testing.T) {
	tok := &wire.Token{Seq: 10, ARU: 10}
	aruMachine(t, 2, 7).updateARU(tok)
	if tok.ARU != 7 || tok.ARUID != 2 {
		t.Fatalf("%+v", tok)
	}
	aruMachine(t, 3, 4).updateARU(tok)
	if tok.ARU != 4 || tok.ARUID != 3 {
		t.Fatalf("lower laggard did not take over: %+v", tok)
	}
	// Node 2, still at 7, must not raise the ARU above node 3's 4.
	aruMachine(t, 2, 7).updateARU(tok)
	if tok.ARU != 4 {
		t.Fatalf("aru raised above the minimum: %+v", tok)
	}
}

// --- loopback-harness protocol tests ---

func TestHarnessRingFormsAndDelivers(t *testing.T) {
	h := newHarness(t, 3, nil)
	h.start()
	h.waitRing(3 * time.Second)
	for i := 0; i < 10; i++ {
		for _, id := range h.order {
			if !h.submit(id, []byte(fmt.Sprintf("%v#%d", id, i))) {
				t.Fatalf("submit rejected")
			}
		}
	}
	ok := h.runUntil(func() bool {
		for _, id := range h.order {
			if len(h.machines[id].delivered) < 30 {
				return false
			}
		}
		return true
	}, 3*time.Second)
	if !ok {
		t.Fatalf("messages not all delivered")
	}
	ref := h.machines[1].delivered
	for _, id := range h.order[1:] {
		got := h.machines[id].delivered
		for i := range ref {
			if !bytes.Equal(ref[i].Payload, got[i].Payload) {
				t.Fatalf("order mismatch at %d", i)
			}
		}
	}
}

func TestRetransmissionRecoversDroppedPacket(t *testing.T) {
	h := newHarness(t, 3, nil)
	h.start()
	h.waitRing(3 * time.Second)

	// Drop the first copy of node 2's first data packet to node 3.
	dropped := false
	h.drop = func(from, to proto.NodeID, data []byte) bool {
		if dropped || from != 2 || to != 3 {
			return false
		}
		if k, err := wire.PeekKind(data); err != nil || k != wire.KindData {
			return false
		}
		dropped = true
		return true
	}
	h.submit(2, []byte("hello"))
	ok := h.runUntil(func() bool {
		return len(h.machines[3].delivered) == 1
	}, 2*time.Second)
	if !ok {
		t.Fatal("node 3 never recovered the dropped packet")
	}
	if !dropped {
		t.Fatal("test did not actually drop anything")
	}
	if h.machines[3].m.Stats().RetransRequested == 0 {
		t.Fatal("no retransmission was requested")
	}
	st1, st2 := h.machines[1].m.Stats(), h.machines[2].m.Stats()
	if st1.Retransmissions+st2.Retransmissions == 0 {
		t.Fatal("nobody served the retransmission")
	}
}

func TestRetransmissionServedOnceForTwoMissingNodes(t *testing.T) {
	// Paper §2: if nodes A and B miss the same message, a single
	// retransmission serves both.
	h := newHarness(t, 4, nil)
	h.start()
	h.waitRing(3 * time.Second)
	n := 0
	h.drop = func(from, to proto.NodeID, data []byte) bool {
		if from != 2 {
			return false
		}
		if k, err := wire.PeekKind(data); err != nil || k != wire.KindData {
			return false
		}
		if (to == 3 || to == 4) && n < 2 {
			n++
			return true
		}
		return false
	}
	h.submit(2, []byte("shared-loss"))
	ok := h.runUntil(func() bool {
		return len(h.machines[3].delivered) == 1 && len(h.machines[4].delivered) == 1
	}, 2*time.Second)
	if !ok {
		t.Fatal("missing nodes never recovered")
	}
	total := uint64(0)
	for _, id := range h.order {
		total += h.machines[id].m.Stats().Retransmissions
	}
	if total != 1 {
		t.Fatalf("retransmissions = %d, want exactly 1", total)
	}
}

func TestTokenLossTriggersMembership(t *testing.T) {
	h := newHarness(t, 3, nil)
	h.start()
	h.waitRing(3 * time.Second)
	ringBefore := h.machines[1].m.Ring()

	// Crash node 3: the ring must reform with members {1,2}.
	h.machines[3].crashed = true
	ok := h.runUntil(func() bool {
		m1, m2 := h.machines[1].m, h.machines[2].m
		return m1.State() == StateOperational && m2.State() == StateOperational &&
			len(m1.Members()) == 2 && len(m2.Members()) == 2 && m1.Ring() == m2.Ring()
	}, 3*time.Second)
	if !ok {
		t.Fatalf("ring did not reform after crash: n1=%v n2=%v",
			h.machines[1].m.State(), h.machines[2].m.State())
	}
	if h.machines[1].m.Ring() == ringBefore {
		t.Fatal("ring id unchanged after membership change")
	}
	if h.machines[1].m.Stats().TokenLosses == 0 && h.machines[2].m.Stats().TokenLosses == 0 {
		t.Fatal("no token loss recorded")
	}
	// Extended virtual synchrony: a transitional configuration must have
	// been delivered before the regular one.
	cfgs := h.machines[1].configs
	if len(cfgs) < 2 {
		t.Fatalf("configs = %v", cfgs)
	}
	last, prev := cfgs[len(cfgs)-1], cfgs[len(cfgs)-2]
	if last.Transitional || !prev.Transitional {
		t.Fatalf("want transitional then regular, got %v then %v", prev, last)
	}
	if len(last.Members) != 2 {
		t.Fatalf("final membership %v", last.Members)
	}
}

func TestMessagesSurviveMembershipChange(t *testing.T) {
	// Messages in flight when a node dies must still reach all survivors
	// (delivered in the transitional configuration if necessary).
	h := newHarness(t, 4, nil)
	h.start()
	h.waitRing(3 * time.Second)
	for i := 0; i < 20; i++ {
		h.submit(1, []byte(fmt.Sprintf("pre-crash-%d", i)))
	}
	h.run(2 * time.Millisecond) // let a few packets fly
	h.machines[4].crashed = true
	ok := h.runUntil(func() bool {
		for _, id := range []proto.NodeID{1, 2, 3} {
			if len(h.machines[id].delivered) < 20 {
				return false
			}
		}
		return true
	}, 3*time.Second)
	if !ok {
		for _, id := range []proto.NodeID{1, 2, 3} {
			t.Logf("node %v delivered %d", id, len(h.machines[id].delivered))
		}
		t.Fatal("survivors did not deliver all pre-crash messages")
	}
	// All survivors must have delivered identical sequences.
	ref := h.machines[1].delivered
	for _, id := range []proto.NodeID{2, 3} {
		got := h.machines[id].delivered
		if len(got) != len(ref) {
			t.Fatalf("node %v delivered %d, node 1 delivered %d", id, len(got), len(ref))
		}
		for i := range ref {
			if !bytes.Equal(ref[i].Payload, got[i].Payload) {
				t.Fatalf("divergence at %d: %q vs %q", i, ref[i].Payload, got[i].Payload)
			}
		}
	}
}

func TestRejoinAfterCrash(t *testing.T) {
	h := newHarness(t, 3, nil)
	h.start()
	h.waitRing(3 * time.Second)
	h.machines[2].crashed = true
	ok := h.runUntil(func() bool {
		return len(h.machines[1].m.Members()) == 2 &&
			h.machines[1].m.State() == StateOperational
	}, 3*time.Second)
	if !ok {
		t.Fatal("ring did not shrink")
	}
	// Node 2 comes back (fresh instance, same ID).
	var acts proto.Actions
	hn := h.machines[2]
	hn.crashed = false
	hn.acts = acts
	hn.timers = make(map[proto.TimerID]uint64)
	m, err := NewMachine(DefaultConfig(2), (*hOut)(hn), &hn.acts)
	if err != nil {
		t.Fatal(err)
	}
	hn.m = m
	hn.delivered = nil
	hn.configs = nil
	h.at(h.now, func() { hn.m.Start(h.now); hn.drain() })
	h.waitRing(5 * time.Second)
	if got := h.machines[1].m.Members(); len(got) != 3 {
		t.Fatalf("members after rejoin = %v", got)
	}
}

func TestFragmentedMessageAcrossRing(t *testing.T) {
	h := newHarness(t, 3, nil)
	h.start()
	h.waitRing(3 * time.Second)
	big := make([]byte, 5000)
	for i := range big {
		big[i] = byte(i * 7)
	}
	h.submit(2, append([]byte(nil), big...))
	ok := h.runUntil(func() bool {
		return len(h.machines[3].delivered) == 1
	}, 2*time.Second)
	if !ok {
		t.Fatal("fragmented message never delivered")
	}
	if !bytes.Equal(h.machines[3].delivered[0].Payload, big) {
		t.Fatal("fragmented payload corrupted")
	}
}

func TestSafeDeliveryWaitsForFullRing(t *testing.T) {
	h := newHarness(t, 3, func(c *Config) { c.Delivery = DeliverSafe })
	h.start()
	h.waitRing(3 * time.Second)
	h.submit(1, []byte("must-be-safe"))
	ok := h.runUntil(func() bool {
		for _, id := range h.order {
			if len(h.machines[id].delivered) != 1 {
				return false
			}
		}
		return true
	}, 3*time.Second)
	if !ok {
		t.Fatal("safe delivery never completed")
	}
}

func TestSafeDeliveryHorizonNeverExceedsAru(t *testing.T) {
	h := newHarness(t, 3, func(c *Config) { c.Delivery = DeliverSafe })
	h.start()
	h.waitRing(3 * time.Second)
	for i := 0; i < 50; i++ {
		h.submit(proto.NodeID(1+i%3), []byte("x"))
	}
	h.run(500 * time.Millisecond)
	for _, id := range h.order {
		m := h.machines[id].m
		if m.safeTo > m.myAru {
			t.Fatalf("node %v: safeTo %d > myAru %d", id, m.safeTo, m.myAru)
		}
	}
}

func TestFlowControlBoundsInFlight(t *testing.T) {
	h := newHarness(t, 3, func(c *Config) {
		c.WindowSize = 10
		c.MaxPerVisit = 4
		c.MaxQueued = 4096
	})
	h.start()
	h.waitRing(3 * time.Second)
	for i := 0; i < 500; i++ {
		h.submit(proto.NodeID(1+i%3), []byte("payload"))
	}
	h.run(200 * time.Millisecond)
	for _, id := range h.order {
		m := h.machines[id].m
		if inFlight := m.highSeq - m.safeTo; inFlight > 2*10 {
			t.Fatalf("node %v: %d packets beyond safe horizon exceeds window slack", id, inFlight)
		}
	}
}

func TestSubmitBackpressure(t *testing.T) {
	h := newHarness(t, 1, func(c *Config) { c.MaxQueued = 4 })
	// Not started: submissions rejected.
	if h.machines[1].m.Submit(0, []byte("x")) {
		t.Fatal("submit accepted before Start")
	}
	h.start()
	h.run(50 * time.Millisecond)
	// Singleton drains instantly, so force the queue full via a 2-node
	// ring with one crashed peer (no token → queue builds).
	h2 := newHarness(t, 2, func(c *Config) { c.MaxQueued = 4 })
	h2.start()
	h2.waitRing(3 * time.Second)
	h2.machines[2].crashed = true
	accepted := 0
	for i := 0; i < 100; i++ {
		if h2.submit(1, []byte("x")) {
			accepted++
		}
	}
	if accepted > 8 {
		t.Fatalf("accepted %d submissions with a dead ring and MaxQueued=4", accepted)
	}
}

func TestDuplicateFilter(t *testing.T) {
	h := newHarness(t, 3, nil)
	h.start()
	h.waitRing(3 * time.Second)
	// Duplicate every data packet in flight: deliveries must not repeat.
	h.drop = nil
	orig := h.post
	_ = orig
	h.submit(1, []byte("only-once"))
	// Run and then re-inject by crafting a duplicate via stats check: the
	// loopback harness cannot easily duplicate, so assert via Duplicates
	// counter after a retransmission-free run instead.
	h.run(100 * time.Millisecond)
	for _, id := range h.order {
		if n := len(h.machines[id].delivered); n != 1 {
			t.Fatalf("node %v delivered %d copies", id, n)
		}
	}
}

func TestPartitionFormsTwoRingsAndMerges(t *testing.T) {
	h := newHarness(t, 4, nil)
	h.start()
	h.waitRing(3 * time.Second)

	// Partition {1,2} | {3,4}.
	part := func(from, to proto.NodeID, data []byte) bool {
		a := from <= 2
		b := to <= 2
		return a != b
	}
	h.drop = part
	ok := h.runUntil(func() bool {
		m1, m3 := h.machines[1].m, h.machines[3].m
		return m1.State() == StateOperational && len(m1.Members()) == 2 &&
			m3.State() == StateOperational && len(m3.Members()) == 2
	}, 5*time.Second)
	if !ok {
		t.Fatalf("partition did not split into two rings: n1=%v(%d) n3=%v(%d)",
			h.machines[1].m.State(), len(h.machines[1].m.Members()),
			h.machines[3].m.State(), len(h.machines[3].m.Members()))
	}

	// Each side makes progress independently.
	h.submit(1, []byte("side-A"))
	h.submit(3, []byte("side-B"))
	h.run(100 * time.Millisecond)
	if len(h.machines[2].delivered) == 0 || len(h.machines[4].delivered) == 0 {
		t.Fatal("partitioned sides did not deliver")
	}

	// Heal: the four nodes must merge into one ring again.
	h.drop = nil
	ok = h.runUntil(func() bool {
		for _, id := range h.order {
			m := h.machines[id].m
			if m.State() != StateOperational || len(m.Members()) != 4 {
				return false
			}
		}
		return true
	}, 5*time.Second)
	if !ok {
		t.Fatal("partition did not merge after healing")
	}
}
