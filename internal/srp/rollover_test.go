package srp

import (
	"errors"
	"testing"

	"github.com/totem-rrp/totem/internal/proto"
	"github.com/totem-rrp/totem/internal/wire"
)

func TestSeqRolloverRepReformsRing(t *testing.T) {
	// The representative must retire the ring once the token sequence
	// number reaches the documented limit, before any uint32 comparison
	// could wrap.
	m, _, acts := operationalMachine(t, 1) // id 1 == rep of {1,2,3}
	m.cfg.SeqRollover = 1000
	var probes []proto.ProbeEvent
	acts.SetProbe(func(e proto.ProbeEvent) { probes = append(probes, e) })
	m.myAru = 1000
	m.onToken(0, &wire.Token{Ring: m.ring, Seq: 1000, ARU: 1000})
	if m.state != StateGather {
		t.Fatalf("state = %v, want gather after hitting the rollover limit", m.state)
	}
	var roll []proto.ProbeEvent
	for _, e := range probes {
		if e.Code == proto.ProbeSeqRollover {
			roll = append(roll, e)
		}
	}
	if len(roll) != 1 || roll[0].A != 1000 || roll[0].B != 1000 {
		t.Fatalf("rollover probes = %+v, want one with seq 1000 limit 1000", roll)
	}
}

func TestSeqRolloverNonRepLeavesTriggeringToTheRep(t *testing.T) {
	// Only the representative reforms, so the ring does not collapse into
	// N simultaneous Gather rounds.
	m, out, _ := operationalMachine(t, 2)
	m.cfg.SeqRollover = 1000
	m.myAru = 1000
	m.onToken(0, &wire.Token{Ring: m.ring, Seq: 1000, ARU: 1000})
	if m.state != StateOperational {
		t.Fatalf("state = %v, want a non-rep to keep operating", m.state)
	}
	if len(out.unicasts) == 0 {
		t.Fatal("non-rep did not forward the token")
	}
}

func TestRotationRolloverRepReformsRing(t *testing.T) {
	// An idle ring advances the rotation counter without the sequence
	// number; it gets the same enforced limit.
	m, _, _ := operationalMachine(t, 1)
	m.cfg.SeqRollover = 1000
	m.onToken(0, &wire.Token{Ring: m.ring, Seq: 0, ARU: 0, Rotation: 1000})
	if m.state != StateGather {
		t.Fatalf("state = %v, want gather after rotation limit", m.state)
	}
}

func TestSeqRolloverSingletonFlush(t *testing.T) {
	// A singleton ring has no circulating token, so the flush path carries
	// the check.
	m, _, acts := operationalMachine(t, 1)
	m.cfg.SeqRollover = 1000
	m.members = newNodeSet(1)
	m.ring = proto.RingID{Rep: 1, Epoch: 5}
	m.myAru = 999
	m.highSeq = 999
	m.deliveredTo = 999
	var rolled bool
	acts.SetProbe(func(e proto.ProbeEvent) {
		if e.Code == proto.ProbeSeqRollover {
			rolled = true
		}
	})
	if !m.Submit(0, []byte("tip over the limit")) {
		t.Fatal("submit rejected")
	}
	if !rolled {
		t.Fatal("no rollover probe after singleton flush crossed the limit")
	}
	// Singleton consensus is instantaneous: the machine reforms and lands
	// straight back in Operational on a fresh ring with the sequence space
	// reset.
	if m.state != StateOperational || m.ring.Epoch <= 5 {
		t.Fatalf("state %v ring %+v, want operational on a newer epoch", m.state, m.ring)
	}
	if m.highSeq >= 999 {
		t.Fatalf("highSeq = %d, want sequence space reset", m.highSeq)
	}
}

func TestSeqRolloverBelowLimitUntouched(t *testing.T) {
	m, out, _ := operationalMachine(t, 1)
	m.cfg.SeqRollover = 1000
	m.myAru = 999
	m.onToken(0, &wire.Token{Ring: m.ring, Seq: 999, ARU: 999})
	if m.state != StateOperational {
		t.Fatalf("state = %v, want operational below the limit", m.state)
	}
	if len(out.unicasts) == 0 {
		t.Fatal("token not forwarded")
	}
}

func TestSeqRolloverZeroMeansDefault(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.SeqRollover = 0 // hand-built configs predating the field
	m, err := NewMachine(cfg, &fakeOut{}, &proto.Actions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.cfg.SeqRollover != DefaultSeqRollover {
		t.Fatalf("SeqRollover = %d, want normalised to %d", m.cfg.SeqRollover, DefaultSeqRollover)
	}
}

func TestSeqRolloverValidation(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.SeqRollover = DefaultSeqRollover + 1
	if err := cfg.Validate(); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("oversized limit: err = %v", err)
	}
	cfg.SeqRollover = 4*uint32(cfg.WindowSize) - 1
	if err := cfg.Validate(); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("undersized limit: err = %v", err)
	}
	cfg.SeqRollover = 4 * uint32(cfg.WindowSize)
	if err := cfg.Validate(); err != nil {
		t.Fatalf("minimum limit rejected: %v", err)
	}
}

func TestInitialEpochPreventsRingIDReuse(t *testing.T) {
	// A restarted node seeded with its pre-crash MaxEpoch must mint ring
	// epochs strictly above everything its former incarnation used.
	cfg := DefaultConfig(1)
	cfg.InitialEpoch = 41
	m, err := NewMachine(cfg, &fakeOut{}, &proto.Actions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.MaxEpoch() != 41 {
		t.Fatalf("MaxEpoch = %d, want the seeded 41", m.MaxEpoch())
	}
	m.Start(0)
	m.OnTimer(cfg.ConsensusTimeout, proto.TimerID{Class: proto.TimerConsensus})
	if m.state != StateOperational || m.ring.Epoch <= 41 {
		t.Fatalf("state %v ring %+v, want a singleton ring with epoch > 41", m.state, m.ring)
	}
}
