package srp

import (
	"testing"

	"github.com/totem-rrp/totem/internal/proto"
	"github.com/totem-rrp/totem/internal/wire"
)

// gatherMachine puts a machine into Gather with the given candidate set,
// as if joins had been merged.
func gatherMachine(t *testing.T, id proto.NodeID, procs ...proto.NodeID) (*Machine, *fakeOut, *proto.Actions) {
	t.Helper()
	out := &fakeOut{}
	acts := &proto.Actions{}
	m, err := NewMachine(DefaultConfig(id), out, acts)
	if err != nil {
		t.Fatal(err)
	}
	m.state = StateGather
	m.procSet = newNodeSet(procs...)
	m.joinsSeen = map[proto.NodeID]bool{id: true}
	m.consensus = map[proto.NodeID]bool{id: true}
	return m, out, acts
}

func TestConsensusCreatesCommitAtRepresentative(t *testing.T) {
	m, out, _ := gatherMachine(t, 1, 1, 2, 3)
	for _, p := range []proto.NodeID{2, 3} {
		m.consensus[p] = true
	}
	m.checkConsensus(0, false)
	if m.state != StateCommit || m.commitPhase != 1 {
		t.Fatalf("state=%v phase=%d", m.state, m.commitPhase)
	}
	if len(out.unicasts) != 1 || out.unicasts[0].dest != 2 {
		t.Fatalf("commit token sent to %v, want successor 2", out.unicasts)
	}
	c, err := wire.DecodeCommit(out.unicasts[0].data)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Members) != 3 || c.Members[0].Visits != 1 {
		t.Fatalf("commit token %+v", c)
	}
	if c.Ring.Rep != 1 || c.Ring.Epoch == 0 {
		t.Fatalf("ring id %v", c.Ring)
	}
}

func TestConsensusMemberWaitsForCommit(t *testing.T) {
	m, out, acts := gatherMachine(t, 2, 1, 2, 3)
	for _, p := range []proto.NodeID{1, 3} {
		m.consensus[p] = true
	}
	m.checkConsensus(0, false)
	if m.state != StateCommit || !m.commitWaiting {
		t.Fatalf("state=%v waiting=%v", m.state, m.commitWaiting)
	}
	if len(out.unicasts) != 0 {
		t.Fatal("non-representative sent a commit token")
	}
	// A wait timer must be armed.
	armed := false
	for _, a := range acts.Drain() {
		if st, ok := a.(proto.SetTimer); ok && st.ID.Class == proto.TimerCommitRetransmit {
			armed = true
		}
	}
	if !armed {
		t.Fatal("commit wait timer not armed")
	}
}

func TestCommitWaitTimeoutFailsRepresentative(t *testing.T) {
	m, _, _ := gatherMachine(t, 2, 1, 2, 3)
	for _, p := range []proto.NodeID{1, 3} {
		m.consensus[p] = true
	}
	m.checkConsensus(0, false)
	if !m.commitWaiting {
		t.Fatal("setup: not waiting")
	}
	m.onCommitTimeout(0)
	if m.state != StateGather {
		t.Fatalf("state=%v, want gather after silent representative", m.state)
	}
	if !m.failSet.contains(1) {
		t.Fatalf("failSet=%v, want representative 1 failed", m.failSet)
	}
}

func TestCommitRetransmitExhaustionFailsSuccessor(t *testing.T) {
	m, out, _ := gatherMachine(t, 1, 1, 2, 3)
	for _, p := range []proto.NodeID{2, 3} {
		m.consensus[p] = true
	}
	m.checkConsensus(0, false) // rep sends the commit token to node 2
	sentBefore := len(out.unicasts)
	for i := 0; i < m.cfg.CommitRetransmitLimit-1; i++ {
		m.onCommitTimeout(0)
	}
	if got := len(out.unicasts) - sentBefore; got != m.cfg.CommitRetransmitLimit-1 {
		t.Fatalf("retransmits = %d, want %d", got, m.cfg.CommitRetransmitLimit-1)
	}
	// The final timeout gives up and fails the successor.
	m.onCommitTimeout(0)
	if m.state != StateGather {
		t.Fatalf("state=%v", m.state)
	}
	if !m.failSet.contains(2) {
		t.Fatalf("failSet=%v, want successor 2 failed", m.failSet)
	}
}

func TestCommitTokenFirstPassFillsEntry(t *testing.T) {
	m, out, _ := gatherMachine(t, 2, 1, 2, 3)
	// Simulate an old ring so the entry carries recovery state.
	m.old = &oldRing{
		ring: proto.RingID{Rep: 1, Epoch: 4},
		rx:   map[uint32]*wire.DataPacket{},
		aru:  7, high: 9,
		asm: wire.NewAssembler(),
	}
	c := &wire.CommitToken{
		Ring: proto.RingID{Rep: 1, Epoch: 10},
		Members: []wire.CommitEntry{
			{ID: 1, Visits: 1}, {ID: 2}, {ID: 3},
		},
	}
	m.onCommit(0, c)
	if m.state != StateCommit || m.commitPhase != 1 {
		t.Fatalf("state=%v phase=%d", m.state, m.commitPhase)
	}
	if len(out.unicasts) != 1 || out.unicasts[0].dest != 3 {
		t.Fatalf("forwarded to %v, want 3", out.unicasts)
	}
	fwd, err := wire.DecodeCommit(out.unicasts[0].data)
	if err != nil {
		t.Fatal(err)
	}
	e := fwd.Members[1]
	if e.Visits != 1 || e.MyAru != 7 || e.HighSeq != 9 || e.OldRing.Epoch != 4 {
		t.Fatalf("entry not filled: %+v", e)
	}
}

func TestCommitTokenSecondPassEntersRecovery(t *testing.T) {
	m, out, _ := gatherMachine(t, 2, 1, 2, 3)
	c := &wire.CommitToken{
		Ring: proto.RingID{Rep: 1, Epoch: 10},
		Members: []wire.CommitEntry{
			{ID: 1, Visits: 2}, {ID: 2, Visits: 1}, {ID: 3, Visits: 1},
		},
	}
	m.pendingCommit = c
	m.commitPhase = 1
	m.state = StateCommit
	m.onCommit(0, c)
	if m.state != StateRecovery || m.commitPhase != 2 {
		t.Fatalf("state=%v phase=%d", m.state, m.commitPhase)
	}
	if m.ring != c.Ring || len(m.members) != 3 {
		t.Fatalf("ring=%v members=%v", m.ring, m.members)
	}
	if len(out.unicasts) != 1 {
		t.Fatal("second pass not forwarded")
	}
}

func TestCommitTokenDuplicateIgnored(t *testing.T) {
	m, out, _ := gatherMachine(t, 2, 1, 2, 3)
	c := &wire.CommitToken{
		Ring: proto.RingID{Rep: 1, Epoch: 10},
		Members: []wire.CommitEntry{
			{ID: 1, Visits: 1}, {ID: 2}, {ID: 3},
		},
	}
	m.onCommit(0, c)
	sent := len(out.unicasts)
	// The same first-pass copy arrives via the second network.
	dup := &wire.CommitToken{
		Ring: proto.RingID{Rep: 1, Epoch: 10},
		Members: []wire.CommitEntry{
			{ID: 1, Visits: 1}, {ID: 2}, {ID: 3},
		},
	}
	m.onCommit(0, dup)
	if len(out.unicasts) != sent {
		t.Fatal("duplicate commit copy re-forwarded")
	}
}

func TestCommitTokenThirdArrivalEmitsFirstRingToken(t *testing.T) {
	m, out, _ := gatherMachine(t, 1, 1, 2)
	// Rep has already run both passes.
	c := &wire.CommitToken{
		Ring:    proto.RingID{Rep: 1, Epoch: 10},
		Members: []wire.CommitEntry{{ID: 1, Visits: 2}, {ID: 2, Visits: 2}},
	}
	m.pendingCommit = c
	m.commitPhase = 2
	m.state = StateRecovery
	m.ring = c.Ring
	m.members = newNodeSet(1, 2)
	m.onCommit(0, c)
	if m.commitPhase != 3 {
		t.Fatalf("phase=%d", m.commitPhase)
	}
	last := out.unicasts[len(out.unicasts)-1]
	tok, err := wire.DecodeToken(last.data)
	if err != nil {
		t.Fatalf("last send is not the ring token: %v", err)
	}
	if tok.Ring != c.Ring || tok.Seq != 0 || last.dest != 2 {
		t.Fatalf("first token %+v to %v", tok, last.dest)
	}
}

func TestCommitTokenForeignMembershipIgnored(t *testing.T) {
	m, out, _ := gatherMachine(t, 5, 5, 6)
	c := &wire.CommitToken{
		Ring:    proto.RingID{Rep: 1, Epoch: 10},
		Members: []wire.CommitEntry{{ID: 1, Visits: 1}, {ID: 2}},
	}
	m.onCommit(0, c)
	if m.state != StateGather || len(out.unicasts) != 0 {
		t.Fatal("commit token for a ring we are not in was processed")
	}
}
