package srp

import (
	"testing"
	"testing/quick"

	"github.com/totem-rrp/totem/internal/proto"
)

func TestNodeSetBasics(t *testing.T) {
	s := newNodeSet(3, 1, 2, 2, 1)
	if len(s) != 3 || s[0] != 1 || s[1] != 2 || s[2] != 3 {
		t.Fatalf("set = %v, want sorted unique [1 2 3]", s)
	}
	if !s.contains(2) || s.contains(9) {
		t.Fatal("contains broken")
	}
}

func TestNodeSetAddIdempotent(t *testing.T) {
	s := newNodeSet(1, 2)
	s2 := s.add(2)
	if len(s2) != 2 {
		t.Fatalf("add duplicate grew the set: %v", s2)
	}
	s3 := s2.add(0)
	if len(s3) != 3 || s3[0] != 0 {
		t.Fatalf("add smallest: %v", s3)
	}
}

func TestNodeSetUnionMinusIntersect(t *testing.T) {
	a := newNodeSet(1, 2, 3)
	b := newNodeSet(3, 4)
	if got := a.union(b); !got.equal(newNodeSet(1, 2, 3, 4)) {
		t.Fatalf("union = %v", got)
	}
	if got := a.minus(b); !got.equal(newNodeSet(1, 2)) {
		t.Fatalf("minus = %v", got)
	}
	if got := a.intersect(b); !got.equal(newNodeSet(3)) {
		t.Fatalf("intersect = %v", got)
	}
	if got := a.minus(a); len(got) != 0 {
		t.Fatalf("a\\a = %v", got)
	}
}

func TestNodeSetContainsAllAndEqual(t *testing.T) {
	a := newNodeSet(1, 2, 3)
	if !a.containsAll(newNodeSet(1, 3)) {
		t.Fatal("containsAll subset failed")
	}
	if a.containsAll(newNodeSet(1, 4)) {
		t.Fatal("containsAll accepted non-subset")
	}
	if !a.containsAll(nil) {
		t.Fatal("empty set must be a subset")
	}
	if !a.equal(newNodeSet(3, 2, 1)) {
		t.Fatal("equal failed on permuted input")
	}
	if a.equal(newNodeSet(1, 2)) {
		t.Fatal("equal accepted shorter set")
	}
}

func TestNodeSetCloneIndependence(t *testing.T) {
	a := newNodeSet(1, 2)
	b := a.clone()
	b = b.add(3)
	if a.contains(3) {
		t.Fatal("clone aliases original")
	}
}

// Property: union is commutative and contains both operands; minus never
// contains elements of the subtrahend; intersect is a subset of both.
func TestQuickSetAlgebra(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		var a, b nodeSet
		for _, x := range xs {
			a = a.add(proto.NodeID(x%64 + 1))
		}
		for _, y := range ys {
			b = b.add(proto.NodeID(y%64 + 1))
		}
		u1, u2 := a.union(b.clone()), b.union(a.clone())
		if !u1.equal(u2) || !u1.containsAll(a) || !u1.containsAll(b) {
			return false
		}
		for _, id := range a.minus(b) {
			if b.contains(id) {
				return false
			}
		}
		inter := a.intersect(b)
		if !a.containsAll(inter) || !b.containsAll(inter) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
