package srp

import "github.com/totem-rrp/totem/internal/metrics"

// counters holds the machine's resolved metric handles. Machines bump
// these directly (one atomic add, no map lookup, no allocation); the
// legacy Stats view and every external consumer read the same registry.
type counters struct {
	tokensReceived   *metrics.Counter
	tokensSent       *metrics.Counter
	tokenRetransmits *metrics.Counter
	packetsSent      *metrics.Counter
	packetsReceived  *metrics.Counter
	duplicates       *metrics.Counter
	retransmissions  *metrics.Counter
	retransRequested *metrics.Counter
	msgsDelivered    *metrics.Counter
	bytesDelivered   *metrics.Counter
	submitted        *metrics.Counter
	submitRejected   *metrics.Counter
	tokenLosses      *metrics.Counter
	configChanges    *metrics.Counter

	// Bulk lane.
	bulkSubmitted   *metrics.Counter
	bulkRejected    *metrics.Counter
	bulkChunksAcked *metrics.Counter
	bulkRxCompleted *metrics.Counter
	bulkRxDropped   *metrics.Counter
}

// newCounters resolves the SRP metric names in reg.
func newCounters(reg *metrics.Registry) counters {
	c := func(name string) *metrics.Counter { return reg.Counter("srp." + name) }
	return counters{
		tokensReceived:   c("tokens_received"),
		tokensSent:       c("tokens_sent"),
		tokenRetransmits: c("token_retransmits"),
		packetsSent:      c("packets_sent"),
		packetsReceived:  c("packets_received"),
		duplicates:       c("duplicates"),
		retransmissions:  c("retransmissions"),
		retransRequested: c("retrans_requested"),
		msgsDelivered:    c("msgs_delivered"),
		bytesDelivered:   c("bytes_delivered"),
		submitted:        c("submitted"),
		submitRejected:   c("submit_rejected"),
		tokenLosses:      c("token_losses"),
		configChanges:    c("config_changes"),
		bulkSubmitted:    c("bulk_submitted"),
		bulkRejected:     c("bulk_rejected"),
		bulkChunksAcked:  c("bulk_chunks_acked"),
		bulkRxCompleted:  c("bulk_rx_completed"),
		bulkRxDropped:    c("bulk_rx_dropped"),
	}
}
