package srp

import (
	"fmt"

	"github.com/totem-rrp/totem/internal/bulk"
	"github.com/totem-rrp/totem/internal/core"
	"github.com/totem-rrp/totem/internal/metrics"
	"github.com/totem-rrp/totem/internal/proto"
	"github.com/totem-rrp/totem/internal/wire"
)

// Outbound is the downward interface of the SRP machine. The RRP layer
// implements it, mapping each logical send onto one or more of the
// redundant networks (paper §4–§7).
type Outbound interface {
	// Broadcast sends an encoded packet to every ring member.
	Broadcast(data []byte)
	// Unicast sends an encoded packet (the token) to one ring member.
	Unicast(dest proto.NodeID, data []byte)
}

// State is the membership-protocol state of the machine.
type State int

// Machine states.
const (
	// StateIdle is the pre-Start state.
	StateIdle State = iota + 1
	// StateOperational is normal token-ring operation.
	StateOperational
	// StateGather is the join/consensus phase of membership.
	StateGather
	// StateCommit circulates the commit token around the proposed ring.
	StateCommit
	// StateRecovery exchanges old-ring messages on the new ring before the
	// configuration is installed.
	StateRecovery
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateIdle:
		return "idle"
	case StateOperational:
		return "operational"
	case StateGather:
		return "gather"
	case StateCommit:
		return "commit"
	case StateRecovery:
		return "recovery"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Stats is a point-in-time view of the protocol counters, kept for API
// compatibility. The machine's source of truth is the metrics registry
// (names under "srp."); Stats is rebuilt from it on each call.
type Stats struct {
	TokensReceived   uint64
	TokensSent       uint64
	TokenRetransmits uint64
	PacketsSent      uint64 // original data packets broadcast
	PacketsReceived  uint64 // non-duplicate data packets accepted
	Duplicates       uint64 // duplicate data packets discarded
	Retransmissions  uint64 // packets re-broadcast to serve RTR requests
	RetransRequested uint64 // RTR entries this node added to the token
	MsgsDelivered    uint64
	BytesDelivered   uint64
	Submitted        uint64
	SubmitRejected   uint64
	TokenLosses      uint64
	ConfigChanges    uint64
}

type tokenKey struct {
	seq      uint32
	rotation uint32
}

// newer reports whether k is a strictly newer token generation than o.
func (k tokenKey) newer(o tokenKey) bool {
	return k.seq > o.seq || (k.seq == o.seq && k.rotation > o.rotation)
}

// oldRing snapshots the state of the previous configuration while a new
// one is being formed; recovery drains it.
type oldRing struct {
	ring        proto.RingID
	members     nodeSet
	rx          map[uint32]*wire.DataPacket
	aru         uint32
	high        uint32
	deliveredTo uint32
	asm         *wire.Assembler
}

// Machine is the Totem single-ring protocol engine for one node. It is not
// safe for concurrent use; the stack serialises all calls.
type Machine struct {
	cfg  Config
	out  Outbound
	acts *proto.Actions

	state    State
	ring     proto.RingID
	members  nodeSet
	maxEpoch uint32

	// Operational ring state.
	packer           wire.Packer
	asm              *wire.Assembler
	rx               map[uint32]*wire.DataPacket
	myAru            uint32
	highSeq          uint32
	deliveredTo      uint32
	safeTo           uint32
	prevTokenAru     uint32
	havePrevTokenAru bool
	prevSent         uint32
	prevBacklog      uint32

	lastTokenSeen    tokenKey
	seenAnyToken     bool
	lastTokenSent    []byte
	lastTokenSentKey tokenKey
	tokenRetransOn   bool

	// Bulk lane state.
	bulkRx *bulk.Rx
	// prevBulkBacklog is our previous contribution to the token's
	// BulkBacklog field (same replace-on-visit scheme as prevBacklog).
	prevBulkBacklog uint32
	// bulkBufs maps a broadcast packet's sequence number to the bulk chunk
	// envelope buffers fully emitted in it. The chunks stored in m.rx alias
	// these buffers (retransmissions re-encode from m.rx), so a buffer is
	// recyclable only once its packet is pruned — never at delivery.
	bulkBufs map[uint32][][]byte
	// bulkFree is the recycled-envelope free list SubmitBulk draws from.
	bulkFree [][]byte

	// Gather state.
	procSet   nodeSet
	failSet   nodeSet
	joinsSeen map[proto.NodeID]bool
	consensus map[proto.NodeID]bool
	// joinEpoch is the highest RingSeq seen in a join from each sender.
	// Joins below a sender's high-water mark are from a membership episode
	// the sender has since left (it installed a ring, bumping its epoch)
	// and are dropped: merging them would union long-dead fail sets into
	// the current round, and under heavy packet duplication that stale
	// poison can re-infect every fresh episode and livelock the cluster in
	// singleton churn. This mirrors the ring sequence number filtering of
	// Totem's join messages. Unlike the per-episode gather sets, the map
	// persists across episodes — that is its entire point.
	joinEpoch map[proto.NodeID]uint32

	// Commit / recovery state.
	commitPhase    uint8 // 0 none, 1 filled, 2 recovering, 3 token emitted
	pendingCommit  *wire.CommitToken
	lastCommitSent []byte
	commitDest     proto.NodeID
	commitRetries  int
	commitWaiting  bool // in Commit without having forwarded yet

	old         *oldRing
	recQueue    [][]byte    // encoded old packets awaiting re-broadcast
	quietSetter bool        // rep: we have set TokenFlagQuiet at least once
	heldToken   *wire.Token // idle-ring token held by the representative

	ctr counters
}

// NewMachine builds a machine. It validates cfg and panics on programmer
// error (nil interfaces); configuration errors are returned.
func NewMachine(cfg Config, out Outbound, acts *proto.Actions) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if out == nil || acts == nil {
		return nil, fmt.Errorf("%w: nil outbound or action buffer", ErrBadConfig)
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	if cfg.SeqRollover == 0 {
		// Hand-built configs predating the field keep working: zero means
		// the default limit, never "no limit".
		cfg.SeqRollover = DefaultSeqRollover
	}
	// Bulk-lane knobs follow the same zero-means-default rule.
	if cfg.BulkMaxPerVisit == 0 {
		cfg.BulkMaxPerVisit = DefaultBulkMaxPerVisit
	}
	if cfg.BulkYieldPerVisit == 0 {
		cfg.BulkYieldPerVisit = DefaultBulkYieldPerVisit
	}
	if cfg.BulkYieldPerVisit > cfg.BulkMaxPerVisit {
		cfg.BulkYieldPerVisit = cfg.BulkMaxPerVisit
	}
	if cfg.MaxQueuedBulk == 0 {
		cfg.MaxQueuedBulk = DefaultMaxQueuedBulk
	}
	if cfg.MaxBulkTransfer == 0 {
		cfg.MaxBulkTransfer = DefaultMaxBulkTransfer
	}
	if cfg.MaxBulkPartials == 0 {
		cfg.MaxBulkPartials = DefaultMaxBulkPartials
	}
	m := &Machine{
		cfg:       cfg,
		out:       out,
		acts:      acts,
		state:     StateIdle,
		maxEpoch:  cfg.InitialEpoch,
		asm:       wire.NewAssembler(),
		rx:        make(map[uint32]*wire.DataPacket),
		joinEpoch: make(map[proto.NodeID]uint32),
		bulkRx:    bulk.NewRx(cfg.MaxBulkTransfer, cfg.MaxBulkPartials),
		bulkBufs:  make(map[uint32][][]byte),
		ctr:       newCounters(reg),
	}
	m.packer.CollectFinished(true)
	return m, nil
}

// ID returns this node's identifier.
func (m *Machine) ID() proto.NodeID { return m.cfg.ID }

// State returns the current membership state.
func (m *Machine) State() State { return m.state }

// Ring returns the current (or pending, during recovery) ring identifier.
func (m *Machine) Ring() proto.RingID { return m.ring }

// MaxEpoch returns the highest ring epoch this machine has seen or used.
// Drivers that model node restart feed it back via Config.InitialEpoch so
// the new incarnation never reuses a RingID (Totem's stable-storage ring
// sequence number).
func (m *Machine) MaxEpoch() uint32 { return m.maxEpoch }

// Members returns the current membership (sorted). The returned slice is a
// copy.
func (m *Machine) Members() []proto.NodeID {
	return append([]proto.NodeID(nil), m.members...)
}

// Stats returns a snapshot of the protocol counters (a thin view over
// the metrics registry).
func (m *Machine) Stats() Stats {
	return Stats{
		TokensReceived:   m.ctr.tokensReceived.Count(),
		TokensSent:       m.ctr.tokensSent.Count(),
		TokenRetransmits: m.ctr.tokenRetransmits.Count(),
		PacketsSent:      m.ctr.packetsSent.Count(),
		PacketsReceived:  m.ctr.packetsReceived.Count(),
		Duplicates:       m.ctr.duplicates.Count(),
		Retransmissions:  m.ctr.retransmissions.Count(),
		RetransRequested: m.ctr.retransRequested.Count(),
		MsgsDelivered:    m.ctr.msgsDelivered.Count(),
		BytesDelivered:   m.ctr.bytesDelivered.Count(),
		Submitted:        m.ctr.submitted.Count(),
		SubmitRejected:   m.ctr.submitRejected.Count(),
		TokenLosses:      m.ctr.tokenLosses.Count(),
		ConfigChanges:    m.ctr.configChanges.Count(),
	}
}

// setState records a membership phase transition, emitting a probe event
// so phase changes are observable without polling.
func (m *Machine) setState(s State) {
	if m.state == s {
		return
	}
	m.acts.Probe(proto.ProbePhase, -1, int64(m.state), int64(s), 0)
	m.state = s
}

// Backlog returns the number of queued, not yet broadcast application
// messages.
func (m *Machine) Backlog() int { return m.packer.Backlog() }

// MissingBefore reports whether this node is missing any packet with
// sequence number at or below seq on the current ring. The passive RRP
// layer consults it before passing a token up (paper §6, requirement P1).
// The plain < comparison is wraparound-safe because Config.SeqRollover
// caps ring sequence numbers well below the uint32 range.
func (m *Machine) MissingBefore(seq uint32) bool {
	if m.state != StateOperational && m.state != StateRecovery {
		return false
	}
	return m.myAru < seq
}

// Start brings the node up: it immediately attempts to form a ring by
// entering the Gather state (forming a singleton ring if alone).
func (m *Machine) Start(now proto.Time) {
	if m.state != StateIdle {
		return
	}
	m.enterGather(now, nil, nil)
}

// Submit queues an application message for totally-ordered broadcast. It
// returns false when the send queue is full (backpressure) or the machine
// has not started.
func (m *Machine) Submit(now proto.Time, payload []byte) bool {
	if m.state == StateIdle {
		return false
	}
	if m.packer.Backlog() >= m.cfg.MaxQueued {
		m.ctr.submitRejected.Inc()
		m.acts.Probe(proto.ProbeFlowStall, -1, int64(m.packer.Backlog()), 0, 0)
		return false
	}
	m.packer.Enqueue(payload)
	m.ctr.submitted.Inc()
	if m.state == StateOperational && len(m.members) == 1 {
		m.flushSingleton(now)
	} else if m.heldToken != nil {
		// We are holding the token on an idle ring: use it right away.
		m.releaseHeldToken(true)
	}
	return true
}

// SubmitBulk queues one chunk of a bulk transfer on the rate-limited bulk
// lane. The chunk is wrapped in the bulk envelope (transfer id, byte
// offset, total length) into a recycled buffer; data is copied and may be
// reused by the caller immediately. It returns false under backpressure
// (bulk queue full) or before Start — the sender-side manager retries with
// its bounded per-chunk budget.
func (m *Machine) SubmitBulk(now proto.Time, id, off, total uint64, data []byte) bool {
	if m.state == StateIdle {
		return false
	}
	if m.packer.BulkBacklog() >= m.cfg.MaxQueuedBulk {
		m.ctr.bulkRejected.Inc()
		m.acts.Probe(proto.ProbeFlowStall, -1, int64(m.packer.BulkBacklog()), 1, 0)
		return false
	}
	var buf []byte
	if n := len(m.bulkFree); n > 0 {
		buf = m.bulkFree[n-1][:0]
		m.bulkFree = m.bulkFree[:n-1]
	}
	m.packer.EnqueueBulk(bulk.AppendChunk(buf, id, off, total, data))
	m.ctr.bulkSubmitted.Inc()
	if m.state == StateOperational && len(m.members) == 1 {
		m.flushSingleton(now)
	} else if m.heldToken != nil {
		m.releaseHeldToken(true)
	}
	return true
}

// BulkBacklog returns the number of queued, not yet fully broadcast bulk
// chunks.
func (m *Machine) BulkBacklog() int { return m.packer.BulkBacklog() }

// BulkPending returns the number of in-progress inbound bulk transfers.
func (m *Machine) BulkPending() int { return m.bulkRx.Pending() }

// OnPacket processes one packet received from the RRP layer (which has
// already applied token gating and duplicate-copy handling across
// networks).
func (m *Machine) OnPacket(now proto.Time, data []byte) {
	kind, err := wire.PeekKind(data)
	if err != nil {
		return // undecodable noise: drop
	}
	switch kind {
	case wire.KindData:
		pkt, err := wire.DecodeData(data)
		if err != nil {
			return
		}
		m.onData(now, pkt)
	case wire.KindToken:
		tok, err := wire.DecodeToken(data)
		if err != nil {
			return
		}
		m.onToken(now, tok)
	case wire.KindJoin:
		j, err := wire.DecodeJoin(data)
		if err != nil {
			return
		}
		m.onJoin(now, j)
	case wire.KindCommit:
		c, err := wire.DecodeCommit(data)
		if err != nil {
			return
		}
		m.onCommit(now, c)
	case wire.KindMergeDetect:
		md, err := wire.DecodeMergeDetect(data)
		if err != nil {
			return
		}
		m.onMergeDetect(now, md)
	}
}

// OnTimer processes an expired timer.
func (m *Machine) OnTimer(now proto.Time, id proto.TimerID) {
	switch id.Class {
	case proto.TimerTokenLoss:
		if m.state == StateOperational || m.state == StateRecovery {
			m.ctr.tokenLosses.Inc()
			m.acts.Probe(proto.ProbeTokenLoss, -1, int64(m.lastTokenSeen.seq), 0, 0)
			m.enterGather(now, nil, nil)
		}
	case proto.TimerTokenRetransmit:
		if m.tokenRetransOn && m.lastTokenSent != nil {
			m.out.Unicast(m.successor(), m.lastTokenSent)
			m.ctr.tokenRetransmits.Inc()
			m.acts.SetTimer(proto.TimerID{Class: proto.TimerTokenRetransmit}, m.cfg.TokenRetransmitInterval)
		}
	case proto.TimerJoin:
		if m.state == StateGather {
			m.sendJoin()
			m.acts.SetTimer(proto.TimerID{Class: proto.TimerJoin}, m.cfg.JoinInterval)
		}
	case proto.TimerConsensus:
		if m.state == StateGather {
			m.onConsensusTimeout(now)
		}
	case proto.TimerCommitRetransmit:
		if m.state == StateCommit || m.state == StateRecovery {
			m.onCommitTimeout(now)
		}
	case proto.TimerMergeDetect:
		if m.state == StateOperational && m.isRep() {
			m.sendMergeDetect()
			m.acts.SetTimer(proto.TimerID{Class: proto.TimerMergeDetect}, m.cfg.MergeDetectInterval)
		}
	case proto.TimerTokenHold:
		m.releaseHeldToken(false)
	}
}

// successor returns the next member on the ring after this node.
func (m *Machine) successor() proto.NodeID {
	if len(m.members) == 0 {
		return m.cfg.ID
	}
	for i, id := range m.members {
		if id == m.cfg.ID {
			return m.members[(i+1)%len(m.members)]
		}
	}
	return m.members[0]
}

// isRep reports whether this node is the ring representative (the member
// with the smallest ID, which maintains the rotation counter and drives
// the recovery handshake).
func (m *Machine) isRep() bool {
	return len(m.members) > 0 && m.members[0] == m.cfg.ID
}

// resetRingState clears the per-ring sequencing state when a new ring's
// sequence space begins (at the transition into Recovery).
func (m *Machine) resetRingState() {
	m.heldToken = nil
	m.acts.CancelTimer(proto.TimerID{Class: proto.TimerTokenHold})
	m.rx = make(map[uint32]*wire.DataPacket)
	m.myAru = 0
	m.highSeq = 0
	m.deliveredTo = 0
	m.safeTo = 0
	m.prevTokenAru = 0
	m.havePrevTokenAru = false
	m.prevSent = 0
	m.prevBacklog = 0
	// Resetting the duplicate-token filter here is what makes the machine
	// self-stabilizing against a corrupted filter: a poisoned (future)
	// filter discards every genuine token, the token-loss timeout forces a
	// reformation, and the new ring starts with a clean filter. The chaos
	// flag reverts exactly that reset so the torture harness can prove its
	// bounded-recovery invariant notices when the escape hatch is gone.
	if !core.Chaos.FrozenTokenFilter {
		m.seenAnyToken = false
		m.lastTokenSeen = tokenKey{}
	}
	m.lastTokenSent = nil
	m.tokenRetransOn = false
	m.asm.Reset()
	m.quietSetter = false
	// A message caught mid-fragmentation by the ring change must restart
	// whole: the new ring's receivers have fresh reassembly state, so
	// continuing from the cursor would broadcast a continuation with no
	// start and the message would silently vanish everywhere. Rewinding
	// re-emits it from the beginning on the new ring — delivered exactly
	// once, since the old ring's partial prefix completes nowhere.
	m.packer.Rewind()
	m.prevBulkBacklog = 0
	// Envelope buffers harvested on the old ring may still be aliased by
	// old-ring packets (snapshotOld moved m.rx into m.old); drop them to
	// the GC instead of recycling.
	clear(m.bulkBufs)
}

// cancelOperationalTimers disarms the token timers.
func (m *Machine) cancelOperationalTimers() {
	m.acts.CancelTimer(proto.TimerID{Class: proto.TimerTokenLoss})
	m.acts.CancelTimer(proto.TimerID{Class: proto.TimerTokenRetransmit})
	m.acts.CancelTimer(proto.TimerID{Class: proto.TimerTokenHold})
	m.tokenRetransOn = false
	m.heldToken = nil
}
