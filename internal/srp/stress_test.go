package srp

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/totem-rrp/totem/internal/proto"
	"github.com/totem-rrp/totem/internal/wire"
)

func TestRecoveryPacketsLostAreRetransmitted(t *testing.T) {
	// During recovery the encapsulated old-ring packets travel on the new
	// ring and are themselves protected by the RTR machinery: drop the
	// first few recovery packets and the membership change must still
	// deliver everything.
	h := newHarness(t, 3, nil)
	h.start()
	h.waitRing(3 * time.Second)
	for i := 0; i < 20; i++ {
		h.submit(proto.NodeID(1+i%3), []byte(fmt.Sprintf("m%d", i)))
	}
	h.run(2 * time.Millisecond) // packets in flight, not all delivered

	dropped := 0
	h.drop = func(from, to proto.NodeID, data []byte) bool {
		if dropped >= 3 {
			return false
		}
		if flags, err := wire.PeekDataFlags(data); err == nil && flags&wire.FlagRecovery != 0 {
			dropped++
			return true
		}
		return false
	}
	h.machines[3].crashed = true
	ok := h.runUntil(func() bool {
		for _, id := range []proto.NodeID{1, 2} {
			if len(h.machines[id].delivered) < 20 {
				return false
			}
		}
		return true
	}, 10*time.Second)
	if !ok {
		t.Fatalf("recovery did not survive recovery-packet loss (dropped %d): n1=%d n2=%d",
			dropped, len(h.machines[1].delivered), len(h.machines[2].delivered))
	}
	ringsConsistent(t, h)
	noDuplicateDeliveries(t, h)
}

func TestLargeRingFormationAndTraffic(t *testing.T) {
	// Sixteen nodes: the membership protocol must converge (join storms,
	// consensus, two commit passes) and the ring must order traffic.
	const n = 16
	h := newHarness(t, n, nil)
	h.start()
	h.waitRing(15 * time.Second)
	for i := 0; i < 2; i++ {
		for id := proto.NodeID(1); id <= n; id++ {
			h.submit(id, []byte(fmt.Sprintf("%v/%d", id, i)))
		}
	}
	ok := h.runUntil(func() bool {
		for id := proto.NodeID(1); id <= n; id++ {
			if len(h.machines[id].delivered) < 2*n {
				return false
			}
		}
		return true
	}, 10*time.Second)
	if !ok {
		t.Fatal("16-node ring did not deliver")
	}
	ringsConsistent(t, h)
}

func TestManyPartitionsHealIntoOneRing(t *testing.T) {
	// Split 6 nodes into three 2-node islands, let each form a ring, then
	// heal everything at once: merge detection must reunite all six.
	h := newHarness(t, 6, nil)
	h.start()
	h.waitRing(3 * time.Second)
	group := func(id proto.NodeID) int { return (int(id) - 1) / 2 }
	h.drop = func(from, to proto.NodeID, data []byte) bool {
		return group(from) != group(to)
	}
	ok := h.runUntil(func() bool {
		for id := proto.NodeID(1); id <= 6; id++ {
			m := h.machines[id].m
			if m.State() != StateOperational || len(m.Members()) != 2 {
				return false
			}
		}
		return true
	}, 10*time.Second)
	if !ok {
		t.Fatal("three islands never formed")
	}
	h.drop = nil
	ok = h.runUntil(func() bool {
		for id := proto.NodeID(1); id <= 6; id++ {
			m := h.machines[id].m
			if m.State() != StateOperational || len(m.Members()) != 6 {
				return false
			}
		}
		return true
	}, 10*time.Second)
	if !ok {
		for id := proto.NodeID(1); id <= 6; id++ {
			m := h.machines[id].m
			t.Logf("node %v: %v %v", id, m.State(), m.Members())
		}
		t.Fatal("islands never merged")
	}
	// The merged ring orders traffic from everyone.
	for id := proto.NodeID(1); id <= 6; id++ {
		h.submit(id, []byte(fmt.Sprintf("merged-%v", id)))
	}
	h.run(200 * time.Millisecond)
	ringsConsistent(t, h)
	noDuplicateDeliveries(t, h)
}

func TestHeavyLossEventuallyDelivers(t *testing.T) {
	// 10% random loss on every link: brutal, but the retransmission
	// machinery must still deliver everything with a consistent order.
	rng := rand.New(rand.NewSource(11))
	h := newHarness(t, 3, nil)
	h.drop = func(from, to proto.NodeID, data []byte) bool {
		return rng.Intn(10) == 0
	}
	h.start()
	h.waitRing(15 * time.Second)
	const total = 60
	for i := 0; i < total; i++ {
		h.submit(proto.NodeID(1+i%3), []byte(fmt.Sprintf("lossy-%d", i)))
	}
	ok := h.runUntil(func() bool {
		for _, id := range h.order {
			if len(h.machines[id].delivered) < total {
				return false
			}
		}
		return true
	}, 30*time.Second)
	if !ok {
		for _, id := range h.order {
			t.Logf("node %v delivered %d/%d", id, len(h.machines[id].delivered), total)
		}
		t.Fatal("heavy loss defeated retransmission")
	}
	ringsConsistent(t, h)
	noDuplicateDeliveries(t, h)
}

func TestSafeModeMembershipChange(t *testing.T) {
	// Safe delivery across a crash: messages not yet safe at crash time
	// are delivered in the transitional configuration; agreement holds.
	h := newHarness(t, 4, func(c *Config) { c.Delivery = DeliverSafe })
	h.start()
	h.waitRing(3 * time.Second)
	for i := 0; i < 15; i++ {
		h.submit(proto.NodeID(1+i%4), []byte(fmt.Sprintf("safe-%d", i)))
	}
	h.run(2 * time.Millisecond)
	h.machines[4].crashed = true
	ok := h.runUntil(func() bool {
		for _, id := range []proto.NodeID{1, 2, 3} {
			if len(h.machines[id].delivered) < 15 {
				return false
			}
		}
		return true
	}, 10*time.Second)
	if !ok {
		t.Fatal("safe-mode messages lost across membership change")
	}
	ringsConsistent(t, h)
	noDuplicateDeliveries(t, h)
}
