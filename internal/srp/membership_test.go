package srp

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/totem-rrp/totem/internal/proto"
	"github.com/totem-rrp/totem/internal/wire"
)

// ringsConsistent verifies the extended-virtual-synchrony agreement
// property across the whole run: group deliveries by the configuration
// they were delivered in; within each configuration, the delivery
// sequences of any two nodes must be equal up to the shorter one
// (prefix-consistent), with identical payloads at identical positions.
func ringsConsistent(t *testing.T, h *harness) {
	t.Helper()
	type stream = []proto.Delivery
	perRing := map[proto.RingID]map[proto.NodeID]stream{}
	for _, id := range h.order {
		for _, d := range h.machines[id].delivered {
			m := perRing[d.Ring]
			if m == nil {
				m = map[proto.NodeID]stream{}
				perRing[d.Ring] = m
			}
			m[id] = append(m[id], d)
		}
	}
	for ring, m := range perRing {
		var ref stream
		var refNode proto.NodeID
		for id, s := range m {
			if ref == nil {
				ref, refNode = s, id
				continue
			}
			n := min(len(ref), len(s))
			for i := 0; i < n; i++ {
				if ref[i].Seq != s[i].Seq || ref[i].Sender != s[i].Sender ||
					!bytes.Equal(ref[i].Payload, s[i].Payload) {
					t.Fatalf("ring %v: node %v and %v diverge at %d: %v vs %v",
						ring, refNode, id, i, ref[i], s[i])
				}
			}
		}
	}
}

// noDuplicateDeliveries verifies no node delivered the same (ring, seq,
// chunk) twice. Seq alone can repeat across packed messages, so use the
// position of the message within the packet implicitly via full equality
// of adjacent entries.
func noDuplicateDeliveries(t *testing.T, h *harness) {
	t.Helper()
	for _, id := range h.order {
		seen := map[string]int{}
		for _, d := range h.machines[id].delivered {
			key := fmt.Sprintf("%v/%d/%x", d.Ring, d.Seq, d.Payload)
			seen[key]++
		}
		for key, n := range seen {
			if n > 1 {
				t.Fatalf("node %v delivered %s %d times", id, key, n)
			}
		}
	}
}

func TestMergeDetectReunitesIdleRings(t *testing.T) {
	// Two rings that heal while completely idle only discover each other
	// through the merge-detect advertisement.
	h := newHarness(t, 4, nil)
	h.start()
	h.waitRing(3 * time.Second)
	h.drop = func(from, to proto.NodeID, data []byte) bool {
		return (from <= 2) != (to <= 2)
	}
	ok := h.runUntil(func() bool {
		return len(h.machines[1].m.Members()) == 2 && len(h.machines[3].m.Members()) == 2 &&
			h.machines[1].m.State() == StateOperational && h.machines[3].m.State() == StateOperational
	}, 5*time.Second)
	if !ok {
		t.Fatal("partition did not split")
	}
	// Let both sides go fully idle, then heal with zero traffic.
	h.run(500 * time.Millisecond)
	h.drop = nil
	ok = h.runUntil(func() bool {
		for _, id := range h.order {
			if len(h.machines[id].m.Members()) != 4 || h.machines[id].m.State() != StateOperational {
				return false
			}
		}
		return true
	}, 5*time.Second)
	if !ok {
		t.Fatal("idle rings never merged (merge detect broken)")
	}
}

func TestStaleJoinDoesNotDisturbOperationalRing(t *testing.T) {
	h := newHarness(t, 3, nil)
	h.start()
	h.waitRing(3 * time.Second)
	ring := h.machines[1].m.Ring()
	cfgs := len(h.machines[1].configs)
	// Replay a stale join from the forming round: member 2 with an old
	// epoch.
	j := &joinForTest{sender: 2, ringSeq: ring.Epoch - 1, proc: []proto.NodeID{1, 2, 3}}
	h.machines[1].m.OnPacket(h.now, j.encode(t))
	h.machines[1].drain()
	h.run(500 * time.Millisecond)
	if got := h.machines[1].m.Ring(); got != ring {
		t.Fatalf("stale join changed the ring: %v -> %v", ring, got)
	}
	if len(h.machines[1].configs) != cfgs {
		t.Fatalf("stale join produced config changes")
	}
}

func TestForeignJoinFromStrangerTriggersMerge(t *testing.T) {
	h := newHarness(t, 3, nil)
	h.start()
	h.waitRing(3 * time.Second)
	// A brand-new node appears.
	h2 := addNode(t, h, 9)
	ok := h.runUntil(func() bool {
		return len(h.machines[1].m.Members()) == 4 &&
			h.machines[1].m.State() == StateOperational &&
			h2.m.State() == StateOperational
	}, 5*time.Second)
	if !ok {
		t.Fatalf("stranger never joined: n1 members=%v stranger state=%v",
			h.machines[1].m.Members(), h2.m.State())
	}
	ringsConsistent(t, h)
}

func TestTwoSimultaneousCrashes(t *testing.T) {
	h := newHarness(t, 5, nil)
	h.start()
	h.waitRing(3 * time.Second)
	for i := 0; i < 10; i++ {
		h.submit(1, []byte(fmt.Sprintf("pre-%d", i)))
	}
	h.run(5 * time.Millisecond)
	h.machines[3].crashed = true
	h.machines[5].crashed = true
	ok := h.runUntil(func() bool {
		for _, id := range []proto.NodeID{1, 2, 4} {
			m := h.machines[id].m
			if m.State() != StateOperational || len(m.Members()) != 3 {
				return false
			}
		}
		return true
	}, 5*time.Second)
	if !ok {
		t.Fatal("ring did not reform after double crash")
	}
	// Survivors still agree on everything delivered.
	ringsConsistent(t, h)
	noDuplicateDeliveries(t, h)
	// And the ring still works.
	h.submit(2, []byte("post-crash"))
	ok = h.runUntil(func() bool {
		for _, id := range []proto.NodeID{1, 2, 4} {
			ms := h.machines[id].delivered
			if len(ms) == 0 || string(ms[len(ms)-1].Payload) != "post-crash" {
				return false
			}
		}
		return true
	}, 3*time.Second)
	if !ok {
		t.Fatal("post-crash message not delivered")
	}
}

func TestCrashDuringRecoveryRegathers(t *testing.T) {
	h := newHarness(t, 4, nil)
	h.start()
	h.waitRing(3 * time.Second)
	for i := 0; i < 30; i++ {
		h.submit(proto.NodeID(1+i%4), []byte(fmt.Sprintf("m%d", i)))
	}
	h.run(3 * time.Millisecond)
	// First crash forces a membership change...
	h.machines[4].crashed = true
	// ...and as soon as any survivor leaves Operational, crash another.
	crashed := false
	ok := h.runUntil(func() bool {
		if !crashed {
			for _, id := range []proto.NodeID{1, 2, 3} {
				if s := h.machines[id].m.State(); s == StateGather || s == StateCommit || s == StateRecovery {
					h.machines[3].crashed = true
					crashed = true
					break
				}
			}
			return false
		}
		for _, id := range []proto.NodeID{1, 2} {
			m := h.machines[id].m
			if m.State() != StateOperational || len(m.Members()) != 2 {
				return false
			}
		}
		return true
	}, 10*time.Second)
	if !ok {
		t.Fatalf("cascaded crash not survived: crashedSecond=%v n1=%v n2=%v",
			crashed, h.machines[1].m.State(), h.machines[2].m.State())
	}
	ringsConsistent(t, h)
	noDuplicateDeliveries(t, h)
}

func TestFragmentedMessageSurvivesMembershipChange(t *testing.T) {
	// A 5 KB message is mid-flight (multiple fragments) when a bystander
	// node crashes; recovery must deliver the message exactly once and
	// uncorrupted at all survivors.
	h := newHarness(t, 4, nil)
	h.start()
	h.waitRing(3 * time.Second)
	big := make([]byte, 5000)
	rng := rand.New(rand.NewSource(3))
	rng.Read(big)
	h.submit(2, append([]byte(nil), big...))
	h.run(300 * time.Microsecond) // a fragment or two in flight
	h.machines[4].crashed = true
	ok := h.runUntil(func() bool {
		for _, id := range []proto.NodeID{1, 2, 3} {
			found := false
			for _, d := range h.machines[id].delivered {
				if bytes.Equal(d.Payload, big) {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		return true
	}, 5*time.Second)
	if !ok {
		t.Fatal("fragmented message lost across membership change")
	}
	noDuplicateDeliveries(t, h)
}

func TestChurnJoinLeaveCycles(t *testing.T) {
	// Node 3 repeatedly crashes and rejoins; the ring must stabilise each
	// time and agreement must hold throughout.
	h := newHarness(t, 3, nil)
	h.start()
	h.waitRing(3 * time.Second)
	for cycle := 0; cycle < 3; cycle++ {
		h.submit(1, []byte(fmt.Sprintf("cycle-%d", cycle)))
		h.machines[3].crashed = true
		ok := h.runUntil(func() bool {
			return len(h.machines[1].m.Members()) == 2 &&
				h.machines[1].m.State() == StateOperational
		}, 5*time.Second)
		if !ok {
			t.Fatalf("cycle %d: ring did not shrink", cycle)
		}
		// Fresh instance rejoins under the same identity.
		hn := h.machines[3]
		hn.crashed = false
		hn.timers = make(map[proto.TimerID]uint64)
		hn.acts = proto.Actions{}
		m, err := NewMachine(DefaultConfig(3), (*hOut)(hn), &hn.acts)
		if err != nil {
			t.Fatal(err)
		}
		hn.m = m
		h.at(h.now, func() { hn.m.Start(h.now); hn.drain() })
		ok = h.runUntil(func() bool {
			for _, id := range h.order {
				if len(h.machines[id].m.Members()) != 3 ||
					h.machines[id].m.State() != StateOperational {
					return false
				}
			}
			return true
		}, 8*time.Second)
		if !ok {
			t.Fatalf("cycle %d: rejoin did not stabilise", cycle)
		}
	}
	ringsConsistent(t, h)
}

func TestRandomChurnPropertyAgreement(t *testing.T) {
	// Property: under randomized loss and crash schedules, surviving
	// nodes never diverge (per-configuration prefix consistency) and
	// never deliver duplicates.
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			h := newHarness(t, 4, nil)
			// 2% random loss on everything.
			h.drop = func(from, to proto.NodeID, data []byte) bool {
				return rng.Intn(50) == 0
			}
			h.start()
			h.waitRing(10 * time.Second)
			for i := 0; i < 60; i++ {
				h.submit(proto.NodeID(1+rng.Intn(4)), []byte(fmt.Sprintf("s%d-m%d", seed, i)))
				if i%20 == 19 {
					h.run(20 * time.Millisecond)
				}
			}
			// One random crash mid-run.
			victim := proto.NodeID(2 + rng.Intn(3))
			h.machines[victim].crashed = true
			h.run(3 * time.Second)
			ringsConsistent(t, h)
			noDuplicateDeliveries(t, h)
			// Survivors stabilise on a 3-member ring.
			for _, id := range h.order {
				if id == victim {
					continue
				}
				m := h.machines[id].m
				if m.State() != StateOperational || len(m.Members()) != 3 {
					t.Fatalf("node %v not stable: %v %v", id, m.State(), m.Members())
				}
			}
		})
	}
}

// --- helpers ---

// joinForTest builds raw join packets for adversarial injection.
type joinForTest struct {
	sender  proto.NodeID
	ringSeq uint32
	proc    []proto.NodeID
	fail    []proto.NodeID
}

func (j *joinForTest) encode(t *testing.T) []byte {
	t.Helper()
	pkt := &wire.JoinPacket{Sender: j.sender, RingSeq: j.ringSeq, ProcSet: j.proc, FailSet: j.fail}
	data, err := pkt.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// addNode attaches a fresh machine to a running harness.
func addNode(t *testing.T, h *harness, id proto.NodeID) *hNode {
	t.Helper()
	hn := &hNode{h: h, id: id, timers: make(map[proto.TimerID]uint64)}
	m, err := NewMachine(DefaultConfig(id), (*hOut)(hn), &hn.acts)
	if err != nil {
		t.Fatal(err)
	}
	hn.m = m
	h.machines[id] = hn
	h.order = append(h.order, id)
	h.at(h.now, func() { hn.m.Start(h.now); hn.drain() })
	return hn
}

func TestJoinUnderSaturatedLoad(t *testing.T) {
	// A node joins while the ring is saturated with traffic; the
	// membership change must complete and agreement must hold.
	h := newHarness(t, 3, nil)
	h.start()
	h.waitRing(3 * time.Second)
	stop := false
	var feed func()
	feed = func() {
		if stop {
			return
		}
		for _, id := range []proto.NodeID{1, 2, 3} {
			n := h.machines[id]
			if n.m.Backlog() < 16 {
				h.submit(id, []byte(fmt.Sprintf("%v@%v", id, h.now)))
			}
		}
		h.at(h.now+time.Millisecond, feed)
	}
	h.at(h.now, feed)
	h.run(50 * time.Millisecond)

	addNode(t, h, 4)
	ok := h.runUntil(func() bool {
		for _, id := range h.order {
			m := h.machines[id].m
			if m.State() != StateOperational || len(m.Members()) != 4 {
				return false
			}
		}
		return true
	}, 10*time.Second)
	stop = true
	if !ok {
		for _, id := range h.order {
			m := h.machines[id].m
			t.Logf("node %v: %v %v", id, m.State(), m.Members())
		}
		t.Fatal("join under load never completed")
	}
	h.run(200 * time.Millisecond)
	ringsConsistent(t, h)
	noDuplicateDeliveries(t, h)
}
