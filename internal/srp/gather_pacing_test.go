package srp

import (
	"testing"

	"github.com/totem-rrp/totem/internal/proto"
	"github.com/totem-rrp/totem/internal/wire"
)

// These tests pin the two defences against membership livelock that the
// torture harness forced into existence: stale-join filtering and paced
// singleton installation. Without them a cluster under heavy packet
// duplication can reform singleton rings thousands of times per second
// (see DESIGN.md §10).

func TestStaleJoinFromConcludedEpisodeIgnored(t *testing.T) {
	m, _, _ := gatherMachine(t, 1, 1, 2, 3)

	// A join from node 2 at epoch 5 sets its high-water mark.
	m.onJoin(0, &wire.JoinPacket{Sender: 2, RingSeq: 5, ProcSet: []proto.NodeID{1, 2, 3}})
	if m.joinEpoch[2] != 5 {
		t.Fatalf("joinEpoch[2] = %d, want 5", m.joinEpoch[2])
	}

	// A duplicate from an episode node 2 has since concluded (lower
	// epoch) carries a long-dead fail set; it must be dropped wholesale.
	m.onJoin(0, &wire.JoinPacket{Sender: 2, RingSeq: 3, ProcSet: []proto.NodeID{1, 2, 3}, FailSet: []proto.NodeID{3}})
	if m.failSet.contains(3) {
		t.Fatal("stale join's fail set leaked into the current round")
	}

	// The same information at the current epoch is genuine and merges.
	m.onJoin(0, &wire.JoinPacket{Sender: 2, RingSeq: 5, ProcSet: []proto.NodeID{1, 2, 3}, FailSet: []proto.NodeID{3}})
	if !m.failSet.contains(3) {
		t.Fatal("current-epoch join was not merged")
	}
}

func TestSingletonInstallWaitsForConsensusTimer(t *testing.T) {
	m, _, _ := gatherMachine(t, 1, 1, 2)
	m.failSet = newNodeSet(2)

	// Everyone else we know of is failed and we agree with ourselves, but
	// the round was not concluded by the consensus timer: hold the episode
	// open instead of minting a singleton ring at packet cadence.
	m.checkConsensus(0, false)
	if m.state != StateGather {
		t.Fatalf("state = %v, want gather (paced singleton install)", m.state)
	}

	// The consensus timeout concludes the round and installs the singleton.
	m.onConsensusTimeout(0)
	if m.state != StateOperational {
		t.Fatalf("state = %v, want operational after consensus timeout", m.state)
	}
	if members := m.Members(); len(members) != 1 || members[0] != 1 {
		t.Fatalf("members = %v, want singleton [1]", members)
	}
}

func TestSingletonStartStaysInstant(t *testing.T) {
	// A node that boots alone (procSet == {self}) must still install its
	// singleton ring immediately — the pacing guard only applies when
	// other processors are known and failed.
	out := &fakeOut{}
	acts := &proto.Actions{}
	m, err := NewMachine(DefaultConfig(7), out, acts)
	if err != nil {
		t.Fatal(err)
	}
	m.Start(0)
	if m.state != StateOperational {
		t.Fatalf("state = %v, want operational right after solo start", m.state)
	}
}
