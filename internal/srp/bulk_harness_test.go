package srp

import (
	"bytes"
	"testing"
	"time"

	"github.com/totem-rrp/totem/internal/bulk"
	"github.com/totem-rrp/totem/internal/proto"
	"github.com/totem-rrp/totem/internal/wire"
)

// Bulk-lane tests on the loopback harness: end-to-end transfer delivery,
// the windowed sender resuming across a configuration change, the
// mid-fragment rewind fix, per-visit pacing, and envelope-buffer
// recycling.

// bulkPayload builds a deterministic, position-dependent payload so that
// any reordering or truncation shows up as a byte mismatch.
func bulkPayload(n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(i*131 + i>>8)
	}
	return p
}

// bulkDeliveries filters a node's deliveries down to completed bulk
// transfers.
func bulkDeliveries(n *hNode) []proto.Delivery {
	var out []proto.Delivery
	for _, d := range n.delivered {
		if d.Bulk {
			out = append(out, d)
		}
	}
	return out
}

func (h *harness) submitBulk(id proto.NodeID, xfer uint64, off, total int, data []byte) bool {
	n := h.machines[id]
	ok := n.m.SubmitBulk(h.now, xfer, uint64(off), uint64(total), data)
	n.drain()
	return ok
}

// TestBulkEndToEndDelivery pushes one transfer through a three-node ring
// and checks the uniform-delivery contract: every member, including the
// sender, surfaces exactly one Bulk delivery with the byte-exact payload,
// and the sender sees one BulkAcked per chunk.
func TestBulkEndToEndDelivery(t *testing.T) {
	h := newHarness(t, 3, nil)
	h.start()
	h.waitRing(2 * time.Second)

	payload := bulkPayload(5000)
	const chunk = 700
	const id = 42
	for off := 0; off < len(payload); off += chunk {
		end := off + chunk
		if end > len(payload) {
			end = len(payload)
		}
		if !h.submitBulk(1, id, off, len(payload), payload[off:end]) {
			t.Fatalf("SubmitBulk rejected at offset %d", off)
		}
	}

	if !h.runUntil(func() bool {
		for _, id := range h.order {
			if len(bulkDeliveries(h.machines[id])) == 0 {
				return false
			}
		}
		return true
	}, 2*time.Second) {
		t.Fatalf("transfer did not complete everywhere")
	}

	var seq uint32
	for _, nid := range h.order {
		ds := bulkDeliveries(h.machines[nid])
		if len(ds) != 1 {
			t.Fatalf("node %v: %d bulk deliveries, want 1", nid, len(ds))
		}
		d := ds[0]
		if d.Sender != 1 {
			t.Fatalf("node %v: sender %v, want 1", nid, d.Sender)
		}
		if !bytes.Equal(d.Payload, payload) {
			t.Fatalf("node %v: payload mismatch (%d bytes, want %d)", nid, len(d.Payload), len(payload))
		}
		if seq == 0 {
			seq = d.Seq
		} else if d.Seq != seq {
			t.Fatalf("node %v: delivery seq %d, others saw %d", nid, d.Seq, seq)
		}
	}

	// The sender's self-delivery acks: one per chunk, offsets covering the
	// transfer exactly.
	want := (len(payload) + chunk - 1) / chunk
	acked := make(map[uint64]int)
	for _, ev := range h.machines[1].bulkEvs {
		if ev.Kind == proto.BulkAcked && ev.ID == id {
			acked[ev.Offset] += ev.Len
		}
	}
	if len(acked) != want {
		t.Fatalf("sender acked %d distinct offsets, want %d", len(acked), want)
	}
	sum := 0
	for _, l := range acked {
		sum += l
	}
	if sum != len(payload) {
		t.Fatalf("acked bytes %d, want %d", sum, len(payload))
	}
}

// pumpSender runs one iteration of the sender-side manager loop against a
// harness node: consume acks and reconfig signals, then fill the window.
// It is the srp-level model of what the transport runtime does.
func pumpSender(h *harness, nid proto.NodeID, id uint64, s *bulk.SendState, payload []byte) {
	n := h.machines[nid]
	for _, ev := range n.bulkEvs {
		switch ev.Kind {
		case proto.BulkAcked:
			if ev.ID == id {
				s.Ack(s.ChunkAt(int(ev.Offset)))
			}
		case proto.BulkReconfig:
			s.Reconfig()
		}
	}
	n.bulkEvs = n.bulkEvs[:0]
	for {
		i, ok := s.Next()
		if !ok {
			return
		}
		off, end := s.Range(i)
		if !n.m.SubmitBulk(h.now, id, uint64(off), uint64(len(payload)), payload[off:end]) {
			s.Fail(i)
			return // backpressure: retry on the next pump
		}
		n.drain()
	}
}

// TestBulkWindowedSenderResumesAcrossConfigChange crashes a member while a
// windowed transfer is in flight. The BulkReconfig signal rewinds the
// sender to its contiguous acknowledged prefix; re-sent chunks the
// survivors already hold are deduplicated, and the transfer completes
// exactly once at every survivor.
func TestBulkWindowedSenderResumesAcrossConfigChange(t *testing.T) {
	h := newHarness(t, 3, nil)
	h.start()
	h.waitRing(2 * time.Second)

	payload := bulkPayload(20000)
	const id = 7
	s := bulk.NewSendState(len(payload), 900, 4, 8)

	// Run until a few chunks are acknowledged, then crash node 3.
	if !h.runUntil(func() bool {
		pumpSender(h, 1, id, s, payload)
		acked, _ := s.Progress()
		return acked >= 4
	}, 2*time.Second) {
		t.Fatalf("transfer made no progress before the crash")
	}
	h.machines[3].crashed = true

	if !h.runUntil(func() bool {
		pumpSender(h, 1, id, s, payload)
		return s.Done() &&
			len(bulkDeliveries(h.machines[1])) > 0 &&
			len(bulkDeliveries(h.machines[2])) > 0
	}, 5*time.Second) {
		acked, total := s.Progress()
		t.Fatalf("transfer did not resume after reconfiguration: acked %d/%d, err=%v",
			acked, total, s.Err())
	}

	for _, nid := range []proto.NodeID{1, 2} {
		ds := bulkDeliveries(h.machines[nid])
		if len(ds) != 1 {
			t.Fatalf("node %v: %d bulk deliveries, want exactly 1", nid, len(ds))
		}
		if !bytes.Equal(ds[0].Payload, payload) {
			t.Fatalf("node %v: payload mismatch after resume", nid)
		}
	}

	// The survivors went through at least one configuration change and the
	// sender was told about it.
	sawReconfig := false
	for _, c := range h.machines[1].configs {
		if !c.Transitional && len(c.Members) == 2 {
			sawReconfig = true
		}
	}
	if !sawReconfig {
		t.Fatalf("no two-member configuration installed after crash")
	}
}

// TestMidFragmentConfigChangeRestartsWholeMessage pins the Packer.Rewind
// call in resetRingState: a message caught mid-fragmentation by a ring
// change (one fragment pulled and lost, cursor left mid-message) must be
// re-emitted whole on the new ring and delivered exactly once everywhere.
// Without the rewind the new ring sees a continuation chunk with no start
// and the message silently vanishes.
func TestMidFragmentConfigChangeRestartsWholeMessage(t *testing.T) {
	h := newHarness(t, 2, nil)
	h.start()
	h.waitRing(2 * time.Second)

	n1 := h.machines[1]
	big := bulkPayload(3 * wire.MaxPayload)
	n1.m.packer.Enqueue(append([]byte(nil), big...))

	// Pull the first fragment directly and drop it on the floor — the
	// machine is now mid-message with a fragment the ring never carried.
	pulled := n1.m.packer.NextChunksInteractive()
	if len(pulled) != 1 || pulled[0].Flags&wire.ChunkFirst == 0 || pulled[0].Flags&wire.ChunkLast != 0 {
		t.Fatalf("expected one First non-Last fragment, got %d chunks", len(pulled))
	}

	// Force a configuration change mid-fragment.
	oldRing := n1.m.Ring()
	n1.m.enterGather(h.now, nil, nil)
	n1.drain()
	h.waitRing(2 * time.Second)
	if n1.m.Ring() == oldRing {
		t.Fatalf("ring did not change")
	}

	if !h.runUntil(func() bool {
		for _, nid := range h.order {
			found := false
			for _, d := range h.machines[nid].delivered {
				if !d.Bulk && bytes.Equal(d.Payload, big) {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		return true
	}, 2*time.Second) {
		t.Fatalf("mid-fragment message was not re-delivered whole on the new ring")
	}

	for _, nid := range h.order {
		count := 0
		for _, d := range h.machines[nid].delivered {
			if !d.Bulk && bytes.Equal(d.Payload, big) {
				count++
			}
		}
		if count != 1 {
			t.Fatalf("node %v: message delivered %d times, want exactly once", nid, count)
		}
	}
}

// TestBulkPacingCapsBulkOnlyPacketsPerVisit saturates the bulk lane and
// counts fresh bulk-only data packets between consecutive token forwards
// at the sender: the count must reach the configured BulkMaxPerVisit
// (saturation actually hits the cap) and never exceed it.
func TestBulkPacingCapsBulkOnlyPacketsPerVisit(t *testing.T) {
	h := newHarness(t, 2, func(c *Config) {
		c.BulkMaxPerVisit = 3
		c.BulkYieldPerVisit = 1
	})
	h.start()
	h.waitRing(2 * time.Second)

	var cur, maxPer int
	h.drop = func(from, to proto.NodeID, data []byte) bool {
		if from != 1 {
			return false
		}
		switch k, _ := wire.PeekKind(data); k {
		case wire.KindData:
			if pkt, err := wire.DecodeData(data); err == nil &&
				pkt.Flags&wire.FlagRetrans == 0 &&
				len(pkt.Chunks) > 0 && pkt.Chunks[0].Flags&wire.ChunkBulk != 0 {
				cur++
				if cur > maxPer {
					maxPer = cur
				}
			}
		case wire.KindToken:
			cur = 0
		}
		return false
	}

	payload := bulkPayload(60 * 1200)
	const id = 9
	for off := 0; off < len(payload); off += 1200 {
		if !h.submitBulk(1, id, off, len(payload), payload[off:off+1200]) {
			t.Fatalf("SubmitBulk rejected at offset %d", off)
		}
	}

	if !h.runUntil(func() bool {
		return len(bulkDeliveries(h.machines[2])) > 0
	}, 5*time.Second) {
		t.Fatalf("saturating transfer did not complete")
	}
	if maxPer > 3 {
		t.Fatalf("observed %d bulk-only packets in one token visit, cap is 3", maxPer)
	}
	if maxPer != 3 {
		t.Fatalf("saturated lane never reached the per-visit cap (max %d, want 3)", maxPer)
	}
	if !bytes.Equal(bulkDeliveries(h.machines[2])[0].Payload, payload) {
		t.Fatalf("payload mismatch under pacing")
	}
}

// TestBulkBuffersRecycledAfterPrune checks the envelope-buffer lifecycle:
// once a transfer is delivered and the ring's safe horizon passes its
// packets, every harvested buffer moves from the per-seq map to the
// bounded free list — nothing leaks, and the free list respects its cap.
func TestBulkBuffersRecycledAfterPrune(t *testing.T) {
	h := newHarness(t, 2, nil)
	h.start()
	h.waitRing(2 * time.Second)

	payload := bulkPayload(30 * 1000)
	const id = 5
	for off := 0; off < len(payload); off += 1000 {
		if !h.submitBulk(1, id, off, len(payload), payload[off:off+1000]) {
			t.Fatalf("SubmitBulk rejected at offset %d", off)
		}
	}
	if !h.runUntil(func() bool {
		return len(bulkDeliveries(h.machines[2])) > 0
	}, 5*time.Second) {
		t.Fatalf("transfer did not complete")
	}

	// Keep the token moving so the safe-delivery horizon advances past the
	// bulk packets; interactive chatter forces full rotations.
	tick := 0
	if !h.runUntil(func() bool {
		tick++
		if tick%4 == 0 {
			h.submit(1, []byte("tick"))
			h.submit(2, []byte("tock"))
		}
		return len(h.machines[1].m.bulkBufs) == 0
	}, 5*time.Second) {
		t.Fatalf("bulk envelope buffers not recycled: %d seqs still held", len(h.machines[1].m.bulkBufs))
	}
	free := len(h.machines[1].m.bulkFree)
	if free == 0 {
		t.Fatalf("free list empty: prune recycled nothing")
	}
	if free > 64 {
		t.Fatalf("free list overgrew its cap: %d", free)
	}
}
