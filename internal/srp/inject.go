package srp

// Fault-injection hooks for the torture harness's arbitrary-initial-state
// recovery mode (DESIGN.md §12). Each hook scrambles soft protocol state
// the way a latent memory bug or a partially-applied restart would, and the
// machine is expected to re-converge on its own — via the duplicate-token
// filter reset in resetRingState, the retransmission machinery, or plain
// counter rebuilding over the next rotations. Production drivers never call
// these; they exist so the bounded-recovery invariant has something real to
// measure.

// TokenFilter exposes the duplicate-token filter state: the newest token
// generation seen on the current ring. Drivers use it to forge plausibly
// stale tokens for injection.
func (m *Machine) TokenFilter() (seq, rotation uint32, seen bool) {
	return m.lastTokenSeen.seq, m.lastTokenSeen.rotation, m.seenAnyToken
}

// CorruptTokenFilter poisons the duplicate-token filter with a generation
// skip tokens in the future. Every genuine token is then discarded as a
// duplicate until the token-loss timeout forces a ring reformation, whose
// resetRingState clears the filter — the self-stabilization path that
// core.Chaos.FrozenTokenFilter disables. Returns false in membership
// phases where the filter is not consulted.
func (m *Machine) CorruptTokenFilter(skip uint32) bool {
	if m.state != StateOperational && m.state != StateRecovery {
		return false
	}
	m.seenAnyToken = true
	m.lastTokenSeen = tokenKey{
		seq:      m.lastTokenSeen.seq + skip,
		rotation: m.lastTokenSeen.rotation + skip,
	}
	return true
}

// CorruptARU inflates the soft safe-delivery state: safeTo and the
// previous-rotation ARU snapshot jump to the sequencing high-water mark.
// The blast radius is bounded by construction — delivery stays capped by
// myAru and pruning by deliveredTo — and the next two token rotations
// rebuild both fields, so this corruption must heal without a reformation.
func (m *Machine) CorruptARU() bool {
	if m.state != StateOperational {
		return false
	}
	m.safeTo = m.highSeq
	m.prevTokenAru = m.highSeq
	m.havePrevTokenAru = true
	return true
}
