// Package sim is a deterministic discrete-event simulator for clusters of
// Totem nodes connected by N redundant broadcast networks. It substitutes
// for the paper's testbed (dual 100 Mbit/s Ethernets on Pentium-class
// hosts): links serialise frames at a configured bit rate, each node's CPU
// serialises packet handling at configured per-packet costs, and faults
// (network death, per-node send/receive block, partitions, random loss)
// are injectable at any virtual time. Same seed, same schedule — runs are
// exactly reproducible.
package sim

import (
	"container/heap"
	"time"

	"github.com/totem-rrp/totem/internal/proto"
)

// event is one scheduled callback.
type event struct {
	at  proto.Time
	seq uint64 // tie-break: FIFO among simultaneous events
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Simulator owns the virtual clock and event queue. Executed events are
// kept on a free list and reused, so a steady-state simulation schedules
// without allocating.
type Simulator struct {
	now    proto.Time
	events eventHeap
	seq    uint64
	free   []*event
}

// NewSimulator returns an empty simulator at time zero.
func NewSimulator() *Simulator {
	return &Simulator{}
}

// Now returns the current virtual time.
func (s *Simulator) Now() proto.Time { return s.now }

// At schedules fn at absolute virtual time t (clamped to now).
func (s *Simulator) At(t proto.Time, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	var e *event
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		e = new(event)
	}
	e.at, e.seq, e.fn = t, s.seq, fn
	heap.Push(&s.events, e)
}

// After schedules fn d after the current time.
func (s *Simulator) After(d time.Duration, fn func()) {
	s.At(s.now+d, fn)
}

// Step executes the next event; it returns false when the queue is empty.
func (s *Simulator) Step() bool {
	if len(s.events) == 0 {
		return false
	}
	e := heap.Pop(&s.events).(*event)
	s.now = e.at
	fn := e.fn
	// Recycle before running: e is off the heap and fn may schedule.
	e.fn = nil
	s.free = append(s.free, e)
	fn()
	return true
}

// Run executes events until the queue empties or the clock passes until.
// The clock is left at min(until, last event time).
func (s *Simulator) Run(until proto.Time) {
	for len(s.events) > 0 && s.events[0].at <= until {
		s.Step()
	}
	if s.now < until {
		s.now = until
	}
}

// Pending returns the number of queued events.
func (s *Simulator) Pending() int { return len(s.events) }
