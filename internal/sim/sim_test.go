package sim

import (
	"testing"
	"time"

	"github.com/totem-rrp/totem/internal/proto"
	"github.com/totem-rrp/totem/internal/wire"
)

func TestSimulatorOrdersEventsByTime(t *testing.T) {
	s := NewSimulator()
	var got []int
	s.At(30*time.Millisecond, func() { got = append(got, 3) })
	s.At(10*time.Millisecond, func() { got = append(got, 1) })
	s.At(20*time.Millisecond, func() { got = append(got, 2) })
	s.Run(time.Second)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v", got)
	}
	if s.Now() != time.Second {
		t.Fatalf("Now = %v after Run", s.Now())
	}
}

func TestSimulatorFIFOAmongSimultaneousEvents(t *testing.T) {
	s := NewSimulator()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(time.Millisecond, func() { got = append(got, i) })
	}
	s.Run(time.Second)
	for i, v := range got {
		if v != i {
			t.Fatalf("simultaneous events reordered: %v", got)
		}
	}
}

func TestSimulatorRunStopsAtBoundary(t *testing.T) {
	s := NewSimulator()
	fired := false
	s.At(2*time.Second, func() { fired = true })
	s.Run(time.Second)
	if fired {
		t.Fatal("future event fired early")
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d", s.Pending())
	}
	s.Run(3 * time.Second)
	if !fired {
		t.Fatal("event never fired")
	}
}

func TestSimulatorPastEventsClampToNow(t *testing.T) {
	s := NewSimulator()
	s.Run(time.Second)
	fired := time.Duration(0)
	s.At(0, func() { fired = s.Now() })
	s.Step()
	if fired != time.Second {
		t.Fatalf("past event at %v, want clamped to 1s", fired)
	}
}

func TestSimulatorAfterIsRelative(t *testing.T) {
	s := NewSimulator()
	var at time.Duration
	s.At(time.Second, func() {
		s.After(500*time.Millisecond, func() { at = s.Now() })
	})
	s.Run(5 * time.Second)
	if at != 1500*time.Millisecond {
		t.Fatalf("After fired at %v", at)
	}
}

func TestSimulatorStepEmptyQueue(t *testing.T) {
	s := NewSimulator()
	if s.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

func TestFrameTimeMath(t *testing.T) {
	p := DefaultNetworkParams() // 100 Mbit/s
	// A maximum frame (1424B payload packet ≈ 1518B on the wire) takes
	// 1518*8/1e8 s ≈ 121.4 µs.
	full := p.frameTime(wire.MaxPayload + 22) // encoded size of a full data packet
	if full < 120*time.Microsecond || full > 123*time.Microsecond {
		t.Fatalf("full frame time = %v", full)
	}
	// Infinite bandwidth: zero serialisation delay.
	inf := NetworkParams{BandwidthBits: 0}
	if inf.frameTime(1000) != 0 {
		t.Fatal("infinite bandwidth has serialisation delay")
	}
	// Monotone in size.
	if p.frameTime(100) >= p.frameTime(1000) {
		t.Fatal("frame time not monotone")
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := NewCluster(Config{Nodes: 0, Networks: 1}); err == nil {
		t.Fatal("zero nodes accepted")
	}
	if _, err := NewCluster(Config{Nodes: 1, Networks: 0}); err == nil {
		t.Fatal("zero networks accepted")
	}
}

func TestNetworkSerialisationDelaysBroadcast(t *testing.T) {
	// Two packets sent back to back on a 100 Mbit/s medium must arrive
	// separated by at least one frame time: the medium is serialised.
	c := mustCluster(t, baseConfig(2, 1, proto.ReplicationNone))
	c.Start()
	waitRing(t, c, 3*time.Second)
	n2 := c.Node(2)
	var arrivals []time.Duration
	n2.OnDeliver = func(d proto.Delivery) {
		arrivals = append(arrivals, c.Sim.Now())
	}
	payload := make([]byte, 1400) // one near-full frame each
	c.Submit(1, payload)
	c.Submit(1, append([]byte(nil), payload...))
	c.Run(100 * time.Millisecond)
	if len(arrivals) != 2 {
		t.Fatalf("deliveries = %d", len(arrivals))
	}
	gap := arrivals[1] - arrivals[0]
	frame := DefaultNetworkParams().frameTime(1400 + 25)
	if gap < frame/2 {
		t.Fatalf("frames not serialised: gap %v < half frame %v", gap, frame)
	}
}
