package sim

import (
	"fmt"
	"testing"
	"time"

	"github.com/totem-rrp/totem/internal/proto"
	"github.com/totem-rrp/totem/internal/srp"
)

// operational reports whether every node is Operational on one common ring
// containing every node.
func operational(c *Cluster) bool {
	var ring proto.RingID
	for i, id := range c.NodeIDs() {
		m := c.Node(id).Stack.SRP()
		if m.State() != srp.StateOperational {
			return false
		}
		if len(m.Members()) != len(c.NodeIDs()) {
			return false
		}
		if i == 0 {
			ring = m.Ring()
		} else if m.Ring() != ring {
			return false
		}
	}
	return true
}

// waitRing runs the cluster until a common full ring forms.
func waitRing(t *testing.T, c *Cluster, budget time.Duration) {
	t.Helper()
	if !c.RunUntil(func() bool { return operational(c) }, 10*time.Millisecond, budget) {
		for _, id := range c.NodeIDs() {
			m := c.Node(id).Stack.SRP()
			t.Logf("node %v: state=%v ring=%v members=%v", id, m.State(), m.Ring(), m.Members())
		}
		t.Fatalf("ring did not form within %v", budget)
	}
}

func mustCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	return c
}

func baseConfig(nodes, networks int, style proto.ReplicationStyle) Config {
	return Config{
		Nodes:    nodes,
		Networks: networks,
		Style:    style,
		Net:      DefaultNetworkParams(),
		Host:     DefaultNodeParams(),
		Seed:     1,
	}
}

func TestSingletonFormsRing(t *testing.T) {
	c := mustCluster(t, baseConfig(1, 1, proto.ReplicationNone))
	c.Start()
	waitRing(t, c, time.Second)
	n := c.Node(1)
	if len(n.Configs) == 0 || n.Configs[len(n.Configs)-1].Transitional {
		t.Fatalf("expected a regular config change, got %+v", n.Configs)
	}
}

func TestSingletonDeliversOwnMessages(t *testing.T) {
	c := mustCluster(t, baseConfig(1, 1, proto.ReplicationNone))
	c.Start()
	waitRing(t, c, time.Second)
	for i := 0; i < 5; i++ {
		if !c.Submit(1, []byte(fmt.Sprintf("m%d", i))) {
			t.Fatalf("submit %d rejected", i)
		}
	}
	c.Run(50 * time.Millisecond)
	n := c.Node(1)
	if len(n.Delivered) != 5 {
		t.Fatalf("delivered %d messages, want 5", len(n.Delivered))
	}
	for i, d := range n.Delivered {
		if string(d.Payload) != fmt.Sprintf("m%d", i) {
			t.Fatalf("delivery %d = %q", i, d.Payload)
		}
	}
}

func TestRingFormation(t *testing.T) {
	cases := []struct {
		nodes, networks int
		style           proto.ReplicationStyle
	}{
		{2, 1, proto.ReplicationNone},
		{4, 1, proto.ReplicationNone},
		{4, 2, proto.ReplicationActive},
		{4, 2, proto.ReplicationPassive},
		{4, 3, proto.ReplicationActivePassive},
		{6, 2, proto.ReplicationActive},
		{6, 2, proto.ReplicationPassive},
		{3, 3, proto.ReplicationActive},
		{5, 4, proto.ReplicationActivePassive},
	}
	for _, tc := range cases {
		name := fmt.Sprintf("%dnodes_%dnets_%v", tc.nodes, tc.networks, tc.style)
		t.Run(name, func(t *testing.T) {
			c := mustCluster(t, baseConfig(tc.nodes, tc.networks, tc.style))
			c.Start()
			waitRing(t, c, 3*time.Second)
			// Every node must have delivered a regular configuration
			// listing the full membership.
			for _, id := range c.NodeIDs() {
				n := c.Node(id)
				last := n.Configs[len(n.Configs)-1]
				if last.Transitional || len(last.Members) != tc.nodes {
					t.Fatalf("node %v final config %+v", id, last)
				}
			}
		})
	}
}

// submitAndDrain submits count messages from every node and runs until all
// nodes have delivered everything (or budget expires).
func submitAndDrain(t *testing.T, c *Cluster, perNode int, budget time.Duration) {
	t.Helper()
	total := perNode * len(c.NodeIDs())
	for i := 0; i < perNode; i++ {
		for _, id := range c.NodeIDs() {
			payload := []byte(fmt.Sprintf("%v/%d", id, i))
			if !c.Submit(id, payload) {
				t.Fatalf("submit rejected for %v #%d", id, i)
			}
		}
	}
	ok := c.RunUntil(func() bool {
		for _, id := range c.NodeIDs() {
			if len(c.Node(id).Delivered) < total {
				return false
			}
		}
		return true
	}, 10*time.Millisecond, budget)
	if !ok {
		for _, id := range c.NodeIDs() {
			t.Logf("node %v delivered %d/%d state=%v", id, len(c.Node(id).Delivered), total, c.Node(id).Stack.SRP().State())
		}
		t.Fatalf("not all messages delivered within %v", budget)
	}
}

// assertIdenticalOrder verifies all nodes delivered the identical sequence.
func assertIdenticalOrder(t *testing.T, c *Cluster) {
	t.Helper()
	ids := c.NodeIDs()
	ref := c.Node(ids[0]).Delivered
	for _, id := range ids[1:] {
		got := c.Node(id).Delivered
		if len(got) != len(ref) {
			t.Fatalf("node %v delivered %d, node %v delivered %d", ids[0], len(ref), id, len(got))
		}
		for i := range ref {
			if ref[i].Sender != got[i].Sender || ref[i].Seq != got[i].Seq ||
				string(ref[i].Payload) != string(got[i].Payload) {
				t.Fatalf("order mismatch at %d: %v vs %v", i, ref[i], got[i])
			}
		}
	}
}

func TestTotalOrder(t *testing.T) {
	styles := []struct {
		networks int
		style    proto.ReplicationStyle
	}{
		{1, proto.ReplicationNone},
		{2, proto.ReplicationActive},
		{2, proto.ReplicationPassive},
		{3, proto.ReplicationActivePassive},
	}
	for _, tc := range styles {
		t.Run(tc.style.String(), func(t *testing.T) {
			c := mustCluster(t, baseConfig(4, tc.networks, tc.style))
			c.Start()
			waitRing(t, c, 3*time.Second)
			submitAndDrain(t, c, 25, 5*time.Second)
			assertIdenticalOrder(t, c)
		})
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []proto.Delivery {
		c := mustCluster(t, baseConfig(4, 2, proto.ReplicationPassive))
		c.SetLoss(0, 0.01)
		c.Start()
		waitRing(t, c, 3*time.Second)
		for i := 0; i < 10; i++ {
			for _, id := range c.NodeIDs() {
				c.Submit(id, []byte(fmt.Sprintf("%v-%d", id, i)))
			}
		}
		c.Run(2 * time.Second)
		return c.Node(1).Delivered
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs diverged: %d vs %d deliveries", len(a), len(b))
	}
	for i := range a {
		if a[i].Seq != b[i].Seq || string(a[i].Payload) != string(b[i].Payload) {
			t.Fatalf("runs diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestScaleEightNodesThreeNetworks(t *testing.T) {
	// Full stack at a larger scale than the paper's testbed: 8 nodes on
	// 3 networks with active-passive replication.
	c := mustCluster(t, baseConfig(8, 3, proto.ReplicationActivePassive))
	c.Start()
	waitRing(t, c, 10*time.Second)
	submitAndDrain(t, c, 10, 10*time.Second)
	assertIdenticalOrder(t, c)
}

func TestRunUntilHonoursBudget(t *testing.T) {
	c := mustCluster(t, baseConfig(1, 1, proto.ReplicationNone))
	c.Start()
	start := c.Sim.Now()
	if c.RunUntil(func() bool { return false }, 10*time.Millisecond, 100*time.Millisecond) {
		t.Fatal("impossible condition reported true")
	}
	if got := c.Sim.Now() - start; got < 100*time.Millisecond {
		t.Fatalf("budget cut short: %v", got)
	}
}
