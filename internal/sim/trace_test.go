package sim

import (
	"strings"
	"testing"
	"time"

	"github.com/totem-rrp/totem/internal/proto"
	"github.com/totem-rrp/totem/internal/trace"
)

func TestClusterEmitsTraceEvents(t *testing.T) {
	counter := trace.NewCounter()
	ring := trace.NewRing(256)
	cfg := baseConfig(3, 2, proto.ReplicationActive)
	cfg.Trace = trace.Multi{counter, ring}
	c := mustCluster(t, cfg)
	c.Start()
	waitRing(t, c, 3*time.Second)
	c.Submit(1, []byte("traced"))
	c.Run(100 * time.Millisecond)
	c.KillNetwork(1)
	c.Run(2 * time.Second)

	if counter.Count(trace.PacketSent) == 0 || counter.Count(trace.PacketReceived) == 0 {
		t.Fatal("no packet events traced")
	}
	if counter.Count(trace.Delivered) == 0 {
		t.Fatal("no delivery events traced")
	}
	if counter.Count(trace.ConfigChanged) == 0 {
		t.Fatal("no config events traced")
	}
	// The network kill must eventually surface as fault events... but an
	// idle ring still rotates tokens, so give the monitors traffic.
	for i := 0; i < 50; i++ {
		c.Submit(1, []byte("more"))
	}
	c.Run(2 * time.Second)
	if counter.Count(trace.FaultRaised) == 0 {
		t.Fatal("no fault events traced after network death")
	}
	if counter.Count(trace.Machine) == 0 {
		t.Fatal("no machine probe events traced")
	}
	if counter.CodeCount(proto.ProbeTokenGathered) == 0 {
		t.Fatal("active gate never reported a gathered token")
	}
	if counter.CodeCount(proto.ProbePhase) == 0 {
		t.Fatal("membership never reported a phase transition")
	}
	if ring.Len() == 0 {
		t.Fatal("ring tracer retained nothing")
	}
}

func TestTraceDetailFormatting(t *testing.T) {
	ring := trace.NewRing(2048)
	cfg := baseConfig(2, 1, proto.ReplicationNone)
	cfg.Trace = ring
	c := mustCluster(t, cfg)
	c.Start()
	waitRing(t, c, 3*time.Second)
	c.Submit(1, []byte("x"))
	c.Run(50 * time.Millisecond)
	var sawToken, sawData bool
	for _, e := range ring.Events(nil) {
		if e.Kind != trace.PacketSent {
			continue
		}
		// Packet events carry typed payloads; the text is derived lazily.
		switch text := e.Text(); {
		case strings.Contains(text, "token"):
			sawToken = true
		case strings.Contains(text, "data"):
			sawData = true
		}
	}
	if !sawToken || !sawData {
		t.Fatalf("trace details missing packet kinds: token=%v data=%v", sawToken, sawData)
	}
}
