package sim

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/totem-rrp/totem/internal/proto"
	"github.com/totem-rrp/totem/internal/srp"
	"github.com/totem-rrp/totem/internal/stack"
)

// TestSoakRandomFaults drives the full stack (SRP + RRP + simulator)
// through a randomized schedule of network deaths and repairs, interface
// faults, node crashes and load, then checks the global correctness
// invariants:
//
//  1. per-configuration agreement: within any ring, all nodes' delivery
//     sequences are prefix-consistent;
//  2. no duplicate deliveries anywhere;
//  3. after the dust settles, the survivors converge on one operational
//     ring and still make progress.
//
// Repaired networks are left to the recovery monitor: nobody calls
// Readmit, exercising the automatic-readmission path under chaos.
func TestSoakRandomFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	styles := []struct {
		networks int
		style    proto.ReplicationStyle
	}{
		{2, proto.ReplicationActive},
		{2, proto.ReplicationPassive},
		{3, proto.ReplicationActivePassive},
	}
	for seed := int64(1); seed <= 3; seed++ {
		for _, tc := range styles {
			name := fmt.Sprintf("%v/seed%d", tc.style, seed)
			t.Run(name, func(t *testing.T) {
				soak(t, tc.networks, tc.style, seed, false)
			})
		}
	}
}

// TestSoakManualReadmitCompat replays one soak schedule with AutoReadmit
// disabled and explicit operator readmissions, pinning the paper's
// original manual-only model.
func TestSoakManualReadmitCompat(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	soak(t, 2, proto.ReplicationPassive, 1, true)
}

func soak(t *testing.T, networks int, style proto.ReplicationStyle, seed int64, manual bool) {
	t.Helper()
	const nodes = 5
	cfg := baseConfig(nodes, networks, style)
	cfg.Seed = seed
	if manual {
		cfg.TuneSRP = func(_ proto.NodeID, sc *stack.Config) {
			sc.RRP.AutoReadmit = false
		}
	}
	c := mustCluster(t, cfg)
	c.Start()
	waitRing(t, c, 5*time.Second)

	rng := rand.New(rand.NewSource(seed * 977))
	crashed := map[proto.NodeID]bool{}
	netDown := make([]bool, networks)

	// Light steady traffic from every live node.
	msgID := 0
	sendBurst := func() {
		for _, id := range c.NodeIDs() {
			if crashed[id] {
				continue
			}
			for k := 0; k < 4; k++ {
				msgID++
				c.Submit(id, []byte(fmt.Sprintf("%v-%d", id, msgID)))
			}
		}
	}

	// 40 rounds of 100 ms: traffic plus a random event every few rounds.
	for round := 0; round < 40; round++ {
		sendBurst()
		if round%4 == 3 {
			switch ev := rng.Intn(5); ev {
			case 0: // kill a random network (never all of them)
				up := 0
				for _, d := range netDown {
					if !d {
						up++
					}
				}
				i := rng.Intn(networks)
				if up > 1 && !netDown[i] {
					netDown[i] = true
					c.KillNetwork(i)
				}
			case 1: // repair a dead network; readmit manually or let the
				// recovery monitor notice on its own
				for i, d := range netDown {
					if d {
						netDown[i] = false
						c.ReviveNetwork(i)
						if manual {
							for _, id := range c.NodeIDs() {
								if !crashed[id] {
									c.Node(id).Stack.Replicator().Readmit(i)
								}
							}
						}
						break
					}
				}
			case 2: // interface fault on a random node/network, later undone
				id := proto.NodeID(1 + rng.Intn(nodes))
				net := rng.Intn(networks)
				if !crashed[id] {
					c.BlockSend(id, net, true)
					c.Sim.After(500*time.Millisecond, func() {
						c.BlockSend(id, net, false)
					})
				}
			case 3: // crash one node (keep a quorum of 3 alive)
				if len(crashed) < nodes-3 {
					id := proto.NodeID(2 + rng.Intn(nodes-1))
					if !crashed[id] {
						crashed[id] = true
						c.Crash(id)
					}
				}
			case 4: // transient loss burst on one network
				net := rng.Intn(networks)
				c.SetLoss(net, 0.05)
				c.Sim.After(300*time.Millisecond, func() { c.SetLoss(net, 0) })
			}
		}
		c.Run(100 * time.Millisecond)
	}

	// Settle: repair everything and let the ring converge. In manual mode
	// the operator readmits every network; otherwise the recovery monitor
	// is left to do it.
	for i := range netDown {
		if netDown[i] {
			c.ReviveNetwork(i)
			netDown[i] = false
		}
	}
	if manual {
		for _, id := range c.NodeIDs() {
			if crashed[id] {
				continue
			}
			for i := 0; i < networks; i++ {
				c.Node(id).Stack.Replicator().Readmit(i)
			}
		}
	}
	live := 0
	for _, id := range c.NodeIDs() {
		if !crashed[id] {
			live++
		}
	}
	settled := c.RunUntil(func() bool {
		var ring proto.RingID
		first := true
		for _, id := range c.NodeIDs() {
			if crashed[id] {
				continue
			}
			m := c.Node(id).Stack.SRP()
			if m.State() != srp.StateOperational || len(m.Members()) != live {
				return false
			}
			if first {
				ring, first = m.Ring(), false
			} else if m.Ring() != ring {
				return false
			}
		}
		return true
	}, 50*time.Millisecond, 20*time.Second)
	if !settled {
		for _, id := range c.NodeIDs() {
			m := c.Node(id).Stack.SRP()
			t.Logf("node %v crashed=%v state=%v members=%v faulty=%v",
				id, crashed[id], m.State(), m.Members(), c.Node(id).Stack.Replicator().Faulty())
		}
		t.Fatal("survivors never settled on one ring")
	}

	// Progress after the storm.
	probe := firstLive(c, crashed)
	before := c.Node(probe).DeliveredCount
	sendBurst()
	c.Run(2 * time.Second)
	if c.Node(probe).DeliveredCount <= before {
		t.Fatal("no progress after settling")
	}

	// Invariant checks over the whole run.
	checkPrefixConsistency(t, c, crashed)
	checkNoDuplicates(t, c, crashed)
}

func firstLive(c *Cluster, crashed map[proto.NodeID]bool) proto.NodeID {
	for _, id := range c.NodeIDs() {
		if !crashed[id] {
			return id
		}
	}
	return c.NodeIDs()[0]
}

// checkPrefixConsistency groups every node's deliveries by ring and
// verifies pairwise prefix agreement within each ring.
func checkPrefixConsistency(t *testing.T, c *Cluster, crashed map[proto.NodeID]bool) {
	t.Helper()
	perRing := map[proto.RingID]map[proto.NodeID][]proto.Delivery{}
	for _, id := range c.NodeIDs() {
		for _, d := range c.Node(id).Delivered {
			m := perRing[d.Ring]
			if m == nil {
				m = map[proto.NodeID][]proto.Delivery{}
				perRing[d.Ring] = m
			}
			m[id] = append(m[id], d)
		}
	}
	for ring, m := range perRing {
		var ref []proto.Delivery
		var refNode proto.NodeID
		for id, s := range m {
			if ref == nil {
				ref, refNode = s, id
				continue
			}
			n := min(len(ref), len(s))
			for i := 0; i < n; i++ {
				if ref[i].Seq != s[i].Seq || ref[i].Sender != s[i].Sender ||
					!bytes.Equal(ref[i].Payload, s[i].Payload) {
					t.Fatalf("ring %v: nodes %v and %v diverge at %d:\n  %v %q\n  %v %q",
						ring, refNode, id, i, ref[i].Seq, ref[i].Payload, s[i].Seq, s[i].Payload)
				}
			}
		}
	}
}

// checkNoDuplicates verifies no node delivered the same message twice.
func checkNoDuplicates(t *testing.T, c *Cluster, crashed map[proto.NodeID]bool) {
	t.Helper()
	for _, id := range c.NodeIDs() {
		seen := map[string]bool{}
		for _, d := range c.Node(id).Delivered {
			// Message payloads are globally unique in this workload.
			key := string(d.Payload)
			if seen[key] {
				t.Fatalf("node %v delivered %q twice", id, key)
			}
			seen[key] = true
		}
	}
}
