package sim

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/totem-rrp/totem/internal/proto"
	"github.com/totem-rrp/totem/internal/stack"
	"github.com/totem-rrp/totem/internal/trace"
	"github.com/totem-rrp/totem/internal/wire"
)

// NetworkParams models one broadcast LAN.
type NetworkParams struct {
	// BandwidthBits is the link rate in bits/second (the whole broadcast
	// medium is serialised, as on a hub or a switch flooding broadcast
	// frames). Zero means infinitely fast.
	BandwidthBits int64
	// Latency is the propagation + stack delay per hop.
	Latency time.Duration
	// LossProb drops each (frame, receiver) pair independently.
	LossProb float64
}

// DefaultNetworkParams models the paper's 100 Mbit/s Ethernet.
func DefaultNetworkParams() NetworkParams {
	return NetworkParams{
		BandwidthBits: 100_000_000,
		Latency:       60 * time.Microsecond,
	}
}

// NodeParams models one host's packet-processing costs (DESIGN.md §6).
type NodeParams struct {
	// SendCost is CPU time per packet handed to one network's stack.
	SendCost time.Duration
	// RecvCost is CPU time per packet received from any network.
	RecvCost time.Duration
	// DeliverCost is CPU time per message delivered to the application
	// (ordering, liveness bookkeeping).
	DeliverCost time.Duration
}

// DefaultNodeParams is calibrated so the simulated baseline reproduces the
// paper's headline (~9000+ 1KB msgs/sec ≈ 90% of a 100 Mbit/s Ethernet,
// network-bound) while passive replication on two networks goes CPU-bound
// (paper §8).
func DefaultNodeParams() NodeParams {
	return NodeParams{
		SendCost:    28 * time.Microsecond,
		RecvCost:    30 * time.Microsecond,
		DeliverCost: 40 * time.Microsecond,
	}
}

// wireSlack approximates the header bytes outside the encoded Totem packet
// (Ethernet, IP, UDP), chosen so a full 1424-byte-payload data packet
// occupies exactly one maximum 1518-byte frame.
const wireSlack = wire.FrameOverhead - 22

// frameTime returns the serialisation delay of an encoded packet.
func (p NetworkParams) frameTime(encodedLen int) time.Duration {
	if p.BandwidthBits <= 0 {
		return 0
	}
	bits := int64(encodedLen+wireSlack) * 8
	return time.Duration(bits * int64(time.Second) / p.BandwidthBits)
}

// congestionWindow is the transmit-queue delay at which congestion-
// correlated loss reaches its configured rate: a frame that waited this
// long (or longer) for the medium is dropped with the full probability, an
// idle medium drops nothing.
const congestionWindow = 500 * time.Microsecond

// network is one simulated LAN.
type network struct {
	idx       int
	params    NetworkParams
	busyUntil proto.Time
	down      bool
	// groups partitions the network: delivery only happens within a
	// group. nil means fully connected.
	groups map[proto.NodeID]int
	// blockedPair blocks directed links ({from, to} keys): gray one-way
	// faults, independent of the reverse direction.
	blockedPair map[[2]proto.NodeID]bool
	// congestion scales per-frame loss by the transmit queueing delay.
	congestion float64
	// dupProb re-emits each frame once more (a babbling switch).
	dupProb float64
	// slowLat, when non-zero, overrides params.Latency: slow, not down.
	slowLat time.Duration
	rng     *rand.Rand
}

func (n *network) deliverable(from, to proto.NodeID) bool {
	if n.down {
		return false
	}
	if n.groups != nil && n.groups[from] != n.groups[to] {
		return false
	}
	if n.blockedPair != nil && n.blockedPair[[2]proto.NodeID{from, to}] {
		return false
	}
	if n.params.LossProb > 0 && n.rng.Float64() < n.params.LossProb {
		return false
	}
	return true
}

// Node is one simulated host: a protocol stack plus its CPU and observed
// application events.
type Node struct {
	ID      proto.NodeID
	Stack   *stack.Node
	cluster *Cluster

	cpuBusy  proto.Time
	timers   map[proto.TimerID]uint64 // generation per timer
	timerGen uint64
	crashed  bool
	// incarnation counts restarts; every scheduled closure captures it so
	// work queued for a previous life of the node (packet deliveries, CPU
	// slots, timers) can never reach the stack of a later one.
	incarnation uint64
	// timerSkew scales timer durations (a drifting local clock); 0 or 1
	// means nominal.
	timerSkew float64

	blockedSend map[int]bool
	blockedRecv map[int]bool

	// Observed application-facing events.
	Delivered []proto.Delivery
	Faults    []proto.FaultReport
	Cleared   []proto.ClearReport
	Configs   []proto.ConfigChange

	// Optional hooks invoked as events happen.
	OnDeliver func(proto.Delivery)
	OnFault   func(proto.FaultReport)
	OnCleared func(proto.ClearReport)
	OnConfig  func(proto.ConfigChange)

	// KeepPayloads controls whether delivered payload bytes are retained
	// (tests) or dropped to spare memory (benchmarks keep counters only).
	KeepPayloads   bool
	DeliveredCount uint64
	DeliveredBytes uint64
}

// Config configures a cluster.
type Config struct {
	// Nodes is the number of ring members; they get IDs 1..Nodes.
	Nodes int
	// Networks is N.
	Networks int
	// Style selects the replication style; K applies to active-passive.
	Style proto.ReplicationStyle
	K     int

	Net  NetworkParams
	Host NodeParams

	// Seed drives all randomness (loss); identical seeds replay exactly.
	Seed int64

	// TuneSRP and TuneRRP optionally adjust the per-layer configs.
	TuneSRP func(id proto.NodeID, c *stack.Config)

	// Trace, if non-nil, receives a structured event stream (packet
	// tx/rx, deliveries, faults, configuration changes).
	Trace trace.Tracer
}

// Cluster wires Nodes × Networks together over a Simulator.
type Cluster struct {
	Sim   *Simulator
	cfg   Config
	nets  []*network
	nodes map[proto.NodeID]*Node
	order []proto.NodeID

	// tracing is false when cfg.Trace is Discard, letting the hot path
	// skip event construction entirely.
	tracing bool

	// Pooled-frame tracking (see trackFrame). frameScratch dedupes the
	// frames of the action batch currently executing (one data frame fans
	// out as several SendPacket actions); frameDepth counts nested execute
	// calls (an OnDeliver hook may Submit) so the scratch is only swept at
	// the outermost batch boundary. refFree recycles the tracker objects.
	frameScratch []*frameRef
	frameDepth   int
	refFree      []*frameRef
}

// frameRef counts the scheduled deliveries of one pooled data frame; the
// frame rejoins the wire pool when the last receiver has processed it. A
// delivery whose closure never runs (receiver crashed after scheduling)
// strands its reference and the frame falls to the GC instead — safe,
// merely unpooled.
type frameRef struct {
	data []byte
	refs int
}

// trackFrame returns the batch-scoped tracker for a pooled data frame, or
// nil when data is not poolable (control packets, unpooled buffers).
func (c *Cluster) trackFrame(data []byte) *frameRef {
	if len(data) == 0 || cap(data) != wire.FrameCap {
		return nil
	}
	if k, err := wire.PeekKind(data); err != nil || k != wire.KindData {
		return nil
	}
	p := &data[0]
	for _, r := range c.frameScratch {
		if &r.data[0] == p {
			return r
		}
	}
	var r *frameRef
	if n := len(c.refFree); n > 0 {
		r = c.refFree[n-1]
		c.refFree = c.refFree[:n-1]
		r.data, r.refs = data, 0
	} else {
		r = &frameRef{data: data}
	}
	c.frameScratch = append(c.frameScratch, r)
	return r
}

// unref releases one scheduled delivery's hold on a frame.
func (c *Cluster) unref(r *frameRef) {
	if r == nil {
		return
	}
	r.refs--
	if r.refs == 0 {
		wire.PutFrame(r.data)
		r.data = nil
		c.refFree = append(c.refFree, r)
	}
}

// sweepFrames runs at the outermost batch boundary: frames none of whose
// sends got scheduled (all receivers blocked, lost or crashed) have no
// pending release, so they rejoin the pool here.
func (c *Cluster) sweepFrames() {
	for i, r := range c.frameScratch {
		if r.refs == 0 && r.data != nil {
			wire.PutFrame(r.data)
			r.data = nil
			c.refFree = append(c.refFree, r)
		}
		c.frameScratch[i] = nil
	}
	c.frameScratch = c.frameScratch[:0]
}

// NewCluster builds (but does not start) a cluster.
func NewCluster(cfg Config) (*Cluster, error) {
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("sim: need at least one node, have %d", cfg.Nodes)
	}
	if cfg.Networks < 1 {
		return nil, fmt.Errorf("sim: need at least one network, have %d", cfg.Networks)
	}
	if cfg.Trace == nil {
		cfg.Trace = trace.Discard
	}
	c := &Cluster{
		Sim:     NewSimulator(),
		cfg:     cfg,
		nodes:   make(map[proto.NodeID]*Node, cfg.Nodes),
		tracing: cfg.Trace != trace.Discard,
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for i := 0; i < cfg.Networks; i++ {
		c.nets = append(c.nets, &network{
			idx:    i,
			params: cfg.Net,
			rng:    rand.New(rand.NewSource(rng.Int63())),
		})
	}
	for i := 1; i <= cfg.Nodes; i++ {
		id := proto.NodeID(i)
		st, err := c.newStack(id, 0)
		if err != nil {
			return nil, err
		}
		n := &Node{
			ID:           id,
			Stack:        st,
			cluster:      c,
			timers:       make(map[proto.TimerID]uint64),
			blockedSend:  make(map[int]bool),
			blockedRecv:  make(map[int]bool),
			KeepPayloads: true,
		}
		c.nodes[id] = n
		c.order = append(c.order, id)
	}
	return c, nil
}

// newStack builds one node's protocol stack, applying the cluster tuning
// hooks and installing the trace probe. initialEpoch seeds the SRP's
// highest-known ring epoch (models Totem's stable-storage ring sequence
// number); Restart passes the pre-crash value so a reborn node never mints
// a RingID its former incarnation already used.
func (c *Cluster) newStack(id proto.NodeID, initialEpoch uint32) (*stack.Node, error) {
	scfg := stack.DefaultConfig(id, c.cfg.Networks, c.cfg.Style)
	if c.cfg.K != 0 {
		scfg.RRP.K = c.cfg.K
	}
	if c.cfg.TuneSRP != nil {
		c.cfg.TuneSRP(id, &scfg)
	}
	if initialEpoch > scfg.SRP.InitialEpoch {
		scfg.SRP.InitialEpoch = initialEpoch
	}
	st, err := stack.New(scfg)
	if err != nil {
		return nil, fmt.Errorf("sim: node %v: %w", id, err)
	}
	if c.tracing {
		// Surface the machines' own probe events in the trace stream,
		// stamped with virtual time at the sink.
		st.SetProbe(func(e proto.ProbeEvent) {
			c.cfg.Trace.Record(trace.Event{
				At: c.Sim.Now(), Node: id, Kind: trace.Machine,
				Code: e.Code, Network: e.Network, A: e.A, B: e.B, C: e.C,
			})
		})
	}
	return st, nil
}

// Node returns the simulated node with the given ID.
func (c *Cluster) Node(id proto.NodeID) *Node { return c.nodes[id] }

// NodeIDs returns all node IDs in ascending order.
func (c *Cluster) NodeIDs() []proto.NodeID {
	return append([]proto.NodeID(nil), c.order...)
}

// Start boots every node, staggered slightly so join storms interleave
// realistically.
func (c *Cluster) Start() {
	for i, id := range c.order {
		n := c.nodes[id]
		c.Sim.At(proto.Time(i)*time.Millisecond, func() {
			n.execute(c.Sim.Now(), n.Stack.Start(c.Sim.Now()))
		})
	}
}

// Run advances virtual time.
func (c *Cluster) Run(d time.Duration) {
	c.Sim.Run(c.Sim.Now() + d)
}

// RunUntil advances time in step increments until cond holds or the
// budget elapses; it reports whether cond held.
func (c *Cluster) RunUntil(cond func() bool, step, budget time.Duration) bool {
	deadline := c.Sim.Now() + budget
	for c.Sim.Now() < deadline {
		if cond() {
			return true
		}
		c.Sim.Run(c.Sim.Now() + step)
	}
	return cond()
}

// Submit enqueues an application message at the current virtual time.
func (c *Cluster) Submit(id proto.NodeID, payload []byte) bool {
	n := c.nodes[id]
	if n == nil || n.crashed {
		return false
	}
	ok, acts := n.Stack.Submit(c.Sim.Now(), payload)
	n.execute(c.Sim.Now(), acts)
	return ok
}

// --- fault injection ---

// KillNetwork makes network i drop everything until revived.
func (c *Cluster) KillNetwork(i int) { c.nets[i].down = true }

// ReviveNetwork restores network i.
func (c *Cluster) ReviveNetwork(i int) { c.nets[i].down = false }

// SetLoss sets the random loss probability of network i.
func (c *Cluster) SetLoss(i int, p float64) { c.nets[i].params.LossProb = p }

// Partition splits network i into groups: traffic flows only within a
// group. Pass nil to heal.
func (c *Cluster) Partition(i int, groups map[proto.NodeID]int) {
	c.nets[i].groups = groups
}

// BlockSend stops node id from sending on network net (paper §3 fault
// type: "a node A is unable to send any data via a particular network").
func (c *Cluster) BlockSend(id proto.NodeID, net int, blocked bool) {
	c.nodes[id].blockedSend[net] = blocked
}

// BlockRecv stops node id from receiving on network net.
func (c *Cluster) BlockRecv(id proto.NodeID, net int, blocked bool) {
	c.nodes[id].blockedRecv[net] = blocked
}

// Crash stops a node dead: no more packets, timers or submissions.
func (c *Cluster) Crash(id proto.NodeID) { c.nodes[id].crashed = true }

// Crashed reports whether the node has been crashed. Its Stack remains
// readable but is frozen at its pre-crash state.
func (n *Node) Crashed() bool { return n.crashed }

// Restart reboots a crashed node with a completely fresh protocol stack:
// no ring state, empty queues, all timers gone — only the highest ring
// epoch carries over (Totem's stable-storage ring sequence number), so the
// new incarnation can never mint a RingID the old one already used. Work
// scheduled for the previous incarnation is fenced off by the incarnation
// counter. Observed event slices (Delivered, Faults, …) are retained
// across the restart; checkers that care can record the restart time.
func (c *Cluster) Restart(id proto.NodeID) error {
	n := c.nodes[id]
	if n == nil {
		return fmt.Errorf("sim: unknown node %v", id)
	}
	if !n.crashed {
		return fmt.Errorf("sim: node %v is not crashed", id)
	}
	st, err := c.newStack(id, n.Stack.SRP().MaxEpoch())
	if err != nil {
		return err
	}
	n.Stack = st
	n.incarnation++
	n.crashed = false
	n.cpuBusy = 0
	n.timers = make(map[proto.TimerID]uint64)
	n.execute(c.Sim.Now(), st.Start(c.Sim.Now()))
	return nil
}

// Incarnation returns how many times the node has been restarted.
func (n *Node) Incarnation() uint64 { return n.incarnation }

// SetTimerSkew scales node id's timer durations by factor, modelling a
// drifting local clock: factor > 1 fires timers late (a slow clock),
// factor < 1 early. It applies to timers armed after the call; 1 (or 0)
// restores nominal timing. factor must not be negative.
func (c *Cluster) SetTimerSkew(id proto.NodeID, factor float64) {
	c.nodes[id].timerSkew = factor
}

// BlockPair blocks the directed link from -> to on network net: a gray
// unidirectional fault, the reverse direction keeps flowing.
func (c *Cluster) BlockPair(net int, from, to proto.NodeID, blocked bool) {
	nw := c.nets[net]
	if nw.blockedPair == nil {
		nw.blockedPair = make(map[[2]proto.NodeID]bool)
	}
	if blocked {
		nw.blockedPair[[2]proto.NodeID{from, to}] = true
	} else {
		delete(nw.blockedPair, [2]proto.NodeID{from, to})
	}
}

// SetCongestion makes network net's loss correlate with its own load: each
// frame is dropped with probability p scaled by how long it waited for the
// medium (full weight at one congestionWindow of backlog). Zero heals.
func (c *Cluster) SetCongestion(net int, p float64) { c.nets[net].congestion = p }

// SetDupStorm makes network net duplicate each transmitted frame with
// probability p (a babbling switch). Zero heals.
func (c *Cluster) SetDupStorm(net int, p float64) { c.nets[net].dupProb = p }

// SetSlowNet overrides network net's latency: the network is slow, not
// down. Zero restores the configured latency.
func (c *Cluster) SetSlowNet(net int, lat time.Duration) { c.nets[net].slowLat = lat }

// Corrupt scrambles one slice of node id's protocol state in place — the
// arbitrary-initial-state recovery mode (see stack.Node.Corrupt for the
// sub vocabulary). It reports whether the injection ran (the node must be
// alive); the corruption's own actions (forged hold timers, probes) are
// executed like any handler's.
func (c *Cluster) Corrupt(id proto.NodeID, sub string, seed int64) bool {
	n := c.nodes[id]
	if n == nil || n.crashed {
		return false
	}
	n.execute(c.Sim.Now(), n.Stack.Corrupt(c.Sim.Now(), sub, seed))
	return true
}

// --- node internals ---

// dispatch schedules work on the node's CPU: at time at, a slot of length
// cost is reserved at the end of the CPU's current backlog and fn runs
// when the slot begins. Reserving eagerly (instead of polling for a free
// CPU) keeps event processing linear under saturation and preserves FIFO
// order among simultaneous arrivals.
func (n *Node) dispatch(at proto.Time, cost time.Duration, fn func(now proto.Time)) {
	inc := n.incarnation
	n.cluster.Sim.At(at, func() {
		if n.crashed || n.incarnation != inc {
			return
		}
		now := n.cluster.Sim.Now()
		start := now
		if n.cpuBusy > start {
			start = n.cpuBusy
		}
		n.cpuBusy = start + cost
		if start == now {
			fn(now)
			return
		}
		n.cluster.Sim.At(start, func() {
			if n.crashed || n.incarnation != inc {
				return
			}
			fn(start)
		})
	})
}

// execute performs the actions emitted by the stack at virtual time now.
func (n *Node) execute(now proto.Time, actions []proto.Action) {
	c := n.cluster
	c.frameDepth++
	for _, a := range actions {
		switch act := a.(type) {
		case *proto.SendPacket:
			// Each send costs CPU and then enters the network's transmit
			// queue at the moment the CPU finishes handing it off.
			n.cpuBusy += n.cluster.cfg.Host.SendCost
			if c.tracing {
				kind, _ := wire.PeekKind(act.Data)
				c.cfg.Trace.Record(trace.Event{
					At: now, Node: n.ID, Kind: trace.PacketSent, Network: act.Network,
					A: int64(kind), B: int64(act.Dest), C: int64(len(act.Data)),
				})
			}
			// Copy the action: delivery closures outlive the batch, whose
			// *SendPacket objects are recycled when execute returns.
			n.transmit(n.cpuBusy, *act)
		case proto.SetTimer:
			n.timerGen++
			gen := n.timerGen
			n.timers[act.ID] = gen
			id := act.ID
			after := act.After
			if s := n.timerSkew; s > 0 && s != 1 {
				after = time.Duration(float64(after) * s)
			}
			inc := n.incarnation
			n.cluster.Sim.At(now+after, func() {
				if n.crashed || n.incarnation != inc || n.timers[id] != gen {
					return // cancelled, re-armed, or from a previous life
				}
				delete(n.timers, id)
				n.dispatch(n.cluster.Sim.Now(), 0, func(t proto.Time) {
					if c.tracing {
						c.cfg.Trace.Record(trace.Event{
							At: t, Node: n.ID, Kind: trace.TimerFired, Network: -1,
							A: int64(id.Class), B: int64(id.Arg),
						})
					}
					n.execute(t, n.Stack.OnTimer(t, id))
				})
			})
		case proto.CancelTimer:
			delete(n.timers, act.ID)
		case proto.Deliver:
			n.cpuBusy += n.cluster.cfg.Host.DeliverCost
			if c.tracing {
				c.cfg.Trace.Record(trace.Event{
					At: now, Node: n.ID, Kind: trace.Delivered, Network: -1,
					A: int64(act.Msg.Seq), B: int64(act.Msg.Sender), C: int64(len(act.Msg.Payload)),
				})
			}
			n.DeliveredCount++
			n.DeliveredBytes += uint64(len(act.Msg.Payload))
			if n.KeepPayloads {
				n.Delivered = append(n.Delivered, act.Msg)
			}
			if n.OnDeliver != nil {
				n.OnDeliver(act.Msg)
			}
		case proto.Fault:
			if c.tracing {
				c.cfg.Trace.Record(trace.Event{
					At: now, Node: n.ID, Kind: trace.FaultRaised,
					Network: act.Report.Network, Detail: act.Report.Reason,
				})
			}
			n.Faults = append(n.Faults, act.Report)
			if n.OnFault != nil {
				n.OnFault(act.Report)
			}
		case proto.FaultCleared:
			if c.tracing {
				c.cfg.Trace.Record(trace.Event{
					At: now, Node: n.ID, Kind: trace.FaultCleared,
					Network: act.Report.Network, A: int64(act.Report.Probation),
				})
			}
			n.Cleared = append(n.Cleared, act.Report)
			if n.OnCleared != nil {
				n.OnCleared(act.Report)
			}
		case proto.Config:
			if c.tracing {
				detail := ""
				if act.Change.Transitional {
					detail = "transitional"
				}
				c.cfg.Trace.Record(trace.Event{
					At: now, Node: n.ID, Kind: trace.ConfigChanged, Network: -1,
					A: int64(act.Change.Ring.Rep), B: int64(act.Change.Ring.Epoch),
					C: int64(len(act.Change.Members)), Detail: detail,
				})
			}
			n.Configs = append(n.Configs, act.Change)
			if n.OnConfig != nil {
				n.OnConfig(act.Change)
			}
		}
	}
	c.frameDepth--
	if c.frameDepth == 0 {
		c.sweepFrames()
	}
	n.Stack.Recycle(actions)
}

// transmit puts a frame on a network at time t.
func (n *Node) transmit(t proto.Time, pkt proto.SendPacket) {
	if n.blockedSend[pkt.Network] {
		return
	}
	net := n.cluster.nets[pkt.Network]
	start := max(t, net.busyUntil)
	waited := start - t
	net.busyUntil = start + net.params.frameTime(len(pkt.Data))
	lat := net.params.Latency
	if net.slowLat > 0 {
		lat = net.slowLat
	}
	arrival := net.busyUntil + lat
	ref := n.cluster.trackFrame(pkt.Data)
	if net.congestion > 0 {
		// Loss correlates with the medium's backlog: the probability ramps
		// from zero on an idle network to the configured rate once the frame
		// waited a full congestionWindow for the wire. A drop discards the
		// whole frame for every receiver, like a switch buffer overflow.
		factor := float64(waited) / float64(congestionWindow)
		if factor > 1 {
			factor = 1
		}
		if factor > 0 && net.rng.Float64() < net.congestion*factor {
			return // pooled frames are swept at the batch boundary
		}
	}
	send := func(at proto.Time) {
		if pkt.Dest == proto.BroadcastID {
			for _, id := range n.cluster.order {
				if id == n.ID {
					continue
				}
				n.cluster.deliverFrame(net, n.ID, id, at, pkt, ref)
			}
			return
		}
		if pkt.Dest != n.ID {
			n.cluster.deliverFrame(net, n.ID, pkt.Dest, at, pkt, ref)
		} else {
			// Unicast to self (singleton successor): loop straight back.
			if ref != nil {
				ref.refs++
			}
			n.dispatch(at, n.cluster.cfg.Host.RecvCost, func(now proto.Time) {
				n.execute(now, n.Stack.OnPacket(now, pkt.Network, pkt.Data))
				n.cluster.unref(ref)
			})
		}
	}
	send(arrival)
	if net.dupProb > 0 && net.rng.Float64() < net.dupProb {
		// A babbling switch re-emits the whole frame a beat later.
		send(arrival + 100*time.Microsecond)
	}
}

// deliverFrame delivers one frame to one receiver, applying fault rules.
// ref (which may be nil) is released once the receiver has processed the
// frame, so pooled buffers are recycled exactly when the last scheduled
// delivery completes.
func (c *Cluster) deliverFrame(net *network, from, to proto.NodeID, at proto.Time, pkt proto.SendPacket, ref *frameRef) {
	dst := c.nodes[to]
	if dst == nil || dst.crashed {
		return
	}
	if !net.deliverable(from, to) {
		return
	}
	if dst.blockedRecv[net.idx] {
		return
	}
	if ref != nil {
		ref.refs++
	}
	dst.dispatch(at, c.cfg.Host.RecvCost, func(now proto.Time) {
		if c.tracing {
			kind, _ := wire.PeekKind(pkt.Data)
			c.cfg.Trace.Record(trace.Event{
				At: now, Node: dst.ID, Kind: trace.PacketReceived, Network: net.idx,
				A: int64(kind), B: int64(pkt.Dest), C: int64(len(pkt.Data)),
			})
		}
		dst.execute(now, dst.Stack.OnPacket(now, net.idx, pkt.Data))
		c.unref(ref)
	})
}
