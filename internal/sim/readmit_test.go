package sim

import (
	"testing"
	"time"

	"github.com/totem-rrp/totem/internal/proto"
	"github.com/totem-rrp/totem/internal/stack"
)

// Regression tests for the automatic-readmission subsystem: a healed
// network returns to service without operator action, an oscillating
// network is flap-damped, and disabling the feature restores the paper's
// manual-only model. All run with a shortened decay interval so probation
// (3 windows) completes in hundreds of milliseconds of virtual time.

func fastRecoveryConfig(nodes, networks int, style proto.ReplicationStyle) Config {
	cfg := baseConfig(nodes, networks, style)
	cfg.TuneSRP = func(_ proto.NodeID, sc *stack.Config) {
		sc.RRP.DecayInterval = 100 * time.Millisecond
	}
	return cfg
}

func allFaulty(c *Cluster, net int) bool {
	for _, id := range c.NodeIDs() {
		if !c.Node(id).Stack.Replicator().Faulty()[net] {
			return false
		}
	}
	return true
}

func noneFaulty(c *Cluster, net int) bool {
	for _, id := range c.NodeIDs() {
		if c.Node(id).Stack.Replicator().Faulty()[net] {
			return false
		}
	}
	return true
}

func TestAutoReadmitHealedNetwork(t *testing.T) {
	styles := []struct {
		networks int
		style    proto.ReplicationStyle
	}{
		{2, proto.ReplicationActive},
		{2, proto.ReplicationPassive},
		{3, proto.ReplicationActivePassive},
	}
	for _, tc := range styles {
		t.Run(tc.style.String(), func(t *testing.T) {
			c := mustCluster(t, fastRecoveryConfig(4, tc.networks, tc.style))
			for _, id := range c.NodeIDs() {
				c.Node(id).KeepPayloads = false
			}
			c.Start()
			waitRing(t, c, 3*time.Second)
			pump(c, make([]byte, 512), 32)
			c.Run(200 * time.Millisecond)
			configsBefore := totalConfigs(c)

			c.KillNetwork(1)
			if !c.RunUntil(func() bool { return allFaulty(c, 1) }, 10*time.Millisecond, 5*time.Second) {
				t.Fatal("network death never convicted")
			}

			c.ReviveNetwork(1)
			txAtRevive := c.Node(1).Stack.Replicator().Stats().TxPackets[1]
			if !c.RunUntil(func() bool { return noneFaulty(c, 1) }, 10*time.Millisecond, 5*time.Second) {
				t.Fatal("healed network never auto-readmitted")
			}
			for _, id := range c.NodeIDs() {
				n := c.Node(id)
				cleared := false
				for _, cr := range n.Cleared {
					if cr.Network == 1 {
						cleared = true
					}
				}
				if !cleared {
					t.Fatalf("node %v readmitted without a ClearReport", id)
				}
			}

			// Replication traffic (not just probes) resumes on the network.
			c.Run(500 * time.Millisecond)
			if tx := c.Node(1).Stack.Replicator().Stats().TxPackets[1]; tx <= txAtRevive {
				t.Fatalf("no traffic on the healed network: %d at revive, %d now", txAtRevive, tx)
			}
			// The whole fault-and-heal cycle stayed below the membership
			// layer (paper §3).
			if got := totalConfigs(c); got != configsBefore {
				t.Fatalf("membership changed: %d -> %d config events", configsBefore, got)
			}
		})
	}
}

func TestFlapDampingBacksOffWithoutMembershipChange(t *testing.T) {
	c := mustCluster(t, fastRecoveryConfig(4, 2, proto.ReplicationActive))
	for _, id := range c.NodeIDs() {
		c.Node(id).KeepPayloads = false
	}
	c.Start()
	waitRing(t, c, 3*time.Second)
	pump(c, make([]byte, 512), 32)
	c.Run(200 * time.Millisecond)
	configsBefore := totalConfigs(c)

	c.ScheduleFlap(1, 500*time.Millisecond, 2*time.Second, 3)
	c.Run(9 * time.Second)

	// Each re-fault within the flap window doubles the next probation, so
	// the sequence of clear reports shows a growing requirement.
	damped := false
	for _, id := range c.NodeIDs() {
		cl := c.Node(id).Cleared
		for i := 1; i < len(cl); i++ {
			if cl[i].Probation < cl[i-1].Probation {
				t.Fatalf("node %v: probation shrank across flaps: %v", id, cl)
			}
		}
		if len(cl) >= 2 && cl[len(cl)-1].Probation > cl[0].Probation {
			damped = true
		}
	}
	if !damped {
		t.Fatal("no node showed probation doubling across flap cycles")
	}
	backoffs := uint64(0)
	for _, id := range c.NodeIDs() {
		backoffs += c.Node(id).Stack.Replicator().Stats().FlapBackoffs
	}
	if backoffs == 0 {
		t.Fatal("no flap backoff counted")
	}
	// However hard the network flaps, the ring membership never moves.
	if got := totalConfigs(c); got != configsBefore {
		t.Fatalf("flapping network changed membership: %d -> %d config events", configsBefore, got)
	}
}

func TestAutoReadmitDisabledRequiresOperator(t *testing.T) {
	cfg := fastRecoveryConfig(4, 2, proto.ReplicationPassive)
	inner := cfg.TuneSRP
	cfg.TuneSRP = func(id proto.NodeID, sc *stack.Config) {
		inner(id, sc)
		sc.RRP.AutoReadmit = false
	}
	c := mustCluster(t, cfg)
	for _, id := range c.NodeIDs() {
		c.Node(id).KeepPayloads = false
	}
	c.Start()
	waitRing(t, c, 3*time.Second)
	pump(c, make([]byte, 512), 32)
	c.Run(200 * time.Millisecond)

	c.KillNetwork(1)
	if !c.RunUntil(func() bool { return allFaulty(c, 1) }, 10*time.Millisecond, 5*time.Second) {
		t.Fatal("network death never convicted")
	}
	c.ReviveNetwork(1)
	// Dozens of probation-lengths of clean running: the verdict must stand
	// until the operator acts.
	c.Run(3 * time.Second)
	if !allFaulty(c, 1) {
		t.Fatal("network readmitted without operator action despite AutoReadmit=false")
	}
	for _, id := range c.NodeIDs() {
		if n := c.Node(id); len(n.Cleared) != 0 {
			t.Fatalf("node %v emitted clear reports with AutoReadmit off: %v", id, n.Cleared)
		}
	}
	for _, id := range c.NodeIDs() {
		c.Node(id).Stack.Replicator().Readmit(1)
	}
	if !noneFaulty(c, 1) {
		t.Fatal("manual readmission failed")
	}
	tx := c.Node(1).Stack.Replicator().Stats().TxPackets[1]
	c.Run(500 * time.Millisecond)
	if got := c.Node(1).Stack.Replicator().Stats().TxPackets[1]; got <= tx {
		t.Fatal("no traffic after manual readmission")
	}
}
