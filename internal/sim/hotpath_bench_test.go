package sim

import (
	"testing"
	"time"

	"github.com/totem-rrp/totem/internal/proto"
)

// saturatedCluster builds a formed 4-node ring under a saturating
// workload, ready for single-step measurement.
func saturatedCluster(b *testing.B) *Cluster {
	b.Helper()
	c, err := NewCluster(Config{
		Nodes:    4,
		Networks: 1,
		Style:    proto.ReplicationNone,
		Net:      DefaultNetworkParams(),
		Host:     DefaultNodeParams(),
		Seed:     1,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, id := range c.NodeIDs() {
		c.Node(id).KeepPayloads = false
	}
	c.Start()
	formed := c.RunUntil(func() bool {
		for _, id := range c.NodeIDs() {
			if len(c.Node(id).Stack.SRP().Members()) != 4 {
				return false
			}
		}
		return true
	}, 10*time.Millisecond, 10*time.Second)
	if !formed {
		b.Fatal("ring never formed")
	}
	payload := make([]byte, 1000)
	var pump func()
	pump = func() {
		for _, id := range c.NodeIDs() {
			n := c.Node(id)
			for i := 0; i < 32 && n.Stack.Backlog() < 32; i++ {
				if !c.Submit(id, payload) {
					break
				}
			}
		}
		c.Sim.After(time.Millisecond, pump)
	}
	c.Sim.After(0, pump)
	c.Run(100 * time.Millisecond) // reach steady state
	return c
}

// BenchmarkHotPathSimStep measures one discrete event of a saturated
// 4-node ring end to end: scheduler pop (pooled events), stack handlers
// (pooled frames, recycled action batches) and frame refcounting. This is
// the unit the wall-clock figure benchmarks are made of.
func BenchmarkHotPathSimStep(b *testing.B) {
	c := saturatedCluster(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !c.Sim.Step() {
			b.Fatal("event queue empty")
		}
	}
}

// BenchmarkHotPathProbesDisabled proves the observability spine is free
// when unused: with no tracer configured the probe hooks are nil and the
// hot path must still run at 0 allocs/op. Compare against
// BenchmarkHotPathSimStep (identical setup) to see the spine's cost — the
// two should be indistinguishable.
func BenchmarkHotPathProbesDisabled(b *testing.B) {
	c := saturatedCluster(b)
	if c.tracing {
		b.Fatal("cluster unexpectedly tracing; this benchmark measures the disabled path")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !c.Sim.Step() {
			b.Fatal("event queue empty")
		}
	}
}
