package sim

import "time"

// Scripted, time-driven fault schedules layered on the primitive fault
// injectors. These model the messy failure shapes of production networks —
// links that oscillate, switches that shed packets in bursts, and optics
// that degrade gradually — and drive the recovery-monitor scenarios in the
// tests and cmd/faultinject.

// ScheduleFlap makes network i oscillate: starting now, it goes down for
// downFor, up for upFor, repeated cycles times (a final revive is always
// scheduled, so the network ends the script healthy). This is the
// flap-damping torture test: every heal invites readmission and every
// re-death should double the probation.
func (c *Cluster) ScheduleFlap(i int, downFor, upFor time.Duration, cycles int) {
	at := time.Duration(0)
	for n := 0; n < cycles; n++ {
		c.Sim.After(at, func() { c.KillNetwork(i) })
		c.Sim.After(at+downFor, func() { c.ReviveNetwork(i) })
		at += downFor + upFor
	}
}

// ScheduleLossBursts injects count intermittent loss bursts on network i:
// every burst sets the loss probability to p for burst, then restores it
// to zero for gap. Sporadic bursts below the monitor thresholds must
// neither convict a network nor disturb an ongoing probation permanently.
func (c *Cluster) ScheduleLossBursts(i int, p float64, burst, gap time.Duration, count int) {
	at := time.Duration(0)
	for n := 0; n < count; n++ {
		c.Sim.After(at, func() { c.SetLoss(i, p) })
		c.Sim.After(at+burst, func() { c.SetLoss(i, 0) })
		at += burst + gap
	}
}

// ScheduleSlowDegrade ramps the loss probability of network i upward by
// step every interval until it reaches max, modelling failing hardware
// rather than a clean cut. The monitors should convict the network
// somewhere along the ramp; healing it afterwards is a single SetLoss(i, 0).
func (c *Cluster) ScheduleSlowDegrade(i int, step float64, interval time.Duration, max float64) {
	var ramp func(p float64)
	ramp = func(p float64) {
		if p > max {
			p = max
		}
		c.SetLoss(i, p)
		if p < max {
			c.Sim.After(interval, func() { ramp(p + step) })
		}
	}
	c.Sim.After(interval, func() { ramp(step) })
}
