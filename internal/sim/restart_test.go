package sim

import (
	"fmt"
	"testing"
	"time"

	"github.com/totem-rrp/totem/internal/proto"
	"github.com/totem-rrp/totem/internal/stack"
	"github.com/totem-rrp/totem/internal/trace"
)

func TestRestartRejoinsRing(t *testing.T) {
	c := mustCluster(t, baseConfig(3, 2, proto.ReplicationPassive))
	c.Start()
	waitRing(t, c, 3*time.Second)

	c.Crash(3)
	// The survivors reform without the crashed node.
	ok := c.RunUntil(func() bool {
		for _, id := range []proto.NodeID{1, 2} {
			if len(c.Node(id).Stack.SRP().Members()) != 2 {
				return false
			}
		}
		return true
	}, 10*time.Millisecond, 3*time.Second)
	if !ok {
		t.Fatal("survivors did not reform a 2-node ring")
	}

	if err := c.Restart(3); err != nil {
		t.Fatalf("Restart: %v", err)
	}
	if got := c.Node(3).Incarnation(); got != 1 {
		t.Fatalf("Incarnation = %d, want 1", got)
	}
	waitRing(t, c, 5*time.Second)

	// The reborn node is a full member again: traffic flows and the
	// never-crashed nodes agree on the order.
	for i := 0; i < 10; i++ {
		for _, id := range c.NodeIDs() {
			if !c.Submit(id, []byte(fmt.Sprintf("%v-%d", id, i))) {
				t.Fatalf("submit rejected for %v #%d", id, i)
			}
		}
	}
	c.Run(2 * time.Second)
	a, b := c.Node(1).Delivered, c.Node(2).Delivered
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("deliveries: node1=%d node2=%d", len(a), len(b))
	}
	for i := range a {
		if a[i].Seq != b[i].Seq || string(a[i].Payload) != string(b[i].Payload) {
			t.Fatalf("order mismatch at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestRestartNeverReusesRingID(t *testing.T) {
	// The restart carries the pre-crash MaxEpoch into the new stack, so a
	// reborn node cannot mint a RingID its former incarnation already used
	// — RingID reuse would let a checker (or a peer) conflate two distinct
	// sequence spaces.
	c := mustCluster(t, baseConfig(3, 2, proto.ReplicationActive))
	c.Start()
	waitRing(t, c, 3*time.Second)

	var preEpoch uint32
	for _, id := range c.NodeIDs() {
		for _, cc := range c.Node(id).Configs {
			if cc.Ring.Epoch > preEpoch {
				preEpoch = cc.Ring.Epoch
			}
		}
	}
	preConfigs := len(c.Node(3).Configs)

	c.Crash(3)
	c.Run(500 * time.Millisecond)
	if err := c.Restart(3); err != nil {
		t.Fatalf("Restart: %v", err)
	}
	waitRing(t, c, 5*time.Second)

	for _, cc := range c.Node(3).Configs[preConfigs:] {
		if cc.Ring.Epoch <= preEpoch {
			t.Fatalf("post-restart config %+v reuses an epoch at or below pre-crash max %d", cc, preEpoch)
		}
	}
}

func TestRestartRequiresCrash(t *testing.T) {
	c := mustCluster(t, baseConfig(2, 1, proto.ReplicationNone))
	c.Start()
	waitRing(t, c, 3*time.Second)
	if err := c.Restart(1); err == nil {
		t.Fatal("Restart of a live node did not error")
	}
	if err := c.Restart(99); err == nil {
		t.Fatal("Restart of an unknown node did not error")
	}
}

func TestTimerSkewToleratedByRing(t *testing.T) {
	// One node's clock runs 30% slow; the ring still forms and orders
	// traffic (token-loss and retransmit margins absorb the drift).
	c := mustCluster(t, baseConfig(3, 2, proto.ReplicationActive))
	c.SetTimerSkew(2, 1.3)
	c.Start()
	waitRing(t, c, 5*time.Second)
	submitAndDrain(t, c, 10, 5*time.Second)
	assertIdenticalOrder(t, c)
}

func TestSeqRolloverReformsRingInSim(t *testing.T) {
	// End-to-end check of the enforced sequence-space limit: with a tiny
	// SeqRollover the ring must reform mid-traffic (new epoch, sequence
	// numbers reset) without losing ordering or messages.
	ctr := trace.NewCounter()
	cfg := baseConfig(3, 2, proto.ReplicationActive)
	cfg.Trace = ctr
	cfg.TuneSRP = func(id proto.NodeID, sc *stack.Config) {
		sc.SRP.SeqRollover = 4 * uint32(sc.SRP.WindowSize)
	}
	c := mustCluster(t, cfg)
	c.Start()
	waitRing(t, c, 3*time.Second)

	// ~1KB payloads defeat packing, so sequence numbers advance one per
	// message and cross the limit quickly.
	perNode := 150
	for i := 0; i < perNode; i++ {
		for _, id := range c.NodeIDs() {
			payload := make([]byte, 1000)
			copy(payload, fmt.Sprintf("%v/%d", id, i))
			if !c.Submit(id, payload) {
				t.Fatalf("submit rejected for %v #%d", id, i)
			}
		}
		c.Run(2 * time.Millisecond)
	}
	total := perNode * len(c.NodeIDs())
	ok := c.RunUntil(func() bool {
		for _, id := range c.NodeIDs() {
			if len(c.Node(id).Delivered) < total {
				return false
			}
		}
		return true
	}, 10*time.Millisecond, 10*time.Second)
	if !ok {
		for _, id := range c.NodeIDs() {
			t.Logf("node %v delivered %d/%d", id, len(c.Node(id).Delivered), total)
		}
		t.Fatalf("messages lost across the rollover")
	}
	if got := ctr.CodeCount(proto.ProbeSeqRollover); got == 0 {
		t.Fatal("no seq-rollover probe fired despite crossing the limit")
	}
	assertIdenticalOrder(t, c)
}

func TestRestartDeterminism(t *testing.T) {
	// Crash + restart in the middle of traffic must replay byte-for-byte:
	// the incarnation fencing leaves no room for stale-event races.
	run := func() []proto.Delivery {
		c := mustCluster(t, baseConfig(3, 2, proto.ReplicationPassive))
		c.SetLoss(0, 0.02)
		c.Start()
		waitRing(t, c, 3*time.Second)
		for i := 0; i < 10; i++ {
			for _, id := range c.NodeIDs() {
				c.Submit(id, []byte(fmt.Sprintf("%v-%d", id, i)))
			}
		}
		c.Run(100 * time.Millisecond)
		c.Crash(3)
		c.Run(500 * time.Millisecond)
		if err := c.Restart(3); err != nil {
			t.Fatalf("Restart: %v", err)
		}
		c.Run(2 * time.Second)
		return c.Node(1).Delivered
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs diverged: %d vs %d deliveries", len(a), len(b))
	}
	for i := range a {
		if a[i].Seq != b[i].Seq || a[i].Ring != b[i].Ring || string(a[i].Payload) != string(b[i].Payload) {
			t.Fatalf("runs diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
