package sim

import (
	"fmt"
	"testing"
	"time"

	"github.com/totem-rrp/totem/internal/proto"
)

// Experiment E7 (paper §1/§3): network faults remain transparent to the
// application — no membership change, a fault report for the operator,
// and continued delivery on the surviving networks.

// pump keeps every node's send queue topped up.
func pump(c *Cluster, payload []byte, backlog int) {
	var refill func()
	refill = func() {
		for _, id := range c.NodeIDs() {
			n := c.Node(id)
			// Cap per tick: a singleton ring drains instantly and would
			// otherwise turn this into an unbounded loop.
			for i := 0; i < backlog && n.Stack.Backlog() < backlog; i++ {
				if !c.Submit(id, payload) {
					break
				}
			}
		}
		c.Sim.After(time.Millisecond, refill)
	}
	c.Sim.After(0, refill)
}

func totalConfigs(c *Cluster) int {
	n := 0
	for _, id := range c.NodeIDs() {
		n += len(c.Node(id).Configs)
	}
	return n
}

func TestExperimentFaultTransparency(t *testing.T) {
	styles := []struct {
		networks int
		style    proto.ReplicationStyle
	}{
		{2, proto.ReplicationActive},
		{2, proto.ReplicationPassive},
		{3, proto.ReplicationActivePassive},
	}
	for _, tc := range styles {
		t.Run(tc.style.String(), func(t *testing.T) {
			c := mustCluster(t, baseConfig(4, tc.networks, tc.style))
			for _, id := range c.NodeIDs() {
				c.Node(id).KeepPayloads = false
			}
			c.Start()
			waitRing(t, c, 3*time.Second)
			pump(c, make([]byte, 512), 32)
			c.Run(200 * time.Millisecond)

			ringBefore := c.Node(1).Stack.SRP().Ring()
			configsBefore := totalConfigs(c)
			deliveredBefore := c.Node(1).DeliveredCount

			// Total failure of network 1 (paper §3 third fault type with
			// the subsets covering all nodes).
			c.KillNetwork(1)
			c.Run(3 * time.Second)

			// 1. Delivery continued.
			if got := c.Node(1).DeliveredCount; got <= deliveredBefore {
				t.Fatalf("no deliveries after network death: %d -> %d", deliveredBefore, got)
			}
			// 2. The fault was reported and the network marked faulty.
			faulted := 0
			for _, id := range c.NodeIDs() {
				if f := c.Node(id).Stack.Replicator().Faulty(); f[1] {
					faulted++
				}
			}
			if faulted == 0 {
				t.Fatal("no node marked network 1 faulty")
			}
			reports := 0
			for _, id := range c.NodeIDs() {
				for _, f := range c.Node(id).Faults {
					if f.Network == 1 {
						reports++
					}
				}
			}
			if reports == 0 {
				t.Fatal("no fault report raised (paper §3: the administrator's alarm)")
			}
			// 3. Transparency: no membership change happened.
			if got := totalConfigs(c); got != configsBefore {
				t.Fatalf("membership changed on network fault: %d -> %d config events", configsBefore, got)
			}
			if got := c.Node(1).Stack.SRP().Ring(); got != ringBefore {
				t.Fatalf("ring id changed: %v -> %v", ringBefore, got)
			}
		})
	}
}

func TestExperimentNodeSendFault(t *testing.T) {
	// Paper §3, first fault type: node 2 cannot send on network 0. The
	// other nodes' monitors see node 2's traffic only on network 1 and
	// flag network 0; the ring keeps running.
	c := mustCluster(t, baseConfig(4, 2, proto.ReplicationPassive))
	c.Start()
	waitRing(t, c, 3*time.Second)
	pump(c, make([]byte, 512), 32)
	c.Run(100 * time.Millisecond)
	configsBefore := totalConfigs(c)

	c.BlockSend(2, 0, true)
	c.Run(3 * time.Second)

	flagged := false
	for _, id := range c.NodeIDs() {
		if id == 2 {
			continue
		}
		for _, f := range c.Node(id).Faults {
			if f.Network == 0 {
				flagged = true
			}
		}
	}
	if !flagged {
		t.Fatal("no peer flagged network 0 after node 2's send fault")
	}
	if got := totalConfigs(c); got != configsBefore {
		t.Fatalf("membership changed: %d -> %d", configsBefore, got)
	}
}

func TestExperimentNodeRecvFault(t *testing.T) {
	// Paper §3, second fault type: node 3 cannot receive on network 0.
	// Node 3's own monitors flag network 0 locally.
	c := mustCluster(t, baseConfig(4, 2, proto.ReplicationPassive))
	c.Start()
	waitRing(t, c, 3*time.Second)
	pump(c, make([]byte, 512), 32)
	c.Run(100 * time.Millisecond)

	configsBefore := totalConfigs(c)
	c.BlockRecv(3, 0, true)
	c.Run(3 * time.Second)

	if f := c.Node(3).Stack.Replicator().Faulty(); !f[0] {
		t.Fatal("node 3 did not flag network 0 after its receive fault")
	}
	// Paper §3: node 3's refusal to *send* on network 0 (after its local
	// verdict) is interpreted as a fault by the other nodes' monitors,
	// which cascade to the same verdict — and the order of the reports
	// aids diagnosis. Eventually everyone stops using network 0 and the
	// ring runs cleanly on network 1, still with no membership change.
	ok := c.RunUntil(func() bool {
		for _, id := range c.NodeIDs() {
			if !c.Node(id).Stack.Replicator().Faulty()[0] {
				return false
			}
		}
		return true
	}, 50*time.Millisecond, 10*time.Second)
	if !ok {
		for _, id := range c.NodeIDs() {
			t.Logf("node %v faulty=%v", id, c.Node(id).Stack.Replicator().Faulty())
		}
		t.Fatal("fault verdict did not cascade to the other nodes (paper §3)")
	}
	if got := totalConfigs(c); got != configsBefore {
		t.Fatalf("membership changed: %d -> %d", configsBefore, got)
	}
}

func TestExperimentAsymmetricPartition(t *testing.T) {
	// Paper §3, third fault type: network 0 delivers only within subsets
	// {1,2} and {3,4}; network 1 is intact. Active replication masks it.
	c := mustCluster(t, baseConfig(4, 2, proto.ReplicationActive))
	c.Start()
	waitRing(t, c, 3*time.Second)
	pump(c, make([]byte, 512), 32)
	c.Run(100 * time.Millisecond)
	configsBefore := totalConfigs(c)
	before := c.Node(1).DeliveredCount

	c.Partition(0, map[proto.NodeID]int{1: 0, 2: 0, 3: 1, 4: 1})
	c.Run(3 * time.Second)

	if got := c.Node(1).DeliveredCount; got <= before {
		t.Fatal("no deliveries after partial network partition")
	}
	if got := totalConfigs(c); got != configsBefore {
		t.Fatalf("membership changed on partial network fault: %d -> %d", configsBefore, got)
	}
}

func TestExperimentActiveMasksLossWithoutRetransmission(t *testing.T) {
	// Paper §4: active replication masks the loss of a message on up to
	// N-1 networks *without any message retransmission delay*. Kill one
	// of two networks: every packet still arrives (via the survivor), so
	// the SRP never has to retransmit.
	c := mustCluster(t, baseConfig(4, 2, proto.ReplicationActive))
	for _, id := range c.NodeIDs() {
		c.Node(id).KeepPayloads = false
	}
	c.Start()
	waitRing(t, c, 3*time.Second)
	c.KillNetwork(0)
	pump(c, make([]byte, 512), 32)
	c.Run(2 * time.Second)

	var retrans uint64
	var delivered uint64
	for _, id := range c.NodeIDs() {
		retrans += c.Node(id).Stack.SRP().Stats().Retransmissions
		delivered += c.Node(id).DeliveredCount
	}
	if delivered == 0 {
		t.Fatal("nothing delivered")
	}
	if retrans != 0 {
		t.Fatalf("active replication needed %d retransmissions; the paper promises none", retrans)
	}
}

func TestExperimentPassiveLossNeedsRetransmission(t *testing.T) {
	// Contrast to the active case: with passive replication, packets
	// assigned to the dead network are really lost until the SRP
	// retransmission machinery recovers them (paper §4: "Totem must wait
	// until the message has been retransmitted").
	c := mustCluster(t, baseConfig(4, 2, proto.ReplicationPassive))
	for _, id := range c.NodeIDs() {
		c.Node(id).KeepPayloads = false
	}
	c.Start()
	waitRing(t, c, 3*time.Second)
	pump(c, make([]byte, 512), 32)
	c.Run(100 * time.Millisecond)
	c.KillNetwork(0)
	c.Run(3 * time.Second)

	var retrans, delivered uint64
	for _, id := range c.NodeIDs() {
		retrans += c.Node(id).Stack.SRP().Stats().Retransmissions
		delivered += c.Node(id).DeliveredCount
	}
	if delivered == 0 {
		t.Fatal("nothing delivered")
	}
	if retrans == 0 {
		t.Fatal("expected retransmissions while the monitors converged on the dead network")
	}
	// After detection the ring must be running cleanly on network 1.
	if f := c.Node(1).Stack.Replicator().Faulty(); !f[0] {
		t.Fatal("network 0 never declared faulty")
	}
}

func TestExperimentRandomLossKeepsTotalOrder(t *testing.T) {
	// Sporadic loss on both networks: the protocol recovers everything
	// and keeps the total order identical at every node, and the loss is
	// never misdiagnosed as a network fault (requirements A6/P5).
	for _, style := range []proto.ReplicationStyle{proto.ReplicationActive, proto.ReplicationPassive} {
		t.Run(style.String(), func(t *testing.T) {
			nets := 2
			c := mustCluster(t, baseConfig(4, nets, style))
			c.SetLoss(0, 0.01)
			c.SetLoss(1, 0.01)
			c.Start()
			waitRing(t, c, 5*time.Second)
			for i := 0; i < 30; i++ {
				for _, id := range c.NodeIDs() {
					c.Submit(id, []byte(fmt.Sprintf("%v-%d", id, i)))
				}
			}
			ok := c.RunUntil(func() bool {
				for _, id := range c.NodeIDs() {
					if len(c.Node(id).Delivered) < 120 {
						return false
					}
				}
				return true
			}, 10*time.Millisecond, 10*time.Second)
			if !ok {
				t.Fatal("messages lost for good despite retransmission")
			}
			assertIdenticalOrder(t, c)
			for _, id := range c.NodeIDs() {
				for _, f := range c.Node(id).Stack.Replicator().Faulty() {
					if f {
						t.Fatal("sporadic loss was misdiagnosed as a network fault")
					}
				}
			}
		})
	}
}

func TestExperimentNodeCrashPlusNetworkFault(t *testing.T) {
	// Combined failure: one network dies, then a node crashes. The ring
	// must reform on the surviving network with the surviving members.
	c := mustCluster(t, baseConfig(4, 2, proto.ReplicationActive))
	c.Start()
	waitRing(t, c, 3*time.Second)
	pump(c, make([]byte, 256), 16)
	c.Run(200 * time.Millisecond)
	c.KillNetwork(1)
	c.Run(2 * time.Second)
	c.Crash(4)
	ok := c.RunUntil(func() bool {
		for _, id := range []proto.NodeID{1, 2, 3} {
			m := c.Node(id).Stack.SRP()
			if len(m.Members()) != 3 {
				return false
			}
		}
		return true
	}, 20*time.Millisecond, 5*time.Second)
	if !ok {
		t.Fatal("ring did not reform after crash on the surviving network")
	}
	before := c.Node(1).DeliveredCount
	c.Run(500 * time.Millisecond)
	if c.Node(1).DeliveredCount <= before {
		t.Fatal("no progress after combined network + node failure")
	}
}
