// Package stack composes the Totem SRP machine with an RRP replicator
// into a single deterministic, event-driven node: packets in, actions out.
// Both the discrete-event simulator (internal/sim) and the real-time
// runtime (internal/transport) drive this type.
package stack

import (
	"fmt"

	"github.com/totem-rrp/totem/internal/core"
	"github.com/totem-rrp/totem/internal/metrics"
	"github.com/totem-rrp/totem/internal/proto"
	"github.com/totem-rrp/totem/internal/srp"
)

// Config combines the per-layer configurations.
type Config struct {
	SRP srp.Config
	RRP core.Config

	// Metrics, when non-nil, is the registry both layers register their
	// counters in; nil creates one per node. Layer-specific registries in
	// SRP.Metrics/RRP.Metrics, when set, take precedence.
	Metrics *metrics.Registry
}

// DefaultConfig returns defaults for a node on n redundant networks.
func DefaultConfig(id proto.NodeID, networks int, style proto.ReplicationStyle) Config {
	return Config{
		SRP: srp.DefaultConfig(id),
		RRP: core.DefaultConfig(networks, style),
	}
}

// Node is one protocol stack instance. It is not safe for concurrent use;
// drivers serialise all calls and drain the returned actions after each.
type Node struct {
	acts proto.Actions
	srp  *srp.Machine
	rep  core.Replicator
	met  *metrics.Registry
}

// New builds a node. The SRP's broadcasts and token unicasts are routed
// through the replicator; packets the replicator passes up feed the SRP.
func New(cfg Config) (*Node, error) {
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	if cfg.SRP.Metrics == nil {
		cfg.SRP.Metrics = reg
	}
	if cfg.RRP.Metrics == nil {
		cfg.RRP.Metrics = reg
	}
	n := &Node{met: reg}
	rep, err := core.New(cfg.RRP, &n.acts, core.Callbacks{
		Deliver: func(now proto.Time, data []byte) { n.srp.OnPacket(now, data) },
		Missing: func(seq uint32) bool { return n.srp.MissingBefore(seq) },
	})
	if err != nil {
		return nil, fmt.Errorf("stack: replicator: %w", err)
	}
	n.rep = rep
	m, err := srp.NewMachine(cfg.SRP, outbound{n}, &n.acts)
	if err != nil {
		return nil, fmt.Errorf("stack: srp: %w", err)
	}
	n.srp = m
	return n, nil
}

// outbound adapts the replicator to the SRP's Outbound interface.
type outbound struct{ n *Node }

var _ srp.Outbound = outbound{}

// Broadcast implements srp.Outbound.
func (o outbound) Broadcast(data []byte) { o.n.rep.SendMessage(data) }

// Unicast implements srp.Outbound.
func (o outbound) Unicast(dest proto.NodeID, data []byte) { o.n.rep.SendToken(dest, data) }

// ID returns the node identifier.
func (n *Node) ID() proto.NodeID { return n.srp.ID() }

// Start boots the node (monitor timers, ring formation) and returns the
// resulting actions.
func (n *Node) Start(now proto.Time) []proto.Action {
	n.rep.Start(now)
	n.srp.Start(now)
	return n.acts.Drain()
}

// Submit queues an application message; ok is false under backpressure.
func (n *Node) Submit(now proto.Time, payload []byte) (ok bool, actions []proto.Action) {
	ok = n.srp.Submit(now, payload)
	return ok, n.acts.Drain()
}

// SubmitBulk queues one chunk of a bulk transfer on the rate-limited bulk
// lane; ok is false under backpressure.
func (n *Node) SubmitBulk(now proto.Time, id, off, total uint64, data []byte) (ok bool, actions []proto.Action) {
	ok = n.srp.SubmitBulk(now, id, off, total, data)
	return ok, n.acts.Drain()
}

// OnPacket processes a packet received on one network.
func (n *Node) OnPacket(now proto.Time, network int, data []byte) []proto.Action {
	n.rep.OnPacket(now, network, data)
	return n.acts.Drain()
}

// OnTimer processes a timer expiry, routing it to the owning layer.
func (n *Node) OnTimer(now proto.Time, id proto.TimerID) []proto.Action {
	if id.IsRRP() {
		n.rep.OnTimer(now, id)
	} else {
		n.srp.OnTimer(now, id)
	}
	return n.acts.Drain()
}

// Recycle returns an executed action batch for reuse by later emissions.
// Drivers call it after every send and delivery in the batch has completed;
// the batch must not be touched afterwards.
func (n *Node) Recycle(batch []proto.Action) {
	n.acts.Recycle(batch)
}

// SetProbe installs (or removes, with nil) the typed machine-event hook
// shared by both layers. Drivers install it before Start; with none
// installed, probe emission is a single branch per site.
func (n *Node) SetProbe(fn proto.ProbeFunc) { n.acts.SetProbe(fn) }

// Metrics returns the node's metric registry (safe for concurrent reads).
func (n *Node) Metrics() *metrics.Registry { return n.met }

// SRP exposes the ordering machine (read-only use: state, stats).
func (n *Node) SRP() *srp.Machine { return n.srp }

// Replicator exposes the RRP layer (read-only use: faults, stats).
func (n *Node) Replicator() core.Replicator { return n.rep }

// Backlog returns queued, unsent application messages.
func (n *Node) Backlog() int { return n.srp.Backlog() }

// BulkBacklog returns queued, unsent bulk chunks.
func (n *Node) BulkBacklog() int { return n.srp.BulkBacklog() }
