package stack

import (
	"math/rand"

	"github.com/totem-rrp/totem/internal/core"
	"github.com/totem-rrp/totem/internal/proto"
)

// Corrupt scrambles one slice of this node's protocol state in place — the
// torture harness's arbitrary-initial-state recovery mode (DESIGN.md §12).
// sub selects the target:
//
//   - "monitors":   the RRP per-network monitoring counters
//   - "held-token": forged/poisoned replicator token state
//   - "ring-seq":   the SRP duplicate-token filter, pushed into the future
//   - "aru":        the SRP safe-delivery horizon, inflated to the high mark
//
// Unknown subs are no-ops. The returned actions (forged hold timers,
// probes) must be executed by the driver like any handler's actions; the
// protocol is then expected to re-converge without outside help.
func (n *Node) Corrupt(now proto.Time, sub string, seed int64) []proto.Action {
	rng := rand.New(rand.NewSource(seed))
	applied := false
	switch sub {
	case "monitors":
		applied = core.CorruptMonitors(n.rep, rng)
	case "held-token":
		if seq, rot, seen := n.srp.TokenFilter(); seen {
			applied = core.CorruptToken(n.rep, n.srp.Ring(), seq, rot, rng)
		} else {
			// No token generation to forge from yet (mid-membership);
			// scrambled monitors are the nearest plausible damage.
			applied = core.CorruptMonitors(n.rep, rng)
		}
	case "ring-seq":
		applied = n.srp.CorruptTokenFilter(16 + uint32(rng.Intn(112)))
	case "aru":
		applied = n.srp.CorruptARU()
	}
	a := int64(0)
	if applied {
		a = 1
	}
	n.acts.Probe(proto.ProbeStateCorrupted, -1, a, 0, 0)
	return n.acts.Drain()
}
