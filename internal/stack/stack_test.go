package stack

import (
	"testing"
	"time"

	"github.com/totem-rrp/totem/internal/proto"
	"github.com/totem-rrp/totem/internal/srp"
	"github.com/totem-rrp/totem/internal/wire"
)

func TestNewValidatesBothLayers(t *testing.T) {
	bad := DefaultConfig(0, 2, proto.ReplicationActive) // zero node ID
	if _, err := New(bad); err == nil {
		t.Fatal("zero node ID accepted")
	}
	bad = DefaultConfig(1, 2, proto.ReplicationActivePassive) // N < 3
	if _, err := New(bad); err == nil {
		t.Fatal("active-passive on two networks accepted")
	}
	good := DefaultConfig(1, 2, proto.ReplicationActive)
	n, err := New(good)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if n.ID() != 1 {
		t.Fatalf("ID = %v", n.ID())
	}
	if n.Replicator().Style() != proto.ReplicationActive {
		t.Fatalf("style = %v", n.Replicator().Style())
	}
}

func TestStartFormsSingletonAndEmitsActions(t *testing.T) {
	n, err := New(DefaultConfig(1, 1, proto.ReplicationNone))
	if err != nil {
		t.Fatal(err)
	}
	acts := n.Start(0)
	var sawConfig bool
	for _, a := range acts {
		if c, ok := a.(proto.Config); ok && !c.Change.Transitional {
			sawConfig = true
			if len(c.Change.Members) != 1 || c.Change.Members[0] != 1 {
				t.Fatalf("singleton config %v", c.Change)
			}
		}
	}
	if !sawConfig {
		t.Fatal("no regular configuration emitted at singleton start")
	}
	if n.SRP().State() != srp.StateOperational {
		t.Fatalf("state = %v", n.SRP().State())
	}
}

func TestBroadcastsRouteThroughReplicator(t *testing.T) {
	// With active replication on two networks, a join broadcast at Start
	// must appear as SendPacket actions on both networks.
	n, err := New(DefaultConfig(1, 2, proto.ReplicationActive))
	if err != nil {
		t.Fatal(err)
	}
	acts := n.Start(0)
	perNet := map[int]int{}
	for _, a := range acts {
		if sp, ok := a.(*proto.SendPacket); ok {
			if k, err := wire.PeekKind(sp.Data); err == nil && k == wire.KindJoin {
				perNet[sp.Network]++
			}
		}
	}
	if perNet[0] == 0 || perNet[1] == 0 {
		t.Fatalf("join not replicated on both networks: %v", perNet)
	}
	if perNet[0] != perNet[1] {
		t.Fatalf("asymmetric join replication: %v", perNet)
	}
}

func TestTimerRouting(t *testing.T) {
	n, err := New(DefaultConfig(1, 2, proto.ReplicationActive))
	if err != nil {
		t.Fatal(err)
	}
	n.Start(0)
	// An RRP decay timer expiry must re-arm itself (handled by the RRP
	// layer, not the SRP).
	acts := n.OnTimer(time.Second, proto.TimerID{Class: proto.TimerRRPDecay})
	rearmed := false
	for _, a := range acts {
		if st, ok := a.(proto.SetTimer); ok && st.ID.Class == proto.TimerRRPDecay {
			rearmed = true
		}
	}
	if !rearmed {
		t.Fatal("decay timer not routed to the RRP layer")
	}
	// An SRP merge-detect timer must be routed to the SRP (the singleton
	// rep re-arms it and broadcasts).
	acts = n.OnTimer(2*time.Second, proto.TimerID{Class: proto.TimerMergeDetect})
	sawMD := false
	for _, a := range acts {
		if sp, ok := a.(*proto.SendPacket); ok {
			if k, err := wire.PeekKind(sp.Data); err == nil && k == wire.KindMergeDetect {
				sawMD = true
			}
		}
	}
	if !sawMD {
		t.Fatal("merge-detect timer not routed to the SRP")
	}
}

func TestSubmitBackpressureSurfaces(t *testing.T) {
	cfg := DefaultConfig(1, 1, proto.ReplicationNone)
	cfg.SRP.MaxQueued = 2
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Not started: rejected.
	if ok, _ := n.Submit(0, []byte("x")); ok {
		t.Fatal("submit accepted before start")
	}
	n.Start(0)
	// Singleton drains instantly, so acceptance is always true here; the
	// backpressure path is covered by srp tests. Verify the action flow.
	ok, acts := n.Submit(0, []byte("hello"))
	if !ok {
		t.Fatal("submit rejected")
	}
	delivered := false
	for _, a := range acts {
		if d, ok := a.(proto.Deliver); ok && string(d.Msg.Payload) == "hello" {
			delivered = true
		}
	}
	if !delivered {
		t.Fatal("singleton did not deliver its own message")
	}
	if n.Backlog() != 0 {
		t.Fatalf("backlog = %d", n.Backlog())
	}
}

func TestMissingCallbackWiring(t *testing.T) {
	// The passive replicator must see the SRP's gap state through the
	// Missing callback: a token with a sequence number above the SRP's
	// aru must be buffered, not passed up.
	cfg := DefaultConfig(1, 2, proto.ReplicationPassive)
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Start(0)
	// Craft a token for the singleton's ring with seq 5: the SRP has
	// seen nothing, so MissingBefore(5) is true and the replicator holds
	// the token.
	ring := n.SRP().Ring()
	tok := &wire.Token{Ring: ring, Seq: 5}
	data, err := tok.Encode()
	if err != nil {
		t.Fatal(err)
	}
	acts := n.OnPacket(0, 0, data)
	held := false
	for _, a := range acts {
		if st, ok := a.(proto.SetTimer); ok && st.ID.Class == proto.TimerRRPToken {
			held = true
		}
	}
	if !held {
		t.Fatal("token with outstanding messages was not buffered (Missing callback broken)")
	}
	if got := n.SRP().Stats().TokensReceived; got != 0 {
		t.Fatalf("token leaked into the SRP: %d", got)
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := DefaultConfig(7, 3, proto.ReplicationActivePassive)
	if cfg.SRP.ID != 7 {
		t.Fatalf("SRP.ID = %v", cfg.SRP.ID)
	}
	if cfg.RRP.Networks != 3 || cfg.RRP.Style != proto.ReplicationActivePassive {
		t.Fatalf("RRP config %+v", cfg.RRP)
	}
	if err := cfg.SRP.Validate(); err != nil {
		t.Fatalf("SRP default invalid: %v", err)
	}
	if err := cfg.RRP.Validate(); err != nil {
		t.Fatalf("RRP default invalid: %v", err)
	}
}
