package trace

import (
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/totem-rrp/totem/internal/proto"
	"github.com/totem-rrp/totem/internal/wire"
)

func ev(i int) Event {
	return Event{At: time.Duration(i) * time.Millisecond, Node: 1, Kind: PacketSent, Network: 0, Detail: "x"}
}

func TestRingRetainsLastN(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 5; i++ {
		r.Record(ev(i))
	}
	events := r.Events(nil)
	if len(events) != 3 {
		t.Fatalf("len = %d", len(events))
	}
	for i, e := range events {
		if e.At != time.Duration(i+2)*time.Millisecond {
			t.Fatalf("event %d at %v", i, e.At)
		}
	}
	if r.Total() != 5 || r.Len() != 3 {
		t.Fatalf("Total=%d Len=%d", r.Total(), r.Len())
	}
}

func TestRingPartiallyFilled(t *testing.T) {
	r := NewRing(10)
	r.Record(ev(0))
	r.Record(ev(1))
	if got := r.Events(nil); len(got) != 2 || got[0].At != 0 {
		t.Fatalf("events = %v", got)
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestRingZeroCapacityClamped(t *testing.T) {
	r := NewRing(0)
	r.Record(ev(1))
	if r.Len() != 1 {
		t.Fatalf("Len = %d", r.Len())
	}
}

// TestEventsReusesBuffer checks the caller-supplied buffer contract: the
// snapshot is appended into the provided slice and, once it has grown to
// the ring's capacity, repeated snapshots allocate nothing.
func TestEventsReusesBuffer(t *testing.T) {
	r := NewRing(8)
	for i := 0; i < 20; i++ { // wrap around more than twice
		r.Record(ev(i))
	}
	buf := r.Events(nil)
	if len(buf) != 8 {
		t.Fatalf("len = %d, want 8", len(buf))
	}
	for i, e := range buf {
		if e.At != time.Duration(i+12)*time.Millisecond {
			t.Fatalf("event %d at %v", i, e.At)
		}
	}
	p := &buf[0]
	allocs := testing.AllocsPerRun(100, func() {
		buf = r.Events(buf[:0])
	})
	if allocs != 0 {
		t.Fatalf("Events with warm buffer allocated %.1f/op", allocs)
	}
	if &buf[0] != p {
		t.Fatal("warm buffer was reallocated")
	}
	// Buffer reuse must not corrupt contents after further wraparound.
	for i := 20; i < 25; i++ {
		r.Record(ev(i))
	}
	buf = r.Events(buf[:0])
	if len(buf) != 8 || buf[7].At != 24*time.Millisecond || buf[0].At != 17*time.Millisecond {
		t.Fatalf("post-wrap snapshot wrong: first %v last %v", buf[0].At, buf[len(buf)-1].At)
	}
}

func TestRingConcurrentRecord(t *testing.T) {
	r := NewRing(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Record(ev(i))
			}
		}()
	}
	wg.Wait()
	if r.Total() != 8000 {
		t.Fatalf("Total = %d", r.Total())
	}
}

func TestDump(t *testing.T) {
	r := NewRing(4)
	r.Record(Event{At: time.Second, Node: 2, Kind: FaultRaised, Network: 1, Detail: "dead"})
	r.Record(Event{At: 2 * time.Second, Node: 3, Kind: ConfigChanged, Network: -1, Detail: "new ring"})
	var sb strings.Builder
	if err := r.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"fault", "net1", "dead", "config", "new ring"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
}

// TestLazyFormatting checks that typed events with no Detail render their
// payload fields on demand.
func TestLazyFormatting(t *testing.T) {
	cases := []struct {
		e    Event
		want []string
	}{
		{Event{Kind: PacketSent, Network: 0, A: int64(wire.KindToken), B: 2, C: 48}, []string{"token", "n2", "48B"}},
		{Event{Kind: PacketReceived, Network: 1, A: int64(wire.KindData), B: int64(proto.BroadcastID), C: 1000}, []string{"data", "bcast", "1000B"}},
		{Event{Kind: TimerFired, Network: -1, A: int64(proto.TimerTokenLoss)}, []string{"token-loss"}},
		{Event{Kind: Delivered, Network: -1, A: 17, B: 3, C: 64}, []string{"seq 17", "n3", "64B"}},
		{Event{Kind: FaultCleared, Network: 1, A: 4}, []string{"readmitted", "4 clean"}},
		{Event{Kind: ConfigChanged, Network: -1, A: 1, B: 5, C: 4, Detail: "transitional"}, []string{"transitional"}},
		{Event{Kind: Machine, Code: proto.ProbeTokenGated, Network: -1, A: 9}, []string{"token-gated", "seq 9"}},
		{Event{Kind: Machine, Code: proto.ProbeProbation, Network: 1, A: 2, B: 4}, []string{"probation", "2/4"}},
	}
	for _, c := range cases {
		s := c.e.String()
		for _, w := range c.want {
			if !strings.Contains(s, w) {
				t.Fatalf("%v event rendered %q, missing %q", c.e.Kind, s, w)
			}
		}
	}
}

func TestFilter(t *testing.T) {
	c := NewCounter()
	f := Filter{Next: c, Keep: func(e Event) bool { return e.Kind == FaultRaised }}
	f.Record(Event{Kind: PacketSent})
	f.Record(Event{Kind: FaultRaised})
	if c.Count(FaultRaised) != 1 || c.Count(PacketSent) != 0 {
		t.Fatalf("filter leaked: faults=%d sent=%d", c.Count(FaultRaised), c.Count(PacketSent))
	}
	// Nil predicate keeps everything.
	f2 := Filter{Next: c}
	f2.Record(Event{Kind: PacketSent})
	if c.Count(PacketSent) != 1 {
		t.Fatal("nil predicate dropped event")
	}
}

func TestFilterNilNext(t *testing.T) {
	// A Filter with no sink must drop events, not panic.
	f := Filter{Keep: func(Event) bool { return true }}
	f.Record(Event{Kind: PacketSent})
	var f2 Filter
	f2.Record(Event{Kind: Note})
}

func TestMulti(t *testing.T) {
	a, b := NewCounter(), NewCounter()
	m := Multi{a, b}
	m.Record(Event{Kind: Delivered})
	if a.Count(Delivered) != 1 || b.Count(Delivered) != 1 {
		t.Fatal("multi did not fan out")
	}
}

func TestCounterCodes(t *testing.T) {
	c := NewCounter()
	c.Record(Event{Kind: Machine, Code: proto.ProbeTokenGated})
	c.Record(Event{Kind: Machine, Code: proto.ProbeTokenGated})
	c.Record(Event{Kind: Machine, Code: proto.ProbeFlapBackoff})
	c.Record(Event{Kind: PacketSent})
	if c.Count(Machine) != 3 {
		t.Fatalf("machine count = %d", c.Count(Machine))
	}
	if c.CodeCount(proto.ProbeTokenGated) != 2 || c.CodeCount(proto.ProbeFlapBackoff) != 1 {
		t.Fatalf("code counts = %d, %d", c.CodeCount(proto.ProbeTokenGated), c.CodeCount(proto.ProbeFlapBackoff))
	}
	if c.CodeCount(proto.ProbePhase) != 0 {
		t.Fatal("unexpected phase count")
	}
}

func TestDiscard(t *testing.T) {
	Discard.Record(Event{Kind: Note}) // must not panic
}

func TestKindStrings(t *testing.T) {
	kinds := []Kind{PacketSent, PacketReceived, TimerFired, Delivered, FaultRaised, ConfigChanged, Machine, Note}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Fatalf("kind %d bad string %q", int(k), s)
		}
		seen[s] = true
	}
	if !strings.Contains(Kind(99).String(), "99") {
		t.Fatal("unknown kind string")
	}
}
