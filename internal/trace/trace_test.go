package trace

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func ev(i int) Event {
	return Event{At: time.Duration(i) * time.Millisecond, Node: 1, Kind: PacketSent, Network: 0, Detail: "x"}
}

func TestRingRetainsLastN(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 5; i++ {
		r.Record(ev(i))
	}
	events := r.Events()
	if len(events) != 3 {
		t.Fatalf("len = %d", len(events))
	}
	for i, e := range events {
		if e.At != time.Duration(i+2)*time.Millisecond {
			t.Fatalf("event %d at %v", i, e.At)
		}
	}
	if r.Total() != 5 || r.Len() != 3 {
		t.Fatalf("Total=%d Len=%d", r.Total(), r.Len())
	}
}

func TestRingPartiallyFilled(t *testing.T) {
	r := NewRing(10)
	r.Record(ev(0))
	r.Record(ev(1))
	if got := r.Events(); len(got) != 2 || got[0].At != 0 {
		t.Fatalf("events = %v", got)
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestRingZeroCapacityClamped(t *testing.T) {
	r := NewRing(0)
	r.Record(ev(1))
	if r.Len() != 1 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestRingConcurrentRecord(t *testing.T) {
	r := NewRing(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Record(ev(i))
			}
		}()
	}
	wg.Wait()
	if r.Total() != 8000 {
		t.Fatalf("Total = %d", r.Total())
	}
}

func TestDump(t *testing.T) {
	r := NewRing(4)
	r.Record(Event{At: time.Second, Node: 2, Kind: FaultRaised, Network: 1, Detail: "dead"})
	r.Record(Event{At: 2 * time.Second, Node: 3, Kind: ConfigChanged, Network: -1, Detail: "new ring"})
	var sb strings.Builder
	if err := r.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"fault", "net1", "dead", "config", "new ring"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestFilter(t *testing.T) {
	c := NewCounter()
	f := Filter{Next: c, Keep: func(e Event) bool { return e.Kind == FaultRaised }}
	f.Record(Event{Kind: PacketSent})
	f.Record(Event{Kind: FaultRaised})
	if c.Count(FaultRaised) != 1 || c.Count(PacketSent) != 0 {
		t.Fatalf("filter leaked: faults=%d sent=%d", c.Count(FaultRaised), c.Count(PacketSent))
	}
	// Nil predicate keeps everything.
	f2 := Filter{Next: c}
	f2.Record(Event{Kind: PacketSent})
	if c.Count(PacketSent) != 1 {
		t.Fatal("nil predicate dropped event")
	}
}

func TestMulti(t *testing.T) {
	a, b := NewCounter(), NewCounter()
	m := Multi{a, b}
	m.Record(Event{Kind: Delivered})
	if a.Count(Delivered) != 1 || b.Count(Delivered) != 1 {
		t.Fatal("multi did not fan out")
	}
}

func TestDiscard(t *testing.T) {
	Discard.Record(Event{Kind: Note}) // must not panic
}

func TestKindStrings(t *testing.T) {
	kinds := []Kind{PacketSent, PacketReceived, TimerFired, Delivered, FaultRaised, ConfigChanged, Note}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Fatalf("kind %d bad string %q", int(k), s)
		}
		seen[s] = true
	}
	if !strings.Contains(Kind(99).String(), "99") {
		t.Fatal("unknown kind string")
	}
}
