package trace

import (
	"strings"
	"testing"
	"time"

	"github.com/totem-rrp/totem/internal/proto"
)

// FuzzEventText hammers the lazy event formatter with arbitrary typed
// payloads: every Kind/Code combination — including ones no current
// probe site emits — must format without panicking and produce non-empty
// text for a known kind. The formatter runs on the debug-endpoint read
// path against events recorded by concurrent protocol goroutines, so it
// can see any field combination, not just the ones the recording sites
// construct today.
func FuzzEventText(f *testing.F) {
	// One seed per event family the live stack records (the population a
	// torture trace tail contains), plus hostile extremes.
	f.Add(int64(time.Millisecond), uint32(1), int(PacketSent), 0, 0, int64(2), int64(proto.BroadcastID), int64(1400), "")
	f.Add(int64(0), uint32(2), int(PacketReceived), 0, 1, int64(1), int64(3), int64(96), "")
	f.Add(int64(time.Second), uint32(3), int(TimerFired), 0, -1, int64(2), int64(9), int64(0), "")
	f.Add(int64(5), uint32(1), int(Delivered), 0, -1, int64(42), int64(2), int64(64), "")
	f.Add(int64(6), uint32(2), int(FaultRaised), 0, 1, int64(0), int64(0), int64(0), "problem counter over threshold")
	f.Add(int64(7), uint32(2), int(FaultCleared), 0, 1, int64(3), int64(0), int64(0), "")
	f.Add(int64(8), uint32(4), int(ConfigChanged), 0, -1, int64(1), int64(7), int64(4), "transitional")
	f.Add(int64(9), uint32(1), int(Machine), int(proto.ProbeMonitorDecay), 0, int64(3), int64(170), int64(0), "")
	f.Add(int64(10), uint32(1), int(Machine), int(proto.ProbePhase), -1, int64(1), int64(2), int64(0), "")
	f.Add(int64(11), uint32(1), int(Note), 0, -1, int64(0), int64(0), int64(0), "hello")
	f.Add(int64(-1), uint32(0), 0, -1, -2, int64(-9e18), int64(9e18), int64(-1), "")
	f.Add(int64(9e18), uint32(4e9), 9999, 9999, 9999, int64(1), int64(2), int64(3), strings.Repeat("x", 300))

	f.Fuzz(func(t *testing.T, at int64, node uint32, kind, code, network int, a, b, c int64, detail string) {
		e := Event{
			At:      time.Duration(at),
			Node:    proto.NodeID(node),
			Kind:    Kind(kind),
			Code:    proto.ProbeCode(code),
			Network: network,
			A:       a,
			B:       b,
			C:       c,
			Detail:  detail,
		}
		text := e.Text()
		if e.Detail != "" && text != e.Detail {
			t.Fatalf("Detail %q not honoured, got %q", e.Detail, text)
		}
		s := e.String()
		if s == "" {
			t.Fatal("String returned nothing")
		}
		if e.Kind == Machine && e.Detail == "" && text == "" {
			t.Fatal("machine event formatted to nothing")
		}

		// The ring and counter must swallow any event shape; Events and
		// CodeCount run the read paths the debug endpoints use.
		r := NewRing(4)
		r.Record(e)
		r.Record(e)
		for _, ev := range r.Events(nil) {
			_ = ev.String()
		}
		cnt := NewCounter()
		cnt.Record(e)
		if e.Kind == Machine && cnt.CodeCount(e.Code) != 1 {
			t.Fatalf("counter lost a machine event (code %d)", int(e.Code))
		}
	})
}
