// Package trace provides structured, low-overhead event tracing for the
// protocol stack: packet transmissions and receptions, timer expirations,
// deliveries, fault reports, configuration changes and typed in-machine
// probe events. Drivers (the simulator and the real-time runtime) record
// into a Tracer; tests, the fault-injection tool and the live /trace
// debug endpoint read back a time-ordered event log.
//
// Events carry typed payloads (a code plus three integers) rather than
// preformatted strings: recording is allocation-free, and human-readable
// text is produced lazily by Event.String only when someone looks.
package trace

import (
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/totem-rrp/totem/internal/proto"
	"github.com/totem-rrp/totem/internal/wire"
)

// Kind classifies an event.
type Kind int

// Event kinds.
const (
	PacketSent Kind = iota + 1
	PacketReceived
	TimerFired
	Delivered
	FaultRaised
	FaultCleared
	ConfigChanged
	Machine
	Note
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case PacketSent:
		return "tx"
	case PacketReceived:
		return "rx"
	case TimerFired:
		return "timer"
	case Delivered:
		return "deliver"
	case FaultRaised:
		return "fault"
	case FaultCleared:
		return "cleared"
	case ConfigChanged:
		return "config"
	case Machine:
		return "machine"
	case Note:
		return "note"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one traced occurrence. The typed fields A, B and C carry the
// payload; their meaning depends on Kind (and, for Machine events, Code):
//
//	PacketSent/PacketReceived: A = wire kind, B = destination node
//	                           (proto.BroadcastID for broadcast), C = bytes
//	TimerFired:                A = timer class, B = timer arg
//	Delivered:                 A = seq, B = sender, C = bytes
//	FaultCleared:              A = probation (clean windows served)
//	ConfigChanged:             A = representative, B = epoch, C = members
//	Machine:                   per Code; see proto.ProbeCode
//
// Detail is optional preformatted text (a fault reason, a note); when it
// is empty String derives text from the typed fields on demand.
type Event struct {
	// At is the (virtual or real) time of the event.
	At time.Duration
	// Node is the observing node.
	Node proto.NodeID
	// Kind classifies the event.
	Kind Kind
	// Code identifies the machine event for Kind == Machine.
	Code proto.ProbeCode
	// Network is the network index for per-network events (-1 otherwise).
	Network int
	// A, B, C are the typed payload (meaning per Kind/Code).
	A, B, C int64
	// Detail is optional preformatted text. Recording a constant string
	// ("transitional", a fault reason that already exists) is free; never
	// build one with fmt.Sprintf on the recording path.
	Detail string
}

// Text returns the human-readable payload description, using Detail when
// present and formatting the typed fields otherwise.
func (e Event) Text() string {
	if e.Detail != "" {
		return e.Detail
	}
	switch e.Kind {
	case PacketSent, PacketReceived:
		if proto.NodeID(e.B) == proto.BroadcastID {
			return fmt.Sprintf("%v -> bcast (%dB)", wire.Kind(e.A), e.C)
		}
		return fmt.Sprintf("%v -> n%d (%dB)", wire.Kind(e.A), e.B, e.C)
	case TimerFired:
		return proto.TimerID{Class: proto.TimerClass(e.A), Arg: uint32(e.B)}.String()
	case Delivered:
		return fmt.Sprintf("seq %d from n%d (%dB)", e.A, e.B, e.C)
	case FaultCleared:
		return fmt.Sprintf("readmitted after %d clean windows", e.A)
	case ConfigChanged:
		return fmt.Sprintf("new ring ring(n%d,%d) members %d", e.A, e.B, e.C)
	case Machine:
		return formatMachine(e.Code, e.A, e.B, e.C)
	}
	return ""
}

// formatMachine renders a probe event's payload per its code.
func formatMachine(code proto.ProbeCode, a, b, c int64) string {
	switch code {
	case proto.ProbeTokenGathered:
		return fmt.Sprintf("%v seq %d rot %d", code, a, b)
	case proto.ProbeTokenGated, proto.ProbeTokenTimedOut, proto.ProbeTokenDiscarded:
		return fmt.Sprintf("%v seq %d", code, a)
	case proto.ProbeMonitorThreshold:
		return fmt.Sprintf("%v %d/%d", code, a, b)
	case proto.ProbeMonitorDecay:
		return fmt.Sprintf("%v window %d headroom %d", code, a, b)
	case proto.ProbeProbation:
		return fmt.Sprintf("%v %d/%d clean windows", code, a, b)
	case proto.ProbeProbeSent:
		return fmt.Sprintf("%v budget %d", code, a)
	case proto.ProbeFlapBackoff:
		return fmt.Sprintf("%v probation now %d windows", code, a)
	case proto.ProbeRetransRequested, proto.ProbeRetransServed:
		return fmt.Sprintf("%v seq %d", code, a)
	case proto.ProbeFlowStall:
		return fmt.Sprintf("%v backlog %d", code, a)
	case proto.ProbePhase:
		return fmt.Sprintf("%v %d -> %d", code, a, b)
	case proto.ProbeTokenLoss:
		return fmt.Sprintf("%v last seq %d", code, a)
	case proto.ProbeSeqRollover:
		return fmt.Sprintf("%v seq %d limit %d", code, a, b)
	default:
		return fmt.Sprintf("%v a=%d b=%d c=%d", code, a, b, c)
	}
}

// String implements fmt.Stringer.
func (e Event) String() string {
	if e.Network >= 0 {
		return fmt.Sprintf("%-12v %v %-7s net%d %s", e.At, e.Node, e.Kind, e.Network, e.Text())
	}
	return fmt.Sprintf("%-12v %v %-7s      %s", e.At, e.Node, e.Kind, e.Text())
}

// Tracer receives events. Implementations must be safe for concurrent
// use; the simulator is single-threaded but the real-time runtime is not.
type Tracer interface {
	Record(Event)
}

// Discard is a Tracer that drops everything.
var Discard Tracer = discard{}

type discard struct{}

func (discard) Record(Event) {}

// Ring is a fixed-capacity ring-buffer tracer: recording never allocates
// after construction and old events are overwritten, so it can stay
// enabled in long runs.
type Ring struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	count uint64
	// scratch is Dump's reusable event buffer, guarded by dumpMu so
	// concurrent dumps do not trample each other.
	dumpMu  sync.Mutex
	scratch []Event
}

// NewRing returns a tracer retaining the last capacity events.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, capacity)}
}

// Record implements Tracer.
func (r *Ring) Record(e Event) {
	r.mu.Lock()
	r.buf[r.next] = e
	r.next = (r.next + 1) % len(r.buf)
	r.count++
	r.mu.Unlock()
}

// Len returns the number of retained events.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.count < uint64(len(r.buf)) {
		return int(r.count)
	}
	return len(r.buf)
}

// Total returns the number of events ever recorded.
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

// Events appends the retained events to buf, oldest first, and returns
// the extended slice. Pass a slice retained across calls (or nil) to
// avoid a per-dump allocation once its capacity has grown to the ring's.
func (r *Ring) Events(buf []Event) []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.count < uint64(len(r.buf)) {
		return append(buf, r.buf[:r.count]...)
	}
	buf = append(buf, r.buf[r.next:]...)
	return append(buf, r.buf[:r.next]...)
}

// Dump writes the retained events to w, oldest first. The event snapshot
// buffer is reused across calls, so periodic dumps (the /trace endpoint)
// settle to zero event-buffer allocations.
func (r *Ring) Dump(w io.Writer) error {
	r.dumpMu.Lock()
	defer r.dumpMu.Unlock()
	r.scratch = r.Events(r.scratch[:0])
	for _, e := range r.scratch {
		if _, err := fmt.Fprintln(w, e); err != nil {
			return err
		}
	}
	return nil
}

// Filter forwards only events matching the predicate. A nil Next drops
// everything (so a Filter can be built before its sink is known), and a
// nil Keep forwards everything.
type Filter struct {
	Next Tracer
	Keep func(Event) bool
}

// Record implements Tracer.
func (f Filter) Record(e Event) {
	if f.Next == nil {
		return
	}
	if f.Keep == nil || f.Keep(e) {
		f.Next.Record(e)
	}
}

// Multi fans events out to several tracers.
type Multi []Tracer

// Record implements Tracer.
func (m Multi) Record(e Event) {
	for _, t := range m {
		t.Record(e)
	}
}

// Counter tallies events per kind — and Machine events per probe code —
// for structured assertions in tests and the fault-injection harness.
type Counter struct {
	mu     sync.Mutex
	counts map[Kind]uint64
	codes  map[proto.ProbeCode]uint64
}

// NewCounter returns an empty counter.
func NewCounter() *Counter {
	return &Counter{
		counts: make(map[Kind]uint64),
		codes:  make(map[proto.ProbeCode]uint64),
	}
}

// Record implements Tracer.
func (c *Counter) Record(e Event) {
	c.mu.Lock()
	c.counts[e.Kind]++
	if e.Kind == Machine {
		c.codes[e.Code]++
	}
	c.mu.Unlock()
}

// Count returns the tally for one kind.
func (c *Counter) Count(k Kind) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counts[k]
}

// CodeCount returns the tally for one machine probe code.
func (c *Counter) CodeCount(code proto.ProbeCode) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.codes[code]
}
