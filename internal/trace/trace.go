// Package trace provides structured, low-overhead event tracing for the
// protocol stack: packet transmissions and receptions, timer expirations,
// deliveries, fault reports and configuration changes. The simulator (and
// any other driver) records into a Tracer; tests and the fault-injection
// tool read back a time-ordered event log to diagnose protocol behaviour.
package trace

import (
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/totem-rrp/totem/internal/proto"
)

// Kind classifies an event.
type Kind int

// Event kinds.
const (
	PacketSent Kind = iota + 1
	PacketReceived
	TimerFired
	Delivered
	FaultRaised
	FaultCleared
	ConfigChanged
	Note
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case PacketSent:
		return "tx"
	case PacketReceived:
		return "rx"
	case TimerFired:
		return "timer"
	case Delivered:
		return "deliver"
	case FaultRaised:
		return "fault"
	case FaultCleared:
		return "cleared"
	case ConfigChanged:
		return "config"
	case Note:
		return "note"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one traced occurrence.
type Event struct {
	// At is the (virtual or real) time of the event.
	At time.Duration
	// Node is the observing node.
	Node proto.NodeID
	// Kind classifies the event.
	Kind Kind
	// Network is the network index for packet events (-1 otherwise).
	Network int
	// Detail is a short human-readable description.
	Detail string
}

// String implements fmt.Stringer.
func (e Event) String() string {
	if e.Network >= 0 {
		return fmt.Sprintf("%-12v %v %-7s net%d %s", e.At, e.Node, e.Kind, e.Network, e.Detail)
	}
	return fmt.Sprintf("%-12v %v %-7s      %s", e.At, e.Node, e.Kind, e.Detail)
}

// Tracer receives events. Implementations must be safe for concurrent
// use; the simulator is single-threaded but the real-time runtime is not.
type Tracer interface {
	Record(Event)
}

// Discard is a Tracer that drops everything.
var Discard Tracer = discard{}

type discard struct{}

func (discard) Record(Event) {}

// Ring is a fixed-capacity ring-buffer tracer: recording never allocates
// after construction and old events are overwritten, so it can stay
// enabled in long runs.
type Ring struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	count uint64
}

// NewRing returns a tracer retaining the last capacity events.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, capacity)}
}

// Record implements Tracer.
func (r *Ring) Record(e Event) {
	r.mu.Lock()
	r.buf[r.next] = e
	r.next = (r.next + 1) % len(r.buf)
	r.count++
	r.mu.Unlock()
}

// Len returns the number of retained events.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.count < uint64(len(r.buf)) {
		return int(r.count)
	}
	return len(r.buf)
}

// Total returns the number of events ever recorded.
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

// Events returns the retained events, oldest first.
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := len(r.buf)
	if r.count < uint64(n) {
		out := make([]Event, r.count)
		copy(out, r.buf[:r.count])
		return out
	}
	out := make([]Event, 0, n)
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Dump writes the retained events to w, oldest first.
func (r *Ring) Dump(w io.Writer) error {
	for _, e := range r.Events() {
		if _, err := fmt.Fprintln(w, e); err != nil {
			return err
		}
	}
	return nil
}

// Filter forwards only events matching the predicate.
type Filter struct {
	Next Tracer
	Keep func(Event) bool
}

// Record implements Tracer.
func (f Filter) Record(e Event) {
	if f.Keep == nil || f.Keep(e) {
		f.Next.Record(e)
	}
}

// Multi fans events out to several tracers.
type Multi []Tracer

// Record implements Tracer.
func (m Multi) Record(e Event) {
	for _, t := range m {
		t.Record(e)
	}
}

// Counter tallies events per kind; useful in assertions.
type Counter struct {
	mu     sync.Mutex
	counts map[Kind]uint64
}

// NewCounter returns an empty counter.
func NewCounter() *Counter {
	return &Counter{counts: make(map[Kind]uint64)}
}

// Record implements Tracer.
func (c *Counter) Record(e Event) {
	c.mu.Lock()
	c.counts[e.Kind]++
	c.mu.Unlock()
}

// Count returns the tally for one kind.
func (c *Counter) Count(k Kind) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counts[k]
}
