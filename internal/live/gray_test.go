package live

import (
	"testing"
	"time"

	"github.com/totem-rrp/totem/internal/proto"
	"github.com/totem-rrp/totem/internal/torture"
)

// TestNetemOneWayBlock is the regression pin for the direction-aware path
// judgment: a one-way block from 1 to 2 must not become two-way, must not
// leak to other pairs or networks, and must filter broadcasts per
// destination rather than dropping them whole.
func TestNetemOneWayBlock(t *testing.T) {
	peers := []proto.NodeID{2, 3}
	nm := NewNetem(2, NetemParams{Seed: 1})
	nm.BlockPair(0, 1, 2, true)

	if v := nm.judgeSend(1, 2, 0, nil); !v.drop {
		t.Fatal("blocked direction 1->2 not dropped")
	}
	if v := nm.judgeSend(2, 1, 0, nil); v.drop {
		t.Fatal("one-way block became two-way: 2->1 dropped")
	}
	if v := nm.judgeSend(1, 3, 0, nil); v.drop {
		t.Fatal("block leaked to pair 1->3")
	}
	if v := nm.judgeSend(1, 2, 1, nil); v.drop {
		t.Fatal("block leaked onto network 1")
	}
	v := nm.judgeSend(1, proto.BroadcastID, 0, peers)
	if v.drop || len(v.expand) != 1 || v.expand[0] != 3 {
		t.Fatalf("broadcast verdict %+v, want expansion to [3] only", v)
	}
	// An unaffected sender's broadcast may stay a broadcast or expand to
	// unicasts, but the delivery set must be every peer.
	if v := nm.judgeSend(2, proto.BroadcastID, 0, []proto.NodeID{1, 3}); v.drop ||
		(v.expand != nil && len(v.expand) != 2) {
		t.Fatalf("peer broadcast verdict %+v, want all peers reached", v)
	}

	nm.BlockPair(0, 1, 2, false)
	if v := nm.judgeSend(1, 2, 0, nil); v.drop {
		t.Fatal("unblocked direction still dropped")
	}
	if v := nm.judgeSend(1, proto.BroadcastID, 0, peers); v.drop || v.expand != nil {
		t.Fatalf("broadcast verdict %+v after unblock, want plain broadcast", v)
	}

	nm.BlockPair(1, 2, 3, true)
	nm.HealAll()
	if v := nm.judgeSend(2, 3, 1, nil); v.drop {
		t.Fatal("HealAll left a pair block in place")
	}
}

// TestNetemGrayFaults pins the remaining gray impairments at the verdict
// level: forced latency floors, duplicate storms, and congestion loss that
// only bites under burst load.
func TestNetemGrayFaults(t *testing.T) {
	peers := []proto.NodeID{2, 3}
	nm := NewNetem(2, NetemParams{Seed: 1})

	nm.SetSlowNet(0, 300*time.Microsecond)
	if v := nm.judgeSend(1, proto.BroadcastID, 0, peers); v.drop || v.delay < 300*time.Microsecond {
		t.Fatalf("slow-net verdict %+v, want delay >= 300µs", v)
	}
	if v := nm.judgeSend(1, proto.BroadcastID, 1, peers); v.delay != 0 {
		t.Fatalf("slow-net leaked onto network 1: %+v", v)
	}
	nm.SetSlowNet(0, 0)
	if v := nm.judgeSend(1, proto.BroadcastID, 0, peers); v.delay != 0 {
		t.Fatalf("cleared slow-net still delaying: %+v", v)
	}

	nm.SetDupStorm(0, 1)
	if v := nm.judgeSend(1, proto.BroadcastID, 0, peers); !v.dup {
		t.Fatal("dup-storm p=1 did not duplicate")
	}
	nm.SetDupStorm(0, 0)

	// Congestion p=1: an idle network may pass traffic (the load factor
	// starts near zero) but a burst must drop most of it.
	nm.SetCongestion(0, 1)
	drops := 0
	for i := 0; i < 100; i++ {
		if v := nm.judgeSend(1, proto.BroadcastID, 0, peers); v.drop {
			drops++
		}
	}
	if drops < 50 {
		t.Fatalf("congestion p=1 dropped only %d/100 of a burst", drops)
	}
	nm.SetCongestion(0, 0)
	if v := nm.judgeSend(1, proto.BroadcastID, 0, peers); v.drop {
		t.Fatal("cleared congestion still dropping")
	}
}

// TestLiveClockSkew runs the conformance program for every replication
// style with every node's protocol timers skewed by a seeded ±10%: real
// deployments never have matched clocks, and this much drift must stay
// inside the monitors' tolerance — zero violations.
func TestLiveClockSkew(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock harness")
	}
	for _, style := range []proto.ReplicationStyle{
		proto.ReplicationActive, proto.ReplicationPassive, proto.ReplicationActivePassive,
	} {
		style := style
		t.Run(style.String(), func(t *testing.T) {
			res, err := Execute(liveProgram(7, style), Options{Transport: "mem", TimeScale: 0.3, ClockSkew: 0.1})
			if err != nil {
				t.Fatal(err)
			}
			if res.Violation != nil {
				t.Fatalf("violation under ±10%% skew: %s\ntrace tail:\n%s", res.Violation, tail(res.TraceTail))
			}
			if res.Delivered == 0 {
				t.Fatal("run delivered nothing")
			}
		})
	}
}

// TestLiveCorruptRecovery scrambles one real node's SRP token filter
// mid-run — on real timers, real goroutines — and requires the stack to
// re-converge and deliver within the recovery budget, with a slow network
// in the mix for company.
func TestLiveCorruptRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock harness")
	}
	p := liveProgram(17, proto.ReplicationActive)
	p.Ops = append(p.Ops,
		torture.Op{Kind: torture.OpSlowNet, At: 200 * time.Millisecond, Dur: time.Second, Net: 1, Lat: time.Millisecond},
		torture.Op{Kind: torture.OpCorrupt, At: 900 * time.Millisecond, Dur: time.Millisecond, Node: 2, Sub: "ring-seq"},
	)
	res, err := Execute(p, Options{Transport: "mem", TimeScale: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("violation: %s\ntrace tail:\n%s", res.Violation, tail(res.TraceTail))
	}
	if res.Delivered == 0 {
		t.Fatal("run delivered nothing")
	}
}
