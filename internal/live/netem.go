// Package live is the in-process conformance harness for the real stack:
// it boots N genuine totem.Nodes on the goroutine runtime — over loopback
// UDP or the in-memory transport — drives them with seeded load through a
// netem-style impairment layer, and checks every run with the same
// torture invariants the virtual-time simulator uses. What the simulator
// cannot exercise, this harness does: real wall-clock timers, real
// goroutine scheduling, real sockets, and the races between them. See
// DESIGN.md §11.
package live

import (
	"math/rand"
	"sync"
	"time"

	"github.com/totem-rrp/totem/internal/metrics"
	"github.com/totem-rrp/totem/internal/proto"
	"github.com/totem-rrp/totem/internal/transport"
	"github.com/totem-rrp/totem/internal/wire"
)

// NetemParams is the baseline impairment applied to every datagram on
// every network for the whole run — the "noisy lab network" under the
// scheduled faults. All probabilities are per datagram.
type NetemParams struct {
	// Loss drops a datagram outright.
	Loss float64
	// Dup sends a datagram twice.
	Dup float64
	// DelayProb holds a datagram back for a random time in
	// [DelayMin, DelayMax] — later traffic overtakes it, which is how the
	// layer produces reordering.
	DelayProb float64
	DelayMin  time.Duration
	DelayMax  time.Duration
	// Seed fixes the impairment RNG; same seed, same drop/dup/delay draws
	// per draw sequence (the interleaving is still real-time).
	Seed int64
}

// DefaultNetemParams is a gentle but real impairment mix: enough to force
// retransmission, reordering and duplicate-suppression paths without
// making runs flaky.
func DefaultNetemParams(seed int64) NetemParams {
	return NetemParams{
		Loss:      0.02,
		Dup:       0.01,
		DelayProb: 0.05,
		DelayMin:  200 * time.Microsecond,
		DelayMax:  2 * time.Millisecond,
		Seed:      seed,
	}
}

// Netem is the shared impairment state for one cluster: the baseline
// params plus the scheduled fault flags, mirroring the simulator's fault
// API (SetLoss, KillNetwork, Partition, BlockSend, BlockRecv) so a
// torture.Program maps onto it one to one. Every node's Impaired wrapper
// consults it on each send and receive.
type Netem struct {
	networks int

	mu        sync.Mutex
	rng       *rand.Rand
	p         NetemParams
	down      []bool
	loss      []float64
	part      []map[proto.NodeID]int // nil = no partition on that network
	blockSend map[proto.NodeID][]bool
	blockRecv map[proto.NodeID][]bool

	// Gray faults (DESIGN.md §12). blockPair holds directed from->to
	// blocks per network; congest/dupProb are scheduled per-network
	// probabilities; slowLat, when non-zero, is a forced floor on every
	// datagram's delay (latency inflation, not loss).
	blockPair map[[2]proto.NodeID][]bool
	congest   []float64
	dupProb   []float64
	slowLat   []time.Duration

	// Shard faults: a multi-ring cluster's shards share every physical
	// network, so per-shard faults are keyed off the wire shard tag rather
	// than a network index. blockShard silences one node's interface to
	// one shard (both directions); shardLoss drops one shard's frames
	// cluster-wide with the given probability.
	blockShard map[proto.NodeID]map[int]bool
	shardLoss  map[int]float64
	// congMark/congCount implement the load correlation for congestion
	// loss: sends inside one congestionWindow of each other count as
	// offered load, and the drop probability scales with that count.
	congMark  []time.Time
	congCount []int
}

// congestionWindow is the burst window for congestion-correlated loss: the
// more datagrams a network carried within the current window, the likelier
// the next one drops. congestionFull is the count at which the scheduled
// probability applies in full.
const (
	congestionWindow = 2 * time.Millisecond
	congestionFull   = 8
)

// NewNetem creates the impairment state for n networks.
func NewNetem(n int, p NetemParams) *Netem {
	return &Netem{
		networks:  n,
		rng:       rand.New(rand.NewSource(p.Seed)),
		p:         p,
		down:      make([]bool, n),
		loss:      make([]float64, n),
		part:      make([]map[proto.NodeID]int, n),
		blockSend: make(map[proto.NodeID][]bool),
		blockRecv: make(map[proto.NodeID][]bool),
		blockPair: make(map[[2]proto.NodeID][]bool),
		congest:   make([]float64, n),
		dupProb:   make([]float64, n),
		slowLat:   make([]time.Duration, n),
		congMark:  make([]time.Time, n),
		congCount: make([]int, n),

		blockShard: make(map[proto.NodeID]map[int]bool),
		shardLoss:  make(map[int]float64),
	}
}

// BlockShard silences node id's interface to shard sh in both directions
// (its frames drop on send and on receive). The other shards of the same
// node — and this shard on every other node — are untouched: the
// one-shard-dark gray fault a multi-ring deployment must survive without
// stalling the healthy rings.
func (nm *Netem) BlockShard(id proto.NodeID, sh int, blocked bool) {
	nm.mu.Lock()
	defer nm.mu.Unlock()
	m := nm.blockShard[id]
	if m == nil {
		if !blocked {
			return
		}
		m = make(map[int]bool)
		nm.blockShard[id] = m
	}
	if blocked {
		m[sh] = true
	} else {
		delete(m, sh)
	}
}

// SetShardLoss drops shard sh's frames cluster-wide with probability p on
// every send — a whole-ring brownout for one shard while its siblings on
// the same wires stay clean. 0 heals.
func (nm *Netem) SetShardLoss(sh int, p float64) {
	nm.mu.Lock()
	defer nm.mu.Unlock()
	if p <= 0 {
		delete(nm.shardLoss, sh)
	} else {
		nm.shardLoss[sh] = p
	}
}

// dropShardSend judges one outbound frame against the shard faults.
func (nm *Netem) dropShardSend(from proto.NodeID, sh int) bool {
	nm.mu.Lock()
	defer nm.mu.Unlock()
	if m := nm.blockShard[from]; m != nil && m[sh] {
		return true
	}
	if p := nm.shardLoss[sh]; p > 0 && nm.rng.Float64() < p {
		return true
	}
	return false
}

// dropShardRecv judges one inbound frame against the shard faults.
func (nm *Netem) dropShardRecv(id proto.NodeID, sh int) bool {
	nm.mu.Lock()
	defer nm.mu.Unlock()
	m := nm.blockShard[id]
	return m != nil && m[sh]
}

// shardFaultsActive reports whether any shard fault is scheduled, letting
// the hot path skip the per-frame shard peek entirely on unsharded (or
// unfaulted) clusters.
func (nm *Netem) shardFaultsActive() bool {
	nm.mu.Lock()
	defer nm.mu.Unlock()
	if len(nm.shardLoss) > 0 {
		return true
	}
	for _, m := range nm.blockShard {
		if len(m) > 0 {
			return true
		}
	}
	return false
}

// SetLoss sets network i's scheduled loss probability (on top of the
// baseline).
func (nm *Netem) SetLoss(i int, p float64) {
	nm.mu.Lock()
	defer nm.mu.Unlock()
	if i >= 0 && i < nm.networks {
		nm.loss[i] = p
	}
}

// KillNetwork silences network i in both directions for all nodes.
func (nm *Netem) KillNetwork(i int) { nm.setDown(i, true) }

// ReviveNetwork restores network i.
func (nm *Netem) ReviveNetwork(i int) { nm.setDown(i, false) }

func (nm *Netem) setDown(i int, v bool) {
	nm.mu.Lock()
	defer nm.mu.Unlock()
	if i >= 0 && i < nm.networks {
		nm.down[i] = v
	}
}

// Partition splits network i by group: traffic only flows between nodes
// in the same group. nil heals the partition.
func (nm *Netem) Partition(i int, groups map[proto.NodeID]int) {
	nm.mu.Lock()
	defer nm.mu.Unlock()
	if i >= 0 && i < nm.networks {
		nm.part[i] = groups
	}
}

// BlockSend stops id from sending on network i (paper §3 interface fault).
func (nm *Netem) BlockSend(id proto.NodeID, i int, blocked bool) {
	nm.mu.Lock()
	defer nm.mu.Unlock()
	nm.setBlock(nm.blockSend, id, i, blocked)
}

// BlockRecv stops id from receiving on network i.
func (nm *Netem) BlockRecv(id proto.NodeID, i int, blocked bool) {
	nm.mu.Lock()
	defer nm.mu.Unlock()
	nm.setBlock(nm.blockRecv, id, i, blocked)
}

func (nm *Netem) setBlock(m map[proto.NodeID][]bool, id proto.NodeID, i int, v bool) {
	if i < 0 || i >= nm.networks {
		return
	}
	b := m[id]
	if b == nil {
		b = make([]bool, nm.networks)
		m[id] = b
	}
	b[i] = v
}

// BlockPair blocks (or unblocks) the directed from->to path on network i.
// Only that direction is affected: to->from traffic still flows — the
// unidirectional-link gray fault (DESIGN.md §12).
func (nm *Netem) BlockPair(i int, from, to proto.NodeID, blocked bool) {
	nm.mu.Lock()
	defer nm.mu.Unlock()
	if i < 0 || i >= nm.networks {
		return
	}
	key := [2]proto.NodeID{from, to}
	b := nm.blockPair[key]
	if b == nil {
		if !blocked {
			return
		}
		b = make([]bool, nm.networks)
		nm.blockPair[key] = b
	}
	b[i] = blocked
	if !blocked {
		for _, set := range b {
			if set {
				return
			}
		}
		delete(nm.blockPair, key)
	}
}

// SetCongestion sets network i's congestion-correlated loss probability:
// the scheduled p applies in full only under burst load (see
// congestionWindow), so a quiet network stays clean while token storms and
// retransmit bursts suffer.
func (nm *Netem) SetCongestion(i int, p float64) {
	nm.mu.Lock()
	defer nm.mu.Unlock()
	if i >= 0 && i < nm.networks {
		nm.congest[i] = p
		nm.congCount[i] = 0
	}
}

// SetDupStorm sets network i's scheduled duplication probability (on top
// of the baseline dup rate).
func (nm *Netem) SetDupStorm(i int, p float64) {
	nm.mu.Lock()
	defer nm.mu.Unlock()
	if i >= 0 && i < nm.networks {
		nm.dupProb[i] = p
	}
}

// SetSlowNet forces a minimum per-datagram delay on network i — latency
// inflation with zero loss, the merely-slow half of the slow-vs-dead
// discrimination. 0 restores normal latency.
func (nm *Netem) SetSlowNet(i int, lat time.Duration) {
	nm.mu.Lock()
	defer nm.mu.Unlock()
	if i >= 0 && i < nm.networks {
		nm.slowLat[i] = lat
	}
}

// HealAll clears every scheduled fault (the unconditional end-of-window
// repair); the baseline impairment stays on.
func (nm *Netem) HealAll() {
	nm.mu.Lock()
	defer nm.mu.Unlock()
	for i := range nm.down {
		nm.down[i] = false
		nm.loss[i] = 0
		nm.part[i] = nil
		nm.congest[i] = 0
		nm.dupProb[i] = 0
		nm.slowLat[i] = 0
	}
	for _, b := range nm.blockSend {
		for i := range b {
			b[i] = false
		}
	}
	for _, b := range nm.blockRecv {
		for i := range b {
			b[i] = false
		}
	}
	nm.blockPair = make(map[[2]proto.NodeID][]bool)
	nm.blockShard = make(map[proto.NodeID]map[int]bool)
	nm.shardLoss = make(map[int]float64)
}

// sendVerdict is one send's fate, decided under the Netem lock so the RNG
// draw sequence is serialised.
type sendVerdict struct {
	drop  bool
	dup   bool
	delay time.Duration // 0 = send now
	// expand lists the unicast destinations replacing a broadcast while a
	// partition is active (sender-side expansion: receivers cannot filter
	// by sender, datagrams carry no sender address at this layer).
	expand []proto.NodeID
}

// pathAllowed is the direction-aware drop decision: it reports whether a
// datagram from `from` may reach `dest` on network `net`, consulting the
// partition map and the directed pair blocks. Every path fault funnels
// through here — once per (from, dest) pair, never once per send — so a
// one-way block stays one-way and a partition is judged on both endpoints,
// not just the sender's side. Caller holds nm.mu.
func (nm *Netem) pathAllowed(from, dest proto.NodeID, net int) bool {
	if groups := nm.part[net]; groups != nil && groups[from] != groups[dest] {
		return false
	}
	if b := nm.blockPair[[2]proto.NodeID{from, dest}]; b != nil && b[net] {
		return false
	}
	return true
}

// pathFiltered reports whether network net has any per-pair path faults
// that force broadcast expansion. Caller holds nm.mu.
func (nm *Netem) pathFiltered(net int) bool {
	if nm.part[net] != nil {
		return true
	}
	for _, b := range nm.blockPair {
		if b[net] {
			return true
		}
	}
	return false
}

// judgeSend decides what happens to one datagram from node `from` to
// `dest` on network `net`.
func (nm *Netem) judgeSend(from, dest proto.NodeID, net int, peers []proto.NodeID) sendVerdict {
	nm.mu.Lock()
	defer nm.mu.Unlock()
	if net < 0 || net >= nm.networks {
		return sendVerdict{drop: true}
	}
	if nm.down[net] {
		return sendVerdict{drop: true}
	}
	if b := nm.blockSend[from]; b != nil && b[net] {
		return sendVerdict{drop: true}
	}
	if p := nm.loss[net]; p > 0 && nm.rng.Float64() < p {
		return sendVerdict{drop: true}
	}
	if nm.p.Loss > 0 && nm.rng.Float64() < nm.p.Loss {
		return sendVerdict{drop: true}
	}
	if p := nm.congest[net]; p > 0 {
		now := time.Now()
		if now.Sub(nm.congMark[net]) > congestionWindow {
			nm.congMark[net] = now
			nm.congCount[net] = 0
		}
		nm.congCount[net]++
		factor := float64(nm.congCount[net]) / congestionFull
		if factor > 1 {
			factor = 1
		}
		if nm.rng.Float64() < p*factor {
			return sendVerdict{drop: true}
		}
	}
	var v sendVerdict
	if nm.pathFiltered(net) {
		if dest == proto.BroadcastID {
			for _, p := range peers {
				if nm.pathAllowed(from, p, net) {
					v.expand = append(v.expand, p)
				}
			}
			if len(v.expand) == 0 {
				return sendVerdict{drop: true}
			}
		} else if !nm.pathAllowed(from, dest, net) {
			return sendVerdict{drop: true}
		}
	}
	if nm.p.Dup > 0 && nm.rng.Float64() < nm.p.Dup {
		v.dup = true
	}
	if p := nm.dupProb[net]; p > 0 && nm.rng.Float64() < p {
		v.dup = true
	}
	if nm.p.DelayProb > 0 && nm.rng.Float64() < nm.p.DelayProb {
		span := nm.p.DelayMax - nm.p.DelayMin
		v.delay = nm.p.DelayMin
		if span > 0 {
			v.delay += time.Duration(nm.rng.Int63n(int64(span)))
		}
	}
	if lat := nm.slowLat[net]; lat > 0 && v.delay < lat {
		v.delay = lat
	}
	return v
}

// dropRecv reports whether node id must discard a datagram received on
// network net (receive-side faults: blocked interface or dead network).
func (nm *Netem) dropRecv(id proto.NodeID, net int) bool {
	nm.mu.Lock()
	defer nm.mu.Unlock()
	if net < 0 || net >= nm.networks {
		return true
	}
	if nm.down[net] {
		return true
	}
	b := nm.blockRecv[id]
	return b != nil && b[net]
}

// Impaired wraps one node's Transport with the cluster's Netem: sends are
// dropped, duplicated, delayed or partition-filtered on the way into the
// inner transport, and receives are filtered against the receive-side
// faults. It satisfies transport.Transport, so a real totem.Node runs on
// it unchanged.
type Impaired struct {
	inner transport.Transport
	id    proto.NodeID
	// peers lists every other node, for sender-side broadcast expansion
	// under a partition.
	peers []proto.NodeID
	nm    *Netem

	// sendMu serialises inner.Send between the runtime's loop goroutine
	// and delayed-send timers (the inner Send contract is
	// single-goroutine).
	sendMu sync.Mutex

	rx        chan transport.Packet
	closeOnce sync.Once
	closed    chan struct{}
}

var _ transport.Transport = (*Impaired)(nil)

// Impair wraps inner for node id. peers must list every other node in
// the cluster.
func Impair(inner transport.Transport, id proto.NodeID, peers []proto.NodeID, nm *Netem) *Impaired {
	t := &Impaired{
		inner:  inner,
		id:     id,
		peers:  peers,
		nm:     nm,
		rx:     make(chan transport.Packet, 1024),
		closed: make(chan struct{}),
	}
	go t.pump()
	return t
}

// Networks implements transport.Transport.
func (t *Impaired) Networks() int { return t.inner.Networks() }

// Send implements transport.Transport, applying the impairment verdict.
// Impairment drops report success, like a lossy wire.
func (t *Impaired) Send(network int, dest proto.NodeID, data []byte) error {
	if t.nm.shardFaultsActive() {
		if sh, _, err := wire.PeekShard(data); err == nil && t.nm.dropShardSend(t.id, sh) {
			return nil
		}
	}
	v := t.nm.judgeSend(t.id, dest, network, t.peers)
	if v.drop {
		return nil
	}
	if v.delay > 0 {
		// The caller may recycle data as soon as Send returns, so a
		// delayed datagram needs its own copy.
		var cp []byte
		if len(data) <= wire.FrameCap {
			cp = append(wire.GetFrame(), data...)
		} else {
			cp = append([]byte(nil), data...)
		}
		time.AfterFunc(v.delay, func() {
			select {
			case <-t.closed:
			default:
				t.deliver(network, dest, cp, v)
			}
			wire.PutFrame(cp)
		})
		return nil
	}
	t.deliver(network, dest, data, v)
	return nil
}

// deliver pushes one (possibly duplicated, possibly partition-expanded)
// datagram into the inner transport.
func (t *Impaired) deliver(network int, dest proto.NodeID, data []byte, v sendVerdict) {
	t.sendMu.Lock()
	defer t.sendMu.Unlock()
	n := 1
	if v.dup {
		n = 2
	}
	for i := 0; i < n; i++ {
		if v.expand != nil {
			for _, p := range v.expand {
				t.inner.Send(network, p, data) //nolint:errcheck
			}
		} else {
			t.inner.Send(network, dest, data) //nolint:errcheck
		}
	}
}

// pump filters the inner receive stream against receive-side faults.
func (t *Impaired) pump() {
	defer close(t.rx)
	for pkt := range t.inner.Packets() {
		if t.nm.dropRecv(t.id, pkt.Network) {
			wire.ReleaseFrame(pkt.Data)
			continue
		}
		if t.nm.shardFaultsActive() {
			if sh, _, err := wire.PeekShard(pkt.Data); err == nil && t.nm.dropShardRecv(t.id, sh) {
				wire.PutFrame(pkt.Data)
				continue
			}
		}
		select {
		case t.rx <- pkt:
		case <-t.closed:
			wire.ReleaseFrame(pkt.Data)
			// Keep draining so the inner transport can shut down.
		}
	}
}

// Packets implements transport.Transport.
func (t *Impaired) Packets() <-chan transport.Packet { return t.rx }

// Flush implements transport.BatchSender by forwarding to the inner
// transport, so the runtime's per-action-batch flush reaches the batched
// UDP wire path through the impairment layer. Datagrams a netem delay is
// still holding are not affected — they enter the inner transport later
// and ride its deadline backstop, exactly like late traffic from a real
// switch.
func (t *Impaired) Flush() {
	if bs, ok := t.inner.(transport.BatchSender); ok {
		bs.Flush()
	}
}

// RegisterMetrics implements transport.MetricSource by forwarding, so a
// live node's registry carries the inner transport's wire counters
// (udp.netI.*) — the live Figure 6 bench reads its syscall counts there.
func (t *Impaired) RegisterMetrics(reg *metrics.Registry) {
	if ms, ok := t.inner.(transport.MetricSource); ok {
		ms.RegisterMetrics(reg)
	}
}

// Close implements transport.Transport, closing the inner transport too
// (the harness owns both).
func (t *Impaired) Close() error {
	var err error
	t.closeOnce.Do(func() {
		close(t.closed)
		err = t.inner.Close()
	})
	return err
}
