// Package live is the in-process conformance harness for the real stack:
// it boots N genuine totem.Nodes on the goroutine runtime — over loopback
// UDP or the in-memory transport — drives them with seeded load through a
// netem-style impairment layer, and checks every run with the same
// torture invariants the virtual-time simulator uses. What the simulator
// cannot exercise, this harness does: real wall-clock timers, real
// goroutine scheduling, real sockets, and the races between them. See
// DESIGN.md §11.
package live

import (
	"math/rand"
	"sync"
	"time"

	"github.com/totem-rrp/totem/internal/proto"
	"github.com/totem-rrp/totem/internal/transport"
	"github.com/totem-rrp/totem/internal/wire"
)

// NetemParams is the baseline impairment applied to every datagram on
// every network for the whole run — the "noisy lab network" under the
// scheduled faults. All probabilities are per datagram.
type NetemParams struct {
	// Loss drops a datagram outright.
	Loss float64
	// Dup sends a datagram twice.
	Dup float64
	// DelayProb holds a datagram back for a random time in
	// [DelayMin, DelayMax] — later traffic overtakes it, which is how the
	// layer produces reordering.
	DelayProb float64
	DelayMin  time.Duration
	DelayMax  time.Duration
	// Seed fixes the impairment RNG; same seed, same drop/dup/delay draws
	// per draw sequence (the interleaving is still real-time).
	Seed int64
}

// DefaultNetemParams is a gentle but real impairment mix: enough to force
// retransmission, reordering and duplicate-suppression paths without
// making runs flaky.
func DefaultNetemParams(seed int64) NetemParams {
	return NetemParams{
		Loss:      0.02,
		Dup:       0.01,
		DelayProb: 0.05,
		DelayMin:  200 * time.Microsecond,
		DelayMax:  2 * time.Millisecond,
		Seed:      seed,
	}
}

// Netem is the shared impairment state for one cluster: the baseline
// params plus the scheduled fault flags, mirroring the simulator's fault
// API (SetLoss, KillNetwork, Partition, BlockSend, BlockRecv) so a
// torture.Program maps onto it one to one. Every node's Impaired wrapper
// consults it on each send and receive.
type Netem struct {
	networks int

	mu        sync.Mutex
	rng       *rand.Rand
	p         NetemParams
	down      []bool
	loss      []float64
	part      []map[proto.NodeID]int // nil = no partition on that network
	blockSend map[proto.NodeID][]bool
	blockRecv map[proto.NodeID][]bool
}

// NewNetem creates the impairment state for n networks.
func NewNetem(n int, p NetemParams) *Netem {
	return &Netem{
		networks:  n,
		rng:       rand.New(rand.NewSource(p.Seed)),
		p:         p,
		down:      make([]bool, n),
		loss:      make([]float64, n),
		part:      make([]map[proto.NodeID]int, n),
		blockSend: make(map[proto.NodeID][]bool),
		blockRecv: make(map[proto.NodeID][]bool),
	}
}

// SetLoss sets network i's scheduled loss probability (on top of the
// baseline).
func (nm *Netem) SetLoss(i int, p float64) {
	nm.mu.Lock()
	defer nm.mu.Unlock()
	if i >= 0 && i < nm.networks {
		nm.loss[i] = p
	}
}

// KillNetwork silences network i in both directions for all nodes.
func (nm *Netem) KillNetwork(i int) { nm.setDown(i, true) }

// ReviveNetwork restores network i.
func (nm *Netem) ReviveNetwork(i int) { nm.setDown(i, false) }

func (nm *Netem) setDown(i int, v bool) {
	nm.mu.Lock()
	defer nm.mu.Unlock()
	if i >= 0 && i < nm.networks {
		nm.down[i] = v
	}
}

// Partition splits network i by group: traffic only flows between nodes
// in the same group. nil heals the partition.
func (nm *Netem) Partition(i int, groups map[proto.NodeID]int) {
	nm.mu.Lock()
	defer nm.mu.Unlock()
	if i >= 0 && i < nm.networks {
		nm.part[i] = groups
	}
}

// BlockSend stops id from sending on network i (paper §3 interface fault).
func (nm *Netem) BlockSend(id proto.NodeID, i int, blocked bool) {
	nm.mu.Lock()
	defer nm.mu.Unlock()
	nm.setBlock(nm.blockSend, id, i, blocked)
}

// BlockRecv stops id from receiving on network i.
func (nm *Netem) BlockRecv(id proto.NodeID, i int, blocked bool) {
	nm.mu.Lock()
	defer nm.mu.Unlock()
	nm.setBlock(nm.blockRecv, id, i, blocked)
}

func (nm *Netem) setBlock(m map[proto.NodeID][]bool, id proto.NodeID, i int, v bool) {
	if i < 0 || i >= nm.networks {
		return
	}
	b := m[id]
	if b == nil {
		b = make([]bool, nm.networks)
		m[id] = b
	}
	b[i] = v
}

// HealAll clears every scheduled fault (the unconditional end-of-window
// repair); the baseline impairment stays on.
func (nm *Netem) HealAll() {
	nm.mu.Lock()
	defer nm.mu.Unlock()
	for i := range nm.down {
		nm.down[i] = false
		nm.loss[i] = 0
		nm.part[i] = nil
	}
	for _, b := range nm.blockSend {
		for i := range b {
			b[i] = false
		}
	}
	for _, b := range nm.blockRecv {
		for i := range b {
			b[i] = false
		}
	}
}

// sendVerdict is one send's fate, decided under the Netem lock so the RNG
// draw sequence is serialised.
type sendVerdict struct {
	drop  bool
	dup   bool
	delay time.Duration // 0 = send now
	// expand lists the unicast destinations replacing a broadcast while a
	// partition is active (sender-side expansion: receivers cannot filter
	// by sender, datagrams carry no sender address at this layer).
	expand []proto.NodeID
}

// judgeSend decides what happens to one datagram from node `from` to
// `dest` on network `net`.
func (nm *Netem) judgeSend(from, dest proto.NodeID, net int, peers []proto.NodeID) sendVerdict {
	nm.mu.Lock()
	defer nm.mu.Unlock()
	if net < 0 || net >= nm.networks {
		return sendVerdict{drop: true}
	}
	if nm.down[net] {
		return sendVerdict{drop: true}
	}
	if b := nm.blockSend[from]; b != nil && b[net] {
		return sendVerdict{drop: true}
	}
	if p := nm.loss[net]; p > 0 && nm.rng.Float64() < p {
		return sendVerdict{drop: true}
	}
	if nm.p.Loss > 0 && nm.rng.Float64() < nm.p.Loss {
		return sendVerdict{drop: true}
	}
	var v sendVerdict
	if groups := nm.part[net]; groups != nil {
		g := groups[from]
		if dest == proto.BroadcastID {
			for _, p := range peers {
				if groups[p] == g {
					v.expand = append(v.expand, p)
				}
			}
			if len(v.expand) == 0 {
				return sendVerdict{drop: true}
			}
		} else if groups[dest] != g {
			return sendVerdict{drop: true}
		}
	}
	if nm.p.Dup > 0 && nm.rng.Float64() < nm.p.Dup {
		v.dup = true
	}
	if nm.p.DelayProb > 0 && nm.rng.Float64() < nm.p.DelayProb {
		span := nm.p.DelayMax - nm.p.DelayMin
		v.delay = nm.p.DelayMin
		if span > 0 {
			v.delay += time.Duration(nm.rng.Int63n(int64(span)))
		}
	}
	return v
}

// dropRecv reports whether node id must discard a datagram received on
// network net (receive-side faults: blocked interface or dead network).
func (nm *Netem) dropRecv(id proto.NodeID, net int) bool {
	nm.mu.Lock()
	defer nm.mu.Unlock()
	if net < 0 || net >= nm.networks {
		return true
	}
	if nm.down[net] {
		return true
	}
	b := nm.blockRecv[id]
	return b != nil && b[net]
}

// Impaired wraps one node's Transport with the cluster's Netem: sends are
// dropped, duplicated, delayed or partition-filtered on the way into the
// inner transport, and receives are filtered against the receive-side
// faults. It satisfies transport.Transport, so a real totem.Node runs on
// it unchanged.
type Impaired struct {
	inner transport.Transport
	id    proto.NodeID
	// peers lists every other node, for sender-side broadcast expansion
	// under a partition.
	peers []proto.NodeID
	nm    *Netem

	// sendMu serialises inner.Send between the runtime's loop goroutine
	// and delayed-send timers (the inner Send contract is
	// single-goroutine).
	sendMu sync.Mutex

	rx        chan transport.Packet
	closeOnce sync.Once
	closed    chan struct{}
}

var _ transport.Transport = (*Impaired)(nil)

// Impair wraps inner for node id. peers must list every other node in
// the cluster.
func Impair(inner transport.Transport, id proto.NodeID, peers []proto.NodeID, nm *Netem) *Impaired {
	t := &Impaired{
		inner:  inner,
		id:     id,
		peers:  peers,
		nm:     nm,
		rx:     make(chan transport.Packet, 1024),
		closed: make(chan struct{}),
	}
	go t.pump()
	return t
}

// Networks implements transport.Transport.
func (t *Impaired) Networks() int { return t.inner.Networks() }

// Send implements transport.Transport, applying the impairment verdict.
// Impairment drops report success, like a lossy wire.
func (t *Impaired) Send(network int, dest proto.NodeID, data []byte) error {
	v := t.nm.judgeSend(t.id, dest, network, t.peers)
	if v.drop {
		return nil
	}
	if v.delay > 0 {
		// The caller may recycle data as soon as Send returns, so a
		// delayed datagram needs its own copy.
		var cp []byte
		if len(data) <= wire.FrameCap {
			cp = append(wire.GetFrame(), data...)
		} else {
			cp = append([]byte(nil), data...)
		}
		time.AfterFunc(v.delay, func() {
			select {
			case <-t.closed:
			default:
				t.deliver(network, dest, cp, v)
			}
			wire.PutFrame(cp)
		})
		return nil
	}
	t.deliver(network, dest, data, v)
	return nil
}

// deliver pushes one (possibly duplicated, possibly partition-expanded)
// datagram into the inner transport.
func (t *Impaired) deliver(network int, dest proto.NodeID, data []byte, v sendVerdict) {
	t.sendMu.Lock()
	defer t.sendMu.Unlock()
	n := 1
	if v.dup {
		n = 2
	}
	for i := 0; i < n; i++ {
		if v.expand != nil {
			for _, p := range v.expand {
				t.inner.Send(network, p, data) //nolint:errcheck
			}
		} else {
			t.inner.Send(network, dest, data) //nolint:errcheck
		}
	}
}

// pump filters the inner receive stream against receive-side faults.
func (t *Impaired) pump() {
	defer close(t.rx)
	for pkt := range t.inner.Packets() {
		if t.nm.dropRecv(t.id, pkt.Network) {
			wire.ReleaseFrame(pkt.Data)
			continue
		}
		select {
		case t.rx <- pkt:
		case <-t.closed:
			wire.ReleaseFrame(pkt.Data)
			// Keep draining so the inner transport can shut down.
		}
	}
}

// Packets implements transport.Transport.
func (t *Impaired) Packets() <-chan transport.Packet { return t.rx }

// Close implements transport.Transport, closing the inner transport too
// (the harness owns both).
func (t *Impaired) Close() error {
	var err error
	t.closeOnce.Do(func() {
		close(t.closed)
		err = t.inner.Close()
	})
	return err
}
