package live

import (
	"sync/atomic"
	"testing"
	"time"

	"github.com/totem-rrp/totem/internal/proto"
	"github.com/totem-rrp/totem/internal/transport"
	"github.com/totem-rrp/totem/internal/wire"
)

// TestShardTortureMem is the live multi-ring conformance smoke: a seeded
// per-shard fault program over the mem transport must finish with zero
// invariant violations, and faulting one shard must not stall the rest.
func TestShardTortureMem(t *testing.T) {
	if testing.Short() {
		t.Skip("live shard torture in -short mode")
	}
	res, err := ShardTorture(ShardTortureOptions{
		Nodes:        3,
		Networks:     2,
		Shards:       4,
		Seed:         11,
		FaultWindows: 2,
		Window:       250 * time.Millisecond,
		Heal:         150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
	if res.Delivered == 0 {
		t.Fatal("no deliveries")
	}
}

// TestShardTortureCrossOrder runs the same program with the merge on.
func TestShardTortureCrossOrder(t *testing.T) {
	if testing.Short() {
		t.Skip("live shard torture in -short mode")
	}
	res, err := ShardTorture(ShardTortureOptions{
		Nodes:        3,
		Networks:     2,
		Shards:       3,
		Seed:         23,
		FaultWindows: 2,
		Window:       250 * time.Millisecond,
		Heal:         150 * time.Millisecond,
		CrossOrder:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
	if res.Delivered == 0 {
		t.Fatal("no deliveries")
	}
}

// countingTransport counts sends and discards them.
type countingTransport struct {
	networks int
	n        atomic.Int64
	rx       chan transport.Packet
}

func newCountingTransport(networks int) *countingTransport {
	return &countingTransport{networks: networks, rx: make(chan transport.Packet)}
}

func (c *countingTransport) Networks() int { return c.networks }
func (c *countingTransport) Send(network int, dest proto.NodeID, data []byte) error {
	c.n.Add(1)
	return nil
}
func (c *countingTransport) Packets() <-chan transport.Packet { return c.rx }
func (c *countingTransport) Close() error                     { close(c.rx); return nil }
func (c *countingTransport) sent() int64                      { return c.n.Load() }

func encodeTestToken(t *testing.T) []byte {
	t.Helper()
	tok := &wire.Token{Ring: proto.RingID{Rep: 1, Epoch: 1}, Seq: 1}
	frame, err := tok.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return frame
}

// TestNetemShardFaults covers the shard fault judgments in isolation.
func TestNetemShardFaults(t *testing.T) {
	nm := NewNetem(2, NetemParams{Seed: 1})
	if nm.shardFaultsActive() {
		t.Fatal("fresh netem reports active shard faults")
	}
	nm.BlockShard(2, 3, true)
	if !nm.shardFaultsActive() {
		t.Fatal("BlockShard did not arm the shard fault path")
	}
	if !nm.dropShardSend(2, 3) || !nm.dropShardRecv(2, 3) {
		t.Fatal("node 2 shard 3 must be dark in both directions")
	}
	if nm.dropShardSend(2, 1) || nm.dropShardSend(1, 3) || nm.dropShardRecv(1, 3) {
		t.Fatal("block leaked to another shard or node")
	}
	nm.BlockShard(2, 3, false)
	if nm.shardFaultsActive() {
		t.Fatal("unblock did not disarm")
	}

	nm.SetShardLoss(1, 1.0)
	if !nm.dropShardSend(1, 1) {
		t.Fatal("full shard loss must drop")
	}
	if nm.dropShardRecv(1, 1) {
		t.Fatal("shard loss is send-side only")
	}
	nm.HealAll()
	if nm.shardFaultsActive() {
		t.Fatal("HealAll did not clear shard faults")
	}
}

// TestImpairedPeeksShardTags: an Impaired wrapper drops exactly the
// blocked shard's tagged frames.
func TestImpairedPeeksShardTags(t *testing.T) {
	nm := NewNetem(1, NetemParams{Seed: 7})
	inner := newCountingTransport(1)
	imp := Impair(inner, 1, []proto.NodeID{2}, nm)
	defer imp.Close()

	frame := encodeTestToken(t)
	nm.BlockShard(1, 2, true)
	tagged2 := wire.WrapShard(2, frame)
	tagged1 := wire.WrapShard(1, frame)
	imp.Send(0, proto.BroadcastID, tagged2)
	imp.Send(0, proto.BroadcastID, tagged1)
	imp.Send(0, proto.BroadcastID, frame) // untagged = shard 0
	if got := inner.sent(); got != 2 {
		t.Fatalf("inner transport saw %d sends, want 2 (shard 2 blocked)", got)
	}
}
