package live

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	totem "github.com/totem-rrp/totem"
	"github.com/totem-rrp/totem/internal/logd"
	"github.com/totem-rrp/totem/internal/proto"
	"github.com/totem-rrp/totem/internal/transport"
)

// LogdCluster boots N complete logd members — ring node, durable store,
// logd server, HTTP front door — on one machine, with the same netem
// impairment layer the torture harness uses. Members can be killed
// abruptly (kill -9 style: no snapshot, no graceful handoff, epoch comes
// back from the meta file) and restarted in place: the HTTP endpoint is
// re-bound on the same port so clients fail over and back, and the
// store's persisted epoch is carried into the new incarnation's
// InitialEpoch — the stable-storage half of the live harness's
// epoch-carry restart.
type LogdCluster struct {
	opt LogdClusterOptions
	nm  *Netem
	hub *transport.MemHub

	mu      sync.Mutex
	members []*logdMember
	addrs   map[proto.NodeID][]string // udp transport: current ring listen addrs
}

// LogdClusterOptions sizes a cluster. Dir is required.
type LogdClusterOptions struct {
	// Nodes is the member count (default 4).
	Nodes int
	// Networks is the redundant-network count (default 2).
	Networks int
	// Dir is the base directory; member i persists under Dir/node-<i>.
	Dir string
	// Transport is "mem" (default) or "udp".
	Transport string
	// Netem is the baseline impairment (default: none).
	Netem NetemParams
	// Store tunes each member's store (default: 64 KiB segments,
	// snapshot every 64 records — small, so restarts exercise both).
	Store logd.StoreOptions
	// Server tunes each member's server. Peers/NodeID are filled in by
	// the cluster; AckTimeout, ColdStartTimeout etc. pass through
	// (defaults: 15s ack, 3s cold start).
	Server logd.ServerOptions
	// Logf receives member diagnostics (default: discarded).
	Logf func(format string, args ...any)
}

type logdMember struct {
	id  proto.NodeID
	dir string

	mu      sync.Mutex
	udp     *transport.UDPTransport
	imp     *Impaired
	node    *totem.Node
	store   *logd.Store
	srv     *logd.Server
	hs      *http.Server
	addr    string // stable host:port of the HTTP front door
	crashed bool
}

// NewLogdCluster boots the cluster and waits for every member to go
// live.
func NewLogdCluster(opt LogdClusterOptions) (*LogdCluster, error) {
	if opt.Nodes <= 0 {
		opt.Nodes = 4
	}
	if opt.Networks <= 0 {
		opt.Networks = 2
	}
	if opt.Dir == "" {
		return nil, fmt.Errorf("logdcluster: Dir is required")
	}
	if opt.Transport == "" {
		opt.Transport = "mem"
	}
	if opt.Store.SegmentBytes == 0 {
		opt.Store.SegmentBytes = 64 << 10
	}
	if opt.Store.SnapshotEvery == 0 {
		opt.Store.SnapshotEvery = 64
	}
	if opt.Server.AckTimeout == 0 {
		opt.Server.AckTimeout = 15 * time.Second
	}
	if opt.Server.ColdStartTimeout == 0 {
		opt.Server.ColdStartTimeout = 3 * time.Second
	}
	if opt.Logf == nil {
		opt.Logf = func(string, ...any) {}
	}

	c := &LogdCluster{
		opt:   opt,
		nm:    NewNetem(opt.Networks, opt.Netem),
		addrs: make(map[proto.NodeID][]string),
	}
	if opt.Transport == "mem" {
		c.hub = transport.NewMemHub(opt.Networks)
	}
	for i := 1; i <= opt.Nodes; i++ {
		m := &logdMember{id: proto.NodeID(i), dir: filepath.Join(opt.Dir, fmt.Sprintf("node-%d", i))}
		if err := os.MkdirAll(m.dir, 0o755); err != nil {
			c.Close()
			return nil, err
		}
		// Reserve the member's stable HTTP address up front so every
		// member can be told its peers' endpoints before any boots.
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			c.Close()
			return nil, err
		}
		m.addr = ln.Addr().String()
		ln.Close()
		c.members = append(c.members, m)
	}
	if opt.Transport == "udp" {
		for _, m := range c.members {
			t, err := c.newUDP(m.id)
			if err != nil {
				c.Close()
				return nil, err
			}
			m.udp = t
			c.addrs[m.id] = t.LocalAddrs()
		}
		for _, m := range c.members {
			for _, peer := range c.members {
				if peer.id == m.id {
					continue
				}
				if err := m.udp.AddPeer(peer.id, c.addrs[peer.id]); err != nil {
					c.Close()
					return nil, err
				}
			}
		}
	}
	for _, m := range c.members {
		if err := c.startMember(m); err != nil {
			c.Close()
			return nil, err
		}
	}
	return c, nil
}

func (c *LogdCluster) newUDP(id proto.NodeID) (*transport.UDPTransport, error) {
	listen := make([]string, c.opt.Networks)
	for i := range listen {
		listen[i] = "127.0.0.1:0"
	}
	return transport.NewUDP(transport.UDPConfig{ID: id, Listen: listen})
}

func (c *LogdCluster) peersOf(id proto.NodeID) []proto.NodeID {
	out := make([]proto.NodeID, 0, len(c.members)-1)
	for _, m := range c.members {
		if m.id != id {
			out = append(out, m.id)
		}
	}
	return out
}

// peerURLs lists every member's front door except id's.
func (c *LogdCluster) peerURLs(id proto.NodeID) []string {
	var out []string
	for _, m := range c.members {
		if m.id != id {
			out = append(out, "http://"+m.addr)
		}
	}
	return out
}

// startMember boots one member's whole stack from its on-disk state.
func (c *LogdCluster) startMember(m *logdMember) error {
	store, err := logd.OpenStore(m.dir, c.opt.Store)
	if err != nil {
		return fmt.Errorf("logdcluster: node %v store: %w", m.id, err)
	}
	var inner transport.Transport
	if c.opt.Transport == "mem" {
		t, err := c.hub.Join(m.id)
		if err != nil {
			store.Close()
			return err
		}
		inner = t
	} else {
		inner = m.udp
	}
	imp := Impair(inner, m.id, c.peersOf(m.id), c.nm)
	epoch := store.Epoch() // persisted across kill -9 by the meta file
	node, err := totem.NewNode(totem.Config{
		ID:          m.id,
		Networks:    c.opt.Networks,
		Replication: proto.ReplicationPassive,
		Tune: func(o *totem.Options) {
			liveTune(o)
			if epoch > o.SRP.InitialEpoch {
				o.SRP.InitialEpoch = epoch
			}
		},
	}, imp)
	if err != nil {
		imp.Close()
		store.Close()
		return fmt.Errorf("logdcluster: node %v: %w", m.id, err)
	}
	sopt := c.opt.Server
	sopt.NodeID = fmt.Sprintf("node-%d", m.id)
	sopt.Peers = c.peerURLs(m.id)
	logf := c.opt.Logf
	sopt.Logf = func(format string, args ...any) { logf(format, args...) }
	srv, err := logd.NewServer(node, store, sopt)
	if err != nil {
		node.Close()
		imp.Close()
		store.Close()
		return err
	}
	// Re-listen on the member's stable port so clients' endpoint lists
	// survive the restart. The previous listener was closed by Kill, but
	// give the kernel a beat to release it.
	var ln net.Listener
	for attempt := 0; ; attempt++ {
		ln, err = net.Listen("tcp", m.addr)
		if err == nil {
			break
		}
		if attempt > 100 {
			srv.Close()
			node.Close()
			imp.Close()
			store.Close()
			return fmt.Errorf("logdcluster: rebinding %s: %w", m.addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln) //nolint:errcheck

	m.mu.Lock()
	m.imp, m.node, m.store, m.srv, m.hs, m.crashed = imp, node, store, srv, hs, false
	m.mu.Unlock()
	return nil
}

// Endpoints returns every member's front-door URL, in member order. The
// list is stable across Kill/Restart.
func (c *LogdCluster) Endpoints() []string {
	out := make([]string, len(c.members))
	for i, m := range c.members {
		out[i] = "http://" + m.addr
	}
	return out
}

// Endpoint returns member i's (0-based) front-door URL.
func (c *LogdCluster) Endpoint(i int) string { return "http://" + c.members[i].addr }

// Netem returns the impairment layer, for fault injection mid-run.
func (c *LogdCluster) Netem() *Netem { return c.nm }

// Store returns member i's store; nil while the member is down.
func (c *LogdCluster) Store(i int) *logd.Store {
	m := c.members[i]
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.store
}

// Server returns member i's server; nil while the member is down.
func (c *LogdCluster) Server(i int) *logd.Server {
	m := c.members[i]
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.srv
}

// Kill fail-stops member i, kill -9 style: the HTTP listener drops, the
// ring node dies without a goodbye, and the store is abandoned with no
// final snapshot or sync — recovery gets only what Apply already fsynced
// plus the meta file's epoch.
func (c *LogdCluster) Kill(i int) {
	m := c.members[i]
	m.mu.Lock()
	if m.crashed {
		m.mu.Unlock()
		return
	}
	imp, node, store, srv, hs := m.imp, m.node, m.store, m.srv, m.hs
	m.imp, m.node, m.store, m.srv, m.hs = nil, nil, nil, nil, nil
	m.crashed = true
	m.mu.Unlock()
	if hs != nil {
		hs.Close() //nolint:errcheck
	}
	if srv != nil {
		srv.Close()
	}
	if node != nil {
		node.Close()
	}
	if imp != nil {
		imp.Close()
	}
	if store != nil {
		store.Kill()
	}
}

// Restart reboots a killed member from its on-disk state. On the UDP
// transport the ring sockets re-bind fresh ports and every peer's table
// is updated; the HTTP front door re-binds its original port.
func (c *LogdCluster) Restart(i int) error {
	m := c.members[i]
	m.mu.Lock()
	crashed := m.crashed
	m.mu.Unlock()
	if !crashed {
		return nil
	}
	if c.opt.Transport == "udp" {
		t, err := c.newUDP(m.id)
		if err != nil {
			return err
		}
		m.udp = t
		c.mu.Lock()
		c.addrs[m.id] = t.LocalAddrs()
		c.mu.Unlock()
		for _, peer := range c.members {
			if peer.id == m.id {
				continue
			}
			t.AddPeer(peer.id, c.addrs[peer.id]) //nolint:errcheck
			peer.mu.Lock()
			if !peer.crashed && peer.udp != nil {
				peer.udp.AddPeer(m.id, c.addrs[m.id]) //nolint:errcheck
			}
			peer.mu.Unlock()
		}
	}
	return c.startMember(m)
}

// WaitLive blocks until every non-crashed member's server reports live
// and its ring sees all non-crashed members.
func (c *LogdCluster) WaitLive(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		want := c.liveCount()
		ready := 0
		for _, m := range c.members {
			m.mu.Lock()
			node, srv, crashed := m.node, m.srv, m.crashed
			m.mu.Unlock()
			if crashed || node == nil || srv == nil {
				continue
			}
			if !srv.Live() || !node.Operational() {
				continue
			}
			if _, members := node.Ring(); len(members) == want {
				ready++
			}
		}
		if want > 0 && ready == want {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("logdcluster: not live after %s (%d/%d ready)", timeout, ready, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func (c *LogdCluster) liveCount() int {
	n := 0
	for _, m := range c.members {
		m.mu.Lock()
		if !m.crashed {
			n++
		}
		m.mu.Unlock()
	}
	return n
}

// WaitConverged blocks until every live member's store has the same
// tail — the whole cluster holds the identical log.
func (c *LogdCluster) WaitConverged(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		var tails []uint64
		for _, m := range c.members {
			m.mu.Lock()
			store, crashed := m.store, m.crashed
			m.mu.Unlock()
			if crashed || store == nil {
				continue
			}
			tails = append(tails, store.Next())
		}
		same := len(tails) > 0
		for _, tl := range tails {
			if tl != tails[0] {
				same = false
			}
		}
		if same {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("logdcluster: tails did not converge after %s: %v", timeout, tails)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// Close tears the whole cluster down (graceful stores: final snapshot).
func (c *LogdCluster) Close() {
	for _, m := range c.members {
		m.mu.Lock()
		imp, node, store, srv, hs := m.imp, m.node, m.store, m.srv, m.hs
		m.imp, m.node, m.store, m.srv, m.hs = nil, nil, nil, nil, nil
		m.crashed = true
		m.mu.Unlock()
		if hs != nil {
			hs.Close() //nolint:errcheck
		}
		if srv != nil {
			srv.Close()
		}
		if node != nil {
			node.Close()
		}
		if imp != nil {
			imp.Close()
		}
		if store != nil {
			store.Close()
		}
	}
}
