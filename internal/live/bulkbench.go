package live

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	totem "github.com/totem-rrp/totem"
	"github.com/totem-rrp/totem/internal/proto"
	"github.com/totem-rrp/totem/internal/transport"
)

// Bulk-lane latency benchmark: the figure_bulk experiment. One node
// saturates the ring with a multi-megabyte stream while the others probe
// it with small timestamped messages; the p99 of the probes is the
// interactive-latency cost of the bulk load. Three modes make the figure:
//
//   - BulkOff: probes only — the no-bulk latency baseline.
//   - BulkInteractive: the stream is pushed through Send as ordinary
//     messages, emulating the pre-lane protocol where bulk data and
//     interactive traffic shared one FIFO lane.
//   - BulkLane: the stream rides SendBulk on the rate-limited bulk lane.
//
// The lane earns its keep when BulkLane's probe p99 stays near BulkOff
// while BulkInteractive's blows up.

// BulkMode selects the bulk load shape of one BulkBench run.
type BulkMode string

const (
	BulkOff         BulkMode = "baseline"
	BulkInteractive BulkMode = "interactive-lane"
	BulkLane        BulkMode = "bulk-lane"
)

// BulkBenchOptions parameterises one figure_bulk point.
type BulkBenchOptions struct {
	Mode BulkMode
	// Nodes is the ring size (default 4); node 1 carries the bulk load,
	// the rest send probes.
	Nodes int
	// Networks is the redundant network count (default 2).
	Networks int
	// MsgLen is the probe payload size (default 64, min 8 for the
	// timestamp).
	MsgLen int
	// ProbeInterval paces each prober (default 1ms): latency is measured
	// on a lightly loaded interactive lane, the regime the lane protects.
	ProbeInterval time.Duration
	// TransferBytes sizes each bulk transfer; transfers stream
	// back-to-back for the whole window (default 4 MiB).
	TransferBytes int
	// ChunkBytes sets the sender chunk size for both bulk modes (default
	// 8192).
	ChunkBytes int
	// Duration is the measurement window (default 2s); Warmup bounds ring
	// formation (default 10s).
	Duration time.Duration
	Warmup   time.Duration
	// WirePath selects the UDP kernel driver ("portable", "batch", "" =
	// auto).
	WirePath string
}

// BulkBenchPoint is one measured figure_bulk run.
type BulkBenchPoint struct {
	Mode     string `json:"mode"`
	Nodes    int    `json:"nodes"`
	Networks int    `json:"networks"`
	MsgLen   int    `json:"msg_len"`
	// DurationSec is the measured window on the wall clock.
	DurationSec float64 `json:"duration_sec"`
	// Probes is the number of small-message deliveries observed across all
	// nodes in the window; the percentiles are their one-way latencies.
	Probes       uint64  `json:"probes"`
	P50LatencyUs float64 `json:"p50_latency_us"`
	P99LatencyUs float64 `json:"p99_latency_us"`
	// BulkBytes counts bulk payload bytes delivered per node in the window
	// (completed transfers in lane mode, stream chunks in interactive
	// mode); BulkMBPerSec is the per-node stream rate.
	BulkBytes    uint64  `json:"bulk_bytes"`
	BulkMBPerSec float64 `json:"bulk_mb_per_sec"`
}

// BulkBench boots the cluster, runs the mode's load for the window and
// reports the probe latency distribution alongside the bulk throughput.
func BulkBench(opt BulkBenchOptions) (*BulkBenchPoint, error) {
	if opt.Mode == "" {
		opt.Mode = BulkOff
	}
	if opt.Nodes <= 1 {
		opt.Nodes = 4
	}
	if opt.Networks <= 0 {
		opt.Networks = 2
	}
	if opt.MsgLen < 8 {
		opt.MsgLen = 64
	}
	if opt.ProbeInterval <= 0 {
		opt.ProbeInterval = time.Millisecond
	}
	if opt.TransferBytes <= 0 {
		opt.TransferBytes = 4 << 20
	}
	if opt.ChunkBytes <= 0 {
		opt.ChunkBytes = 8192
	}
	if opt.Duration <= 0 {
		opt.Duration = 2 * time.Second
	}
	if opt.Warmup <= 0 {
		opt.Warmup = 10 * time.Second
	}

	epoch := time.Now()
	const bulkSender = proto.NodeID(1)
	var (
		bulkBytes  atomic.Uint64
		probes     atomic.Uint64
		latMu      sync.Mutex
		latSamples []time.Duration
	)

	nodes := make([]*benchNode, opt.Nodes)
	defer func() {
		for _, bn := range nodes {
			if bn == nil {
				continue
			}
			if bn.n != nil {
				bn.n.Close()
			}
			if bn.tr != nil {
				bn.tr.Close()
			}
		}
	}()

	listen := make([]string, opt.Networks)
	for i := range listen {
		listen[i] = "127.0.0.1:0"
	}
	for i := range nodes {
		tr, err := transport.NewUDP(transport.UDPConfig{
			ID:       proto.NodeID(i + 1),
			Listen:   listen,
			WirePath: opt.WirePath,
		})
		if err != nil {
			return nil, fmt.Errorf("bulkbench: node %d: %w", i+1, err)
		}
		nodes[i] = &benchNode{tr: tr}
	}
	for i, bn := range nodes {
		for j, other := range nodes {
			if i == j {
				continue
			}
			if err := bn.tr.AddPeer(proto.NodeID(j+1), other.tr.LocalAddrs()); err != nil {
				return nil, fmt.Errorf("bulkbench: peer wiring: %w", err)
			}
		}
	}
	for i, bn := range nodes {
		n, err := totem.NewNode(totem.Config{
			ID:          proto.NodeID(i + 1),
			Networks:    opt.Networks,
			Replication: proto.ReplicationActive,
			Tune: func(o *totem.Options) {
				liveTune(o)
				o.Bulk.ChunkBytes = opt.ChunkBytes
				o.DeliveryTap = func(d totem.Delivery) {
					switch {
					case d.Bulk || d.Sender == bulkSender:
						// Lane-mode completed transfers and interactive-mode
						// stream chunks both count as bulk payload.
						bulkBytes.Add(uint64(len(d.Payload)))
					case len(d.Payload) >= 8:
						probes.Add(1)
						sent := time.Duration(binary.BigEndian.Uint64(d.Payload))
						lat := time.Since(epoch) - sent
						latMu.Lock()
						if len(latSamples) < 1<<17 {
							latSamples = append(latSamples, lat)
						}
						latMu.Unlock()
					}
				}
			},
		}, bn.tr)
		if err != nil {
			return nil, fmt.Errorf("bulkbench: node %d: %w", i+1, err)
		}
		bn.n = n
		go func(ch <-chan totem.Delivery) {
			for range ch {
			}
		}(n.Deliveries())
	}

	deadline := time.Now().Add(opt.Warmup)
	for {
		ready := 0
		for _, bn := range nodes {
			if bn.n.Operational() {
				ready++
			}
		}
		if ready == opt.Nodes {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("bulkbench: ring not operational after %s (%d/%d nodes)",
				opt.Warmup, ready, opt.Nodes)
		}
		time.Sleep(5 * time.Millisecond)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Probers: every node but the bulk sender, paced, timestamped.
	for _, bn := range nodes[1:] {
		wg.Add(1)
		go func(n *totem.Node) {
			defer wg.Done()
			payload := make([]byte, opt.MsgLen)
			tick := time.NewTicker(opt.ProbeInterval)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
				}
				binary.BigEndian.PutUint64(payload, uint64(time.Since(epoch)))
				n.Send(payload) //nolint:errcheck // a dropped probe is just a missing sample
			}
		}(bn.n)
	}

	// Bulk load on node 1, shaped by the mode.
	switch opt.Mode {
	case BulkLane:
		wg.Add(1)
		go func(n *totem.Node) {
			defer wg.Done()
			payload := make([]byte, opt.TransferBytes)
			for {
				select {
				case <-stop:
					return
				default:
				}
				xfer, err := n.SendBulk(payload)
				if err != nil {
					time.Sleep(time.Millisecond)
					continue
				}
				select {
				case <-xfer.Done():
				case <-stop:
					xfer.Cancel()
					return
				}
			}
		}(nodes[0].n)
	case BulkInteractive:
		wg.Add(1)
		go func(n *totem.Node) {
			defer wg.Done()
			chunk := make([]byte, opt.ChunkBytes)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := n.Send(chunk); err != nil {
					time.Sleep(100 * time.Microsecond)
				}
			}
		}(nodes[0].n)
	case BulkOff:
		// Probes only.
	default:
		return nil, fmt.Errorf("bulkbench: unknown mode %q", opt.Mode)
	}

	// Let the pipeline fill before the measured window.
	time.Sleep(200 * time.Millisecond)
	latMu.Lock()
	latSamples = latSamples[:0]
	latMu.Unlock()
	probesBefore := probes.Load()
	bulkBefore := bulkBytes.Load()
	start := time.Now()
	time.Sleep(opt.Duration)
	window := time.Since(start)
	probesAfter := probes.Load()
	bulkAfter := bulkBytes.Load()
	close(stop)
	wg.Wait()

	p := &BulkBenchPoint{
		Mode:        string(opt.Mode),
		Nodes:       opt.Nodes,
		Networks:    opt.Networks,
		MsgLen:      opt.MsgLen,
		DurationSec: window.Seconds(),
		Probes:      probesAfter - probesBefore,
		BulkBytes:   (bulkAfter - bulkBefore) / uint64(opt.Nodes),
	}
	p.BulkMBPerSec = float64(p.BulkBytes) / (1 << 20) / window.Seconds()
	latMu.Lock()
	samples := append([]time.Duration(nil), latSamples...)
	latMu.Unlock()
	if len(samples) > 0 {
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		p.P50LatencyUs = float64(samples[len(samples)/2]) / float64(time.Microsecond)
		p.P99LatencyUs = float64(samples[len(samples)*99/100]) / float64(time.Microsecond)
	}
	return p, nil
}
