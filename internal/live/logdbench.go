package live

import (
	"context"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"github.com/totem-rrp/totem/internal/logd"
	"github.com/totem-rrp/totem/logdclient"
)

// LogdBenchOptions shapes one figure_logd point: concurrent logdclient
// writers hammering a live cluster, measuring client-observed commit
// latency (HTTP round trip + total order + group-commit fsync).
type LogdBenchOptions struct {
	// Nodes and Networks size the cluster (defaults 4 and 2).
	Nodes    int
	Networks int
	// Clients is the concurrent writer count (default 8).
	Clients int
	// PayloadBytes sizes each record (default 128).
	PayloadBytes int
	// Warmup runs load before measurement starts (default 500ms).
	Warmup time.Duration
	// Duration is the measured window (default 2s).
	Duration time.Duration
	// Faults injects the torture schedule mid-window: a loss burst on
	// network 0 at T/4, then a kill -9 + restart of one member at T/2
	// and 3T/4.
	Faults bool
	// Dir is the scratch directory (default: a fresh temp dir, removed
	// after the run).
	Dir string
}

// LogdBenchPoint is one measured figure_logd point.
type LogdBenchPoint struct {
	Nodes         int     `json:"nodes"`
	Clients       int     `json:"clients"`
	PayloadBytes  int     `json:"payload_bytes"`
	Faults        bool    `json:"faults"`
	DurationSec   float64 `json:"duration_sec"`
	Appends       uint64  `json:"appends"`
	Failures      uint64  `json:"failures"`
	AppendsPerSec float64 `json:"appends_per_sec"`
	P50LatencyUs  float64 `json:"p50_latency_us"`
	P99LatencyUs  float64 `json:"p99_latency_us"`
	// Duplicates counts (client, seq) identities stored at more than one
	// offset after the run — must be 0; anything else is a correctness
	// bug, not a performance number.
	Duplicates uint64 `json:"duplicates"`
}

// LogdBench boots a live logd cluster, drives it with concurrent
// writers, and reports client-observed commit latency percentiles. With
// Faults it overlaps a loss burst and a crash/restart with the measured
// window, so the percentiles include reformation and failover stalls.
func LogdBench(opt LogdBenchOptions) (*LogdBenchPoint, error) {
	if opt.Nodes <= 0 {
		opt.Nodes = 4
	}
	if opt.Networks <= 0 {
		opt.Networks = 2
	}
	if opt.Clients <= 0 {
		opt.Clients = 8
	}
	if opt.PayloadBytes <= 0 {
		opt.PayloadBytes = 128
	}
	if opt.Warmup <= 0 {
		opt.Warmup = 500 * time.Millisecond
	}
	if opt.Duration <= 0 {
		opt.Duration = 2 * time.Second
	}
	if opt.Dir == "" {
		dir, err := os.MkdirTemp("", "logdbench-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		opt.Dir = dir
	}

	c, err := NewLogdCluster(LogdClusterOptions{
		Nodes:    opt.Nodes,
		Networks: opt.Networks,
		Dir:      opt.Dir,
	})
	if err != nil {
		return nil, err
	}
	defer c.Close()
	if err := c.WaitLive(30 * time.Second); err != nil {
		return nil, err
	}

	type writerStats struct {
		appends  uint64
		failures uint64
		lats     []time.Duration
	}
	var (
		measuring bool // guarded by statsMu
		statsMu   sync.Mutex
	)
	eps := c.Endpoints()
	payload := make([]byte, opt.PayloadBytes)
	for i := range payload {
		payload[i] = byte('a' + i%26)
	}
	stop := make(chan struct{})
	stats := make([]writerStats, opt.Clients)
	var wg sync.WaitGroup
	errCh := make(chan error, opt.Clients)
	for w := 0; w < opt.Clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rot := append(append([]string(nil), eps[w%len(eps):]...), eps[:w%len(eps)]...)
			cl, err := logdclient.New(logdclient.Options{
				Endpoints:   rot,
				ID:          fmt.Sprintf("bench-%d", w),
				MaxAttempts: 10,
				BaseBackoff: 5 * time.Millisecond,
				MaxBackoff:  200 * time.Millisecond,
			})
			if err != nil {
				errCh <- err
				return
			}
			st := &stats[w]
			for {
				select {
				case <-stop:
					return
				default:
				}
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				start := time.Now()
				_, err := cl.Append(ctx, payload)
				lat := time.Since(start)
				cancel()
				statsMu.Lock()
				counted := measuring
				statsMu.Unlock()
				if err != nil {
					if counted {
						st.failures++
					}
					continue
				}
				if counted {
					st.appends++
					if len(st.lats) < 1<<17 {
						st.lats = append(st.lats, lat)
					}
				}
			}
		}(w)
	}

	time.Sleep(opt.Warmup)
	statsMu.Lock()
	measuring = true
	statsMu.Unlock()
	begin := time.Now()

	if opt.Faults {
		quarter := opt.Duration / 4
		time.Sleep(quarter)
		c.Netem().SetLoss(0, 0.3)
		time.Sleep(quarter)
		c.Netem().SetLoss(0, 0)
		c.Kill(1)
		time.Sleep(quarter)
		if err := c.Restart(1); err != nil {
			close(stop)
			wg.Wait()
			return nil, err
		}
		time.Sleep(quarter)
	} else {
		time.Sleep(opt.Duration)
	}

	statsMu.Lock()
	measuring = false
	statsMu.Unlock()
	window := time.Since(begin)
	close(stop)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			return nil, err
		}
	}
	if err := c.WaitLive(60 * time.Second); err != nil {
		return nil, err
	}
	if err := c.WaitConverged(60 * time.Second); err != nil {
		return nil, err
	}

	p := &LogdBenchPoint{
		Nodes:        opt.Nodes,
		Clients:      opt.Clients,
		PayloadBytes: opt.PayloadBytes,
		Faults:       opt.Faults,
		DurationSec:  window.Seconds(),
	}
	var lats []time.Duration
	for i := range stats {
		p.Appends += stats[i].appends
		p.Failures += stats[i].failures
		lats = append(lats, stats[i].lats...)
	}
	p.AppendsPerSec = float64(p.Appends) / window.Seconds()
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	if n := len(lats); n > 0 {
		p.P50LatencyUs = float64(lats[n/2].Microseconds())
		p.P99LatencyUs = float64(lats[n*99/100].Microseconds())
	}

	dups, err := logdDuplicateScan(c.Endpoint(0))
	if err != nil {
		return nil, err
	}
	p.Duplicates = dups
	return p, nil
}

// logdDuplicateScan reads the whole stored log and counts (client, seq)
// identities occupying more than one offset — the zero-duplicates
// invariant a latency number is meaningless without.
func logdDuplicateScan(endpoint string) (uint64, error) {
	rd, err := logdclient.New(logdclient.Options{Endpoints: []string{endpoint}, ID: "bench-reader"})
	if err != nil {
		return 0, err
	}
	type ident struct {
		client string
		seq    uint64
	}
	seen := make(map[ident]struct{})
	var dups, from uint64
	for {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		recs, next, err := rd.Read(ctx, from, 512)
		cancel()
		if err != nil {
			return 0, err
		}
		for _, rec := range recs {
			if rec.Kind != logd.KindData {
				continue
			}
			id := ident{rec.Client, rec.Seq}
			if _, ok := seen[id]; ok {
				dups++
			}
			seen[id] = struct{}{}
		}
		from += uint64(len(recs))
		if from >= next || len(recs) == 0 {
			return dups, nil
		}
	}
}
