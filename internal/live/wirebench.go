package live

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	totem "github.com/totem-rrp/totem"
	"github.com/totem-rrp/totem/internal/proto"
	"github.com/totem-rrp/totem/internal/transport"
)

// WireBenchOptions parameterises one live Figure 6 analog run: real
// totem.Nodes over loopback UDP sockets (no impairment layer), driven at
// saturation for a wall-clock window. The point is to measure the wire
// path itself, so the netem wrapper is deliberately absent.
type WireBenchOptions struct {
	// Nodes is the ring size (default 4, the paper's Figure 6 cluster).
	Nodes int
	// Networks is the redundant network count (default 2).
	Networks int
	// MsgLen is the payload size in bytes (default 100; min 8 — the
	// payload carries a send timestamp for one-way latency).
	MsgLen int
	// Duration is the measurement window (default 2s).
	Duration time.Duration
	// Warmup bounds the wait for ring formation (default 10s).
	Warmup time.Duration
	// WirePath selects the UDP kernel driver ("portable", "batch", "" =
	// auto).
	WirePath string
}

// WireBenchPoint is one measured run, the unit the live benchmark gate
// compares across wire paths.
type WireBenchPoint struct {
	WirePath string `json:"wirepath"`
	Nodes    int    `json:"nodes"`
	Networks int    `json:"networks"`
	MsgLen   int    `json:"msg_len"`
	// DurationSec is the measured window on the wall clock.
	DurationSec float64 `json:"duration_sec"`
	// Delivered is the total delivery count across all nodes in the
	// window; MsgsPerSec is ordered messages per second (delivered /
	// nodes / duration) — the Figure 6 y-axis.
	Delivered  uint64  `json:"delivered"`
	MsgsPerSec float64 `json:"msgs_per_sec"`
	KBPerSec   float64 `json:"kbytes_per_sec"`
	// Wire accounting, summed across every node and network over the
	// window. SyscallsPerMsg is (TxSyscalls+RxSyscalls)/ordered messages —
	// the kernel-boundary cost the batched path exists to cut.
	TxDatagrams    uint64  `json:"tx_datagrams"`
	TxSyscalls     uint64  `json:"tx_syscalls"`
	RxDatagrams    uint64  `json:"rx_datagrams"`
	RxSyscalls     uint64  `json:"rx_syscalls"`
	TxErrors       uint64  `json:"tx_errors"`
	RxDropped      uint64  `json:"rx_dropped"`
	SyscallsPerMsg float64 `json:"syscalls_per_msg"`
	// One-way delivery latency percentiles in microseconds, sampled from
	// the timestamp each payload carries.
	P50LatencyUs float64 `json:"p50_latency_us"`
	P99LatencyUs float64 `json:"p99_latency_us"`
}

// wireCounterNames are the per-network transport counters the bench sums.
var wireCounterNames = []string{
	"tx_datagrams", "tx_syscalls", "rx_datagrams", "rx_syscalls",
	"tx_errors", "rx_dropped",
}

// WireBench boots the cluster, waits for the ring, drives every node at
// saturation for the window and reports the measured point.
func WireBench(opt WireBenchOptions) (*WireBenchPoint, error) {
	if opt.Nodes <= 0 {
		opt.Nodes = 4
	}
	if opt.Networks <= 0 {
		opt.Networks = 2
	}
	if opt.MsgLen < 8 {
		opt.MsgLen = 100
	}
	if opt.Duration <= 0 {
		opt.Duration = 2 * time.Second
	}
	if opt.Warmup <= 0 {
		opt.Warmup = 10 * time.Second
	}

	epoch := time.Now()
	var (
		delivered  atomic.Uint64
		latMu      sync.Mutex
		latSamples []time.Duration
	)

	nodes := make([]*benchNode, opt.Nodes)
	defer func() {
		for _, bn := range nodes {
			if bn == nil {
				continue
			}
			if bn.n != nil {
				bn.n.Close()
			}
			if bn.tr != nil {
				bn.tr.Close()
			}
		}
	}()

	listen := make([]string, opt.Networks)
	for i := range listen {
		listen[i] = "127.0.0.1:0"
	}
	for i := range nodes {
		tr, err := transport.NewUDP(transport.UDPConfig{
			ID:       proto.NodeID(i + 1),
			Listen:   listen,
			WirePath: opt.WirePath,
		})
		if err != nil {
			return nil, fmt.Errorf("wirebench: node %d: %w", i+1, err)
		}
		nodes[i] = &benchNode{tr: tr}
	}
	for i, bn := range nodes {
		for j, other := range nodes {
			if i == j {
				continue
			}
			if err := bn.tr.AddPeer(proto.NodeID(j+1), other.tr.LocalAddrs()); err != nil {
				return nil, fmt.Errorf("wirebench: peer wiring: %w", err)
			}
		}
	}
	var sampleTick atomic.Uint64
	for i, bn := range nodes {
		n, err := totem.NewNode(totem.Config{
			ID:          proto.NodeID(i + 1),
			Networks:    opt.Networks,
			Replication: proto.ReplicationActive,
			Tune: func(o *totem.Options) {
				liveTune(o)
				o.DeliveryTap = func(d totem.Delivery) {
					delivered.Add(1)
					// Sample 1 in 16 latencies: enough for stable
					// percentiles, cheap enough not to perturb the loop.
					if sampleTick.Add(1)%16 != 0 || len(d.Payload) < 8 {
						return
					}
					sent := time.Duration(binary.BigEndian.Uint64(d.Payload))
					lat := time.Since(epoch) - sent
					latMu.Lock()
					if len(latSamples) < 1<<17 {
						latSamples = append(latSamples, lat)
					}
					latMu.Unlock()
				}
			},
		}, bn.tr)
		if err != nil {
			return nil, fmt.Errorf("wirebench: node %d: %w", i+1, err)
		}
		bn.n = n
		// Drain the application-facing stream so the unbounded queue does
		// not hoard memory; the tap has already counted each delivery.
		go func(ch <-chan totem.Delivery) {
			for range ch {
			}
		}(n.Deliveries())
	}

	// Ring formation: every node operational before the clock starts.
	deadline := time.Now().Add(opt.Warmup)
	for {
		ready := 0
		for _, bn := range nodes {
			if bn.n.Operational() {
				ready++
			}
		}
		if ready == opt.Nodes {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("wirebench: ring not operational after %s (%d/%d nodes)",
				opt.Warmup, ready, opt.Nodes)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Saturation load: one submitter per node, payload stamped with the
	// send time for the latency percentiles.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, bn := range nodes {
		wg.Add(1)
		go func(n *totem.Node) {
			defer wg.Done()
			payload := make([]byte, opt.MsgLen)
			for {
				select {
				case <-stop:
					return
				default:
				}
				binary.BigEndian.PutUint64(payload, uint64(time.Since(epoch)))
				if err := n.Send(payload); err != nil {
					// Backpressure (or shutdown): yield and retry.
					time.Sleep(100 * time.Microsecond)
				}
			}
		}(bn.n)
	}

	// Let the pipeline fill before the measured window.
	time.Sleep(200 * time.Millisecond)
	before := snapshotWire(nodes, opt.Networks)
	deliveredBefore := delivered.Load()
	latMu.Lock()
	latSamples = latSamples[:0]
	latMu.Unlock()
	start := time.Now()
	time.Sleep(opt.Duration)
	window := time.Since(start)
	after := snapshotWire(nodes, opt.Networks)
	deliveredAfter := delivered.Load()
	close(stop)
	wg.Wait()

	p := &WireBenchPoint{
		WirePath:    nodes[0].tr.WirePath(),
		Nodes:       opt.Nodes,
		Networks:    opt.Networks,
		MsgLen:      opt.MsgLen,
		DurationSec: window.Seconds(),
		Delivered:   deliveredAfter - deliveredBefore,
		TxDatagrams: after["tx_datagrams"] - before["tx_datagrams"],
		TxSyscalls:  after["tx_syscalls"] - before["tx_syscalls"],
		RxDatagrams: after["rx_datagrams"] - before["rx_datagrams"],
		RxSyscalls:  after["rx_syscalls"] - before["rx_syscalls"],
		TxErrors:    after["tx_errors"] - before["tx_errors"],
		RxDropped:   after["rx_dropped"] - before["rx_dropped"],
	}
	msgs := float64(p.Delivered) / float64(opt.Nodes)
	p.MsgsPerSec = msgs / window.Seconds()
	p.KBPerSec = p.MsgsPerSec * float64(opt.MsgLen) / 1024
	if msgs > 0 {
		p.SyscallsPerMsg = float64(p.TxSyscalls+p.RxSyscalls) / msgs
	}
	latMu.Lock()
	samples := append([]time.Duration(nil), latSamples...)
	latMu.Unlock()
	if len(samples) > 0 {
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		p.P50LatencyUs = float64(samples[len(samples)/2]) / float64(time.Microsecond)
		p.P99LatencyUs = float64(samples[len(samples)*99/100]) / float64(time.Microsecond)
	}
	return p, nil
}

// benchNode is one cluster slot: the raw UDP transport (for WirePath and
// LocalAddrs) and the node running on it.
type benchNode struct {
	tr *transport.UDPTransport
	n  *totem.Node
}

// snapshotWire sums the wire counters across every node and network.
func snapshotWire(nodes []*benchNode, networks int) map[string]uint64 {
	out := make(map[string]uint64, len(wireCounterNames))
	for _, bn := range nodes {
		reg := bn.n.Metrics()
		for net := 0; net < networks; net++ {
			for _, name := range wireCounterNames {
				if v, ok := reg.Get(fmt.Sprintf("udp.net%d.%s", net, name)); ok {
					out[name] += uint64(v)
				}
			}
		}
	}
	return out
}
