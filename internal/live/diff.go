package live

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"github.com/totem-rrp/totem/internal/proto"
	"github.com/totem-rrp/totem/internal/torture"
)

// DiffReport is the outcome of replaying one fault program on both
// execution backends and comparing what the invariant checker recorded.
type DiffReport struct {
	Program torture.Program
	Sim     *torture.Result
	Live    *torture.Result
	// Mismatches lists every disagreement; empty means the backends agree.
	Mismatches []string
}

// OK reports backend agreement.
func (r *DiffReport) OK() bool { return len(r.Mismatches) == 0 }

// DiffProgram derives a mild fault program suited to differential
// comparison: faults that force retransmission and fault-monitor activity
// but never fracture the membership, so the total order is a single
// uninterrupted sequence on both backends. (Programs that split the ring
// are legitimately timing-dependent — which side a node lands on differs
// between backends — and belong to the conformance sweep, not the
// differential.)
func DiffProgram(seed int64, style proto.ReplicationStyle) torture.Program {
	rng := rand.New(rand.NewSource(seed))
	p := torture.Program{
		Seed:        seed,
		Style:       style.String(),
		Nodes:       3,
		Networks:    2,
		Warmup:      1500 * time.Millisecond,
		FaultWindow: 2 * time.Second,
		Tail:        3 * time.Second,

		LoadInterval: 15 * time.Millisecond,
		PayloadLen:   64 + rng.Intn(64),
	}
	if style == proto.ReplicationActivePassive {
		p.K = 2
		p.Networks = 3
	}
	// Two non-overlapping single-network faults: a loss burst early, a
	// full network outage later. The other network(s) keep the ring whole.
	p.Ops = []torture.Op{
		{
			Kind: torture.OpLossBurst,
			At:   100 * time.Millisecond,
			Dur:  600 * time.Millisecond,
			Net:  0,
			P:    0.25 + 0.25*rng.Float64(),
		},
		{
			Kind: torture.OpNetDown,
			At:   time.Second,
			Dur:  700 * time.Millisecond,
			Net:  rng.Intn(p.Networks),
		},
	}
	return p
}

// Differential replays one program on the virtual-time simulator and on
// the live harness and compares: both must run violation-free, agree on
// the final-ring membership, order deliveries identically across nodes
// within each backend, and deliver the same payload set per node across
// backends. The cross-backend total order is NOT compared: two real
// executions interleave submissions differently, and Totem only promises
// agreement within a run — see DESIGN.md §11.
func Differential(p torture.Program, opt Options) (*DiffReport, error) {
	// The live replay goes first: the simulator churns through virtual
	// events fast enough that running it beforehand leaves the GC busy
	// while the wall-clock run's tight protocol timers are live, which on
	// small CI machines can stall a node past its token-loss timeout and
	// fracture a ring the program never meant to fracture.
	opt.RecordDeliveries = true
	liveRes, err := Execute(p, opt)
	if err != nil {
		return nil, fmt.Errorf("live: live replay: %w", err)
	}
	simRes, err := torture.Execute(p, torture.Options{RecordDeliveries: true})
	if err != nil {
		return nil, fmt.Errorf("live: sim replay: %w", err)
	}
	rep := &DiffReport{Program: p, Sim: simRes, Live: liveRes}
	miss := func(format string, args ...any) {
		rep.Mismatches = append(rep.Mismatches, fmt.Sprintf(format, args...))
	}

	if simRes.Violation != nil {
		miss("sim violated %s: %s", simRes.Violation.Invariant, simRes.Violation.Detail)
	}
	if liveRes.Violation != nil {
		miss("live violated %s: %s", liveRes.Violation.Invariant, liveRes.Violation.Detail)
	}
	if len(rep.Mismatches) > 0 {
		return rep, nil
	}

	if !sameMembers(simRes.FinalMembers, liveRes.FinalMembers) {
		miss("final-ring membership: sim %v, live %v", simRes.FinalMembers, liveRes.FinalMembers)
	}

	// Within each backend every node must have delivered the identical
	// sequence (the program never fractures membership, so there is one
	// total order per run).
	for _, b := range []struct {
		name string
		res  *torture.Result
	}{{"sim", simRes}, {"live", liveRes}} {
		ids := sortedIDs(b.res.Deliveries)
		for _, id := range ids[1:] {
			if !equalSeq(b.res.Deliveries[ids[0]], b.res.Deliveries[id]) {
				miss("%s: node %v delivery sequence differs from node %v (%d vs %d entries)",
					b.name, id, ids[0], len(b.res.Deliveries[id]), len(b.res.Deliveries[ids[0]]))
			}
		}
	}

	// Across backends every node must have delivered the same payload set.
	for _, id := range sortedIDs(simRes.Deliveries) {
		s := sortedCopy(simRes.Deliveries[id])
		l := sortedCopy(liveRes.Deliveries[id])
		if !equalSeq(s, l) {
			miss("node %v delivered %d payloads on sim, %d on live (sets differ)",
				id, len(s), len(l))
		}
	}
	return rep, nil
}

func sortedIDs(m map[proto.NodeID][]uint64) []proto.NodeID {
	ids := make([]proto.NodeID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func sortedCopy(s []uint64) []uint64 {
	out := append([]uint64(nil), s...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalSeq(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sameMembers(a, b []proto.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]proto.NodeID(nil), a...)
	bs := append([]proto.NodeID(nil), b...)
	sort.Slice(as, func(i, j int) bool { return as[i] < as[j] })
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}
