package live

import (
	"testing"

	"github.com/totem-rrp/totem/internal/proto"
	"github.com/totem-rrp/totem/internal/transport"
)

// TestLiveUDPWirePathParity runs the same impaired conformance program
// over loopback UDP on every wire driver this platform has: the batched
// sendmmsg/recvmmsg path must uphold exactly the invariants the portable
// path does (satellite #3 — the kernel fast path is a drop-in).
func TestLiveUDPWirePathParity(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock harness")
	}
	paths := []string{transport.WirePathPortable}
	if transport.BatchSupported() {
		paths = append(paths, transport.WirePathBatch)
	}
	for _, path := range paths {
		t.Run(path, func(t *testing.T) {
			res, err := Execute(liveProgram(17, proto.ReplicationActive), Options{
				Transport: "udp",
				WirePath:  path,
				TimeScale: 0.3,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Violation != nil {
				t.Fatalf("violation on %s driver: %s\ntrace tail:\n%s",
					path, res.Violation, tail(res.TraceTail))
			}
			if res.Delivered == 0 {
				t.Fatalf("run on %s driver delivered nothing", path)
			}
			if res.FinalMembers == nil {
				t.Fatalf("no agreed final membership on %s driver", path)
			}
		})
	}
}
