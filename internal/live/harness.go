package live

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	totem "github.com/totem-rrp/totem"
	"github.com/totem-rrp/totem/internal/proto"
	"github.com/totem-rrp/totem/internal/stack"
	"github.com/totem-rrp/totem/internal/torture"
	"github.com/totem-rrp/totem/internal/trace"
	"github.com/totem-rrp/totem/internal/transport"
)

// Options tunes one live execution of a torture program.
type Options struct {
	// Transport selects the medium: "mem" (in-process hub, default) or
	// "udp" (loopback sockets, one per node per network).
	Transport string
	// WirePath selects the UDP kernel driver ("auto", "portable",
	// "batch"); empty means auto. Ignored by the mem transport. The
	// conformance sweep runs the same programs on both drivers.
	WirePath string
	// TimeScale compresses the program's virtual-time phases onto the wall
	// clock: wall = virtual × TimeScale. The protocol timers are tuned
	// (liveTune) so rings form and heal well inside the scaled phases.
	// Default 0.3.
	TimeScale float64
	// Netem is the baseline impairment; nil applies
	// DefaultNetemParams(program seed). Point at a zero NetemParams to run
	// unimpaired.
	Netem *NetemParams
	// RecordDeliveries retains per-node delivery orders for the
	// differential mode.
	RecordDeliveries bool
	// TraceCap bounds the shared trace ring; 0 means 512.
	TraceCap int
	// SettleTimeout bounds the post-run convergence wait (wall clock);
	// 0 means 5s.
	SettleTimeout time.Duration
	// ClockSkew, when non-zero, scales every node's protocol timers by a
	// seeded per-node factor drawn from [1-ClockSkew, 1+ClockSkew] — the
	// live analogue of the simulator's timer-skew fault. Real deployments
	// never have perfectly matched clocks; a skew the monitors cannot
	// absorb shows up as spurious convictions.
	ClockSkew float64
}

// liveTune compresses the protocol timers for scaled wall-clock runs: the
// same shape TortureTune gives the simulator, shrunk so that ring
// formation, token-loss recovery and probation-based readmission all fit
// inside a program's scaled phases. Values stay a comfortable multiple of
// loopback RTT and Go timer granularity so runs are not flaky on slow CI
// machines.
func liveTune(o *totem.Options) {
	o.SRP.TokenLossTimeout = 50 * time.Millisecond
	o.SRP.TokenRetransmitInterval = 5 * time.Millisecond
	o.SRP.JoinInterval = 25 * time.Millisecond
	o.SRP.ConsensusTimeout = 120 * time.Millisecond
	o.SRP.CommitRetransmitInterval = 20 * time.Millisecond
	o.SRP.MergeDetectInterval = 80 * time.Millisecond
	o.SRP.IdleTokenHold = time.Millisecond
	o.RRP.TokenHold = 5 * time.Millisecond
	o.RRP.DecayInterval = 100 * time.Millisecond
	o.RRP.ProbationWindows = 2
	o.RRP.MaxProbation = 8
	o.RRP.FlapWindow = time.Second
}

// skewTune scales one node's protocol timers by factor f — its private
// clock rate. Only durations are scaled; counters and thresholds are
// clock-free.
func skewTune(o *totem.Options, f float64) {
	scale := func(d *time.Duration) { *d = time.Duration(float64(*d) * f) }
	scale(&o.SRP.TokenLossTimeout)
	scale(&o.SRP.TokenRetransmitInterval)
	scale(&o.SRP.JoinInterval)
	scale(&o.SRP.ConsensusTimeout)
	scale(&o.SRP.CommitRetransmitInterval)
	scale(&o.SRP.MergeDetectInterval)
	scale(&o.SRP.IdleTokenHold)
	scale(&o.RRP.TokenTimeout)
	scale(&o.RRP.TokenHold)
	scale(&o.RRP.DecayInterval)
	scale(&o.RRP.FlapWindow)
}

// liveSlowNetCap bounds the wall-clock latency a slow-net fault may force
// on the live harness: at worst-case back-to-back token rotation (~50µs on
// the mem transport) it keeps the in-flight copy count a comfortable
// margin under TokenDiffThreshold, so a merely-slow network stays within
// the monitor tolerance the slow-vs-dead invariant asserts.
const liveSlowNetCap = 150 * time.Microsecond

// liveNode is one slot in the harness: the node (and its transports) are
// replaced across crash/restart, the slot persists.
type liveNode struct {
	id proto.NodeID

	mu      sync.Mutex
	n       *totem.Node
	imp     *Impaired
	udp     *transport.UDPTransport // nil on the mem transport
	crashed bool
	// epoch is the highest ring epoch observed before the last crash; the
	// next incarnation carries it forward (Totem's stable-storage ring
	// sequence number).
	epoch uint32
}

type harness struct {
	p     torture.Program
	style proto.ReplicationStyle
	opt   Options
	scale float64

	nm     *Netem
	ch     *torture.Checker
	tracer trace.Tracer
	ring   *trace.Ring
	epoch  time.Time

	hub   *transport.MemHub         // mem transport only
	addrs map[proto.NodeID][]string // udp transport only: current listen addrs
	nodes map[proto.NodeID]*liveNode
	order []proto.NodeID
	skew  map[proto.NodeID]float64 // per-node clock rate; nil = all 1.0

	delivered atomic.Uint64
	stopped   atomic.Bool
}

// Execute runs one torture program against real totem.Nodes on the
// goroutine runtime and returns the same Result shape as the virtual-time
// runner. The program is interpreted identically — same ops, same load
// schedule, same payloads — except that timer-skew is a no-op (real
// clocks cannot be scaled) and timing is wall clock compressed by
// Options.TimeScale.
func Execute(p torture.Program, opt Options) (*torture.Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	style, err := torture.StyleByName(p.Style)
	if err != nil {
		return nil, err
	}
	if opt.Transport == "" {
		opt.Transport = "mem"
	}
	if opt.Transport != "mem" && opt.Transport != "udp" {
		return nil, fmt.Errorf("live: unknown transport %q", opt.Transport)
	}
	if opt.TimeScale <= 0 {
		opt.TimeScale = 0.3
	}
	if opt.SettleTimeout <= 0 {
		opt.SettleTimeout = 5 * time.Second
	}
	traceCap := opt.TraceCap
	if traceCap <= 0 {
		traceCap = 512
	}
	np := DefaultNetemParams(p.Seed)
	if opt.Netem != nil {
		np = *opt.Netem
	}

	h := &harness{
		p:     p,
		style: style,
		opt:   opt,
		scale: opt.TimeScale,
		nm:    NewNetem(p.Networks, np),
		ring:  trace.NewRing(traceCap),
		addrs: make(map[proto.NodeID][]string),
		nodes: make(map[proto.NodeID]*liveNode),
	}
	// The live monitor bound uses the default conviction thresholds, same
	// as the simulator (neither tune changes them).
	h.ch = torture.NewChecker(style, torture.MonitorBoundFor(stack.DefaultConfig(1, p.Networks, style)))
	h.ch.SetRecordDeliveries(opt.RecordDeliveries)
	h.ch.SetSlowOnly(torture.SlowOnlyNets(p))
	h.ch.SetRecoveryBudget(torture.RecoveryBudget(p))
	if opt.ClockSkew > 0 {
		// One seeded draw per node, in slot order, so the same program and
		// skew setting always yield the same per-node clock rates.
		rng := rand.New(rand.NewSource(p.Seed ^ 0x5eed))
		h.skew = make(map[proto.NodeID]float64, p.Nodes)
		for i := 1; i <= p.Nodes; i++ {
			h.skew[proto.NodeID(i)] = 1 + (rng.Float64()*2-1)*opt.ClockSkew
		}
	}
	h.tracer = trace.Multi{h.ch, h.ring}
	if opt.Transport == "mem" {
		h.hub = transport.NewMemHub(p.Networks)
	}
	for i := 1; i <= p.Nodes; i++ {
		id := proto.NodeID(i)
		h.order = append(h.order, id)
		h.nodes[id] = &liveNode{id: id}
	}

	if err := h.boot(); err != nil {
		h.teardown()
		return nil, err
	}
	h.epoch = time.Now()
	h.ch.SetNow(func() proto.Time { return proto.Time(time.Since(h.epoch)) })

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); h.runSchedule() }()
	for i, id := range h.order {
		wg.Add(1)
		go func(i int, id proto.NodeID) { defer wg.Done(); h.runLoad(i, id) }(i, id)
	}
	wg.Wait()

	// Bounded convergence grace, polling the same Settled fixed point the
	// simulator uses.
	deadline := time.Now().Add(opt.SettleTimeout)
	var end *torture.EndState
	for {
		end = h.endState()
		if end.Settled() || h.ch.Violation() != nil || time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	// Stop every node before the end-of-run checks so the checker's
	// counters are quiescent (the runtime has no yield point between
	// recording a token reception and accounting for it, so once the loops
	// exit the ledgers are final).
	h.teardown()
	if h.ch.Violation() == nil {
		h.ch.Finish(end)
	}

	res := &torture.Result{
		Program:   p,
		Violation: h.ch.Violation(),
		Delivered: h.delivered.Load(),
		End:       time.Since(h.epoch),
	}
	if end != nil {
		res.FinalMembers = end.FinalMembers()
	}
	if opt.RecordDeliveries {
		res.Deliveries = h.ch.DeliverySeqs()
	}
	for _, e := range h.ring.Events(nil) {
		res.TraceTail = append(res.TraceTail, e.String())
	}
	return res, nil
}

// peersOf lists every node except id, for partition-time broadcast
// expansion.
func (h *harness) peersOf(id proto.NodeID) []proto.NodeID {
	out := make([]proto.NodeID, 0, len(h.order)-1)
	for _, p := range h.order {
		if p != id {
			out = append(out, p)
		}
	}
	return out
}

// boot brings up every node's transport and protocol stack. UDP sockets
// are all opened (on 127.0.0.1:0) before any peer wiring so each node
// learns every other node's real bound ports.
func (h *harness) boot() error {
	if h.opt.Transport == "udp" {
		for _, id := range h.order {
			t, err := h.newUDP(id)
			if err != nil {
				return err
			}
			h.nodes[id].udp = t
			h.addrs[id] = t.LocalAddrs()
		}
		for _, id := range h.order {
			for _, peer := range h.order {
				if peer == id {
					continue
				}
				if err := h.nodes[id].udp.AddPeer(peer, h.addrs[peer]); err != nil {
					return err
				}
			}
		}
	}
	for _, id := range h.order {
		if err := h.startNode(h.nodes[id]); err != nil {
			return err
		}
	}
	return nil
}

func (h *harness) newUDP(id proto.NodeID) (*transport.UDPTransport, error) {
	listen := make([]string, h.p.Networks)
	for i := range listen {
		listen[i] = "127.0.0.1:0"
	}
	return transport.NewUDP(transport.UDPConfig{
		ID:       id,
		Listen:   listen,
		WirePath: h.opt.WirePath,
	})
}

// startNode wraps the slot's inner transport in the impairment layer and
// boots a totem.Node on it. The slot's udp field (or the mem hub) must be
// ready; epoch carries the pre-crash ring epoch into the new incarnation.
func (h *harness) startNode(ln *liveNode) error {
	var inner transport.Transport
	if h.opt.Transport == "mem" {
		t, err := h.hub.Join(ln.id)
		if err != nil {
			return err
		}
		inner = t
	} else {
		inner = ln.udp
	}
	imp := Impair(inner, ln.id, h.peersOf(ln.id), h.nm)
	id := ln.id
	cfg := totem.Config{
		ID:          id,
		Networks:    h.p.Networks,
		Replication: h.style,
		K:           h.p.K,
		Tune: func(o *totem.Options) {
			liveTune(o)
			if f, ok := h.skew[id]; ok && f != 1 {
				skewTune(o, f)
			}
			if ln.epoch > o.SRP.InitialEpoch {
				o.SRP.InitialEpoch = ln.epoch
			}
			o.Tracer = h.tracer
			o.DeliveryTap = func(d totem.Delivery) {
				h.delivered.Add(1)
				h.ch.OnDeliver(id, d)
			}
		},
	}
	n, err := totem.NewNode(cfg, imp)
	if err != nil {
		imp.Close()
		return fmt.Errorf("live: node %v: %w", id, err)
	}
	ln.mu.Lock()
	ln.n, ln.imp, ln.crashed = n, imp, false
	ln.mu.Unlock()
	return nil
}

// crash fail-stops a node: the protocol stack dies with its transport.
// The highest observed ring epoch is read first so the next incarnation
// can never mint a RingID this one already used.
func (h *harness) crash(id proto.NodeID) {
	ln := h.nodes[id]
	ln.mu.Lock()
	if ln.crashed || ln.n == nil {
		ln.mu.Unlock()
		return
	}
	n, imp := ln.n, ln.imp
	ln.crashed = true
	ln.n, ln.imp = nil, nil
	ln.mu.Unlock()
	h.ch.NoteCrash(id)
	if e := n.MaxEpoch(); e > ln.epoch {
		ln.epoch = e
	}
	n.Close()
	imp.Close()
}

// restart reboots a crashed node on a fresh transport. On UDP the new
// sockets bind new ports, so every other node's peer table is updated —
// the live analogue of a machine rebooting with a new DHCP lease.
func (h *harness) restart(id proto.NodeID) {
	if h.stopped.Load() {
		return
	}
	ln := h.nodes[id]
	ln.mu.Lock()
	crashed := ln.crashed
	ln.mu.Unlock()
	if !crashed {
		return
	}
	if h.opt.Transport == "udp" {
		t, err := h.newUDP(id)
		if err != nil {
			return
		}
		ln.udp = t
		h.addrs[id] = t.LocalAddrs()
		for _, peer := range h.order {
			if peer == id {
				continue
			}
			t.AddPeer(peer, h.addrs[peer]) //nolint:errcheck
			pn := h.nodes[peer]
			pn.mu.Lock()
			if !pn.crashed && pn.udp != nil {
				pn.udp.AddPeer(id, h.addrs[id]) //nolint:errcheck
			}
			pn.mu.Unlock()
		}
	}
	h.startNode(ln) //nolint:errcheck
}

// runSchedule fires the program's fault ops (scaled onto the wall clock)
// plus the unconditional end-of-window heal, in time order, from one
// goroutine. Timer-skew is a live no-op: real clocks cannot be scaled
// per-node from userspace.
func (h *harness) runSchedule() {
	type event struct {
		at time.Duration // virtual
		fn func()
	}
	var evs []event
	add := func(at time.Duration, fn func()) { evs = append(evs, event{at, fn}) }
	p := h.p
	for _, op := range p.Ops {
		op := op
		at := p.Warmup + op.At
		over := at + op.Dur
		switch op.Kind {
		case torture.OpLossBurst:
			add(at, func() { h.nm.SetLoss(op.Net, op.P) })
			add(over, func() { h.nm.SetLoss(op.Net, 0) })
		case torture.OpNetDown:
			add(at, func() { h.nm.KillNetwork(op.Net) })
			add(over, func() { h.nm.ReviveNetwork(op.Net) })
		case torture.OpPartition:
			add(at, func() { h.nm.Partition(op.Net, torture.PartitionGroups(p.Nodes, op.Part)) })
			add(over, func() { h.nm.Partition(op.Net, nil) })
		case torture.OpTokenLoss:
			add(at, func() {
				for i := 0; i < p.Networks; i++ {
					h.nm.KillNetwork(i)
				}
			})
			add(over, func() {
				for i := 0; i < p.Networks; i++ {
					h.nm.ReviveNetwork(i)
				}
			})
		case torture.OpBlockSend:
			add(at, func() { h.nm.BlockSend(op.Node, op.Net, true) })
			add(over, func() { h.nm.BlockSend(op.Node, op.Net, false) })
		case torture.OpBlockRecv:
			add(at, func() { h.nm.BlockRecv(op.Node, op.Net, true) })
			add(over, func() { h.nm.BlockRecv(op.Node, op.Net, false) })
		case torture.OpTimerSkew, torture.OpClockDrift:
			// no-op live: real clocks cannot be scaled per node from
			// userspace (Options.ClockSkew covers static rate mismatch)
		case torture.OpCrash:
			add(at, func() { h.crash(op.Node) })
			add(over, func() { h.restart(op.Node) })
		case torture.OpOneWay:
			add(at, func() { h.nm.BlockPair(op.Net, op.Node, op.Peer, true) })
			add(over, func() { h.nm.BlockPair(op.Net, op.Node, op.Peer, false) })
		case torture.OpCongestion:
			add(at, func() { h.nm.SetCongestion(op.Net, op.P) })
			add(over, func() { h.nm.SetCongestion(op.Net, 0) })
		case torture.OpDupStorm:
			add(at, func() { h.nm.SetDupStorm(op.Net, op.P) })
			add(over, func() { h.nm.SetDupStorm(op.Net, 0) })
		case torture.OpSlowNet:
			// The program's latency is virtual time; the wall-clock floor
			// scales with everything else — but is capped so the fault stays
			// inside the monitors' tolerance at live speeds. The ring rotates
			// in tens of microseconds on the mem transport, so an uncapped
			// delay would put more token copies in flight than
			// TokenDiffThreshold allows, and convicting that is correct
			// behavior, not a slow-vs-dead misdiagnosis.
			lat := time.Duration(float64(op.Lat) * h.scale)
			if lat > liveSlowNetCap {
				lat = liveSlowNetCap
			}
			add(at, func() { h.nm.SetSlowNet(op.Net, lat) })
			add(over, func() { h.nm.SetSlowNet(op.Net, 0) })
		case torture.OpCorrupt:
			add(at, func() { h.corrupt(op) })
		}
	}
	add(p.Warmup+p.FaultWindow, func() { h.nm.HealAll() })
	add(p.Duration(), func() {}) // hold the schedule open to the horizon
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].at < evs[j].at })
	for _, ev := range evs {
		h.sleepUntil(ev.at)
		ev.fn()
	}
}

// corrupt scrambles one slice of the target node's protocol state through
// the public fault-injection hook — the same corruption, same seed, as the
// simulator's runner — and arms the checker's bounded-recovery invariant.
func (h *harness) corrupt(op torture.Op) {
	ln := h.nodes[op.Node]
	ln.mu.Lock()
	n := ln.n
	ln.mu.Unlock()
	if n == nil {
		return
	}
	h.ch.NoteCorrupt(op.Node)
	n.Corrupt(op.Sub, torture.CorruptSeed(h.p, op))
}

// sleepUntil blocks until the scaled wall-clock image of virtual time t.
func (h *harness) sleepUntil(t time.Duration) {
	wall := h.epoch.Add(time.Duration(float64(t) * h.scale))
	if d := time.Until(wall); d > 0 {
		time.Sleep(d)
	}
}

// runLoad replays the program's submission schedule for one node: same
// offsets, same cutoff, same payload bytes as the simulator, scaled onto
// the wall clock.
func (h *harness) runLoad(idx int, id proto.NodeID) {
	p := h.p
	offset := time.Duration(idx) * p.LoadInterval / time.Duration(len(h.order))
	cutoff := p.LoadCutoff()
	seqNo := 0
	for t := p.Warmup + offset; t < cutoff; t += p.LoadInterval {
		h.sleepUntil(t)
		payload := torture.LoadPayload(p, id, seqNo)
		seqNo++
		h.submit(id, payload)
	}
}

// submit sends one payload on the node's current incarnation, briefly
// retrying backpressure (a real application would too); the checker is
// told whether the stack accepted it.
func (h *harness) submit(id proto.NodeID, payload []byte) {
	ln := h.nodes[id]
	ln.mu.Lock()
	n := ln.n
	ln.mu.Unlock()
	if n == nil {
		h.ch.NoteSubmit(id, payload, false)
		return
	}
	err := n.Send(payload)
	for i := 0; err == totem.ErrBackpressure && i < 3; i++ {
		time.Sleep(2 * time.Millisecond)
		err = n.Send(payload)
	}
	h.ch.NoteSubmit(id, payload, err == nil)
}

// endState snapshots every node through the public inspection API into
// the checker's backend-neutral form.
func (h *harness) endState() *torture.EndState {
	end := &torture.EndState{}
	for _, id := range h.order {
		ln := h.nodes[id]
		ln.mu.Lock()
		n, crashed := ln.n, ln.crashed
		ln.mu.Unlock()
		if crashed || n == nil {
			end.Nodes = append(end.Nodes, torture.NodeEnd{ID: id, Crashed: true})
			continue
		}
		ring, members := n.Ring()
		end.Nodes = append(end.Nodes, torture.NodeEnd{
			ID:          id,
			Operational: n.Operational(),
			State:       n.StateName(),
			Ring:        ring,
			Members:     members,
			Backlog:     n.Backlog(),
			Faulty:      n.NetworkFaults(),
		})
	}
	return end
}

// teardown closes every node and transport; idempotent.
func (h *harness) teardown() {
	h.stopped.Store(true)
	for _, id := range h.order {
		ln := h.nodes[id]
		ln.mu.Lock()
		n, imp := ln.n, ln.imp
		ln.n, ln.imp = nil, nil
		ln.mu.Unlock()
		if n != nil {
			n.Close()
		}
		if imp != nil {
			imp.Close()
		}
	}
}
