package live

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	totem "github.com/totem-rrp/totem"
	"github.com/totem-rrp/totem/internal/proto"
	"github.com/totem-rrp/totem/internal/torture"
	"github.com/totem-rrp/totem/internal/transport"
)

// ShardTortureOptions parameterises one live multi-ring torture run: a
// cluster of Nodes×Shards rings under keyed load while a seeded fault
// program blacks out individual shards — the scenario sharding exists
// for, and the one a single-ring harness cannot express.
type ShardTortureOptions struct {
	// Nodes, Networks, Shards size the cluster (defaults 4, 2, 4).
	Nodes, Networks, Shards int
	// Style names the replication style ("active", "passive", ...);
	// default "passive".
	Style string
	// Transport is "mem" (default) or "udp".
	Transport string
	// WirePath selects the UDP kernel driver; ignored on mem.
	WirePath string
	// Seed fixes the fault program, the load keys and the netem draws.
	Seed int64
	// FaultWindows is the number of one-shard fault windows (default 3);
	// each window blacks out one shard (cluster-wide loss or one node's
	// shard interface, alternating by seed) while the load keeps running.
	FaultWindows int
	// Window and Heal are the wall-clock lengths of each fault window and
	// of the recovery gap after it (defaults 300ms / 200ms).
	Window, Heal time.Duration
	// LoadInterval is the per-node keyed-send period (default 2ms).
	LoadInterval time.Duration
	// CrossOrder additionally runs the deterministic cross-shard merge
	// and checks the merged sequences agree across nodes.
	CrossOrder bool
	// Netem is the baseline impairment; nil applies DefaultNetemParams.
	Netem *NetemParams
	// SettleTimeout bounds the post-run convergence wait (default 5s).
	SettleTimeout time.Duration
}

// ShardTortureResult reports one run.
type ShardTortureResult struct {
	// Violations lists every invariant breach; empty means a clean run.
	Violations []string
	// Delivered is the total delivery count across nodes and shards.
	Delivered uint64
	// PerShardDelivered sums deliveries per shard across nodes.
	PerShardDelivered []uint64
	// Windows is the number of fault windows executed.
	Windows int
}

// Ok reports whether the run was violation-free.
func (r *ShardTortureResult) Ok() bool { return len(r.Violations) == 0 }

// shardRec is one delivery as the shard checker records it.
type shardRec struct {
	sender proto.NodeID
	seq    int
	shard  int
}

// shardTortureState tracks per-(node, shard) delivered sequences and
// counts while the cluster runs.
type shardTortureState struct {
	shards int
	mu     sync.Mutex
	// seqs[node][shard] is the delivered record sequence; merged[node] is
	// the full cross-shard order as the node observed it.
	seqs   map[proto.NodeID][][]shardRec
	merged map[proto.NodeID][]shardRec
	counts map[proto.NodeID][]uint64
}

func newShardTortureState(shards int) *shardTortureState {
	return &shardTortureState{
		shards: shards,
		seqs:   make(map[proto.NodeID][][]shardRec),
		merged: make(map[proto.NodeID][]shardRec),
		counts: make(map[proto.NodeID][]uint64),
	}
}

func (st *shardTortureState) record(node proto.NodeID, r shardRec) {
	st.mu.Lock()
	if st.seqs[node] == nil {
		st.seqs[node] = make([][]shardRec, st.shards)
		st.counts[node] = make([]uint64, st.shards)
	}
	st.seqs[node][r.shard] = append(st.seqs[node][r.shard], r)
	st.merged[node] = append(st.merged[node], r)
	st.counts[node][r.shard]++
	st.mu.Unlock()
}

// snapshotCounts returns per-shard delivery counts summed across nodes.
func (st *shardTortureState) snapshotCounts() []uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]uint64, st.shards)
	for _, c := range st.counts {
		for s, v := range c {
			out[s] += v
		}
	}
	return out
}

// perNodeCounts returns a copy of every node's per-shard counts.
func (st *shardTortureState) perNodeCounts() map[proto.NodeID][]uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make(map[proto.NodeID][]uint64, len(st.counts))
	for id, c := range st.counts {
		out[id] = append([]uint64(nil), c...)
	}
	return out
}

// ShardTorture boots the cluster, runs the seeded per-shard fault
// program under keyed load, and checks the multi-ring invariants:
//
//   - isolation: while one shard is blacked out, every other shard keeps
//     delivering (faulting one ring never stalls its siblings);
//   - recovery: after the final heal, every shard delivers fresh traffic
//     on every node;
//   - per-shard safety: no duplicate deliveries, per-sender FIFO, and
//     pairwise order agreement on the messages two nodes share;
//   - with CrossOrder: the same pairwise agreement over each node's full
//     merged cross-shard sequence.
func ShardTorture(opt ShardTortureOptions) (*ShardTortureResult, error) {
	if opt.Nodes == 0 {
		opt.Nodes = 4
	}
	if opt.Networks == 0 {
		opt.Networks = 2
	}
	if opt.Shards == 0 {
		opt.Shards = 4
	}
	if opt.Shards < 2 {
		return nil, errors.New("live: shard torture needs Shards >= 2")
	}
	if opt.Style == "" {
		opt.Style = "passive"
	}
	if opt.Transport == "" {
		opt.Transport = "mem"
	}
	if opt.FaultWindows == 0 {
		opt.FaultWindows = 3
	}
	if opt.Window <= 0 {
		opt.Window = 300 * time.Millisecond
	}
	if opt.Heal <= 0 {
		opt.Heal = 200 * time.Millisecond
	}
	if opt.LoadInterval <= 0 {
		opt.LoadInterval = 2 * time.Millisecond
	}
	if opt.SettleTimeout <= 0 {
		opt.SettleTimeout = 5 * time.Second
	}
	style, err := torture.StyleByName(opt.Style)
	if err != nil {
		return nil, err
	}
	np := DefaultNetemParams(opt.Seed)
	if opt.Netem != nil {
		np = *opt.Netem
	}
	nm := NewNetem(opt.Networks, np)
	st := newShardTortureState(opt.Shards)
	res := &ShardTortureResult{}
	violate := func(format string, args ...interface{}) {
		res.Violations = append(res.Violations, fmt.Sprintf(format, args...))
	}

	// Boot. UDP sockets all bind before peer wiring, as in the main
	// harness.
	var (
		hub   *transport.MemHub
		udps  map[proto.NodeID]*transport.UDPTransport
		addrs map[proto.NodeID][]string
	)
	order := make([]proto.NodeID, 0, opt.Nodes)
	for i := 1; i <= opt.Nodes; i++ {
		order = append(order, proto.NodeID(i))
	}
	peersOf := func(id proto.NodeID) []proto.NodeID {
		out := make([]proto.NodeID, 0, len(order)-1)
		for _, p := range order {
			if p != id {
				out = append(out, p)
			}
		}
		return out
	}
	switch opt.Transport {
	case "mem":
		hub = transport.NewMemHub(opt.Networks)
	case "udp":
		udps = make(map[proto.NodeID]*transport.UDPTransport)
		addrs = make(map[proto.NodeID][]string)
		listen := make([]string, opt.Networks)
		for i := range listen {
			listen[i] = "127.0.0.1:0"
		}
		for _, id := range order {
			t, err := transport.NewUDP(transport.UDPConfig{ID: id, Listen: listen, WirePath: opt.WirePath})
			if err != nil {
				return nil, err
			}
			udps[id] = t
			addrs[id] = t.LocalAddrs()
		}
		for _, id := range order {
			for _, peer := range order {
				if peer != id {
					if err := udps[id].AddPeer(peer, addrs[peer]); err != nil {
						return nil, err
					}
				}
			}
		}
	default:
		return nil, fmt.Errorf("live: unknown transport %q", opt.Transport)
	}

	nodes := make(map[proto.NodeID]*totem.Node, opt.Nodes)
	imps := make(map[proto.NodeID]*Impaired, opt.Nodes)
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
		for _, imp := range imps {
			imp.Close()
		}
	}()
	for _, id := range order {
		var inner transport.Transport
		if hub != nil {
			t, err := hub.Join(id)
			if err != nil {
				return nil, err
			}
			inner = t
		} else {
			inner = udps[id]
		}
		imp := Impair(inner, id, peersOf(id), nm)
		imps[id] = imp
		n, err := totem.NewNode(totem.Config{
			ID:          id,
			Networks:    opt.Networks,
			Replication: style,
			Shards:      opt.Shards,
			CrossOrder:  opt.CrossOrder,
			Tune: func(o *totem.Options) {
				liveTune(o)
				o.MarkerInterval = 5 * time.Millisecond
			},
		}, imp)
		if err != nil {
			imp.Close()
			return nil, fmt.Errorf("live: node %v: %w", id, err)
		}
		nodes[id] = n
	}

	// Wait for every shard of every node to install full membership.
	deadline := time.Now().Add(20 * time.Second)
	for {
		ready := true
		for _, n := range nodes {
			if !n.Operational() {
				ready = false
				break
			}
			for s := 0; s < opt.Shards; s++ {
				if _, members := n.RingOf(s); len(members) != opt.Nodes {
					ready = false
					break
				}
			}
		}
		if ready {
			break
		}
		if time.Now().After(deadline) {
			return nil, errors.New("live: sharded rings did not form")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Recorders: one consumer per node, decoding the payload we encode in
	// the load loop ("sender/seq").
	var recWG sync.WaitGroup
	var delivered atomic.Uint64
	for _, id := range order {
		recWG.Add(1)
		go func(id proto.NodeID, n *totem.Node) {
			defer recWG.Done()
			for d := range n.Deliveries() {
				var sender, seq int
				if _, err := fmt.Sscanf(string(d.Payload), "%d/%d", &sender, &seq); err != nil {
					continue
				}
				st.record(id, shardRec{sender: proto.NodeID(sender), seq: seq, shard: d.Shard})
				delivered.Add(1)
			}
		}(id, nodes[id])
	}

	// Keyed load: every node spreads a seeded key stream over the shards
	// until stopLoad closes. ErrBackpressure retries; a send rejected
	// because its shard is mid-reconfiguration is simply skipped (the
	// checker tracks delivered traffic, not offered traffic).
	stopLoad := make(chan struct{})
	var loadWG sync.WaitGroup
	for _, id := range order {
		loadWG.Add(1)
		go func(id proto.NodeID, n *totem.Node) {
			defer loadWG.Done()
			rng := rand.New(rand.NewSource(opt.Seed ^ int64(id)<<16))
			seq := 0
			tick := time.NewTicker(opt.LoadInterval)
			defer tick.Stop()
			for {
				select {
				case <-stopLoad:
					return
				case <-tick.C:
					key := []byte(fmt.Sprintf("key-%d", rng.Intn(64*opt.Shards)))
					payload := []byte(fmt.Sprintf("%d/%d", id, seq))
					seq++
					if err := n.SendKeyed(key, payload); err == totem.ErrBackpressure {
						time.Sleep(opt.LoadInterval)
					}
				}
			}
		}(id, nodes[id])
	}

	// The seeded fault program: FaultWindows windows, each blacking out
	// one shard — even windows lose the whole shard cluster-wide, odd
	// windows silence one node's shard interface — with the non-stall
	// assertion judged over each window.
	rng := rand.New(rand.NewSource(opt.Seed))
	for w := 0; w < opt.FaultWindows; w++ {
		sh := rng.Intn(opt.Shards)
		victim := order[rng.Intn(len(order))]
		wholeShard := w%2 == 0
		before := st.snapshotCounts()
		if wholeShard {
			nm.SetShardLoss(sh, 1.0)
		} else {
			nm.BlockShard(victim, sh, true)
		}
		time.Sleep(opt.Window)
		after := st.snapshotCounts()
		for s := 0; s < opt.Shards; s++ {
			if s == sh {
				continue
			}
			if after[s] <= before[s] {
				violate("window %d: shard %d stalled while shard %d was faulted (%d -> %d deliveries)",
					w, s, sh, before[s], after[s])
			}
		}
		if wholeShard {
			nm.SetShardLoss(sh, 0)
		} else {
			nm.BlockShard(victim, sh, false)
		}
		time.Sleep(opt.Heal)
		res.Windows++
	}

	// Post-heal recovery: every shard of every node must deliver fresh
	// traffic once the faults are gone.
	nm.HealAll()
	healDeadline := time.Now().Add(opt.SettleTimeout)
	base := st.perNodeCounts()
	for {
		recovered := true
		now := st.perNodeCounts()
		for _, id := range order {
			for s := 0; s < opt.Shards; s++ {
				if len(now[id]) == 0 || now[id][s] <= baseCount(base, id, s) {
					recovered = false
				}
			}
		}
		if recovered {
			break
		}
		if time.Now().After(healDeadline) {
			for _, id := range order {
				for s := 0; s < opt.Shards; s++ {
					if len(now[id]) == 0 || now[id][s] <= baseCount(base, id, s) {
						violate("post-heal: node %v shard %d delivered nothing after HealAll", id, s)
					}
				}
			}
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	close(stopLoad)
	loadWG.Wait()
	// Let in-flight ordering drain, then stop the cluster so the recorded
	// sequences are final.
	time.Sleep(300 * time.Millisecond)
	for _, n := range nodes {
		n.Close()
	}
	recWG.Wait()

	st.check(order, violate, opt.CrossOrder)

	res.Delivered = delivered.Load()
	res.PerShardDelivered = st.snapshotCounts()
	for s, c := range res.PerShardDelivered {
		if c == 0 {
			violate("shard %d delivered nothing over the whole run", s)
		}
	}
	return res, nil
}

func baseCount(m map[proto.NodeID][]uint64, id proto.NodeID, s int) uint64 {
	if c, ok := m[id]; ok && s < len(c) {
		return c[s]
	}
	return 0
}

// check runs the end-of-run safety invariants over the recorded
// sequences.
func (st *shardTortureState) check(order []proto.NodeID, violate func(string, ...interface{}), crossOrder bool) {
	st.mu.Lock()
	defer st.mu.Unlock()

	key := func(r shardRec) string { return fmt.Sprintf("%v/%d/%d", r.sender, r.seq, r.shard) }

	for _, id := range order {
		seqs := st.seqs[id]
		for s, seq := range seqs {
			// No duplicates, and per-sender FIFO within the shard.
			seen := make(map[string]bool, len(seq))
			last := make(map[proto.NodeID]int)
			for _, r := range seq {
				k := key(r)
				if seen[k] {
					violate("node %v shard %d delivered %s twice", id, s, k)
				}
				seen[k] = true
				if prev, ok := last[r.sender]; ok && r.seq <= prev {
					violate("node %v shard %d broke sender %v FIFO: seq %d after %d", id, s, r.sender, r.seq, prev)
				}
				last[r.sender] = r.seq
			}
		}
	}

	// Pairwise order agreement: restricted to the messages both nodes
	// delivered, the relative order must match — per shard always, and
	// over the merged sequence under CrossOrder.
	agree := func(what string, a, b []shardRec, na, nb proto.NodeID) {
		pos := make(map[string]int, len(b))
		for i, r := range b {
			pos[key(r)] = i
		}
		lastPos := -1
		var lastKey string
		for _, r := range a {
			p, ok := pos[key(r)]
			if !ok {
				continue
			}
			if p <= lastPos {
				violate("%s: nodes %v and %v disagree on order of %s vs %s", what, na, nb, lastKey, key(r))
				return
			}
			lastPos, lastKey = p, key(r)
		}
	}
	for i := 0; i < len(order); i++ {
		for j := i + 1; j < len(order); j++ {
			a, b := order[i], order[j]
			for s := 0; s < st.shards; s++ {
				var sa, sb []shardRec
				if st.seqs[a] != nil {
					sa = st.seqs[a][s]
				}
				if st.seqs[b] != nil {
					sb = st.seqs[b][s]
				}
				agree(fmt.Sprintf("shard %d", s), sa, sb, a, b)
			}
			if crossOrder {
				agree("cross-order merge", st.merged[a], st.merged[b], a, b)
			}
		}
	}

	// Sanity on the checker itself: sequences must be non-trivial.
	var total int
	for _, id := range order {
		for _, seq := range st.seqs[id] {
			total += len(seq)
		}
	}
	if total == 0 {
		violate("no deliveries recorded at all")
	}
}
