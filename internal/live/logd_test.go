package live

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/totem-rrp/totem/internal/logd/logtest"
	"github.com/totem-rrp/totem/logdclient"
)

func newTestCluster(t *testing.T, nodes int) *LogdCluster {
	t.Helper()
	c, err := NewLogdCluster(LogdClusterOptions{
		Nodes: nodes,
		Dir:   t.TempDir(),
		Logf:  t.Logf,
	})
	if err != nil {
		t.Fatalf("NewLogdCluster: %v", err)
	}
	t.Cleanup(c.Close)
	if err := c.WaitLive(30 * time.Second); err != nil {
		t.Fatalf("WaitLive: %v", err)
	}
	return c
}

// verifyEverywhere checks the conformance table against every member and
// that all members hold the byte-identical log.
func verifyEverywhere(t *testing.T, c *LogdCluster, ck *logtest.Checker) {
	t.Helper()
	if err := c.WaitConverged(30 * time.Second); err != nil {
		t.Fatalf("WaitConverged: %v", err)
	}
	ctx := context.Background()
	var ref []string
	for i, ep := range c.Endpoints() {
		ck.Verify(t, ctx, ep)
		log := logtest.FetchAll(t, ctx, ep)
		flat := make([]string, len(log))
		for j, rec := range log {
			flat[j] = fmt.Sprintf("%d|%d|%s|%d|%s", rec.Offset, rec.Kind, rec.Client, rec.Seq, rec.Payload)
		}
		if i == 0 {
			ref = flat
			continue
		}
		if len(flat) != len(ref) {
			t.Fatalf("member %d log length %d != member 0 length %d", i, len(flat), len(ref))
		}
		for j := range flat {
			if flat[j] != ref[j] {
				t.Fatalf("member %d offset %d: %s != member 0's %s", i, j, flat[j], ref[j])
			}
		}
	}
}

// TestLogdLiveConformance runs the model-checked conformance table
// against a 4-node live ring — the live half of the sim-vs-live
// differential whose sim half runs in internal/logd.
func TestLogdLiveConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("live logd conformance is not a -short test")
	}
	c := newTestCluster(t, 4)
	ck := logtest.Run(t, c.Endpoints(), logtest.RunOptions{Clients: 4, Appends: 20})
	verifyEverywhere(t, c, ck)
}

// tortureLoad runs sustained client traffic until stop closes, recording
// every acknowledgement. Failed appends (mid-crash windows) are counted,
// not fatal: the conformance checker judges only what was acknowledged.
func tortureLoad(t *testing.T, c *LogdCluster, writers int, stop <-chan struct{}) (*logtest.Checker, *sync.WaitGroup, *atomic.Uint64, *atomic.Uint64) {
	t.Helper()
	ck := &logtest.Checker{}
	var wg sync.WaitGroup
	var acked, failed atomic.Uint64
	eps := c.Endpoints()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := fmt.Sprintf("torture-%d", w)
			rot := append(append([]string(nil), eps[w%len(eps):]...), eps[:w%len(eps)]...)
			cl, err := logdclient.New(logdclient.Options{
				Endpoints:   rot,
				ID:          id,
				MaxAttempts: 10,
				BaseBackoff: 10 * time.Millisecond,
				MaxBackoff:  300 * time.Millisecond,
			})
			if err != nil {
				t.Errorf("writer %d: %v", w, err)
				return
			}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				payload := fmt.Sprintf("%s:%d", id, i)
				off, err := cl.Append(ctx, []byte(payload))
				cancel()
				if err != nil {
					if errors.Is(err, context.Canceled) {
						return
					}
					failed.Add(1)
					continue
				}
				seq, _ := cl.LastAcked()
				ck.Acked(id, seq, off, payload)
				acked.Add(1)
			}
		}(w)
	}
	return ck, &wg, &acked, &failed
}

// TestLogdCrashRecoveryTorture is the crash-recovery satellite: kill -9
// one member mid-stream under sustained load, restart it, and prove the
// recovered log replays segments+snapshot to the exact acked prefix with
// zero lost and zero duplicate appends, while clients fail over
// idempotently.
func TestLogdCrashRecoveryTorture(t *testing.T) {
	if testing.Short() {
		t.Skip("crash-recovery torture is not a -short test")
	}
	c := newTestCluster(t, 4)
	stop := make(chan struct{})
	ck, wg, acked, failed := tortureLoad(t, c, 4, stop)

	time.Sleep(1 * time.Second) // records flowing
	preKill := acked.Load()
	t.Logf("killing member 1 (%d acks so far)", preKill)
	c.Kill(1)
	time.Sleep(1500 * time.Millisecond) // load continues through failover

	t.Logf("restarting member 1 (%d acks, %d failures)", acked.Load(), failed.Load())
	if err := c.Restart(1); err != nil {
		t.Fatalf("Restart: %v", err)
	}
	if err := c.WaitLive(60 * time.Second); err != nil {
		t.Fatalf("restarted member never caught up: %v", err)
	}
	time.Sleep(1 * time.Second) // load continues against the healed cluster
	close(stop)
	wg.Wait()

	if acked.Load() <= preKill {
		t.Fatalf("no appends acknowledged after the kill (%d total)", acked.Load())
	}
	st := c.Store(1)
	if st == nil || !st.Recovered() {
		t.Fatal("restarted member did not recover from stable storage")
	}
	t.Logf("recovery report: %+v; %d acks, %d transient failures", st.RecoveryReport(), acked.Load(), failed.Load())
	verifyEverywhere(t, c, ck)
}

// TestLogdUnderFaultsSoak is the nightly soak: sustained client load
// through a loss burst and a forced membership change (kill + restart),
// with full conformance verification at the end.
func TestLogdUnderFaultsSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("logd soak is not a -short test")
	}
	c := newTestCluster(t, 4)
	stop := make(chan struct{})
	ck, wg, acked, failed := tortureLoad(t, c, 6, stop)

	time.Sleep(1 * time.Second)

	// Phase 1: loss burst on network 0 — the redundant network carries
	// the ring through it.
	t.Log("soak: loss burst p=0.3 on network 0")
	c.Netem().SetLoss(0, 0.3)
	time.Sleep(2 * time.Second)
	c.Netem().SetLoss(0, 0)

	// Phase 2: forced membership change under load.
	t.Logf("soak: membership change (kill+restart member 2); %d acks", acked.Load())
	c.Kill(2)
	time.Sleep(1500 * time.Millisecond)
	if err := c.Restart(2); err != nil {
		t.Fatalf("Restart: %v", err)
	}
	if err := c.WaitLive(60 * time.Second); err != nil {
		t.Fatalf("cluster did not heal: %v", err)
	}

	// Phase 3: overlapping faults — loss burst while the ring re-forms
	// around a second membership change.
	t.Log("soak: loss burst + membership change together")
	c.Netem().SetLoss(1, 0.2)
	c.Kill(3)
	time.Sleep(1500 * time.Millisecond)
	c.Netem().SetLoss(1, 0)
	if err := c.Restart(3); err != nil {
		t.Fatalf("Restart: %v", err)
	}
	if err := c.WaitLive(60 * time.Second); err != nil {
		t.Fatalf("cluster did not heal after overlapping faults: %v", err)
	}
	time.Sleep(1 * time.Second)
	close(stop)
	wg.Wait()

	if acked.Load() == 0 {
		t.Fatal("soak acknowledged nothing")
	}
	t.Logf("soak: %d acks, %d transient failures", acked.Load(), failed.Load())
	verifyEverywhere(t, c, ck)
}
