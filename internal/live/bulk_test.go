package live

import (
	"bytes"
	"sync/atomic"
	"testing"
	"time"

	totem "github.com/totem-rrp/totem"
	"github.com/totem-rrp/totem/internal/proto"
)

// TestBulkUnderFaults runs a large SendBulk transfer through an impaired
// three-node ring: a loss burst on one network, then a full partition of
// one member long enough to force a configuration change, then healing.
// The windowed sender must rewind across the reconfigurations and the
// transfer must complete byte-exact at every member of the surviving
// configuration. This is the wall-clock analog of the deterministic
// harness tests in internal/srp/bulk_harness_test.go.
func TestBulkUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock harness")
	}
	const (
		nNodes   = 3
		networks = 2
	)
	payload := make([]byte, 16<<20)
	for i := range payload {
		payload[i] = byte(i*151 + i>>12)
	}

	nm := NewNetem(networks, NetemParams{Seed: 42})
	hub := totem.NewMemHub(networks)
	peers := func(id proto.NodeID) []proto.NodeID {
		out := make([]proto.NodeID, 0, nNodes-1)
		for p := proto.NodeID(1); p <= nNodes; p++ {
			if p != id {
				out = append(out, p)
			}
		}
		return out
	}

	type slot struct {
		n    *totem.Node
		imp  *Impaired
		bulk chan []byte
	}
	nodes := make([]*slot, nNodes)
	for i := range nodes {
		id := proto.NodeID(i + 1)
		inner, err := hub.Join(id)
		if err != nil {
			t.Fatalf("Join %v: %v", id, err)
		}
		imp := Impair(inner, id, peers(id), nm)
		n, err := totem.NewNode(totem.Config{
			ID:          id,
			Networks:    networks,
			Replication: proto.ReplicationActive,
			Tune:        liveTune,
		}, imp)
		if err != nil {
			t.Fatalf("node %v: %v", id, err)
		}
		s := &slot{n: n, imp: imp, bulk: make(chan []byte, 4)}
		nodes[i] = s
		go func() {
			for d := range n.Deliveries() {
				if d.Bulk {
					s.bulk <- d.Payload
				}
			}
		}()
		defer func() {
			n.Close()
			imp.Close()
		}()
	}

	// The SendBulk contract guarantees delivery only to members present in
	// every configuration the transfer spans. Node 2 should stay throughout,
	// but gather races can transiently exclude it (a momentary singleton at
	// the sender); watch the sender's config stream so the node 2 assertion
	// matches what the protocol actually promised this run.
	var node2Exiled atomic.Bool
	go func() {
		for c := range nodes[0].n.ConfigChanges() {
			if c.Transitional {
				continue
			}
			in := false
			for _, m := range c.Members {
				if m == 2 {
					in = true
				}
			}
			if !in {
				node2Exiled.Store(true)
			}
		}
	}()
	for _, s := range nodes[1:] {
		go func(ch <-chan totem.ConfigChange) {
			for range ch {
			}
		}(s.n.ConfigChanges())
	}

	deadline := time.Now().Add(15 * time.Second)
	for {
		ready := 0
		for _, s := range nodes {
			if s.n.Operational() {
				ready++
			}
		}
		if ready == nNodes {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("ring not operational: %d/%d nodes", ready, nNodes)
		}
		time.Sleep(5 * time.Millisecond)
	}

	xfer, err := nodes[0].n.SendBulk(payload)
	if err != nil {
		t.Fatalf("SendBulk: %v", err)
	}

	// Faults, gated on real progress so they land mid-transfer: a loss
	// burst immediately, then — once some bytes are acked but the transfer
	// is far from done — node 3 is cut off on every network until the ring
	// reconfigures without it, then healed so it merges back. The loss is
	// lifted before the cut: a lossy gather can transiently exclude node 2
	// too, and a member that leaves any configuration the transfer spans
	// is, per the SendBulk contract, not guaranteed the delivery this test
	// asserts.
	nm.SetLoss(0, 0.2)
	progressDeadline := time.Now().Add(30 * time.Second)
	for {
		acked, total := xfer.Progress()
		if acked > 0 && acked < total/2 {
			break
		}
		if acked >= total/2 || time.Now().After(progressDeadline) {
			t.Fatalf("no mid-transfer fault window: %d/%d bytes acked", acked, total)
		}
		select {
		case <-xfer.Done():
			t.Fatalf("transfer finished before faults landed: %v", xfer.Err())
		case <-time.After(time.Millisecond):
		}
	}
	nm.SetLoss(0, 0)
	for net := 0; net < networks; net++ {
		nm.BlockSend(3, net, true)
		nm.BlockRecv(3, net, true)
	}
	time.Sleep(700 * time.Millisecond)
	nm.HealAll()

	select {
	case <-xfer.Done():
	case <-time.After(120 * time.Second):
		acked, total := xfer.Progress()
		t.Fatalf("transfer stuck at %d/%d bytes under faults", acked, total)
	}
	if err := xfer.Err(); err != nil {
		t.Fatalf("transfer failed: %v", err)
	}

	// The sender stayed in every configuration by definition, so it must
	// deliver the payload byte-exact. Node 2 must too unless the sender
	// installed a configuration without it; node 3 left mid-stream. Members
	// outside the guarantee may miss the delivery, but anything they do
	// deliver must still be byte-exact.
	select {
	case got := <-nodes[0].bulk:
		if !bytes.Equal(got, payload) {
			t.Fatalf("node 1: bulk payload mismatch (%d bytes, want %d)", len(got), len(payload))
		}
	case <-time.After(60 * time.Second):
		t.Fatalf("node 1: no bulk delivery")
	}
	if !node2Exiled.Load() {
		select {
		case got := <-nodes[1].bulk:
			if !bytes.Equal(got, payload) {
				t.Fatalf("node 2: bulk payload mismatch (%d bytes, want %d)", len(got), len(payload))
			}
		case <-time.After(60 * time.Second):
			t.Fatalf("node 2: no bulk delivery despite staying in every configuration")
		}
	}
	for _, i := range []int{1, 2} {
		select {
		case got := <-nodes[i].bulk:
			if !bytes.Equal(got, payload) {
				t.Fatalf("node %d: corrupt bulk delivery (%d bytes, want %d)", i+1, len(got), len(payload))
			}
		default:
		}
	}
}
