package live

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	totem "github.com/totem-rrp/totem"
	"github.com/totem-rrp/totem/internal/proto"
	"github.com/totem-rrp/totem/internal/transport"
)

// ShardBenchOptions parameterises one multi-ring scaling run: a cluster
// on the in-memory transport with a uniform per-datagram latency floor,
// so a single ring is bounded by its token rotation — the regime the
// paper's LAN testbed lives in, and the one sharding exists to break.
// Measuring CPU-bound loopback instead would conflate ring-count scaling
// with core-count scaling.
type ShardBenchOptions struct {
	// Nodes is the ring size (default 4); Networks the redundant network
	// count (default 2).
	Nodes    int
	Networks int
	// Shards is M, the ring count under test (default 1).
	Shards int
	// MsgLen is the payload size in bytes (default 100).
	MsgLen int
	// Duration is the measurement window (default 1s).
	Duration time.Duration
	// Warmup bounds the wait for all rings to form (default 15s).
	Warmup time.Duration
	// RotateLat is the per-datagram latency floor emulating the LAN
	// (default 250µs on every network, uniformly, so the RRP monitors see
	// symmetric networks).
	RotateLat time.Duration
}

// ShardBenchPoint is one measured multi-ring run.
type ShardBenchPoint struct {
	Shards   int `json:"shards"`
	Nodes    int `json:"nodes"`
	Networks int `json:"networks"`
	MsgLen   int `json:"msg_len"`
	// DurationSec is the measured window on the wall clock.
	DurationSec float64 `json:"duration_sec"`
	// Delivered is the total delivery count across nodes and shards in
	// the window; MsgsPerSec is aggregate ordered messages per second
	// (delivered / nodes / duration) — the sharding scaling y-axis.
	Delivered  uint64  `json:"delivered"`
	MsgsPerSec float64 `json:"msgs_per_sec"`
	KBPerSec   float64 `json:"kbytes_per_sec"`
	// PerShardMsgsPerSec breaks the aggregate down by ring, exposing
	// imbalance (each entry is that shard's ordered msgs/s per node).
	PerShardMsgsPerSec []float64 `json:"per_shard_msgs_per_sec"`
}

// benchShardFunc pins each key's first byte to a shard, letting the
// saturation senders address rings directly.
func benchShardFunc(key []byte, shards int) int {
	if len(key) == 0 {
		return 0
	}
	return int(key[0]) % shards
}

// ShardBench boots the cluster with M rings, waits for every ring to
// form, drives every (node, shard) pair at saturation for the window and
// reports the aggregate.
func ShardBench(opt ShardBenchOptions) (*ShardBenchPoint, error) {
	if opt.Nodes <= 0 {
		opt.Nodes = 4
	}
	if opt.Networks <= 0 {
		opt.Networks = 2
	}
	if opt.Shards <= 0 {
		opt.Shards = 1
	}
	if opt.MsgLen <= 0 {
		opt.MsgLen = 100
	}
	if opt.Duration <= 0 {
		opt.Duration = time.Second
	}
	if opt.Warmup <= 0 {
		opt.Warmup = 15 * time.Second
	}
	if opt.RotateLat <= 0 {
		opt.RotateLat = 250 * time.Microsecond
	}

	// Zero baseline impairment: the netem layer is here only for its
	// uniform latency floor.
	nm := NewNetem(opt.Networks, NetemParams{Seed: 1})
	for i := 0; i < opt.Networks; i++ {
		nm.SetSlowNet(i, opt.RotateLat)
	}
	hub := transport.NewMemHub(opt.Networks)

	order := make([]proto.NodeID, 0, opt.Nodes)
	for i := 1; i <= opt.Nodes; i++ {
		order = append(order, proto.NodeID(i))
	}
	peersOf := func(id proto.NodeID) []proto.NodeID {
		out := make([]proto.NodeID, 0, len(order)-1)
		for _, p := range order {
			if p != id {
				out = append(out, p)
			}
		}
		return out
	}

	var delivered atomic.Uint64
	perShard := make([]atomic.Uint64, opt.Shards)

	nodes := make([]*totem.Node, 0, opt.Nodes)
	imps := make([]*Impaired, 0, opt.Nodes)
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
		for _, imp := range imps {
			imp.Close()
		}
	}()
	for _, id := range order {
		inner, err := hub.Join(id)
		if err != nil {
			return nil, err
		}
		imp := Impair(inner, id, peersOf(id), nm)
		imps = append(imps, imp)
		n, err := totem.NewNode(totem.Config{
			ID:          id,
			Networks:    opt.Networks,
			Replication: proto.ReplicationActive,
			Shards:      opt.Shards,
			ShardFunc:   benchShardFunc,
			Tune: func(o *totem.Options) {
				liveTune(o)
				// A small flow-control window keeps the ring in the
				// rotation-bound regime the latency floor establishes: the
				// point is rings×rotation scaling, not queue depth.
				o.SRP.WindowSize = 16
				o.SRP.MaxPerVisit = 4
				o.DeliveryTap = func(d totem.Delivery) {
					delivered.Add(1)
					if d.Shard < len(perShard) {
						perShard[d.Shard].Add(1)
					}
				}
			},
		}, imp)
		if err != nil {
			imp.Close()
			return nil, fmt.Errorf("shardbench: node %v: %w", id, err)
		}
		nodes = append(nodes, n)
		go func(ch <-chan totem.Delivery) {
			for range ch {
			}
		}(n.Deliveries())
	}

	// Every ring of every node operational before the clock starts.
	deadline := time.Now().Add(opt.Warmup)
	for {
		ready := true
		for _, n := range nodes {
			if !n.Operational() {
				ready = false
				break
			}
			for s := 0; s < opt.Shards; s++ {
				if _, members := n.RingOf(s); len(members) != opt.Nodes {
					ready = false
					break
				}
			}
		}
		if ready {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("shardbench: %d rings not operational after %s", opt.Shards, opt.Warmup)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Saturation: one submitter per (node, shard) pair, each pinned to
	// its ring through the bench shard func.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, n := range nodes {
		for s := 0; s < opt.Shards; s++ {
			wg.Add(1)
			go func(n *totem.Node, s int) {
				defer wg.Done()
				key := []byte{byte(s)}
				payload := make([]byte, opt.MsgLen)
				for {
					select {
					case <-stop:
						return
					default:
					}
					if err := n.SendKeyed(key, payload); err != nil {
						time.Sleep(100 * time.Microsecond)
					}
				}
			}(n, s)
		}
	}

	// Fill the pipelines, then measure.
	time.Sleep(300 * time.Millisecond)
	startCount := delivered.Load()
	startShard := make([]uint64, opt.Shards)
	for s := range perShard {
		startShard[s] = perShard[s].Load()
	}
	start := time.Now()
	time.Sleep(opt.Duration)
	window := time.Since(start)
	endCount := delivered.Load()
	close(stop)
	wg.Wait()

	p := &ShardBenchPoint{
		Shards:      opt.Shards,
		Nodes:       opt.Nodes,
		Networks:    opt.Networks,
		MsgLen:      opt.MsgLen,
		DurationSec: window.Seconds(),
		Delivered:   endCount - startCount,
	}
	msgs := float64(p.Delivered) / float64(opt.Nodes)
	p.MsgsPerSec = msgs / window.Seconds()
	p.KBPerSec = p.MsgsPerSec * float64(opt.MsgLen) / 1024
	for s := range perShard {
		d := float64(perShard[s].Load()-startShard[s]) / float64(opt.Nodes)
		p.PerShardMsgsPerSec = append(p.PerShardMsgsPerSec, d/window.Seconds())
	}
	return p, nil
}
