package live

import (
	"testing"
	"time"

	"github.com/totem-rrp/totem/internal/proto"
	"github.com/totem-rrp/totem/internal/torture"
)

// TestNetemVerdicts pins the impairment layer's fault semantics without
// any protocol in the loop.
func TestNetemVerdicts(t *testing.T) {
	peers := []proto.NodeID{2, 3}
	nm := NewNetem(2, NetemParams{Seed: 1})

	if v := nm.judgeSend(1, proto.BroadcastID, 0, peers); v.drop {
		t.Fatal("clean network dropped a broadcast")
	}
	nm.KillNetwork(0)
	if v := nm.judgeSend(1, proto.BroadcastID, 0, peers); !v.drop {
		t.Fatal("dead network did not drop")
	}
	if !nm.dropRecv(1, 0) {
		t.Fatal("dead network did not drop on receive")
	}
	if v := nm.judgeSend(1, proto.BroadcastID, 1, peers); v.drop {
		t.Fatal("network 1 affected by network 0's death")
	}
	nm.ReviveNetwork(0)
	if v := nm.judgeSend(1, proto.BroadcastID, 0, peers); v.drop {
		t.Fatal("revived network still dropping")
	}

	nm.SetLoss(0, 1)
	if v := nm.judgeSend(1, proto.BroadcastID, 0, peers); !v.drop {
		t.Fatal("loss probability 1 did not drop")
	}
	nm.SetLoss(0, 0)

	nm.BlockSend(1, 0, true)
	if v := nm.judgeSend(1, proto.BroadcastID, 0, peers); !v.drop {
		t.Fatal("blocked sender not dropped")
	}
	if v := nm.judgeSend(2, proto.BroadcastID, 0, peers); v.drop {
		t.Fatal("block-send leaked to another node")
	}
	nm.BlockSend(1, 0, false)

	nm.BlockRecv(2, 1, true)
	if !nm.dropRecv(2, 1) {
		t.Fatal("blocked receiver not dropped")
	}
	if nm.dropRecv(2, 0) || nm.dropRecv(3, 1) {
		t.Fatal("block-recv leaked to another network or node")
	}
	nm.BlockRecv(2, 1, false)

	// Partition {1} | {2,3} on network 0: broadcasts expand to same-group
	// unicasts, cross-group unicast drops, network 1 unaffected.
	nm.Partition(0, map[proto.NodeID]int{1: 0, 2: 1, 3: 1})
	if v := nm.judgeSend(1, proto.BroadcastID, 0, peers); !v.drop && v.expand != nil {
		t.Fatalf("isolated node's broadcast expanded to %v, want drop", v.expand)
	}
	v := nm.judgeSend(2, proto.BroadcastID, 0, []proto.NodeID{1, 3})
	if v.drop || len(v.expand) != 1 || v.expand[0] != 3 {
		t.Fatalf("majority-side broadcast verdict %+v, want unicast expansion to [3]", v)
	}
	if v := nm.judgeSend(2, 1, 0, nil); !v.drop {
		t.Fatal("cross-partition unicast not dropped")
	}
	if v := nm.judgeSend(2, 3, 0, nil); v.drop {
		t.Fatal("same-group unicast dropped")
	}
	if v := nm.judgeSend(1, proto.BroadcastID, 1, peers); v.drop || v.expand != nil {
		t.Fatal("partition on network 0 leaked onto network 1")
	}
	nm.Partition(0, nil)
	if v := nm.judgeSend(2, 1, 0, nil); v.drop {
		t.Fatal("healed partition still dropping")
	}

	nm.KillNetwork(1)
	nm.SetLoss(0, 0.5)
	nm.BlockSend(3, 0, true)
	nm.HealAll()
	if nm.dropRecv(1, 1) {
		t.Fatal("HealAll left network 1 down")
	}
	if v := nm.judgeSend(3, proto.BroadcastID, 0, peers); v.drop {
		t.Fatal("HealAll left node 3 blocked")
	}
}

// liveProgram is a fixed, moderately adversarial program for transport
// smoke tests: loss, an outage and an interface fault, with load light
// enough for CI machines.
func liveProgram(seed int64, style proto.ReplicationStyle) torture.Program {
	p := torture.Program{
		Seed:        seed,
		Style:       style.String(),
		Nodes:       3,
		Networks:    2,
		Warmup:      1500 * time.Millisecond,
		FaultWindow: 2 * time.Second,
		Tail:        3 * time.Second,

		LoadInterval: 20 * time.Millisecond,
		PayloadLen:   64,
	}
	if style == proto.ReplicationActivePassive {
		p.K = 2
		p.Networks = 3
	}
	p.Ops = []torture.Op{
		{Kind: torture.OpLossBurst, At: 100 * time.Millisecond, Dur: 500 * time.Millisecond, Net: 0, P: 0.3},
		{Kind: torture.OpNetDown, At: 800 * time.Millisecond, Dur: 600 * time.Millisecond, Net: p.Networks - 1},
		{Kind: torture.OpBlockRecv, At: 1600 * time.Millisecond, Dur: 300 * time.Millisecond, Net: 0, Node: 2},
	}
	return p
}

// TestLiveMemStyles runs one impaired conformance program per replication
// style on the in-memory transport.
func TestLiveMemStyles(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock harness")
	}
	for _, style := range []proto.ReplicationStyle{
		proto.ReplicationActive, proto.ReplicationPassive, proto.ReplicationActivePassive,
	} {
		style := style
		t.Run(style.String(), func(t *testing.T) {
			res, err := Execute(liveProgram(7, style), Options{Transport: "mem", TimeScale: 0.3})
			if err != nil {
				t.Fatal(err)
			}
			if res.Violation != nil {
				t.Fatalf("violation: %s\ntrace tail:\n%s", res.Violation, tail(res.TraceTail))
			}
			if res.Delivered == 0 {
				t.Fatal("run delivered nothing")
			}
			if res.FinalMembers == nil {
				t.Fatal("no agreed final membership")
			}
		})
	}
}

// TestLiveUDP runs one impaired conformance program over real loopback
// UDP sockets.
func TestLiveUDP(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock harness")
	}
	res, err := Execute(liveProgram(11, proto.ReplicationPassive), Options{Transport: "udp", TimeScale: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("violation: %s\ntrace tail:\n%s", res.Violation, tail(res.TraceTail))
	}
	if res.Delivered == 0 {
		t.Fatal("run delivered nothing")
	}
}

// TestLiveCrashRestart exercises the fail-stop path: the dead node's
// transport goes with it, the new incarnation rejoins on fresh sockets
// and the ring must re-absorb it before the end-of-run checks.
func TestLiveCrashRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock harness")
	}
	p := liveProgram(13, proto.ReplicationActive)
	p.Ops = append(p.Ops, torture.Op{
		Kind: torture.OpCrash, At: 400 * time.Millisecond, Dur: 800 * time.Millisecond, Node: 3,
	})
	res, err := Execute(p, Options{Transport: "mem", TimeScale: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("violation: %s\ntrace tail:\n%s", res.Violation, tail(res.TraceTail))
	}
	if len(res.FinalMembers) != p.Nodes {
		t.Fatalf("final membership %v, want all %d nodes back", res.FinalMembers, p.Nodes)
	}
}

// TestDifferential replays one mild program on both backends and demands
// agreement.
func TestDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock harness")
	}
	rep, err := Differential(DiffProgram(3, proto.ReplicationPassive), Options{Transport: "mem", TimeScale: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("backends disagree:\n%s", tail(rep.Mismatches))
	}
}

func tail(lines []string) string {
	const n = 40
	if len(lines) > n {
		lines = lines[len(lines)-n:]
	}
	out := ""
	for _, l := range lines {
		out += l + "\n"
	}
	return out
}
