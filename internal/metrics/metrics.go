// Package metrics is a tiny named-counter/gauge registry: the single
// source of truth for every statistic the stack maintains. Machines hold
// resolved *Counter pointers, so the hot path pays one atomic add per
// increment and zero allocations; consumers (Stats views, debug
// endpoints, benchmarks) read a consistent ordered snapshot by name.
package metrics

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Var is a readable metric value.
type Var interface {
	Value() int64
}

// Counter is a monotonically increasing metric. Safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds d.
func (c *Counter) Add(d uint64) { c.v.Add(d) }

// Count returns the current value.
func (c *Counter) Count() uint64 { return c.v.Load() }

// Value implements Var.
func (c *Counter) Value() int64 { return int64(c.v.Load()) }

// Gauge is a settable instantaneous metric. Safe for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the value by d (may be negative).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value implements Var.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Func is a sampled gauge: its value is computed at read time (e.g. a
// queue depth). The function must be safe to call from any goroutine.
type Func func() int64

// Value implements Var.
func (f Func) Value() int64 { return f() }

// Registry is a namespace of metrics keyed by dotted names
// (e.g. "srp.tokens_received", "rrp.net0.tx_packets"). The zero value is
// not usable; construct with NewRegistry. Registration is get-or-create,
// so independent layers can resolve the same name to the same counter.
type Registry struct {
	mu    sync.Mutex
	names []string // registration order
	vars  map[string]Var
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{vars: make(map[string]Var)}
}

// Counter returns the counter registered under name, creating it on first
// use. It panics if the name is already registered as a different type:
// that is a programming error, not a runtime condition.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if v, ok := r.vars[name]; ok {
		c, ok := v.(*Counter)
		if !ok {
			panic(fmt.Sprintf("metrics: %q registered as %T, not Counter", name, v))
		}
		return c
	}
	c := new(Counter)
	r.register(name, c)
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if v, ok := r.vars[name]; ok {
		g, ok := v.(*Gauge)
		if !ok {
			panic(fmt.Sprintf("metrics: %q registered as %T, not Gauge", name, v))
		}
		return g
	}
	g := new(Gauge)
	r.register(name, g)
	return g
}

// RegisterFunc registers a sampled gauge under name. Re-registering a
// name replaces the previous function (the last writer wins), which lets
// a restarted component re-bind its closures.
func (r *Registry) RegisterFunc(name string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.vars[name]; ok {
		r.vars[name] = Func(fn)
		return
	}
	r.register(name, Func(fn))
}

// register adds a new name; callers hold r.mu.
func (r *Registry) register(name string, v Var) {
	r.vars[name] = v
	r.names = append(r.names, name)
}

// Get returns the current value of the named metric.
func (r *Registry) Get(name string) (int64, bool) {
	r.mu.Lock()
	v, ok := r.vars[name]
	r.mu.Unlock()
	if !ok {
		return 0, false
	}
	return v.Value(), true
}

// Sample is one (name, value) pair of a snapshot.
type Sample struct {
	Name  string
	Value int64
}

// Snapshot reads every metric and returns the samples sorted by name, so
// output is stable regardless of registration order.
func (r *Registry) Snapshot() []Sample {
	r.mu.Lock()
	names := make([]string, len(r.names))
	copy(names, r.names)
	vars := make([]Var, len(names))
	for i, n := range names {
		vars[i] = r.vars[n]
	}
	r.mu.Unlock()
	out := make([]Sample, len(names))
	for i, n := range names {
		out[i] = Sample{Name: n, Value: vars[i].Value()}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WriteJSON writes the snapshot as a single flat JSON object, one member
// per metric, sorted by name. Names are restricted to identifier-ish
// runes by convention but are quoted defensively anyway.
func (r *Registry) WriteJSON(w io.Writer) error {
	samples := r.Snapshot()
	var buf []byte
	buf = append(buf, '{')
	for i, s := range samples {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, '\n', ' ', ' ')
		buf = strconv.AppendQuote(buf, s.Name)
		buf = append(buf, ':', ' ')
		buf = strconv.AppendInt(buf, s.Value, 10)
	}
	if len(samples) > 0 {
		buf = append(buf, '\n')
	}
	buf = append(buf, '}', '\n')
	_, err := w.Write(buf)
	return err
}
