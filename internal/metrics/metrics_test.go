package metrics

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestCounterGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x.count")
	b := r.Counter("x.count")
	if a != b {
		t.Fatal("same name should resolve to the same counter")
	}
	a.Inc()
	b.Add(2)
	if got := a.Count(); got != 3 {
		t.Fatalf("count = %d, want 3", got)
	}
	if v, ok := r.Get("x.count"); !ok || v != 3 {
		t.Fatalf("Get = %d,%v, want 3,true", v, ok)
	}
}

func TestGaugeAndFunc(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth")
	g.Set(5)
	g.Add(-2)
	if v, _ := r.Get("depth"); v != 3 {
		t.Fatalf("gauge = %d, want 3", v)
	}
	n := int64(0)
	r.RegisterFunc("sampled", func() int64 { return n })
	n = 41
	if v, _ := r.Get("sampled"); v != 41 {
		t.Fatalf("func gauge = %d, want 41", v)
	}
	// Re-registering replaces the function.
	r.RegisterFunc("sampled", func() int64 { return 7 })
	if v, _ := r.Get("sampled"); v != 7 {
		t.Fatalf("replaced func gauge = %d, want 7", v)
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on type mismatch")
		}
	}()
	r.Gauge("m")
}

func TestSnapshotSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Inc()
	r.Counter("a").Add(2)
	r.Gauge("c").Set(-1)
	s := r.Snapshot()
	if len(s) != 3 {
		t.Fatalf("len = %d, want 3", len(s))
	}
	want := []Sample{{"a", 2}, {"b", 1}, {"c", -1}}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("sample %d = %+v, want %+v", i, s[i], want[i])
		}
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("srp.tokens_received").Add(12)
	r.Gauge("runtime.events_depth").Set(3)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var m map[string]int64
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("invalid JSON %q: %v", buf.String(), err)
	}
	if m["srp.tokens_received"] != 12 || m["runtime.events_depth"] != 3 {
		t.Fatalf("decoded %v", m)
	}
	// Empty registry must still be valid JSON.
	buf.Reset()
	if err := NewRegistry().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("empty registry JSON %q: %v", buf.String(), err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared")
			for j := 0; j < 1000; j++ {
				c.Inc()
				r.Gauge("g").Set(int64(j))
				r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if v, _ := r.Get("shared"); v != 8000 {
		t.Fatalf("shared = %d, want 8000", v)
	}
}
