package debughttp

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/totem-rrp/totem/internal/metrics"
	"github.com/totem-rrp/totem/internal/proto"
	"github.com/totem-rrp/totem/internal/trace"
)

func get(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	body, err := io.ReadAll(rec.Result().Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return rec.Code, string(body)
}

func TestHealthz(t *testing.T) {
	h := Handler(Config{})
	code, body := get(t, h, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz status %d", code)
	}
	var m map[string]string
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		t.Fatalf("healthz not JSON: %v", err)
	}
	if m["status"] != "ok" {
		t.Fatalf("healthz body %q", body)
	}
}

func TestHealthzCustom(t *testing.T) {
	h := Handler(Config{Health: func() any {
		return map[string]any{"status": "ok", "ring_size": 3}
	}})
	_, body := get(t, h, "/healthz")
	var m map[string]any
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		t.Fatalf("custom healthz not JSON: %v", err)
	}
	if m["ring_size"] != float64(3) {
		t.Fatalf("custom field lost: %q", body)
	}
}

func TestStats(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("srp.msgs_delivered").Add(7)
	reg.Gauge("runtime.events_depth").Set(2)
	h := Handler(Config{Metrics: reg})
	code, body := get(t, h, "/stats")
	if code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	var m map[string]int64
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		t.Fatalf("stats not JSON: %v\n%s", err, body)
	}
	if m["srp.msgs_delivered"] != 7 || m["runtime.events_depth"] != 2 {
		t.Fatalf("stats content wrong: %s", body)
	}
}

func TestTrace(t *testing.T) {
	ring := trace.NewRing(16)
	ring.Record(trace.Event{Node: 1, Kind: trace.Machine, Code: proto.ProbeTokenGathered, A: 42})
	h := Handler(Config{Trace: ring})
	code, body := get(t, h, "/trace")
	if code != http.StatusOK {
		t.Fatalf("trace status %d", code)
	}
	if !strings.Contains(body, "token-gathered") {
		t.Fatalf("trace dump missing event: %q", body)
	}
}

func TestDisabledEndpoints(t *testing.T) {
	h := Handler(Config{}) // no registry, no ring
	if code, _ := get(t, h, "/stats"); code != http.StatusNotFound {
		t.Fatalf("stats should 404 when unconfigured, got %d", code)
	}
	if code, _ := get(t, h, "/trace"); code != http.StatusNotFound {
		t.Fatalf("trace should 404 when unconfigured, got %d", code)
	}
}

func TestServe(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("x").Inc()
	ln, stop, err := Serve("127.0.0.1:0", Config{Metrics: reg})
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	defer stop()
	resp, err := http.Get("http://" + ln.Addr().String() + "/stats")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	var m map[string]int64
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("served stats not JSON: %v", err)
	}
	if m["x"] != 1 {
		t.Fatalf("served stats wrong: %s", body)
	}
}
