package debughttp

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/totem-rrp/totem/internal/metrics"
	"github.com/totem-rrp/totem/internal/proto"
	"github.com/totem-rrp/totem/internal/trace"
)

func get(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	body, err := io.ReadAll(rec.Result().Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return rec.Code, string(body)
}

func TestHealthz(t *testing.T) {
	h := Handler(Config{})
	code, body := get(t, h, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz status %d", code)
	}
	var m map[string]string
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		t.Fatalf("healthz not JSON: %v", err)
	}
	if m["status"] != "ok" {
		t.Fatalf("healthz body %q", body)
	}
}

func TestHealthzCustom(t *testing.T) {
	h := Handler(Config{Health: func() any {
		return map[string]any{"status": "ok", "ring_size": 3}
	}})
	_, body := get(t, h, "/healthz")
	var m map[string]any
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		t.Fatalf("custom healthz not JSON: %v", err)
	}
	if m["ring_size"] != float64(3) {
		t.Fatalf("custom field lost: %q", body)
	}
}

func TestStats(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("srp.msgs_delivered").Add(7)
	reg.Gauge("runtime.events_depth").Set(2)
	h := Handler(Config{Metrics: reg})
	code, body := get(t, h, "/stats")
	if code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	var m map[string]int64
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		t.Fatalf("stats not JSON: %v\n%s", err, body)
	}
	if m["srp.msgs_delivered"] != 7 || m["runtime.events_depth"] != 2 {
		t.Fatalf("stats content wrong: %s", body)
	}
}

func TestTrace(t *testing.T) {
	ring := trace.NewRing(16)
	ring.Record(trace.Event{Node: 1, Kind: trace.Machine, Code: proto.ProbeTokenGathered, A: 42})
	h := Handler(Config{Trace: ring})
	code, body := get(t, h, "/trace")
	if code != http.StatusOK {
		t.Fatalf("trace status %d", code)
	}
	if !strings.Contains(body, "token-gathered") {
		t.Fatalf("trace dump missing event: %q", body)
	}
}

func TestDisabledEndpoints(t *testing.T) {
	h := Handler(Config{}) // no registry, no ring
	if code, _ := get(t, h, "/stats"); code != http.StatusNotFound {
		t.Fatalf("stats should 404 when unconfigured, got %d", code)
	}
	if code, _ := get(t, h, "/trace"); code != http.StatusNotFound {
		t.Fatalf("trace should 404 when unconfigured, got %d", code)
	}
}

func shardedConfig() Config {
	regs := []*metrics.Registry{metrics.NewRegistry(), metrics.NewRegistry(), metrics.NewRegistry()}
	for s, reg := range regs {
		reg.Counter("srp.msgs_delivered").Add(uint64(10 * (s + 1)))
	}
	return Config{
		Metrics:   regs[0],
		Shards:    len(regs),
		MetricsOf: func(s int) *metrics.Registry { return regs[s] },
		ShardHealth: func(s int) any {
			return map[string]any{"shard": s, "operational": true}
		},
	}
}

func TestStatsShardParam(t *testing.T) {
	h := Handler(shardedConfig())
	for s, want := range []int64{10, 20, 30} {
		code, body := get(t, h, "/stats?shard="+string(rune('0'+s)))
		if code != http.StatusOK {
			t.Fatalf("stats?shard=%d status %d", s, code)
		}
		var m map[string]int64
		if err := json.Unmarshal([]byte(body), &m); err != nil {
			t.Fatalf("sharded stats not JSON: %v\n%s", err, body)
		}
		if m["srp.msgs_delivered"] != want {
			t.Fatalf("shard %d stats = %s, want msgs_delivered %d", s, body, want)
		}
	}
	// Bare /stats still serves shard 0's registry.
	if _, body := get(t, h, "/stats"); !strings.Contains(body, `"srp.msgs_delivered": 10`) {
		t.Fatalf("bare stats lost shard 0 view: %q", body)
	}
	for _, bad := range []string{"/stats?shard=3", "/stats?shard=-1", "/stats?shard=x"} {
		if code, _ := get(t, h, bad); code != http.StatusBadRequest {
			t.Fatalf("%s should 400, got %d", bad, code)
		}
	}
}

func TestStatsShardParamOnSingleRing(t *testing.T) {
	reg := metrics.NewRegistry()
	h := Handler(Config{Metrics: reg})
	if code, _ := get(t, h, "/stats?shard=0"); code != http.StatusBadRequest {
		t.Fatalf("shard param on unsharded node should 400, got %d", code)
	}
}

func TestShardsSummary(t *testing.T) {
	h := Handler(shardedConfig())
	code, body := get(t, h, "/shards")
	if code != http.StatusOK {
		t.Fatalf("shards status %d", code)
	}
	var rows []map[string]any
	if err := json.Unmarshal([]byte(body), &rows); err != nil {
		t.Fatalf("shards not JSON: %v\n%s", err, body)
	}
	if len(rows) != 3 {
		t.Fatalf("want 3 shard rows, got %d: %s", len(rows), body)
	}
	for s, row := range rows {
		if row["shard"] != float64(s) || row["operational"] != true {
			t.Fatalf("shard row %d wrong: %v", s, row)
		}
	}
	// Single-ring configs don't grow the endpoint.
	if code, _ := get(t, Handler(Config{Metrics: metrics.NewRegistry()}), "/shards"); code != http.StatusNotFound {
		t.Fatalf("shards should 404 on a single-ring node, got %d", code)
	}
}

func TestServe(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("x").Inc()
	ln, stop, err := Serve("127.0.0.1:0", Config{Metrics: reg})
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	defer stop()
	resp, err := http.Get("http://" + ln.Addr().String() + "/stats")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	var m map[string]int64
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("served stats not JSON: %v", err)
	}
	if m["x"] != 1 {
		t.Fatalf("served stats wrong: %s", body)
	}
}
