// Package debughttp serves a node's observability surfaces over plain
// net/http for live inspection: /healthz (liveness JSON), /stats (a flat
// JSON snapshot of the metric registry), /trace (a text dump of the
// event ring) and, on a sharded node, /shards (a per-ring summary) with
// /stats?shard=N selecting one ring's registry. It has no dependencies
// beyond the standard library and the repo's own metrics/trace packages,
// and is safe to serve while the node is under full load — every handler
// reads through the concurrency-safe snapshot paths
// (Registry.WriteJSON, Ring.Dump).
package debughttp

import (
	"encoding/json"
	"net"
	"net/http"
	"strconv"
	"time"

	"github.com/totem-rrp/totem/internal/metrics"
	"github.com/totem-rrp/totem/internal/trace"
)

// Config wires the endpoints to a node's observability state. Nil fields
// disable the corresponding endpoint (it returns 404).
type Config struct {
	// Health, if non-nil, is invoked per /healthz request; its return
	// value is rendered as JSON. Nil serves {"status":"ok"}.
	Health func() any
	// Metrics backs /stats.
	Metrics *metrics.Registry
	// Trace backs /trace.
	Trace *trace.Ring
	// Shards, together with MetricsOf, enables the multi-ring views:
	// /stats?shard=N serves ring N's registry and /shards serves a
	// summary array. Zero (or a nil MetricsOf) leaves both off.
	Shards int
	// MetricsOf returns shard s's registry (0 <= s < Shards).
	MetricsOf func(s int) *metrics.Registry
	// ShardHealth, if non-nil, is invoked per shard for the /shards
	// summary; its return value is one element of the rendered array.
	ShardHealth func(s int) any
}

// sharded reports whether the per-ring views are wired up.
func (cfg Config) sharded() bool { return cfg.Shards > 0 && cfg.MetricsOf != nil }

// Handler returns an http.Handler serving /healthz, /stats, /trace and
// (on a sharded config) /shards.
func Handler(cfg Config) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		var body any = map[string]string{"status": "ok"}
		if cfg.Health != nil {
			body = cfg.Health()
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(body) //nolint:errcheck
	})
	if cfg.Metrics != nil {
		mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
			reg := cfg.Metrics
			if q := r.URL.Query().Get("shard"); q != "" {
				if !cfg.sharded() {
					http.Error(w, "not a sharded node", http.StatusBadRequest)
					return
				}
				s, err := strconv.Atoi(q)
				if err != nil || s < 0 || s >= cfg.Shards {
					http.Error(w, "shard out of range", http.StatusBadRequest)
					return
				}
				reg = cfg.MetricsOf(s)
			}
			w.Header().Set("Content-Type", "application/json")
			reg.WriteJSON(w) //nolint:errcheck
		})
	}
	if cfg.sharded() {
		mux.HandleFunc("/shards", func(w http.ResponseWriter, r *http.Request) {
			out := make([]any, cfg.Shards)
			for s := 0; s < cfg.Shards; s++ {
				if cfg.ShardHealth != nil {
					out[s] = cfg.ShardHealth(s)
				} else {
					out[s] = map[string]any{"shard": s}
				}
			}
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(out) //nolint:errcheck
		})
	}
	if cfg.Trace != nil {
		mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			cfg.Trace.Dump(w) //nolint:errcheck
		})
	}
	return mux
}

// Serve listens on addr and serves the debug endpoints until the listener
// is closed. It returns the bound listener (useful with ":0") and a stop
// function. Serving happens on a background goroutine; errors after stop
// are swallowed.
func Serve(addr string, cfg Config) (net.Listener, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: Handler(cfg), ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)               //nolint:errcheck
	stop := func() { srv.Close() } //nolint:errcheck
	return ln, stop, nil
}
