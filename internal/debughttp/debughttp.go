// Package debughttp serves a node's observability surfaces over plain
// net/http for live inspection: /healthz (liveness JSON), /stats (a flat
// JSON snapshot of the metric registry) and /trace (a text dump of the
// event ring). It has no dependencies beyond the standard library and the
// repo's own metrics/trace packages, and is safe to serve while the node
// is under full load — every handler reads through the concurrency-safe
// snapshot paths (Registry.WriteJSON, Ring.Dump).
package debughttp

import (
	"encoding/json"
	"net"
	"net/http"
	"time"

	"github.com/totem-rrp/totem/internal/metrics"
	"github.com/totem-rrp/totem/internal/trace"
)

// Config wires the endpoints to a node's observability state. Nil fields
// disable the corresponding endpoint (it returns 404).
type Config struct {
	// Health, if non-nil, is invoked per /healthz request; its return
	// value is rendered as JSON. Nil serves {"status":"ok"}.
	Health func() any
	// Metrics backs /stats.
	Metrics *metrics.Registry
	// Trace backs /trace.
	Trace *trace.Ring
}

// Handler returns an http.Handler serving /healthz, /stats and /trace.
func Handler(cfg Config) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		var body any = map[string]string{"status": "ok"}
		if cfg.Health != nil {
			body = cfg.Health()
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(body) //nolint:errcheck
	})
	if cfg.Metrics != nil {
		mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			cfg.Metrics.WriteJSON(w) //nolint:errcheck
		})
	}
	if cfg.Trace != nil {
		mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			cfg.Trace.Dump(w) //nolint:errcheck
		})
	}
	return mux
}

// Serve listens on addr and serves the debug endpoints until the listener
// is closed. It returns the bound listener (useful with ":0") and a stop
// function. Serving happens on a background goroutine; errors after stop
// are swallowed.
func Serve(addr string, cfg Config) (net.Listener, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: Handler(cfg), ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)               //nolint:errcheck
	stop := func() { srv.Close() } //nolint:errcheck
	return ln, stop, nil
}
