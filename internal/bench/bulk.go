package bench

import (
	"fmt"
	"io"
	"time"

	"github.com/totem-rrp/totem/internal/live"
)

// BulkOptions shapes the figure_bulk sweep: one small-message latency
// baseline, one run with the bulk stream forced through the interactive
// lane (the pre-lane protocol), and one with the stream on the
// rate-limited bulk lane. The three points together are the headline
// figure: what a saturating transfer costs interactive p99 with and
// without the lane.
type BulkOptions struct {
	// Duration is the measured window per mode (default 2s).
	Duration time.Duration
	// TransferBytes sizes each streamed transfer (default 4 MiB).
	TransferBytes int
	// MsgLen is the probe payload size (default 64 bytes).
	MsgLen int
	// Nodes and Networks default to 4 and 2.
	Nodes    int
	Networks int
}

// BulkSweep measures the three figure_bulk points on real loopback
// sockets: baseline, interactive-lane saturation, bulk-lane saturation.
func BulkSweep(opt BulkOptions) ([]live.BulkBenchPoint, error) {
	modes := []live.BulkMode{live.BulkOff, live.BulkInteractive, live.BulkLane}
	out := make([]live.BulkBenchPoint, 0, len(modes))
	for _, mode := range modes {
		p, err := live.BulkBench(live.BulkBenchOptions{
			Mode:          mode,
			Nodes:         opt.Nodes,
			Networks:      opt.Networks,
			MsgLen:        opt.MsgLen,
			TransferBytes: opt.TransferBytes,
			Duration:      opt.Duration,
		})
		if err != nil {
			return nil, fmt.Errorf("bulk bench (%s): %w", mode, err)
		}
		out = append(out, *p)
	}
	return out, nil
}

// BulkGate judges a figure_bulk sweep: under a saturating bulk-lane
// stream, small-message p99 must stay within bound× the no-bulk baseline
// p99, and the stream must actually move data (a stalled lane would pass
// any latency bar). It returns a human-readable verdict line and whether
// the gate passed.
func BulkGate(points []live.BulkBenchPoint, bound float64) (string, bool) {
	var baseline, lane *live.BulkBenchPoint
	for i := range points {
		switch points[i].Mode {
		case string(live.BulkOff):
			baseline = &points[i]
		case string(live.BulkLane):
			lane = &points[i]
		}
	}
	if baseline == nil || lane == nil {
		return "bulk lane gate: sweep missing baseline or bulk-lane point", false
	}
	if baseline.Probes == 0 || lane.Probes == 0 {
		return "bulk lane gate: no probe deliveries measured", false
	}
	ratio := 0.0
	if baseline.P99LatencyUs > 0 {
		ratio = lane.P99LatencyUs / baseline.P99LatencyUs
	}
	ok := ratio > 0 && ratio <= bound && lane.BulkMBPerSec > 0
	verdict := fmt.Sprintf(
		"bulk lane gate: probe p99 %.0fµs under %.1f MB/s bulk vs %.0fµs idle (%.2fx, bound %.1fx)",
		lane.P99LatencyUs, lane.BulkMBPerSec, baseline.P99LatencyUs, ratio, bound)
	if ok {
		verdict += " — PASS"
	} else if lane.BulkMBPerSec <= 0 {
		verdict += " — FAIL (bulk lane moved no data)"
	} else {
		verdict += " — FAIL"
	}
	return verdict, ok
}

// PrintBulk renders the figure_bulk sweep for the terminal.
func PrintBulk(w io.Writer, points []live.BulkBenchPoint) {
	fmt.Fprintln(w, "bulk lanes (interactive p99 under a saturating stream, loopback UDP)")
	fmt.Fprintf(w, "  %-17s %4s %7s %9s %9s %10s %10s\n",
		"mode", "n×N", "probes", "p50(µs)", "p99(µs)", "bulk MB", "MB/s")
	for _, p := range points {
		fmt.Fprintf(w, "  %-17s %dx%d %7d %9.0f %9.0f %10.1f %10.1f\n",
			p.Mode, p.Nodes, p.Networks, p.Probes,
			p.P50LatencyUs, p.P99LatencyUs,
			float64(p.BulkBytes)/(1<<20), p.BulkMBPerSec)
	}
}
