package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"testing"
	"time"

	"github.com/totem-rrp/totem/internal/core"
	"github.com/totem-rrp/totem/internal/live"
	"github.com/totem-rrp/totem/internal/proto"
	"github.com/totem-rrp/totem/internal/wire"
)

// HotPathMicro is one steady-state micro-measurement, mirroring the
// BenchmarkHotPath* family so `totembench -json` can regenerate the
// allocation budget without the test harness.
type HotPathMicro struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// HotPathPoint is one wall-clock figure measurement: a full simulated
// throughput experiment timed on the host clock, with allocation totals.
// VirtualMsgsPerSec is the paper-facing (machine-independent) rate;
// WallMsgsPerSec is how many totally-ordered deliveries the host actually
// processed per wall-clock second, which is what the zero-allocation work
// speeds up.
type HotPathPoint struct {
	Name              string  `json:"name"`
	MsgLen            int     `json:"msg_len"`
	WallNs            int64   `json:"wall_ns"`
	Allocs            uint64  `json:"allocs"`
	AllocBytes        uint64  `json:"alloc_bytes"`
	VirtualMsgsPerSec float64 `json:"virtual_msgs_per_sec"`
	VirtualKBPerSec   float64 `json:"virtual_kbytes_per_sec"`
	WallMsgsPerSec    float64 `json:"wall_msgs_per_sec"`
}

// HotPathReport is the payload of BENCH_hotpath.json. LiveWire is filled
// only by `totembench -json -live`, ShardScale only by
// `totembench -json -shards M`, Bulk only by `totembench -bulk`, Logd
// only by `totembench -logd`: the simulated figures are cheap and
// deterministic, the live sweeps cost real wall-clock seconds.
type HotPathReport struct {
	Micro      []HotPathMicro         `json:"micro"`
	Figure6    []HotPathPoint         `json:"figure6_4nodes"`
	LiveWire   []live.WireBenchPoint  `json:"figure6_live,omitempty"`
	ShardScale []live.ShardBenchPoint `json:"figure6_shards,omitempty"`
	Bulk       []live.BulkBenchPoint  `json:"figure_bulk,omitempty"`
	Logd       []live.LogdBenchPoint  `json:"figure_logd,omitempty"`
}

// HotPathMicros measures the allocation budget of the steady-state packet
// path: data-packet encode into a pooled frame, frame pool round-trip,
// and replicator fan-out. All three must report 0 allocs/op.
func HotPathMicros() []HotPathMicro {
	micros := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"encode", benchEncode},
		{"frame-pool", benchFramePool},
		{"encode+fanout", benchEncodeFanout},
	}
	out := make([]HotPathMicro, 0, len(micros))
	for _, m := range micros {
		r := testing.Benchmark(m.fn)
		out = append(out, HotPathMicro{
			Name:        m.name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}
	return out
}

func benchEncode(b *testing.B) {
	pkt := &wire.DataPacket{
		Ring:   proto.RingID{Rep: 1, Epoch: 7},
		Sender: 1,
		Chunks: []wire.Chunk{{Flags: wire.ChunkFirst | wire.ChunkLast, Data: make([]byte, 1400)}},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pkt.Seq++
		buf, err := pkt.AppendEncode(wire.GetFrame())
		if err != nil {
			b.Fatal(err)
		}
		wire.PutFrame(buf)
	}
}

func benchFramePool(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		wire.PutFrame(wire.GetFrame())
	}
}

func benchEncodeFanout(b *testing.B) {
	var acts proto.Actions
	rep, err := core.New(core.DefaultConfig(2, proto.ReplicationActive), &acts, core.Callbacks{
		Deliver: func(proto.Time, []byte) {},
		Missing: func(uint32) bool { return false },
	})
	if err != nil {
		b.Fatal(err)
	}
	pkt := &wire.DataPacket{
		Ring:   proto.RingID{Rep: 1, Epoch: 3},
		Sender: 1,
		Chunks: []wire.Chunk{{Flags: wire.ChunkFirst | wire.ChunkLast, Data: make([]byte, 1400)}},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pkt.Seq++
		frame, err := pkt.AppendEncode(wire.GetFrame())
		if err != nil {
			b.Fatal(err)
		}
		rep.SendMessage(frame)
		acts.Recycle(acts.Drain())
		wire.PutFrame(frame)
	}
}

// HotPathFigure6Lengths is the message-length subset timed on the wall
// clock (one experiment per length is slow enough that the full
// PaperLengths sweep would dominate totembench).
var HotPathFigure6Lengths = []int{100, 700, 1000, 1400}

// HotPathFigure6 runs the Figure 6 no-replication 4-node experiment for
// each length, timing each run on the host clock and counting host
// allocations across it (setup + warmup + measure).
func HotPathFigure6(lengths []int) ([]HotPathPoint, error) {
	out := make([]HotPathPoint, 0, len(lengths))
	for _, l := range lengths {
		e := Experiment{
			Name:     fmt.Sprintf("no-replication/%dB", l),
			Nodes:    4,
			Networks: 1,
			Style:    proto.ReplicationNone,
			MsgLen:   l,
		}
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		r, err := Run(e)
		wall := time.Since(start)
		runtime.ReadMemStats(&after)
		if err != nil {
			return nil, err
		}
		msgs := r.MsgsPerSec * r.Measure.Seconds()
		out = append(out, HotPathPoint{
			Name:              e.Name,
			MsgLen:            l,
			WallNs:            wall.Nanoseconds(),
			Allocs:            after.Mallocs - before.Mallocs,
			AllocBytes:        after.TotalAlloc - before.TotalAlloc,
			VirtualMsgsPerSec: r.MsgsPerSec,
			VirtualKBPerSec:   r.KBytesPerSec,
			WallMsgsPerSec:    msgs / wall.Seconds(),
		})
	}
	return out, nil
}

// HotPath runs the full allocation-budget report.
func HotPath() (HotPathReport, error) {
	rep := HotPathReport{Micro: HotPathMicros()}
	points, err := HotPathFigure6(HotPathFigure6Lengths)
	if err != nil {
		return HotPathReport{}, err
	}
	rep.Figure6 = points
	return rep, nil
}

// WriteHotPathJSON renders the report as indented JSON.
func WriteHotPathJSON(w io.Writer, rep HotPathReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// PrintHotPath renders the report for the terminal; empty sections (a
// -live-only run carries no micro or simulated points) are skipped.
func PrintHotPath(w io.Writer, rep HotPathReport) {
	if len(rep.Micro) > 0 {
		fmt.Fprintln(w, "hot path allocation budget (steady-state packet path)")
		for _, m := range rep.Micro {
			fmt.Fprintf(w, "  %-14s %10.1f ns/op %6d allocs/op %8d B/op\n",
				m.Name, m.NsPerOp, m.AllocsPerOp, m.BytesPerOp)
		}
	}
	if len(rep.Figure6) == 0 {
		if len(rep.LiveWire) > 0 {
			PrintLiveWire(w, rep.LiveWire)
		}
		if len(rep.ShardScale) > 0 {
			PrintShardScale(w, rep.ShardScale)
		}
		if len(rep.Bulk) > 0 {
			PrintBulk(w, rep.Bulk)
		}
		if len(rep.Logd) > 0 {
			PrintLogd(w, rep.Logd)
		}
		return
	}
	fmt.Fprintln(w, "figure 6 (4 nodes, no replication), wall clock")
	fmt.Fprintf(w, "  %-8s %12s %14s %14s %12s\n", "len(B)", "wall ms", "vmsgs/s", "wall msgs/s", "allocs")
	for _, p := range rep.Figure6 {
		fmt.Fprintf(w, "  %-8d %12.1f %14.0f %14.0f %12d\n",
			p.MsgLen, float64(p.WallNs)/1e6, p.VirtualMsgsPerSec, p.WallMsgsPerSec, p.Allocs)
	}
	if len(rep.LiveWire) > 0 {
		PrintLiveWire(w, rep.LiveWire)
	}
	if len(rep.ShardScale) > 0 {
		PrintShardScale(w, rep.ShardScale)
	}
	if len(rep.Bulk) > 0 {
		PrintBulk(w, rep.Bulk)
	}
	if len(rep.Logd) > 0 {
		PrintLogd(w, rep.Logd)
	}
}
